// bentpipe contrasts ISL connectivity with "bent-pipe" connectivity over
// ground-station relays for Paris-Moscow (the paper's Appendix A): without
// laser inter-satellite links, long-distance traffic bounces down to relay
// ground stations and back up, adding RTT.
//
//	go run ./examples/bentpipe
package main

import (
	"fmt"
	"log"
	"math"

	"hypatia"
)

func main() {
	paris := hypatia.LLADeg(48.8566, 2.3522, 0)
	moscow := hypatia.LLADeg(55.7558, 37.6173, 0)

	endpoints := []hypatia.GS{
		{ID: 0, Name: "Paris", Position: paris},
		{ID: 1, Name: "Moscow", Position: moscow},
	}
	relays, err := hypatia.RelayGrid(paris, moscow, 5, 8, 3, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Paris -> Moscow over Kuiper K1, computed RTT at t = 0..60 s:")
	for _, mode := range []struct {
		name string
		cfg  hypatia.ConstellationConfig
		gss  []hypatia.GS
	}{
		{"ISLs (+Grid)", hypatia.Kuiper(), endpoints},
		{"bent-pipe via GS relays", bentPipe(), append(append([]hypatia.GS{}, endpoints...), relays...)},
	} {
		c, err := hypatia.GenerateConstellation(mode.cfg)
		if err != nil {
			log.Fatal(err)
		}
		topo, err := hypatia.NewTopology(c, mode.gss, hypatia.GSLFree)
		if err != nil {
			log.Fatal(err)
		}
		min, max, sum, n := math.Inf(1), 0.0, 0.0, 0
		for t := 0.0; t <= 60; t++ {
			rtt := topo.Snapshot(t).RTT(0, 1)
			if math.IsInf(rtt, 1) {
				continue
			}
			min = math.Min(min, rtt)
			max = math.Max(max, rtt)
			sum += rtt
			n++
		}
		if n == 0 {
			fmt.Printf("  %-24s never connected\n", mode.name)
			continue
		}
		fmt.Printf("  %-24s mean %5.1f ms  (min %5.1f, max %5.1f, %d/61 connected)\n",
			mode.name, sum/float64(n)*1e3, min*1e3, max*1e3, n)
	}
	fmt.Println()
	fmt.Println("Bent-pipe paths are a few milliseconds longer: every long-distance")
	fmt.Println("hop must detour down to a relay ground station and back up.")
}

func bentPipe() hypatia.ConstellationConfig {
	cfg := hypatia.Kuiper()
	cfg.ISLMode = hypatia.ISLNone
	return cfg
}
