// rtt-variation compares how the same city pair's round-trip time varies
// across the three constellations the paper studies: Starlink S1, Kuiper
// K1, and Telesat T1 (Figs 6-7 in miniature, for one pair).
//
//	go run ./examples/rtt-variation
package main

import (
	"fmt"
	"log"
	"math"

	"hypatia"
)

func main() {
	gss := hypatia.Top100Cities()
	for _, cfg := range []hypatia.ConstellationConfig{
		hypatia.Starlink(), hypatia.Kuiper(), hypatia.Telesat(),
	} {
		c, err := hypatia.GenerateConstellation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		topo, err := hypatia.NewTopology(c, gss, hypatia.GSLFree)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := hypatia.AnalyzePairs(topo, hypatia.AnalysisConfig{
			Duration: 120,
			Step:     1,
			Pairs:    [][2]int{pair(gss, "Istanbul", "Nairobi")},
		})
		if err != nil {
			log.Fatal(err)
		}
		s := stats[0]
		fmt.Printf("%-9s Istanbul-Nairobi over 120 s:\n", cfg.Name)
		if !s.Connected() {
			fmt.Println("  never connected")
			continue
		}
		fmt.Printf("  geodesic RTT %.1f ms, min %.1f ms, max %.1f ms (%.2fx geodesic)\n",
			s.GeodesicRTT*1e3, s.MinRTT*1e3, s.MaxRTT*1e3, s.MaxOverGeodesic())
		fmt.Printf("  path changes: %d, hops: %d..%d, outage steps: %d\n",
			s.PathChanges, s.MinHops, s.MaxHops, s.DisconnectedSteps)
	}
	_ = math.Inf
}

func pair(gss []hypatia.GS, a, b string) [2]int {
	ga, err := hypatia.GSByName(gss, a)
	if err != nil {
		log.Fatal(err)
	}
	gb, err := hypatia.GSByName(gss, b)
	if err != nil {
		log.Fatal(err)
	}
	var out [2]int
	for i, g := range gss {
		if g.ID == ga.ID {
			out[0] = i
		}
		if g.ID == gb.ID {
			out[1] = i
		}
	}
	return out
}
