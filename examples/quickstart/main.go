// Quickstart: simulate ping measurements between two cities over Amazon
// Kuiper's first shell and print how the RTT moves as the satellites do.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hypatia"
)

func main() {
	// Build a 20-second run over Kuiper K1 with the built-in 100-city
	// ground-station set. Forwarding state is recomputed every 100 ms, the
	// paper's default.
	run, err := hypatia.NewRun(hypatia.RunConfig{
		Constellation:  hypatia.Kuiper(),
		GroundStations: hypatia.Top100Cities(),
		Duration:       hypatia.Seconds(20),
	})
	if err != nil {
		log.Fatal(err)
	}

	src, err := run.GSIndexByName("Rio de Janeiro")
	if err != nil {
		log.Fatal(err)
	}
	dst, err := run.GSIndexByName("Saint Petersburg")
	if err != nil {
		log.Fatal(err)
	}
	// Computing forwarding state only toward the two endpoints keeps the
	// run fast.
	run.Cfg.ActiveDstGS = []int{src, dst}

	ping := hypatia.NewPinger(run.Net, run.Flows, src, dst, hypatia.PingConfig{
		Interval: 10 * hypatia.Millisecond,
	})
	ping.Start()
	run.Execute()

	fmt.Println("Rio de Janeiro -> Saint Petersburg over Kuiper K1, 20 s:")
	lost := 0
	var minRTT, maxRTT float64
	for _, r := range ping.Results() {
		if !r.Replied {
			lost++
			continue
		}
		rtt := r.RTT.Seconds()
		if minRTT == 0 || rtt < minRTT {
			minRTT = rtt
		}
		if rtt > maxRTT {
			maxRTT = rtt
		}
	}
	fmt.Printf("  pings sent: %d, unanswered: %d\n", len(ping.Results()), lost)
	fmt.Printf("  RTT range: %.1f ms .. %.1f ms\n", minRTT*1e3, maxRTT*1e3)
	for i, r := range ping.Results() {
		if i%200 == 0 && r.Replied {
			fmt.Printf("  t=%5.1fs  rtt=%6.1f ms\n", r.SentAt.Seconds(), r.RTT.Seconds()*1e3)
		}
	}
}
