// weather-loss demonstrates the reliability extension the paper's §7 calls
// for: a rain-fade region that randomly drops ground-satellite-link packets,
// and its effect on a TCP flow crossing it. Satellites and ISLs are
// unaffected — only GSLs touching the stormy region lose packets.
//
//	go run ./examples/weather-loss
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hypatia"
)

func main() {
	for _, lossRate := range []float64{0, 0.01, 0.05} {
		goodput, retx := run(lossRate)
		fmt.Printf("GSL loss %4.1f%% over Nairobi: goodput %6.3f Mbit/s, retransmissions %d\n",
			lossRate*100, goodput/1e6, retx)
	}
	fmt.Println()
	fmt.Println("Loss on the radio up/down links hits TCP hard: the loss applies at")
	fmt.Println("both the up and down GSL of every round trip (data and ACKs), and")
	fmt.Println("classic NewReno without SACK pays a >=1 s timeout whenever fast")
	fmt.Println("retransmit cannot fire. Weather-aware rerouting is the obvious")
	fmt.Println("counter, and this hook is where such policies plug in.")
}

func run(lossRate float64) (float64, int64) {
	gss := hypatia.Top100Cities()
	netCfg := hypatia.DefaultNetworkConfig()
	if lossRate > 0 {
		// Deterministic per-configuration randomness.
		rng := rand.New(rand.NewSource(7))
		c, err := hypatia.GenerateConstellation(hypatia.Kuiper())
		if err != nil {
			log.Fatal(err)
		}
		nSats := c.NumSatellites()
		// The "storm": any GSL transmission to or from a ground station
		// (node id >= nSats) loses packets at lossRate. Narrowing this to
		// a geographic box is a two-line change on the node positions.
		netCfg.LossModel = func(from, to int, at hypatia.Time) bool {
			if from < nSats && to < nSats {
				return false // ISLs unaffected
			}
			return rng.Float64() < lossRate
		}
	}

	run, err := hypatia.NewRun(hypatia.RunConfig{
		Constellation:  hypatia.Kuiper(),
		GroundStations: gss,
		Duration:       hypatia.Seconds(30),
		Net:            netCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := run.GSIndexByName("Istanbul")
	if err != nil {
		log.Fatal(err)
	}
	dst, err := run.GSIndexByName("Nairobi")
	if err != nil {
		log.Fatal(err)
	}
	run.Cfg.ActiveDstGS = []int{src, dst}

	flow := hypatia.NewTCPFlow(run.Net, run.Flows, src, dst, hypatia.TCPConfig{})
	flow.Start()
	run.Execute()
	return flow.GoodputBps(hypatia.Seconds(30)), flow.RetxCount
}
