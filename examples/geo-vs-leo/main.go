// geo-vs-leo contrasts the latency regimes the paper's introduction sets
// against each other: a legacy geostationary constellation (the HughesNet /
// Viasat model, ~36,000 km up, hundreds of milliseconds) versus an LEO
// mega-constellation (Kuiper K1 at 630 km) for the same city pairs.
//
//	go run ./examples/geo-vs-leo
package main

import (
	"fmt"
	"log"
	"math"

	"hypatia"
)

func main() {
	gss := hypatia.Top100Cities()

	leo, err := hypatia.GenerateConstellation(hypatia.Kuiper())
	if err != nil {
		log.Fatal(err)
	}
	geoCfg := hypatia.ConstellationConfig{
		Name:       "GEO",
		Shells:     []hypatia.Shell{hypatia.GEORing("G1", 8)},
		MinElevDeg: 10,
	}
	geo, err := hypatia.GenerateConstellation(geoCfg)
	if err != nil {
		log.Fatal(err)
	}

	leoTopo, err := hypatia.NewTopology(leo, gss, hypatia.GSLFree)
	if err != nil {
		log.Fatal(err)
	}
	geoTopo, err := hypatia.NewTopology(geo, gss, hypatia.GSLFree)
	if err != nil {
		log.Fatal(err)
	}

	pairs := [][2]string{
		{"London", "New York"},
		{"Istanbul", "Nairobi"},
		{"Manila", "Dalian"},
	}
	fmt.Printf("%-22s %14s %14s %12s\n", "pair", "LEO RTT", "GEO RTT", "GEO/LEO")
	for _, p := range pairs {
		src, dst := indexOf(gss, p[0]), indexOf(gss, p[1])
		leoRTT := meanRTT(leoTopo, src, dst)
		geoRTT := meanRTT(geoTopo, src, dst)
		fmt.Printf("%-22s %11.1f ms %11.1f ms %11.1fx\n",
			p[0]+" - "+p[1], leoRTT*1e3, geoRTT*1e3, geoRTT/leoRTT)
	}
	fmt.Println()
	fmt.Println("GEO satellites are stationary but 36,000 km up: every round trip")
	fmt.Println("pays hundreds of milliseconds. LEO constellations cut that by an")
	fmt.Println("order of magnitude — the reason the new systems operate low, and")
	fmt.Println("the source of all the dynamics this framework simulates.")
}

func indexOf(gss []hypatia.GS, name string) int {
	g, err := hypatia.GSByName(gss, name)
	if err != nil {
		log.Fatal(err)
	}
	for i, cand := range gss {
		if cand.ID == g.ID {
			return i
		}
	}
	log.Fatalf("station %q not indexed", name)
	return -1
}

func meanRTT(topo *hypatia.Topology, src, dst int) float64 {
	sum, n := 0.0, 0
	for t := 0.0; t <= 60; t += 10 {
		rtt := topo.Snapshot(t).RTT(src, dst)
		if !math.IsInf(rtt, 1) {
			sum += rtt
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
