// congestion-control reproduces the paper's §4.2 finding in miniature:
// on an LEO path whose RTT changes as satellites move, loss-based TCP
// (NewReno) fills queues while delay-based TCP (Vegas) can misread a path
// change as congestion — both without any competing traffic.
//
//	go run ./examples/congestion-control
package main

import (
	"fmt"
	"log"

	"hypatia"
)

func main() {
	for _, alg := range []hypatia.CCAlgorithm{hypatia.NewReno, hypatia.Vegas, hypatia.BBR} {
		run, err := hypatia.NewRun(hypatia.RunConfig{
			Constellation:  hypatia.Kuiper(),
			GroundStations: hypatia.Top100Cities(),
			Duration:       hypatia.Seconds(60),
		})
		if err != nil {
			log.Fatal(err)
		}
		src, err := run.GSIndexByName("Rio de Janeiro")
		if err != nil {
			log.Fatal(err)
		}
		dst, err := run.GSIndexByName("Saint Petersburg")
		if err != nil {
			log.Fatal(err)
		}
		run.Cfg.ActiveDstGS = []int{src, dst}

		flow := hypatia.NewTCPFlow(run.Net, run.Flows, src, dst, hypatia.TCPConfig{
			Algorithm: alg,
		})
		flow.Start()
		run.Execute()

		fmt.Printf("%s, Rio de Janeiro -> Saint Petersburg, 60 s alone on the network:\n", alg)
		fmt.Printf("  goodput: %6.3f Mbit/s\n", flow.GoodputBps(hypatia.Seconds(60))/1e6)
		fmt.Printf("  per-packet RTT: %.1f .. %.1f ms\n",
			flow.RTTLog.Min()*1e3, flow.RTTLog.Max()*1e3)
		fmt.Printf("  cwnd p95: %.0f packets, fast retransmits: %d, timeouts: %d\n",
			flow.CwndLog.Percentile(0.95), flow.FastRetxCount, flow.TimeoutCount)
	}
	fmt.Println()
	fmt.Println("NewReno keeps the bottleneck queue full (RTT far above the propagation")
	fmt.Println("floor); Vegas holds RTT near the floor but backs off when satellite")
	fmt.Println("motion lengthens the path — the paper's congestion-control takeaway.")
	fmt.Println("BBR, the algorithm the paper asks to see evaluated, paces at the")
	fmt.Println("estimated bottleneck rate and re-probes its RTT floor every 10 s,")
	fmt.Println("so path changes age out of its model.")
}
