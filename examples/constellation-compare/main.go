// constellation-compare runs the paper's constellation-wide analysis
// (Figs 6-8) at a reduced horizon: for Starlink S1, Kuiper K1, and Telesat
// T1 it reports RTT stretch over the geodesic, RTT variation, and path
// churn across all city pairs more than 500 km apart.
//
//	go run ./examples/constellation-compare
package main

import (
	"fmt"
	"log"

	"hypatia"
)

func main() {
	gss := hypatia.Top100Cities()
	fmt.Println("All city pairs >500 km apart, 60 s horizon, 1 s snapshots:")
	fmt.Printf("%-10s %10s %12s %12s %12s %12s\n",
		"network", "pairs", "med max/geo", "frac <2x", "med spread", "med changes")
	for _, cfg := range []hypatia.ConstellationConfig{
		hypatia.Starlink(), hypatia.Kuiper(), hypatia.Telesat(),
	} {
		c, err := hypatia.GenerateConstellation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		topo, err := hypatia.NewTopology(c, gss, hypatia.GSLFree)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := hypatia.AnalyzePairs(topo, hypatia.AnalysisConfig{
			Duration:               60,
			Step:                   1,
			ExcludePairsCloserThan: 500e3,
		})
		if err != nil {
			log.Fatal(err)
		}
		var ratios, spreads, changes []float64
		for _, s := range stats {
			if !s.Connected() {
				continue
			}
			ratios = append(ratios, s.MaxOverGeodesic())
			spreads = append(spreads, s.RTTSpread()*1e3)
			changes = append(changes, float64(s.PathChanges))
		}
		er := hypatia.NewECDF(ratios)
		fmt.Printf("%-10s %10d %12.2f %11.1f%% %10.1fms %12.0f\n",
			cfg.Name, len(stats), er.Median(), 100*er.FractionBelow(2),
			hypatia.NewECDF(spreads).Median(), hypatia.NewECDF(changes).Median())
	}
	fmt.Println()
	fmt.Println("The paper's ordering: Telesat achieves the lowest latencies and least")
	fmt.Println("churn despite having the fewest satellites, thanks to its 10-degree")
	fmt.Println("minimum elevation; Starlink varies most (22 satellites per orbit).")
}
