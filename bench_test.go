// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment driver and reports the
// headline quantities as custom metrics; the full row/series output is
// logged with -v.
//
// By default the drivers run at a reduced horizon so the whole suite
// completes in minutes. Set HYPATIA_SCALE=paper to run the paper's full
// 200-second horizons (slow: the Fig 2 sweep and the constellation-wide
// packet experiments then take tens of minutes).
package hypatia

import (
	"math"
	"os"
	"testing"

	"hypatia/internal/experiments"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// benchScale picks the experiment horizon.
func benchScale() experiments.Scale {
	if os.Getenv("HYPATIA_SCALE") == "paper" {
		return experiments.PaperScale()
	}
	return experiments.QuickScale()
}

// benchPingInterval matches the paper's 1 ms pings at paper scale and a
// cheaper 20 ms otherwise.
func benchPingInterval() sim.Time {
	if os.Getenv("HYPATIA_SCALE") == "paper" {
		return sim.Millisecond
	}
	return 20 * sim.Millisecond
}

func BenchmarkTable1ShellConfigurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkFig2ScalabilityUDP(b *testing.B) {
	benchFig2(b, "udp")
}

func BenchmarkFig2ScalabilityTCP(b *testing.B) {
	benchFig2(b, "tcp")
}

func benchFig2(b *testing.B, kind string) {
	cfg := experiments.ScalabilityConfig{VirtualSeconds: 1, Pairs: benchScale().Pairs}
	if os.Getenv("HYPATIA_SCALE") == "paper" {
		cfg.VirtualSeconds = 2
		cfg.Pairs = 0
	} else {
		cfg.LineRates = []float64{1e6, 10e6, 25e6}
	}
	for i := 0; i < b.N; i++ {
		points, rep, err := experiments.Fig2Scalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			for _, p := range points {
				if p.Transport == kind && p.LineRateBps == 10e6 {
					b.ReportMetric(p.Slowdown, "slowdown@10Mbps")
					b.ReportMetric(p.GoodputBps/1e6, "goodput_Mbps")
				}
			}
		}
	}
}

func BenchmarkFig3RTTFluctuations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		studies, rep, err := experiments.Fig3and4PathStudies(benchScale(), benchPingInterval())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			// Headline: Manila-Dalian RTT range (paper: 25-48 ms).
			for _, s := range studies {
				if s.Name == "Manila to Dalian" {
					min, max := math.Inf(1), 0.0
					for _, r := range s.ComputedRTT {
						if !math.IsInf(r, 1) {
							min = math.Min(min, r)
							max = math.Max(max, r)
						}
					}
					b.ReportMetric(min*1e3, "manila_dalian_minRTT_ms")
					b.ReportMetric(max*1e3, "manila_dalian_maxRTT_ms")
				}
			}
		}
	}
}

func BenchmarkFig4CongestionWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		studies, rep, err := experiments.Fig3and4PathStudies(benchScale(), 100*sim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			s := studies[0]
			b.ReportMetric(s.Cwnd.Max(), "cwnd_peak_pkts")
			finite := 0.0
			for _, v := range s.BDPPlusQ {
				if !math.IsInf(v, 1) {
					finite = v
					break
				}
			}
			b.ReportMetric(finite, "bdp_plus_q_pkts")
		}
	}
}

func BenchmarkFig5LossVsDelayCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, rep, err := experiments.Fig5LossVsDelayCC(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(out[transport.NewReno].Goodput/1e6, "newreno_Mbps")
			b.ReportMetric(out[transport.Vegas].Goodput/1e6, "vegas_Mbps")
		}
	}
}

// benchFig6to8 runs the constellation-wide analysis once and reports one
// figure's headline metric.
func benchFig6to8(b *testing.B, report func(*testing.B, []*experiments.ConstellationStats)) {
	scale := benchScale()
	step := 1.0
	if os.Getenv("HYPATIA_SCALE") == "paper" {
		step = 0.1
	}
	for i := 0; i < b.N; i++ {
		all, rep, err := experiments.Fig6to8Analysis(scale, step)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			report(b, all)
		}
	}
}

func BenchmarkFig6RTTGeodesic(b *testing.B) {
	benchFig6to8(b, func(b *testing.B, all []*experiments.ConstellationStats) {
		for _, c := range all {
			below2 := 0
			conn := 0
			for _, s := range c.Stats {
				if !s.Connected() {
					continue
				}
				conn++
				if s.MaxOverGeodesic() < 2 {
					below2++
				}
			}
			if conn > 0 {
				b.ReportMetric(100*float64(below2)/float64(conn), c.Name+"_pct_below_2x")
			}
		}
	})
}

func BenchmarkFig7RTTVariations(b *testing.B) {
	benchFig6to8(b, func(b *testing.B, all []*experiments.ConstellationStats) {
		for _, c := range all {
			var spreads []float64
			for _, s := range c.Stats {
				if s.Connected() {
					spreads = append(spreads, s.RTTSpread()*1e3)
				}
			}
			if len(spreads) > 0 {
				b.ReportMetric(NewECDF(spreads).Median(), c.Name+"_med_spread_ms")
			}
		}
	})
}

func BenchmarkFig8PathChanges(b *testing.B) {
	benchFig6to8(b, func(b *testing.B, all []*experiments.ConstellationStats) {
		for _, c := range all {
			var changes []float64
			for _, s := range c.Stats {
				if s.Connected() {
					changes = append(changes, float64(s.PathChanges))
				}
			}
			if len(changes) > 0 {
				b.ReportMetric(NewECDF(changes).Median(), c.Name+"_med_changes")
			}
		}
	})
}

func BenchmarkFig9TimeStepGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles, rep, err := experiments.Fig9TimeStepGranularity(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			baseTotal, coarseTotal := 0, 0
			for _, c := range profiles[0].Profile.PerPair {
				baseTotal += c
			}
			for _, c := range profiles[2].Profile.PerPair {
				coarseTotal += c
			}
			if baseTotal > 0 {
				b.ReportMetric(100*float64(coarseTotal)/float64(baseTotal), "pct_seen_at_1000ms")
			}
		}
	}
}

func BenchmarkFig10UnusedBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.Fig10to15CrossTraffic(experiments.CrossTrafficConfig{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(fracAbove(res.UnusedBandwidth, 10e6/3)*100, "dyn_pct_third_unused")
			b.ReportMetric(fracAbove(res.StaticUnused, 10e6/3)*100, "static_pct_third_unused")
		}
	}
}

func fracAbove(series []float64, threshold float64) float64 {
	n, hit := 0, 0
	for _, v := range series {
		if math.IsNaN(v) {
			continue
		}
		n++
		if v > threshold {
			hit++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hit) / float64(n)
}

func BenchmarkFig11Trajectories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		svgs, czmls, rep, err := experiments.Fig11Trajectories()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(float64(len(svgs)), "svgs")
			b.ReportMetric(float64(len(czmls)), "czmls")
		}
	}
}

func BenchmarkFig12GroundObserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.Fig12GroundObserver(benchScale().Duration * 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			up := 0
			for _, r := range res.Reachable {
				if r {
					up++
				}
			}
			b.ReportMetric(100*float64(up)/float64(len(res.Reachable)), "stp_reachable_pct")
		}
	}
}

func BenchmarkFig13PathEvolution(b *testing.B) {
	scale := benchScale()
	scale.Duration = math.Max(scale.Duration, 60)
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.Fig13PathEvolution(scale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(res.MaxRTT*1e3, "paris_luanda_maxRTT_ms")
			b.ReportMetric(res.MinRTT*1e3, "paris_luanda_minRTT_ms")
		}
	}
}

func BenchmarkFig14CongestionShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.Fig10to15CrossTraffic(experiments.CrossTrafficConfig{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(float64(len(res.PathLoadsEarly)), "early_path_links")
			b.ReportMetric(float64(len(res.PathLoadsLate)), "late_path_links")
		}
	}
}

func BenchmarkFig15NetworkWideUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.Fig10to15CrossTraffic(experiments.CrossTrafficConfig{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(float64(len(res.NetworkLoads)), "loaded_isls")
			max := 0.0
			for _, l := range res.NetworkLoads {
				max = math.Max(max, l.Utilization)
			}
			b.ReportMetric(max, "max_isl_utilization")
		}
	}
}

func BenchmarkFig16BentPipePaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.AppendixBentPipe(experiments.BentPipeConfig{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(float64(len(res.ISLPathSVG)), "isl_path_svg_bytes")
			b.ReportMetric(float64(len(res.BentPathSVG)), "bent_path_svg_bytes")
		}
	}
}

func BenchmarkFig18BentPipeRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.AppendixBentPipe(experiments.BentPipeConfig{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(res.ISLFlow.RTTLog.Max()*1e3, "isl_tcp_maxRTT_ms")
			b.ReportMetric(res.BentFlow.RTTLog.Max()*1e3, "bent_tcp_maxRTT_ms")
		}
	}
}

func BenchmarkFig19BentPipeTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, rep, err := experiments.AppendixBentPipe(experiments.BentPipeConfig{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			b.ReportMetric(res.ISLGoodput/1e6, "isl_goodput_Mbps")
			b.ReportMetric(res.BentGoodput/1e6, "bent_goodput_Mbps")
			b.ReportMetric(float64(res.BentFlow.FastRetxCount), "bent_fast_retx")
		}
	}
}
