module hypatia

go 1.22
