//go:build hypatia_checks

package check

// Enabled reports whether runtime invariant checking is compiled in. It is
// a constant so that `if check.Enabled { ... }` blocks are eliminated
// entirely from unchecked builds.
const Enabled = true

// Assert panics with a formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		Failf(format, args...)
	}
}
