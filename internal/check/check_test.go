package check_test

import (
	"strings"
	"testing"

	"hypatia/internal/check"
)

// TestAssert passes under both builds: with -tags hypatia_checks a failing
// assertion must panic; without the tag it must be a no-op.
func TestAssert(t *testing.T) {
	defer func() {
		r := recover()
		if check.Enabled && r == nil {
			t.Fatal("Assert(false) did not panic with hypatia_checks enabled")
		}
		if !check.Enabled && r != nil {
			t.Fatalf("Assert(false) panicked without hypatia_checks: %v", r)
		}
		if r != nil {
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "boom 42") {
				t.Fatalf("panic message = %v, want it to contain %q", r, "boom 42")
			}
		}
	}()
	check.Assert(false, "boom %d", 42)
}

// TestAssertTrue must never panic in either build.
func TestAssertTrue(t *testing.T) {
	check.Assert(true, "should not fire")
}

// TestFailf always panics, in both builds: it is the explicit slow path.
func TestFailf(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invariant violated") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	check.Failf("always fires: %s", "x")
}
