// Package check provides build-tag-gated runtime invariant assertions for
// the simulator core. The paper's results depend on the discrete-event
// engine being bit-for-bit deterministic; the assertions in this package
// catch the failure modes that silently destroy that property (a clock that
// runs backwards, a queue whose occupancy accounting drifts, a congestion
// window that goes NaN, a forwarding table with out-of-range next hops)
// at the moment they happen rather than as a mysteriously different trace
// thousands of events later.
//
// Assertions compile to nothing unless the `hypatia_checks` build tag is
// set. Hot-path call sites must guard every call with the Enabled constant
// so the disabled build pays neither the call nor the evaluation of the
// assertion's arguments:
//
//	if check.Enabled {
//		check.Assert(e.at >= s.now, "heap pop went backwards: %v < %v", e.at, s.now)
//	}
//
// With Enabled == false the whole branch is dead code and the compiler
// removes it. Run the checked build with:
//
//	go test -race -tags hypatia_checks ./...
package check

import "fmt"

// Failf reports an invariant violation unconditionally. It is the slow path
// of Assert and may also be called directly for violations detected by
// hand-rolled loops.
func Failf(format string, args ...any) {
	panic("hypatia_checks: invariant violated: " + fmt.Sprintf(format, args...))
}
