// Package checktest provides test-only helpers that enforce the runtime
// half of the //hypatia:noalloc contract. The static side (hypatialint's
// allocsafety check) proves the annotated hot paths free of steady-state
// allocation sites; the AllocGuard here pins the same property on the
// running binary with testing.AllocsPerRun, so a regression that slips
// past the analyzer's model (compiler escape-analysis changes, a stdlib
// function quietly starting to allocate) still fails the test suite.
//
// This package is imported only from _test.go files: it imports the
// testing package, which must never be linked into the simulator binaries
// (internal/sim imports internal/check, so the guard cannot live in the
// check package itself).
package checktest

import (
	"testing"

	"hypatia/internal/check"
)

// AllocGuard asserts that f performs at most budget heap allocations per
// call in steady state. warmup calls run first so amortized paths (arena
// growth, pool misses, capacity-guarded make) reach their steady state
// before measurement — the same amortized/steady-state split the
// allocsafety lattice draws.
//
// Under the hypatia_checks build the guard still exercises f once (so the
// checked build's assertions and oracles run), but skips budget
// enforcement: check.Assert boxes its variadic arguments and the
// cross-checking oracles re-derive state from scratch by design, so
// allocation budgets are a production-build contract.
func AllocGuard(t *testing.T, name string, budget float64, warmup int, f func()) {
	t.Helper()
	for i := 0; i < warmup; i++ {
		f()
	}
	if check.Enabled {
		f()
		t.Skipf("%s: allocation budgets are a production-build contract; the hypatia_checks build boxes assertion arguments and runs from-scratch oracles", name)
	}
	if got := testing.AllocsPerRun(100, f); got > budget {
		t.Errorf("%s: %.1f allocs/op in steady state, budget %.1f", name, got, budget)
	}
}
