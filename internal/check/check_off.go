//go:build !hypatia_checks

package check

// Enabled reports whether runtime invariant checking is compiled in. It is
// a constant so that `if check.Enabled { ... }` blocks are eliminated
// entirely from unchecked builds.
const Enabled = false

// Assert is a no-op in unchecked builds. Call sites on hot paths must still
// guard with `if check.Enabled` so argument evaluation is also eliminated.
//
//hypatia:pure
func Assert(cond bool, format string, args ...any) {}
