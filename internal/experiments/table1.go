package experiments

import "hypatia/internal/constellation"

// Table1 regenerates Table 1 of the paper: the shell configurations of
// Starlink's first deployment phase, Kuiper, and Telesat, with per-operator
// totals, verified by actually generating each constellation.
func Table1() (*Report, error) {
	rep := &Report{Title: "Table 1: shell configurations (Starlink phase 1, Kuiper, Telesat)"}
	rep.Addf("%-10s %-6s %8s %8s %10s %8s", "operator", "shell", "h (km)", "orbits", "sats/orbit", "incl")
	groups := []struct {
		name   string
		shells []constellation.Shell
		minEl  float64
	}{
		{"Starlink", []constellation.Shell{
			constellation.StarlinkS1, constellation.StarlinkS2, constellation.StarlinkS3,
			constellation.StarlinkS4, constellation.StarlinkS5,
		}, constellation.StarlinkMinElevDeg},
		{"Kuiper", []constellation.Shell{
			constellation.KuiperK1, constellation.KuiperK2, constellation.KuiperK3,
		}, constellation.KuiperMinElevDeg},
		{"Telesat", []constellation.Shell{
			constellation.TelesatT1, constellation.TelesatT2,
		}, constellation.TelesatMinElevDeg},
	}
	for _, g := range groups {
		total := 0
		for _, sh := range g.shells {
			rep.Addf("%-10s %-6s %8.0f %8d %10d %7.2f°", g.name, sh.Name,
				sh.AltitudeKm, sh.Orbits, sh.SatsPerOrbit, sh.IncDeg)
			total += sh.Sats()
		}
		// Generating validates the parameters end to end.
		c, err := constellation.Generate(constellation.Config{
			Name: g.name, Shells: g.shells, MinElevDeg: g.minEl,
		})
		if err != nil {
			return nil, err
		}
		rep.Addf("%-10s total: %d satellites (generated %d, min elevation %.0f°)",
			g.name, total, c.NumSatellites(), g.minEl)
	}
	return rep, nil
}
