package experiments

import (
	"math/rand"
	"sort"

	"hypatia/internal/groundstation"
)

// GravityPairs samples n source-destination pairs with probability
// proportional to the product of endpoint metro populations — a gravity
// traffic model. The paper notes its random permutation "is simply one way
// of sending substantial traffic through the network"; a gravity matrix is
// the conventional alternative and concentrates load on the busiest
// regions, sharpening the trans-Atlantic hotspots of Fig 15.
//
// Sampling is without replacement over ordered pairs (src != dst, each
// ordered pair at most once) and deterministic for a given seed.
func GravityPairs(gss []groundstation.GS, n int, seed int64) [][2]int {
	r := rand.New(rand.NewSource(seed))
	// Cumulative weights over stations.
	weights := make([]float64, len(gss))
	total := 0.0
	for i, g := range gss {
		w := float64(g.Population)
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	pick := func() int {
		x := r.Float64() * total
		for i, w := range weights {
			x -= w
			if x < 0 {
				return i
			}
		}
		return len(gss) - 1
	}
	seen := map[[2]int]bool{}
	var out [][2]int
	maxAttempts := n * 100
	for len(out) < n && maxAttempts > 0 {
		maxAttempts--
		p := [2]int{pick(), pick()}
		if p[0] == p[1] || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
