package experiments

import (
	"math"

	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
	"hypatia/internal/core"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// PaperPairs are the three connections §4 of the paper examines in depth.
var PaperPairs = [][2]string{
	{"Rio de Janeiro", "Saint Petersburg"},
	{"Manila", "Dalian"},
	{"Istanbul", "Nairobi"},
}

// PathStudy is the per-connection result behind Figs 3 and 4: measured ping
// RTTs, snapshot-computed RTTs, TCP per-packet RTTs, the congestion-window
// series, and the BDP+Q reference curve.
type PathStudy struct {
	Name     string
	Src, Dst int

	Step        float64   // computed-series granularity, seconds
	ComputedRTT []float64 // snapshot shortest-path RTT per step (+Inf = disconnected)

	Pings []transport.PingResult

	TCPRTT transport.Series // sender-measured per-packet RTT
	Cwnd   transport.Series // congestion window, segments
	// BDPPlusQ per step: the max packets in flight without drops, from the
	// computed RTT, the line rate, and the queue size (Fig 4's overlay).
	BDPPlusQ []float64

	DisconnectedSteps int
}

// pairRun builds a Kuiper-K1 run restricted to one pair.
func pairRun(duration sim.Time, src, dst int) (*core.Run, error) {
	return core.NewRun(core.RunConfig{
		Constellation:  constellation.Kuiper(),
		GroundStations: PaperCities(),
		Duration:       duration,
		ActiveDstGS:    []int{src, dst},
	})
}

// Fig3and4PathStudies runs the paper's three deep-dive connections over
// Kuiper K1: pings at pingInterval (1 ms in the paper) in one run, and a
// lone long-running TCP NewReno flow in a second run, plus the
// snapshot-computed RTT series. The Rio de Janeiro–Saint Petersburg pair
// exhibits a disconnection window when Saint Petersburg sees no satellite.
func Fig3and4PathStudies(scale Scale, pingInterval sim.Time) ([]*PathStudy, *Report, error) {
	var studies []*PathStudy
	gss := PaperCities()
	for _, pair := range PaperPairs {
		src, dst := PairByNames(gss, pair[0], pair[1])
		study := &PathStudy{Name: pair[0] + " to " + pair[1], Src: src, Dst: dst, Step: 0.1}

		// Computed series (the networkx-analog curve of Fig 3).
		pingRun, err := pairRun(sim.Seconds(scale.Duration), src, dst)
		if err != nil {
			return nil, nil, err
		}
		study.ComputedRTT = analysis.RTTSeries(pingRun.Topo, src, dst, scale.Duration, study.Step)
		for _, r := range study.ComputedRTT {
			if math.IsInf(r, 1) {
				study.DisconnectedSteps++
			}
		}

		// Ping run.
		pinger := transport.NewPinger(pingRun.Net, pingRun.Flows, src, dst,
			transport.PingConfig{Interval: pingInterval})
		pinger.Start()
		pingRun.Execute()
		study.Pings = pinger.Results()

		// Lone TCP NewReno run (no competing traffic).
		tcpRun, err := pairRun(sim.Seconds(scale.Duration), src, dst)
		if err != nil {
			return nil, nil, err
		}
		flow := transport.NewTCPFlow(tcpRun.Net, tcpRun.Flows, src, dst, transport.TCPConfig{})
		flow.Start()
		tcpRun.Execute()
		study.TCPRTT = flow.RTTLog
		study.Cwnd = flow.CwndLog

		// BDP+Q overlay: BDP in 1500-byte packets at 10 Mb/s for the
		// computed RTT, plus the 100-packet queue.
		rate := tcpRun.Cfg.Net.GSLRateBps
		q := float64(tcpRun.Cfg.Net.QueuePackets)
		study.BDPPlusQ = make([]float64, len(study.ComputedRTT))
		for i, rtt := range study.ComputedRTT {
			if math.IsInf(rtt, 1) {
				study.BDPPlusQ[i] = math.Inf(1)
				continue
			}
			study.BDPPlusQ[i] = rate*rtt/(8*1500) + q
		}
		studies = append(studies, study)
	}

	rep := &Report{Title: "Figs 3-4: RTT fluctuations and congestion-window evolution (Kuiper K1)"}
	rep.Addf("%-36s %9s %9s %9s %10s %8s %9s", "pair", "minRTT", "maxRTT", "ping/comp", "outage", "cwndMax", "fastRetx")
	for _, s := range studies {
		minC, maxC := math.Inf(1), 0.0
		for _, r := range s.ComputedRTT {
			if !math.IsInf(r, 1) {
				minC = math.Min(minC, r)
				maxC = math.Max(maxC, r)
			}
		}
		// Agreement between ping measurements and computed RTTs: mean
		// relative gap over replied pings (paper: "match closely").
		agree := pingComputedAgreement(s)
		outage := float64(s.DisconnectedSteps) * s.Step
		rep.Addf("%-36s %7.1fms %7.1fms %8.1f%% %8.1fs %8.0f %9d",
			s.Name, minC*1e3, maxC*1e3, agree*100, outage, s.Cwnd.Max(), countCwndCuts(s.Cwnd))
	}
	return studies, rep, nil
}

// pingComputedAgreement returns the fraction of replied pings within 10% or
// 3 ms of the computed RTT at their send time.
func pingComputedAgreement(s *PathStudy) float64 {
	if len(s.Pings) == 0 {
		return 0
	}
	match, replied := 0, 0
	for _, p := range s.Pings {
		if !p.Replied {
			continue
		}
		replied++
		idx := int(p.SentAt.Seconds() / s.Step)
		if idx >= len(s.ComputedRTT) {
			idx = len(s.ComputedRTT) - 1
		}
		comp := s.ComputedRTT[idx]
		if math.IsInf(comp, 1) {
			continue
		}
		got := p.RTT.Seconds()
		if math.Abs(got-comp) < 0.003 || math.Abs(got-comp)/comp < 0.10 {
			match++
		}
	}
	if replied == 0 {
		return 0
	}
	return float64(match) / float64(replied)
}

// countCwndCuts counts multiplicative decreases (>=40% drops) in a cwnd log.
func countCwndCuts(cwnd transport.Series) int {
	cuts := 0
	for i := 1; i < cwnd.Len(); i++ {
		prev, cur := cwnd.Samples[i-1].V, cwnd.Samples[i].V
		if prev > 10 && cur < 0.6*prev {
			cuts++
		}
	}
	return cuts
}

// CCStudy is the Fig 5 result for one algorithm on Rio de Janeiro–Saint
// Petersburg: per-packet RTT, congestion window, and 100 ms-windowed
// throughput.
type CCStudy struct {
	Algorithm  transport.CCAlgorithm
	RTT        transport.Series
	Cwnd       transport.Series
	Throughput []transport.Sample // bits/s per 100 ms window
	Goodput    float64            // average over the run, bits/s
}

// Fig5LossVsDelayCC runs the Rio de Janeiro–Saint Petersburg connection
// once with NewReno and once with Vegas, each alone in the network, and
// reports how loss- and delay-based congestion control each fail on a
// changing LEO path: NewReno keeps queues full (high RTT), Vegas misreads
// the RTT rise after a path change as congestion and its throughput
// collapses.
func Fig5LossVsDelayCC(scale Scale) (map[transport.CCAlgorithm]*CCStudy, *Report, error) {
	gss := PaperCities()
	src, dst := PairByNames(gss, "Rio de Janeiro", "Saint Petersburg")
	out := map[transport.CCAlgorithm]*CCStudy{}
	// BBR is included as the third algorithm the paper asks for ("once a
	// mature implementation of BBR is available, evaluating its behavior
	// on LEO networks would be of high interest").
	for _, alg := range []transport.CCAlgorithm{transport.NewReno, transport.Vegas, transport.BBR} {
		run, err := pairRun(sim.Seconds(scale.Duration), src, dst)
		if err != nil {
			return nil, nil, err
		}
		flow := transport.NewTCPFlow(run.Net, run.Flows, src, dst, transport.TCPConfig{Algorithm: alg})
		flow.Start()
		run.Execute()
		window := 100 * sim.Millisecond
		windowed := flow.AckedLog.Windowed(window, run.Cfg.Duration)
		thr := make([]transport.Sample, len(windowed))
		for i, w := range windowed {
			thr[i] = transport.Sample{T: w.T, V: w.V * 8 / window.Seconds()}
		}
		out[alg] = &CCStudy{
			Algorithm:  alg,
			RTT:        flow.RTTLog,
			Cwnd:       flow.CwndLog,
			Throughput: thr,
			Goodput:    flow.GoodputBps(run.Cfg.Duration),
		}
	}
	rep := &Report{Title: "Fig 5: loss- vs delay-based congestion control (Rio de Janeiro - Saint Petersburg)"}
	rep.Addf("%-8s %10s %10s %10s %12s", "cc", "minRTT", "maxRTT", "cwnd p95", "goodput")
	for _, alg := range []transport.CCAlgorithm{transport.NewReno, transport.Vegas, transport.BBR} {
		s := out[alg]
		rep.Addf("%-8s %8.1fms %8.1fms %10.1f %9.3f Mbps",
			alg, s.RTT.Min()*1e3, s.RTT.Max()*1e3, s.Cwnd.Percentile(0.95), s.Goodput/1e6)
	}
	return out, rep, nil
}
