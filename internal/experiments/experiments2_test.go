package experiments

import (
	"math"
	"strings"
	"testing"

	"hypatia/internal/sim"
)

func TestFig3and4PathStudiesSmall(t *testing.T) {
	studies, rep, err := Fig3and4PathStudies(Scale{Duration: 5}, 20*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 3 {
		t.Fatalf("studies = %d", len(studies))
	}
	for _, s := range studies {
		if len(s.ComputedRTT) != 51 {
			t.Errorf("%s: computed samples = %d", s.Name, len(s.ComputedRTT))
		}
		if len(s.Pings) == 0 {
			t.Errorf("%s: no pings", s.Name)
		}
		if s.Cwnd.Len() == 0 {
			t.Errorf("%s: no cwnd log", s.Name)
		}
		if len(s.BDPPlusQ) != len(s.ComputedRTT) {
			t.Errorf("%s: BDP+Q series mismatch", s.Name)
		}
		// The paper's validation: pings and computed RTTs match closely.
		if s.DisconnectedSteps < len(s.ComputedRTT) {
			if agree := pingComputedAgreement(s); agree < 0.8 {
				t.Errorf("%s: ping/computed agreement only %.0f%%", s.Name, agree*100)
			}
		}
		// BDP+Q: with 10 Mb/s and ~25-100 ms RTTs, BDP is 20-90 packets on
		// top of the 100-packet queue.
		for i, v := range s.BDPPlusQ {
			if math.IsInf(v, 1) {
				continue
			}
			if v < 100 || v > 300 {
				t.Errorf("%s: BDP+Q[%d] = %v implausible", s.Name, i, v)
				break
			}
		}
	}
	if !strings.Contains(rep.String(), "Rio de Janeiro") {
		t.Error("report missing pair rows")
	}
}

func TestFig10to15CrossTrafficSmall(t *testing.T) {
	res, rep, err := Fig10to15CrossTraffic(CrossTrafficConfig{
		Scale: Scale{Duration: 6, Pairs: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnusedBandwidth) == 0 || len(res.StaticUnused) == 0 {
		t.Fatal("missing unused-bandwidth series")
	}
	for w, v := range res.UnusedBandwidth {
		if math.IsNaN(v) {
			continue
		}
		if v < 0 || v > 10e6+1 {
			t.Errorf("unused[%d] = %v out of range", w, v)
		}
	}
	if len(res.NetworkLoads) == 0 {
		t.Error("no ISLs carried traffic")
	}
	for _, l := range res.NetworkLoads {
		if l.Utilization <= 0 || l.Utilization > 1.01 {
			t.Errorf("ISL %d->%d utilization %v", l.From, l.To, l.Utilization)
		}
	}
	if !strings.HasPrefix(res.Fig15SVG, "<svg") {
		t.Error("Fig 15 SVG malformed")
	}
	if !strings.Contains(rep.String(), "unused") {
		t.Error("report missing unused-bandwidth rows")
	}
}

func TestAppendixBentPipeSmall(t *testing.T) {
	res, rep, err := AppendixBentPipe(BentPipeConfig{Scale: Scale{Duration: 8}})
	if err != nil {
		t.Fatal(err)
	}
	islMean, islN := meanFinite(res.ISLComputedRTT)
	bentMean, bentN := meanFinite(res.BentComputedRTT)
	if islN == 0 || bentN == 0 {
		t.Fatal("one of the modes never connected")
	}
	// Appendix A: bent-pipe connectivity has higher RTT (typically ~5 ms).
	if bentMean <= islMean {
		t.Errorf("bent-pipe RTT %.1fms not above ISL RTT %.1fms", bentMean*1e3, islMean*1e3)
	}
	if res.ISLGoodput <= 0 || res.BentGoodput <= 0 {
		t.Errorf("goodputs: ISL %v, bent %v", res.ISLGoodput, res.BentGoodput)
	}
	if !strings.HasPrefix(res.ISLPathSVG, "<svg") || !strings.HasPrefix(res.BentPathSVG, "<svg") {
		t.Error("path SVGs malformed")
	}
	if !strings.Contains(rep.String(), "bent-pipe") {
		t.Error("report missing comparison rows")
	}
}

func TestFig6to8AnalysisTiny(t *testing.T) {
	// Very coarse: 4 s horizon at 2 s steps, but all three constellations.
	all, rep, err := Fig6to8Analysis(Scale{Duration: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("constellations = %d", len(all))
	}
	for _, c := range all {
		if len(c.Stats) == 0 {
			t.Errorf("%s: no pairs", c.Name)
		}
		conn := c.connected()
		if len(conn) < len(c.Stats)/2 {
			t.Errorf("%s: only %d/%d pairs connected", c.Name, len(conn), len(c.Stats))
		}
	}
	out := rep.String()
	for _, want := range []string{"Starlink", "Kuiper", "Telesat", "Fig 6", "Fig 7", "Fig 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
