package experiments

import (
	"math"

	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
	"hypatia/internal/core"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
	"hypatia/internal/viz"
)

// CrossTrafficResult carries everything the cross-traffic experiment
// produces: the Fig 10 unused-bandwidth series for the observed pair, the
// Fig 14 on-path utilization snapshots, and the Fig 15 network-wide link
// loads, plus rendered SVGs.
type CrossTrafficResult struct {
	// UnusedBandwidth[w] is the observed pair's unused path capacity
	// (bits/s) in 1-second window w; NaN when the pair is disconnected.
	UnusedBandwidth []float64
	// StaticUnused is the same series for the network frozen at t=0.
	StaticUnused []float64

	// PathLoadsEarly/Late are the directed on-path link utilizations of
	// the Fig 14 pair at the two snapshot times.
	PathLoadsEarly, PathLoadsLate []viz.LinkLoad
	Fig14SVGEarly, Fig14SVGLate   string

	// NetworkLoads are all directed ISL utilizations averaged over the
	// run; Fig15SVG renders them.
	NetworkLoads []viz.LinkLoad
	Fig15SVG     string
}

// CrossTrafficConfig parameterizes the Fig 10/14/15 experiment.
type CrossTrafficConfig struct {
	Scale Scale
	// ObservedPair (Fig 10) defaults to Rio de Janeiro - Saint Petersburg.
	ObservedSrc, ObservedDst string
	// UtilizationPair (Fig 14) defaults to Chicago - Zhengzhou.
	UtilSrc, UtilDst string
	// SnapshotTimes for Fig 14 (defaults 10 s and 3/4 of the horizon).
	EarlyT, LateT float64
}

func (c CrossTrafficConfig) withDefaults() CrossTrafficConfig {
	if c.Scale.Duration == 0 {
		c.Scale = PaperScale()
	}
	if c.ObservedSrc == "" {
		c.ObservedSrc, c.ObservedDst = "Rio de Janeiro", "Saint Petersburg"
	}
	if c.UtilSrc == "" {
		c.UtilSrc, c.UtilDst = "Chicago", "Zhengzhou"
	}
	if c.EarlyT == 0 {
		c.EarlyT = 10
	}
	if c.LateT == 0 {
		c.LateT = 0.75 * c.Scale.Duration
	}
	return c
}

// Fig10to15CrossTraffic runs the paper's constellation-wide traffic
// experiment: long-running TCP NewReno flows between a random permutation
// of the 100 cities over Kuiper K1 at 10 Mb/s, with shortest-path routing
// recomputed every 100 ms. From one simulation it extracts the unused
// bandwidth of the observed pair over time (Fig 10), the utilization along
// an example path at two instants (Fig 14), and the network-wide
// bottleneck map (Fig 15). A second, frozen-at-t=0 run provides Fig 10's
// static-network baseline.
func Fig10to15CrossTraffic(cfg CrossTrafficConfig) (*CrossTrafficResult, *Report, error) {
	cfg = cfg.withDefaults()
	gss := PaperCities()
	obsSrc, obsDst := PairByNames(gss, cfg.ObservedSrc, cfg.ObservedDst)
	utilSrc, utilDst := PairByNames(gss, cfg.UtilSrc, cfg.UtilDst)

	pairs := crossTrafficPairs(cfg, obsSrc, obsDst)

	res := &CrossTrafficResult{}

	// Dynamic run.
	dyn, mon, err := runCrossTraffic(cfg, pairs, false)
	if err != nil {
		return nil, nil, err
	}
	res.UnusedBandwidth = unusedSeries(dyn, mon, obsSrc, obsDst, false)

	// Fig 14: on-path utilization of the example pair at two instants.
	res.PathLoadsEarly, res.Fig14SVGEarly = pathLoads(dyn, mon, utilSrc, utilDst, cfg.EarlyT)
	res.PathLoadsLate, res.Fig14SVGLate = pathLoads(dyn, mon, utilSrc, utilDst, cfg.LateT)

	// Fig 15: average ISL utilization network-wide.
	res.NetworkLoads = networkLoads(dyn, mon)
	res.Fig15SVG = viz.UtilizationMapSVG(dyn.Topo, res.NetworkLoads, cfg.Scale.Duration/2, 0, 0)

	// Static baseline for Fig 10.
	static, smon, err := runCrossTraffic(cfg, pairs, true)
	if err != nil {
		return nil, nil, err
	}
	res.StaticUnused = unusedSeries(static, smon, obsSrc, obsDst, true)

	rep := crossTrafficReport(cfg, res)
	return res, rep, nil
}

// crossTrafficPairs builds the random-permutation matrix, dropping pairs
// that would collide with the observed pair's endpoints (the paper also
// removes pairs sharing the observed pair's ingress/egress satellites so
// the first and last hops are not the bottleneck; endpoint exclusion is the
// stable part of that filter under a moving constellation).
func crossTrafficPairs(cfg CrossTrafficConfig, obsSrc, obsDst int) [][2]int {
	all := RandomPermutationPairs(100, Seed)
	var pairs [][2]int
	for _, p := range all {
		if p[0] == obsSrc || p[0] == obsDst || p[1] == obsSrc || p[1] == obsDst {
			continue
		}
		pairs = append(pairs, p)
	}
	if cfg.Scale.Pairs > 0 && len(pairs) > cfg.Scale.Pairs {
		pairs = pairs[:cfg.Scale.Pairs]
	}
	return append(pairs, [2]int{obsSrc, obsDst})
}

// runCrossTraffic executes the permutation-TCP workload. frozen freezes
// both forwarding state and satellite positions at t=0, the paper's
// static-network baseline.
func runCrossTraffic(cfg CrossTrafficConfig, pairs [][2]int, frozen bool) (*core.Run, *LinkMonitor, error) {
	duration := sim.Seconds(cfg.Scale.Duration)
	netCfg := sim.DefaultConfig()
	runCfg := core.RunConfig{
		Constellation:  constellation.Kuiper(),
		GroundStations: PaperCities(),
		Duration:       duration,
		Net:            netCfg,
		ActiveDstGS:    activeDsts(pairs),
	}
	if frozen {
		runCfg.UpdateInterval = duration + sim.Second // never updates past t=0
		runCfg.Net.PosQuantum = duration + sim.Second // positions pinned at t=0
	}
	run, err := core.NewRun(runCfg)
	if err != nil {
		return nil, nil, err
	}
	mon := NewLinkMonitor(run.Net, sim.Second, duration)
	// Stagger flow starts by 50 ms: synchronized slow starts otherwise
	// produce a loss storm in which classic NewReno (1 s minimum RTO, no
	// SACK) can starve some flows for the whole run. The observed pair
	// (last in the list) starts first so its behavior is visible from t=0.
	for i, p := range pairs {
		flow := transport.NewTCPFlow(run.Net, run.Flows, p[0], p[1], transport.TCPConfig{})
		delay := sim.Time(i+1) * 50 * sim.Millisecond
		if i == len(pairs)-1 {
			delay = 0
		}
		flow.StartAfter(delay)
	}
	run.Execute()
	return run, mon, nil
}

// activeDsts lists every ground station that receives packets: flow
// destinations (data) and flow sources (returning ACKs).
func activeDsts(pairs [][2]int) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range pairs {
		for _, gs := range p {
			if !seen[gs] {
				seen[gs] = true
				out = append(out, gs)
			}
		}
	}
	return out
}

// unusedSeries computes the Fig 10 series: per 1-second window, the path
// capacity minus the utilization of the most congested on-path link of the
// observed pair's shortest path at that time.
func unusedSeries(run *core.Run, mon *LinkMonitor, src, dst int, frozen bool) []float64 {
	rate := run.Cfg.Net.GSLRateBps
	out := make([]float64, mon.Windows())
	var frozenPath []int
	if frozen {
		frozenPath, _ = run.Topo.Snapshot(0).Path(src, dst)
	}
	for w := range out {
		path := frozenPath
		if !frozen {
			path, _ = run.Topo.Snapshot(float64(w)).Path(src, dst)
		}
		if path == nil {
			out[w] = math.NaN()
			continue
		}
		u := mon.MaxOnPathUtilization(path, w, rate)
		out[w] = (1 - u) * rate
		if out[w] < 0 {
			out[w] = 0
		}
	}
	return out
}

// pathLoads extracts the directed utilizations along the pair's path at
// time t (averaged over that 1 s window) and renders the Fig 14 view.
func pathLoads(run *core.Run, mon *LinkMonitor, src, dst int, t float64) ([]viz.LinkLoad, string) {
	path, _ := run.Topo.Snapshot(t).Path(src, dst)
	if path == nil {
		return nil, ""
	}
	rate := run.Cfg.Net.GSLRateBps
	w := int(t)
	var loads []viz.LinkLoad
	for i := 0; i+1 < len(path); i++ {
		loads = append(loads, viz.LinkLoad{
			From: path[i], To: path[i+1],
			Utilization: mon.Utilization(LinkKey{From: path[i], To: path[i+1]}, w, rate),
		})
	}
	return loads, viz.UtilizationMapSVG(run.Topo, loads, t, 0, 0)
}

// networkLoads averages each directed ISL's utilization over the whole run.
func networkLoads(run *core.Run, mon *LinkMonitor) []viz.LinkLoad {
	rate := run.Cfg.Net.ISLRateBps
	nSat := run.Topo.NumSats()
	var loads []viz.LinkLoad
	for _, k := range mon.Links() {
		if k.From >= nSat || k.To >= nSat {
			continue // GSLs excluded from the Fig 15 ISL map
		}
		total := 0.0
		for w := 0; w < mon.Windows(); w++ {
			total += mon.Utilization(k, w, rate)
		}
		u := total / float64(mon.Windows())
		if u > 0 {
			loads = append(loads, viz.LinkLoad{From: k.From, To: k.To, Utilization: u})
		}
	}
	return loads
}

func crossTrafficReport(cfg CrossTrafficConfig, res *CrossTrafficResult) *Report {
	rep := &Report{Title: "Figs 10/14/15: cross-traffic, unused bandwidth, and utilization shifts (Kuiper K1)"}
	rate := 10e6
	frac := func(series []float64, threshold float64) float64 {
		n, hit := 0, 0
		for _, v := range series {
			if math.IsNaN(v) {
				continue
			}
			n++
			if v > threshold {
				hit++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(hit) / float64(n)
	}
	rep.Addf("%s - %s unused bandwidth (1 s windows):", cfg.ObservedSrc, cfg.ObservedDst)
	rep.Addf("  dynamic: %4.1f%% of time more than a third of capacity unused", 100*frac(res.UnusedBandwidth, rate/3))
	rep.Addf("  frozen : %4.1f%% of time more than a third of capacity unused", 100*frac(res.StaticUnused, rate/3))
	rep.Addf("")
	rep.Addf("Fig 14 (%s - %s on-path utilization):", cfg.UtilSrc, cfg.UtilDst)
	mean := func(loads []viz.LinkLoad) float64 {
		if len(loads) == 0 {
			return math.NaN()
		}
		total := 0.0
		for _, l := range loads {
			total += l.Utilization
		}
		return total / float64(len(loads))
	}
	rep.Addf("  t=%5.1fs: %d links, mean utilization %.2f", cfg.EarlyT, len(res.PathLoadsEarly), mean(res.PathLoadsEarly))
	rep.Addf("  t=%5.1fs: %d links, mean utilization %.2f", cfg.LateT, len(res.PathLoadsLate), mean(res.PathLoadsLate))
	rep.Addf("")
	rep.Addf("Fig 15: %d ISLs carried traffic; top 5 hottest:", len(res.NetworkLoads))
	top := append([]viz.LinkLoad(nil), res.NetworkLoads...)
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].Utilization > top[i].Utilization {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	for i := 0; i < len(top) && i < 5; i++ {
		rep.Addf("  sat %4d -> sat %4d: %.2f", top[i].From, top[i].To, top[i].Utilization)
	}
	return rep
}

// HotspotBands bins a result's network-wide ISL loads into latitude bands
// (Fig 15's geographic-hotspot claim in table form).
func (res *CrossTrafficResult) HotspotBands(topo *routing.Topology, t, bandDeg float64) ([]analysis.LatBandLoad, error) {
	loads := make([]analysis.LoadedLink, len(res.NetworkLoads))
	for i, l := range res.NetworkLoads {
		loads[i] = analysis.LoadedLink{From: l.From, To: l.To, Utilization: l.Utilization}
	}
	return analysis.HotspotsByLatitude(topo, loads, t, bandDeg)
}
