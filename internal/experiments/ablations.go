package experiments

import (
	"fmt"
	"math"

	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
	"hypatia/internal/routing"
)

// MultipathStats summarizes path diversity for one constellation: how many
// near-shortest alternatives a pair has, and how much worse the k-th path
// is — the raw material for the multi-path routing and traffic-engineering
// directions §5.4 and §7 of the paper point to.
type MultipathStats struct {
	Name string
	// KthStretch[k-1] is the median (across sampled pairs) of
	// weight(path k) / weight(path 1).
	KthStretch []float64
	// DisjointFraction is the fraction of sampled pairs whose 2nd path
	// shares no satellite with the shortest.
	DisjointFraction float64
	Pairs            int
}

// AblationMultipath measures k-shortest-path diversity across the three
// constellations at one instant, over a sample of city pairs.
func AblationMultipath(k int, samplePairs int, t float64) ([]MultipathStats, *Report, error) {
	gss := PaperCities()
	pairs := RandomPermutationPairs(len(gss), Seed)
	if samplePairs > 0 && len(pairs) > samplePairs {
		pairs = pairs[:samplePairs]
	}
	var out []MultipathStats
	for _, cfg := range paperConstellations() {
		topo, err := buildTopology(cfg, gss)
		if err != nil {
			return nil, nil, err
		}
		snap := topo.Snapshot(t)
		stretchesByK := make([][]float64, k)
		disjoint, connected := 0, 0
		for _, p := range pairs {
			paths := snap.KShortestPaths(p[0], p[1], k)
			if len(paths) == 0 {
				continue
			}
			connected++
			for i, wp := range paths {
				stretchesByK[i] = append(stretchesByK[i], wp.Weight/paths[0].Weight)
			}
			if len(paths) > 1 && satDisjoint(topo, paths[0].Nodes, paths[1].Nodes) {
				disjoint++
			}
		}
		st := MultipathStats{Name: cfg.Name, Pairs: connected}
		for i := 0; i < k; i++ {
			if len(stretchesByK[i]) > 0 {
				st.KthStretch = append(st.KthStretch, analysis.NewECDF(stretchesByK[i]).Median())
			}
		}
		if connected > 0 {
			st.DisjointFraction = float64(disjoint) / float64(connected)
		}
		out = append(out, st)
	}
	rep := &Report{Title: "Ablation: multi-path diversity (k shortest paths at one instant)"}
	rep.Addf("%-10s %6s %28s %18s", "network", "pairs", "median stretch of paths 1..k", "2nd-path disjoint")
	for _, st := range out {
		rep.Addf("%-10s %6d %28s %17.1f%%", st.Name, st.Pairs, fmtStretches(st.KthStretch), 100*st.DisjointFraction)
	}
	rep.Addf("")
	rep.Addf("Near-1.0 stretches mean traffic engineering has real alternatives to")
	rep.Addf("shift load onto before links become bottlenecks (paper 5.4).")
	return out, rep, nil
}

func fmtStretches(xs []float64) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s
}

func satDisjoint(topo *routing.Topology, a, b []int) bool {
	seen := map[int]bool{}
	for _, v := range routing.SatSequence(topo, a) {
		seen[v] = true
	}
	for _, v := range routing.SatSequence(topo, b) {
		if seen[v] {
			return false
		}
	}
	return true
}

// GSLPolicyStats compares free vs nearest-only ground-station attachment.
type GSLPolicyStats struct {
	Policy       string
	MedianRTT    float64 // seconds, median over sampled pairs and steps
	Disconnected int     // pair-steps without a route
	Samples      int
}

// AblationGSLPolicy quantifies what restricting each ground station to its
// nearest satellite (single-antenna user terminals) costs relative to the
// paper's default of free attachment, over Kuiper K1.
func AblationGSLPolicy(samplePairs int, duration, step float64) ([]GSLPolicyStats, *Report, error) {
	gss := PaperCities()
	pairs := RandomPermutationPairs(len(gss), Seed)
	if samplePairs > 0 && len(pairs) > samplePairs {
		pairs = pairs[:samplePairs]
	}
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		return nil, nil, err
	}
	var out []GSLPolicyStats
	for _, mode := range []struct {
		name   string
		policy routing.GSLPolicy
	}{
		{"free", routing.GSLFree},
		{"nearest-only", routing.GSLNearestOnly},
	} {
		topo, err := routing.NewTopology(c, gss, mode.policy)
		if err != nil {
			return nil, nil, err
		}
		var rtts []float64
		disconnected, samples := 0, 0
		for ts := 0.0; ts <= duration; ts += step {
			snap := topo.Snapshot(ts)
			for _, p := range pairs {
				samples++
				rtt := snap.RTT(p[0], p[1])
				if math.IsInf(rtt, 1) {
					disconnected++
					continue
				}
				rtts = append(rtts, rtt)
			}
		}
		st := GSLPolicyStats{Policy: mode.name, Disconnected: disconnected, Samples: samples}
		if len(rtts) > 0 {
			st.MedianRTT = analysis.NewECDF(rtts).Median()
		}
		out = append(out, st)
	}
	rep := &Report{Title: "Ablation: GSL attachment policy (Kuiper K1)"}
	rep.Addf("%-14s %12s %14s", "policy", "median RTT", "disconnected")
	for _, st := range out {
		rep.Addf("%-14s %10.1fms %10d/%d", st.Policy, st.MedianRTT*1e3, st.Disconnected, st.Samples)
	}
	return out, rep, nil
}
