package experiments

import (
	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
)

// CoverageReport scans each paper constellation's connectivity from a
// latitude ladder of cities and reports covered fractions, mean connectable
// satellites, and worst outages — the quantitative form of the paper's
// coverage discussion (§2.2: Kuiper eschews the poles, Telesat covers them;
// S1 misses high latitudes).
func CoverageReport(scanSeconds float64) (*Report, error) {
	cities := []string{
		"Singapore",        // ~1 N
		"Nairobi",          // ~1 S
		"Rio de Janeiro",   // ~23 S
		"New York",         // ~41 N
		"London",           // ~52 N
		"Moscow",           // ~56 N
		"Saint Petersburg", // ~60 N
	}
	all := groundstation.Top100Cities()
	var gss []groundstation.GS
	for i, name := range cities {
		g := groundstation.MustByName(all, name)
		g.ID = i
		gss = append(gss, g)
	}

	rep := &Report{Title: "Coverage by latitude (scan window per constellation)"}
	rep.Addf("%-10s %-18s %10s %12s %14s", "network", "city", "covered", "mean sats", "worst outage")
	for _, cfg := range paperConstellations() {
		c, err := constellation.Generate(cfg)
		if err != nil {
			return nil, err
		}
		stats, err := analysis.Coverage(c, gss, scanSeconds, 10)
		if err != nil {
			return nil, err
		}
		for _, st := range stats {
			rep.Addf("%-10s %-18s %9.1f%% %12.1f %12.0fs",
				cfg.Name, st.Name, 100*st.CoveredFrac, st.MeanVisible, st.LongestOutage())
		}
	}
	return rep, nil
}
