package experiments

import (
	"strings"
	"testing"
)

func TestAblationMultipath(t *testing.T) {
	stats, rep, err := AblationMultipath(3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("constellations = %d", len(stats))
	}
	for _, st := range stats {
		if st.Pairs == 0 {
			t.Errorf("%s: no connected pairs", st.Name)
			continue
		}
		if len(st.KthStretch) == 0 || st.KthStretch[0] != 1 {
			t.Errorf("%s: first path stretch = %v, want exactly 1", st.Name, st.KthStretch)
		}
		for i := 1; i < len(st.KthStretch); i++ {
			if st.KthStretch[i] < st.KthStretch[i-1] {
				t.Errorf("%s: stretches decrease: %v", st.Name, st.KthStretch)
			}
		}
		if st.DisjointFraction < 0 || st.DisjointFraction > 1 {
			t.Errorf("%s: disjoint fraction %v", st.Name, st.DisjointFraction)
		}
	}
	if !strings.Contains(rep.String(), "stretch") {
		t.Error("report missing stretch column")
	}
}

func TestAblationGSLPolicy(t *testing.T) {
	stats, rep, err := AblationGSLPolicy(6, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("policies = %d", len(stats))
	}
	free, nearest := stats[0], stats[1]
	if free.Policy != "free" || nearest.Policy != "nearest-only" {
		t.Fatalf("order: %+v", stats)
	}
	// Restricting attachment can only make paths equal or worse.
	if nearest.MedianRTT+1e-9 < free.MedianRTT {
		t.Errorf("nearest-only median RTT %v below free %v", nearest.MedianRTT, free.MedianRTT)
	}
	if nearest.Disconnected < free.Disconnected {
		t.Errorf("nearest-only disconnected %d below free %d", nearest.Disconnected, free.Disconnected)
	}
	if !strings.Contains(rep.String(), "nearest-only") {
		t.Error("report missing policy rows")
	}
}

func TestCoverageReport(t *testing.T) {
	rep, err := CoverageReport(300)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"Starlink", "Kuiper", "Telesat", "Saint Petersburg", "Singapore"} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage report missing %q", want)
		}
	}
}

func TestGravityPairs(t *testing.T) {
	gss := PaperCities()
	pairs := GravityPairs(gss, 50, Seed)
	if len(pairs) != 50 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := map[[2]int]bool{}
	counts := map[int]int{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("self pair")
		}
		if seen[p] {
			t.Fatal("duplicate ordered pair")
		}
		seen[p] = true
		counts[p[0]]++
		counts[p[1]]++
	}
	// Deterministic.
	again := GravityPairs(gss, 50, Seed)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	// Population bias: the top-10 cities should appear far more often than
	// the bottom-10 across a larger sample.
	big := GravityPairs(gss, 500, Seed)
	top, bottom := 0, 0
	for _, p := range big {
		for _, e := range p {
			if e < 10 {
				top++
			}
			if e >= 90 {
				bottom++
			}
		}
	}
	if top <= bottom {
		t.Errorf("gravity model not biased: top-10 %d vs bottom-10 %d", top, bottom)
	}
}
