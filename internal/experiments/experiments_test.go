package experiments

import (
	"math"
	"strings"
	"testing"

	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// tinyScale keeps the drivers honest while staying fast enough for unit
// tests; the benches in the repository root run the larger scales.
func tinyScale() Scale { return Scale{Duration: 5, Pairs: 6} }

func TestRandomPermutationPairs(t *testing.T) {
	pairs := RandomPermutationPairs(100, Seed)
	if len(pairs) < 95 {
		t.Fatalf("only %d pairs (too many fixed points?)", len(pairs))
	}
	seenSrc := map[int]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("fixed point in permutation pairs")
		}
		if seenSrc[p[0]] {
			t.Fatal("duplicate source")
		}
		seenSrc[p[0]] = true
	}
	// Deterministic under the same seed.
	again := RandomPermutationPairs(100, Seed)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("permutation not deterministic")
		}
	}
}

func TestPairByNames(t *testing.T) {
	gss := PaperCities()
	a, b := PairByNames(gss, "Rio de Janeiro", "Saint Petersburg")
	if a < 0 || b < 0 || a == b {
		t.Fatalf("indices %d, %d", a, b)
	}
	if gss[a].Name != "Rio de Janeiro" || gss[b].Name != "Saint Petersburg" {
		t.Error("wrong stations resolved")
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"S1", "K1", "T1", "4409", "3236", "1671"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestLinkMonitor(t *testing.T) {
	s := sim.NewSimulator()
	mon := &LinkMonitor{Window: sim.Second, windows: 3, bytes: map[LinkKey][]int64{}}
	// Exercise the accounting path directly.
	k := LinkKey{From: 1, To: 2}
	mon.bytes[k] = make([]int64, 3)
	mon.bytes[k][1] = 125_000 // 1 Mbit in window 1
	if u := mon.Utilization(k, 1, 10e6); math.Abs(u-0.1) > 1e-9 {
		t.Errorf("utilization = %v", u)
	}
	if u := mon.Utilization(k, 0, 10e6); u != 0 {
		t.Errorf("empty window utilization = %v", u)
	}
	if u := mon.Utilization(LinkKey{From: 9, To: 9}, 0, 10e6); u != 0 {
		t.Errorf("unknown link utilization = %v", u)
	}
	if u := mon.Utilization(k, 99, 10e6); u != 0 {
		t.Errorf("out-of-range window = %v", u)
	}
	if got := mon.MaxOnPathUtilization([]int{0, 1, 2, 3}, 1, 10e6); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("max on path = %v", got)
	}
	if links := mon.Links(); len(links) != 1 || links[0] != k {
		t.Errorf("links = %v", links)
	}
	_ = s
}

func TestFig2ScalabilitySmall(t *testing.T) {
	points, rep, err := Fig2Scalability(ScalabilityConfig{
		LineRates:      []float64{1e6, 5e6},
		VirtualSeconds: 0.5,
		Pairs:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 transports x 2 rates
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.GoodputBps <= 0 {
			t.Errorf("%s at %v: zero goodput", p.Transport, p.LineRateBps)
		}
		if p.Slowdown <= 0 || p.WallSec <= 0 {
			t.Errorf("%s at %v: no wall time recorded", p.Transport, p.LineRateBps)
		}
		if p.Events == 0 {
			t.Errorf("no events processed")
		}
	}
	// Higher line rate must move more traffic for the same pairs.
	if points[1].GoodputBps <= points[0].GoodputBps {
		t.Errorf("UDP goodput did not scale with line rate: %v vs %v",
			points[0].GoodputBps, points[1].GoodputBps)
	}
	if !strings.Contains(rep.String(), "slowdown") {
		t.Error("report missing slowdown column")
	}
}

func TestFig5LossVsDelaySmall(t *testing.T) {
	out, rep, err := Fig5LossVsDelayCC(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	reno, vegas := out[transport.NewReno], out[transport.Vegas]
	if reno == nil || vegas == nil {
		t.Fatal("missing algorithm results")
	}
	if reno.Goodput <= 0 {
		t.Error("NewReno zero goodput")
	}
	if len(reno.Throughput) == 0 || len(vegas.Throughput) == 0 {
		t.Error("missing throughput series")
	}
	if !strings.Contains(rep.String(), "Vegas") {
		t.Error("report missing Vegas row")
	}
}

func TestFig9GranularitySmall(t *testing.T) {
	profiles, rep, err := Fig9TimeStepGranularity(Scale{Duration: 10, Pairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if profiles[0].Missed != nil {
		t.Error("baseline should have no missed slice")
	}
	if profiles[1].Missed == nil || profiles[2].Missed == nil {
		t.Error("coarser granularities missing missed counts")
	}
	if !strings.Contains(rep.String(), "baseline") {
		t.Error("report missing baseline marker")
	}
}

func TestFig11TrajectoriesSmokes(t *testing.T) {
	svgs, czmls, rep, err := Fig11Trajectories()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Starlink", "Kuiper", "Telesat"} {
		if !strings.HasPrefix(svgs[name], "<svg") {
			t.Errorf("%s SVG malformed", name)
		}
		if len(czmls[name]) == 0 {
			t.Errorf("%s CZML empty", name)
		}
	}
	if !strings.Contains(rep.String(), "satellites") {
		t.Error("report missing satellite counts")
	}
}

func TestFig12GroundObserverSmokes(t *testing.T) {
	res, rep, err := Fig12GroundObserver(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reachable) != 301 {
		t.Fatalf("scan samples = %d", len(res.Reachable))
	}
	if res.ConnectedT >= 0 && res.ConnectedSVG == "" {
		t.Error("connected SVG missing")
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}

func TestFig13PathEvolutionSmokes(t *testing.T) {
	res, rep, err := Fig13PathEvolution(Scale{Duration: 60}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRTT < res.MinRTT {
		t.Error("RTT extremes inverted")
	}
	if len(res.MaxPath) < 3 || len(res.MinPath) < 3 {
		t.Errorf("paths too short: %d, %d", len(res.MaxPath), len(res.MinPath))
	}
	if !strings.HasPrefix(res.MaxSVG, "<svg") || !strings.HasPrefix(res.MinSVG, "<svg") {
		t.Error("path SVGs malformed")
	}
	if !strings.Contains(rep.String(), "Paris-Luanda") {
		t.Error("report missing pair name")
	}
}
