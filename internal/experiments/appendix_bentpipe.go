package experiments

import (
	"math"

	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
	"hypatia/internal/core"
	"hypatia/internal/groundstation"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
	"hypatia/internal/viz"
)

// BentPipeResult is the Appendix A study (Figs 16-19): the Paris-Moscow
// connection over Kuiper K1 with ISLs versus bent-pipe connectivity over a
// grid of ground-station relays.
type BentPipeResult struct {
	// Computed RTT series at 1 s steps for both modes (Fig 18c).
	ISLComputedRTT, BentComputedRTT []float64

	// TCP flow logs (Figs 18a, 18b, 19a, 19b).
	ISLFlow, BentFlow *transport.TCPFlow

	// Goodput for both modes (Fig 19c).
	ISLGoodput, BentGoodput float64

	// Path snapshots at t=0 (Figs 16a, 16b).
	ISLPathSVG, BentPathSVG string
}

// BentPipeConfig parameterizes the Appendix A experiment.
type BentPipeConfig struct {
	Scale Scale
	// Relay grid dimensions between the endpoints (paper: a grid of
	// candidate relays between Paris and Moscow).
	GridRows, GridCols int
	MarginDeg          float64
}

func (c BentPipeConfig) withDefaults() BentPipeConfig {
	if c.Scale.Duration == 0 {
		c.Scale = PaperScale()
	}
	if c.GridRows == 0 {
		c.GridRows = 5
	}
	if c.GridCols == 0 {
		c.GridCols = 8
	}
	if c.MarginDeg == 0 {
		c.MarginDeg = 3
	}
	return c
}

// AppendixBentPipe compares ISL and bent-pipe connectivity for a
// long-lived Paris-Moscow TCP NewReno flow over Kuiper K1 (Appendix A of
// the paper): bent-pipe paths bounce through ground-station relays instead
// of ISLs, adding ~5 ms of RTT, and the shared satellite GSL queue couples
// data packets with returning ACKs, changing TCP's bottleneck behavior.
func AppendixBentPipe(cfg BentPipeConfig) (*BentPipeResult, *Report, error) {
	cfg = cfg.withDefaults()
	res := &BentPipeResult{}

	paris := groundstation.MustByName(PaperCities(), "Paris")
	moscow := groundstation.MustByName(PaperCities(), "Moscow")

	// Endpoint set for the bent-pipe mode: the two endpoints plus the relay
	// grid.
	endpoints := []groundstation.GS{
		{ID: 0, Name: "Paris", Position: paris.Position},
		{ID: 1, Name: "Moscow", Position: moscow.Position},
	}
	relays, err := groundstation.RelayGrid(paris.Position, moscow.Position,
		cfg.GridRows, cfg.GridCols, cfg.MarginDeg, 2)
	if err != nil {
		return nil, nil, err
	}
	bentGSes := append(append([]groundstation.GS{}, endpoints...), relays...)

	duration := sim.Seconds(cfg.Scale.Duration)

	// ISL mode.
	islCfg := constellation.Kuiper()
	islRun, err := core.NewRun(core.RunConfig{
		Constellation:  islCfg,
		GroundStations: endpoints,
		Duration:       duration,
		ActiveDstGS:    []int{0, 1},
	})
	if err != nil {
		return nil, nil, err
	}
	res.ISLComputedRTT = analysis.RTTSeries(islRun.Topo, 0, 1, cfg.Scale.Duration, 1)
	if p, _ := islRun.Topo.Snapshot(0).Path(0, 1); p != nil {
		res.ISLPathSVG = viz.PathMapSVG(islRun.Topo, p, 0, 0, 0)
	}
	res.ISLFlow = transport.NewTCPFlow(islRun.Net, islRun.Flows, 0, 1, transport.TCPConfig{})
	res.ISLFlow.Start()
	islRun.Execute()
	res.ISLGoodput = res.ISLFlow.GoodputBps(duration)

	// Bent-pipe mode: no ISLs, relays available.
	bentCfg := constellation.Kuiper()
	bentCfg.ISLMode = constellation.ISLNone
	bentRun, err := core.NewRun(core.RunConfig{
		Constellation:  bentCfg,
		GroundStations: bentGSes,
		Duration:       duration,
		ActiveDstGS:    []int{0, 1},
	})
	if err != nil {
		return nil, nil, err
	}
	res.BentComputedRTT = analysis.RTTSeries(bentRun.Topo, 0, 1, cfg.Scale.Duration, 1)
	if p, _ := bentRun.Topo.Snapshot(0).Path(0, 1); p != nil {
		res.BentPathSVG = viz.PathMapSVG(bentRun.Topo, p, 0, 0, 0)
	}
	res.BentFlow = transport.NewTCPFlow(bentRun.Net, bentRun.Flows, 0, 1, transport.TCPConfig{})
	res.BentFlow.Start()
	bentRun.Execute()
	res.BentGoodput = res.BentFlow.GoodputBps(duration)

	rep := &Report{Title: "Appendix A (Figs 16-19): ISL vs bent-pipe connectivity, Paris-Moscow (Kuiper K1)"}
	islMean, islN := meanFinite(res.ISLComputedRTT)
	bentMean, bentN := meanFinite(res.BentComputedRTT)
	rep.Addf("computed RTT: ISL %.1f ms (%d samples), bent-pipe %.1f ms (%d samples), delta %.1f ms",
		islMean*1e3, islN, bentMean*1e3, bentN, (bentMean-islMean)*1e3)
	rep.Addf("TCP goodput: ISL %.3f Mbps, bent-pipe %.3f Mbps", res.ISLGoodput/1e6, res.BentGoodput/1e6)
	rep.Addf("fast retransmits (reordering-triggered cwnd cuts): ISL %d, bent-pipe %d",
		res.ISLFlow.FastRetxCount, res.BentFlow.FastRetxCount)
	rep.Addf("TCP max est. RTT: ISL %.1f ms, bent-pipe %.1f ms",
		res.ISLFlow.RTTLog.Max()*1e3, res.BentFlow.RTTLog.Max()*1e3)
	return res, rep, nil
}

func meanFinite(xs []float64) (float64, int) {
	total, n := 0.0, 0
	for _, x := range xs {
		if !math.IsInf(x, 1) && !math.IsNaN(x) {
			total += x
			n++
		}
	}
	if n == 0 {
		return math.NaN(), 0
	}
	return total / float64(n), n
}
