package experiments

import (
	"fmt"

	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
)

// ExcludeCloserThan is the paper's cutoff: pairs of cities within 500 km
// are excluded from constellation-wide statistics.
const ExcludeCloserThan = 500e3

// ConstellationStats bundles per-pair statistics for one constellation.
type ConstellationStats struct {
	Name  string
	Stats []analysis.PairStats
}

// connected filters to pairs that ever had a route.
func (c *ConstellationStats) connected() []analysis.PairStats {
	var out []analysis.PairStats
	for _, s := range c.Stats {
		if s.Connected() {
			out = append(out, s)
		}
	}
	return out
}

// Fig6to8Analysis steps Starlink S1, Kuiper K1, and Telesat T1 over the
// horizon and aggregates the distributions behind Figs 6, 7, and 8: RTT
// extremes relative to the geodesic, RTT variation, and path-structure
// churn. step is the snapshot granularity in seconds (the paper uses 0.1;
// coarser values trade some change-detection fidelity for speed, see
// Fig 9).
func Fig6to8Analysis(scale Scale, step float64) ([]*ConstellationStats, *Report, error) {
	gss := PaperCities()
	var all []*ConstellationStats
	for _, cfg := range paperConstellations() {
		topo, err := buildTopology(cfg, gss)
		if err != nil {
			return nil, nil, err
		}
		stats, err := analysis.AnalyzePairs(topo, analysis.Config{
			Duration:               scale.Duration,
			Step:                   step,
			ExcludePairsCloserThan: ExcludeCloserThan,
		})
		if err != nil {
			return nil, nil, err
		}
		all = append(all, &ConstellationStats{Name: cfg.Name, Stats: stats})
	}

	rep := &Report{Title: "Figs 6-8: constellation-wide RTTs, variation, and path churn"}
	rep.Addf("horizon %.0fs, step %.2fs, pairs >%.0f km apart", scale.Duration, step, ExcludeCloserThan/1000)
	rep.Addf("")
	rep.Addf("Fig 6 (max RTT / geodesic RTT):")
	rep.Addf("%-10s %8s %8s %12s", "network", "median", "p90", "frac < 2x")
	for _, c := range all {
		conn := c.connected()
		var ratios []float64
		for _, s := range conn {
			ratios = append(ratios, s.MaxOverGeodesic())
		}
		e := analysis.NewECDF(ratios)
		rep.Addf("%-10s %8.2f %8.2f %11.1f%%", c.Name, e.Median(), e.Quantile(0.9), 100*e.FractionBelow(2))
	}
	rep.Addf("")
	rep.Addf("Fig 7 (RTT and variation across pairs):")
	rep.Addf("%-10s %12s %14s %14s %16s", "network", "med maxRTT", "med max-min", "med max/min", "frac ratio>1.2")
	for _, c := range all {
		conn := c.connected()
		var maxes, spreads, ratios []float64
		for _, s := range conn {
			maxes = append(maxes, s.MaxRTT*1e3)
			spreads = append(spreads, s.RTTSpread()*1e3)
			ratios = append(ratios, s.RTTRatio())
		}
		em, es, er := analysis.NewECDF(maxes), analysis.NewECDF(spreads), analysis.NewECDF(ratios)
		rep.Addf("%-10s %10.1fms %12.1fms %14.3f %15.1f%%",
			c.Name, em.Median(), es.Median(), er.Median(), 100*(1-er.FractionBelow(1.2)))
	}
	rep.Addf("")
	rep.Addf("Fig 8 (path changes and hop-count variation):")
	rep.Addf("%-10s %12s %14s %14s", "network", "med changes", "med hop delta", "med hop ratio")
	for _, c := range all {
		conn := c.connected()
		var changes, hopDelta, hopRatio []float64
		for _, s := range conn {
			changes = append(changes, float64(s.PathChanges))
			hopDelta = append(hopDelta, float64(s.MaxHops-s.MinHops))
			hopRatio = append(hopRatio, float64(s.MaxHops)/float64(s.MinHops))
		}
		rep.Addf("%-10s %12.0f %14.0f %14.3f",
			c.Name,
			analysis.NewECDF(changes).Median(),
			analysis.NewECDF(hopDelta).Median(),
			analysis.NewECDF(hopRatio).Median())
	}
	return all, rep, nil
}

// GranularityProfile is one granularity's outcome in the Fig 9 study.
type GranularityProfile struct {
	StepSec float64
	Profile *analysis.ChangeProfile
	// Missed[i] counts per-pair changes the baseline saw but this
	// granularity did not (nil for the baseline itself).
	Missed []int
}

// Fig9TimeStepGranularity recomputes Kuiper K1 path changes at 50 ms
// (baseline), 100 ms, and 1000 ms forwarding-state granularities and
// reports how many changes coarser time-steps miss — the experiment that
// justifies the paper's 100 ms default.
func Fig9TimeStepGranularity(scale Scale) ([]*GranularityProfile, *Report, error) {
	topo, err := buildTopology(constellation.Kuiper(), PaperCities())
	if err != nil {
		return nil, nil, err
	}
	pairs := RandomPermutationPairs(topo.NumGS(), Seed)
	if scale.Pairs > 0 && len(pairs) > scale.Pairs {
		pairs = pairs[:scale.Pairs]
	}

	steps := []float64{0.05, 0.1, 1.0}
	var profiles []*GranularityProfile
	for _, stepSec := range steps {
		prof, err := analysis.PathChangeProfile(topo, analysis.Config{
			Duration: scale.Duration,
			Step:     stepSec,
			Pairs:    pairs,
		})
		if err != nil {
			return nil, nil, err
		}
		profiles = append(profiles, &GranularityProfile{StepSec: stepSec, Profile: prof})
	}
	base := profiles[0]
	for _, p := range profiles[1:] {
		missed, err := analysis.MissedChanges(base.Profile, p.Profile)
		if err != nil {
			return nil, nil, err
		}
		p.Missed = missed
	}

	rep := &Report{Title: "Fig 9: forwarding-state time-step granularity (Kuiper K1)"}
	rep.Addf("horizon %.0fs, %d pairs; baseline 50 ms", scale.Duration, len(pairs))
	rep.Addf("%-10s %14s %18s %20s", "time-step", "total changes", "vs 50ms baseline", "pairs missing >=1")
	for _, p := range profiles {
		total := 0
		for _, c := range p.Profile.PerPair {
			total += c
		}
		ratio := "baseline"
		missing := "-"
		if p.Missed != nil {
			baseTotal := 0
			for _, c := range base.Profile.PerPair {
				baseTotal += c
			}
			if baseTotal > 0 {
				ratio = fmt.Sprintf("%.1f%% seen", 100*float64(total)/float64(baseTotal))
			}
			n := 0
			for _, m := range p.Missed {
				if m > 0 {
					n++
				}
			}
			missing = fmt.Sprintf("%.1f%%", 100*float64(n)/float64(len(p.Missed)))
		}
		rep.Addf("%7.0fms %14d %18s %20s", p.StepSec*1e3, total, ratio, missing)
	}
	return profiles, rep, nil
}
