package experiments

import (
	"fmt"
	"math"

	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/viz"
)

// Fig11Trajectories renders the Fig 11 trajectory snapshots — Telesat T1,
// Kuiper K1, and Starlink S1 with orbits marked — as SVGs keyed by
// constellation name, plus CZML documents for interactive 3D viewing.
func Fig11Trajectories() (map[string]string, map[string][]byte, *Report, error) {
	svgs := map[string]string{}
	czmls := map[string][]byte{}
	rep := &Report{Title: "Fig 11: constellation trajectories (T1, K1, S1)"}
	for _, cfg := range paperConstellations() {
		c, err := constellation.Generate(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		svgs[cfg.Name] = viz.TrajectoryMapSVG(c, viz.TrajectoryMapOptions{OrbitTrack: true})
		raw, err := viz.ConstellationCZML(c, viz.CZMLOptions{})
		if err != nil {
			return nil, nil, nil, err
		}
		czmls[cfg.Name] = raw
		sh := cfg.Shells[0]
		rep.Addf("%-10s %s: %dx%d at %.0f km, %.2f° — %d satellites, SVG %d bytes, CZML %d bytes",
			cfg.Name, sh.Name, sh.Orbits, sh.SatsPerOrbit, sh.AltitudeKm, sh.IncDeg,
			c.NumSatellites(), len(svgs[cfg.Name]), len(raw))
	}
	return svgs, czmls, rep, nil
}

// Fig12Result is the Fig 12 ground-observer study: sky views from Saint
// Petersburg over Kuiper K1 at a time with connectivity and a time without.
type Fig12Result struct {
	ConnectedT, DisconnectedT     float64
	ConnectedSVG, DisconnectedSVG string
	// Reachable[i] is whether any satellite is connectable at second i.
	Reachable []bool
}

// Fig12GroundObserver scans Kuiper K1 as seen from Saint Petersburg,
// finding intervals with and without connectable satellites (the
// explanation of the Rio de Janeiro outage in Figs 3-5), and renders the
// two sky views of Fig 12.
func Fig12GroundObserver(scanSeconds float64) (*Fig12Result, *Report, error) {
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		return nil, nil, err
	}
	obs := groundstation.MustByName(PaperCities(), "Saint Petersburg").Position

	res := &Fig12Result{ConnectedT: -1, DisconnectedT: -1}
	for t := 0.0; t <= scanSeconds; t++ {
		visible := len(c.VisibleFrom(obs, t, nil)) > 0
		res.Reachable = append(res.Reachable, visible)
		if visible && res.ConnectedT < 0 {
			res.ConnectedT = t
		}
		if !visible && res.DisconnectedT < 0 {
			res.DisconnectedT = t
		}
	}
	if res.ConnectedT >= 0 {
		res.ConnectedSVG, _ = viz.GroundObserverSVG(c, obs, viz.SkyViewOptions{Time: res.ConnectedT})
	}
	if res.DisconnectedT >= 0 {
		res.DisconnectedSVG, _ = viz.GroundObserverSVG(c, obs, viz.SkyViewOptions{Time: res.DisconnectedT})
	}

	up := 0
	for _, r := range res.Reachable {
		if r {
			up++
		}
	}
	rep := &Report{Title: "Fig 12: ground observer view from Saint Petersburg (Kuiper K1)"}
	rep.Addf("scanned %.0fs: connectable %.1f%% of the time", scanSeconds, 100*float64(up)/float64(len(res.Reachable)))
	rep.Addf("example connected instant: t=%.0fs; example outage instant: t=%.0fs", res.ConnectedT, res.DisconnectedT)
	if res.DisconnectedT < 0 {
		rep.Addf("note: no outage found in scan window — extend the scan")
	}
	return res, rep, nil
}

// Fig13Result is the Fig 13 path-evolution study: the Paris-Luanda path on
// Starlink S1 at its maximum- and minimum-RTT instants.
type Fig13Result struct {
	MaxT, MinT     float64
	MaxRTT, MinRTT float64 // seconds
	MaxPath        []int
	MinPath        []int
	MaxSVG, MinSVG string
}

// Fig13PathEvolution finds the highest- and lowest-RTT instants of the
// Paris-Luanda connection over Starlink S1 (one of the highest-variation
// north-south paths in the paper) and renders both shortest paths. The
// paper's takeaway: such paths hug one orbit as long as possible, and the
// RTT difference comes from how many zig-zag hops the exit requires.
func Fig13PathEvolution(scale Scale, step float64) (*Fig13Result, *Report, error) {
	topo, err := buildTopology(constellation.Starlink(), PaperCities())
	if err != nil {
		return nil, nil, err
	}
	src, dst := PairByNames(topo.GroundStations, "Paris", "Luanda")
	series := analysis.RTTSeries(topo, src, dst, scale.Duration, step)

	res := &Fig13Result{MinRTT: math.Inf(1), MaxRTT: -1}
	for i, r := range series {
		if math.IsInf(r, 1) {
			continue
		}
		t := float64(i) * step
		if r > res.MaxRTT {
			res.MaxRTT, res.MaxT = r, t
		}
		if r < res.MinRTT {
			res.MinRTT, res.MinT = r, t
		}
	}
	if res.MaxRTT < 0 {
		return nil, nil, fmt.Errorf("experiments: Paris-Luanda never connected")
	}
	res.MaxPath, _ = topo.Snapshot(res.MaxT).Path(src, dst)
	res.MinPath, _ = topo.Snapshot(res.MinT).Path(src, dst)
	res.MaxSVG = viz.PathMapSVG(topo, res.MaxPath, res.MaxT, 0, 0)
	res.MinSVG = viz.PathMapSVG(topo, res.MinPath, res.MinT, 0, 0)

	rep := &Report{Title: "Fig 13: Paris-Luanda shortest-path evolution (Starlink S1)"}
	rep.Addf("max RTT %.1f ms at t=%.1fs over %d hops (%d satellites)",
		res.MaxRTT*1e3, res.MaxT, len(res.MaxPath)-1, len(routing.SatSequence(topo, res.MaxPath)))
	rep.Addf("min RTT %.1f ms at t=%.1fs over %d hops (%d satellites)",
		res.MinRTT*1e3, res.MinT, len(res.MinPath)-1, len(routing.SatSequence(topo, res.MinPath)))
	rep.Addf("RTT ratio max/min: %.2fx (paper: 117 ms vs 85 ms = 1.38x)", res.MaxRTT/res.MinRTT)
	_ = geom.SpeedOfLight
	return res, rep, nil
}
