package experiments

import (
	"fmt"
	"math"

	"hypatia/internal/analysis"
	"hypatia/internal/plot"
	"hypatia/internal/transport"
)

// seriesFromSamples converts a transport time series to plot arrays with an
// optional y scale (e.g. 1e3 for seconds -> ms).
func seriesFromSamples(s transport.Series, yScale float64) ([]float64, []float64) {
	xs := make([]float64, s.Len())
	ys := make([]float64, s.Len())
	for i, smp := range s.Samples {
		xs[i] = smp.T.Seconds()
		ys[i] = smp.V * yScale
	}
	return xs, ys
}

// Fig3Chart renders one path study as the paper's Fig 3 panel: ping RTT,
// computed RTT, and TCP per-packet RTT over time, in milliseconds.
func Fig3Chart(s *PathStudy) (string, error) {
	var pingX, pingY []float64
	for _, p := range s.Pings {
		if p.Replied {
			pingX = append(pingX, p.SentAt.Seconds())
			pingY = append(pingY, p.RTT.Seconds()*1e3)
		}
	}
	compX := make([]float64, len(s.ComputedRTT))
	compY := make([]float64, len(s.ComputedRTT))
	for i, r := range s.ComputedRTT {
		compX[i] = float64(i) * s.Step
		if math.IsInf(r, 1) {
			compY[i] = math.NaN() // line break during the outage
		} else {
			compY[i] = r * 1e3
		}
	}
	tcpX, tcpY := seriesFromSamples(s.TCPRTT, 1e3)
	return plot.Lines(plot.Options{
		Title:  "Fig 3: " + s.Name,
		XLabel: "time (s)",
		YLabel: "RTT (ms)",
	},
		plot.Series{Name: "TCP per-packet", X: tcpX, Y: tcpY, Color: "#bbbbbb"},
		plot.Series{Name: "Pings", X: pingX, Y: pingY, Color: "#1f77b4"},
		plot.Series{Name: "Computed", X: compX, Y: compY, Color: "#d62728", Dashed: true},
	)
}

// Fig4Chart renders a path study's congestion-window panel: cwnd with the
// BDP+Q ceiling overlay, in packets.
func Fig4Chart(s *PathStudy) (string, error) {
	cwndX, cwndY := seriesFromSamples(s.Cwnd, 1)
	bdpX := make([]float64, len(s.BDPPlusQ))
	bdpY := make([]float64, len(s.BDPPlusQ))
	for i, v := range s.BDPPlusQ {
		bdpX[i] = float64(i) * s.Step
		if math.IsInf(v, 1) {
			bdpY[i] = math.NaN()
		} else {
			bdpY[i] = v
		}
	}
	return plot.Lines(plot.Options{
		Title:  "Fig 4: " + s.Name,
		XLabel: "time (s)",
		YLabel: "packets",
		YMax:   600,
	},
		plot.Series{Name: "cwnd", X: cwndX, Y: cwndY, Color: "#1f77b4"},
		plot.Series{Name: "BDP+Q", X: bdpX, Y: bdpY, Color: "#d62728", Dashed: true},
	)
}

// Fig5Charts renders the Fig 5 panels: per-packet RTT, cwnd, and 100 ms
// throughput for NewReno vs Vegas.
func Fig5Charts(out map[transport.CCAlgorithm]*CCStudy) (map[string]string, error) {
	reno, vegas := out[transport.NewReno], out[transport.Vegas]
	charts := map[string]string{}

	rX, rY := seriesFromSamples(reno.RTT, 1e3)
	vX, vY := seriesFromSamples(vegas.RTT, 1e3)
	svg, err := plot.Lines(plot.Options{
		Title: "Fig 5(a): per-packet RTT", XLabel: "time (s)", YLabel: "RTT (ms)",
	},
		plot.Series{Name: "NewReno", X: rX, Y: rY},
		plot.Series{Name: "Vegas", X: vX, Y: vY},
	)
	if err != nil {
		return nil, err
	}
	charts["fig5a-rtt"] = svg

	rX, rY = seriesFromSamples(reno.Cwnd, 1)
	vX, vY = seriesFromSamples(vegas.Cwnd, 1)
	svg, err = plot.Lines(plot.Options{
		Title: "Fig 5(b): congestion window", XLabel: "time (s)", YLabel: "packets", YMax: 600,
	},
		plot.Series{Name: "NewReno", X: rX, Y: rY},
		plot.Series{Name: "Vegas", X: vX, Y: vY},
	)
	if err != nil {
		return nil, err
	}
	charts["fig5b-cwnd"] = svg

	toXY := func(samples []transport.Sample) ([]float64, []float64) {
		xs := make([]float64, len(samples))
		ys := make([]float64, len(samples))
		for i, s := range samples {
			xs[i] = s.T.Seconds()
			ys[i] = s.V / 1e6
		}
		return xs, ys
	}
	rX, rY = toXY(reno.Throughput)
	vX, vY = toXY(vegas.Throughput)
	svg, err = plot.Lines(plot.Options{
		Title: "Fig 5(c): throughput (100 ms windows)", XLabel: "time (s)", YLabel: "Mbit/s",
	},
		plot.Series{Name: "NewReno", X: rX, Y: rY},
		plot.Series{Name: "Vegas", X: vX, Y: vY},
	)
	if err != nil {
		return nil, err
	}
	charts["fig5c-throughput"] = svg
	return charts, nil
}

// Fig6to8Charts renders the constellation-wide CDFs: max-RTT/geodesic
// (Fig 6), max RTT, spread, and ratio (Fig 7), and path changes plus
// hop-count deltas (Fig 8).
func Fig6to8Charts(all []*ConstellationStats) (map[string]string, error) {
	colors := map[string]string{"Starlink": "#d62728", "Kuiper": "#1f77b4", "Telesat": "#2ca02c"}
	charts := map[string]string{}
	metric := func(name, xlabel string, f func(analysis.PairStats) float64, xmax float64) error {
		var series []plot.Series
		for _, c := range all {
			var vals []float64
			for _, s := range c.Stats {
				if s.Connected() {
					vals = append(vals, f(s))
				}
			}
			series = append(series, plot.Series{Name: c.Name, X: vals, Color: colors[c.Name]})
		}
		svg, err := plot.CDF(plot.Options{Title: name, XLabel: xlabel, XMax: xmax}, series...)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		charts[name] = svg
		return nil
	}
	if err := metric("fig6-max-rtt-over-geodesic", "max RTT / geodesic RTT",
		analysis.PairStats.MaxOverGeodesic, 7); err != nil {
		return nil, err
	}
	if err := metric("fig7a-max-rtt", "max RTT (ms)",
		func(s analysis.PairStats) float64 { return s.MaxRTT * 1e3 }, 0); err != nil {
		return nil, err
	}
	if err := metric("fig7b-rtt-spread", "max RTT - min RTT (ms)",
		func(s analysis.PairStats) float64 { return s.RTTSpread() * 1e3 }, 0); err != nil {
		return nil, err
	}
	if err := metric("fig7c-rtt-ratio", "max RTT / min RTT",
		analysis.PairStats.RTTRatio, 0); err != nil {
		return nil, err
	}
	if err := metric("fig8a-path-changes", "# of path changes",
		func(s analysis.PairStats) float64 { return float64(s.PathChanges) }, 0); err != nil {
		return nil, err
	}
	if err := metric("fig8b-hop-delta", "max hops - min hops",
		func(s analysis.PairStats) float64 { return float64(s.MaxHops - s.MinHops) }, 0); err != nil {
		return nil, err
	}
	if err := metric("fig8c-hop-ratio", "max hops / min hops",
		func(s analysis.PairStats) float64 { return float64(s.MaxHops) / float64(s.MinHops) }, 0); err != nil {
		return nil, err
	}
	return charts, nil
}

// Fig10Chart renders the unused-bandwidth series of the observed pair for
// the dynamic and frozen networks.
func Fig10Chart(res *CrossTrafficResult) (string, error) {
	toXY := func(series []float64) ([]float64, []float64) {
		xs := make([]float64, len(series))
		ys := make([]float64, len(series))
		for i, v := range series {
			xs[i] = float64(i)
			if math.IsNaN(v) {
				ys[i] = math.NaN()
			} else {
				ys[i] = v / 1e6
			}
		}
		return xs, ys
	}
	dX, dY := toXY(res.UnusedBandwidth)
	sX, sY := toXY(res.StaticUnused)
	return plot.Lines(plot.Options{
		Title:  "Fig 10: unused bandwidth (Rio de Janeiro - Saint Petersburg)",
		XLabel: "time (s)",
		YLabel: "unused bandwidth (Mbit/s)",
	},
		plot.Series{Name: "LEO dynamics", X: dX, Y: dY},
		plot.Series{Name: "frozen at t=0", X: sX, Y: sY, Color: "#888888", Dashed: true},
	)
}

// Fig18Chart renders the ISL vs bent-pipe computed-RTT comparison.
func Fig18Chart(res *BentPipeResult) (string, error) {
	toXY := func(series []float64) ([]float64, []float64) {
		xs := make([]float64, len(series))
		ys := make([]float64, len(series))
		for i, v := range series {
			xs[i] = float64(i)
			if math.IsInf(v, 1) {
				ys[i] = math.NaN()
			} else {
				ys[i] = v * 1e3
			}
		}
		return xs, ys
	}
	iX, iY := toXY(res.ISLComputedRTT)
	bX, bY := toXY(res.BentComputedRTT)
	return plot.Lines(plot.Options{
		Title:  "Fig 18(c): Paris - Moscow computed RTT",
		XLabel: "time (s)",
		YLabel: "RTT (ms)",
	},
		plot.Series{Name: "ISLs", X: iX, Y: iY},
		plot.Series{Name: "bent-pipe", X: bX, Y: bY},
	)
}

// Fig19Chart renders the ISL vs bent-pipe congestion windows.
func Fig19Chart(res *BentPipeResult) (string, error) {
	iX, iY := seriesFromSamples(res.ISLFlow.CwndLog, 1)
	bX, bY := seriesFromSamples(res.BentFlow.CwndLog, 1)
	return plot.Lines(plot.Options{
		Title:  "Fig 19: Paris - Moscow TCP congestion window",
		XLabel: "time (s)",
		YLabel: "packets",
		YMax:   600,
	},
		plot.Series{Name: "ISLs", X: iX, Y: iY},
		plot.Series{Name: "bent-pipe", X: bX, Y: bY},
	)
}
