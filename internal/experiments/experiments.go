// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver builds its scenario from the same
// primitives a user of the library would (constellation configs, the
// 100-city ground-station set, the core orchestrator, transports), runs it,
// and returns a result that can print the rows/series the paper reports.
//
// Scenario defaults follow the paper: Kuiper K1 unless stated otherwise,
// the world's 100 most populous cities as ground stations, minimum
// elevations of 25°/30°/10° for Starlink/Kuiper/Telesat, +Grid ISLs,
// shortest-path routing recomputed every 100 ms, 10 Mbit/s links,
// 100-packet queues, and 200 s simulations.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
)

// Seed is the fixed seed for all randomized workloads, making every
// experiment reproducible bit-for-bit.
const Seed = 20201027 // the paper's presentation date at IMC '20

// Scale trims experiment horizons for quick runs. Full fidelity (the
// paper's 200 s) is Scale = 1; benches default to a reduced horizon and
// note it in their output.
type Scale struct {
	// Duration is the virtual horizon in seconds.
	Duration float64
	// Pairs caps the number of traffic pairs in constellation-wide packet
	// experiments (0 = no cap).
	Pairs int
}

// PaperScale reproduces the paper's full experiment horizon.
func PaperScale() Scale { return Scale{Duration: 200} }

// QuickScale is a reduced horizon for fast regression runs: the same
// scenario shapes at a fraction of the virtual time.
func QuickScale() Scale { return Scale{Duration: 20, Pairs: 20} }

// PaperCities returns the paper's ground-station set.
func PaperCities() []groundstation.GS { return groundstation.Top100Cities() }

// PairByNames resolves two city names to ground-station indices.
func PairByNames(gss []groundstation.GS, a, b string) (int, int) {
	ga := groundstation.MustByName(gss, a)
	gb := groundstation.MustByName(gss, b)
	ia, ib := -1, -1
	for i, g := range gss {
		if g.ID == ga.ID {
			ia = i
		}
		if g.ID == gb.ID {
			ib = i
		}
	}
	return ia, ib
}

// RandomPermutationPairs builds the paper's traffic matrix: a random
// permutation over the ground stations, with fixed points skipped, yielding
// one (src, dst) pair per station.
func RandomPermutationPairs(n int, seed int64) [][2]int {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(n)
	var out [][2]int
	for i, j := range perm {
		if i == j {
			continue
		}
		out = append(out, [2]int{i, j})
	}
	return out
}

// LinkKey identifies a directed link by node ids.
type LinkKey struct{ From, To int }

// LinkMonitor accumulates transmitted bytes per directed link per fixed
// window, via the network's transmit hook. It backs the utilization
// figures (10, 14, 15).
type LinkMonitor struct {
	Window  sim.Time
	windows int
	bytes   map[LinkKey][]int64
}

// NewLinkMonitor creates a monitor with the given window width covering
// duration, and attaches it to the network.
func NewLinkMonitor(n *sim.Network, window, duration sim.Time) *LinkMonitor {
	m := &LinkMonitor{
		Window:  window,
		windows: int(duration/window) + 1,
		bytes:   map[LinkKey][]int64{},
	}
	n.SetTransmitHook(func(ti sim.TransmitInfo) {
		k := LinkKey{From: ti.From, To: ti.To}
		w := int(ti.Start / window)
		if w >= m.windows {
			return
		}
		buckets, ok := m.bytes[k]
		if !ok {
			buckets = make([]int64, m.windows)
			m.bytes[k] = buckets
		}
		buckets[w] += int64(ti.Packet.Size)
	})
	return m
}

// Utilization returns the link's utilization (0..1) in window w given the
// link rate in bits/s.
func (m *LinkMonitor) Utilization(k LinkKey, w int, rateBps float64) float64 {
	buckets, ok := m.bytes[k]
	if !ok || w < 0 || w >= m.windows {
		return 0
	}
	return float64(buckets[w]*8) / (rateBps * m.Window.Seconds())
}

// Links returns all directed links that ever carried traffic, sorted for
// deterministic iteration.
func (m *LinkMonitor) Links() []LinkKey {
	out := make([]LinkKey, 0, len(m.bytes))
	for k := range m.bytes {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Windows returns the number of windows tracked.
func (m *LinkMonitor) Windows() int { return m.windows }

// MaxOnPathUtilization returns the utilization of the most-used directed
// link along the node path in window w.
func (m *LinkMonitor) MaxOnPathUtilization(path []int, w int, rateBps float64) float64 {
	max := 0.0
	for i := 0; i+1 < len(path); i++ {
		if u := m.Utilization(LinkKey{From: path[i], To: path[i+1]}, w, rateBps); u > max {
			max = u
		}
	}
	return max
}

// Report is a formatted experiment result: a title, the regenerated
// rows/series, and free-form notes comparing against the paper.
type Report struct {
	Title string
	Lines []string
}

// Addf appends a formatted line.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(r.Title)))
	b.WriteByte('\n')
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// paperConstellations returns the three first-shell configurations the
// constellation-wide sections compare.
func paperConstellations() []constellation.Config {
	return []constellation.Config{
		constellation.Starlink(),
		constellation.Kuiper(),
		constellation.Telesat(),
	}
}

// buildTopology generates a constellation and binds the ground stations.
func buildTopology(cfg constellation.Config, gss []groundstation.GS) (*routing.Topology, error) {
	c, err := constellation.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return routing.NewTopology(c, gss, routing.GSLFree)
}
