package experiments

import (
	"fmt"
	"time"

	"hypatia/internal/constellation"
	"hypatia/internal/core"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// ScalabilityPoint is one point of Fig 2: the wall-clock cost of simulating
// a workload at a given goodput.
type ScalabilityPoint struct {
	Transport   string  // "tcp" or "udp"
	LineRateBps float64 // uniform link rate of the scenario
	GoodputBps  float64 // network-wide goodput achieved
	VirtualSec  float64 // simulated seconds
	WallSec     float64 // real seconds spent
	Slowdown    float64 // WallSec / VirtualSec
	Events      uint64  // discrete events processed
}

// ScalabilityConfig parameterizes the Fig 2 sweep.
type ScalabilityConfig struct {
	// LineRates to sweep; default the paper's set up to 250 Mbit/s
	// (1 and 10 Gbit/s are reachable by appending to this slice).
	LineRates []float64
	// VirtualSeconds of traffic to simulate per point; default 2.
	VirtualSeconds float64
	// Pairs caps the traffic matrix size (0 = all 100 permutation pairs).
	Pairs int
	// Constellation; default Kuiper K1 as in the paper.
	Constellation constellation.Config
}

func (c ScalabilityConfig) withDefaults() ScalabilityConfig {
	if c.LineRates == nil {
		c.LineRates = []float64{1e6, 10e6, 25e6, 100e6, 250e6}
	}
	if c.VirtualSeconds == 0 {
		c.VirtualSeconds = 2
	}
	if c.Constellation.Shells == nil {
		c.Constellation = constellation.Kuiper()
	}
	return c
}

// Fig2Scalability measures the simulator's slowdown (real time per virtual
// second) as a function of achieved goodput, for TCP and UDP workloads over
// Kuiper K1 with the 100-city random-permutation traffic matrix — the
// experiment behind Fig 2. Absolute numbers depend on the host machine; the
// paper's takeaway (slowdown scales with goodput; UDP is cheaper than TCP)
// is machine-independent.
func Fig2Scalability(cfg ScalabilityConfig) ([]ScalabilityPoint, *Report, error) {
	cfg = cfg.withDefaults()
	var points []ScalabilityPoint
	for _, transportKind := range []string{"udp", "tcp"} {
		for _, rate := range cfg.LineRates {
			pt, err := scalabilityPoint(cfg, transportKind, rate)
			if err != nil {
				return nil, nil, err
			}
			points = append(points, pt)
		}
	}
	rep := &Report{Title: "Fig 2: simulator scalability (slowdown vs goodput)"}
	rep.Addf("%-5s %12s %14s %12s %10s %12s", "kind", "line rate", "goodput", "virtual s", "wall s", "slowdown")
	for _, p := range points {
		rep.Addf("%-5s %9.0f Mbps %11.3f Mbps %12.1f %10.2f %11.1fx",
			p.Transport, p.LineRateBps/1e6, p.GoodputBps/1e6, p.VirtualSec, p.WallSec, p.Slowdown)
	}
	return points, rep, nil
}

func scalabilityPoint(cfg ScalabilityConfig, kind string, rate float64) (ScalabilityPoint, error) {
	gss := PaperCities()
	pairs := RandomPermutationPairs(len(gss), Seed)
	if cfg.Pairs > 0 && len(pairs) > cfg.Pairs {
		pairs = pairs[:cfg.Pairs]
	}
	// Forwarding state is needed toward receivers (data) and senders
	// (ACKs flow back), so both ends of every pair are active.
	dsts := map[int]bool{}
	for _, p := range pairs {
		dsts[p[0]] = true
		dsts[p[1]] = true
	}
	var active []int
	for d := range dsts {
		active = append(active, d)
	}

	netCfg := sim.DefaultConfig()
	netCfg.ISLRateBps = rate
	netCfg.GSLRateBps = rate

	run, err := core.NewRun(core.RunConfig{
		Constellation:  cfg.Constellation,
		GroundStations: gss,
		Duration:       sim.Seconds(cfg.VirtualSeconds),
		Net:            netCfg,
		ActiveDstGS:    active,
	})
	if err != nil {
		return ScalabilityPoint{}, err
	}

	var goodput func() float64
	switch kind {
	case "udp":
		var flows []*transport.UDPFlow
		for _, p := range pairs {
			f := transport.NewUDPFlow(run.Net, run.Flows, p[0], p[1], transport.UDPConfig{RateBps: rate})
			f.Start()
			flows = append(flows, f)
		}
		goodput = func() float64 {
			total := 0.0
			for _, f := range flows {
				total += f.GoodputBps(run.Cfg.Duration)
			}
			return total
		}
	case "tcp":
		var flows []*transport.TCPFlow
		for _, p := range pairs {
			f := transport.NewTCPFlow(run.Net, run.Flows, p[0], p[1], transport.TCPConfig{})
			f.Start()
			flows = append(flows, f)
		}
		goodput = func() float64 {
			total := 0.0
			for _, f := range flows {
				total += f.GoodputBps(run.Cfg.Duration)
			}
			return total
		}
	default:
		return ScalabilityPoint{}, fmt.Errorf("experiments: unknown transport %q", kind)
	}

	start := time.Now()
	run.Execute()
	wall := time.Since(start).Seconds()

	return ScalabilityPoint{
		Transport:   kind,
		LineRateBps: rate,
		GoodputBps:  goodput(),
		VirtualSec:  cfg.VirtualSeconds,
		WallSec:     wall,
		Slowdown:    wall / cfg.VirtualSeconds,
		Events:      run.Sim.Processed(),
	}, nil
}
