package experiments

import (
	"strings"

	"hypatia/internal/constellation"
	"hypatia/internal/routing"
	"testing"

	"hypatia/internal/sim"
)

func checkChart(t *testing.T, name, svg string) {
	t.Helper()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "<polyline") {
		t.Errorf("%s: not a chart", name)
	}
}

func TestFigureCharts(t *testing.T) {
	// One small end-to-end pass producing every chart kind.
	studies, _, err := Fig3and4PathStudies(Scale{Duration: 4}, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range studies {
		svg, err := Fig3Chart(s)
		if err != nil {
			t.Fatalf("Fig3Chart(%s): %v", s.Name, err)
		}
		checkChart(t, "fig3", svg)
		svg, err = Fig4Chart(s)
		if err != nil {
			t.Fatalf("Fig4Chart(%s): %v", s.Name, err)
		}
		checkChart(t, "fig4", svg)
	}

	cc, _, err := Fig5LossVsDelayCC(Scale{Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	charts, err := Fig5Charts(cc)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 3 {
		t.Fatalf("fig5 charts = %d", len(charts))
	}
	for name, svg := range charts {
		checkChart(t, name, svg)
	}

	all, _, err := Fig6to8Analysis(Scale{Duration: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cdfs, err := Fig6to8Charts(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs) != 7 {
		t.Fatalf("fig6-8 charts = %d", len(cdfs))
	}
	for name, svg := range cdfs {
		checkChart(t, name, svg)
	}

	ct, _, err := Fig10to15CrossTraffic(CrossTrafficConfig{Scale: Scale{Duration: 4, Pairs: 4}})
	if err != nil {
		t.Fatal(err)
	}
	svg, err := Fig10Chart(ct)
	if err != nil {
		t.Fatal(err)
	}
	checkChart(t, "fig10", svg)

	bp, _, err := AppendixBentPipe(BentPipeConfig{Scale: Scale{Duration: 4}})
	if err != nil {
		t.Fatal(err)
	}
	svg, err = Fig18Chart(bp)
	if err != nil {
		t.Fatal(err)
	}
	checkChart(t, "fig18", svg)
	svg, err = Fig19Chart(bp)
	if err != nil {
		t.Fatal(err)
	}
	checkChart(t, "fig19", svg)
}

func TestHotspotBands(t *testing.T) {
	res, _, err := Fig10to15CrossTraffic(CrossTrafficConfig{Scale: Scale{Duration: 4, Pairs: 6}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := buildTopologyForTest()
	if err != nil {
		t.Fatal(err)
	}
	bands, err := res.HotspotBands(c, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NetworkLoads) > 0 && len(bands) == 0 {
		t.Error("loads present but no bands")
	}
}

func buildTopologyForTest() (*routing.Topology, error) {
	return buildTopology(constellation.Kuiper(), PaperCities())
}
