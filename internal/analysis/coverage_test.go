package analysis

import (
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
)

func coverageGSes() []groundstation.GS {
	return []groundstation.GS{
		{ID: 0, Name: "Quito", Position: geom.LLADeg(-0.18, -78.47, 0)},
		{ID: 1, Name: "Saint Petersburg", Position: geom.LLADeg(59.93, 30.36, 0)},
		{ID: 2, Name: "McMurdo", Position: geom.LLADeg(-77.85, 166.67, 0)},
	}
}

func TestCoverageKuiper(t *testing.T) {
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Coverage(c, coverageGSes(), 600, 10)
	if err != nil {
		t.Fatal(err)
	}
	quito, stp, mcmurdo := stats[0], stats[1], stats[2]

	// The equator is comfortably covered by a 51.9-degree shell.
	if quito.CoveredFrac < 0.99 {
		t.Errorf("Quito covered %.2f of the time", quito.CoveredFrac)
	}
	if quito.MeanVisible < 1 {
		t.Errorf("Quito sees %.2f satellites on average", quito.MeanVisible)
	}
	// Saint Petersburg is marginal: covered, but by far fewer satellites.
	if stp.MeanVisible >= quito.MeanVisible {
		t.Errorf("St. Petersburg (%.2f) should see fewer than Quito (%.2f)",
			stp.MeanVisible, quito.MeanVisible)
	}
	// Antarctica is out of reach of Kuiper entirely (paper: Kuiper
	// eschews connectivity near the poles).
	if mcmurdo.CoveredFrac != 0 {
		t.Errorf("McMurdo covered %.2f of the time by Kuiper", mcmurdo.CoveredFrac)
	}
	if mcmurdo.LongestOutage() == 0 {
		t.Error("McMurdo should report one long outage")
	}
	if mcmurdo.MaxVisible != 0 {
		t.Errorf("McMurdo max visible = %d", mcmurdo.MaxVisible)
	}
}

func TestCoverageTelesatPolar(t *testing.T) {
	// Telesat's 98.98-degree shell covers the poles (the paper's Fig 11
	// discussion).
	c, err := constellation.Generate(constellation.Telesat())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Coverage(c, coverageGSes()[2:], 600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].CoveredFrac < 0.99 {
		t.Errorf("McMurdo covered %.2f of the time by Telesat", stats[0].CoveredFrac)
	}
}

func TestCoverageValidation(t *testing.T) {
	c, _ := constellation.Generate(constellation.Kuiper())
	if _, err := Coverage(c, coverageGSes(), 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Coverage(c, coverageGSes(), 10, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestCoverageOutageAccounting(t *testing.T) {
	// Outage durations must sum to (1 - covered) of the scan, roughly.
	c, _ := constellation.Generate(constellation.Kuiper())
	stats, err := Coverage(c, coverageGSes()[1:2], 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := stats[0]
	var outageSum float64
	for i, o := range st.Outages {
		if o <= 0 {
			t.Fatalf("non-positive outage length %v", o)
		}
		if i > 0 && o > st.Outages[i-1] {
			t.Fatal("outages not sorted longest-first")
		}
		outageSum += o
	}
	uncovered := (1 - st.CoveredFrac) * 1200
	if outageSum < uncovered-30 || outageSum > uncovered+30 {
		t.Errorf("outage sum %v vs uncovered time %v", outageSum, uncovered)
	}
}

func TestHotspotsByLatitude(t *testing.T) {
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := routing.NewTopology(c, groundstation.Top100Cities(), routing.GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	// Load the first few ISLs artificially.
	var loads []LoadedLink
	for i, isl := range c.ISLs[:20] {
		loads = append(loads, LoadedLink{From: isl.A, To: isl.B, Utilization: 0.1 * float64(i%10+1) / 10})
	}
	loads = append(loads, LoadedLink{From: 0, To: 1, Utilization: 0}) // ignored
	bands, err := HotspotsByLatitude(topo, loads, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	totalLinks := 0
	for _, b := range bands {
		totalLinks += b.Links
		if b.MeanUtilization <= 0 || b.MeanUtilization > 1 {
			t.Errorf("band %v..%v mean %v", b.LatLoDeg, b.LatHiDeg, b.MeanUtilization)
		}
		if b.MaxUtilization < b.MeanUtilization {
			t.Errorf("band %v..%v max %v < mean %v", b.LatLoDeg, b.LatHiDeg, b.MaxUtilization, b.MeanUtilization)
		}
		// Kuiper ISL midpoints stay within |lat| <= ~52.
		if b.LatHiDeg < -60 || b.LatLoDeg > 60 {
			t.Errorf("implausible band %v..%v for a 51.9-degree shell", b.LatLoDeg, b.LatHiDeg)
		}
	}
	if totalLinks != 20 {
		t.Errorf("binned %d links, want 20", totalLinks)
	}
	if _, err := HotspotsByLatitude(topo, loads, 0, 0); err == nil {
		t.Error("zero band width accepted")
	}
}
