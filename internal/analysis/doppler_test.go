package analysis

import (
	"math"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
)

func TestISLDynamics(t *testing.T) {
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		t.Fatal(err)
	}
	dyn := ISLDynamicsAt(c, 50)
	if len(dyn) != len(c.ISLs) {
		t.Fatalf("dynamics for %d of %d ISLs", len(dyn), len(c.ISLs))
	}
	orbitalSpeed := c.Satellites[0].Elements.Speed()
	maxIntra, maxInter := 0.0, 0.0
	for _, d := range dyn {
		if d.Length <= 0 || d.Length > constellation.MaxISLRange(630e3) {
			t.Fatalf("ISL %d-%d length %v implausible", d.A, d.B, d.Length)
		}
		// Relative speed can never exceed twice the orbital speed.
		if math.Abs(d.RangeRate) > 2*orbitalSpeed {
			t.Fatalf("ISL %d-%d range rate %v exceeds 2x orbital speed", d.A, d.B, d.RangeRate)
		}
		// Doppler factor consistency.
		if want := -d.RangeRate / geom.SpeedOfLight; math.Abs(d.DopplerShiftPerHz-want) > 1e-18 {
			t.Fatalf("Doppler factor inconsistent")
		}
		a, b := c.Satellites[d.A], c.Satellites[d.B]
		if a.Orbit == b.Orbit && a.ShellIndex == b.ShellIndex {
			maxIntra = math.Max(maxIntra, math.Abs(d.RangeRate))
		} else {
			maxInter = math.Max(maxInter, math.Abs(d.RangeRate))
		}
	}
	// Intra-orbit neighbors move in lockstep: range rates near zero.
	// Inter-orbit links breathe as planes converge and diverge.
	if maxIntra > 1 {
		t.Errorf("intra-orbit range rate up to %v m/s, want ~0", maxIntra)
	}
	if maxInter < 10 {
		t.Errorf("inter-orbit range rates all below 10 m/s (max %v); expected breathing", maxInter)
	}
}

func TestISLDynamicsChangesOverTime(t *testing.T) {
	c, err := constellation.Generate(constellation.Telesat())
	if err != nil {
		t.Fatal(err)
	}
	d0 := ISLDynamicsAt(c, 0)
	d1 := ISLDynamicsAt(c, 300)
	changed := 0
	for i := range d0 {
		if math.Abs(d0[i].Length-d1[i].Length) > 1000 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no ISL changed length over 5 minutes")
	}
}
