package analysis

import (
	"hypatia/internal/constellation"
	"hypatia/internal/geom"
)

// ISLDynamics describes the instantaneous kinematics of one inter-satellite
// link: its length, the rate at which that length changes, and the
// resulting Doppler factor. The paper's §7 names modeling the Doppler
// effect on ISL bandwidth/reliability as future work; this provides the
// kinematic inputs for such models.
type ISLDynamics struct {
	A, B      int     // satellite indices
	Length    float64 // meters
	RangeRate float64 // m/s; positive when the satellites separate
	// DopplerShiftPerHz is the fractional carrier shift -RangeRate/c: a
	// 193 THz optical carrier (1550 nm) shifts by this fraction times
	// 193e12 Hz.
	DopplerShiftPerHz float64
}

// ISLDynamicsAt computes the kinematics of every ISL at time t, using the
// propagators' analytic velocities. Intra-orbit +Grid links have near-zero
// range rate (the satellites move in lockstep); inter-orbit links oscillate
// as the planes converge near the inclination limits and diverge over the
// Equator.
func ISLDynamicsAt(c *constellation.Constellation, t float64) []ISLDynamics {
	type state struct {
		pos, vel geom.Vec3
	}
	states := make([]state, c.NumSatellites())
	for i := range states {
		st := c.Satellites[i].Propagator.StateECI(t)
		states[i] = state{pos: st.Position, vel: st.Velocity}
	}
	out := make([]ISLDynamics, len(c.ISLs))
	for k, isl := range c.ISLs {
		d := states[isl.A].pos.Sub(states[isl.B].pos)
		length := d.Norm()
		rate := 0.0
		if length > 0 {
			rate = states[isl.A].vel.Sub(states[isl.B].vel).Dot(d) / length
		}
		out[k] = ISLDynamics{
			A: isl.A, B: isl.B,
			Length:            length,
			RangeRate:         rate,
			DopplerShiftPerHz: -rate / geom.SpeedOfLight,
		}
	}
	return out
}
