// Package analysis implements Hypatia's snapshot-based network analysis —
// the Go counterpart of the paper's networkx pipeline. It steps a topology
// through time at a fixed granularity, computes shortest paths on each
// snapshot, and aggregates the per-pair statistics behind the paper's
// constellation-wide figures: RTT extremes relative to the geodesic
// (Fig 6), RTT variation (Fig 7), path-structure churn (Fig 8), and the
// sensitivity of those measurements to the time-step granularity (Fig 9).
package analysis

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"hypatia/internal/geom"
	"hypatia/internal/graph"
	"hypatia/internal/routing"
)

// ECDF is an empirical cumulative distribution over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from values (copied and sorted; NaNs rejected).
func NewECDF(vals []float64) *ECDF {
	s := make([]float64, 0, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) {
			panic("analysis: NaN in ECDF input")
		}
		s = append(s, v)
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// FractionBelow returns P(X <= x).
func (e *ECDF) FractionBelow(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the p-quantile (0..1) by nearest rank.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Points renders the ECDF as (value, cumulative fraction) pairs, one per
// sample, suitable for plotting the paper's CDF figures.
func (e *ECDF) Points() [][2]float64 {
	out := make([][2]float64, len(e.sorted))
	for i, v := range e.sorted {
		out[i] = [2]float64{v, float64(i+1) / float64(len(e.sorted))}
	}
	return out
}

// PairStats aggregates a ground-station pair's behavior over a stepped
// analysis window.
type PairStats struct {
	Src, Dst int // ground-station indices

	GeodesicRTT float64 // seconds: great-circle at c, the lower bound
	MinRTT      float64 // seconds, over connected steps; +Inf if never connected
	MaxRTT      float64 // seconds, over connected steps; 0 if never connected

	PathChanges int // number of steps whose satellite path differs from the previous connected step
	MinHops     int // links in the shortest observed path (incl. both GSLs)
	MaxHops     int // links in the longest observed path

	DisconnectedSteps int // steps with no route
	Steps             int // total steps analyzed
}

// Connected reports whether the pair ever had a route.
func (p PairStats) Connected() bool { return p.MaxRTT > 0 }

// MaxOverGeodesic returns MaxRTT / GeodesicRTT (the Fig 6 metric).
func (p PairStats) MaxOverGeodesic() float64 { return p.MaxRTT / p.GeodesicRTT }

// RTTSpread returns MaxRTT - MinRTT in seconds (the Fig 7(b) metric).
func (p PairStats) RTTSpread() float64 { return p.MaxRTT - p.MinRTT }

// RTTRatio returns MaxRTT / MinRTT (the Fig 7(c) metric).
func (p PairStats) RTTRatio() float64 { return p.MaxRTT / p.MinRTT }

// Config controls a stepped analysis.
type Config struct {
	// Duration in seconds (exclusive of the final step if not a multiple).
	Duration float64
	// Step is the snapshot granularity in seconds; default 0.1 (100 ms).
	Step float64
	// ExcludePairsCloserThan drops pairs whose endpoints are within this
	// many meters (the paper excludes < 500 km pairs). 0 keeps all.
	ExcludePairsCloserThan float64
	// Pairs restricts analysis to specific (src, dst) ground-station index
	// pairs; nil analyzes all unordered pairs.
	Pairs [][2]int
	// Workers bounds parallelism (per-source Dijkstras within each step);
	// 0 picks 8.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Step == 0 {
		c.Step = 0.1
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	return c
}

// pairList materializes the pair set for a topology under the config.
func (c Config) pairList(topo *routing.Topology) [][2]int {
	if c.Pairs != nil {
		return c.Pairs
	}
	ng := topo.NumGS()
	var out [][2]int
	for i := 0; i < ng; i++ {
		for j := i + 1; j < ng; j++ {
			if c.ExcludePairsCloserThan > 0 {
				d := geom.Haversine(topo.GroundStations[i].Position, topo.GroundStations[j].Position)
				if d < c.ExcludePairsCloserThan {
					continue
				}
			}
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// stepResult carries one source GS's Dijkstra output for one snapshot.
type stepResult struct {
	dist []float64
	prev []int32
}

// AnalyzePairs steps the topology from t=0 through cfg.Duration and returns
// aggregated statistics for every pair. A "path change" is counted when the
// satellite sequence differs between two successive connected steps, the
// paper's definition.
func AnalyzePairs(topo *routing.Topology, cfg Config) ([]PairStats, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("analysis: non-positive duration")
	}
	pairs := cfg.pairList(topo)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("analysis: no pairs to analyze")
	}

	stats := make([]PairStats, len(pairs))
	lastPath := make([][]int, len(pairs)) // satellite sequence at the last connected step
	for i, p := range pairs {
		stats[i] = PairStats{
			Src: p[0], Dst: p[1],
			GeodesicRTT: geom.GeodesicRTT(
				topo.GroundStations[p[0]].Position,
				topo.GroundStations[p[1]].Position),
			MinRTT:  math.Inf(1),
			MinHops: math.MaxInt32,
		}
	}

	// Which sources need a Dijkstra tree per step.
	srcSet := map[int]bool{}
	for _, p := range pairs {
		srcSet[p[0]] = true
	}
	srcs := make([]int, 0, len(srcSet))
	for s := range srcSet {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)

	steps := int(cfg.Duration/cfg.Step) + 1
	trees := make(map[int]*stepResult, len(srcs))
	for _, s := range srcs {
		trees[s] = &stepResult{}
	}

	for step := 0; step < steps; step++ {
		t := float64(step) * cfg.Step
		snap := topo.Snapshot(t)
		runDijkstras(snap, srcs, trees, cfg.Workers)

		for i, p := range pairs {
			st := &stats[i]
			st.Steps++
			tree := trees[p[0]]
			dstNode := topo.GSNode(p[1])
			if math.IsInf(tree.dist[dstNode], 1) {
				st.DisconnectedSteps++
				continue
			}
			rtt := 2 * tree.dist[dstNode] / geom.SpeedOfLight
			if rtt < st.MinRTT {
				st.MinRTT = rtt
			}
			if rtt > st.MaxRTT {
				st.MaxRTT = rtt
			}
			path := graph.PathFromPrev(tree.prev, topo.GSNode(p[0]), dstNode)
			hops := len(path) - 1
			if hops < st.MinHops {
				st.MinHops = hops
			}
			if hops > st.MaxHops {
				st.MaxHops = hops
			}
			sats := routing.SatSequence(topo, path)
			if lastPath[i] != nil && !intSliceEqual(lastPath[i], sats) {
				st.PathChanges++
			}
			lastPath[i] = sats
		}
	}
	return stats, nil
}

// runDijkstras fills trees for each source on worker goroutines.
func runDijkstras(snap *routing.Snapshot, srcs []int, trees map[int]*stepResult, workers int) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				tr := trees[s]
				tr.dist, tr.prev = snap.FromGS(s, tr.dist, tr.prev)
			}
		}()
	}
	for _, s := range srcs {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
}

func intSliceEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChangeProfile is the output of PathChangeProfile: per-step and per-pair
// path-change counts at one granularity.
type ChangeProfile struct {
	Step float64 // seconds
	// PerStep[k] is the number of pairs whose path changed between step
	// k-1 and step k (PerStep[0] is always 0).
	PerStep []int
	// PerPair[i] is the total change count for pair i (cfg order).
	PerPair []int
	Pairs   [][2]int
}

// PathChangeProfile computes path-change counts at the given granularity —
// the raw material of Fig 9, where coarser forwarding-state updates are
// shown to miss path changes entirely.
func PathChangeProfile(topo *routing.Topology, cfg Config) (*ChangeProfile, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("analysis: non-positive duration")
	}
	pairs := cfg.pairList(topo)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("analysis: no pairs to analyze")
	}
	srcSet := map[int]bool{}
	for _, p := range pairs {
		srcSet[p[0]] = true
	}
	srcs := make([]int, 0, len(srcSet))
	for s := range srcSet {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)

	steps := int(cfg.Duration/cfg.Step) + 1
	prof := &ChangeProfile{
		Step:    cfg.Step,
		PerStep: make([]int, steps),
		PerPair: make([]int, len(pairs)),
		Pairs:   pairs,
	}
	lastPath := make([][]int, len(pairs))
	trees := make(map[int]*stepResult, len(srcs))
	for _, s := range srcs {
		trees[s] = &stepResult{}
	}
	for step := 0; step < steps; step++ {
		t := float64(step) * cfg.Step
		snap := topo.Snapshot(t)
		runDijkstras(snap, srcs, trees, cfg.Workers)
		for i, p := range pairs {
			tree := trees[p[0]]
			dstNode := topo.GSNode(p[1])
			if math.IsInf(tree.dist[dstNode], 1) {
				lastPath[i] = nil
				continue
			}
			path := graph.PathFromPrev(tree.prev, topo.GSNode(p[0]), dstNode)
			sats := routing.SatSequence(topo, path)
			if lastPath[i] != nil && !intSliceEqual(lastPath[i], sats) {
				prof.PerStep[step]++
				prof.PerPair[i]++
			}
			lastPath[i] = sats
		}
	}
	return prof, nil
}

// MissedChanges compares a coarse profile against a fine-grained baseline
// over the same pairs and returns, per pair, how many changes the coarse
// granularity missed (never negative).
func MissedChanges(baseline, coarse *ChangeProfile) ([]int, error) {
	if len(baseline.PerPair) != len(coarse.PerPair) {
		return nil, fmt.Errorf("analysis: profiles cover different pair sets")
	}
	out := make([]int, len(baseline.PerPair))
	for i := range out {
		d := baseline.PerPair[i] - coarse.PerPair[i]
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
	return out, nil
}

// RTTSeries returns the computed RTT (seconds; +Inf when disconnected) of
// one pair at every step — the "Computed" curve of Fig 3.
func RTTSeries(topo *routing.Topology, src, dst int, duration, step float64) []float64 {
	n := int(duration/step) + 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = topo.Snapshot(float64(i)*step).RTT(src, dst)
	}
	return out
}
