package analysis

import (
	"fmt"
	"sort"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
)

// CoverageStats summarizes a ground location's connectivity to a
// constellation over a scan window — the quantitative counterpart of the
// paper's ground-observer view (Fig 12): how many satellites are
// connectable over time, and how long the outages are.
type CoverageStats struct {
	Name string

	Samples     int     // scan samples taken
	CoveredFrac float64 // fraction of samples with >= 1 connectable satellite
	MeanVisible float64 // mean connectable satellites per sample
	MaxVisible  int
	// Outages lists the lengths (seconds) of maximal windows with no
	// connectable satellite, longest first.
	Outages []float64
}

// LongestOutage returns the longest outage in seconds (0 when none).
func (c CoverageStats) LongestOutage() float64 {
	if len(c.Outages) == 0 {
		return 0
	}
	return c.Outages[0]
}

// Coverage scans the constellation's connectivity from each ground station
// every step seconds across duration.
func Coverage(c *constellation.Constellation, gss []groundstation.GS, duration, step float64) ([]CoverageStats, error) {
	if duration <= 0 || step <= 0 {
		return nil, fmt.Errorf("analysis: non-positive coverage scan window")
	}
	out := make([]CoverageStats, len(gss))
	for i := range out {
		out[i].Name = gss[i].Name
	}
	outageStart := make([]float64, len(gss))
	inOutage := make([]bool, len(gss))

	for t := 0.0; t <= duration; t += step {
		pos := c.PositionsECEF(t, nil)
		for i, gs := range gss {
			n := len(c.VisibleFrom(gs.Position, t, pos))
			st := &out[i]
			st.Samples++
			st.MeanVisible += float64(n)
			if n > st.MaxVisible {
				st.MaxVisible = n
			}
			if n > 0 {
				st.CoveredFrac++
				if inOutage[i] {
					st.Outages = append(st.Outages, t-outageStart[i])
					inOutage[i] = false
				}
			} else if !inOutage[i] {
				inOutage[i] = true
				outageStart[i] = t
			}
		}
	}
	for i := range out {
		st := &out[i]
		if inOutage[i] {
			st.Outages = append(st.Outages, duration-outageStart[i]+step)
		}
		st.MeanVisible /= float64(st.Samples)
		st.CoveredFrac /= float64(st.Samples)
		sort.Sort(sort.Reverse(sort.Float64Slice(st.Outages)))
	}
	return out, nil
}
