package analysis

import (
	"math"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
)

func miniTopo(t *testing.T) *routing.Topology {
	t.Helper()
	cfg := constellation.Config{
		Name: "Mini",
		Shells: []constellation.Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 16, SatsPerOrbit: 16,
			IncDeg: 53,
		}},
		MinElevDeg: 25,
	}
	c, err := constellation.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := groundstation.Top100Cities()
	var gss []groundstation.GS
	for i, name := range []string{"Istanbul", "Nairobi", "Manila", "Rio de Janeiro", "Saint Petersburg"} {
		g := groundstation.MustByName(all, name)
		g.ID = i
		gss = append(gss, g)
	}
	topo, err := routing.NewTopology(c, gss, routing.GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 4})
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if got := e.FractionBelow(2); got != 0.5 {
		t.Errorf("FractionBelow(2) = %v", got)
	}
	if got := e.FractionBelow(0.5); got != 0 {
		t.Errorf("FractionBelow(0.5) = %v", got)
	}
	if got := e.FractionBelow(4); got != 1 {
		t.Errorf("FractionBelow(4) = %v", got)
	}
	if got := e.Median(); got != 2 {
		t.Errorf("Median = %v", got)
	}
	if got := e.Quantile(1); got != 4 {
		t.Errorf("Q(1) = %v", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Q(0) = %v", got)
	}
	pts := e.Points()
	if len(pts) != 4 || pts[0][0] != 1 || pts[0][1] != 0.25 || pts[3][1] != 1 {
		t.Errorf("Points = %v", pts)
	}
}

func TestECDFEmptyAndNaN(t *testing.T) {
	e := NewECDF(nil)
	if e.FractionBelow(1) != 0 {
		t.Error("empty ECDF fraction")
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty ECDF quantile should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("NaN accepted")
		}
	}()
	NewECDF([]float64{math.NaN()})
}

func TestAnalyzePairsBasics(t *testing.T) {
	topo := miniTopo(t)
	stats, err := AnalyzePairs(topo, Config{Duration: 30, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 10 { // C(5,2)
		t.Fatalf("pairs = %d", len(stats))
	}
	for _, st := range stats {
		if st.Steps != 31 {
			t.Errorf("pair %d-%d: steps = %d", st.Src, st.Dst, st.Steps)
		}
		if !st.Connected() {
			continue
		}
		if st.MinRTT <= st.GeodesicRTT {
			t.Errorf("pair %d-%d: min RTT %v below geodesic %v", st.Src, st.Dst, st.MinRTT, st.GeodesicRTT)
		}
		if st.MaxRTT < st.MinRTT {
			t.Errorf("pair %d-%d: max < min RTT", st.Src, st.Dst)
		}
		if st.MinHops < 2 {
			t.Errorf("pair %d-%d: min hops %d < 2", st.Src, st.Dst, st.MinHops)
		}
		if st.MaxHops < st.MinHops {
			t.Errorf("pair %d-%d: hop bounds inverted", st.Src, st.Dst)
		}
		if st.MaxOverGeodesic() < 1 {
			t.Errorf("pair %d-%d: max/geodesic %v < 1", st.Src, st.Dst, st.MaxOverGeodesic())
		}
		if st.RTTSpread() < 0 || st.RTTRatio() < 1 {
			t.Errorf("pair %d-%d: spread/ratio invalid", st.Src, st.Dst)
		}
	}
}

func TestAnalyzePairsDetectsChanges(t *testing.T) {
	// Over minutes, a small constellation must produce at least one path
	// change somewhere.
	topo := miniTopo(t)
	stats, err := AnalyzePairs(topo, Config{Duration: 120, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range stats {
		total += st.PathChanges
	}
	if total == 0 {
		t.Error("no path changes in 2 minutes of LEO motion")
	}
}

func TestAnalyzePairsHighLatitudeDisconnection(t *testing.T) {
	// Saint Petersburg (index 4) must see disconnected steps on a 53-degree
	// shell at 25-degree min elevation with only 256 satellites.
	topo := miniTopo(t)
	stats, err := AnalyzePairs(topo, Config{
		Duration: 120, Step: 1,
		Pairs: [][2]int{{0, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].DisconnectedSteps == 0 {
		t.Skip("mini constellation happened to cover St. Petersburg throughout")
	}
	if stats[0].DisconnectedSteps == stats[0].Steps && stats[0].Connected() {
		t.Error("inconsistent connection bookkeeping")
	}
}

func TestAnalyzePairsExplicitPairsAndExclusion(t *testing.T) {
	topo := miniTopo(t)
	stats, err := AnalyzePairs(topo, Config{
		Duration: 5, Step: 1,
		Pairs: [][2]int{{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Src != 1 || stats[0].Dst != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// A huge exclusion radius leaves no pairs.
	if _, err := AnalyzePairs(topo, Config{
		Duration: 5, Step: 1, ExcludePairsCloserThan: 1e9,
	}); err == nil {
		t.Error("no-pairs case did not error")
	}
}

func TestAnalyzePairsRejectsBadDuration(t *testing.T) {
	topo := miniTopo(t)
	if _, err := AnalyzePairs(topo, Config{Duration: 0}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestAnalyzeDeterministicAcrossWorkerCounts(t *testing.T) {
	topo := miniTopo(t)
	a, err := AnalyzePairs(topo, Config{Duration: 20, Step: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzePairs(topo, Config{Duration: 20, Step: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker counts disagree at pair %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPathChangeProfileGranularity(t *testing.T) {
	// Coarser steps must observe at most as many changes per pair as the
	// fine baseline (missing those that happen within one interval), which
	// is the Fig 9 phenomenon.
	topo := miniTopo(t)
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	fine, err := PathChangeProfile(topo, Config{Duration: 120, Step: 1, Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := PathChangeProfile(topo, Config{Duration: 120, Step: 10, Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	missed, err := MissedChanges(fine, coarse)
	if err != nil {
		t.Fatal(err)
	}
	for i := range missed {
		if missed[i] < 0 {
			t.Fatalf("negative missed count at %d", i)
		}
	}
	// Total changes at the fine granularity can only exceed or match.
	sum := func(xs []int) int {
		total := 0
		for _, x := range xs {
			total += x
		}
		return total
	}
	if sum(fine.PerPair) < sum(coarse.PerPair) {
		t.Errorf("fine profile saw fewer changes (%d) than coarse (%d)",
			sum(fine.PerPair), sum(coarse.PerPair))
	}
	if len(fine.PerStep) != 121 || len(coarse.PerStep) != 13 {
		t.Errorf("step counts: %d, %d", len(fine.PerStep), len(coarse.PerStep))
	}
	if fine.PerStep[0] != 0 {
		t.Error("first step cannot have changes")
	}
}

func TestMissedChangesMismatchedProfiles(t *testing.T) {
	a := &ChangeProfile{PerPair: []int{1, 2}}
	b := &ChangeProfile{PerPair: []int{1}}
	if _, err := MissedChanges(a, b); err == nil {
		t.Error("mismatched profiles accepted")
	}
}

func TestRTTSeries(t *testing.T) {
	topo := miniTopo(t)
	series := RTTSeries(topo, 0, 1, 10, 1)
	if len(series) != 11 {
		t.Fatalf("len = %d", len(series))
	}
	connected := 0
	for _, r := range series {
		if !math.IsInf(r, 1) {
			connected++
			if r <= 0 || r > 1 {
				t.Fatalf("implausible RTT %v", r)
			}
		}
	}
	if connected == 0 {
		t.Skip("pair disconnected throughout in mini constellation")
	}
}
