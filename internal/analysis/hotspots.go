package analysis

import (
	"fmt"

	"hypatia/internal/geom"
	"hypatia/internal/routing"
)

// LatBandLoad aggregates directed-link utilization by the latitude band of
// the link midpoint. It quantifies the paper's Fig 15 observation that, for
// the city traffic matrix, the hot ISLs cluster over specific regions
// (trans-Atlantic / mid-latitudes) rather than being spread uniformly.
type LatBandLoad struct {
	LatLoDeg, LatHiDeg float64
	Links              int     // loaded links whose midpoint falls in the band
	MeanUtilization    float64 // mean over those links
	MaxUtilization     float64
}

// LoadedLink pairs a directed link with its utilization, as produced by the
// experiment harness's link monitor.
type LoadedLink struct {
	From, To    int
	Utilization float64
}

// HotspotsByLatitude bins loaded links into latitude bands of the given
// width (degrees) using link midpoints at time t.
func HotspotsByLatitude(topo *routing.Topology, loads []LoadedLink, t float64, bandDeg float64) ([]LatBandLoad, error) {
	if bandDeg <= 0 || bandDeg > 180 {
		return nil, fmt.Errorf("analysis: band width %v out of range", bandDeg)
	}
	pos := topo.NodePositions(t, nil)
	nBands := int(180/bandDeg) + 1
	bands := make([]LatBandLoad, nBands)
	for i := range bands {
		bands[i].LatLoDeg = -90 + float64(i)*bandDeg
		bands[i].LatHiDeg = bands[i].LatLoDeg + bandDeg
	}
	for _, l := range loads {
		if l.Utilization <= 0 {
			continue
		}
		mid := pos[l.From].Add(pos[l.To]).Scale(0.5)
		lat := geom.Deg(geom.ECEFToLLA(mid).Lat)
		idx := int((lat + 90) / bandDeg)
		if idx < 0 {
			idx = 0
		}
		if idx >= nBands {
			idx = nBands - 1
		}
		b := &bands[idx]
		b.Links++
		b.MeanUtilization += l.Utilization
		if l.Utilization > b.MaxUtilization {
			b.MaxUtilization = l.Utilization
		}
	}
	out := bands[:0]
	for _, b := range bands {
		if b.Links > 0 {
			b.MeanUtilization /= float64(b.Links)
			out = append(out, b)
		}
	}
	return out, nil
}
