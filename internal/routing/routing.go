// Package routing builds the time-varying network state of an LEO
// constellation: per-instant snapshot graphs over satellites and ground
// stations, shortest-path computations on them, and the per-time-step
// forwarding tables that the packet simulator installs (the paper computes
// forwarding state at a configurable granularity, 100 ms by default, while
// link latencies evolve continuously in between).
package routing

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"hypatia/internal/check"
	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/graph"
	"hypatia/internal/groundstation"
)

// GSLPolicy selects how ground stations attach to visible satellites.
type GSLPolicy int

const (
	// GSLFree lets a ground station reach any visible satellite (the
	// paper's default: GSes with multiple parabolic antennas).
	GSLFree GSLPolicy = iota
	// GSLNearestOnly restricts each ground station to its nearest visible
	// satellite, modeling single-antenna user terminals.
	GSLNearestOnly
)

// Topology binds a constellation to a set of ground stations and a GSL
// attachment policy. Node numbering: satellites occupy 0..S-1 (constellation
// order), ground stations occupy S..S+G-1 (dataset order).
type Topology struct {
	Constellation  *constellation.Constellation
	GroundStations []groundstation.GS //hypatia:handle(gs)
	Policy         GSLPolicy

	gsECEF []geom.Vec3 //hypatia:handle(gs)  precomputed ground-station ECEF positions
}

// NewTopology builds a Topology. Ground stations must be non-empty.
//
//hypatia:handle(gss: gs)
func NewTopology(c *constellation.Constellation, gss []groundstation.GS, policy GSLPolicy) (*Topology, error) {
	if c == nil || c.NumSatellites() == 0 {
		return nil, fmt.Errorf("routing: empty constellation")
	}
	if len(gss) == 0 {
		return nil, fmt.Errorf("routing: no ground stations")
	}
	t := &Topology{Constellation: c, GroundStations: gss, Policy: policy}
	t.gsECEF = make([]geom.Vec3, len(gss))
	for i, g := range gss {
		t.gsECEF[i] = g.ECEF()
	}
	return t, nil
}

// NumSats returns the satellite count.
//
//hypatia:noalloc
//hypatia:pure
func (t *Topology) NumSats() int { return t.Constellation.NumSatellites() }

// NumGS returns the ground-station count.
//
//hypatia:noalloc
//hypatia:pure
func (t *Topology) NumGS() int { return len(t.GroundStations) }

// NumNodes returns the total node count (satellites + ground stations).
//
//hypatia:noalloc
//hypatia:pure
func (t *Topology) NumNodes() int { return t.NumSats() + t.NumGS() }

// GSNode maps a ground-station index to its node id.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(gs: gs, return: node)
func (t *Topology) GSNode(gs int) int { return t.NumSats() + gs }

// IsGS reports whether node is a ground station.
//
//hypatia:noalloc
//hypatia:handle(node: node)
func (t *Topology) IsGS(node int) bool { return node >= t.NumSats() }

// GSIndex maps a ground-station node id back to its index; panics if node
// is a satellite.
//
//hypatia:handle(node: node, return: gs)
func (t *Topology) GSIndex(node int) int {
	if !t.IsGS(node) {
		panic(fmt.Sprintf("routing: node %d is a satellite", node))
	}
	return node - t.NumSats()
}

// Snapshot is the network at one instant: a distance-weighted graph over all
// nodes plus the node positions it was built from.
type Snapshot struct {
	T    float64 // seconds since epoch
	Topo *Topology
	G    *graph.Graph
	// Pos holds ECEF positions for every node (satellites then ground
	// stations) at time T.
	Pos []geom.Vec3 //hypatia:handle(node)

	// vis is the visibility-scan scratch buffer reused by SnapshotInto.
	vis []int //hypatia:handle(->node)
}

// NodePositions fills dst (allocating if needed) with the ECEF positions of
// every node — satellites then ground stations — at time tsec. It is the
// cheap position-only path used for per-packet propagation delays; Snapshot
// additionally builds the connectivity graph.
//
//hypatia:noalloc
//hypatia:handle(dst: node, return: node)
func (t *Topology) NodePositions(tsec float64, dst []geom.Vec3) []geom.Vec3 {
	n := t.NumNodes()
	if cap(dst) < n {
		dst = make([]geom.Vec3, n)
	}
	dst = dst[:n]
	t.Constellation.PositionsECEF(tsec, dst[:t.NumSats()])
	copy(dst[t.NumSats():], t.gsECEF)
	return dst
}

// Snapshot builds the instantaneous topology graph at time tsec: ISL edges
// between satellites (always up, lengths from current positions) and GSL
// edges between ground stations and their visible satellites per the
// attachment policy. Edge weights are distances in meters, so shortest
// path = lowest propagation latency.
func (t *Topology) Snapshot(tsec float64) *Snapshot {
	return t.SnapshotInto(tsec, nil)
}

// SnapshotInto rebuilds the snapshot for time tsec into s, reusing s's
// position arena, graph edge slabs, and visibility scratch; pass nil (or a
// zero Snapshot) to allocate fresh. The returned snapshot is s (allocated
// if nil) and is byte-identical to Topology.Snapshot(tsec): arena reuse
// recycles storage, never data. Reusing one snapshot across the engine's
// update instants eliminates the per-instant allocation storm.
//
//hypatia:noalloc
//hypatia:pure
func (t *Topology) SnapshotInto(tsec float64, s *Snapshot) *Snapshot {
	nSat := t.NumSats()
	n := t.NumNodes()
	if s == nil {
		s = &Snapshot{}
	}
	s.T = tsec
	s.Topo = t
	if cap(s.Pos) < n {
		s.Pos = make([]geom.Vec3, n)
	}
	s.Pos = s.Pos[:n]
	pos := s.Pos
	t.Constellation.PositionsECEF(tsec, pos[:nSat])
	copy(pos[nSat:], t.gsECEF)

	if s.G == nil {
		s.G = graph.New(n)
	} else {
		s.G.Reset(n)
	}
	g := s.G
	for _, isl := range t.Constellation.ISLs {
		g.AddEdge(isl.A, isl.B, pos[isl.A].Distance(pos[isl.B]))
	}
	for gi, gs := range t.GroundStations {
		s.vis = t.Constellation.VisibleFromInto(gs.Position, tsec, pos[:nSat], s.vis)
		vis := s.vis
		if len(vis) == 0 {
			continue
		}
		gsNode := nSat + gi //hypatia:handle(node) GS node ids follow the satellites
		if t.Policy == GSLNearestOnly {
			best, bestD := -1, math.Inf(1)
			for _, si := range vis {
				if d := pos[si].Distance(pos[gsNode]); d < bestD {
					best, bestD = si, d
				}
			}
			g.AddEdge(gsNode, best, bestD)
			continue
		}
		for _, si := range vis {
			g.AddEdge(gsNode, si, pos[si].Distance(pos[gsNode]))
		}
	}
	return s
}

// FromGS runs Dijkstra rooted at ground station gs and returns the distance
// and predecessor arrays over all nodes. dist/prev are reused when large
// enough.
//
//hypatia:pure
//hypatia:handle(gs: gs, dist: node, prev: node->node, return: node, node->node)
func (s *Snapshot) FromGS(gs int, dist []float64, prev []int32) ([]float64, []int32) {
	return s.G.Dijkstra(s.Topo.GSNode(gs), dist, prev)
}

// FromGSScratch is FromGS with an explicit Dijkstra workspace, for callers
// sweeping many destinations back-to-back. Results are identical to FromGS.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(gs: gs, dist: node, prev: node->node, return: node, node->node)
func (s *Snapshot) FromGSScratch(gs int, dist []float64, prev []int32, sc *graph.Scratch) ([]float64, []int32) {
	return s.G.DijkstraScratch(s.Topo.GSNode(gs), dist, prev, sc)
}

// StrategyScratch bundles the worker-owned scratch a routing sweep reuses
// across update instants: the Dijkstra distance/predecessor arrays and the
// heap workspace. The zero value is ready for use; a StrategyScratch must
// not be shared between concurrent sweeps.
//
//hypatia:confined
type StrategyScratch struct {
	Dist     []float64 //hypatia:handle(node)
	Prev     []int32   //hypatia:handle(node->node)
	Dijkstra graph.Scratch
}

// Path returns a shortest path between two ground stations as a node-id
// sequence (inclusive of both GS nodes) together with its length in meters.
// It returns (nil, +Inf) when no path exists — e.g. when either station has
// no visible satellite, the situation behind the paper's St. Petersburg
// outage.
//
//hypatia:handle(srcGS: gs, dstGS: gs)
func (s *Snapshot) Path(srcGS, dstGS int) ([]int, float64) {
	dist, prev := s.FromGS(srcGS, nil, nil)
	dstNode := s.Topo.GSNode(dstGS)
	if math.IsInf(dist[dstNode], 1) {
		return nil, graph.Infinity
	}
	return graph.PathFromPrev(prev, s.Topo.GSNode(srcGS), dstNode), dist[dstNode]
}

// RTT returns the instantaneous two-way propagation latency in seconds
// between two ground stations over the shortest path, +Inf if disconnected.
//
//hypatia:handle(srcGS: gs, dstGS: gs)
func (s *Snapshot) RTT(srcGS, dstGS int) float64 {
	_, d := s.Path(srcGS, dstGS)
	if math.IsInf(d, 1) {
		return graph.Infinity
	}
	return 2 * d / geom.SpeedOfLight
}

// WithoutNodes returns a snapshot whose graph omits every edge touching the
// given nodes, leaving positions and time unchanged. Routing strategies use
// it to model failed or administratively excluded satellites.
func (s *Snapshot) WithoutNodes(avoid map[int]bool) *Snapshot {
	g := graph.New(s.G.N())
	for v := 0; v < s.G.N(); v++ { //hypatia:handle(node) edge filter walks nodes in id order
		if avoid[v] {
			continue
		}
		for _, e := range s.G.Neighbors(v) {
			// Undirected edges appear in both adjacency lists; add each
			// once from the smaller endpoint.
			if int(e.To) > v && !avoid[int(e.To)] {
				g.AddEdge(v, int(e.To), e.W)
			}
		}
	}
	return &Snapshot{T: s.T, Topo: s.Topo, G: g, Pos: s.Pos}
}

// KShortestPaths returns up to k loopless shortest paths between two ground
// stations on this snapshot, cheapest first — the building block for the
// multi-path routing and traffic-engineering extensions the paper's §5.4
// and §7 point to. It returns nil when the pair is disconnected.
//
//hypatia:handle(srcGS: gs, dstGS: gs)
func (s *Snapshot) KShortestPaths(srcGS, dstGS, k int) []graph.WeightedPath {
	return s.G.KShortestPaths(s.Topo.GSNode(srcGS), s.Topo.GSNode(dstGS), k)
}

// ForwardingTable is the routing state of the whole network at one instant:
// for every node and every destination ground station, the next-hop node.
// It is the in-memory analog of the static routing tables Hypatia installs
// into ns-3 at each state-update event.
//
//hypatia:confined
type ForwardingTable struct {
	T        float64
	NumNodes int
	NumGS    int
	// next is flattened [dstGS*NumNodes + node] = next-hop node id, -1 if
	// the destination is unreachable from node. next for the destination's
	// own node is the node itself.
	next []int32 //hypatia:handle(table-slot->node)
	// pool, when non-nil, is where Release returns the table's buffer.
	pool *TablePool
	// released marks a table whose buffer has been recycled; any further
	// use is a bug that the hypatia_checks build reports.
	released bool
}

// ForwardingTable computes the full forwarding state of the snapshot via
// one Dijkstra per destination ground station (exploiting the symmetry of
// the undirected graph: the predecessor of node u in the tree rooted at
// destination d is u's next hop toward d).
func (s *Snapshot) ForwardingTable() *ForwardingTable {
	n := s.Topo.NumNodes()
	ng := s.Topo.NumGS()
	ft := &ForwardingTable{T: s.T, NumNodes: n, NumGS: ng, next: make([]int32, n*ng)}
	dist := make([]float64, n)
	prev := make([]int32, n)
	var sc graph.Scratch
	for gs := 0; gs < ng; gs++ { //hypatia:handle(gs) sweep walks destinations in index order
		dist, prev = s.FromGSScratch(gs, dist, prev, &sc)
		copy(ft.next[gs*n:(gs+1)*n], prev)
		if check.Enabled {
			ft.checkColumn(gs)
		}
	}
	return ft
}

// NewEmptyForwardingTable builds a table with every entry unreachable, for
// callers that fill destinations selectively (see SetDestination). The core
// package uses this to compute per-destination trees in parallel and to
// restrict computation to destinations that actually receive traffic.
func NewEmptyForwardingTable(t float64, numNodes, numGS int) *ForwardingTable {
	ft := &ForwardingTable{T: t, NumNodes: numNodes, NumGS: numGS, next: make([]int32, numNodes*numGS)}
	for i := range ft.next {
		ft.next[i] = -1
	}
	return ft
}

// TablePool recycles forwarding-table buffers across update instants. The
// zero value is ready for use and safe for concurrent Empty/Release calls.
// The forwarding-state engine allocates each instant's table from a pool
// and releases it once the next instant's table has been installed, so a
// steady-state run cycles a handful of buffers instead of allocating
// NumNodes×NumGS entries 10 times per simulated second.
type TablePool struct {
	mu   sync.Mutex
	free []*ForwardingTable
}

// Empty returns a table with every entry unreachable (as
// NewEmptyForwardingTable), drawing the backing buffer from the pool when
// one large enough is available.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:transfer
func (p *TablePool) Empty(t float64, numNodes, numGS int) *ForwardingTable {
	need := numNodes * numGS
	var ft *ForwardingTable
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i].next) >= need {
			ft = p.free[i]
			p.free = append(p.free[:i], p.free[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	if ft == nil {
		ft = &ForwardingTable{next: make([]int32, need)}
	}
	ft.T, ft.NumNodes, ft.NumGS = t, numNodes, numGS
	ft.next = ft.next[:need]
	ft.pool = p
	ft.released = false
	for i := range ft.next {
		ft.next[i] = -1
	}
	return ft
}

// Release marks the table dead and, when it came from a TablePool, returns
// its buffer for reuse. Safe on nil tables; a no-op (beyond the dead mark)
// for tables allocated outside a pool. Callers must not touch the table
// afterwards — the hypatia_checks build turns such use, and a second
// Release, into a panic, since a double Release would let the pool hand the
// same buffer to two owners at once. Unchecked builds silently tolerate the
// repeat.
//
//hypatia:noalloc
//hypatia:transfer
//hypatia:epoch(recv: table-slot)
func (ft *ForwardingTable) Release() {
	if ft == nil {
		return
	}
	if ft.released {
		if check.Enabled {
			check.Failf("double Release of forwarding table t=%v: the pool could reissue its buffer twice", ft.T)
		}
		return
	}
	ft.released = true
	if ft.pool == nil {
		return
	}
	p := ft.pool
	p.mu.Lock()
	p.free = append(p.free, ft)
	p.mu.Unlock()
}

// CloneInto copies the table's forwarding state into dst, reusing dst's
// buffer when it is large enough (nil dst, or one with a smaller buffer,
// allocates a fresh table). The clone is pool-free and starts a new
// ownership life regardless of dst's prior state — this is how the sharded
// engine stages one engine-local copy of each update instant's table per
// shard, recycling each shard's displaced clones as the destinations for
// later instants.
//
//hypatia:noalloc
//hypatia:transfer
//hypatia:epoch(dst: table-slot)
func (ft *ForwardingTable) CloneInto(dst *ForwardingTable) *ForwardingTable {
	if check.Enabled {
		check.Assert(!ft.released, "forwarding table t=%v cloned after Release", ft.T)
	}
	need := ft.NumNodes * ft.NumGS
	if dst == nil || cap(dst.next) < need {
		dst = &ForwardingTable{next: make([]int32, need)}
	}
	dst.T = ft.T
	dst.NumNodes = ft.NumNodes
	dst.NumGS = ft.NumGS
	dst.next = dst.next[:need]
	copy(dst.next, ft.next)
	dst.pool = nil
	dst.released = false
	return dst
}

// Equal reports whether two tables encode byte-identical forwarding state:
// same instant, same dimensions, same next-hop entries. It is the identity
// predicate the differential tests use to compare the pipelined engine
// against the serial computation.
func (ft *ForwardingTable) Equal(o *ForwardingTable) bool {
	//lint:ignore timeunits tables for the same instant must carry the exact same stamp
	if ft.T != o.T {
		return false
	}
	return ft.NumNodes == o.NumNodes && ft.NumGS == o.NumGS && slices.Equal(ft.next, o.next)
}

// SetDestination installs the next-hop column for one destination ground
// station from a predecessor array produced by Dijkstra rooted at that
// destination. Distinct destinations may be set concurrently.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(dstGS: gs, prev: node->node)
func (ft *ForwardingTable) SetDestination(dstGS int, prev []int32) {
	copy(ft.next[dstGS*ft.NumNodes:(dstGS+1)*ft.NumNodes], prev)
	if check.Enabled {
		ft.checkColumn(dstGS)
	}
}

// checkColumn validates one destination's next-hop column: every entry must
// be a node id or -1, and the destination's own node must map to itself
// (Dijkstra roots its predecessor tree with prev[src] = src). It touches only
// the column for dstGS, so SetDestination stays safe to call concurrently for
// distinct destinations.
//
//hypatia:pure
//hypatia:handle(dstGS: gs)
func (ft *ForwardingTable) checkColumn(dstGS int) {
	dstNode := ft.NumNodes - ft.NumGS + dstGS
	col := ft.next[dstGS*ft.NumNodes : (dstGS+1)*ft.NumNodes]
	for node, nh := range col {
		check.Assert(nh >= -1 && int(nh) < ft.NumNodes,
			"forwarding table t=%v: node %d -> dst gs %d has next hop %d outside [-1, %d)",
			ft.T, node, dstGS, nh, ft.NumNodes)
	}
	check.Assert(col[dstNode] == int32(dstNode),
		"forwarding table t=%v: destination node %d maps to %d, not itself", ft.T, dstNode, col[dstNode])
}

// NextHop returns the next-hop node from node toward destination ground
// station dstGS, or -1 if unreachable. For the destination node itself it
// returns the node id.
//
//hypatia:noalloc
//hypatia:handle(node: node, dstGS: gs, return: node)
func (ft *ForwardingTable) NextHop(node, dstGS int) int32 {
	if check.Enabled {
		check.Assert(!ft.released, "forwarding table t=%v consulted after Release", ft.T)
	}
	slot := dstGS*ft.NumNodes + node //hypatia:handle(table-slot) column-major (dstGS, node) cell
	return ft.next[slot]
}

// PathVia follows the table from a source node to a destination ground
// station and returns the node sequence, or nil if the destination is
// unreachable — including the degenerate case of a table containing a
// forwarding loop, where the walk can never terminate. Tables produced by
// the engine are loop-free by construction (Dijkstra predecessor trees);
// the hypatia_checks build asserts that and panics on a loop instead. It
// is primarily a debugging and validation aid; packet forwarding in the
// simulator does the same walk hop by hop.
//
//hypatia:handle(src: node, dstGS: gs)
func (ft *ForwardingTable) PathVia(topo *Topology, src, dstGS int) []int {
	dstNode := topo.GSNode(dstGS)
	path := []int{src}
	for v := src; v != dstNode; {
		nh := ft.NextHop(v, dstGS)
		if nh < 0 {
			return nil
		}
		v = int(nh)
		path = append(path, v)
		if len(path) > ft.NumNodes {
			if check.Enabled {
				check.Failf("forwarding table t=%v: loop walking from node %d toward dst gs %d",
					ft.T, src, dstGS)
			}
			return nil
		}
	}
	return path
}

// SatSequence extracts the satellite node ids from a path, dropping ground
// stations (endpoints and, in bent-pipe scenarios, relays). Two paths are
// "the same" in the paper's path-change metric iff their satellite
// sequences are identical.
//
//hypatia:handle(path: ->node)
func SatSequence(topo *Topology, path []int) []int {
	var sats []int
	for _, v := range path {
		if !topo.IsGS(v) {
			sats = append(sats, v)
		}
	}
	return sats
}

// SameSatPath reports whether two paths traverse the same satellites in the
// same order.
//
//hypatia:handle(a: ->node, b: ->node)
func SameSatPath(topo *Topology, a, b []int) bool {
	sa := SatSequence(topo, a)
	sb := SatSequence(topo, b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// HopCount returns the number of hops (links) in a path, 0 for nil.
func HopCount(path []int) int {
	if len(path) == 0 {
		return 0
	}
	return len(path) - 1
}

// PathLength sums the Euclidean edge lengths of a path under the snapshot's
// positions.
//
//hypatia:handle(path: ->node)
func (s *Snapshot) PathLength(path []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		total += s.Pos[path[i]].Distance(s.Pos[path[i+1]])
	}
	return total
}
