package routing

import (
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/graph"
	"hypatia/internal/groundstation"
)

func benchTopo(b *testing.B, policy GSLPolicy) *Topology {
	b.Helper()
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		b.Fatal(err)
	}
	topo, err := NewTopology(c, groundstation.Top100Cities(), policy)
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// BenchmarkSnapshot measures the cost of building one instantaneous
// topology graph (positions + ISL weights + GSL visibility) for Kuiper K1
// with 100 ground stations — incurred once per forwarding-state update.
func BenchmarkSnapshot(b *testing.B) {
	topo := benchTopo(b, GSLFree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.Snapshot(float64(i % 200))
	}
}

// BenchmarkForwardingTableFull measures a full 100-destination forwarding
// state computation on one snapshot (sequential; the core package
// parallelizes this across workers).
func BenchmarkForwardingTableFull(b *testing.B) {
	topo := benchTopo(b, GSLFree)
	snap := topo.Snapshot(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = snap.ForwardingTable()
	}
}

// Ablation: GSL attachment policy. Nearest-only reduces graph degree (one
// GSL edge per ground station) at the cost of longer paths.
func BenchmarkAblationSnapshotGSLFree(b *testing.B) {
	topo := benchTopo(b, GSLFree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.Snapshot(float64(i % 200))
	}
}

func BenchmarkAblationSnapshotGSLNearest(b *testing.B) {
	topo := benchTopo(b, GSLNearestOnly)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.Snapshot(float64(i % 200))
	}
}

// BenchmarkSnapshotInto measures the arena-reusing snapshot path: position
// slabs, graph edge slabs, and visibility scratch are all recycled, so
// steady-state allocations should be zero. The warm-up loop walks the full
// 200-instant cycle before the timer starts, so every arena has reached its
// high-water mark (edge counts and visibility sets differ per instant) and
// the timed loop measures pure reuse rather than first-cycle growth — the
// same steady state the //hypatia:noalloc annotation on SnapshotInto
// proves and the AllocGuard test enforces.
func BenchmarkSnapshotInto(b *testing.B) {
	topo := benchTopo(b, GSLFree)
	var s *Snapshot
	for i := 0; i < 200; i++ {
		s = topo.SnapshotInto(float64(i), s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = topo.SnapshotInto(float64(i%200), s)
	}
}

// BenchmarkForwardingTablePooled measures the full-table sweep with every
// reuse layer engaged: pooled table buffers plus shared Dijkstra scratch.
func BenchmarkForwardingTablePooled(b *testing.B) {
	topo := benchTopo(b, GSLFree)
	snap := topo.Snapshot(0)
	var pool TablePool
	var dist []float64
	var prev []int32
	var sc graph.Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft := pool.Empty(snap.T, topo.NumNodes(), topo.NumGS())
		for gs := 0; gs < topo.NumGS(); gs++ {
			dist, prev = snap.FromGSScratch(gs, dist, prev, &sc)
			ft.SetDestination(gs, prev)
		}
		ft.Release()
	}
}
