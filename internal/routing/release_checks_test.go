//go:build hypatia_checks

package routing

import (
	"strings"
	"testing"
)

// TestDoubleReleaseCaught is the runtime counterpart of hypatialint's
// lifecycle check: releasing the same pooled table twice must panic under
// hypatia_checks, because the second Release would append the buffer to the
// free list again and the pool could then hand it to two owners at once.
func TestDoubleReleaseCaught(t *testing.T) {
	var pool TablePool
	ft := pool.Empty(3, 4, 1)
	ft.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Release did not panic under hypatia_checks")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "double Release") {
			t.Errorf("panic message %v does not name the double Release", r)
		}
	}()
	ft.Release()
}

// TestDoubleReleaseNilStillSafe pins that the assertion does not break
// Release's nil-safety: a nil receiver stays a silent no-op even with
// checks on.
func TestDoubleReleaseNilStillSafe(t *testing.T) {
	var ft *ForwardingTable
	ft.Release()
	ft.Release()
}
