package routing

import (
	"testing"

	"hypatia/internal/check/checktest"
)

// The AllocGuard tests are the runtime half of the //hypatia:noalloc
// contract on this package's hot paths; see internal/check/checktest.

// TestAllocGuardSnapshotInto pins the arena-reusing snapshot path: after a
// warm cycle over the instants the guard revisits, position slabs, graph
// edge slabs, and visibility scratch are all recycled, so building the
// next instant's snapshot allocates nothing.
func TestAllocGuardSnapshotInto(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	var s *Snapshot
	for i := 0; i < 50; i++ {
		s = topo.SnapshotInto(float64(i), s)
	}
	i := 0
	checktest.AllocGuard(t, "Topology.SnapshotInto", 0, 0, func() {
		s = topo.SnapshotInto(float64(i%50), s)
		i++
	})
}

// TestAllocGuardPooledSweep pins the pooled forwarding-table path the
// pipeline workers run: table buffers cycle through the pool, Dijkstra
// scratch is caller-owned, and the release returns every arena, so the
// steady-state sweep stays allocation-free.
func TestAllocGuardPooledSweep(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	snap := topo.Snapshot(0)
	var pool TablePool
	var sc StrategyScratch
	checktest.AllocGuard(t, "TablePool sweep", 0, 1, func() {
		ft := pool.Empty(snap.T, topo.NumNodes(), topo.NumGS())
		for gs := 0; gs < topo.NumGS(); gs++ {
			sc.Dist, sc.Prev = snap.FromGSScratch(gs, sc.Dist, sc.Prev, &sc.Dijkstra)
			ft.SetDestination(gs, sc.Prev)
		}
		ft.Release()
	})
}

// TestAllocGuardIncrementalStep pins the incremental engine's per-instant
// repair. Step's class is amortized, not zero: as the constellation drifts
// into visibility configurations the run has not seen, delta scratch and
// repair arenas may still grow occasionally, so the budget allows a small
// residue per step rather than none.
func TestAllocGuardIncrementalStep(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	eng := NewIncrementalEngine(topo, nil)
	at := 0.0
	step := func() {
		eng.Step(at, nil).Release()
		at += 0.1
	}
	checktest.AllocGuard(t, "IncrementalEngine.Step", 4, 20, step)
}
