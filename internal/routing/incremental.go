package routing

import (
	"math"

	"hypatia/internal/check"
	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/graph"
)

// maxECEFSpeed bounds the ECEF-frame speed of any satellite the delta layer
// will ever see. A bound Earth orbit cannot exceed escape velocity at its
// current radius (~11.0 km/s at the lowest sustainable altitudes) and the
// rotating-frame correction adds at most ω·r ≈ 0.5 km/s at LEO radii, so
// 12 km/s is a universal ceiling with margin. The visibility cache's skip
// deadlines are sound exactly when this bound holds; the hypatia_checks
// build verifies the cached visible sets against a full scan every instant,
// so a violation cannot silently corrupt forwarding state in checked runs.
const maxECEFSpeed = 12e3 // m/s

// marginSafety shrinks every skip deadline so float rounding in the margin
// arithmetic can never push a recheck past the true crossing time.
const marginSafety = 0.9

// DeltaState is the reusable workspace for Topology.DeltaInto: the
// double-buffered snapshots it diffs, the changed-edge scratch, and a
// per-pair visibility margin cache that lets consecutive instants skip the
// full GS×satellite visibility scan. The zero value is ready for use; like
// the other routing scratch types it must only ever be owned by one
// goroutine at a time.
//
// The margin cache records, for every (ground station, satellite) pair, the
// earliest time its visibility status could flip: both criteria VisibleFrom
// applies — slant distance against MaxGSLRange and the sign of the local-up
// component — move at most maxECEFSpeed (times a criterion-specific factor)
// meters per second, so a pair currently `margin` meters from its decision
// boundary cannot flip for margin/(rate) seconds. Pairs inside their
// deadline keep their cached status; expired pairs are rechecked with the
// exact same arithmetic VisibleFromInto uses, so the resulting snapshot is
// bitwise identical to Topology.SnapshotInto.
//
//hypatia:confined
type DeltaState struct {
	topo   *Topology
	snaps  [2]*Snapshot
	cur    int  // index of the most recent snapshot in snaps
	have   bool // at least one snapshot has been built since reset
	prevOK bool // snaps[cur^1] is the genuine previous instant

	changes []graph.EdgeChange
	diff    graph.DiffScratch

	up        []geom.Vec3 //hypatia:handle(gs)  per-GS local-up unit vector (geodetic normal)
	visible   []bool      // [gs*S+sat] cached visibility status
	nextCheck []float64   // [gs*S+sat] earliest instant the pair could flip
	rowNext   []float64   //hypatia:handle(gs)  per-GS earliest instant any pair in the row could flip
	rowHor    []float64   //hypatia:handle(gs)  per-GS horizon up to which watch covers the row
	watch     [][]int32   //hypatia:handle(gs->node)  per-GS satellites with a deadline before the horizon
	visLists  [][]int32   //hypatia:handle(gs->node)  per-GS ascending visible-satellite indices
	visValid  bool        // cache primed and valid for forward stepping
	lastT     float64

	// visScratch is verifyVisibility's from-scratch scan buffer, held on
	// the state so the hypatia_checks cross-check does not allocate per
	// instant.
	visScratch []int //hypatia:handle(->node)
}

// watchHorizon is how far ahead (seconds) a row scan looks when collecting
// its watchlist: pairs whose deadline falls inside the horizon are tracked
// individually, everyone else is covered wholesale until the next full row
// scan at the horizon. Longer horizons scan rows less often but watch more
// pairs per instant.
const watchHorizon = 2.0

// Prev returns the snapshot preceding the one DeltaInto last returned, or
// nil on the first instant. It stays valid until the next DeltaInto call.
//
//hypatia:noalloc
//hypatia:pure
func (d *DeltaState) Prev() *Snapshot {
	if !d.prevOK {
		return nil
	}
	return d.snaps[d.cur^1]
}

// reset rebinds the state to a topology, dropping all cached structure.
//
//hypatia:noalloc
//hypatia:pure
func (d *DeltaState) reset(t *Topology) {
	nSat := t.NumSats()
	nGS := t.NumGS()
	d.topo = t
	d.have = false
	d.visValid = false
	if cap(d.up) < nGS {
		d.up = make([]geom.Vec3, nGS)
		d.rowNext = make([]float64, nGS)
		d.rowHor = make([]float64, nGS)
		d.watch = make([][]int32, nGS)
		d.visLists = make([][]int32, nGS)
	}
	d.up = d.up[:nGS]
	d.rowNext = d.rowNext[:nGS]
	d.rowHor = d.rowHor[:nGS]
	d.watch = d.watch[:nGS]
	d.visLists = d.visLists[:nGS]
	if cap(d.visible) < nSat*nGS {
		d.visible = make([]bool, nSat*nGS)
		d.nextCheck = make([]float64, nSat*nGS)
	}
	d.visible = d.visible[:nSat*nGS]
	d.nextCheck = d.nextCheck[:nSat*nGS]
	for i, gs := range t.GroundStations {
		sinLat, cosLat := math.Sincos(gs.Position.Lat)
		sinLon, cosLon := math.Sincos(gs.Position.Lon)
		d.up[i] = geom.Vec3{X: cosLat * cosLon, Y: cosLat * sinLon, Z: sinLat}
	}
}

// refreshPair recomputes one pair's visibility with VisibleFromInto's exact
// criteria and stamps its next-check deadline from the distance-to-boundary
// margins. It reports whether the cached status flipped.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(gi: gs, si: node, pos: node)
func (d *DeltaState) refreshPair(t *Topology, gi, si int, tsec float64, pos []geom.Vec3) bool {
	c := t.Constellation
	p := pos[si]
	obs := t.gsECEF[gi]
	h := p.Norm() - geom.EarthRadius
	dist := p.Distance(obs)
	rng := constellation.MaxGSLRange(h, c.MinElev)
	// The local-up component of the GS→satellite vector has exactly the
	// sign of geom.Elevation (asin of the component over a positive range),
	// so `u < 0` reproduces the horizon criterion bitwise.
	u := p.Sub(obs).Dot(d.up[gi])
	vis := !(dist > rng) && !(u < 0)

	// Each criterion's margin shrinks at a bounded rate: the slant distance
	// and the altitude behind MaxGSLRange both move at ≤ maxECEFSpeed, and
	// for minEl > 0 the range limit is h/sin(minEl), so |d(dist-rng)/dt| ≤
	// (1 + 1/sin(minEl))·maxECEFSpeed. The up component is a fixed-direction
	// projection of the satellite position, so it moves at ≤ maxECEFSpeed.
	safe := 0.0
	if c.MinElev > 0 {
		rate := (1 + 1/math.Sin(c.MinElev)) * maxECEFSpeed
		safe = math.Abs(dist-rng) / rate
		if s2 := math.Abs(u) / maxECEFSpeed; s2 < safe {
			safe = s2
		}
		safe *= marginSafety
	}
	idx := gi*t.NumSats() + si
	d.nextCheck[idx] = tsec + safe
	flipped := d.visible[idx] != vis
	d.visible[idx] = vis
	return flipped
}

// rebuildRow regenerates one ground station's ascending visible list and
// row deadline from the per-pair cache.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(gi: gs)
func (d *DeltaState) rebuildRow(gi, nSat int) {
	lst := d.visLists[gi][:0]
	row := d.visible[gi*nSat : (gi+1)*nSat]
	for si, v := range row {
		if v {
			lst = append(lst, int32(si))
		}
	}
	d.visLists[gi] = lst
}

// scanRow refreshes a full row — every pair when refreshAll is set (first
// call, backward jump), expired pairs otherwise — and rebuilds the row's
// watchlist: the pairs whose deadline lands before the new horizon. Until
// that horizon passes, the instants in between need only service the
// watchlist.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(gi: gs, pos: node)
func (d *DeltaState) scanRow(t *Topology, gi, nSat int, tsec float64, pos []geom.Vec3, refreshAll bool) {
	base := gi * nSat
	changed := false
	for si := 0; si < nSat; si++ { //hypatia:handle(node) satellite ids double as node ids
		if (refreshAll || tsec >= d.nextCheck[base+si]) && d.refreshPair(t, gi, si, tsec, pos) {
			changed = true
		}
	}
	if changed || refreshAll {
		d.rebuildRow(gi, nSat)
	}
	horizon := tsec + watchHorizon
	w := d.watch[gi][:0]
	next := horizon
	for si := 0; si < nSat; si++ { //hypatia:handle(node) satellite ids double as node ids
		if nc := d.nextCheck[base+si]; nc < horizon {
			w = append(w, int32(si))
			if nc < next {
				next = nc
			}
		}
	}
	d.watch[gi] = w
	d.rowHor[gi] = horizon
	d.rowNext[gi] = next
}

// serviceWatch refreshes the expired pairs on a row's watchlist, dropping
// entries whose new deadline cleared the horizon. Pairs off the watchlist
// are guaranteed quiet until the horizon, so the row deadline is the
// earlier of the watchlist minimum and the horizon itself.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(gi: gs, pos: node)
func (d *DeltaState) serviceWatch(t *Topology, gi, nSat int, tsec float64, pos []geom.Vec3) {
	base := gi * nSat
	changed := false
	w := d.watch[gi]
	out := w[:0]
	next := d.rowHor[gi]
	for _, si := range w {
		idx := base + int(si)
		if tsec >= d.nextCheck[idx] && d.refreshPair(t, gi, int(si), tsec, pos) {
			changed = true
		}
		if nc := d.nextCheck[idx]; nc < d.rowHor[gi] {
			out = append(out, si)
			if nc < next {
				next = nc
			}
		}
	}
	d.watch[gi] = out
	if changed {
		d.rebuildRow(gi, nSat)
	}
	d.rowNext[gi] = next
}

// updateVisibility brings the margin cache to tsec: on the first call (or
// after a backward time jump, which invalidates the forward-looking
// deadlines) every pair is rechecked; otherwise only rows whose deadline
// passed are touched, and within them only the watchlist — the full row is
// rescanned only when its watch horizon expires.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(pos: node)
func (d *DeltaState) updateVisibility(t *Topology, tsec float64, pos []geom.Vec3) {
	nSat := t.NumSats()
	if !d.visValid || tsec < d.lastT {
		for gi := range t.GroundStations {
			d.scanRow(t, gi, nSat, tsec, pos, true)
		}
		d.visValid = true
		return
	}
	for gi := range t.GroundStations {
		if tsec < d.rowNext[gi] {
			continue
		}
		if tsec >= d.rowHor[gi] {
			d.scanRow(t, gi, nSat, tsec, pos, false)
		} else {
			d.serviceWatch(t, gi, nSat, tsec, pos)
		}
	}
}

// verifyVisibility cross-checks the margin cache against a from-scratch
// visibility scan — the runtime form of the cache's soundness argument.
//
//hypatia:pure
//hypatia:handle(pos: node)
func (d *DeltaState) verifyVisibility(t *Topology, tsec float64, pos []geom.Vec3) {
	scratch := d.visScratch
	for gi, gs := range t.GroundStations {
		scratch = t.Constellation.VisibleFromInto(gs.Position, tsec, pos[:t.NumSats()], scratch)
		cached := d.visLists[gi]
		check.Assert(len(scratch) == len(cached),
			"delta visibility cache t=%v gs %d: %d visible cached, %d from scratch",
			tsec, gi, len(cached), len(scratch))
		for i, si := range scratch {
			check.Assert(cached[i] == int32(si),
				"delta visibility cache t=%v gs %d: entry %d is sat %d, scan says %d",
				tsec, gi, i, cached[i], si)
		}
	}
	d.visScratch = scratch
}

// snapshotFromCache is SnapshotInto with the visibility scan replaced by
// the margin cache's per-GS visible lists. Its output is bitwise identical:
// positions, ISL edges, and GSL edge weights come from the same arithmetic,
// and the cached lists reproduce VisibleFromInto's ascending order.
//
//hypatia:noalloc
//hypatia:pure
func (d *DeltaState) snapshotFromCache(t *Topology, tsec float64, s *Snapshot) *Snapshot {
	nSat := t.NumSats()
	n := t.NumNodes()
	if s == nil {
		s = &Snapshot{}
	}
	s.T = tsec
	s.Topo = t
	if cap(s.Pos) < n {
		s.Pos = make([]geom.Vec3, n)
	}
	s.Pos = s.Pos[:n]
	pos := s.Pos
	t.Constellation.PositionsECEF(tsec, pos[:nSat])
	copy(pos[nSat:], t.gsECEF)

	d.updateVisibility(t, tsec, pos)
	if check.Enabled {
		d.verifyVisibility(t, tsec, pos)
	}

	if s.G == nil {
		s.G = graph.New(n)
	} else {
		s.G.Reset(n)
	}
	g := s.G
	for _, isl := range t.Constellation.ISLs {
		g.AddEdge(isl.A, isl.B, pos[isl.A].Distance(pos[isl.B]))
	}
	for gi := range t.GroundStations {
		vis := d.visLists[gi]
		if len(vis) == 0 {
			continue
		}
		gsNode := nSat + gi //hypatia:handle(node) GS node ids follow the satellites
		if t.Policy == GSLNearestOnly {
			best, bestD := -1, math.Inf(1)
			for _, si := range vis {
				if dd := pos[si].Distance(pos[gsNode]); dd < bestD {
					best, bestD = int(si), dd
				}
			}
			g.AddEdge(gsNode, best, bestD)
			continue
		}
		for _, si := range vis {
			g.AddEdge(gsNode, int(si), pos[si].Distance(pos[gsNode]))
		}
	}
	return s
}

// deltaSnapshot advances d to time tsec and returns the instant's snapshot
// without computing the changed-edge diff. This is the incremental engine's
// entry point: its dense repair re-solves each tree from the new graph
// directly and never reads a change list, so the O(E) diff would be pure
// overhead there.
//
//hypatia:noalloc
//hypatia:pure
func (t *Topology) deltaSnapshot(tsec float64, d *DeltaState) *Snapshot {
	if d.topo != t {
		d.reset(t)
	}
	next := d.cur ^ 1
	d.snaps[next] = d.snapshotFromCache(t, tsec, d.snaps[next])
	d.prevOK = d.have
	d.cur = next
	d.have = true
	d.lastT = tsec
	return d.snaps[next]
}

// DeltaInto advances d to time tsec and returns the snapshot for that
// instant together with the changed-edge list against the previous instant
// (weight drifts and visibility flips; nil on the first call, when there is
// no previous instant to diff against). The snapshot is bitwise identical
// to Topology.SnapshotInto(tsec, ...) but skips the full visibility scan
// via the margin cache; it remains valid until the second-next DeltaInto
// call (snapshots are double-buffered so the previous instant stays
// diffable). The change list is owned by d and overwritten by the next
// call. Time may move in any direction; backward jumps just cost one full
// visibility refresh.
//
//hypatia:noalloc
func (t *Topology) DeltaInto(tsec float64, d *DeltaState) (*Snapshot, []graph.EdgeChange) {
	snap := t.deltaSnapshot(tsec, d)
	var changes []graph.EdgeChange
	if d.prevOK {
		d.changes = graph.DiffInto(d.snaps[d.cur^1].G, snap.G, d.changes[:0], &d.diff)
		changes = d.changes
	}
	return snap, changes
}

// IncrementalEngine carries forwarding state across consecutive instants:
// instead of a fresh snapshot plus one full heap-driven Dijkstra per
// destination, each Step builds the snapshot through the delta layer's
// visibility margin cache and re-solves the per-destination trees with
// graph.RepairSSSPDense, which replaces the priority queue with the
// destination's settle order from the previous instant. Between 100 ms
// instants every link weight drifts (so there is nothing to diff around)
// but the settle order barely moves, which makes the re-solve a single
// near-branchless sweep over the adjacency.
//
// Because the dense repair is correct from any starting order — order
// quality affects cost, never the bitwise result — the engine needs no
// freshness bookkeeping at all: active sets may grow, shrink, or reorder
// between steps, time may jump either direction, and the avoid set may
// change mid-sequence, all without reseeding. Tables it returns are bitwise
// identical to the from-scratch computation (Snapshot.ForwardingTable and
// friends) — the hypatia_checks build re-derives every requested column
// from scratch and fails on any mismatch, and the differential suites in
// internal/core prove the same over randomized instant sequences.
//
// An engine is single-owner state (one goroutine at a time); tables it
// returns are the caller's to Release.
//
//hypatia:confined
type IncrementalEngine struct {
	topo *Topology
	pool *TablePool

	delta DeltaState

	// avoid, when non-nil, excludes the marked nodes from routing, exactly
	// as Snapshot.WithoutNodes does. The routed graph is then a pruned copy
	// of the snapshot graph, rebuilt in place each step.
	avoid    []bool //hypatia:handle(node)
	avoidAny bool
	pruned   *graph.Graph

	repair graph.RepairScratch

	// Per-destination shortest-path state: the dist/prev solution arrays and
	// the settle order carried into the next repair. A nil order marks a
	// destination never yet computed; its first repair starts from the
	// identity order, which degenerates to an ordinary Dijkstra (every
	// improvement routes through the heap) and sorts itself on return.
	dist  [][]float64 //hypatia:handle(gs)
	prev  [][]int32   //hypatia:handle(gs->node)
	order [][]int32   //hypatia:handle(gs->node)
}

// NewIncrementalEngine builds an engine over topo drawing tables from pool
// (nil allocates a private pool).
//
//hypatia:pure
func NewIncrementalEngine(topo *Topology, pool *TablePool) *IncrementalEngine {
	if pool == nil {
		pool = &TablePool{}
	}
	ng := topo.NumGS()
	return &IncrementalEngine{
		topo:  topo,
		pool:  pool,
		dist:  make([][]float64, ng),
		prev:  make([][]int32, ng),
		order: make([][]int32, ng),
	}
}

// SetAvoid excludes the given nodes from all subsequent routing, as
// core.AvoidNodes / Snapshot.WithoutNodes do; call with no arguments to
// clear. Changing the avoid set mid-sequence needs no reseed: the next
// Step re-solves every requested tree on the newly pruned graph, reusing
// the carried settle orders (which the switch barely perturbs).
//
//hypatia:handle(nodes: ->node)
func (e *IncrementalEngine) SetAvoid(nodes ...int) {
	e.avoidAny = len(nodes) > 0
	if !e.avoidAny {
		return
	}
	if e.avoid == nil {
		e.avoid = make([]bool, e.topo.NumNodes())
	}
	for i := range e.avoid {
		e.avoid[i] = false
	}
	for _, v := range nodes {
		e.avoid[v] = true
	}
}

// pruneInto rebuilds dst as src minus every edge touching an avoided node —
// the arena-reusing equivalent of Snapshot.WithoutNodes.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(avoid: node)
func pruneInto(src *graph.Graph, avoid []bool, dst *graph.Graph) *graph.Graph {
	if dst == nil {
		dst = graph.New(src.N())
	} else {
		dst.Reset(src.N())
	}
	for v := 0; v < src.N(); v++ { //hypatia:handle(node) edge filter walks nodes in id order
		if avoid[v] {
			continue
		}
		for _, ed := range src.Neighbors(v) {
			if int(ed.To) > v && !avoid[ed.To] {
				dst.AddEdge(v, int(ed.To), ed.W)
			}
		}
	}
	return dst
}

// Step computes the forwarding table for time tsec toward the given
// destination ground stations (nil = all), re-solving each tree over its
// carried settle order. The table comes from the engine's pool; the caller
// owns it and must Release it.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(active: ->gs)
func (e *IncrementalEngine) Step(tsec float64, active []int) *ForwardingTable {
	t := e.topo
	n := t.NumNodes()
	snap := t.deltaSnapshot(tsec, &e.delta)
	g := snap.G
	if e.avoidAny {
		e.pruned = pruneInto(snap.G, e.avoid, e.pruned)
		g = e.pruned
	}

	ft := e.pool.Empty(tsec, n, t.NumGS())
	apply := func(gs int) {
		if e.order[gs] == nil {
			ord := make([]int32, n)
			for i := range ord {
				ord[i] = int32(i)
			}
			e.order[gs] = ord
			e.dist[gs] = make([]float64, n)
			e.prev[gs] = make([]int32, n)
		}
		g.RepairSSSPDense(t.GSNode(gs), e.dist[gs], e.prev[gs], e.order[gs], &e.repair)
		ft.SetDestination(gs, e.prev[gs])
	}
	if active == nil {
		for gs := 0; gs < t.NumGS(); gs++ { //hypatia:handle(gs) full sweep walks destinations in index order
			apply(gs)
		}
	} else {
		for _, gs := range active {
			apply(gs)
		}
	}
	if check.Enabled {
		// The checked-build oracle is deliberately impure: it bumps a
		// process-global comparison counter so check.sh can assert the
		// differential layer actually ran.
		//lint:ignore purity hypatia_checks oracle counts comparisons globally
		e.oracleCheck(tsec, active, ft)
	}
	return ft
}
