package routing

// Direct unit tests for ForwardingTable.CloneInto: the clone must be
// bitwise-equal to the source and fully independent of it afterwards. The
// sharded engine leans on both properties — each shard installs its own
// clone of every update instant's table, and a shared entry would let one
// engine's state leak into another's.

import (
	"slices"
	"testing"
)

// cloneFixture builds a small table with a distinctive, non-uniform next
// array so an aliased or partially-copied clone cannot pass by accident.
func cloneFixture() *ForwardingTable {
	ft := NewEmptyForwardingTable(12.5, 5, 2)
	for i := range ft.next {
		ft.next[i] = int32(i*3 - 1)
	}
	return ft
}

func TestCloneIntoBitwiseEqual(t *testing.T) {
	src := cloneFixture()
	clone := src.CloneInto(nil)
	if clone == src {
		t.Fatal("CloneInto(nil) returned the receiver, not a copy")
	}
	if !src.Equal(clone) || !clone.Equal(src) {
		t.Fatalf("clone not Equal to source:\n  src   %+v\n  clone %+v", src, clone)
	}
	if clone.T != src.T || clone.NumNodes != src.NumNodes || clone.NumGS != src.NumGS {
		t.Errorf("clone header differs: got (%v, %d, %d), want (%v, %d, %d)",
			clone.T, clone.NumNodes, clone.NumGS, src.T, src.NumNodes, src.NumGS)
	}
	if !slices.Equal(clone.next, src.next) {
		t.Errorf("clone entries differ:\n  src   %v\n  clone %v", src.next, clone.next)
	}
	if clone.pool != nil || clone.released {
		t.Errorf("clone must start a pool-free live ownership: pool=%v released=%v", clone.pool, clone.released)
	}
}

func TestCloneIntoIndependence(t *testing.T) {
	src := cloneFixture()
	clone := src.CloneInto(nil)
	want := append([]int32(nil), src.next...)

	// Mutating the clone must not show through to the source…
	for i := range clone.next {
		clone.next[i] = -7
	}
	if !slices.Equal(src.next, want) {
		t.Errorf("mutating the clone changed the source: %v", src.next)
	}
	// …and mutating the source must not show through to the clone.
	clone2 := src.CloneInto(nil)
	for i := range src.next {
		src.next[i] = 99
	}
	if slices.Contains(clone2.next, 99) {
		t.Errorf("mutating the source changed the clone: %v", clone2.next)
	}
}

func TestCloneIntoReusesDstBuffer(t *testing.T) {
	src := cloneFixture()
	// dst with a larger-capacity buffer, previously pooled and released: the
	// clone must reuse the buffer, truncate it to the source's size, and
	// reset the ownership state.
	var pool TablePool
	dst := pool.Empty(0, 4, 3)
	dst.Release()
	buf := dst.next[:cap(dst.next)]

	clone := src.CloneInto(dst)
	if clone != dst {
		t.Fatal("CloneInto did not reuse the large-enough dst")
	}
	if &clone.next[0] != &buf[0] {
		t.Error("CloneInto reallocated although dst's buffer was large enough")
	}
	if len(clone.next) != src.NumNodes*src.NumGS {
		t.Errorf("clone buffer length %d, want %d", len(clone.next), src.NumNodes*src.NumGS)
	}
	if !src.Equal(clone) {
		t.Errorf("reused-buffer clone not Equal to source:\n  src   %+v\n  clone %+v", src, clone)
	}
	if clone.pool != nil || clone.released {
		t.Errorf("reused-buffer clone must drop pool ownership: pool=%v released=%v", clone.pool, clone.released)
	}

	// A too-small dst forces a fresh allocation and leaves dst alone.
	small := &ForwardingTable{next: make([]int32, 2)}
	clone2 := src.CloneInto(small)
	if clone2 == small {
		t.Fatal("CloneInto reused a too-small dst")
	}
	if !src.Equal(clone2) {
		t.Error("fresh-allocation clone not Equal to source")
	}
}
