//go:build hypatia_checks

package routing

import (
	"sync/atomic"

	"hypatia/internal/check"
)

// oracleComparisons counts the destination columns the incremental engine
// has verified against the from-scratch oracle. check.sh asserts it is
// nonzero after the routing tests, so a refactor cannot silently stop
// exercising the incremental path.
var oracleComparisons atomic.Uint64

// OracleComparisons reports how many destination columns have been
// oracle-verified so far in this process (always 0 in unchecked builds).
func OracleComparisons() uint64 { return oracleComparisons.Load() }

// oracleCheck re-derives every requested destination column from scratch —
// fresh snapshot, fresh prune, fresh Dijkstra, none of the engine's cached
// state — and fails the run on any bitwise difference from the table the
// incremental path produced. This is the differential-oracle discipline:
// the retained from-scratch computation is the specification, the
// incremental path an optimization that must be indistinguishable from it.
func (e *IncrementalEngine) oracleCheck(tsec float64, active []int, ft *ForwardingTable) {
	snap := e.topo.Snapshot(tsec)
	if e.avoidAny {
		avoid := map[int]bool{}
		for v, a := range e.avoid {
			if a {
				avoid[v] = true
			}
		}
		snap = snap.WithoutNodes(avoid)
	}
	n := e.topo.NumNodes()
	var dist []float64
	var prev []int32
	verify := func(gs int) {
		dist, prev = snap.FromGS(gs, dist, prev)
		for node := 0; node < n; node++ {
			got := ft.NextHop(node, gs)
			check.Assert(got == prev[node],
				"incremental oracle t=%v: node %d -> dst gs %d has next hop %d, from-scratch says %d",
				tsec, node, gs, got, prev[node])
		}
		oracleComparisons.Add(1)
	}
	if active == nil {
		for gs := 0; gs < e.topo.NumGS(); gs++ {
			verify(gs)
		}
		return
	}
	for _, gs := range active {
		verify(gs)
	}
}
