//go:build !hypatia_checks

package routing

// OracleComparisons reports how many destination columns have been
// oracle-verified; without -tags hypatia_checks the oracle is compiled out
// and the count is always 0.
func OracleComparisons() uint64 { return 0 }

// oracleCheck is a no-op without -tags hypatia_checks; Step's call site is
// guarded by check.Enabled, so this stub is never reached at runtime.
func (e *IncrementalEngine) oracleCheck(float64, []int, *ForwardingTable) {}
