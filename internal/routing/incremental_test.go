package routing

import (
	"math/rand"
	"testing"

	"hypatia/internal/check"
	"hypatia/internal/graph"
)

// sameGraph asserts two graphs carry bitwise-identical edge multisets in
// identical adjacency order.
func sameGraph(t *testing.T, tag string, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: %d nodes, want %d", tag, got.N(), want.N())
	}
	for v := 0; v < want.N(); v++ {
		ge, we := got.Neighbors(v), want.Neighbors(v)
		if len(ge) != len(we) {
			t.Fatalf("%s: node %d has %d edges, want %d", tag, v, len(ge), len(we))
		}
		for i := range we {
			if ge[i] != we[i] {
				t.Fatalf("%s: node %d edge %d = %+v, want %+v", tag, v, i, ge[i], we[i])
			}
		}
	}
}

// TestDeltaIntoMatchesSnapshotInto proves the delta layer's headline
// contract: every snapshot it produces — margin-cache visibility and all —
// is bitwise identical to a from-scratch SnapshotInto at the same instant,
// across long forward sequences, repeated instants, and backward jumps.
func TestDeltaIntoMatchesSnapshotInto(t *testing.T) {
	for _, policy := range []GSLPolicy{GSLFree, GSLNearestOnly} {
		topo := miniTopo(t, policy)
		var d DeltaState
		var fresh *Snapshot
		times := make([]float64, 0, 64)
		for i := 0; i < 50; i++ {
			times = append(times, float64(i)*0.1)
		}
		// Long strides expire margins; repeats and backward jumps must
		// also reproduce the scan exactly.
		times = append(times, 30, 90, 90, 45.05, 200, 0.1)
		for _, tsec := range times {
			snap, _ := topo.DeltaInto(tsec, &d)
			fresh = topo.SnapshotInto(tsec, fresh)
			if snap.T != fresh.T {
				t.Fatalf("t=%v: snapshot stamped %v", fresh.T, snap.T)
			}
			for i := range fresh.Pos {
				if snap.Pos[i] != fresh.Pos[i] {
					t.Fatalf("t=%v: node %d position %v, want %v", tsec, i, snap.Pos[i], fresh.Pos[i])
				}
			}
			sameGraph(t, "delta snapshot", snap.G, fresh.G)
		}
	}
}

// TestDeltaIntoChanges checks the changed-edge lists: applying each diff to
// the previous instant's graph must land exactly on the next one.
func TestDeltaIntoChanges(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	var d DeltaState
	type ekey struct{ a, b int32 }
	edges := map[ekey]float64{}
	for step := 0; step < 30; step++ {
		snap, changes := topo.DeltaInto(float64(step)*0.5, &d)
		if step == 0 {
			if changes != nil {
				t.Fatalf("first instant produced %d changes", len(changes))
			}
		} else {
			for _, ch := range changes {
				if ch.NewW < 0 {
					delete(edges, ekey{ch.A, ch.B})
				} else {
					edges[ekey{ch.A, ch.B}] = ch.NewW
				}
			}
		}
		want := map[ekey]float64{}
		for v := 0; v < snap.G.N(); v++ {
			for _, e := range snap.G.Neighbors(v) {
				if int(e.To) > v {
					want[ekey{int32(v), e.To}] = e.W
				}
			}
		}
		if step == 0 {
			edges = want
			continue
		}
		if len(edges) != len(want) {
			t.Fatalf("step %d: diff-tracked edge set has %d edges, snapshot has %d", step, len(edges), len(want))
		}
		for k, w := range want {
			if edges[k] != w {
				t.Fatalf("step %d: edge %v tracked as %v, snapshot says %v", step, k, edges[k], w)
			}
		}
	}
}

// engineOracle computes the from-scratch table the engine must match.
func engineOracle(topo *Topology, tsec float64, active []int, avoid map[int]bool) *ForwardingTable {
	snap := topo.Snapshot(tsec)
	if len(avoid) > 0 {
		snap = snap.WithoutNodes(avoid)
	}
	ft := NewEmptyForwardingTable(tsec, topo.NumNodes(), topo.NumGS())
	var dist []float64
	var prev []int32
	if active == nil {
		for gs := 0; gs < topo.NumGS(); gs++ {
			dist, prev = snap.FromGS(gs, dist, prev)
			ft.SetDestination(gs, prev)
		}
		return ft
	}
	for _, gs := range active {
		dist, prev = snap.FromGS(gs, dist, prev)
		ft.SetDestination(gs, prev)
	}
	return ft
}

// TestIncrementalEngineMatchesScratch drives the engine through randomized
// instant sequences — drifting weights, visibility flips, changing active
// sets, and avoid-set strategy switches — and requires every table to be
// byte-identical to the from-scratch computation.
func TestIncrementalEngineMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, policy := range []GSLPolicy{GSLFree, GSLNearestOnly} {
		topo := miniTopo(t, policy)
		eng := NewIncrementalEngine(topo, nil)
		avoid := map[int]bool{}
		tsec := 0.0
		for step := 0; step < 40; step++ {
			tsec += []float64{0.1, 0.1, 0.1, 2.5, 30}[rng.Intn(5)]
			var active []int
			switch rng.Intn(3) {
			case 0: // all destinations
			case 1:
				active = []int{rng.Intn(topo.NumGS())}
			case 2:
				active = []int{0, 1 + rng.Intn(topo.NumGS()-1)}
			}
			if rng.Intn(4) == 0 { // strategy switch
				avoid = map[int]bool{}
				nodes := make([]int, rng.Intn(4))
				for i := range nodes {
					nodes[i] = rng.Intn(topo.NumSats())
					avoid[nodes[i]] = true
				}
				eng.SetAvoid(nodes...)
			}
			got := eng.Step(tsec, active)
			want := engineOracle(topo, tsec, active, avoid)
			if !got.Equal(want) {
				t.Fatalf("policy %v step %d t=%v active=%v avoid=%v: incremental table differs from scratch",
					policy, step, tsec, active, avoid)
			}
			got.Release()
		}
	}
}

// TestIncrementalEngineBackwardTime: the engine must stay exact when the
// clock jumps backward (replays, bisection debugging).
func TestIncrementalEngineBackwardTime(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	eng := NewIncrementalEngine(topo, nil)
	for _, tsec := range []float64{0, 0.1, 0.2, 50, 0.05, 0.1, 3} {
		got := eng.Step(tsec, nil)
		if want := engineOracle(topo, tsec, nil, nil); !got.Equal(want) {
			t.Fatalf("t=%v: incremental table differs from scratch", tsec)
		}
		got.Release()
	}
}

// TestIncrementalOracleExercised is the check.sh self-check hook: under
// -tags hypatia_checks every Step oracle-verifies its columns, and this
// test fails if that instrumentation has gone dead (comparison count zero).
func TestIncrementalOracleExercised(t *testing.T) {
	if !check.Enabled {
		t.Skip("oracle instrumentation requires -tags hypatia_checks")
	}
	topo := miniTopo(t, GSLFree)
	eng := NewIncrementalEngine(topo, nil)
	before := OracleComparisons()
	for i := 0; i < 3; i++ {
		eng.Step(float64(i)*0.1, nil).Release()
	}
	if got := OracleComparisons(); got < before+uint64(3*topo.NumGS()) {
		t.Fatalf("oracle comparisons went %d -> %d over 3 full-table steps; incremental path not exercised",
			before, got)
	}
}
