package routing

import (
	"math"
	"math/rand"
	"testing"

	"hypatia/internal/check"
	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/graph"
	"hypatia/internal/groundstation"
)

// miniTopo builds a small Kuiper-like constellation with a handful of
// well-spread ground stations for fast tests.
func miniTopo(t *testing.T, policy GSLPolicy) *Topology {
	t.Helper()
	cfg := constellation.Config{
		Name: "Mini",
		Shells: []constellation.Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 12, SatsPerOrbit: 12,
			IncDeg: 51.9,
		}},
		MinElevDeg: 25,
	}
	c, err := constellation.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gss := []groundstation.GS{
		{ID: 0, Name: "Rio de Janeiro", Position: geom.LLADeg(-22.9068, -43.1729, 0)},
		{ID: 1, Name: "Istanbul", Position: geom.LLADeg(41.0082, 28.9784, 0)},
		{ID: 2, Name: "Nairobi", Position: geom.LLADeg(-1.2921, 36.8219, 0)},
		{ID: 3, Name: "Manila", Position: geom.LLADeg(14.5995, 120.9842, 0)},
	}
	topo, err := NewTopology(c, gss, policy)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewTopologyValidation(t *testing.T) {
	c, _ := constellation.Generate(constellation.Kuiper())
	if _, err := NewTopology(c, nil, GSLFree); err == nil {
		t.Error("no ground stations accepted")
	}
	if _, err := NewTopology(nil, groundstation.Top100Cities(), GSLFree); err == nil {
		t.Error("nil constellation accepted")
	}
}

func TestNodeNumbering(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	nSat := topo.NumSats()
	if nSat != 144 {
		t.Fatalf("sats = %d", nSat)
	}
	if topo.NumNodes() != 148 {
		t.Fatalf("nodes = %d", topo.NumNodes())
	}
	if topo.GSNode(0) != 144 || topo.GSNode(3) != 147 {
		t.Error("GSNode numbering wrong")
	}
	if topo.IsGS(143) || !topo.IsGS(144) {
		t.Error("IsGS wrong")
	}
	if topo.GSIndex(146) != 2 {
		t.Error("GSIndex wrong")
	}
}

func TestGSIndexPanicsOnSatellite(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	topo.GSIndex(0)
}

func TestSnapshotEdges(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	s := topo.Snapshot(0)
	// ISL edges: +Grid gives 2 per satellite.
	wantISL := 2 * topo.NumSats()
	if s.G.NumEdges() < wantISL {
		t.Fatalf("edges = %d, want at least %d ISLs", s.G.NumEdges(), wantISL)
	}
	// GSL edges exist: each mid-latitude GS should see at least one
	// satellite of a 144-sat shell at 25 deg min elevation at most times.
	gslEdges := s.G.NumEdges() - wantISL
	if gslEdges == 0 {
		t.Error("no GSL edges at t=0")
	}
	// All edge weights are plausible distances: at least the altitude,
	// at most a few thousand km.
	for v := 0; v < s.G.N(); v++ {
		for _, e := range s.G.Neighbors(v) {
			if e.W < 500e3 || e.W > 6000e3 {
				t.Fatalf("edge %d-%d weight %v m implausible", v, e.To, e.W)
			}
		}
	}
}

func TestSnapshotNearestOnlyHasAtMostOneGSL(t *testing.T) {
	topo := miniTopo(t, GSLNearestOnly)
	s := topo.Snapshot(10)
	for gi := range topo.GroundStations {
		n := len(s.G.Neighbors(topo.GSNode(gi)))
		if n > 1 {
			t.Errorf("GS %d has %d GSLs under nearest-only", gi, n)
		}
	}
}

func TestNearestOnlyPicksNearest(t *testing.T) {
	free := miniTopo(t, GSLFree)
	nearest := miniTopo(t, GSLNearestOnly)
	sf := free.Snapshot(33)
	sn := nearest.Snapshot(33)
	for gi := range free.GroundStations {
		node := free.GSNode(gi)
		fEdges := sf.G.Neighbors(node)
		nEdges := sn.G.Neighbors(node)
		if len(fEdges) == 0 {
			if len(nEdges) != 0 {
				t.Fatalf("GS %d: nearest-only has an edge but free does not", gi)
			}
			continue
		}
		minW := math.Inf(1)
		for _, e := range fEdges {
			if e.W < minW {
				minW = e.W
			}
		}
		if len(nEdges) != 1 || math.Abs(nEdges[0].W-minW) > 1e-6 {
			t.Fatalf("GS %d: nearest-only edge %v, want weight %v", gi, nEdges, minW)
		}
	}
}

func TestPathEndsAtGroundStations(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	s := topo.Snapshot(0)
	path, d := s.Path(0, 2) // Rio -> Nairobi
	if path == nil {
		t.Fatal("no path Rio->Nairobi at t=0")
	}
	if path[0] != topo.GSNode(0) || path[len(path)-1] != topo.GSNode(2) {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	for _, v := range path[1 : len(path)-1] {
		if topo.IsGS(v) {
			t.Fatalf("intermediate GS in path: %v", path)
		}
	}
	if d < geom.Haversine(topo.GroundStations[0].Position, topo.GroundStations[2].Position) {
		t.Errorf("path length %v below great-circle distance", d)
	}
}

func TestRTTAboveGeodesic(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	s := topo.Snapshot(0)
	rtt := s.RTT(0, 1)
	if math.IsInf(rtt, 1) {
		t.Skip("pair disconnected at t=0 in mini constellation")
	}
	geodesic := geom.GeodesicRTT(topo.GroundStations[0].Position, topo.GroundStations[1].Position)
	if rtt <= geodesic {
		t.Errorf("satellite RTT %v <= geodesic %v", rtt, geodesic)
	}
	if rtt > 10*geodesic {
		t.Errorf("satellite RTT %v implausibly large vs geodesic %v", rtt, geodesic)
	}
}

func TestPathMatchesPathLength(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	s := topo.Snapshot(42)
	path, d := s.Path(1, 3)
	if path == nil {
		t.Skip("disconnected")
	}
	if got := s.PathLength(path); math.Abs(got-d) > 1e-6 {
		t.Errorf("PathLength %v != Dijkstra distance %v", got, d)
	}
}

func TestForwardingTableConsistentWithPaths(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	s := topo.Snapshot(7)
	ft := s.ForwardingTable()
	for src := 0; src < topo.NumGS(); src++ {
		for dst := 0; dst < topo.NumGS(); dst++ {
			if src == dst {
				continue
			}
			want, d := s.Path(src, dst)
			got := ft.PathVia(topo, topo.GSNode(src), dst)
			if (want == nil) != (got == nil) {
				t.Fatalf("%d->%d: reachability mismatch", src, dst)
			}
			if want == nil {
				continue
			}
			// Both must have the same length (ties may pick different but
			// equally short routes; with deterministic Dijkstra they are
			// identical).
			if math.Abs(s.PathLength(got)-d) > 1e-6 {
				t.Fatalf("%d->%d: table path length %v, want %v", src, dst, s.PathLength(got), d)
			}
		}
	}
}

func TestForwardingTableDestinationSelf(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	ft := topo.Snapshot(0).ForwardingTable()
	for gs := 0; gs < topo.NumGS(); gs++ {
		node := topo.GSNode(gs)
		if got := ft.NextHop(node, gs); got != int32(node) {
			t.Errorf("NextHop(self) = %d, want %d", got, node)
		}
	}
}

func TestForwardingTableUnreachableIsMinusOne(t *testing.T) {
	// A constellation whose single shell cannot see a polar ground station:
	// forwarding entries toward it must be -1 from everywhere disconnected.
	cfg := constellation.Config{
		Name: "Equatorial",
		Shells: []constellation.Shell{{
			Name: "E1", AltitudeKm: 630, Orbits: 4, SatsPerOrbit: 8,
			IncDeg: 10, WalkerF: 0,
		}},
		MinElevDeg: 30,
	}
	c, err := constellation.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gss := []groundstation.GS{
		{ID: 0, Name: "Quito", Position: geom.LLADeg(-0.18, -78.47, 0)},
		{ID: 1, Name: "NorthPole", Position: geom.LLADeg(89, 0, 0)},
	}
	topo, err := NewTopology(c, gss, GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	s := topo.Snapshot(0)
	ft := s.ForwardingTable()
	if nh := ft.NextHop(topo.GSNode(0), 1); nh != -1 {
		t.Errorf("NextHop toward unreachable pole = %d, want -1", nh)
	}
	if rtt := s.RTT(0, 1); !math.IsInf(rtt, 1) {
		t.Errorf("RTT to pole = %v, want +Inf", rtt)
	}
	if p, _ := s.Path(0, 1); p != nil {
		t.Errorf("path to pole = %v, want nil", p)
	}
}

func TestSatSequenceAndSameSatPath(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	g0, g1 := topo.GSNode(0), topo.GSNode(1)
	pathA := []int{g0, 5, 6, 7, g1}
	pathB := []int{g0, 5, 6, 7, g1}
	pathC := []int{g0, 5, 9, 7, g1}
	pathD := []int{g0, 5, 6, g1}
	if !SameSatPath(topo, pathA, pathB) {
		t.Error("identical paths reported different")
	}
	if SameSatPath(topo, pathA, pathC) {
		t.Error("different middle satellite not detected")
	}
	if SameSatPath(topo, pathA, pathD) {
		t.Error("different length not detected")
	}
	seq := SatSequence(topo, pathA)
	if len(seq) != 3 || seq[0] != 5 || seq[2] != 7 {
		t.Errorf("SatSequence = %v", seq)
	}
}

func TestHopCount(t *testing.T) {
	if HopCount(nil) != 0 {
		t.Error("nil path hop count")
	}
	if HopCount([]int{1}) != 0 {
		t.Error("single node hop count")
	}
	if HopCount([]int{1, 2, 3}) != 2 {
		t.Error("3-node path hop count")
	}
}

func TestSnapshotTimeVariation(t *testing.T) {
	// Path RTT between two fixed ground stations must change over minutes as
	// satellites move — the core LEO dynamic of the paper.
	topo := miniTopo(t, GSLFree)
	var rtts []float64
	for ts := 0.0; ts <= 200; ts += 20 {
		if r := topo.Snapshot(ts).RTT(1, 2); !math.IsInf(r, 1) {
			rtts = append(rtts, r)
		}
	}
	if len(rtts) < 3 {
		t.Skip("pair mostly disconnected in mini constellation")
	}
	min, max := rtts[0], rtts[0]
	for _, r := range rtts {
		min = math.Min(min, r)
		max = math.Max(max, r)
	}
	if max-min < 1e-5 {
		t.Errorf("RTT static over 200s: min=%v max=%v", min, max)
	}
}

func TestFloydWarshallAgreesWithSnapshotDijkstra(t *testing.T) {
	// Cross-validate the two routing computations on a full snapshot, as the
	// paper cross-validates simulator pings against networkx computations.
	topo := miniTopo(t, GSLFree)
	s := topo.Snapshot(100)
	ap := s.G.FloydWarshall()
	for src := 0; src < topo.NumGS(); src++ {
		dist, _ := s.FromGS(src, nil, nil)
		for dst := 0; dst < topo.NumGS(); dst++ {
			fw := ap.Dist(topo.GSNode(src), topo.GSNode(dst))
			dj := dist[topo.GSNode(dst)]
			if math.IsInf(fw, 1) != math.IsInf(dj, 1) {
				t.Fatalf("%d->%d reachability mismatch", src, dst)
			}
			if !math.IsInf(fw, 1) && math.Abs(fw-dj) > 1e-6 {
				t.Fatalf("%d->%d: FW %v vs Dijkstra %v", src, dst, fw, dj)
			}
		}
	}
	_ = graph.Infinity
}

func TestNodePositionsMatchesSnapshot(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	pos := topo.NodePositions(42, nil)
	snap := topo.Snapshot(42)
	if len(pos) != topo.NumNodes() {
		t.Fatalf("len = %d", len(pos))
	}
	for i := range pos {
		if pos[i].Distance(snap.Pos[i]) > 1e-6 {
			t.Fatalf("node %d position differs", i)
		}
	}
	// Slice reuse.
	again := topo.NodePositions(42, pos)
	if &again[0] != &pos[0] {
		t.Error("did not reuse destination slice")
	}
}

func TestSnapshotKShortestPaths(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	snap := topo.Snapshot(0)
	direct, dist := snap.Path(0, 2)
	if direct == nil {
		t.Skip("pair disconnected")
	}
	paths := snap.KShortestPaths(0, 2, 3)
	if len(paths) == 0 {
		t.Fatal("no k-shortest paths for a connected pair")
	}
	if math.Abs(paths[0].Weight-dist) > 1e-6 {
		t.Errorf("first path weight %v != shortest %v", paths[0].Weight, dist)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Weight < paths[i-1].Weight-1e-9 {
			t.Error("paths out of order")
		}
	}
	// Disconnected pair: the mini constellation cannot reach a pole GS,
	// but here just use an unreachable time/pair if any; fall back to the
	// guarantee that k=0 is nil.
	if snap.KShortestPaths(0, 2, 0) != nil {
		t.Error("k=0 should be nil")
	}
}

// loopingTable hand-builds a table with a two-node forwarding loop toward
// GS 0: node 0 -> 1 -> 0. The synthetic column stays self-consistent at the
// destination so the hypatia_checks invariant in SetDestination holds; the
// loop under test is between nodes 0 and 1, away from the destination node.
func loopingTable(topo *Topology) *ForwardingTable {
	ft := NewEmptyForwardingTable(0, topo.NumNodes(), topo.NumGS())
	prev := make([]int32, topo.NumNodes())
	for i := range prev {
		prev[i] = -1
	}
	prev[0] = 1
	prev[1] = 0
	dstNode := topo.GSNode(0)
	prev[dstNode] = int32(dstNode)
	ft.SetDestination(0, prev)
	return ft
}

// TestPathViaLoopReturnsUnreachable is the regression test for the old
// behavior of panicking on a forwarding loop in every build: the walk now
// reports the destination unreachable (nil), while the hypatia_checks build
// still asserts loop-freedom and panics.
func TestPathViaLoopReturnsUnreachable(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	ft := loopingTable(topo)
	defer func() {
		r := recover()
		if check.Enabled && r == nil {
			t.Error("hypatia_checks build did not panic on a forwarding loop")
		}
		if !check.Enabled && r != nil {
			t.Errorf("unchecked build panicked on a forwarding loop: %v", r)
		}
	}()
	if path := ft.PathVia(topo, 0, 0); path != nil {
		t.Errorf("PathVia over a looping table = %v, want nil", path)
	}
	// A node outside the loop with a well-formed route is unaffected.
	if got := ft.PathVia(topo, topo.GSNode(0), 0); len(got) != 1 {
		t.Errorf("destination self-walk = %v, want single-node path", got)
	}
}

func TestForwardingTableTimestamp(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	ft := topo.Snapshot(7.5).ForwardingTable()
	if ft.T != 7.5 {
		t.Errorf("table timestamp = %v", ft.T)
	}
}

// TestSnapshotIntoMatchesSnapshot reuses one snapshot arena across many
// instants and both GSL policies, requiring graphs byte-identical to the
// allocating path: same positions, same per-node adjacency (order included),
// same resulting forwarding tables.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	for _, policy := range []GSLPolicy{GSLFree, GSLNearestOnly} {
		topo := miniTopo(t, policy)
		var reused *Snapshot
		for _, tsec := range []float64{0, 13.7, 99.9, 142.3, 200} {
			fresh := topo.Snapshot(tsec)
			reused = topo.SnapshotInto(tsec, reused)
			if reused.T != fresh.T || reused.G.N() != fresh.G.N() {
				t.Fatalf("policy %v t=%v: header differs", policy, tsec)
			}
			for i := range fresh.Pos {
				if reused.Pos[i] != fresh.Pos[i] {
					t.Fatalf("policy %v t=%v: pos[%d] differs", policy, tsec, i)
				}
			}
			for v := 0; v < fresh.G.N(); v++ {
				fe, re := fresh.G.Neighbors(v), reused.G.Neighbors(v)
				if len(fe) != len(re) {
					t.Fatalf("policy %v t=%v: node %d degree %d vs %d", policy, tsec, v, len(re), len(fe))
				}
				for k := range fe {
					if fe[k] != re[k] {
						t.Fatalf("policy %v t=%v: node %d edge %d differs: %+v vs %+v",
							policy, tsec, v, k, re[k], fe[k])
					}
				}
			}
			if !reused.ForwardingTable().Equal(fresh.ForwardingTable()) {
				t.Fatalf("policy %v t=%v: forwarding tables differ", policy, tsec)
			}
		}
	}
}

// TestSnapshotIntoSteadyStateAllocs verifies the arena-reuse promise: after
// warm-up, rebuilding a snapshot allocates nothing.
func TestSnapshotIntoSteadyStateAllocs(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	snap := topo.SnapshotInto(0, nil)
	for _, tsec := range []float64{25, 50, 75, 100} { // warm slabs across edge-count variation
		snap = topo.SnapshotInto(tsec, snap)
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		snap = topo.SnapshotInto(float64(i), snap)
	})
	if allocs != 0 {
		t.Errorf("SnapshotInto allocated %v times per rebuild in steady state", allocs)
	}
}

// TestTablePoolRecycling exercises the Empty/Release lifecycle: a released
// buffer is reused, reused tables start all-unreachable, Release is
// nil-safe, and (in unchecked builds) a repeated Release is tolerated. The
// hypatia_checks build instead panics on the repeat — that path is pinned
// by TestDoubleReleaseCaught in release_checks_test.go.
func TestTablePoolRecycling(t *testing.T) {
	var pool TablePool
	a := pool.Empty(1, 8, 2)
	for gs := 0; gs < 2; gs++ {
		for node := 0; node < 8; node++ {
			if a.NextHop(node, gs) != -1 {
				t.Fatalf("fresh pooled table entry (%d,%d) = %d", node, gs, a.NextHop(node, gs))
			}
		}
	}
	prev := []int32{5, 0, 0, 0, 0, 0, 0, 7} // junk column to dirty the buffer
	a.SetDestination(1, prev)
	a.Release()
	if !check.Enabled {
		a.Release() // tolerated repeat; panics under hypatia_checks
	}
	var nilTable *ForwardingTable
	nilTable.Release() // nil-safe

	b := pool.Empty(2, 8, 2)
	if b.T != 2 {
		t.Errorf("reused table T = %v", b.T)
	}
	for gs := 0; gs < 2; gs++ {
		for node := 0; node < 8; node++ {
			if b.NextHop(node, gs) != -1 {
				t.Fatalf("reused table entry (%d,%d) = %d, want -1", node, gs, b.NextHop(node, gs))
			}
		}
	}
	// A request larger than any pooled buffer allocates fresh.
	c := pool.Empty(3, 100, 100)
	if c.NumNodes != 100 || c.NumGS != 100 {
		t.Errorf("oversize table dims = %d×%d", c.NumNodes, c.NumGS)
	}
}

// TestUseAfterReleaseCaught verifies the hypatia_checks build catches reads
// of a released table.
func TestUseAfterReleaseCaught(t *testing.T) {
	if !check.Enabled {
		t.Skip("requires -tags hypatia_checks")
	}
	var pool TablePool
	ft := pool.Empty(0, 4, 1)
	ft.Release()
	defer func() {
		if recover() == nil {
			t.Error("NextHop on a released table did not panic under hypatia_checks")
		}
	}()
	ft.NextHop(0, 0)
}

// TestForwardingTableEqual covers the identity predicate used by the
// differential harness.
func TestForwardingTableEqual(t *testing.T) {
	topo := miniTopo(t, GSLFree)
	snap := topo.Snapshot(5)
	a := snap.ForwardingTable()
	b := snap.ForwardingTable()
	if !a.Equal(b) {
		t.Fatal("identical computations not Equal")
	}
	if !a.Equal(a) {
		t.Fatal("table not Equal to itself")
	}
	c := topo.Snapshot(6).ForwardingTable()
	if a.Equal(c) {
		t.Fatal("tables for different instants reported Equal")
	}
	d := NewEmptyForwardingTable(a.T, a.NumNodes, a.NumGS)
	if a.Equal(d) {
		t.Fatal("all-unreachable table reported Equal to a computed one")
	}
}

// TestRandomizedForwardingInvariants checks, for random (src node, dst GS)
// pairs on random-time snapshots: PathVia terminates; whenever the source
// has a next hop the walk reaches the destination; and the walked path's
// geometric length matches the Dijkstra distance (and, for GS sources, the
// Snapshot.Path distance) within tolerance.
func TestRandomizedForwardingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, policy := range []GSLPolicy{GSLFree, GSLNearestOnly} {
		topo := miniTopo(t, policy)
		for trial := 0; trial < 6; trial++ {
			tsec := rng.Float64() * 200
			snap := topo.Snapshot(tsec)
			ft := snap.ForwardingTable()
			var dist []float64
			var prev []int32
			for pair := 0; pair < 25; pair++ {
				src := rng.Intn(topo.NumNodes())
				dstGS := rng.Intn(topo.NumGS())
				dist, prev = snap.FromGS(dstGS, dist, prev)
				path := ft.PathVia(topo, src, dstGS)
				nh := ft.NextHop(src, dstGS)
				if nh < 0 {
					if path != nil {
						t.Fatalf("policy %v t=%v: src %d has no next hop but PathVia = %v",
							policy, tsec, src, path)
					}
					continue
				}
				if path == nil {
					t.Fatalf("policy %v t=%v: src %d has next hop %d but PathVia = nil",
						policy, tsec, src, nh)
				}
				if last := path[len(path)-1]; last != topo.GSNode(dstGS) {
					t.Fatalf("policy %v t=%v: walk from %d ended at %d, not dst node %d",
						policy, tsec, src, last, topo.GSNode(dstGS))
				}
				got := snap.PathLength(path)
				want := dist[src]
				if math.Abs(got-want) > 1e-6*(1+want) {
					t.Fatalf("policy %v t=%v: walk length %v vs Dijkstra distance %v",
						policy, tsec, got, want)
				}
				if topo.IsGS(src) {
					_, d := snap.Path(topo.GSIndex(src), dstGS)
					if math.Abs(got-d) > 1e-6*(1+d) {
						t.Fatalf("policy %v t=%v: walk length %v vs Snapshot.Path distance %v",
							policy, tsec, got, d)
					}
				}
			}
		}
	}
}
