package constellation

import (
	"strings"

	"hypatia/internal/tle"
)

// TLECatalog renders the whole constellation as a catalog of two-line
// element sets at the given epoch, in the WGS72 standard. This mirrors the
// paper's utility for generating TLEs for satellites that are not yet in
// orbit from the Keplerian parameters in operator filings, so the
// constellation can be consumed by external astrodynamics tooling.
func (c *Constellation) TLECatalog(epochYear int, epochDay float64) (string, error) {
	var b strings.Builder
	for i, s := range c.Satellites {
		t, err := tle.FromElements(s.Name, i+1, epochYear, epochDay, s.Elements)
		if err != nil {
			return "", err
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
