package constellation

import (
	"math"
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/tle"
)

func TestTable1ShellCounts(t *testing.T) {
	// Table 1 of the paper, cross-checked by shell.
	cases := []struct {
		shell Shell
		sats  int
		alt   float64
		inc   float64
	}{
		{StarlinkS1, 1584, 550, 53},
		{StarlinkS2, 1600, 1110, 53.8},
		{StarlinkS3, 400, 1130, 74},
		{StarlinkS4, 375, 1275, 81},
		{StarlinkS5, 450, 1325, 70},
		{KuiperK1, 1156, 630, 51.9},
		{KuiperK2, 1296, 610, 42},
		{KuiperK3, 784, 590, 33},
		{TelesatT1, 351, 1015, 98.98},
		{TelesatT2, 1320, 1325, 50.88},
	}
	for _, c := range cases {
		if got := c.shell.Sats(); got != c.sats {
			t.Errorf("%s: sats = %d, want %d", c.shell.Name, got, c.sats)
		}
		if c.shell.AltitudeKm != c.alt {
			t.Errorf("%s: altitude = %v", c.shell.Name, c.shell.AltitudeKm)
		}
		if c.shell.IncDeg != c.inc {
			t.Errorf("%s: inclination = %v", c.shell.Name, c.shell.IncDeg)
		}
		if err := c.shell.Validate(); err != nil {
			t.Errorf("%s: %v", c.shell.Name, err)
		}
	}
	// Paper: Starlink phase one totals 4,409 satellites across 5 shells.
	total := 0
	for _, s := range []Shell{StarlinkS1, StarlinkS2, StarlinkS3, StarlinkS4, StarlinkS5} {
		total += s.Sats()
	}
	if total != 4409 {
		t.Errorf("Starlink phase 1 total = %d, want 4409", total)
	}
	// Kuiper totals 3,236 satellites across its three shells.
	total = 0
	for _, s := range []Shell{KuiperK1, KuiperK2, KuiperK3} {
		total += s.Sats()
	}
	if total != 3236 {
		t.Errorf("Kuiper total = %d, want 3236", total)
	}
	// Telesat totals 1,671 satellites.
	if got := TelesatT1.Sats() + TelesatT2.Sats(); got != 1671 {
		t.Errorf("Telesat total = %d, want 1671", got)
	}
}

func TestShellValidate(t *testing.T) {
	bad := Shell{Name: "X", AltitudeKm: 550, Orbits: 0, SatsPerOrbit: 22, IncDeg: 53}
	if bad.Validate() == nil {
		t.Error("zero orbits accepted")
	}
	bad = Shell{Name: "X", AltitudeKm: 40000, Orbits: 10, SatsPerOrbit: 10, IncDeg: 53}
	if bad.Validate() == nil {
		t.Error("beyond-GEO altitude accepted")
	}
	bad = Shell{Name: "X", AltitudeKm: 550, Orbits: 10, SatsPerOrbit: 10, IncDeg: 0}
	if bad.Validate() == nil {
		t.Error("multiple coincident equatorial planes accepted")
	}
	bad = Shell{Name: "X", AltitudeKm: 550, Orbits: 10, SatsPerOrbit: 10, IncDeg: -5}
	if bad.Validate() == nil {
		t.Error("negative inclination accepted")
	}
}

func TestGEORingIsStationary(t *testing.T) {
	cfg := Config{Name: "GEO", Shells: []Shell{GEORing("G1", 3)}, MinElevDeg: 10}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSatellites() != 3 {
		t.Fatalf("satellites = %d", c.NumSatellites())
	}
	// Geostationary: the ECEF position drifts by well under a kilometer
	// per hour (only the tiny mismatch between the shell's nominal radius
	// and the exact geosynchronous radius remains).
	for i := 0; i < 3; i++ {
		p0 := c.PositionECEF(i, 0)
		p1 := c.PositionECEF(i, 3600)
		if d := p0.Distance(p1); d > 2000 {
			t.Errorf("GEO sat %d drifted %v m in an hour", i, d)
		}
	}
	// The ring carries intra-orbit ISLs only: degree 2 per satellite.
	for i, d := range c.ISLDegree() {
		if d != 2 {
			t.Errorf("GEO sat %d ISL degree = %d, want 2", i, d)
		}
	}
}

func TestGEOVisibilityAndLatency(t *testing.T) {
	// A GEO satellite over the observer's longitude is visible, and the
	// slant range implies the paper's "hundreds of milliseconds" RTT
	// (>= 2*35786 km / c ~ 239 ms for the up-down round trip alone).
	cfg := Config{Name: "GEO", Shells: []Shell{GEORing("G1", 8)}, MinElevDeg: 10}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := geom.LLADeg(0, 0, 0)
	vis := c.VisibleFrom(obs, 0, nil)
	if len(vis) == 0 {
		t.Fatal("no GEO satellite visible from the equator")
	}
	pos := c.PositionsECEF(0, nil)
	minSlant := math.Inf(1)
	for _, i := range vis {
		if d := pos[i].Distance(obs.ToECEF()); d < minSlant {
			minSlant = d
		}
	}
	bounceRTT := 4 * minSlant / geom.SpeedOfLight // up-down, both directions
	if bounceRTT < 0.40 || bounceRTT > 0.65 {
		t.Errorf("GEO bounce RTT = %v s, want ~0.48", bounceRTT)
	}
}

func TestGenerateKuiperK1(t *testing.T) {
	c, err := Generate(Kuiper())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSatellites() != 1156 {
		t.Fatalf("satellites = %d", c.NumSatellites())
	}
	if c.MinElev != geom.Rad(30) {
		t.Errorf("min elevation = %v", geom.Deg(c.MinElev))
	}
	// Every satellite sits at the right altitude at every sampled time.
	for _, ts := range []float64{0, 100, 200} {
		for i := 0; i < c.NumSatellites(); i += 97 {
			r := c.PositionECI(i, ts).Norm()
			want := geom.EarthRadius + 630e3
			if math.Abs(r-want) > 10 {
				t.Fatalf("sat %d at t=%v: radius %v, want %v", i, ts, r, want)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Name: "empty"}); err == nil {
		t.Error("no shells accepted")
	}
	if _, err := Generate(Config{Name: "x", Shells: []Shell{KuiperK1}, MinElevDeg: 95}); err == nil {
		t.Error("min elevation 95 accepted")
	}
	if _, err := Generate(Config{Name: "x", Shells: []Shell{{Name: "bad"}}}); err == nil {
		t.Error("invalid shell accepted")
	}
}

func TestPlusGridDegreeIsFour(t *testing.T) {
	// The paper: 4 ISLs per satellite — two intra-orbit, two inter-orbit.
	c, err := Generate(Kuiper())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range c.ISLDegree() {
		if d != 4 {
			t.Fatalf("satellite %d has ISL degree %d, want 4", i, d)
		}
	}
	// Total ISLs: 2 per satellite (each of the 4 per-sat links is shared).
	if want := 2 * c.NumSatellites(); len(c.ISLs) != want {
		t.Errorf("ISL count = %d, want %d", len(c.ISLs), want)
	}
}

func TestPlusGridNoDuplicatesOrSelfLinks(t *testing.T) {
	c, err := Generate(Starlink())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]bool)
	for _, l := range c.ISLs {
		if l.A == l.B {
			t.Fatalf("self link at %d", l.A)
		}
		k := [2]int{l.A, l.B}
		if l.B < l.A {
			k = [2]int{l.B, l.A}
		}
		if seen[k] {
			t.Fatalf("duplicate ISL %v", k)
		}
		seen[k] = true
	}
}

func TestPlusGridNeighborsAreAdjacent(t *testing.T) {
	c, _ := Generate(Kuiper())
	sh := KuiperK1
	for _, l := range c.ISLs {
		a, b := c.Satellites[l.A], c.Satellites[l.B]
		if a.Orbit == b.Orbit {
			// Intra-orbit: adjacent slots (mod SatsPerOrbit).
			d := (b.InOrbit - a.InOrbit + sh.SatsPerOrbit) % sh.SatsPerOrbit
			if d != 1 && d != sh.SatsPerOrbit-1 {
				t.Fatalf("intra-orbit link between non-adjacent slots %d and %d", a.InOrbit, b.InOrbit)
			}
		} else {
			// Inter-orbit: adjacent planes (mod Orbits), same slot.
			d := (b.Orbit - a.Orbit + sh.Orbits) % sh.Orbits
			if d != 1 && d != sh.Orbits-1 {
				t.Fatalf("inter-orbit link between non-adjacent planes %d and %d", a.Orbit, b.Orbit)
			}
			if a.InOrbit != b.InOrbit {
				t.Fatalf("inter-orbit link between different slots %d and %d", a.InOrbit, b.InOrbit)
			}
		}
	}
}

func TestISLNoneMode(t *testing.T) {
	cfg := Kuiper()
	cfg.ISLMode = ISLNone
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ISLs) != 0 {
		t.Errorf("bent-pipe constellation has %d ISLs", len(c.ISLs))
	}
}

func TestMultiShellISLsStayWithinShell(t *testing.T) {
	cfg := Config{
		Name:       "Telesat",
		Shells:     []Shell{TelesatT1, TelesatT2},
		MinElevDeg: TelesatMinElevDeg,
	}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSatellites() != 1671 {
		t.Fatalf("satellites = %d", c.NumSatellites())
	}
	for _, l := range c.ISLs {
		if c.Satellites[l.A].ShellIndex != c.Satellites[l.B].ShellIndex {
			t.Fatalf("ISL crosses shells: %d-%d", l.A, l.B)
		}
	}
}

func TestSatelliteMetadata(t *testing.T) {
	c, _ := Generate(Kuiper())
	sh := KuiperK1
	for i, s := range c.Satellites {
		if s.Index != i {
			t.Fatalf("satellite %d has Index %d", i, s.Index)
		}
		if s.Orbit != i/sh.SatsPerOrbit || s.InOrbit != i%sh.SatsPerOrbit {
			t.Fatalf("satellite %d has orbit %d slot %d", i, s.Orbit, s.InOrbit)
		}
	}
}

func TestAlternatingPhasing(t *testing.T) {
	// Default (Hypatia-faithful) phasing: odd planes lead by half an
	// in-plane slot, even planes are unshifted.
	c, _ := Generate(Kuiper())
	sh := KuiperK1
	slot := 2 * math.Pi / float64(sh.SatsPerOrbit)
	s00 := c.Satellites[0].Elements.MeanAnomaly
	for _, o := range []int{1, 2, 3, sh.Orbits - 1} {
		got := math.Mod(c.Satellites[o*sh.SatsPerOrbit].Elements.MeanAnomaly-s00+2*math.Pi, 2*math.Pi)
		want := float64(o%2) * 0.5 * slot
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("plane %d offset = %v, want %v", o, got, want)
		}
	}
}

func TestWalkerPhasing(t *testing.T) {
	// With Walker phasing F=1, plane 1's slot-0 satellite leads plane 0's
	// slot-0 satellite by 1/Orbits of an in-plane spacing in mean anomaly,
	// and the cumulative shift around all planes is exactly one whole slot.
	sh := KuiperK1
	sh.Phasing = PhaseWalker
	sh.WalkerF = 1
	cfg := Kuiper(sh)
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s00 := c.Satellites[0].Elements.MeanAnomaly
	s10 := c.Satellites[sh.SatsPerOrbit].Elements.MeanAnomaly
	slot := 2 * math.Pi / float64(sh.SatsPerOrbit)
	wantDelta := slot / float64(sh.Orbits)
	got := math.Mod(s10-s00+2*math.Pi, 2*math.Pi)
	if math.Abs(got-wantDelta) > 1e-9 {
		t.Errorf("phase offset = %v, want %v", got, wantDelta)
	}
	// Last plane's offset: (Orbits-1)*F/Orbits slots; one more plane step
	// would complete a whole slot.
	last := c.Satellites[(sh.Orbits-1)*sh.SatsPerOrbit].Elements.MeanAnomaly
	wantLast := slot * float64(sh.Orbits-1) / float64(sh.Orbits)
	gotLast := math.Mod(last-s00+2*math.Pi, 2*math.Pi)
	if math.Abs(gotLast-wantLast) > 1e-9 {
		t.Errorf("last plane offset = %v, want %v", gotLast, wantLast)
	}
}

func TestISLsArePhysicallyRealizable(t *testing.T) {
	// No +Grid ISL may be longer than the line-of-sight maximum at the
	// shell's altitude (a longer link would pass through the Earth). This
	// is the property that forces seam-continuous Walker phasing.
	for _, cfg := range []Config{Starlink(), Kuiper(), Telesat()} {
		c, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ts := range []float64{0, 100} {
			pos := c.PositionsECEF(ts, nil)
			for _, l := range c.ISLs {
				alt := c.Shells[c.Satellites[l.A].ShellIndex].AltitudeKm * 1000
				d := pos[l.A].Distance(pos[l.B])
				if d > MaxISLRange(alt) {
					t.Fatalf("%s: ISL %d-%d is %v km at t=%v, max %v km",
						cfg.Name, l.A, l.B, d/1000, ts, MaxISLRange(alt)/1000)
				}
			}
		}
	}
}

func TestValidateRejectsBadWalkerF(t *testing.T) {
	sh := KuiperK1
	sh.Phasing = PhaseWalker
	sh.WalkerF = sh.Orbits
	if sh.Validate() == nil {
		t.Error("WalkerF = Orbits accepted")
	}
	sh.WalkerF = -1
	if sh.Validate() == nil {
		t.Error("negative WalkerF accepted")
	}
	// WalkerF is ignored (and unvalidated) under alternating phasing.
	sh.Phasing = PhaseAlternating
	if err := sh.Validate(); err != nil {
		t.Errorf("alternating phasing should ignore WalkerF: %v", err)
	}
}

func TestPositionsECEFMatchesPerSatellite(t *testing.T) {
	c, _ := Generate(Telesat())
	all := c.PositionsECEF(123.4, nil)
	if len(all) != c.NumSatellites() {
		t.Fatalf("len = %d", len(all))
	}
	for _, i := range []int{0, 17, 350} {
		if d := all[i].Distance(c.PositionECEF(i, 123.4)); d > 1e-6 {
			t.Errorf("sat %d: batch and single positions differ by %v m", i, d)
		}
	}
	// Reuses the destination slice when it has capacity.
	again := c.PositionsECEF(200, all)
	if &again[0] != &all[0] {
		t.Error("PositionsECEF did not reuse destination slice")
	}
}

func TestEarthRotationMovesECEFNotECI(t *testing.T) {
	c, _ := Generate(Kuiper())
	// Over a short dt, the ECEF displacement includes Earth rotation; the
	// two frames must diverge in longitude over time for a fixed satellite.
	eci0 := c.PositionECI(0, 0)
	ecef0 := c.PositionECEF(0, 0)
	if eci0.Distance(ecef0) > 1e-6 {
		t.Errorf("at t=0 with zero epoch GMST, frames should coincide: %v", eci0.Distance(ecef0))
	}
	// A quarter sidereal day later they must not coincide.
	ts := 0.25 * 2 * math.Pi / geom.EarthRotationRate
	if c.PositionECI(0, ts).Distance(c.PositionECEF(0, ts)) < 1e5 {
		t.Error("ECI and ECEF positions should diverge after hours")
	}
}

func TestVisibleFromMatchesDirectCheck(t *testing.T) {
	c, _ := Generate(Kuiper())
	obs := geom.LLADeg(41.0082, 28.9784, 0) // Istanbul
	obsECEF := obs.ToECEF()
	pos := c.PositionsECEF(50, nil)
	vis := c.VisibleFrom(obs, 50, pos)
	got := make(map[int]bool, len(vis))
	for _, i := range vis {
		got[i] = true
	}
	for i, p := range pos {
		h := p.Norm() - geom.EarthRadius
		want := p.Distance(obsECEF) <= MaxGSLRange(h, c.MinElev) &&
			geom.Elevation(obs, p) >= 0
		if got[i] != want {
			t.Fatalf("sat %d: VisibleFrom=%v, direct=%v", i, got[i], want)
		}
	}
	if len(vis) == 0 {
		t.Error("Istanbul should see at least one Kuiper satellite at t=50")
	}
}

func TestMaxGSLRange(t *testing.T) {
	// Kuiper: 630 km at 30 degrees => 1,260 km.
	if got := MaxGSLRange(630e3, geom.Rad(30)); math.Abs(got-1260e3) > 1 {
		t.Errorf("Kuiper max GSL = %v km", got/1000)
	}
	// Lower elevation reaches farther.
	if MaxGSLRange(630e3, geom.Rad(10)) <= MaxGSLRange(630e3, geom.Rad(30)) {
		t.Error("range should grow as min elevation falls")
	}
	// Degenerate elevation falls back to the horizon slant.
	if got := MaxGSLRange(630e3, 0); math.Abs(got-geom.MaxSlantRange(630e3, 0)) > 1 {
		t.Errorf("zero-elevation fallback = %v", got)
	}
}

func TestVisibleFromCubeMatchesPaperCoverage(t *testing.T) {
	// The flat-earth cone criterion must make Saint Petersburg (59.93N)
	// reachable from Kuiper K1 most of the time — the paper's Fig 3(a)
	// shows sustained Rio-Saint Petersburg connectivity with a short
	// outage — even though the exact 30-degree elevation check would keep
	// it permanently out of reach of a 51.9-degree-inclination shell.
	c, _ := Generate(Kuiper())
	stP := geom.LLADeg(59.9311, 30.3609, 0)
	connected, total := 0, 0
	for ts := 0.0; ts < 1200; ts += 10 {
		total++
		if len(c.VisibleFrom(stP, ts, nil)) > 0 {
			connected++
		}
	}
	frac := float64(connected) / float64(total)
	if frac < 0.5 {
		t.Errorf("St. Petersburg connected only %.0f%% of the time", frac*100)
	}
	if frac == 1 {
		t.Log("note: no outage in 20 min window (outages are expected but rare)")
	}
}

func TestVisibleFromComputesPositionsWhenNil(t *testing.T) {
	c, _ := Generate(Kuiper())
	obs := geom.LLADeg(0, 0, 0)
	a := c.VisibleFrom(obs, 10, nil)
	b := c.VisibleFrom(obs, 10, c.PositionsECEF(10, nil))
	if len(a) != len(b) {
		t.Fatalf("nil-position path differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestHighLatitudeCoverageDiffersByConstellation(t *testing.T) {
	// St. Petersburg (59.93°N) is beyond Kuiper K1's reliable coverage
	// (51.9° inclination, 30° min elevation) but within Telesat T1's
	// (98.98° polar orbits, 10° min elevation). Sample a full orbital
	// period; Kuiper must lose coverage at some point, Telesat must not.
	stPetersburg := geom.LLADeg(59.9311, 30.3609, 0)

	kuiper, _ := Generate(Kuiper())
	kuiperVisible := 0
	samples := 0
	for ts := 0.0; ts < 6000; ts += 30 {
		kuiperVisible += len(kuiper.VisibleFrom(stPetersburg, ts, nil))
		samples++
	}

	telesat, _ := Generate(Telesat())
	telesatGaps := 0
	telesatVisible := 0
	for ts := 0.0; ts < 6000; ts += 30 {
		n := len(telesat.VisibleFrom(stPetersburg, ts, nil))
		telesatVisible += n
		if n == 0 {
			telesatGaps++
		}
	}
	if telesatGaps > 0 {
		t.Errorf("Telesat T1 has %d coverage gaps at St. Petersburg, want 0", telesatGaps)
	}
	// Kuiper's coverage at 59.9 N is marginal (the shell tops out at 51.9
	// degrees): on average far fewer connectable satellites than Telesat's
	// polar shell despite Kuiper having 3x the satellites.
	kuiperMean := float64(kuiperVisible) / float64(samples)
	telesatMean := float64(telesatVisible) / float64(samples)
	if kuiperMean >= telesatMean {
		t.Errorf("Kuiper sees %.1f satellites on average at St. Petersburg, Telesat %.1f — want Kuiper far fewer",
			kuiperMean, telesatMean)
	}
	if kuiperMean > 4 {
		t.Errorf("Kuiper coverage at St. Petersburg should be marginal, got %.1f satellites on average", kuiperMean)
	}
}

func TestTLECatalogRoundTrips(t *testing.T) {
	cfg := Config{Name: "Mini", Shells: []Shell{{
		Name: "M1", AltitudeKm: 630, Orbits: 4, SatsPerOrbit: 5, IncDeg: 51.9,
	}}, MinElevDeg: 30}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := c.TLECatalog(2024, 100.5)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := tle.ParseCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 20 {
		t.Fatalf("parsed %d TLEs, want 20", len(parsed))
	}
	for i, p := range parsed {
		want := c.Satellites[i].Elements
		got := p.Elements()
		if math.Abs(got.SemiMajorAxis-want.SemiMajorAxis) > 50 {
			t.Fatalf("sat %d semi-major axis: %v vs %v", i, got.SemiMajorAxis, want.SemiMajorAxis)
		}
		if math.Abs(got.Inclination-want.Inclination) > geom.Rad(0.001) {
			t.Fatalf("sat %d inclination: %v vs %v", i, got.Inclination, want.Inclination)
		}
	}
}

func TestGMSTAtUsesEpoch(t *testing.T) {
	cfg := Kuiper()
	cfg.EpochGMST = 1.5
	c, _ := Generate(cfg)
	if got := c.GMSTAt(0); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("GMSTAt(0) = %v", got)
	}
}

func TestFromTLEsRoundTrip(t *testing.T) {
	// Generate a mini constellation, export its TLE catalog, rebuild a
	// constellation from the catalog, and compare positions over time.
	src, err := Generate(Config{
		Name: "Mini",
		Shells: []Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 4, SatsPerOrbit: 6, IncDeg: 51.9,
		}},
		MinElevDeg: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := src.TLECatalog(2024, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := tle.ParseCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromTLEs(parsed, FromTLEConfig{
		Name: "Rebuilt", MinElevDeg: 30, ISLMode: ISLPlusGrid, PlaneSize: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumSatellites() != 24 {
		t.Fatalf("satellites = %d", rebuilt.NumSatellites())
	}
	if len(rebuilt.ISLs) != len(src.ISLs) {
		t.Fatalf("ISLs = %d, want %d", len(rebuilt.ISLs), len(src.ISLs))
	}
	for _, ts := range []float64{0, 100, 1000} {
		for i := 0; i < 24; i += 5 {
			d := src.PositionECEF(i, ts).Distance(rebuilt.PositionECEF(i, ts))
			// TLE quantization (1e-4 deg) costs tens of meters; allow slack
			// for mean-motion rounding growing along-track over time.
			if d > 2000 {
				t.Fatalf("sat %d diverged %v m at t=%v", i, d, ts)
			}
		}
	}
	// Visibility behaves like the source constellation.
	obs := geom.LLADeg(40, 20, 0)
	a := len(src.VisibleFrom(obs, 50, nil))
	b := len(rebuilt.VisibleFrom(obs, 50, nil))
	if a != b {
		t.Errorf("visible: src %d vs rebuilt %d", a, b)
	}
}

func TestFromTLEsValidation(t *testing.T) {
	if _, err := FromTLEs(nil, FromTLEConfig{MinElevDeg: 30}); err == nil {
		t.Error("empty catalog accepted")
	}
	src, _ := Generate(Kuiper())
	cat, _ := src.TLECatalog(2024, 1.0)
	all, err := tle.ParseCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	parsed := all[:10] // just a few entries
	if _, err := FromTLEs(parsed, FromTLEConfig{MinElevDeg: 95}); err == nil {
		t.Error("bad elevation accepted")
	}
	if _, err := FromTLEs(parsed, FromTLEConfig{MinElevDeg: 30, ISLMode: ISLPlusGrid, PlaneSize: 7}); err == nil {
		t.Error("non-dividing plane size accepted")
	}
	// Bent-pipe mode accepts any catalog shape.
	c, err := FromTLEs(parsed, FromTLEConfig{MinElevDeg: 30, ISLMode: ISLNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ISLs) != 0 {
		t.Error("bent-pipe catalog has ISLs")
	}
}
