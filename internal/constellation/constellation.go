// Package constellation turns the orbital design parameters that operators
// disclose in FCC/ITU filings — shells described by altitude, inclination,
// orbit count and satellites per orbit — into concrete satellite fleets with
// propagators, inter-satellite link (ISL) topologies, and ground-satellite
// visibility rules.
//
// The package ships the Table 1 configurations of the paper (Starlink's
// first deployment phase, Kuiper, and Telesat) and supports arbitrary custom
// shells. The default ISL interconnect is "+Grid": each satellite links to
// its two neighbors within the orbit and to the corresponding satellite in
// each adjacent orbit, the pattern the paper adopts from prior satellite
// networking literature. Constellations that eschew ISLs entirely
// (bent-pipe designs, Appendix A of the paper) are supported by disabling
// ISL generation.
package constellation

import (
	"fmt"
	"math"

	"hypatia/internal/geom"
	"hypatia/internal/orbit"
)

// Shell describes one orbital shell: a set of orbits sharing altitude and
// inclination, uniformly spread in right ascension, each holding uniformly
// spaced satellites.
type Shell struct {
	Name         string  // e.g. "S1", "K1", "T1"
	AltitudeKm   float64 // operating height above sea level, km
	Orbits       int     // number of orbital planes
	SatsPerOrbit int     // satellites per plane
	IncDeg       float64 // inclination, degrees

	// Phasing selects how satellites in adjacent planes are offset along
	// the orbit. The zero value, PhaseAlternating, matches the original
	// Hypatia's TLE generator: odd-numbered planes are shifted by half an
	// in-plane slot. PhaseWalker applies classical Walker-delta phasing
	// with factor WalkerF.
	Phasing PhasePolicy

	// WalkerF is the Walker-delta phasing factor F in [0, Orbits), used
	// only with PhaseWalker: the satellites of plane o are shifted along
	// the orbit by o * F / Orbits in-plane slots, making the cumulative
	// shift around all planes exactly F whole slots (so the +Grid seam
	// connects genuinely adjacent satellites).
	WalkerF int
}

// PhasePolicy selects the inter-plane phase offset scheme.
type PhasePolicy int

const (
	// PhaseAlternating shifts odd planes by half an in-plane slot, the
	// scheme Hypatia's TLE generation uses (phase_diff). The seam jump is
	// at most half a slot, so all +Grid ISLs remain physically realizable.
	PhaseAlternating PhasePolicy = iota
	// PhaseWalker applies Walker-delta phasing with factor WalkerF.
	PhaseWalker
)

// Sats returns the number of satellites in the shell.
func (s Shell) Sats() int { return s.Orbits * s.SatsPerOrbit }

// Validate reports whether the shell is generatable.
func (s Shell) Validate() error {
	if s.Orbits <= 0 || s.SatsPerOrbit <= 0 {
		return fmt.Errorf("constellation: shell %q has %d orbits x %d sats", s.Name, s.Orbits, s.SatsPerOrbit)
	}
	if s.AltitudeKm <= 0 || s.AltitudeKm > GEOAltitudeKm+100 {
		return fmt.Errorf("constellation: shell %q altitude %v km outside LEO..GEO range", s.Name, s.AltitudeKm)
	}
	if s.IncDeg < 0 || s.IncDeg > 180 {
		return fmt.Errorf("constellation: shell %q inclination %v out of range", s.Name, s.IncDeg)
	}
	if s.IncDeg == 0 && s.Orbits > 1 {
		return fmt.Errorf("constellation: shell %q has %d coincident equatorial planes", s.Name, s.Orbits)
	}
	if s.Phasing == PhaseWalker && (s.WalkerF < 0 || s.WalkerF >= s.Orbits) {
		return fmt.Errorf("constellation: shell %q Walker phasing %d outside [0, %d)", s.Name, s.WalkerF, s.Orbits)
	}
	return nil
}

// MaxISLRange returns the longest physically possible line-of-sight ISL at
// altitude h meters: the chord that grazes the Earth's surface. Any longer
// "link" would pass through the Earth.
func MaxISLRange(h float64) float64 {
	r := geom.EarthRadius
	return 2 * math.Sqrt((r+h)*(r+h)-r*r)
}

// Table 1 of the paper: shell configurations for Starlink's first phase,
// Kuiper, and Telesat, with Hypatia's alternating half-slot phasing.
var (
	StarlinkS1 = Shell{Name: "S1", AltitudeKm: 550, Orbits: 72, SatsPerOrbit: 22, IncDeg: 53}
	StarlinkS2 = Shell{Name: "S2", AltitudeKm: 1110, Orbits: 32, SatsPerOrbit: 50, IncDeg: 53.8}
	StarlinkS3 = Shell{Name: "S3", AltitudeKm: 1130, Orbits: 8, SatsPerOrbit: 50, IncDeg: 74}
	StarlinkS4 = Shell{Name: "S4", AltitudeKm: 1275, Orbits: 5, SatsPerOrbit: 75, IncDeg: 81}
	StarlinkS5 = Shell{Name: "S5", AltitudeKm: 1325, Orbits: 6, SatsPerOrbit: 75, IncDeg: 70}

	KuiperK1 = Shell{Name: "K1", AltitudeKm: 630, Orbits: 34, SatsPerOrbit: 34, IncDeg: 51.9}
	KuiperK2 = Shell{Name: "K2", AltitudeKm: 610, Orbits: 36, SatsPerOrbit: 36, IncDeg: 42}
	KuiperK3 = Shell{Name: "K3", AltitudeKm: 590, Orbits: 28, SatsPerOrbit: 28, IncDeg: 33}

	TelesatT1 = Shell{Name: "T1", AltitudeKm: 1015, Orbits: 27, SatsPerOrbit: 13, IncDeg: 98.98}
	TelesatT2 = Shell{Name: "T2", AltitudeKm: 1325, Orbits: 40, SatsPerOrbit: 33, IncDeg: 50.88}
)

// Minimum angles of elevation used in the paper's experiments, degrees.
const (
	StarlinkMinElevDeg = 25
	KuiperMinElevDeg   = 30
	TelesatMinElevDeg  = 10
)

// GEOAltitudeKm is the geostationary altitude above the equator, km.
const GEOAltitudeKm = 35786

// GEORing returns a shell of n equally spaced geostationary satellites in
// the equatorial plane. Satellites at this altitude complete one orbit per
// sidereal day and therefore hover over fixed longitudes — the regime of
// legacy broadband constellations like HughesNet and Viasat, whose
// hundreds-of-milliseconds latency the paper contrasts with LEO (§2.4, and
// GEO-LEO support is called out in §7). Use it in a Config of its own or
// alongside LEO shells; the +Grid interconnect gives the ring intra-orbit
// ISLs.
func GEORing(name string, n int) Shell {
	return Shell{Name: name, AltitudeKm: GEOAltitudeKm, Orbits: 1, SatsPerOrbit: n, IncDeg: 0}
}

// Satellite is one generated satellite with its propagator.
type Satellite struct {
	Index      int // index within the constellation, 0-based
	Name       string
	ShellIndex int // which shell the satellite belongs to
	Orbit      int // orbital plane index within the shell
	InOrbit    int // slot index within the plane
	Propagator orbit.Propagator
	Elements   orbit.Elements
}

// ISL is an undirected laser inter-satellite link between two satellites,
// identified by constellation index. Satellite indices double as node ids
// in the routing topology (satellites occupy 0..S-1).
type ISL struct {
	A, B int //hypatia:handle(node)
}

// ISLMode selects the inter-satellite interconnect.
type ISLMode int

const (
	// ISLPlusGrid is the "+Grid" mesh: 4 ISLs per satellite — two
	// intra-orbit neighbors, two inter-orbit neighbors (with wraparound in
	// both directions). The paper's default.
	ISLPlusGrid ISLMode = iota
	// ISLNone generates no ISLs; connectivity is bent-pipe via ground
	// station relays (Appendix A).
	ISLNone
)

// Config describes a constellation to generate.
type Config struct {
	Name       string
	Shells     []Shell
	MinElevDeg float64 // minimum angle of elevation for GS connectivity
	ISLMode    ISLMode
	J2         bool // enable secular J2 drift in the propagators
	// EpochGMST is the sidereal angle at t=0 (radians); rotates the whole
	// constellation relative to the Earth-fixed frame.
	EpochGMST float64
}

// Constellation is a generated satellite fleet plus its ISL topology.
type Constellation struct {
	Name       string
	Shells     []Shell
	MinElev    float64 // radians
	Satellites []Satellite
	ISLs       []ISL
	epochGMST  float64

	shellFirst []int // index of the first satellite of each shell
}

// Starlink returns the paper's Starlink phase-one configuration with the
// given shells (use StarlinkS1 alone for the paper's main experiments).
func Starlink(shells ...Shell) Config {
	if len(shells) == 0 {
		shells = []Shell{StarlinkS1}
	}
	return Config{Name: "Starlink", Shells: shells, MinElevDeg: StarlinkMinElevDeg}
}

// Kuiper returns the paper's Kuiper configuration (K1 by default).
func Kuiper(shells ...Shell) Config {
	if len(shells) == 0 {
		shells = []Shell{KuiperK1}
	}
	return Config{Name: "Kuiper", Shells: shells, MinElevDeg: KuiperMinElevDeg}
}

// Telesat returns the paper's Telesat configuration (T1 by default).
func Telesat(shells ...Shell) Config {
	if len(shells) == 0 {
		shells = []Shell{TelesatT1}
	}
	return Config{Name: "Telesat", Shells: shells, MinElevDeg: TelesatMinElevDeg}
}

// Generate builds the satellite fleet and ISL topology for a configuration.
func Generate(cfg Config) (*Constellation, error) {
	if len(cfg.Shells) == 0 {
		return nil, fmt.Errorf("constellation: %q has no shells", cfg.Name)
	}
	if cfg.MinElevDeg < 0 || cfg.MinElevDeg >= 90 {
		return nil, fmt.Errorf("constellation: min elevation %v out of range [0, 90)", cfg.MinElevDeg)
	}
	c := &Constellation{
		Name:      cfg.Name,
		Shells:    cfg.Shells,
		MinElev:   geom.Rad(cfg.MinElevDeg),
		epochGMST: cfg.EpochGMST,
	}
	for si, sh := range cfg.Shells {
		if err := sh.Validate(); err != nil {
			return nil, err
		}
		c.shellFirst = append(c.shellFirst, len(c.Satellites))
		raanStep := 2 * math.Pi / float64(sh.Orbits)
		maStep := 2 * math.Pi / float64(sh.SatsPerOrbit)
		for o := 0; o < sh.Orbits; o++ {
			raan := float64(o) * raanStep
			var phase float64
			switch sh.Phasing {
			case PhaseAlternating:
				phase = float64(o%2) * 0.5 * maStep
			case PhaseWalker:
				phase = float64(o) * float64(sh.WalkerF) / float64(sh.Orbits) * maStep
			}
			for s := 0; s < sh.SatsPerOrbit; s++ {
				ma := math.Mod(float64(s)*maStep+phase, 2*math.Pi)
				el := orbit.Circular(sh.AltitudeKm*1000, geom.Rad(sh.IncDeg), raan, ma)
				prop, err := orbit.NewKeplerPropagator(el, cfg.J2)
				if err != nil {
					return nil, fmt.Errorf("constellation: shell %q orbit %d sat %d: %w", sh.Name, o, s, err)
				}
				c.Satellites = append(c.Satellites, Satellite{
					Index:      len(c.Satellites),
					Name:       fmt.Sprintf("%s-%s-%d-%d", cfg.Name, sh.Name, o, s),
					ShellIndex: si,
					Orbit:      o,
					InOrbit:    s,
					Propagator: prop,
					Elements:   el,
				})
			}
		}
	}
	if cfg.ISLMode == ISLPlusGrid {
		c.ISLs = plusGrid(cfg.Shells, c.shellFirst)
	}
	return c, nil
}

// plusGrid builds the +Grid interconnect independently within each shell:
// satellite (o, s) links to (o, s+1) and ((o+1) mod O, s).
func plusGrid(shells []Shell, first []int) []ISL {
	var isls []ISL
	for si, sh := range shells {
		base := first[si]
		idx := func(o, s int) int {
			return base + o*sh.SatsPerOrbit + s
		}
		for o := 0; o < sh.Orbits; o++ {
			for s := 0; s < sh.SatsPerOrbit; s++ {
				// Intra-orbit successor (wraps within the plane). A plane of
				// one satellite has no intra-orbit link.
				if sh.SatsPerOrbit > 1 {
					next := (s + 1) % sh.SatsPerOrbit
					if !(sh.SatsPerOrbit == 2 && s == 1) { // avoid duplicating a 2-sat plane's single link
						isls = append(isls, ISL{A: idx(o, s), B: idx(o, next)})
					}
				}
				// Inter-orbit neighbor (wraps across the seam). A shell of
				// one plane has no inter-orbit links.
				if sh.Orbits > 1 {
					nextO := (o + 1) % sh.Orbits
					if !(sh.Orbits == 2 && o == 1) {
						isls = append(isls, ISL{A: idx(o, s), B: idx(nextO, s)})
					}
				}
			}
		}
	}
	return isls
}

// NumSatellites returns the total satellite count.
//
//hypatia:pure
func (c *Constellation) NumSatellites() int { return len(c.Satellites) }

// GMSTAt returns the sidereal angle at simulation time t (seconds).
//
//hypatia:pure
func (c *Constellation) GMSTAt(t float64) float64 { return geom.GMST(c.epochGMST, t) }

// PositionECI returns the inertial position of satellite i at time t.
func (c *Constellation) PositionECI(i int, t float64) geom.Vec3 {
	return c.Satellites[i].Propagator.PositionECI(t)
}

// PositionECEF returns the Earth-fixed position of satellite i at time t.
func (c *Constellation) PositionECEF(i int, t float64) geom.Vec3 {
	return geom.ECIToECEF(c.PositionECI(i, t), c.GMSTAt(t))
}

// PositionsECEF computes the Earth-fixed positions of all satellites at time
// t. The result is freshly allocated unless dst has sufficient capacity.
//
//hypatia:pure
func (c *Constellation) PositionsECEF(t float64, dst []geom.Vec3) []geom.Vec3 {
	theta := c.GMSTAt(t)
	if cap(dst) < len(c.Satellites) {
		dst = make([]geom.Vec3, len(c.Satellites))
	}
	dst = dst[:len(c.Satellites)]
	for i := range c.Satellites {
		dst[i] = geom.ECIToECEF(c.Satellites[i].Propagator.PositionECI(t), theta)
	}
	return dst
}

// MaxGSLRange returns the ground-satellite connectivity radius for a
// satellite at altitude h under minimum elevation minEl, using the same
// criterion as the original Hypatia: the satellite's coverage cone has
// ground radius h/tan(minEl), so a ground station connects when the
// straight-line distance is at most sqrt((h/tan(minEl))^2 + h^2) =
// h/sin(minEl). This flat-Earth cone is slightly more permissive than the
// exact spherical-geometry elevation check — a fidelity-relevant choice:
// it is what makes marginal high-latitude coverage (e.g. Saint Petersburg
// on Kuiper's 51.9-degree shell) mostly-connected-with-outages, as the
// paper reports, rather than never connected.
//
//hypatia:pure
func MaxGSLRange(h, minEl float64) float64 {
	if minEl <= 0 {
		// Degenerate to the horizon-limited slant range.
		return geom.MaxSlantRange(h, 0)
	}
	return h / math.Sin(minEl)
}

// VisibleFrom returns the indices of satellites connectable from the
// geodetic position obs at time t: within MaxGSLRange for their current
// altitude and above the observer's horizon. positions must be the ECEF
// satellite positions at t (from PositionsECEF); pass nil to have them
// computed.
func (c *Constellation) VisibleFrom(obs geom.LLA, t float64, positions []geom.Vec3) []int {
	return c.VisibleFromInto(obs, t, positions, nil)
}

// VisibleFromInto is VisibleFrom with caller-provided result storage: the
// indices are appended to out[:0], so a buffer threaded across calls makes
// repeated visibility scans allocation-free in steady state.
//
//hypatia:pure
//hypatia:handle(out: ->node, return: ->node)
func (c *Constellation) VisibleFromInto(obs geom.LLA, t float64, positions []geom.Vec3, out []int) []int {
	if positions == nil {
		positions = c.PositionsECEF(t, nil)
	}
	obsECEF := obs.ToECEF()
	out = out[:0]
	for i, p := range positions {
		h := p.Norm() - geom.EarthRadius // instantaneous altitude
		if p.Distance(obsECEF) > MaxGSLRange(h, c.MinElev) {
			continue
		}
		if geom.Elevation(obs, p) < 0 {
			continue // below the horizon: the cone criterion alone can
			// admit such satellites at very low minimum elevations
		}
		out = append(out, i)
	}
	return out
}

// ISLDegree returns the number of ISLs attached to each satellite.
func (c *Constellation) ISLDegree() []int {
	deg := make([]int, len(c.Satellites))
	for _, l := range c.ISLs {
		deg[l.A]++
		deg[l.B]++
	}
	return deg
}
