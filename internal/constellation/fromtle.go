package constellation

import (
	"fmt"

	"hypatia/internal/geom"
	"hypatia/internal/orbit"
	"hypatia/internal/tle"
)

// FromTLEConfig configures constellation construction from a TLE catalog.
type FromTLEConfig struct {
	Name       string
	MinElevDeg float64
	// ISLMode selects the interconnect. +Grid requires the catalog to be
	// ordered plane-major (all satellites of plane 0, then plane 1, ...)
	// with uniform plane sizes, which PlaneSize declares; ISLNone accepts
	// any catalog (bent-pipe connectivity only).
	ISLMode ISLMode
	// PlaneSize is the number of satellites per plane for ISLPlusGrid;
	// ignored for ISLNone.
	PlaneSize int
	// J2 enables secular J2 drift (recommended for real catalogs).
	J2 bool
	// EpochGMST is the sidereal angle at simulation t=0.
	EpochGMST float64
}

// FromTLEs builds a constellation from parsed two-line element sets — e.g.
// a NORAD catalog of satellites that actually exist, the input the ns-3
// mobility model Hypatia adapts consumes. Propagation uses this
// repository's Kepler+J2 model: exact two-body motion plus secular J2
// drift, which tracks real LEO objects to within a few kilometers over the
// sub-hour horizons the paper simulates (it omits SGP4's short-periodic
// and drag terms; see DESIGN.md).
//
// All TLEs are referenced to a common simulation epoch: each satellite's
// elements are taken as-is at t=0, so catalogs should share one epoch (as
// generated catalogs do; for downloaded catalogs the few-minute epoch
// spread translates into along-track offsets of the same size).
func FromTLEs(tles []tle.TLE, cfg FromTLEConfig) (*Constellation, error) {
	if len(tles) == 0 {
		return nil, fmt.Errorf("constellation: empty TLE catalog")
	}
	if cfg.MinElevDeg < 0 || cfg.MinElevDeg >= 90 {
		return nil, fmt.Errorf("constellation: min elevation %v out of range [0, 90)", cfg.MinElevDeg)
	}
	name := cfg.Name
	if name == "" {
		name = "TLE catalog"
	}

	planes := 1
	planeSize := len(tles)
	if cfg.ISLMode == ISLPlusGrid {
		if cfg.PlaneSize <= 0 || len(tles)%cfg.PlaneSize != 0 {
			return nil, fmt.Errorf("constellation: +Grid needs a plane size dividing %d satellites, got %d",
				len(tles), cfg.PlaneSize)
		}
		planeSize = cfg.PlaneSize
		planes = len(tles) / planeSize
	}

	// Synthesize a shell description for bookkeeping (altitude from the
	// first entry; Validate is skipped because real catalogs mix values).
	first := tles[0].Elements()
	shell := Shell{
		Name:         "TLE",
		AltitudeKm:   first.Altitude() / 1000,
		Orbits:       planes,
		SatsPerOrbit: planeSize,
		IncDeg:       tles[0].InclinationDeg,
	}

	c := &Constellation{
		Name:       name,
		Shells:     []Shell{shell},
		MinElev:    geom.Rad(cfg.MinElevDeg),
		epochGMST:  cfg.EpochGMST,
		shellFirst: []int{0},
	}
	for i, t := range tles {
		el := t.Elements()
		prop, err := orbit.NewKeplerPropagator(el, cfg.J2)
		if err != nil {
			return nil, fmt.Errorf("constellation: TLE %d (%s): %w", i, t.Name, err)
		}
		satName := t.Name
		if satName == "" {
			satName = fmt.Sprintf("%s-%05d", name, t.SatelliteNum)
		}
		c.Satellites = append(c.Satellites, Satellite{
			Index:      i,
			Name:       satName,
			ShellIndex: 0,
			Orbit:      i / planeSize,
			InOrbit:    i % planeSize,
			Propagator: prop,
			Elements:   el,
		})
	}
	if cfg.ISLMode == ISLPlusGrid {
		c.ISLs = plusGrid(c.Shells, c.shellFirst)
	}
	return c, nil
}
