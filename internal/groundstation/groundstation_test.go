package groundstation

import (
	"math"
	"testing"

	"hypatia/internal/geom"
)

func TestTop100HasExactly100(t *testing.T) {
	gss := Top100Cities()
	if len(gss) != 100 {
		t.Fatalf("got %d cities", len(gss))
	}
	for i, g := range gss {
		if g.ID != i {
			t.Errorf("%s: ID = %d, want %d", g.Name, g.ID, i)
		}
		if g.Population <= 0 {
			t.Errorf("%s: population %d", g.Name, g.Population)
		}
	}
}

func TestTop100CoordinatesInRange(t *testing.T) {
	for _, g := range Top100Cities() {
		lat, lon := geom.Deg(g.Position.Lat), geom.Deg(g.Position.Lon)
		if lat < -90 || lat > 90 {
			t.Errorf("%s: lat %v", g.Name, lat)
		}
		if lon < -180 || lon > 180 {
			t.Errorf("%s: lon %v", g.Name, lon)
		}
		if g.Position.Alt != 0 {
			t.Errorf("%s: alt %v", g.Name, g.Position.Alt)
		}
	}
}

func TestTop100NoDuplicateNames(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range Top100Cities() {
		if seen[g.Name] {
			t.Errorf("duplicate city %q", g.Name)
		}
		seen[g.Name] = true
	}
}

func TestPaperCitiesPresent(t *testing.T) {
	// Every city the paper's experiments name must be in the dataset.
	gss := Top100Cities()
	for _, name := range []string{
		"Rio de Janeiro", "Saint Petersburg", "Manila", "Dalian",
		"Istanbul", "Nairobi", "Paris", "Luanda", "Chicago",
		"Zhengzhou", "Moscow",
	} {
		if _, err := ByName(gss, name); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestByNameMiss(t *testing.T) {
	if _, err := ByName(Top100Cities(), "Atlantis"); err == nil {
		t.Error("missing city did not error")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic")
		}
	}()
	MustByName(Top100Cities(), "Atlantis")
}

func TestKnownCityCoordinates(t *testing.T) {
	gss := Top100Cities()
	cases := []struct {
		name     string
		lat, lon float64
	}{
		{"Rio de Janeiro", -22.9, -43.2},
		{"Saint Petersburg", 59.9, 30.4},
		{"Nairobi", -1.3, 36.8},
		{"Paris", 48.9, 2.4},
	}
	for _, c := range cases {
		g := MustByName(gss, c.name)
		if math.Abs(geom.Deg(g.Position.Lat)-c.lat) > 0.5 {
			t.Errorf("%s lat = %v", c.name, geom.Deg(g.Position.Lat))
		}
		if math.Abs(geom.Deg(g.Position.Lon)-c.lon) > 0.5 {
			t.Errorf("%s lon = %v", c.name, geom.Deg(g.Position.Lon))
		}
	}
}

func TestPairsWithin(t *testing.T) {
	gss := Top100Cities()
	close := PairsWithin(gss, 500e3)
	// There are known sub-500km pairs (e.g. Guangzhou/Shenzhen/Hong Kong/
	// Dongguan/Foshan cluster, Tokyo/Nagoya), so the list must be non-empty
	// and each listed pair must really be within range.
	if len(close) == 0 {
		t.Fatal("expected some pairs within 500 km")
	}
	for _, p := range close {
		d := geom.Haversine(gss[p[0]].Position, gss[p[1]].Position)
		if d >= 500e3 {
			t.Errorf("pair %v at %v km listed as close", p, d/1000)
		}
		if p[0] >= p[1] {
			t.Errorf("pair %v not ordered", p)
		}
	}
	// Sanity: the vast majority of pairs are farther apart.
	if len(close) > 200 {
		t.Errorf("%d close pairs seems too many", len(close))
	}
}

func TestECEFOnSurface(t *testing.T) {
	for _, g := range Top100Cities()[:10] {
		r := g.ECEF().Norm()
		if r < geom.EarthRadius*(1-geom.EarthFlattening)-1 || r > geom.EarthRadius+1 {
			t.Errorf("%s: ECEF radius %v", g.Name, r)
		}
	}
}

func TestRelayGrid(t *testing.T) {
	paris := geom.LLADeg(48.8566, 2.3522, 0)
	moscow := geom.LLADeg(55.7558, 37.6173, 0)
	grid, err := RelayGrid(paris, moscow, 4, 6, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 24 {
		t.Fatalf("grid size = %d", len(grid))
	}
	for i, g := range grid {
		if g.ID != 1000+i {
			t.Errorf("relay %d: ID = %d", i, g.ID)
		}
		lat, lon := geom.Deg(g.Position.Lat), geom.Deg(g.Position.Lon)
		if lat < 46.8 || lat > 57.8 {
			t.Errorf("relay %s: lat %v outside expanded box", g.Name, lat)
		}
		if lon < 0.3 || lon > 39.7 {
			t.Errorf("relay %s: lon %v outside expanded box", g.Name, lon)
		}
	}
	// Corners include the expanded endpoints.
	if geom.Deg(grid[0].Position.Lat) > geom.Deg(grid[len(grid)-1].Position.Lat) {
		t.Error("rows should go south to north")
	}
}

func TestRelayGridRejectsTiny(t *testing.T) {
	a := geom.LLADeg(0, 0, 0)
	if _, err := RelayGrid(a, a, 1, 5, 1, 0); err == nil {
		t.Error("1-row grid accepted")
	}
	if _, err := RelayGrid(a, a, 5, 1, 1, 0); err == nil {
		t.Error("1-col grid accepted")
	}
}

func TestSortByID(t *testing.T) {
	gss := []GS{{ID: 3}, {ID: 1}, {ID: 2}}
	SortByID(gss)
	for i, g := range gss {
		if g.ID != i+1 {
			t.Fatalf("order wrong: %+v", gss)
		}
	}
}
