// Package groundstation provides the terrestrial endpoints of the simulated
// networks: a built-in dataset of the world's 100 most populous cities (the
// ground-station set used throughout the paper's experiments), lookup
// helpers, and generators for ground-station relay grids (the bent-pipe
// scenario of the paper's Appendix A).
//
// Hypatia's experiments model static ground stations with parabolic
// antennas rather than mobile user terminals; a ground station is therefore
// just a named geodetic location.
package groundstation

import (
	"fmt"
	"math"
	"sort"

	"hypatia/internal/geom"
)

// GS is a ground station: a fixed terrestrial endpoint with radio
// connectivity to visible satellites.
type GS struct {
	ID       int
	Name     string
	Position geom.LLA
	// Population of the metro area the station serves (0 for synthetic
	// relay stations); used only for dataset ordering and documentation.
	Population int
}

// ECEF returns the station's Earth-fixed Cartesian position.
func (g GS) ECEF() geom.Vec3 { return g.Position.ToECEF() }

// city is a dataset row.
type city struct {
	name       string
	latDeg     float64
	lonDeg     float64
	population int // approximate metro population
}

// top100 lists the world's 100 most populous metropolitan areas with
// approximate coordinates, ordered by population. The exact ranking varies
// by source and year; what matters for the experiments is the global
// geographic spread, which is the paper's reason for choosing this set.
var top100 = []city{
	{"Tokyo", 35.6895, 139.6917, 37400000},
	{"Delhi", 28.6139, 77.2090, 31000000},
	{"Shanghai", 31.2304, 121.4737, 27800000},
	{"Sao Paulo", -23.5505, -46.6333, 22400000},
	{"Mexico City", 19.4326, -99.1332, 21900000},
	{"Cairo", 30.0444, 31.2357, 21300000},
	{"Mumbai", 19.0760, 72.8777, 20700000},
	{"Beijing", 39.9042, 116.4074, 20500000},
	{"Dhaka", 23.8103, 90.4125, 21700000},
	{"Osaka", 34.6937, 135.5023, 19100000},
	{"New York", 40.7128, -74.0060, 18800000},
	{"Karachi", 24.8607, 67.0011, 16500000},
	{"Buenos Aires", -34.6037, -58.3816, 15300000},
	{"Chongqing", 29.5630, 106.5516, 16400000},
	{"Istanbul", 41.0082, 28.9784, 15600000},
	{"Kolkata", 22.5726, 88.3639, 14900000},
	{"Manila", 14.5995, 120.9842, 14200000},
	{"Lagos", 6.5244, 3.3792, 14900000},
	{"Rio de Janeiro", -22.9068, -43.1729, 13600000},
	{"Tianjin", 39.3434, 117.3616, 13900000},
	{"Kinshasa", -4.4419, 15.2663, 14300000},
	{"Guangzhou", 23.1291, 113.2644, 13600000},
	{"Los Angeles", 34.0522, -118.2437, 12400000},
	{"Moscow", 55.7558, 37.6173, 12600000},
	{"Shenzhen", 22.5431, 114.0579, 12600000},
	{"Lahore", 31.5497, 74.3436, 13100000},
	{"Bangalore", 12.9716, 77.5946, 12700000},
	{"Paris", 48.8566, 2.3522, 11100000},
	{"Bogota", 4.7110, -74.0721, 11000000},
	{"Jakarta", -6.2088, 106.8456, 10900000},
	{"Chennai", 13.0827, 80.2707, 11200000},
	{"Lima", -12.0464, -77.0428, 10800000},
	{"Bangkok", 13.7563, 100.5018, 10700000},
	{"Seoul", 37.5665, 126.9780, 9900000},
	{"Nagoya", 35.1815, 136.9066, 9500000},
	{"Hyderabad", 17.3850, 78.4867, 10200000},
	{"London", 51.5074, -0.1278, 9500000},
	{"Tehran", 35.6892, 51.3890, 9400000},
	{"Chicago", 41.8781, -87.6298, 8900000},
	{"Chengdu", 30.5728, 104.0668, 9300000},
	{"Nanjing", 32.0603, 118.7969, 9000000},
	{"Wuhan", 30.5928, 114.3055, 8900000},
	{"Ho Chi Minh City", 10.8231, 106.6297, 8900000},
	{"Luanda", -8.8390, 13.2894, 8600000},
	{"Ahmedabad", 23.0225, 72.5714, 8400000},
	{"Kuala Lumpur", 3.1390, 101.6869, 8200000},
	{"Xian", 34.3416, 108.9398, 8200000},
	{"Hong Kong", 22.3193, 114.1694, 7500000},
	{"Dongguan", 23.0207, 113.7518, 7600000},
	{"Hangzhou", 30.2741, 120.1551, 7800000},
	{"Foshan", 23.0215, 113.1214, 7400000},
	{"Shenyang", 41.8057, 123.4315, 7500000},
	{"Riyadh", 24.7136, 46.6753, 7300000},
	{"Baghdad", 33.3152, 44.3661, 7100000},
	{"Santiago", -33.4489, -70.6693, 6800000},
	{"Surat", 21.1702, 72.8311, 6900000},
	{"Madrid", 40.4168, -3.7038, 6700000},
	{"Suzhou", 31.2989, 120.5853, 6700000},
	{"Pune", 18.5204, 73.8567, 6800000},
	{"Harbin", 45.8038, 126.5349, 6400000},
	{"Houston", 29.7604, -95.3698, 6400000},
	{"Dallas", 32.7767, -96.7970, 6400000},
	{"Toronto", 43.6532, -79.3832, 6300000},
	{"Dar es Salaam", -6.7924, 39.2083, 6400000},
	{"Miami", 25.7617, -80.1918, 6200000},
	{"Belo Horizonte", -19.9167, -43.9345, 6100000},
	{"Singapore", 1.3521, 103.8198, 5900000},
	{"Philadelphia", 39.9526, -75.1652, 5700000},
	{"Atlanta", 33.7490, -84.3880, 5900000},
	{"Fukuoka", 33.5904, 130.4017, 5500000},
	{"Khartoum", 15.5007, 32.5599, 5800000},
	{"Barcelona", 41.3851, 2.1734, 5600000},
	{"Johannesburg", -26.2041, 28.0473, 5800000},
	{"Saint Petersburg", 59.9311, 30.3609, 5400000},
	{"Qingdao", 36.0671, 120.3826, 5600000},
	{"Dalian", 38.9140, 121.6147, 5300000},
	{"Washington", 38.9072, -77.0369, 5300000},
	{"Yangon", 16.8661, 96.1951, 5300000},
	{"Alexandria", 31.2001, 29.9187, 5300000},
	{"Jinan", 36.6512, 117.1201, 5200000},
	{"Guadalajara", 20.6597, -103.3496, 5200000},
	{"Ankara", 39.9334, 32.8597, 5100000},
	{"Zhengzhou", 34.7466, 113.6254, 5100000},
	{"Nairobi", -1.2921, 36.8219, 5000000},
	{"Chittagong", 22.3569, 91.7832, 5000000},
	{"Sydney", -33.8688, 151.2093, 4900000},
	{"Melbourne", -37.8136, 144.9631, 4900000},
	{"Monterrey", 25.6866, -100.3161, 4900000},
	{"Brasilia", -15.7942, -47.8822, 4800000},
	{"Recife", -8.0476, -34.8770, 4200000},
	{"Fortaleza", -3.7319, -38.5267, 4100000},
	{"Medellin", 6.2442, -75.5812, 4100000},
	{"Porto Alegre", -30.0346, -51.2177, 4300000},
	{"Casablanca", 33.5731, -7.5898, 3800000},
	{"Abidjan", 5.3600, -4.0083, 5200000},
	{"Kano", 12.0022, 8.5920, 4100000},
	{"Cape Town", -33.9249, 18.4241, 4700000},
	{"Accra", 5.6037, -0.1870, 4200000},
	{"Addis Ababa", 9.0300, 38.7400, 5000000},
	{"Jeddah", 21.4858, 39.1925, 4800000},
}

// Top100Cities returns ground stations for the world's 100 most populous
// cities, IDs assigned in population order starting at 0. This is the
// ground-station set of the paper's experiments.
func Top100Cities() []GS {
	out := make([]GS, len(top100))
	for i, c := range top100 {
		out[i] = GS{
			ID:         i,
			Name:       c.name,
			Position:   geom.LLADeg(c.latDeg, c.lonDeg, 0),
			Population: c.population,
		}
	}
	return out
}

// ByName returns the ground station with the given name from gss.
func ByName(gss []GS, name string) (GS, error) {
	for _, g := range gss {
		if g.Name == name {
			return g, nil
		}
	}
	return GS{}, fmt.Errorf("groundstation: no station named %q", name)
}

// MustByName is ByName for known-good names; it panics on a miss. Intended
// for experiment drivers referencing the built-in dataset.
func MustByName(gss []GS, name string) GS {
	g, err := ByName(gss, name)
	if err != nil {
		panic(err)
	}
	return g
}

// PairsWithin reports station index pairs (i < j) whose great-circle
// distance is below the given threshold in meters. The paper excludes pairs
// within 500 km from constellation-wide statistics.
func PairsWithin(gss []GS, d float64) [][2]int {
	var out [][2]int
	for i := 0; i < len(gss); i++ {
		for j := i + 1; j < len(gss); j++ {
			if geom.Haversine(gss[i].Position, gss[j].Position) < d {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// RelayGrid generates a rectangular grid of candidate ground-station relays
// covering the bounding box of endpoints a and b expanded by marginDeg
// degrees on every side, with the given number of rows (latitude) and
// columns (longitude). It reproduces Appendix A's bent-pipe scenario, where
// long-distance connectivity bounces between satellites and intermediate
// ground relays instead of using ISLs. IDs are assigned from firstID.
func RelayGrid(a, b geom.LLA, rows, cols int, marginDeg float64, firstID int) ([]GS, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("groundstation: relay grid needs at least 2x2, got %dx%d", rows, cols)
	}
	latLo := math.Min(geom.Deg(a.Lat), geom.Deg(b.Lat)) - marginDeg
	latHi := math.Max(geom.Deg(a.Lat), geom.Deg(b.Lat)) + marginDeg
	lonLo := math.Min(geom.Deg(a.Lon), geom.Deg(b.Lon)) - marginDeg
	lonHi := math.Max(geom.Deg(a.Lon), geom.Deg(b.Lon)) + marginDeg
	latLo = math.Max(latLo, -89)
	latHi = math.Min(latHi, 89)

	var out []GS
	for r := 0; r < rows; r++ {
		lat := latLo + (latHi-latLo)*float64(r)/float64(rows-1)
		for c := 0; c < cols; c++ {
			lon := lonLo + (lonHi-lonLo)*float64(c)/float64(cols-1)
			out = append(out, GS{
				ID:       firstID + len(out),
				Name:     fmt.Sprintf("relay-%d-%d", r, c),
				Position: geom.LLADeg(lat, lon, 0),
			})
		}
	}
	return out, nil
}

// SortByID orders stations by ID in place and returns the slice.
func SortByID(gss []GS) []GS {
	sort.Slice(gss, func(i, j int) bool { return gss[i].ID < gss[j].ID })
	return gss
}
