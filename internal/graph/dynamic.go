// Dynamic shortest-path maintenance: diffing two graphs into a changed-edge
// list and repairing an existing single-source shortest-path tree in place
// instead of recomputing it from scratch.
//
// The forwarding-state engine rebuilds its topology graph every update
// instant, but between consecutive instants only link weights drift and a
// handful of edges appear or vanish — the shortest-path trees themselves
// barely move. RepairSSSP exploits that: it re-propagates distances along
// the surviving predecessor tree (no heap), then runs Dijkstra only over
// the region whose tree actually changed. The repaired arrays are bitwise
// identical to a fresh DijkstraScratch run on the new graph — Dijkstra's
// output is a canonical function of the graph (distances are the minimum
// over paths of left-associated float sums; predecessors are the
// (dist, id)-minimal achiever of each distance), and the repair converges
// to the same fixpoint. The differential and property tests in
// dynamic_test.go hold it to exactly that bar.
//
// All functions assume simple graphs (no parallel edges), which the
// topology builders guarantee by construction.

package graph

import (
	"fmt"
	"math"
)

// EdgeChange records one undirected edge (A < B) that differs between an
// old and a new graph over the same node set. A negative weight encodes
// absence: OldW < 0 means the edge was inserted, NewW < 0 means it was
// removed; otherwise the weight changed from OldW to NewW.
type EdgeChange struct {
	A, B       int32 //hypatia:handle(node)
	OldW, NewW float64
}

// DiffScratch holds the per-node weight slots DiffInto reuses across calls.
// The zero value is ready for use; a DiffScratch must not be shared between
// concurrent DiffInto calls.
//
//hypatia:confined
type DiffScratch struct {
	w     []float64 //hypatia:handle(node)
	stamp []int64   //hypatia:handle(node)
	gen   int64
}

// DiffInto appends to out[:0] every edge that differs between old and new
// (same node count required) and returns the slice. Weights are compared
// bitwise: the topology builders recompute identical geometry identically,
// so an unchanged link produces an unchanged float.
//
//hypatia:noalloc
//hypatia:pure
func DiffInto(oldG, newG *Graph, out []EdgeChange, sc *DiffScratch) []EdgeChange {
	if oldG.n != newG.n {
		panic(fmt.Sprintf("graph: diff over different node counts %d vs %d", oldG.n, newG.n))
	}
	n := oldG.n
	if cap(sc.stamp) < n {
		sc.stamp = make([]int64, n)
		sc.w = make([]float64, n)
	}
	sc.stamp = sc.stamp[:n]
	sc.w = sc.w[:n]
	out = out[:0]
	for v := 0; v < n; v++ { //hypatia:handle(node) diff walks nodes in id order
		sc.gen++
		g := sc.gen
		oldAdj := oldG.adj[v]
		for _, e := range oldAdj {
			if int(e.To) > v {
				sc.w[e.To] = e.W
				sc.stamp[e.To] = g
			}
		}
		for _, e := range newG.adj[v] {
			if int(e.To) <= v {
				continue
			}
			if sc.stamp[e.To] == g {
				//lint:ignore timeunits bitwise weight identity is the diff criterion
				if sc.w[e.To] != e.W {
					out = append(out, EdgeChange{A: int32(v), B: e.To, OldW: sc.w[e.To], NewW: e.W})
				}
				sc.stamp[e.To] = ^g // matched; ^g never collides with a future gen
			} else {
				out = append(out, EdgeChange{A: int32(v), B: e.To, OldW: -1, NewW: e.W})
			}
		}
		for _, e := range oldAdj {
			if int(e.To) > v && sc.stamp[e.To] == g {
				out = append(out, EdgeChange{A: int32(v), B: e.To, OldW: e.W, NewW: -1})
				sc.stamp[e.To] = ^g
			}
		}
	}
	return out
}

// RepairScratch holds the reusable workspaces of RepairSSSP: the Dijkstra
// heap for the affected region, the predecessor-tree child index, the
// traversal stack, the touched-node epochs, and an order buffer for the
// dense path. The zero value is ready for use; a RepairScratch must not be
// shared between concurrent repairs.
//
//hypatia:confined
type RepairScratch struct {
	h         indexedHeap
	childOff  []int32 //hypatia:handle(node)
	childBuf  []int32 //hypatia:handle(->node)
	stack     []int32 //hypatia:handle(->node)
	roots     []int32 //hypatia:handle(->node)
	touchList []int32 //hypatia:handle(->node)
	tieList   []int32 //hypatia:handle(->node)
	stampArr  []int64 //hypatia:handle(node)
	stampGen  int64
	orderBuf  []int32 //hypatia:handle(->node)
}

// RepairSSSP patches dist and prev — a valid single-source shortest-path
// solution for src on a previous graph with the same node count — into the
// solution for g, given the edge changes between the two graphs (as from
// DiffInto). Both arrays are updated in place; the repaired result is
// bitwise identical to g.DijkstraScratch(src, ...) run from scratch.
//
// Cost is O(V + E) in the worst case (every weight drifted) but with no
// heap work outside the region whose shortest-path tree changed; for a
// sparse change list it touches only the changed edges, the subtrees they
// detach, and the frontier the repair grows back over.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(src: node, dist: node, prev: node->node)
func (g *Graph) RepairSSSP(src int, dist []float64, prev []int32, changes []EdgeChange, sc *RepairScratch) {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: source %d out of range", src))
	}
	if len(dist) != g.n || len(prev) != g.n {
		panic(fmt.Sprintf("graph: repair arrays sized %d/%d for %d nodes", len(dist), len(prev), g.n))
	}
	if len(changes) == 0 {
		return
	}
	// A change list covering a large fraction of the edge set (the
	// constellation case: every link weight drifts every instant) is
	// cheaper to handle by re-solving in the old solution's settle order
	// than by classifying individual subtrees. The old distances define
	// that order; RepairSSSPDense lets callers who keep the order across
	// repairs skip this sort.
	if 8*len(changes) >= g.n+g.NumEdges() {
		if cap(sc.orderBuf) < g.n {
			sc.orderBuf = make([]int32, g.n)
		}
		sc.orderBuf = sc.orderBuf[:g.n]
		for i := range sc.orderBuf {
			sc.orderBuf[i] = int32(i)
		}
		sortByDist(sc.orderBuf, dist)
		g.RepairSSSPDense(src, dist, prev, sc.orderBuf, sc)
		return
	}
	g.repairSparse(src, dist, prev, changes, sc)
}

// orderCmp is the settle-order comparator: by distance, then node id —
// exactly Dijkstra's pop order.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(dist: node, a: node, b: node)
func orderCmp(dist []float64, a, b int32) int {
	da, db := dist[a], dist[b]
	if da < db {
		return -1
	}
	if da > db {
		return 1
	}
	return int(a) - int(b)
}

// sortByDist sorts order into Dijkstra's settle order for dist (orderCmp):
// an in-place heapsort. The comparator's key (dist, id) is unique per node,
// so any comparison sort yields the same permutation; heapsort keeps the
// lazy order refresh allocation-free and, unlike slices.SortFunc, inside
// the machine-checked purity contract.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(order: ->node, dist: node)
func sortByDist(order []int32, dist []float64) {
	n := len(order)
	for root := n/2 - 1; root >= 0; root-- {
		siftDownOrder(order, dist, root, n)
	}
	for end := n - 1; end > 0; end-- {
		order[0], order[end] = order[end], order[0]
		siftDownOrder(order, dist, 0, end)
	}
}

// siftDownOrder restores the max-heap property under orderCmp for the
// subtree of order[:n] rooted at root.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(order: ->node, dist: node)
func siftDownOrder(order []int32, dist []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && orderCmp(dist, order[r], order[child]) > 0 {
			child = r
		}
		if orderCmp(dist, order[child], order[root]) <= 0 {
			return
		}
		order[root], order[child] = order[child], order[root]
		root = child
	}
}

// buildChildren fills sc.childOff/childBuf with a CSR child index of the
// predecessor tree in prev.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(src: node, prev: node->node)
func (g *Graph) buildChildren(src int, prev []int32, sc *RepairScratch) {
	n := g.n
	if cap(sc.childOff) < n+1 {
		sc.childOff = make([]int32, n+1)
		sc.childBuf = make([]int32, n)
	}
	sc.childOff = sc.childOff[:n+1]
	sc.childBuf = sc.childBuf[:n]
	off := sc.childOff
	for i := range off {
		off[i] = 0
	}
	// Entries that cannot be tree edges (out of range, self-referencing) are
	// skipped rather than rejected: callers may hand in arbitrary stale prev
	// arrays, and whatever this index omits is simply re-solved from scratch.
	for v := 0; v < n; v++ { //hypatia:handle(node) tree-edge count walks nodes in id order
		if v != src && prev[v] >= 0 && int(prev[v]) < n && int(prev[v]) != v {
			off[prev[v]+1]++
		}
	}
	for i := 0; i < n; i++ { //hypatia:handle(node) prefix sum walks nodes in id order
		off[i+1] += off[i]
	}
	// Fill using off[v] as a cursor, then restore by shifting: after the
	// fill, off[v] holds the END of v's range and off[v-1] its start.
	for v := 0; v < n; v++ { //hypatia:handle(node) fill walks nodes in id order
		if v != src && prev[v] >= 0 && int(prev[v]) < n && int(prev[v]) != v {
			sc.childBuf[off[prev[v]]] = int32(v)
			off[prev[v]]++
		}
	}
	copy(off[1:], off[:n])
	off[0] = 0
}

// children returns node v's child range in the CSR index.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(v: node)
func (sc *RepairScratch) children(v int32) []int32 {
	return sc.childBuf[sc.childOff[v]:sc.childOff[v+1]]
}

// RepairSSSPDense re-solves single-source shortest paths from src for the
// total-drift case: every weight may have changed (the constellation case —
// all inter-satellite distances move every instant) but the settle order
// barely does. It is Dijkstra with the priority queue replaced by order, the
// previous solution's settle order: one sweep relaxes each node's edges at
// its old position, and the heap is engaged only for nodes the drift
// actually reordered (an improvement arriving after a node was swept). dist
// and prev are fully rewritten — their prior contents may be arbitrary;
// all the carried-over state lives in order, which must be a permutation of
// the nodes and is refreshed in place toward the new solution's settle
// order whenever drift has degraded it, ready for the next repair. A bad
// order (identity on first use, stale after a coarse time jump) costs extra
// heap work, never correctness.
//
// The result is bitwise identical to DijkstraScratch regardless of order:
// the relaxation fixpoint — distances as minima over paths of
// left-associated float sums — does not depend on sweep order, every node
// whose distance improves post-sweep is re-settled through the heap, and
// predecessors are re-canonicalized whenever a tie was observed. A stale
// order costs time, never correctness.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(src: node, dist: node, prev: node->node, order: ->node)
func (g *Graph) RepairSSSPDense(src int, dist []float64, prev []int32, order []int32, sc *RepairScratch) {
	n := g.n
	if src < 0 || src >= n {
		panic(fmt.Sprintf("graph: source %d out of range", src))
	}
	if len(dist) != n || len(prev) != n || len(order) != n {
		panic(fmt.Sprintf("graph: repair arrays sized %d/%d/%d for %d nodes", len(dist), len(prev), len(order), n))
	}
	if cap(sc.stampArr) < n {
		sc.stampArr = make([]int64, n)
	}
	sc.stampArr = sc.stampArr[:n]
	off, csrTo, csrW := g.csr()
	stamp := sc.stampArr

	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	dist[src] = 0
	prev[src] = int32(src)

	sc.stampGen++
	tg := sc.stampGen
	h := &sc.h
	h.reset(n)
	sc.tieList = sc.tieList[:0]
	swept := 0
	for _, v := range order {
		if stamp[v] != tg {
			stamp[v] = tg
			swept++
		}
		dv := dist[v]
		//lint:ignore timeunits sentinel compare, cheaper than math.IsInf
		if dv == Infinity {
			// Still unreached at its slot (order stale, or genuinely
			// unreachable). Marked swept above: if a later relaxation does
			// reach it, that improvement routes it through the heap.
			continue
		}
		for k, end := off[v], off[v+1]; k < end; k++ {
			to := csrTo[k]
			nd := dv + csrW[k]
			if nd < dist[to] {
				dist[to] = nd
				prev[to] = v
				if stamp[to] == tg {
					h.push(to, nd)
				}
				//lint:ignore timeunits exact equality detects shortest-path ties
			} else if nd == dist[to] && prev[to] != v && int(to) != src {
				sc.tieList = append(sc.tieList, to)
			}
		}
	}
	if swept != n {
		panic(fmt.Sprintf("graph: order covers %d of %d nodes; must be a permutation", swept, n))
	}
	// Settle the reordered region exactly as Dijkstra would, then
	// re-canonicalize the predecessors of every node that saw a tied offer
	// (unique-achiever nodes are already canonical). Every achiever of a
	// node's final distance relaxes its edges at final values at least once
	// — in its sweep slot if it was final by then, from its last heap pop
	// otherwise — so a genuine tie always lands an exact-equality offer and
	// gets listed; false positives (equality against a not-yet-final
	// distance) just trigger an idempotent recanonicalization.
	pops := g.settle(dist, prev, src, sc, nil)
	for _, v := range sc.tieList {
		g.canonicalPrev(src, v, dist, prev)
	}
	// Refresh the order only once drift has audibly degraded it. Inversions
	// among near-equidistant nodes are constant but harmless — a violation
	// needs a node swept before its tree parent, and that takes relative
	// drift on the scale of a link weight — so sorting every repair buys
	// nothing. The settle pop count is the direct measure of order quality;
	// when it grows past n/8 (stale order after a coarse time jump, first
	// use from the identity order) one full sort makes the order tight
	// again. Correctness never depends on this.
	if pops*8 > n {
		sortByDist(order, dist)
	}
}

// repairSparse detaches the subtrees under removed or increased tree edges,
// seeds the heap from the changed edges and the detached frontier, and
// settles — touching only the affected region.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(src: node, dist: node, prev: node->node)
func (g *Graph) repairSparse(src int, dist []float64, prev []int32, changes []EdgeChange, sc *RepairScratch) {
	n := g.n
	if cap(sc.stampArr) < n {
		sc.stampArr = make([]int64, n)
	}
	sc.stampArr = sc.stampArr[:n]
	sc.stampGen++
	tg := sc.stampGen
	sc.touchList = sc.touchList[:0]
	var touch touchFn = func(v int32) { //hypatia:allocs(amortized) settle only invokes touch, so the literal never escapes and is stack-allocated
		if sc.stampArr[v] != tg {
			sc.stampArr[v] = tg
			sc.touchList = append(sc.touchList, v)
		}
	}
	// Detach: a tree edge that vanished or got heavier invalidates its
	// whole downstream subtree — those distances are no longer upper
	// bounds. Every other node keeps its old distance, which remains an
	// upper bound (its tree path avoids all such edges, and weights on it
	// only decreased or held).
	sc.roots = sc.roots[:0]
	for _, ch := range changes {
		if ch.OldW < 0 || (ch.NewW >= 0 && ch.NewW <= ch.OldW) {
			continue
		}
		if prev[ch.B] == ch.A {
			sc.roots = append(sc.roots, ch.B)
		}
		if prev[ch.A] == ch.B {
			sc.roots = append(sc.roots, ch.A)
		}
	}
	if len(sc.roots) > 0 {
		g.buildChildren(src, prev, sc)
		sc.stack = append(sc.stack[:0], sc.roots...)
		for len(sc.stack) > 0 {
			v := sc.stack[len(sc.stack)-1]
			sc.stack = sc.stack[:len(sc.stack)-1]
			if sc.stampArr[v] == tg {
				continue // nested detach root already swept
			}
			touch(v)
			dist[v] = math.Inf(1)
			prev[v] = -1
			sc.stack = append(sc.stack, sc.children(v)...)
		}
	}
	detached := len(sc.touchList)
	h := &sc.h
	h.reset(n)
	sc.tieList = sc.tieList[:0]
	relax := func(u, v int32, w float64) {
		du := dist[u]
		if math.IsInf(du, 1) {
			return
		}
		nd := du + w
		if nd < dist[v] {
			dist[v] = nd
			prev[v] = u
			touch(v)
			h.push(v, nd)
			//lint:ignore timeunits exact equality detects shortest-path ties
		} else if nd == dist[v] && prev[v] != u && int(v) != src {
			sc.tieList = append(sc.tieList, v)
		}
	}
	// Seeds: surviving or inserted changed edges in both directions, plus
	// every edge crossing from the intact region into a detached node.
	for _, ch := range changes {
		if ch.NewW >= 0 {
			relax(ch.A, ch.B, ch.NewW)
			relax(ch.B, ch.A, ch.NewW)
		}
	}
	for _, v := range sc.touchList[:detached] {
		for _, e := range g.adj[v] {
			relax(e.To, v, e.W)
		}
	}
	// Re-canonicalize exactly the nodes that saw a tied offer; every node
	// whose achiever set changed received one. A node's achiever must have
	// had its own distance re-established (it was touched, so all its edges
	// were re-relaxed — from the detached-frontier seeding or its last heap
	// pop) or sit on an explicitly re-relaxed changed edge, so a genuine tie
	// always lands an exact-equality offer at final values; an untouched
	// node whose neighborhood is untouched keeps its old canonical
	// predecessor. False positives (equality against a not-yet-final
	// distance) just trigger an idempotent recanonicalization.
	g.settle(dist, prev, src, sc, touch)
	for _, v := range sc.tieList {
		g.canonicalPrev(src, v, dist, prev)
	}
}

// touchFn observes every node whose distance a repair stage writes. The
// annotations are load-bearing: settle calls its touch argument
// dynamically, and the analyzer admits that call inside //hypatia:pure
// and //hypatia:noalloc bodies only through a function type that carries
// the contract itself — implementations may write through (and grow)
// their captured scratch but nothing global, and must not allocate.
//
//hypatia:noalloc
//hypatia:pure
type touchFn func(int32)

// settle runs the Dijkstra main loop over whatever sc.h was seeded with,
// appending every node that receives a tied offer to sc.tieList and
// returning the number of heap pops (the dense path's measure of how stale
// its sweep order has become). touch, when non-nil, is invoked for every
// node whose distance it writes.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(dist: node, prev: node->node, src: node)
func (g *Graph) settle(dist []float64, prev []int32, src int, sc *RepairScratch, touch touchFn) int {
	h := &sc.h
	pops := 0
	for !h.empty() {
		pops++
		u := h.pop()
		du := dist[u]
		for _, e := range g.adj[u] {
			nd := du + e.W
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				if touch != nil {
					touch(e.To)
				}
				h.push(e.To, nd)
				//lint:ignore timeunits exact equality detects shortest-path ties
			} else if nd == dist[e.To] && prev[e.To] != u && int(e.To) != src {
				sc.tieList = append(sc.tieList, e.To)
			}
		}
	}
	return pops
}

// canonicalPrev recomputes prev[v] as Dijkstra would have chosen it: the
// neighbor u minimizing (dist[u], u) among those whose relaxation achieves
// dist[v] exactly — the first achiever in Dijkstra's deterministic pop
// order.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(src: node, v: node, dist: node, prev: node->node)
func (g *Graph) canonicalPrev(src int, v int32, dist []float64, prev []int32) {
	if int(v) == src {
		prev[v] = int32(src)
		return
	}
	if math.IsInf(dist[v], 1) {
		prev[v] = -1
		return
	}
	best := int32(-1) //hypatia:handle(node) sentinel until the first achiever lands
	for _, e := range g.adj[v] {
		u := e.To
		//lint:ignore timeunits achiever test must match Dijkstra's exact float relaxation
		if dist[u]+e.W != dist[v] {
			continue
		}
		//lint:ignore timeunits exact pop-order tie-break (dist, id)
		if best < 0 || dist[u] < dist[best] || (dist[u] == dist[best] && u < best) {
			best = u
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("graph: repaired distances inconsistent: node %d has dist %v but no achieving neighbor", v, dist[v]))
	}
	prev[v] = best
}

// BellmanFord computes single-source shortest paths by iterated relaxation
// until fixpoint. It is O(V·E) and exists as an algorithmically independent
// cross-check for the Dijkstra and RepairSSSP fast paths: on non-negative
// weights all three converge to the same distance fixpoint (the minimum
// over paths of left-associated float sums), so distances must match
// bitwise. Predecessors are some valid shortest-path tree but not the
// canonical one.
func (g *Graph) BellmanFord(src int) ([]float64, []int32) {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: source %d out of range", src))
	}
	dist := make([]float64, g.n)
	prev := make([]int32, g.n)
	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	dist[src] = 0
	prev[src] = int32(src)
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.n; v++ { //hypatia:handle(node) relaxation sweeps nodes in id order
			dv := dist[v]
			if math.IsInf(dv, 1) {
				continue
			}
			for _, e := range g.adj[v] {
				if nd := dv + e.W; nd < dist[e.To] {
					dist[e.To] = nd
					prev[e.To] = int32(v)
					changed = true
				}
			}
		}
	}
	return dist, prev
}
