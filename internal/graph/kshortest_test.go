package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestKShortestSimple(t *testing.T) {
	//  0 --1-- 1 --1-- 3
	//   \--2-- 2 --2--/
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	paths := g.KShortestPaths(0, 3, 3)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 (only 2 exist)", len(paths))
	}
	if paths[0].Weight != 2 || paths[1].Weight != 4 {
		t.Errorf("weights = %v, %v", paths[0].Weight, paths[1].Weight)
	}
	if !samePath(paths[0].Nodes, []int{0, 1, 3}) {
		t.Errorf("first path = %v", paths[0].Nodes)
	}
	if !samePath(paths[1].Nodes, []int{0, 2, 3}) {
		t.Errorf("second path = %v", paths[1].Nodes)
	}
}

func TestKShortestUnreachableAndEdgeCases(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if got := g.KShortestPaths(0, 2, 3); got != nil {
		t.Errorf("unreachable destination returned %v", got)
	}
	if got := g.KShortestPaths(0, 1, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := g.KShortestPaths(0, 1, 5); len(got) != 1 {
		t.Errorf("single-path graph returned %d paths", len(got))
	}
}

func TestKShortestOrderedAndLoopless(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 15
		g := New(n)
		seen := map[[2]int]bool{}
		for e := 0; e < 40; e++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			g.AddEdge(a, b, 1+r.Float64()*10)
		}
		paths := g.KShortestPaths(0, n-1, 5)
		for i, p := range paths {
			// Non-decreasing weights.
			if i > 0 && p.Weight < paths[i-1].Weight-1e-9 {
				t.Fatalf("weights out of order: %v after %v", p.Weight, paths[i-1].Weight)
			}
			// Loopless.
			visited := map[int]bool{}
			for _, v := range p.Nodes {
				if visited[v] {
					t.Fatalf("loop in path %v", p.Nodes)
				}
				visited[v] = true
			}
			// Valid endpoints and weight.
			if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != n-1 {
				t.Fatalf("bad endpoints: %v", p.Nodes)
			}
			if w := g.pathWeight(p.Nodes); math.Abs(w-p.Weight) > 1e-9 {
				t.Fatalf("weight mismatch: %v vs %v", w, p.Weight)
			}
			// Distinct from all others.
			for j := 0; j < i; j++ {
				if samePath(p.Nodes, paths[j].Nodes) {
					t.Fatalf("duplicate path %v", p.Nodes)
				}
			}
		}
	}
}

func TestKShortestFirstMatchesDijkstra(t *testing.T) {
	g := buildMesh(8, 8, 3)
	dist, _ := g.Dijkstra(0, nil, nil)
	paths := g.KShortestPaths(0, 37, 4)
	if len(paths) == 0 {
		t.Fatal("no paths in connected mesh")
	}
	if math.Abs(paths[0].Weight-dist[37]) > 1e-9 {
		t.Errorf("first path weight %v != Dijkstra %v", paths[0].Weight, dist[37])
	}
	if len(paths) < 4 {
		t.Errorf("mesh should have at least 4 distinct paths, got %d", len(paths))
	}
}

func TestKShortestDeterministic(t *testing.T) {
	g := buildMesh(6, 6, 9)
	a := g.KShortestPaths(0, 20, 6)
	b := g.KShortestPaths(0, 20, 6)
	if len(a) != len(b) {
		t.Fatal("nondeterministic path count")
	}
	for i := range a {
		if !samePath(a[i].Nodes, b[i].Nodes) {
			t.Fatalf("path %d differs between runs", i)
		}
	}
}

// enumerateAllPaths lists every simple path src->dst by DFS (exponential;
// only for tiny graphs) sorted by weight then lexicographically.
func enumerateAllPaths(g *Graph, src, dst int) []WeightedPath {
	var out []WeightedPath
	visited := make([]bool, g.N())
	var path []int
	var dfs func(v int, w float64)
	dfs = func(v int, w float64) {
		visited[v] = true
		path = append(path, v)
		if v == dst {
			out = append(out, WeightedPath{Nodes: append([]int{}, path...), Weight: w})
		} else {
			for _, e := range g.Neighbors(v) {
				if !visited[e.To] {
					dfs(int(e.To), w+e.W)
				}
			}
		}
		path = path[:len(path)-1]
		visited[v] = false
	}
	dfs(src, 0)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight < out[j].Weight
		}
		return lessPath(out[i].Nodes, out[j].Nodes)
	})
	return out
}

func TestKShortestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 7
		g := New(n)
		seen := map[[2]int]bool{}
		for e := 0; e < 12; e++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			g.AddEdge(a, b, float64(1+r.Intn(9)))
		}
		want := enumerateAllPaths(g, 0, n-1)
		k := 4
		got := g.KShortestPaths(0, n-1, k)
		wantK := len(want)
		if wantK > k {
			wantK = k
		}
		if len(got) != wantK {
			t.Fatalf("trial %d: got %d paths, want %d", trial, len(got), wantK)
		}
		for i := range got {
			// Weights must match the brute-force ranking exactly (paths may
			// differ among equal weights).
			if math.Abs(got[i].Weight-want[i].Weight) > 1e-9 {
				t.Fatalf("trial %d: path %d weight %v, brute force %v",
					trial, i, got[i].Weight, want[i].Weight)
			}
		}
	}
}
