package graph

import (
	"math"
	"sort"
)

// WeightedPath is a path with its total weight.
type WeightedPath struct {
	Nodes  []int
	Weight float64
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing weight order, using Yen's algorithm over the package's
// deterministic Dijkstra. It underpins multi-path routing studies — one of
// the extensions the Hypatia paper lists as future work: with several
// near-equal paths available, traffic can be split or shifted a priori away
// from links about to become bottlenecks (§5.4).
//
// The graph is treated as immutable; edge removals during the search are
// tracked in an overlay, so the method is safe to call concurrently with
// other readers.
func (g *Graph) KShortestPaths(src, dst, k int) []WeightedPath {
	if k <= 0 {
		return nil
	}
	dist, prev := g.Dijkstra(src, nil, nil)
	first := PathFromPrev(prev, src, dst)
	if first == nil {
		return nil
	}
	paths := []WeightedPath{{Nodes: first, Weight: dist[dst]}}

	var candidates []yenCandidate

	for len(paths) < k {
		last := paths[len(paths)-1]
		// Each node of the previous path (except the final one) becomes a
		// spur node.
		for i := 0; i < len(last.Nodes)-1; i++ {
			spur := last.Nodes[i]
			rootNodes := last.Nodes[:i+1]

			// Edges to exclude: the next edge of every accepted path that
			// shares the current root.
			banned := map[[2]int]bool{}
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) && len(p.Nodes) > i+1 {
					banned[[2]int{p.Nodes[i], p.Nodes[i+1]}] = true
					banned[[2]int{p.Nodes[i+1], p.Nodes[i]}] = true
				}
			}
			// Nodes of the root (except the spur) are excluded to keep
			// paths loopless.
			excluded := map[int]bool{}
			for _, v := range rootNodes[:i] {
				excluded[v] = true
			}

			spurDist, spurPrev := g.dijkstraFiltered(spur, banned, excluded)
			if math.IsInf(spurDist[dst], 1) {
				continue
			}
			spurPath := PathFromPrev(spurPrev, spur, dst)
			total := append(append([]int{}, rootNodes[:i]...), spurPath...)
			weight := g.pathWeight(total)
			if math.IsInf(weight, 1) {
				continue
			}
			if containsPath(paths, total) || containsCandidate(candidates, total) {
				continue
			}
			candidates = append(candidates, yenCandidate{
				WeightedPath: WeightedPath{Nodes: total, Weight: weight},
			})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			//lint:ignore timeunits exact float tie-break keeps candidate ordering deterministic
			if candidates[a].Weight != candidates[b].Weight {
				return candidates[a].Weight < candidates[b].Weight
			}
			return lessPath(candidates[a].Nodes, candidates[b].Nodes)
		})
		paths = append(paths, candidates[0].WeightedPath)
		candidates = candidates[1:]
	}
	return paths
}

// dijkstraFiltered is Dijkstra with an edge ban list and excluded nodes.
func (g *Graph) dijkstraFiltered(src int, banned map[[2]int]bool, excluded map[int]bool) ([]float64, []int32) {
	dist := make([]float64, g.n)
	prev := make([]int32, g.n)
	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	h := &indexedHeap{}
	h.reset(g.n)
	dist[src] = 0
	prev[src] = int32(src)
	h.push(int32(src), 0)
	for !h.empty() {
		u := h.pop()
		du := dist[u]
		for _, e := range g.adj[u] {
			if excluded[int(e.To)] || banned[[2]int{int(u), int(e.To)}] {
				continue
			}
			if nd := du + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				h.push(e.To, nd)
			}
		}
	}
	return dist, prev
}

// pathWeight sums the edge weights along nodes; +Inf if an edge is missing.
//
//hypatia:handle(nodes: ->node)
func (g *Graph) pathWeight(nodes []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(nodes); i++ {
		w := math.Inf(1)
		for _, e := range g.adj[nodes[i]] {
			if int(e.To) == nodes[i+1] && e.W < w {
				w = e.W
			}
		}
		total += w
	}
	return total
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessPath(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func containsPath(paths []WeightedPath, p []int) bool {
	for _, q := range paths {
		if samePath(q.Nodes, p) {
			return true
		}
	}
	return false
}

// yenCandidate is a provisional path awaiting selection.
type yenCandidate struct {
	WeightedPath
}

func containsCandidate(cands []yenCandidate, p []int) bool {
	for _, q := range cands {
		if samePath(q.Nodes, p) {
			return true
		}
	}
	return false
}
