package graph

import (
	"testing"

	"hypatia/internal/check/checktest"
)

// The AllocGuard tests are the runtime half of the //hypatia:noalloc
// contract on this package's hot paths: hypatialint's allocsafety check
// proves the annotated functions free of steady-state allocation sites,
// and these guards pin the same property on the running binary with
// testing.AllocsPerRun, so a regression the static model cannot see
// (escape-analysis changes, stdlib drift) still fails the suite.

// TestAllocGuardDijkstraScratch pins the relax loop plus the indexed-heap
// workspace: with warmed dist/prev slabs and scratch, a full
// single-source sweep must not allocate.
func TestAllocGuardDijkstraScratch(t *testing.T) {
	const n = 256
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, float64(1+i%7))
		g.AddEdge(i, (i+17)%n, float64(2+i%5))
	}
	var dist []float64
	var prev []int32
	var sc Scratch
	src := 0
	checktest.AllocGuard(t, "Graph.DijkstraScratch", 0, 1, func() {
		dist, prev = g.DijkstraScratch(src, dist, prev, &sc)
		src = (src + 1) % n
	})
}

// TestAllocGuardResetAddEdge pins the graph-arena reuse path snapshots
// rebuild through every instant: Reset keeps the adjacency slabs, so
// re-adding the edge set allocates nothing once capacities are warm.
func TestAllocGuardResetAddEdge(t *testing.T) {
	const n = 128
	g := New(n)
	checktest.AllocGuard(t, "Graph.Reset+AddEdge", 0, 1, func() {
		g.Reset(n)
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n, 1.5)
			g.AddEdge(i, (i+31)%n, 2.5)
		}
	})
}
