package graph

import (
	"math/rand"
	"testing"
)

// buildMesh constructs a +Grid-like torus mesh of n x m nodes with random
// positive weights — the shape of an LEO constellation graph.
func buildMesh(n, m int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n * m)
	idx := func(i, j int) int { return i*m + j }
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			g.AddEdge(idx(i, j), idx(i, (j+1)%m), 1e6+r.Float64()*1e6)
			g.AddEdge(idx(i, j), idx((i+1)%n, j), 1e6+r.Float64()*1e6)
		}
	}
	return g
}

// Ablation: the paper's pipeline uses Floyd-Warshall on each snapshot; this
// repository's fast path runs one Dijkstra per destination ground station.
// These benches quantify the gap that motivates the substitution (FW is
// O(N^3) regardless of how many destinations matter).

func BenchmarkAblationDijkstraPerDestination(b *testing.B) {
	g := buildMesh(34, 34, 1) // Kuiper K1-sized satellite mesh
	var dist []float64
	var prev []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 100 destinations, as with the paper's 100 ground stations.
		for d := 0; d < 100; d++ {
			dist, prev = g.Dijkstra(d*7%g.N(), dist, prev)
		}
	}
	_ = prev
}

func BenchmarkAblationFloydWarshallFull(b *testing.B) {
	g := buildMesh(34, 34, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.FloydWarshall()
	}
}

func BenchmarkDijkstraSingleSource(b *testing.B) {
	g := buildMesh(72, 22, 2) // Starlink S1-sized
	var dist []float64
	var prev []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist, prev = g.Dijkstra(i%g.N(), dist, prev)
	}
	_ = dist
}
