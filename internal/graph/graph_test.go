package graph

import (
	"math"
	"math/rand"
	"testing"
)

// line builds a path graph 0-1-2-...-n-1 with unit weights.
func line(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Graph)
	}{
		{"out of range", func(g *Graph) { g.AddEdge(0, 5, 1) }},
		{"negative", func(g *Graph) { g.AddEdge(0, 1, -1) }},
		{"self loop", func(g *Graph) { g.AddEdge(1, 1, 1) }},
		{"nan", func(g *Graph) { g.AddEdge(0, 1, math.NaN()) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.f(New(3))
		})
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(5)
	dist, prev := g.Dijkstra(0, nil, nil)
	for i := 0; i < 5; i++ {
		if dist[i] != float64(i) {
			t.Errorf("dist[%d] = %v", i, dist[i])
		}
	}
	path := PathFromPrev(prev, 0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v", path)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	// 2, 3 disconnected.
	dist, prev := g.Dijkstra(0, nil, nil)
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Errorf("disconnected distances: %v", dist)
	}
	if PathFromPrev(prev, 0, 3) != nil {
		t.Error("path to unreachable node should be nil")
	}
}

func TestDijkstraPicksShorterOfTwoRoutes(t *testing.T) {
	//      1
	//   0 --- 1
	//   |     |
	//  10     1
	//   |     |
	//   3 --- 2
	//      1
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	dist, prev := g.Dijkstra(0, nil, nil)
	if dist[3] != 3 {
		t.Errorf("dist[3] = %v, want 3 (via 1,2)", dist[3])
	}
	path := PathFromPrev(prev, 0, 3)
	if len(path) != 4 {
		t.Errorf("path = %v", path)
	}
}

func TestDijkstraDeterministicTieBreak(t *testing.T) {
	// Two equal-cost routes 0->1->3 and 0->2->3; repeated runs must return
	// the same path.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	_, prev1 := g.Dijkstra(0, nil, nil)
	first := PathFromPrev(prev1, 0, 3)
	for i := 0; i < 10; i++ {
		_, prev := g.Dijkstra(0, nil, nil)
		p := PathFromPrev(prev, 0, 3)
		for j := range p {
			if p[j] != first[j] {
				t.Fatalf("tie-break unstable: %v vs %v", p, first)
			}
		}
	}
}

func TestDijkstraReusesSlices(t *testing.T) {
	g := line(6)
	dist := make([]float64, 6)
	prev := make([]int32, 6)
	d2, p2 := g.Dijkstra(2, dist, prev)
	if &d2[0] != &dist[0] || &p2[0] != &prev[0] {
		t.Error("slices were reallocated despite sufficient capacity")
	}
	if d2[5] != 3 {
		t.Errorf("dist[5] = %v", d2[5])
	}
}

func TestFloydWarshallMatchesDijkstraRandom(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 20 + r.Intn(20)
		g := New(n)
		seen := map[[2]int]bool{}
		for e := 0; e < n*3; e++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			g.AddEdge(a, b, 1+r.Float64()*100)
		}
		ap := g.FloydWarshall()
		for src := 0; src < n; src += 3 {
			dist, _ := g.Dijkstra(src, nil, nil)
			for v := 0; v < n; v++ {
				fw := ap.Dist(src, v)
				if math.IsInf(dist[v], 1) != math.IsInf(fw, 1) {
					t.Fatalf("reachability disagrees at %d->%d", src, v)
				}
				if !math.IsInf(fw, 1) && math.Abs(fw-dist[v]) > 1e-6 {
					t.Fatalf("distance disagrees at %d->%d: FW %v vs Dijkstra %v", src, v, fw, dist[v])
				}
			}
		}
	}
}

func TestFloydWarshallPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	ap := g.FloydWarshall()
	path := ap.Path(0, 3)
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v", path)
		}
	}
	if ap.Path(3, 0) == nil {
		t.Error("reverse path missing")
	}
}

func TestFloydWarshallPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	ap := g.FloydWarshall()
	if ap.Path(0, 2) != nil {
		t.Error("unreachable path should be nil")
	}
	if !math.IsInf(ap.Dist(2, 0), 1) {
		t.Error("unreachable distance should be Inf")
	}
}

func TestFloydWarshallPathDistancesConsistentProperty(t *testing.T) {
	// The sum of edge weights along any reported path equals the reported
	// distance.
	r := rand.New(rand.NewSource(5))
	n := 30
	g := New(n)
	type key [2]int
	w := map[key]float64{}
	for e := 0; e < 90; e++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if _, dup := w[key{a, b}]; dup {
			continue
		}
		wt := 1 + r.Float64()*10
		w[key{a, b}] = wt
		g.AddEdge(a, b, wt)
	}
	ap := g.FloydWarshall()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			p := ap.Path(a, b)
			if p == nil {
				continue
			}
			sum := 0.0
			for i := 0; i+1 < len(p); i++ {
				x, y := p[i], p[i+1]
				if x > y {
					x, y = y, x
				}
				wt, ok := w[key{x, y}]
				if !ok {
					t.Fatalf("path %v uses nonexistent edge %d-%d", p, x, y)
				}
				sum += wt
			}
			if math.Abs(sum-ap.Dist(a, b)) > 1e-6 {
				t.Fatalf("path sum %v != dist %v for %d->%d (%v)", sum, ap.Dist(a, b), a, b, p)
			}
		}
	}
}

func TestNumEdgesAndNeighbors(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.N() != 3 {
		t.Errorf("N = %d", g.N())
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
}

func TestIndexedHeapDecreaseKey(t *testing.T) {
	h := &indexedHeap{}
	h.reset(5)
	h.push(0, 10)
	h.push(1, 5)
	h.push(2, 7)
	h.push(0, 1) // decrease key of 0
	if got := h.pop(); got != 0 {
		t.Errorf("pop = %d, want 0 after decrease-key", got)
	}
	if got := h.pop(); got != 1 {
		t.Errorf("pop = %d, want 1", got)
	}
	// Increasing a key is ignored.
	h.push(2, 100)
	if got := h.pop(); got != 2 {
		t.Errorf("pop = %d, want 2", got)
	}
	if !h.empty() {
		t.Error("heap should be empty")
	}
}

func TestIndexedHeapOrderingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 50
		h := &indexedHeap{}
		h.reset(n)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = math.Floor(r.Float64() * 20) // deliberately many ties
			h.push(int32(i), keys[i])
		}
		prevKey := math.Inf(-1)
		prevNode := int32(-1)
		for !h.empty() {
			v := h.pop()
			if keys[v] < prevKey {
				t.Fatalf("heap order violated: %v after %v", keys[v], prevKey)
			}
			if keys[v] == prevKey && v < prevNode {
				t.Fatalf("tie-break violated: node %d after %d at key %v", v, prevNode, prevKey)
			}
			prevKey, prevNode = keys[v], v
		}
	}
}

// TestResetReusesSlabs verifies that Reset yields an empty graph whose
// rebuilt form behaves identically to a fresh one, across shrink and grow.
func TestResetReusesSlabs(t *testing.T) {
	g := line(10)
	if g.NumEdges() != 9 {
		t.Fatalf("line(10) edges = %d", g.NumEdges())
	}
	for _, n := range []int{10, 4, 16} {
		g.Reset(n)
		if g.N() != n || g.NumEdges() != 0 {
			t.Fatalf("after Reset(%d): n=%d edges=%d", n, g.N(), g.NumEdges())
		}
		for v := 0; v < n; v++ {
			if len(g.Neighbors(v)) != 0 {
				t.Fatalf("Reset(%d): node %d kept %d edges", n, v, len(g.Neighbors(v)))
			}
		}
		// Rebuild a line and compare against a fresh graph.
		for i := 0; i < n-1; i++ {
			g.AddEdge(i, i+1, float64(i+1))
		}
		want := New(n)
		for i := 0; i < n-1; i++ {
			want.AddEdge(i, i+1, float64(i+1))
		}
		gd, gp := g.Dijkstra(0, nil, nil)
		wd, wp := want.Dijkstra(0, nil, nil)
		for v := 0; v < n; v++ {
			if gd[v] != wd[v] || gp[v] != wp[v] {
				t.Fatalf("Reset(%d) rebuild differs at node %d: (%v,%d) vs (%v,%d)",
					n, v, gd[v], gp[v], wd[v], wp[v])
			}
		}
	}
}

// TestResetAllocationFree verifies the steady-state promise: rebuilding the
// same shape after Reset performs no allocations.
func TestResetAllocationFree(t *testing.T) {
	g := line(64)
	allocs := testing.AllocsPerRun(100, func() {
		g.Reset(64)
		for i := 0; i < 63; i++ {
			g.AddEdge(i, i+1, 1)
		}
	})
	if allocs != 0 {
		t.Errorf("Reset+rebuild allocated %v times per run", allocs)
	}
}

// TestDijkstraScratchIdentical runs randomized graphs through Dijkstra and
// DijkstraScratch with a dirty reused scratch, requiring identical output.
func TestDijkstraScratchIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var sc Scratch
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(60)
		g := New(n)
		for e := 0; e < n*2; e++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				g.AddEdge(a, b, 1+math.Floor(r.Float64()*9))
			}
		}
		src := r.Intn(n)
		wd, wp := g.Dijkstra(src, nil, nil)
		gd, gp := g.DijkstraScratch(src, nil, nil, &sc)
		for v := 0; v < n; v++ {
			if gd[v] != wd[v] || gp[v] != wp[v] {
				t.Fatalf("trial %d: scratch Dijkstra differs at %d: (%v,%d) vs (%v,%d)",
					trial, v, gd[v], gp[v], wd[v], wp[v])
			}
		}
	}
}

// TestDijkstraScratchSteadyStateAllocs verifies a threaded scratch removes
// per-run heap allocations.
func TestDijkstraScratchSteadyStateAllocs(t *testing.T) {
	g := line(128)
	var sc Scratch
	dist, prev := g.DijkstraScratch(0, nil, nil, &sc)
	allocs := testing.AllocsPerRun(50, func() {
		dist, prev = g.DijkstraScratch(5, dist, prev, &sc)
	})
	if allocs != 0 {
		t.Errorf("scratch Dijkstra allocated %v times per run", allocs)
	}
}
