// Package graph implements the weighted-graph algorithms behind Hypatia's
// routing: single-source shortest paths (Dijkstra with a binary heap, used
// per destination ground station for scalable forwarding-state generation)
// and all-pairs shortest paths (Floyd–Warshall, the algorithm the paper's
// networkx-based pipeline uses, retained both for fidelity and as a
// cross-check of the Dijkstra fast path).
//
// Graphs are undirected with non-negative float64 weights (link distances in
// meters, so shortest distance = lowest propagation latency). Node identity
// and edge insertion order are deterministic, which makes path selection
// reproducible across runs.
package graph

import (
	"fmt"
	"math"
)

// Infinity is the distance reported for unreachable nodes.
var Infinity = math.Inf(1)

// Edge is a half-edge in an adjacency list.
type Edge struct {
	To int32 //hypatia:handle(node)
	W  float64
}

// Graph is an undirected weighted graph over nodes 0..N-1.
type Graph struct {
	n   int
	adj [][]Edge //hypatia:handle(node)

	// Lazy CSR mirror of adj for the dense-repair sweep: one contiguous
	// (offset, target, weight) triple streams far better than per-node
	// adjacency slabs scattered across the heap. Invalidated by any
	// mutation, rebuilt on demand, shared by every repair over the same
	// graph build.
	csrOff []int32   //hypatia:handle(node->csr-slot)
	csrTo  []int32   //hypatia:handle(csr-slot->node)
	csrW   []float64 //hypatia:handle(csr-slot)
	csrOK  bool
}

// New creates a graph with n nodes and no edges.
//
//hypatia:pure
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// Reset reconfigures the graph in place to n nodes with no edges, retaining
// the per-node adjacency slabs from previous use. Rebuilding a graph of a
// similar shape (the forwarding-state engine does so every update instant)
// then performs no allocations in steady state.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:epoch(recv: csr-slot)
func (g *Graph) Reset(n int) {
	if n <= cap(g.adj) {
		g.adj = g.adj[:n]
	} else {
		adj := make([][]Edge, n)
		copy(adj, g.adj[:cap(g.adj)])
		g.adj = adj
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
	g.csrOK = false
}

// csr returns the graph's CSR adjacency mirror, rebuilding it if any edge
// was added since the last build. Only for single-owner use (the repair
// paths): the rebuild mutates the receiver.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(return: node->csr-slot, csr-slot->node, csr-slot)
func (g *Graph) csr() (off, to []int32, w []float64) {
	if g.csrOK {
		return g.csrOff, g.csrTo, g.csrW
	}
	if cap(g.csrOff) < g.n+1 {
		g.csrOff = make([]int32, g.n+1)
	}
	g.csrOff = g.csrOff[:g.n+1]
	total := 0
	g.csrOff[0] = 0
	for v := 0; v < g.n; v++ { //hypatia:handle(node) offset build walks nodes in id order
		total += len(g.adj[v])
		g.csrOff[v+1] = int32(total)
	}
	if cap(g.csrTo) < total {
		g.csrTo = make([]int32, total)
		g.csrW = make([]float64, total)
	}
	g.csrTo = g.csrTo[:total]
	g.csrW = g.csrW[:total]
	k := 0                     //hypatia:handle(csr-slot) CSR write cursor
	for v := 0; v < g.n; v++ { //hypatia:handle(node) edge copy walks nodes in id order
		for _, e := range g.adj[v] {
			g.csrTo[k] = e.To
			g.csrW[k] = e.W
			k++
		}
	}
	g.csrOK = true
	return g.csrOff, g.csrTo, g.csrW
}

// N returns the number of nodes.
//
//hypatia:noalloc
//hypatia:pure
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
//
//hypatia:noalloc
//hypatia:pure
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Neighbors returns the adjacency list of node v. The slice is owned by the
// graph and must not be modified.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(v: node)
func (g *Graph) Neighbors(v int) []Edge { return g.adj[v] }

// AddEdge inserts an undirected edge between a and b with weight w.
// It panics on out-of-range nodes, self-loops, or negative weights —
// all of which indicate a topology-construction bug.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(a: node, b: node)
//hypatia:epoch(recv: csr-slot)
func (g *Graph) AddEdge(a, b int, w float64) {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("graph: edge %d-%d out of range [0,%d)", a, b, g.n))
	}
	if a == b {
		panic(fmt.Sprintf("graph: self-loop at %d", a))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: negative or NaN weight %v on edge %d-%d", w, a, b))
	}
	g.adj[a] = append(g.adj[a], Edge{To: int32(b), W: w})
	g.adj[b] = append(g.adj[b], Edge{To: int32(a), W: w})
	g.csrOK = false
}

// indexedHeap is a binary min-heap of nodes keyed by tentative distance,
// with ties broken by node index for deterministic path selection. It
// supports decrease-key via a position index.
type indexedHeap struct {
	nodes []int32   //hypatia:handle(->node)  heap array of node ids
	pos   []int32   //hypatia:handle(node)  pos[node] = index in nodes, -1 if absent
	key   []float64 //hypatia:handle(node)  key[node] = current tentative distance
}

// reset prepares the heap for a graph of n nodes, reusing the backing
// arrays when they are large enough. A completed Dijkstra run leaves pos
// all -1 (every pushed node is eventually popped, and pop clears its pos
// entry), so reuse needs no re-initialization sweep.
//
//hypatia:noalloc
//hypatia:pure
func (h *indexedHeap) reset(n int) {
	if cap(h.pos) < n {
		h.nodes = make([]int32, 0, n)
		h.pos = make([]int32, n)
		h.key = make([]float64, n)
		for i := range h.pos {
			h.pos[i] = -1
		}
		return
	}
	h.nodes = h.nodes[:0]
	h.pos = h.pos[:n]
	h.key = h.key[:n]
}

//hypatia:noalloc
//hypatia:pure
//hypatia:handle(a: node, b: node)
func (h *indexedHeap) less(a, b int32) bool {
	//lint:ignore timeunits exact float tie-break keeps heap ordering deterministic
	if h.key[a] != h.key[b] {
		return h.key[a] < h.key[b]
	}
	return a < b
}

//hypatia:noalloc
//hypatia:pure
func (h *indexedHeap) swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.pos[h.nodes[i]] = int32(i)
	h.pos[h.nodes[j]] = int32(j)
}

//hypatia:noalloc
//hypatia:pure
func (h *indexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.nodes[i], h.nodes[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

//hypatia:noalloc
//hypatia:pure
func (h *indexedHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.nodes) && h.less(h.nodes[l], h.nodes[small]) {
			small = l
		}
		if r < len(h.nodes) && h.less(h.nodes[r], h.nodes[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// push inserts node v with key k, or decreases its key if already present.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(v: node)
func (h *indexedHeap) push(v int32, k float64) {
	if h.pos[v] >= 0 {
		if k >= h.key[v] {
			return
		}
		h.key[v] = k
		h.up(int(h.pos[v]))
		return
	}
	h.key[v] = k
	h.pos[v] = int32(len(h.nodes))
	h.nodes = append(h.nodes, v)
	h.up(len(h.nodes) - 1)
}

// pop removes and returns the minimum node.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(return: node)
func (h *indexedHeap) pop() int32 {
	top := h.nodes[0]
	last := len(h.nodes) - 1
	h.swap(0, last)
	h.nodes = h.nodes[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top
}

//hypatia:noalloc
//hypatia:pure
func (h *indexedHeap) empty() bool { return len(h.nodes) == 0 }

// Scratch holds the reusable internals of a Dijkstra run (the indexed
// binary heap). The zero value is ready for use; a Scratch must not be
// shared between concurrent Dijkstra calls. Threading one Scratch through
// a sweep of many runs (e.g. one per destination ground station) removes
// the per-run heap allocations.
//
//hypatia:confined
type Scratch struct {
	h indexedHeap
}

// Dijkstra computes single-source shortest paths from src. It fills dist
// (length N, Infinity for unreachable) and prev (length N, -1 where
// undefined; prev[src] = src). Slices are allocated when nil or too short;
// the possibly re-allocated slices are returned for reuse across calls.
//
// Ties between equally short paths are broken toward the smaller node index
// at extraction time, so repeated runs over an identical graph produce an
// identical shortest-path tree.
//
//hypatia:pure
//hypatia:handle(src: node, dist: node, prev: node->node, return: node, node->node)
func (g *Graph) Dijkstra(src int, dist []float64, prev []int32) ([]float64, []int32) {
	return g.DijkstraScratch(src, dist, prev, &Scratch{})
}

// DijkstraScratch is Dijkstra with an explicit scratch workspace. Results
// are identical to Dijkstra for any scratch state: the workspace only
// recycles allocations, never data.
//
//hypatia:noalloc
//hypatia:pure
//hypatia:handle(src: node, dist: node, prev: node->node, return: node, node->node)
func (g *Graph) DijkstraScratch(src int, dist []float64, prev []int32, sc *Scratch) ([]float64, []int32) {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: source %d out of range", src))
	}
	if cap(dist) < g.n {
		dist = make([]float64, g.n)
	}
	dist = dist[:g.n]
	if cap(prev) < g.n {
		prev = make([]int32, g.n)
	}
	prev = prev[:g.n]
	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	h := &sc.h
	h.reset(g.n)
	dist[src] = 0
	prev[src] = int32(src)
	h.push(int32(src), 0)
	for !h.empty() {
		u := h.pop()
		du := dist[u]
		for _, e := range g.adj[u] {
			nd := du + e.W
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				h.push(e.To, nd)
			}
		}
	}
	return dist, prev
}

// PathFromPrev reconstructs the path src..dst from a prev array produced by
// Dijkstra(src, ...). It returns nil if dst is unreachable.
//
//hypatia:handle(prev: node->node, src: node, dst: node)
func PathFromPrev(prev []int32, src, dst int) []int {
	if prev[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; ; v = int(prev[v]) {
		rev = append(rev, v)
		if v == src {
			break
		}
		if len(rev) > len(prev) {
			panic("graph: prev array contains a cycle")
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllPairs holds the result of Floyd–Warshall: flattened N×N distance and
// next-hop matrices.
type AllPairs struct {
	n    int
	dist []float64
	next []int32
}

// FloydWarshall computes all-pairs shortest paths. This is the algorithm the
// paper's analysis pipeline uses on each 100 ms snapshot; it is O(N^3) and
// intended for validation and small topologies — use per-destination
// Dijkstra for constellation-scale forwarding state.
func (g *Graph) FloydWarshall() *AllPairs {
	n := g.n
	ap := &AllPairs{
		n:    n,
		dist: make([]float64, n*n),
		next: make([]int32, n*n),
	}
	for i := range ap.dist {
		ap.dist[i] = Infinity
		ap.next[i] = -1
	}
	for i := 0; i < n; i++ {
		ap.dist[i*n+i] = 0
		ap.next[i*n+i] = int32(i)
	}
	for u, edges := range g.adj {
		for _, e := range edges {
			if e.W < ap.dist[u*n+int(e.To)] {
				ap.dist[u*n+int(e.To)] = e.W
				ap.next[u*n+int(e.To)] = e.To
			}
		}
	}
	for k := 0; k < n; k++ {
		kRow := ap.dist[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			dik := ap.dist[i*n+k]
			if math.IsInf(dik, 1) {
				continue
			}
			iRow := ap.dist[i*n : (i+1)*n]
			iNext := ap.next[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				if nd := dik + kRow[j]; nd < iRow[j] {
					iRow[j] = nd
					iNext[j] = ap.next[i*n+k]
				}
			}
		}
	}
	return ap
}

// Dist returns the shortest-path distance from a to b.
func (ap *AllPairs) Dist(a, b int) float64 { return ap.dist[a*ap.n+b] }

// Path returns the node sequence of a shortest path a..b, nil if
// unreachable.
func (ap *AllPairs) Path(a, b int) []int {
	if ap.next[a*ap.n+b] == -1 {
		return nil
	}
	path := []int{a}
	for v := a; v != b; {
		v = int(ap.next[v*ap.n+b])
		path = append(path, v)
		if len(path) > ap.n {
			panic("graph: next matrix contains a cycle")
		}
	}
	return path
}
