package graph

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// edgeKey identifies an undirected edge for test bookkeeping.
type edgeKey struct{ a, b int32 }

// edgeSet extracts a graph's undirected edge set with weights.
func edgeSet(g *Graph) map[edgeKey]float64 {
	m := map[edgeKey]float64{}
	for v := 0; v < g.N(); v++ {
		for _, e := range g.Neighbors(v) {
			if int(e.To) > v {
				m[edgeKey{int32(v), e.To}] = e.W
			}
		}
	}
	return m
}

// fromEdgeSet builds a graph over n nodes from an edge set.
func fromEdgeSet(n int, m map[edgeKey]float64) *Graph {
	g := New(n)
	// Deterministic insertion order is irrelevant for results (Dijkstra's
	// output is canonical) but keeps failures reproducible.
	for v := 0; v < n; v++ {
		for u := v + 1; u < n; u++ {
			if w, ok := m[edgeKey{int32(v), int32(u)}]; ok {
				g.AddEdge(v, u, w)
			}
		}
	}
	return g
}

// randomEdgeSet draws a connected-ish random graph. Integer weights force
// shortest-path ties; float weights exercise the generic drift case.
func randomEdgeSet(rng *rand.Rand, n int, extraEdges int, intWeights bool) map[edgeKey]float64 {
	w := func() float64 {
		if intWeights {
			return float64(1 + rng.Intn(4))
		}
		return 1 + 10*rng.Float64()
	}
	m := map[edgeKey]float64{}
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		m[edgeKey{int32(u), int32(v)}] = w()
	}
	for i := 0; i < extraEdges; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		m[edgeKey{int32(a), int32(b)}] = w()
	}
	return m
}

// mutateEdgeSet applies k random mutations — weight drifts, removals, and
// insertions — and returns the new edge set.
func mutateEdgeSet(rng *rand.Rand, n int, old map[edgeKey]float64, k int, intWeights bool) map[edgeKey]float64 {
	m := map[edgeKey]float64{}
	for key, w := range old {
		m[key] = w
	}
	keys := make([]edgeKey, 0, len(m))
	for key := range old {
		keys = append(keys, key)
	}
	for i := 0; i < k; i++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(keys) > 0: // drift
			key := keys[rng.Intn(len(keys))]
			if _, ok := m[key]; ok {
				if intWeights {
					m[key] = float64(1 + rng.Intn(4))
				} else {
					m[key] *= 0.8 + 0.4*rng.Float64()
				}
			}
		case op == 1 && len(keys) > 0: // remove
			delete(m, keys[rng.Intn(len(keys))])
		default: // insert
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if intWeights {
				m[edgeKey{int32(a), int32(b)}] = float64(1 + rng.Intn(4))
			} else {
				m[edgeKey{int32(a), int32(b)}] = 1 + 10*rng.Float64()
			}
		}
	}
	return m
}

func sameSSSP(t *testing.T, tag string, dist, wantDist []float64, prev, wantPrev []int32) {
	t.Helper()
	for i := range dist {
		if dist[i] != wantDist[i] || prev[i] != wantPrev[i] {
			t.Fatalf("%s: node %d: got (dist=%v, prev=%d), scratch Dijkstra gives (dist=%v, prev=%d)",
				tag, i, dist[i], prev[i], wantDist[i], wantPrev[i])
		}
	}
}

// TestDiffIntoReconstructs proves the changed-edge list is exactly the set
// difference: applying it to the old edge set reproduces the new one.
func TestDiffIntoReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc DiffScratch
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(30)
		oldSet := randomEdgeSet(rng, n, rng.Intn(2*n), trial%2 == 0)
		newSet := mutateEdgeSet(rng, n, oldSet, rng.Intn(12), trial%2 == 0)
		oldG, newG := fromEdgeSet(n, oldSet), fromEdgeSet(n, newSet)
		changes := DiffInto(oldG, newG, nil, &sc)
		applied := map[edgeKey]float64{}
		for k, w := range oldSet {
			applied[k] = w
		}
		for _, ch := range changes {
			if ch.A >= ch.B {
				t.Fatalf("change %+v not canonical (A < B)", ch)
			}
			key := edgeKey{ch.A, ch.B}
			if ch.OldW >= 0 && applied[key] != ch.OldW {
				t.Fatalf("change %+v: old weight disagrees with edge set (%v)", ch, applied[key])
			}
			if ch.OldW < 0 {
				if _, ok := applied[key]; ok {
					t.Fatalf("change %+v claims insertion but edge existed", ch)
				}
			}
			if ch.NewW < 0 {
				delete(applied, key)
			} else {
				applied[key] = ch.NewW
			}
		}
		if len(applied) != len(newSet) {
			t.Fatalf("trial %d: applying diff gives %d edges, want %d", trial, len(applied), len(newSet))
		}
		for k, w := range newSet {
			if applied[k] != w {
				t.Fatalf("trial %d: edge %v = %v after diff, want %v", trial, k, applied[k], w)
			}
		}
		if got := DiffInto(oldG, oldG, changes, &sc); len(got) != 0 {
			t.Fatalf("diff of identical graphs nonempty: %v", got)
		}
	}
}

// TestRepairSSSPMatchesDijkstra is the core property: repairing the old
// solution over the diff is bitwise identical to running Dijkstra from
// scratch on the new graph — distances and predecessors both — for float
// and tie-heavy integer weights alike, on both repair paths.
func TestRepairSSSPMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var dsc DiffScratch
	var rsc RepairScratch
	for trial := 0; trial < 120; trial++ {
		n := 4 + rng.Intn(40)
		intW := trial%3 == 0
		oldSet := randomEdgeSet(rng, n, rng.Intn(3*n), intW)
		newSet := mutateEdgeSet(rng, n, oldSet, 1+rng.Intn(2+n/2), intW)
		oldG, newG := fromEdgeSet(n, oldSet), fromEdgeSet(n, newSet)
		changes := DiffInto(oldG, newG, nil, &dsc)
		src := rng.Intn(n)
		wantDist, wantPrev := newG.Dijkstra(src, nil, nil)
		baseDist, basePrev := oldG.Dijkstra(src, nil, nil)

		// The public entry point (threshold-selected path).
		dist := append([]float64(nil), baseDist...)
		prev := append([]int32(nil), basePrev...)
		newG.RepairSSSP(src, dist, prev, changes, &rsc)
		sameSSSP(t, "RepairSSSP", dist, wantDist, prev, wantPrev)

		// Both internal paths must agree regardless of the threshold.
		if len(changes) > 0 {
			// Dense path, once seeded with the old solution's settle order
			// and once with a deliberately stale (identity) order: order
			// affects cost only, never the result.
			order := make([]int32, newG.N())
			for i := range order {
				order[i] = int32(i)
			}
			slices.SortFunc(order, func(a, b int32) int { return orderCmp(baseDist, a, b) })
			dist = append(dist[:0], baseDist...)
			prev = append(prev[:0], basePrev...)
			newG.RepairSSSPDense(src, dist, prev, order, &rsc)
			sameSSSP(t, "RepairSSSPDense", dist, wantDist, prev, wantPrev)
			// The maintained order must remain a usable permutation: a
			// second repair over it (same graph, so changes are empty in
			// spirit) must reproduce the same solution.
			newG.RepairSSSPDense(src, dist, prev, order, &rsc)
			sameSSSP(t, "RepairSSSPDense/again", dist, wantDist, prev, wantPrev)

			for i := range order {
				order[i] = int32(i)
			}
			for i := range dist {
				dist[i] = -1 // dense path must not read prior dist/prev
				prev[i] = -7
			}
			newG.RepairSSSPDense(src, dist, prev, order, &rsc)
			sameSSSP(t, "RepairSSSPDense/staleOrder", dist, wantDist, prev, wantPrev)

			dist = append(dist[:0], baseDist...)
			prev = append(prev[:0], basePrev...)
			newG.repairSparse(src, dist, prev, changes, &rsc)
			sameSSSP(t, "repairSparse", dist, wantDist, prev, wantPrev)
		}
	}
}

// TestRepairSSSPChain carries one solution through a long mutation chain,
// repairing in place at every step — the exact usage pattern of the
// incremental forwarding-state engine.
func TestRepairSSSPChain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var dsc DiffScratch
	var rsc RepairScratch
	n := 30
	cur := randomEdgeSet(rng, n, 2*n, false)
	g := fromEdgeSet(n, cur)
	src := 7
	dist, prev := g.Dijkstra(src, nil, nil)
	for step := 0; step < 60; step++ {
		next := mutateEdgeSet(rng, n, cur, 1+rng.Intn(6), step%4 == 0)
		ng := fromEdgeSet(n, next)
		changes := DiffInto(g, ng, nil, &dsc)
		ng.RepairSSSP(src, dist, prev, changes, &rsc)
		wantDist, wantPrev := ng.Dijkstra(src, nil, nil)
		sameSSSP(t, "chain", dist, wantDist, prev, wantPrev)
		cur, g = next, ng
	}
}

// TestRepairSSSPBellmanFord cross-checks the repaired solution against the
// algorithmically independent Bellman-Ford fixpoint: distances bitwise
// equal, predecessor tree loop-free and achieving those distances.
func TestRepairSSSPBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var dsc DiffScratch
	var rsc RepairScratch
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(25)
		intW := trial%2 == 0
		oldSet := randomEdgeSet(rng, n, rng.Intn(2*n), intW)
		newSet := mutateEdgeSet(rng, n, oldSet, 1+rng.Intn(8), intW)
		oldG, newG := fromEdgeSet(n, oldSet), fromEdgeSet(n, newSet)
		src := rng.Intn(n)
		dist, prev := oldG.Dijkstra(src, nil, nil)
		newG.RepairSSSP(src, dist, prev, DiffInto(oldG, newG, nil, &dsc), &rsc)

		bfDist, _ := newG.BellmanFord(src)
		for v := range bfDist {
			if dist[v] != bfDist[v] {
				t.Fatalf("trial %d node %d: repaired dist %v, Bellman-Ford %v", trial, v, dist[v], bfDist[v])
			}
		}
		for v := 0; v < n; v++ {
			switch {
			case v == src:
				if prev[v] != int32(src) {
					t.Fatalf("prev[src] = %d", prev[v])
				}
			case math.IsInf(dist[v], 1):
				if prev[v] != -1 {
					t.Fatalf("unreachable node %d has prev %d", v, prev[v])
				}
			default:
				if PathFromPrev(prev, src, v) == nil {
					t.Fatalf("node %d reachable (dist %v) but prev tree yields no path", v, dist[v])
				}
				achieved := false
				for _, e := range newG.Neighbors(v) {
					if e.To == prev[v] && dist[prev[v]]+e.W == dist[v] {
						achieved = true
						break
					}
				}
				if !achieved {
					t.Fatalf("node %d: prev %d does not achieve dist %v", v, prev[v], dist[v])
				}
			}
		}
	}
}

// TestRepairSSSPUntouchedRegion pins the locality contract: with changes
// confined to one connected component, the other component's distance and
// predecessor entries come out bitwise unchanged.
func TestRepairSSSPUntouchedRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var dsc DiffScratch
	var rsc RepairScratch
	nA, nB := 12, 12
	n := nA + nB
	set := map[edgeKey]float64{}
	// Component A on nodes [0,nA), component B on [nA, n); no cross edges.
	for v := 1; v < nA; v++ {
		set[edgeKey{int32(rng.Intn(v)), int32(v)}] = 1 + 10*rng.Float64()
	}
	for v := nA + 1; v < n; v++ {
		set[edgeKey{int32(nA + rng.Intn(v-nA)), int32(v)}] = 1 + 10*rng.Float64()
	}
	g := fromEdgeSet(n, set)
	src := 0 // in component A; component B is unreachable
	dist, prev := g.Dijkstra(src, nil, nil)
	for step := 0; step < 20; step++ {
		next := map[edgeKey]float64{}
		for k, w := range set {
			next[k] = w
		}
		// Mutate only component-A edges.
		for k := range set {
			if int(k.b) < nA && rng.Intn(3) == 0 {
				next[k] = 1 + 10*rng.Float64()
			}
		}
		ng := fromEdgeSet(n, next)
		changes := DiffInto(g, ng, nil, &dsc)
		before := append([]float64(nil), dist[nA:]...)
		ng.RepairSSSP(src, dist, prev, changes, &rsc)
		for i, want := range before {
			if dist[nA+i] != want || prev[nA+i] != -1 {
				t.Fatalf("step %d: untouched component entry %d changed: dist %v→%v prev %d",
					step, nA+i, want, dist[nA+i], prev[nA+i])
			}
		}
		wantDist, wantPrev := ng.Dijkstra(src, nil, nil)
		sameSSSP(t, "untouched", dist, wantDist, prev, wantPrev)
		set, g = next, ng
	}
}

// TestRepairSSSPNoChanges: an empty change list must leave the arrays
// untouched (the engine skips instants whose graphs are identical).
func TestRepairSSSPNoChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var rsc RepairScratch
	g := fromEdgeSet(10, randomEdgeSet(rng, 10, 12, false))
	dist, prev := g.Dijkstra(3, nil, nil)
	d2 := append([]float64(nil), dist...)
	p2 := append([]int32(nil), prev...)
	g.RepairSSSP(3, d2, p2, nil, &rsc)
	sameSSSP(t, "nochange", d2, dist, p2, prev)
}

// FuzzRepairSSSP drives the repair with fuzzer-chosen topology mutations;
// the oracle is always a from-scratch Dijkstra on the mutated graph.
func FuzzRepairSSSP(f *testing.F) {
	f.Add(int64(1), 10, 8, false)
	f.Add(int64(2), 25, 40, true)
	f.Add(int64(3), 6, 2, false)
	f.Add(int64(4), 50, 100, true)
	f.Fuzz(func(t *testing.T, seed int64, n, mutations int, intW bool) {
		if n < 2 || n > 200 || mutations < 0 || mutations > 400 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		var dsc DiffScratch
		var rsc RepairScratch
		oldSet := randomEdgeSet(rng, n, rng.Intn(3*n), intW)
		newSet := mutateEdgeSet(rng, n, oldSet, mutations, intW)
		oldG, newG := fromEdgeSet(n, oldSet), fromEdgeSet(n, newSet)
		src := rng.Intn(n)
		dist, prev := oldG.Dijkstra(src, nil, nil)
		newG.RepairSSSP(src, dist, prev, DiffInto(oldG, newG, nil, &dsc), &rsc)
		wantDist, wantPrev := newG.Dijkstra(src, nil, nil)
		for i := range dist {
			if dist[i] != wantDist[i] || prev[i] != wantPrev[i] {
				t.Fatalf("node %d: repaired (dist=%v, prev=%d) != scratch (dist=%v, prev=%d)",
					i, dist[i], prev[i], wantDist[i], wantPrev[i])
			}
		}
	})
}
