package orbit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hypatia/internal/geom"
)

func circ550() Elements { return Circular(550e3, geom.Rad(53), 0, 0) }

func TestValidate(t *testing.T) {
	if err := circ550().Validate(); err != nil {
		t.Errorf("valid orbit rejected: %v", err)
	}
	bad := Elements{SemiMajorAxis: 1000}
	if err := bad.Validate(); err == nil {
		t.Error("sub-surface orbit accepted")
	}
	bad = circ550()
	bad.Eccentricity = 1.2
	if err := bad.Validate(); err == nil {
		t.Error("hyperbolic orbit accepted")
	}
	bad = circ550()
	bad.Inclination = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN inclination accepted")
	}
}

func TestPeriodAndSpeedMatchPaperNumbers(t *testing.T) {
	e := circ550()
	// Paper: at h = 550 km satellites complete an orbit in ~100 minutes...
	period := e.Period() / 60 // minutes
	if period < 90 || period > 100 {
		t.Errorf("550 km period = %.1f min, want ~95", period)
	}
	// ...traveling at more than 27,000 km/h.
	speed := e.Speed() * 3.6 // km/h
	if speed < 27000 || speed > 28000 {
		t.Errorf("550 km speed = %.0f km/h, want >27000", speed)
	}
}

func TestAltitude(t *testing.T) {
	if got := circ550().Altitude(); math.Abs(got-550e3) > 1e-6 {
		t.Errorf("Altitude = %v", got)
	}
}

func TestSolveKeplerCircular(t *testing.T) {
	for _, m := range []float64{0, 1, math.Pi, 5, -1} {
		e := SolveKepler(m, 0)
		want := math.Mod(m, 2*math.Pi)
		if want < 0 {
			want += 2 * math.Pi
		}
		if math.Abs(e-want) > 1e-12 {
			t.Errorf("SolveKepler(%v, 0) = %v, want %v", m, e, want)
		}
	}
}

func TestSolveKeplerSatisfiesEquationProperty(t *testing.T) {
	f := func(m, eRaw float64) bool {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return true
		}
		m = math.Mod(m, 2*math.Pi)
		ecc := math.Mod(math.Abs(eRaw), 0.9) // e in [0, 0.9)
		bigE := SolveKepler(m, ecc)
		back := bigE - ecc*math.Sin(bigE)
		diff := math.Mod(back-m, 2*math.Pi)
		if diff > math.Pi {
			diff -= 2 * math.Pi
		}
		if diff < -math.Pi {
			diff += 2 * math.Pi
		}
		return math.Abs(diff) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTrueAnomalyCircular(t *testing.T) {
	for _, e := range []float64{0.5, 1.5, 3.0} {
		if got := TrueAnomaly(e, 0); got != e {
			t.Errorf("TrueAnomaly(%v, 0) = %v", e, got)
		}
	}
}

func TestPropagatorRadiusConstantForCircularOrbit(t *testing.T) {
	k, err := NewKeplerPropagator(circ550(), false)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.EarthRadius + 550e3
	for ts := 0.0; ts <= 6000; ts += 100 {
		r := k.PositionECI(ts).Norm()
		if math.Abs(r-want) > 1 {
			t.Fatalf("radius at t=%v: %v, want %v", ts, r, want)
		}
	}
}

func TestPropagatorPeriodicity(t *testing.T) {
	k, _ := NewKeplerPropagator(circ550(), false)
	p0 := k.PositionECI(0)
	p1 := k.PositionECI(k.Elements().Period())
	if p0.Distance(p1) > 1 {
		t.Errorf("orbit not periodic: displaced %v m after one period", p0.Distance(p1))
	}
}

func TestPropagatorVelocityMatchesFiniteDifference(t *testing.T) {
	k, _ := NewKeplerPropagator(Circular(630e3, geom.Rad(51.9), 1.0, 2.0), false)
	const dt = 1e-3
	st := k.StateECI(100)
	pPlus := k.PositionECI(100 + dt)
	pMinus := k.PositionECI(100 - dt)
	fd := pPlus.Sub(pMinus).Scale(1 / (2 * dt))
	if fd.Sub(st.Velocity).Norm() > 0.5 {
		t.Errorf("velocity mismatch: analytic %v vs finite-diff %v", st.Velocity, fd)
	}
}

func TestPropagatorInclinationBoundsLatitude(t *testing.T) {
	// A satellite in an inclined circular orbit never exceeds |lat| = i.
	incl := geom.Rad(53)
	k, _ := NewKeplerPropagator(Circular(550e3, incl, 0.3, 0), false)
	maxLat := 0.0
	for ts := 0.0; ts < 6000; ts += 10 {
		p := k.PositionECI(ts)
		lat := math.Asin(p.Z / p.Norm())
		if math.Abs(lat) > maxLat {
			maxLat = math.Abs(lat)
		}
	}
	if maxLat > incl+1e-6 {
		t.Errorf("max latitude %v exceeds inclination %v", geom.Deg(maxLat), geom.Deg(incl))
	}
	// And it should nearly reach the inclination over a full orbit.
	if maxLat < incl-geom.Rad(1) {
		t.Errorf("max latitude %v far below inclination %v", geom.Deg(maxLat), geom.Deg(incl))
	}
}

func TestPropagatorAngularMomentumConservedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		e := Elements{
			SemiMajorAxis: geom.EarthRadius + 400e3 + r.Float64()*1.6e6,
			Eccentricity:  r.Float64() * 0.3,
			Inclination:   r.Float64() * math.Pi,
			RAAN:          r.Float64() * 2 * math.Pi,
			ArgPerigee:    r.Float64() * 2 * math.Pi,
			MeanAnomaly:   r.Float64() * 2 * math.Pi,
		}
		k, err := NewKeplerPropagator(e, false)
		if err != nil {
			t.Fatal(err)
		}
		s0 := k.StateECI(0)
		h0 := s0.Position.Cross(s0.Velocity)
		for _, ts := range []float64{500, 2000, 5000} {
			s := k.StateECI(ts)
			h := s.Position.Cross(s.Velocity)
			if h.Sub(h0).Norm() > 1e-6*h0.Norm() {
				t.Fatalf("angular momentum drift for %+v at t=%v: %v vs %v", e, ts, h, h0)
			}
		}
	}
}

func TestPropagatorEnergyConservedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		e := Elements{
			SemiMajorAxis: geom.EarthRadius + 500e3 + r.Float64()*1e6,
			Eccentricity:  r.Float64() * 0.2,
			Inclination:   r.Float64() * math.Pi / 2,
			RAAN:          r.Float64() * 2 * math.Pi,
			ArgPerigee:    r.Float64() * 2 * math.Pi,
			MeanAnomaly:   r.Float64() * 2 * math.Pi,
		}
		k, _ := NewKeplerPropagator(e, false)
		energy := func(s State) float64 {
			return s.Velocity.Dot(s.Velocity)/2 - geom.EarthMu/s.Position.Norm()
		}
		want := -geom.EarthMu / (2 * e.SemiMajorAxis)
		for _, ts := range []float64{0, 1234, 4321} {
			got := energy(k.StateECI(ts))
			if math.Abs(got-want) > 1e-6*math.Abs(want) {
				t.Fatalf("energy at t=%v: %v, want %v", ts, got, want)
			}
		}
	}
}

func TestJ2RAANRegressionDirection(t *testing.T) {
	// For prograde orbits (i < 90°) J2 makes the node regress (drift west);
	// for retrograde orbits (i > 90°, e.g. Telesat's 98.98°) it precesses
	// east — that is what makes sun-synchronous orbits possible.
	pro, _ := NewKeplerPropagator(Circular(550e3, geom.Rad(53), 1, 0), true)
	if pro.raanDot >= 0 {
		t.Errorf("prograde RAAN rate = %v, want negative", pro.raanDot)
	}
	retro, _ := NewKeplerPropagator(Circular(1015e3, geom.Rad(98.98), 1, 0), true)
	if retro.raanDot <= 0 {
		t.Errorf("retrograde RAAN rate = %v, want positive", retro.raanDot)
	}
}

func TestJ2MagnitudeSane(t *testing.T) {
	// At 550 km / 53°, nodal regression is about -5 degrees/day.
	k, _ := NewKeplerPropagator(Circular(550e3, geom.Rad(53), 0, 0), true)
	degPerDay := geom.Deg(k.raanDot * geom.SecondsPerDay)
	if degPerDay > -4 || degPerDay < -6 {
		t.Errorf("RAAN drift = %v deg/day, want roughly -5", degPerDay)
	}
}

func TestJ2SmallOverSimulationWindow(t *testing.T) {
	// Over the paper's 200 s experiment window the J2 and two-body positions
	// must agree to within a few kilometers, i.e. J2 does not change the
	// networking picture at that horizon.
	e := Circular(630e3, geom.Rad(51.9), 2, 1)
	twoBody, _ := NewKeplerPropagator(e, false)
	j2, _ := NewKeplerPropagator(e, true)
	maxDiff := 0.0
	for ts := 0.0; ts <= 200; ts += 10 {
		d := twoBody.PositionECI(ts).Distance(j2.PositionECI(ts))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 5000 {
		t.Errorf("J2 vs two-body diverged %v m over 200 s", maxDiff)
	}
}

func TestNewKeplerPropagatorRejectsInvalid(t *testing.T) {
	if _, err := NewKeplerPropagator(Elements{SemiMajorAxis: 10}, false); err == nil {
		t.Error("invalid elements accepted")
	}
}

func TestElementsAtWrapsAngles(t *testing.T) {
	k, _ := NewKeplerPropagator(circ550(), true)
	e := k.ElementsAt(1e6)
	for name, v := range map[string]float64{
		"MeanAnomaly": e.MeanAnomaly, "RAAN": e.RAAN, "ArgPerigee": e.ArgPerigee,
	} {
		if v <= -2*math.Pi || v >= 2*math.Pi || math.IsNaN(v) {
			t.Errorf("%s not wrapped: %v", name, v)
		}
	}
}
