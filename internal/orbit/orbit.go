// Package orbit implements the orbital mechanics substrate: Keplerian
// orbital elements, Kepler's-equation solving, two-body propagation to
// Earth-centered inertial coordinates, and the secular J2 perturbation model
// that captures the dominant drift of low-Earth orbits.
//
// The constellations studied in the paper (Starlink, Kuiper, Telesat) all
// use circular or near-circular orbits described by their FCC/ITU filings in
// terms of altitude, inclination, and plane/phase spacing; this package is
// the layer that turns those parameters into time-varying satellite
// positions.
package orbit

import (
	"errors"
	"fmt"
	"math"

	"hypatia/internal/geom"
)

// Elements is a classical Keplerian orbital element set at a reference
// epoch. Angles are radians, the semi-major axis is meters.
type Elements struct {
	SemiMajorAxis float64 // a, meters
	Eccentricity  float64 // e, dimensionless, in [0, 1)
	Inclination   float64 // i, radians
	RAAN          float64 // Ω, right ascension of the ascending node, radians
	ArgPerigee    float64 // ω, argument of perigee, radians
	MeanAnomaly   float64 // M, mean anomaly at epoch, radians
}

// Validate reports whether the element set describes a propagatable
// Earth orbit.
func (e Elements) Validate() error {
	if e.SemiMajorAxis <= geom.EarthRadius {
		return fmt.Errorf("orbit: semi-major axis %.0f m is inside the Earth", e.SemiMajorAxis)
	}
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return fmt.Errorf("orbit: eccentricity %v outside [0,1)", e.Eccentricity)
	}
	if math.IsNaN(e.Inclination) || math.IsNaN(e.RAAN) || math.IsNaN(e.ArgPerigee) || math.IsNaN(e.MeanAnomaly) {
		return errors.New("orbit: element set contains NaN")
	}
	return nil
}

// Circular builds the element set of a circular orbit at altitude h meters
// above the WGS72 equatorial radius, with the given inclination, RAAN, and
// initial mean anomaly (all radians). Circular orbits have no perigee, so
// the argument of perigee is zero and the mean anomaly doubles as the
// argument of latitude at epoch.
func Circular(h, inclination, raan, meanAnomaly float64) Elements {
	return Elements{
		SemiMajorAxis: geom.EarthRadius + h,
		Eccentricity:  0,
		Inclination:   inclination,
		RAAN:          raan,
		ArgPerigee:    0,
		MeanAnomaly:   meanAnomaly,
	}
}

// Altitude returns the orbit's mean altitude above the WGS72 equatorial
// radius, meters.
func (e Elements) Altitude() float64 { return e.SemiMajorAxis - geom.EarthRadius }

// MeanMotion returns the mean motion n = sqrt(mu/a^3) in rad/s.
func (e Elements) MeanMotion() float64 {
	return math.Sqrt(geom.EarthMu / (e.SemiMajorAxis * e.SemiMajorAxis * e.SemiMajorAxis))
}

// Period returns the orbital period in seconds. At Starlink's 550 km this is
// roughly 95.5 minutes — the "~100 minutes" the paper quotes.
func (e Elements) Period() float64 { return 2 * math.Pi / e.MeanMotion() }

// Speed returns the orbital speed of a circular orbit with this semi-major
// axis, m/s. At 550 km this exceeds 7.5 km/s (27,000 km/h).
func (e Elements) Speed() float64 { return math.Sqrt(geom.EarthMu / e.SemiMajorAxis) }

// SolveKepler solves Kepler's equation M = E - e*sin(E) for the eccentric
// anomaly E via Newton-Raphson, which converges quadratically for the
// eccentricities of interest (e < 0.9).
//
//hypatia:pure
func SolveKepler(meanAnomaly, eccentricity float64) float64 {
	m := math.Mod(meanAnomaly, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	if eccentricity == 0 {
		return m
	}
	// Standard starter: E0 = M + e*sin(M) is good for small e.
	ecc := m + eccentricity*math.Sin(m)
	for i := 0; i < 30; i++ {
		f := ecc - eccentricity*math.Sin(ecc) - m
		fp := 1 - eccentricity*math.Cos(ecc)
		d := f / fp
		ecc -= d
		if math.Abs(d) < 1e-13 {
			break
		}
	}
	return ecc
}

// TrueAnomaly converts an eccentric anomaly to the true anomaly for the
// given eccentricity.
//
//hypatia:pure
func TrueAnomaly(eccAnomaly, eccentricity float64) float64 {
	if eccentricity == 0 {
		return eccAnomaly
	}
	s := math.Sqrt(1+eccentricity) * math.Sin(eccAnomaly/2)
	c := math.Sqrt(1-eccentricity) * math.Cos(eccAnomaly/2)
	return 2 * math.Atan2(s, c)
}

// State is an inertial position/velocity pair, meters and m/s.
type State struct {
	Position geom.Vec3
	Velocity geom.Vec3
}

// propagateAt computes the two-body state from an element set whose mean
// anomaly has already been advanced to the target time.
//
//hypatia:pure
func propagateAt(e Elements) State {
	ecc := SolveKepler(e.MeanAnomaly, e.Eccentricity)
	nu := TrueAnomaly(ecc, e.Eccentricity)
	p := e.SemiMajorAxis * (1 - e.Eccentricity*e.Eccentricity)
	r := p / (1 + e.Eccentricity*math.Cos(nu))

	// Position and velocity in the perifocal frame.
	cosNu, sinNu := math.Cos(nu), math.Sin(nu)
	rp := geom.Vec3{X: r * cosNu, Y: r * sinNu, Z: 0}
	sqrtMuP := math.Sqrt(geom.EarthMu / p)
	vp := geom.Vec3{X: -sqrtMuP * sinNu, Y: sqrtMuP * (e.Eccentricity + cosNu), Z: 0}

	// Rotate perifocal -> ECI: Rz(Ω) Rx(i) Rz(ω).
	cosO, sinO := math.Cos(e.RAAN), math.Sin(e.RAAN)
	cosI, sinI := math.Cos(e.Inclination), math.Sin(e.Inclination)
	cosW, sinW := math.Cos(e.ArgPerigee), math.Sin(e.ArgPerigee)

	rot := func(v geom.Vec3) geom.Vec3 {
		// Rz(ω) applied first.
		x1 := cosW*v.X - sinW*v.Y
		y1 := sinW*v.X + cosW*v.Y
		z1 := v.Z
		// Rx(i).
		x2 := x1
		y2 := cosI*y1 - sinI*z1
		z2 := sinI*y1 + cosI*z1
		// Rz(Ω).
		return geom.Vec3{
			X: cosO*x2 - sinO*y2,
			Y: sinO*x2 + cosO*y2,
			Z: z2,
		}
	}
	return State{Position: rot(rp), Velocity: rot(vp)}
}

// Propagator produces inertial satellite states as a function of time
// (seconds since the constellation epoch). The //hypatia:noalloc contract
// rides on the interface: the forwarding-state hot paths call PositionECI
// once per satellite per instant, so every implementation must compute
// states in registers and stack values only.
//
//hypatia:pure
//hypatia:noalloc
type Propagator interface {
	// StateECI returns the inertial state at t seconds past epoch.
	StateECI(t float64) State
	// PositionECI returns just the inertial position at t seconds past
	// epoch; implementations may compute it more cheaply than StateECI.
	PositionECI(t float64) geom.Vec3
}

// KeplerPropagator propagates an element set under two-body dynamics with an
// optional secular J2 correction. With J2 enabled, the right ascension of
// the ascending node, the argument of perigee, and the mean anomaly drift at
// their secular rates; this is the same order of fidelity as the SGP4-based
// ns-3 mobility model Hypatia adapts (whose residual error the paper judges
// immaterial below a few hours of simulated time).
type KeplerPropagator struct {
	elements Elements
	n        float64 // mean motion, rad/s
	j2       bool
	raanDot  float64 // secular dΩ/dt, rad/s
	argpDot  float64 // secular dω/dt, rad/s
	mDot     float64 // secular mean-anomaly correction rate, rad/s
}

// NewKeplerPropagator builds a propagator for the given element set.
// If j2 is true, secular J2 drift is applied.
func NewKeplerPropagator(e Elements, j2 bool) (*KeplerPropagator, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	k := &KeplerPropagator{elements: e, n: e.MeanMotion(), j2: j2}
	if j2 {
		p := e.SemiMajorAxis * (1 - e.Eccentricity*e.Eccentricity)
		fac := 1.5 * geom.EarthJ2 * (geom.EarthRadius / p) * (geom.EarthRadius / p) * k.n
		cosI := math.Cos(e.Inclination)
		sinI2 := math.Sin(e.Inclination) * math.Sin(e.Inclination)
		k.raanDot = -fac * cosI
		k.argpDot = fac * (2 - 2.5*sinI2)
		k.mDot = fac * math.Sqrt(1-e.Eccentricity*e.Eccentricity) * (1 - 1.5*sinI2)
	}
	return k, nil
}

// Elements returns the epoch element set the propagator was built from.
func (k *KeplerPropagator) Elements() Elements { return k.elements }

// ElementsAt returns the osculating (secularly drifted) element set at time
// t seconds past epoch.
//
//hypatia:pure
func (k *KeplerPropagator) ElementsAt(t float64) Elements {
	e := k.elements
	e.MeanAnomaly = math.Mod(e.MeanAnomaly+(k.n+k.mDot)*t, 2*math.Pi)
	if k.j2 {
		e.RAAN = math.Mod(e.RAAN+k.raanDot*t, 2*math.Pi)
		e.ArgPerigee = math.Mod(e.ArgPerigee+k.argpDot*t, 2*math.Pi)
	}
	return e
}

// StateECI implements Propagator.
//
//hypatia:pure
func (k *KeplerPropagator) StateECI(t float64) State {
	return propagateAt(k.ElementsAt(t))
}

// PositionECI implements Propagator.
//
//hypatia:pure
func (k *KeplerPropagator) PositionECI(t float64) geom.Vec3 {
	return k.StateECI(t).Position
}
