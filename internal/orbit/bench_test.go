package orbit

import (
	"testing"

	"hypatia/internal/geom"
)

// Ablation: two-body vs J2-perturbed propagation cost. The J2 secular terms
// are precomputed, so per-call cost should be nearly identical — this bench
// documents that enabling J2 fidelity is free at simulation time.

func BenchmarkPropagateTwoBody(b *testing.B) {
	k, _ := NewKeplerPropagator(Circular(630e3, geom.Rad(51.9), 1, 2), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.PositionECI(float64(i % 6000))
	}
}

func BenchmarkPropagateJ2(b *testing.B) {
	k, _ := NewKeplerPropagator(Circular(630e3, geom.Rad(51.9), 1, 2), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.PositionECI(float64(i % 6000))
	}
}

func BenchmarkSolveKeplerEccentric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SolveKepler(float64(i%628)/100, 0.01)
	}
}
