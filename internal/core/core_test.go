package core

import (
	"math"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// miniConfig is a small constellation that still covers mid-latitudes.
func miniConfig() constellation.Config {
	return constellation.Config{
		Name: "Mini",
		Shells: []constellation.Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 16, SatsPerOrbit: 16,
			IncDeg: 53,
		}},
		MinElevDeg: 25,
	}
}

// fourCities returns a small, well-spread GS set from the main dataset.
func fourCities(t *testing.T) []groundstation.GS {
	t.Helper()
	all := groundstation.Top100Cities()
	var out []groundstation.GS
	for i, name := range []string{"Istanbul", "Nairobi", "Manila", "Rio de Janeiro"} {
		g := groundstation.MustByName(all, name)
		g.ID = i
		out = append(out, g)
	}
	return out
}

func TestNewRunDefaults(t *testing.T) {
	r, err := NewRun(RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cfg.Duration != 200*sim.Second {
		t.Errorf("duration default = %v", r.Cfg.Duration)
	}
	if r.Cfg.UpdateInterval != 100*sim.Millisecond {
		t.Errorf("interval default = %v", r.Cfg.UpdateInterval)
	}
	if r.Cfg.Net.QueuePackets != 100 {
		t.Errorf("net default = %+v", r.Cfg.Net)
	}
	if r.UpdatesInstalled() != 1 {
		t.Errorf("updates installed before Execute = %d", r.UpdatesInstalled())
	}
}

func TestNewRunRejectsBadInputs(t *testing.T) {
	if _, err := NewRun(RunConfig{GroundStations: fourCities(t)}); err == nil {
		t.Error("empty constellation accepted")
	}
	if _, err := NewRun(RunConfig{Constellation: miniConfig()}); err == nil {
		t.Error("no ground stations accepted")
	}
}

func TestForwardingUpdatesInstalledEveryInterval(t *testing.T) {
	r, err := NewRun(RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
		Duration:       2 * sim.Second,
		UpdateInterval: 100 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Execute()
	// t=0 plus 20 periodic updates (t = 0.1 .. 2.0).
	if got := r.UpdatesInstalled(); got != 21 {
		t.Errorf("updates installed = %d, want 21", got)
	}
}

func TestPingOverRun(t *testing.T) {
	r, err := NewRun(RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
		Duration:       2 * sim.Second,
		ActiveDstGS:    []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := transport.NewPinger(r.Net, r.Flows, 0, 1, transport.PingConfig{Interval: 10 * sim.Millisecond})
	p.Start()
	r.Execute()
	replied := 0
	for _, res := range p.Results() {
		if res.Replied {
			replied++
		}
	}
	if replied < 150 {
		t.Errorf("only %d pings replied over 2 s", replied)
	}
	// Measured RTTs must match the snapshot computation within a couple of
	// milliseconds (the paper's ping-vs-computed validation).
	snap := r.Topo.Snapshot(1.0)
	want := snap.RTT(0, 1)
	if math.IsInf(want, 1) {
		t.Skip("pair disconnected in mini constellation")
	}
	var at1s float64
	for _, res := range p.Results() {
		if res.Replied && res.SentAt >= sim.Second {
			at1s = res.RTT.Seconds()
			break
		}
	}
	if math.Abs(at1s-want) > 0.005 {
		t.Errorf("ping RTT %v vs computed %v", at1s, want)
	}
}

func TestPartialForwardingTableMatchesFull(t *testing.T) {
	cfg := RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
	}.withDefaults()
	c, _ := constellation.Generate(cfg.Constellation)
	topo, _ := routing.NewTopology(c, cfg.GroundStations, routing.GSLFree)
	snap := topo.Snapshot(5)
	full := snap.ForwardingTable()
	partial := PartialForwardingTable(snap, []int{1, 3}, 4)
	for node := 0; node < topo.NumNodes(); node++ {
		for _, gs := range []int{1, 3} {
			if full.NextHop(node, gs) != partial.NextHop(node, gs) {
				t.Fatalf("partial differs at node %d dst %d", node, gs)
			}
		}
		for _, gs := range []int{0, 2} {
			if partial.NextHop(node, gs) != -1 {
				t.Fatalf("inactive destination %d has entry at node %d", gs, node)
			}
		}
	}
}

func TestForwardingTableParallelDeterministic(t *testing.T) {
	cfg := RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
	}.withDefaults()
	c, _ := constellation.Generate(cfg.Constellation)
	topo, _ := routing.NewTopology(c, cfg.GroundStations, routing.GSLFree)
	snap := topo.Snapshot(42)
	sequential := snap.ForwardingTable()
	for trial := 0; trial < 3; trial++ {
		par := ForwardingTableParallel(snap, 8)
		for node := 0; node < topo.NumNodes(); node++ {
			for gs := 0; gs < topo.NumGS(); gs++ {
				if sequential.NextHop(node, gs) != par.NextHop(node, gs) {
					t.Fatalf("parallel table differs at node %d dst %d", node, gs)
				}
			}
		}
	}
}

func TestGSIndexByName(t *testing.T) {
	r, err := NewRun(RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
		Duration:       sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := r.GSIndexByName("Manila")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Errorf("Manila index = %d", idx)
	}
	if _, err := r.GSIndexByName("Atlantis"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTCPOverDynamicRun(t *testing.T) {
	// End-to-end: a TCP flow over a moving constellation with forwarding
	// updates must sustain throughput.
	r, err := NewRun(RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
		Duration:       10 * sim.Second,
		ActiveDstGS:    []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := transport.NewTCPFlow(r.Net, r.Flows, 0, 1, transport.TCPConfig{})
	f.Start()
	r.Execute()
	if f.AckedSegments < 100 {
		t.Errorf("TCP moved only %d segments in 10 s", f.AckedSegments)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		r, err := NewRun(RunConfig{
			Constellation:  miniConfig(),
			GroundStations: fourCities(t),
			Duration:       5 * sim.Second,
			ActiveDstGS:    []int{0, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		f := transport.NewTCPFlow(r.Net, r.Flows, 0, 1, transport.TCPConfig{})
		f.Start()
		r.Execute()
		return f.AckedSegments, r.Sim.Processed()
	}
	a1, e1 := run()
	a2, e2 := run()
	if a1 != a2 || e1 != e2 {
		t.Errorf("runs differ: acked %d vs %d, events %d vs %d", a1, a2, e1, e2)
	}
}

func TestCustomRoutingStrategyAvoidNodes(t *testing.T) {
	// Route around a "failed" satellite: the one on the default path.
	cfg := RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
		Duration:       sim.Second,
		ActiveDstGS:    []int{0, 1},
	}
	base, err := NewRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := base.Topo.Snapshot(0).Path(0, 1)
	if path == nil || len(path) < 3 {
		t.Skip("pair disconnected in mini constellation")
	}
	failed := path[1] // first satellite on the default path

	cfg.Strategy = AvoidNodes(ShortestPath, failed)
	run, err := NewRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := transport.NewPinger(run.Net, run.Flows, 0, 1, transport.PingConfig{Interval: 100 * sim.Millisecond})
	p.Start()

	// Observe which nodes packets actually traverse.
	visited := map[int]bool{}
	run.Net.SetTransmitHook(func(ti sim.TransmitInfo) {
		visited[ti.From] = true
		visited[ti.To] = true
	})
	run.Execute()

	replied := 0
	for _, r := range p.Results() {
		if r.Replied {
			replied++
		}
	}
	if replied == 0 {
		t.Fatal("no pings survived rerouting around the failed satellite")
	}
	if visited[failed] {
		t.Errorf("traffic still traversed excluded satellite %d", failed)
	}
}

func TestAvoidNodesExcludedNeverOnPath(t *testing.T) {
	// An AvoidNodes table must never route any packet through an excluded
	// node: walk PathVia from every source toward every destination and
	// check each hop.
	cfg := RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
	}.withDefaults()
	c, _ := constellation.Generate(cfg.Constellation)
	topo, _ := routing.NewTopology(c, cfg.GroundStations, routing.GSLFree)
	snap := topo.Snapshot(7)

	// Exclude the first two satellites on the 0->1 default path, if any.
	avoid := map[int]bool{}
	if path, _ := snap.Path(0, 1); len(path) >= 4 {
		avoid[path[1]] = true
		avoid[path[2]] = true
	} else {
		avoid[0] = true
		avoid[1] = true
	}
	var nodes []int
	for n := range avoid {
		nodes = append(nodes, n)
	}
	ft := AvoidNodes(ShortestPath, nodes...)(snap, nil, 2)

	walked := 0
	for src := 0; src < topo.NumNodes(); src++ {
		for gs := 0; gs < topo.NumGS(); gs++ {
			path := ft.PathVia(topo, src, gs)
			if path == nil {
				continue
			}
			walked++
			// The source itself may be an excluded node (it still appears
			// as the walk's origin); no later hop may be excluded.
			for _, v := range path[1:] {
				if avoid[v] {
					t.Fatalf("path %d->gs%d traverses excluded node %d: %v", src, gs, v, path)
				}
			}
		}
	}
	if walked == 0 {
		t.Fatal("no reachable pairs left after exclusion; test exercised nothing")
	}
	// Excluded nodes themselves must have no outgoing next hops.
	for n := range avoid {
		for gs := 0; gs < topo.NumGS(); gs++ {
			if topo.GSNode(gs) != n && ft.NextHop(n, gs) != -1 {
				t.Errorf("excluded node %d has next hop toward gs %d", n, gs)
			}
		}
	}
}

func TestAvoidNodesAllExcludedUnreachable(t *testing.T) {
	// Excluding every node yields a table where nothing is reachable.
	cfg := RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
	}.withDefaults()
	c, _ := constellation.Generate(cfg.Constellation)
	topo, _ := routing.NewTopology(c, cfg.GroundStations, routing.GSLFree)
	snap := topo.Snapshot(0)
	all := make([]int, topo.NumNodes())
	for i := range all {
		all[i] = i
	}
	ft := AvoidNodes(ShortestPath, all...)(snap, nil, 2)
	for node := 0; node < topo.NumNodes(); node++ {
		for gs := 0; gs < topo.NumGS(); gs++ {
			if node == topo.GSNode(gs) {
				continue // a destination trivially "reaches" itself
			}
			if nh := ft.NextHop(node, gs); nh != -1 {
				t.Fatalf("all-excluded graph: node %d still has next hop %d toward gs %d", node, nh, gs)
			}
		}
	}
}

func TestWithoutNodesPreservesOtherPaths(t *testing.T) {
	cfg := RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
	}.withDefaults()
	c, _ := constellation.Generate(cfg.Constellation)
	topo, _ := routing.NewTopology(c, cfg.GroundStations, routing.GSLFree)
	snap := topo.Snapshot(0)
	pruned := snap.WithoutNodes(map[int]bool{0: true})
	if pruned.G.N() != snap.G.N() {
		t.Fatal("node count changed")
	}
	if len(pruned.G.Neighbors(0)) != 0 {
		t.Error("excluded node still has edges")
	}
	// Edge count drops by exactly node 0's degree.
	if snap.G.NumEdges()-pruned.G.NumEdges() != len(snap.G.Neighbors(0)) {
		t.Errorf("edges: %d -> %d, node degree %d",
			snap.G.NumEdges(), pruned.G.NumEdges(), len(snap.G.Neighbors(0)))
	}
}
