package core

import (
	"sync"
	"sync/atomic"

	"hypatia/internal/routing"
	"hypatia/internal/sim"
)

// pipeline is the bounded-lookahead forwarding-state precomputation engine.
// The run's update instants are known in advance and each instant's
// (snapshot, forwarding table) pair is a pure function of its time, so a
// worker pool computes tables for future instants concurrently with DES
// execution; the install event for instant i then pops a completed table
// (next) instead of stalling the event loop on a snapshot build plus a
// per-destination Dijkstra sweep.
//
// Overlap cannot change simulation results: tables are delivered strictly
// in instant order regardless of completion order, each table's content
// depends only on the topology and its instant (never on DES state or on
// other workers), and the event loop itself stays single-threaded — the
// only code that runs concurrently with it is this precomputation of
// values the serial engine would have computed identically, later.
//
// Allocation reuse is layered on top: each worker owns a snapshot arena
// (position slab, graph edge slabs, visibility scratch — routing.
// SnapshotInto) and Dijkstra scratch (dist/prev plus the heap workspace),
// and table buffers come from a shared routing.TablePool. The consumer
// releases each table back to the pool once the next one is installed, so
// a steady-state run cycles ~lookahead buffers total.
type pipeline struct {
	topo     *routing.Topology
	strategy Strategy
	active   []int
	inner    int // per-instant worker budget handed to a custom Strategy
	times    []sim.Time

	pool routing.TablePool
	// tokens is the admission semaphore: it starts with lookahead tokens,
	// a worker takes one before claiming an instant, and the consumer puts
	// one back per pop. Claimed-but-unpopped instants therefore never
	// exceed the lookahead, bounding memory. Taking the token BEFORE
	// claiming the next instant index keeps token holders identical to the
	// lowest unclaimed instants, which rules out the deadlock where
	// buffered high instants starve the low instant the consumer waits on.
	tokens  chan struct{}
	results []chan *routing.ForwardingTable
	nextJob atomic.Int64
	nextPop int
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

// newPipeline starts the precomputation engine over the given update
// instants. workers bounds total parallelism, lookahead bounds how many
// instants may be in flight (computing or completed-but-uninstalled) ahead
// of the DES.
//
// With incremental set (and no custom strategy), the worker pool is
// replaced by a single producer goroutine owning a routing.
// IncrementalEngine: between consecutive instants every link weight drifts
// slightly but the per-destination settle orders barely move, so re-solving
// each tree in its carried order (heap work only where the order went
// stale) over the delta layer's cached-visibility snapshots is far cheaper
// than recomputing each instant from scratch — and the chain is inherently
// sequential, so one goroutine replaces the pool. Tables are bitwise identical either way (the
// hypatia_checks build re-derives every column from scratch inside the
// engine and the differential suite proves the same end to end), so the
// choice of engine cannot affect simulation results. Custom strategies are
// opaque functions and always take the from-scratch worker pool.
func newPipeline(topo *routing.Topology, strategy Strategy, active []int, workers, lookahead int, times []sim.Time, incremental bool) *pipeline {
	if workers < 1 {
		workers = 1
	}
	if lookahead < 1 {
		lookahead = 1
	}
	width := workers
	if width > lookahead {
		width = lookahead
	}
	if width > len(times) {
		width = len(times)
	}
	p := &pipeline{
		topo:     topo,
		strategy: strategy,
		active:   active,
		inner:    max(1, workers/max(1, width)),
		times:    times,
		tokens:   make(chan struct{}, lookahead),
		results:  make([]chan *routing.ForwardingTable, len(times)),
		done:     make(chan struct{}),
	}
	for i := range p.results {
		p.results[i] = make(chan *routing.ForwardingTable, 1)
	}
	for i := 0; i < lookahead; i++ {
		p.tokens <- struct{}{}
	}
	if incremental && strategy == nil {
		p.wg.Add(1)
		go p.producer()
		return p
	}
	for w := 0; w < width; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// producer is the incremental counterpart of the worker pool: one goroutine
// walks the instants in order, repairing forwarding state across each step,
// under the same token discipline (one token per in-flight instant, returned
// by the consumer's pop), so the lookahead memory bound is unchanged.
// The producer holds the machine-checked no-allocation contract for its
// steady-state loop: the repair chain reuses the engine's carried arenas
// end to end, so after the one-time engine construction (waived below as
// amortized setup) each instant is produced without touching the heap.
//
//hypatia:noalloc
func (p *pipeline) producer() {
	defer p.wg.Done()
	eng := routing.NewIncrementalEngine(p.topo, &p.pool) //hypatia:allocs(amortized) one-time setup, amortized over the run's instants
	for i := range p.times {
		select {
		case <-p.tokens:
		case <-p.done:
			return
		}
		// Buffered (cap 1) and written exactly once per instant: the send
		// never blocks.
		p.results[i] <- eng.Step(p.times[i].Seconds(), p.active)
	}
}

// worker claims instants in order and computes their forwarding state with
// worker-owned arenas. Every token take is matched by exactly one return —
// by the consumer when the instant's table is popped, or here when the
// claim is past the end of the schedule — so the semaphore never exceeds
// its capacity.
func (p *pipeline) worker() {
	defer p.wg.Done()
	var snap *routing.Snapshot
	var sc routing.StrategyScratch
	for {
		select {
		case <-p.tokens:
		case <-p.done:
			return
		}
		i := int(p.nextJob.Add(1)) - 1
		if i >= len(p.times) {
			p.tokens <- struct{}{}
			return
		}
		snap = p.topo.SnapshotInto(p.times[i].Seconds(), snap)
		var ft *routing.ForwardingTable
		if p.strategy != nil {
			ft = p.strategy(snap, p.active, p.inner)
		} else {
			ft = shortestPathPooled(snap, p.active, &p.pool, &sc)
		}
		// Buffered (cap 1) and written exactly once per instant: the send
		// never blocks.
		p.results[i] <- ft
	}
}

// next returns the forwarding table for the next update instant, in order,
// blocking until its precomputation completes. It must be called exactly
// once per instant, from the (single-threaded) event loop.
func (p *pipeline) next() *routing.ForwardingTable {
	ft := <-p.results[p.nextPop]
	p.nextPop++
	p.tokens <- struct{}{}
	return ft
}

// close shuts the worker pool down and waits for it to exit. Only needed
// when a run is abandoned before all update instants were consumed; a run
// executed to completion drains the pipeline and the workers exit on their
// own. Idempotent; must not race with next.
func (p *pipeline) close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}

// shortestPathPooled is the engine's default-path equivalent of the
// ShortestPath strategy: per-destination Dijkstra trees, computed serially
// with reused scratch (cross-instant parallelism in the pipeline replaces
// the per-destination fan-out), into a pooled table. Results are identical
// to Snapshot.ForwardingTable / PartialForwardingTable.
//
//hypatia:pure
//hypatia:noalloc
func shortestPathPooled(s *routing.Snapshot, active []int, pool *routing.TablePool, sc *routing.StrategyScratch) *routing.ForwardingTable {
	ft := pool.Empty(s.T, s.Topo.NumNodes(), s.Topo.NumGS())
	if active == nil {
		for gs := 0; gs < s.Topo.NumGS(); gs++ {
			sc.Dist, sc.Prev = s.FromGSScratch(gs, sc.Dist, sc.Prev, &sc.Dijkstra)
			ft.SetDestination(gs, sc.Prev)
		}
		return ft
	}
	for _, gs := range active {
		sc.Dist, sc.Prev = s.FromGSScratch(gs, sc.Dist, sc.Prev, &sc.Dijkstra)
		ft.SetDestination(gs, sc.Prev)
	}
	return ft
}
