package core

import (
	"testing"

	"hypatia/internal/check/checktest"
	"hypatia/internal/constellation"
	"hypatia/internal/routing"
)

// The AllocGuard tests are the runtime half of the //hypatia:noalloc
// contract on the precomputation engine's hot paths; see
// internal/check/checktest.

// TestAllocGuardShortestPathPooled pins the pipeline workers' per-instant
// sweep: pooled table buffers plus caller-owned Dijkstra scratch make the
// steady-state computation allocation-free once the release cycle returns
// each table to the pool.
func TestAllocGuardShortestPathPooled(t *testing.T) {
	c, err := constellation.Generate(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := routing.NewTopology(c, fourCities(t), routing.GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	snap := topo.Snapshot(0)
	var pool routing.TablePool
	var sc routing.StrategyScratch
	active := []int{0, 1, 2, 3}
	checktest.AllocGuard(t, "shortestPathPooled", 0, 1, func() {
		shortestPathPooled(snap, active, &pool, &sc).Release()
	})
}
