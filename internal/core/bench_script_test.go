package core

import (
	"os/exec"
	"strings"
	"testing"
)

// TestBenchScriptJSONSchema smoke-tests the JSON rendering in
// scripts/bench.sh without running any benchmarks: --selftest feeds a
// canned bench log through the same awk program that builds
// BENCH_routing.json and asserts the schema — per-benchmark entries plus
// the serial_over_incremental and serial_over_pipelined ratios — comes out
// right. Schema regressions then fail the test suite instead of the next
// bench run.
func TestBenchScriptJSONSchema(t *testing.T) {
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	cmd := exec.Command("bash", "scripts/bench.sh", "--selftest")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bench.sh --selftest failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "bench.sh --selftest: ok") {
		t.Fatalf("bench.sh --selftest did not report ok:\n%s", out)
	}
}
