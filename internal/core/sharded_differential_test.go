package core

import (
	"bytes"
	"math/rand"
	"testing"

	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/trace"
	"hypatia/internal/transport"
)

// shardedScenario is one randomized end-to-end run shape: a traffic mix
// over the four-city mini constellation plus the knobs that stress the
// sharded engine (update cadence, queue pressure, link loss).
type shardedScenario struct {
	policy   routing.GSLPolicy
	duration sim.Time
	interval sim.Time
	queue    int
	loss     bool
	pings    []pingSpec
	udps     []udpSpec
	tcps     []tcpSpec
}

type pingSpec struct {
	src, dst int
	interval sim.Time
	delay    sim.Time
}

type udpSpec struct {
	src, dst int
	rateBps  float64
	delay    sim.Time
}

type tcpSpec struct {
	src, dst int
	delay    sim.Time
}

// drawScenario derives every scenario parameter from the rng up front, so
// serial and sharded runs of the same seed are built identically.
func drawScenario(rng *rand.Rand, policy routing.GSLPolicy, maxDur sim.Time) shardedScenario {
	sc := shardedScenario{
		policy:   policy,
		duration: 400*sim.Millisecond + sim.Time(rng.Intn(9))*100*sim.Millisecond,
		interval: []sim.Time{50, 100, 200}[rng.Intn(3)] * sim.Millisecond,
		loss:     rng.Intn(2) == 0,
	}
	if sc.duration > maxDur {
		sc.duration = maxDur
	}
	if rng.Intn(2) == 0 {
		sc.queue = 5 // force queue drops under the UDP/TCP load
	}
	pair := func() (int, int) {
		src := rng.Intn(4)
		dst := rng.Intn(3)
		if dst >= src {
			dst++
		}
		return src, dst
	}
	usDelay := func() sim.Time { return sim.Time(rng.Intn(30_000)) * sim.Microsecond }
	for i := 1 + rng.Intn(2); i > 0; i-- {
		src, dst := pair()
		sc.pings = append(sc.pings, pingSpec{
			src: src, dst: dst,
			interval: sim.Time(1+rng.Intn(20)) * sim.Millisecond,
			delay:    usDelay(),
		})
	}
	for i := rng.Intn(3); i > 0; i-- {
		src, dst := pair()
		sc.udps = append(sc.udps, udpSpec{
			src: src, dst: dst,
			rateBps: 0.5e6 + rng.Float64()*4.5e6,
			delay:   usDelay(),
		})
	}
	for i := rng.Intn(3); i > 0; i-- {
		src, dst := pair()
		sc.tcps = append(sc.tcps, tcpSpec{src: src, dst: dst, delay: usDelay()})
	}
	return sc
}

// shardedOutcome is everything a run observably produces: the full packet
// trace plus the network's end-of-run counters. Processed() is deliberately
// absent — sharded runs process extra per-shard copies of install events.
type shardedOutcome struct {
	trace     []byte
	delivered uint64
	drops     map[sim.DropReason]uint64
}

// executeScenario wires the scenario into a Run with the given shard count
// (0 = serial) and returns its observable outcome.
func executeScenario(t *testing.T, sc shardedScenario, shards int) shardedOutcome {
	t.Helper()
	net := sim.DefaultConfig()
	if sc.queue > 0 {
		net.QueuePackets = sc.queue
	}
	if sc.loss {
		net.LossModel = func(from, to int, at sim.Time) bool {
			return (uint64(from)*2654435761+uint64(to)*40503+uint64(at))%131 == 0
		}
	}
	run, err := NewRun(RunConfig{
		Constellation:  miniConfig(),
		GroundStations: fourCities(t),
		GSLPolicy:      sc.policy,
		Duration:       sc.duration,
		UpdateInterval: sc.interval,
		Net:            net,
		Shards:         shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := trace.New(&buf, nil)
	tr.Attach(run.Net)
	for _, p := range sc.pings {
		transport.NewPinger(run.Net, run.Flows, p.src, p.dst,
			transport.PingConfig{Interval: p.interval}).StartAfter(p.delay)
	}
	for _, u := range sc.udps {
		transport.NewUDPFlow(run.Net, run.Flows, u.src, u.dst,
			transport.UDPConfig{RateBps: u.rateBps}).StartAfter(u.delay)
	}
	for _, f := range sc.tcps {
		transport.NewTCPFlow(run.Net, run.Flows, f.src, f.dst,
			transport.TCPConfig{}).StartAfter(f.delay)
	}
	run.Execute()
	if err := tr.Detach(); err != nil {
		t.Fatal(err)
	}
	out := shardedOutcome{
		trace:     buf.Bytes(),
		delivered: run.Net.Delivered(),
		drops:     map[sim.DropReason]uint64{},
	}
	for r := sim.DropQueue; r <= sim.DropLink; r++ {
		out.drops[r] = run.Net.Drops(r)
	}
	return out
}

// compareOutcomes requires byte-identical traces and identical counters.
func compareOutcomes(t *testing.T, label string, got, want shardedOutcome) {
	t.Helper()
	if !bytes.Equal(got.trace, want.trace) {
		i := 0
		for i < len(got.trace) && i < len(want.trace) && got.trace[i] == want.trace[i] {
			i++
		}
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		ctx := func(b []byte) string {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return ""
			}
			return string(b[lo:h])
		}
		t.Errorf("%s: trace diverges at byte %d (%d vs %d bytes)\n got: …%s…\nwant: …%s…",
			label, i, len(got.trace), len(want.trace), ctx(got.trace), ctx(want.trace))
	}
	if got.delivered != want.delivered {
		t.Errorf("%s: delivered = %d, want %d", label, got.delivered, want.delivered)
	}
	for r := sim.DropQueue; r <= sim.DropLink; r++ {
		if got.drops[r] != want.drops[r] {
			t.Errorf("%s: drops[%v] = %d, want %d", label, r, got.drops[r], want.drops[r])
		}
	}
}

// TestShardedDifferential is the acceptance harness for the sharded engine:
// randomized end-to-end scenarios — both GSL policies, mixed ping/UDP/TCP
// traffic, randomized start offsets, update cadences, queue pressure, and
// link loss — each run serially and at several shard counts, every sharded
// run required to reproduce the serial packet trace byte for byte.
func TestShardedDifferential(t *testing.T) {
	seeds := 13
	if testing.Short() {
		seeds = 3
	}
	comparisons, traffic := 0, uint64(0)
	for _, policy := range []routing.GSLPolicy{routing.GSLFree, routing.GSLNearestOnly} {
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(1000*int(policy) + seed)))
			sc := drawScenario(rng, policy, 1200*sim.Millisecond)
			want := executeScenario(t, sc, 0)
			traffic += want.delivered
			for _, shards := range []int{2, 3, 5} {
				got := executeScenario(t, sc, shards)
				compareOutcomes(t, labelFor(policy, seed, shards), got, want)
				comparisons++
				if t.Failed() {
					t.FailNow() // one full divergence dump is enough
				}
			}
		}
	}
	if comparisons < 50 && !testing.Short() {
		t.Fatalf("only %d serial-vs-sharded comparisons run; the acceptance bar is 50", comparisons)
	}
	if traffic == 0 {
		t.Fatal("scenarios delivered no traffic; the differential proved nothing")
	}
	t.Logf("%d comparisons across randomized scenarios, %d packets delivered in serial references", comparisons, traffic)
}

func labelFor(policy routing.GSLPolicy, seed, shards int) string {
	p := "free"
	if policy == routing.GSLNearestOnly {
		p = "nearest"
	}
	return "policy=" + p + " seed=" + string(rune('0'+seed/10)) + string(rune('0'+seed%10)) + " shards=" + string(rune('0'+shards))
}

// FuzzShardedHandoffs lets the fuzzer pick the scenario shape and shard
// count. Every input replays a full serial-vs-sharded comparison over a
// short run, so any counterexample is a real byte-level trace divergence —
// a broken lookahead window, a misordered handoff, or a journal replay bug.
func FuzzShardedHandoffs(f *testing.F) {
	f.Add(int64(1), uint8(0), false, uint8(0))
	f.Add(int64(7), uint8(2), true, uint8(3))
	f.Add(int64(42), uint8(4), false, uint8(7))
	f.Add(int64(9999), uint8(1), true, uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, shardSel uint8, nearest bool, mix uint8) {
		policy := routing.GSLFree
		if nearest {
			policy = routing.GSLNearestOnly
		}
		rng := rand.New(rand.NewSource(seed))
		sc := drawScenario(rng, policy, 500*sim.Millisecond)
		// mix prunes flow classes so the fuzzer can isolate interactions.
		if mix&1 != 0 {
			sc.udps = nil
		}
		if mix&2 != 0 {
			sc.tcps = nil
		}
		if mix&4 != 0 && len(sc.pings) > 1 {
			sc.pings = sc.pings[:1]
		}
		shards := 2 + int(shardSel)%5
		want := executeScenario(t, sc, 0)
		got := executeScenario(t, sc, shards)
		compareOutcomes(t, "fuzz", got, want)
	})
}
