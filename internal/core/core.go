// Package core is the Hypatia orchestrator: it wires a constellation,
// ground stations, routing, and the packet simulator into a runnable
// experiment. It owns the paper's two-layer time model — forwarding state
// recomputed at a fixed granularity (default 100 ms) and installed as
// simulator events, while link latencies evolve continuously in between —
// and exposes the hooks experiments use to attach transports and record
// metrics.
package core

import (
	"fmt"
	"sync"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// RunConfig describes one packet-level simulation run.
type RunConfig struct {
	// Constellation to generate (e.g. constellation.Kuiper()).
	Constellation constellation.Config
	// GroundStations to place (e.g. groundstation.Top100Cities()).
	GroundStations []groundstation.GS
	// GSLPolicy is how ground stations attach to satellites.
	GSLPolicy routing.GSLPolicy
	// Duration of the simulation; default 200 s (the paper's horizon).
	Duration sim.Time
	// UpdateInterval is the forwarding-state granularity; default 100 ms.
	UpdateInterval sim.Time
	// Net carries link rates and queue sizes; zero value means
	// sim.DefaultConfig().
	Net sim.Config
	// ActiveDstGS optionally restricts forwarding-state computation to the
	// ground stations that actually receive traffic, which keeps pair
	// studies cheap. Nil computes state for every ground station. The set
	// is captured at NewRun: the pipeline precomputes future instants from
	// it, so mutating the config after construction has no effect.
	ActiveDstGS []int
	// Workers bounds the parallelism of forwarding-state computation;
	// 0 uses a sensible default. Parallelism does not affect results:
	// per-instant state is a pure function of time and per-destination
	// trees are independent.
	Workers int
	// Lookahead bounds how many update instants the forwarding-state
	// pipeline may precompute ahead of the simulation clock (each
	// in-flight instant holds one table arena, so this caps memory);
	// 0 uses a sensible default of 2×Workers.
	Lookahead int
	// Strategy optionally replaces shortest-path routing: it is called at
	// every forwarding update with the current snapshot, the active
	// destination set (nil = all), and the worker budget, and returns the
	// forwarding state to install. This is the paper's "any routing
	// strategy implementable with static routes" extension point.
	Strategy Strategy
	// Shards selects the sharded conservative-parallel event loop: > 1
	// partitions the network's nodes across that many concurrent engines
	// advancing inside a propagation-delay lookahead horizon
	// (sim.Network.RunSharded); 0 or 1 runs the serial loop. Sharding does
	// not affect results — delivery/drop/transmit traces are byte-identical
	// to the serial loop (proven by the sharded differential suite) — but
	// Simulator.Processed additionally counts each shard's copy of the
	// forwarding-install events. Shard counts above the satellite count are
	// clamped.
	Shards int
	// NoIncremental disables the incremental forwarding-state engine and
	// recomputes every instant from scratch on the worker pool. The default
	// (incremental) path carries per-destination settle orders across
	// instants and re-solves each tree in that order over the delta layer's
	// cached-visibility snapshots; its tables are
	// bitwise identical to the from-scratch ones — proven by the oracle in
	// hypatia_checks builds and the differential suite — so this switch
	// exists for A/B benchmarking, not correctness. Custom strategies are
	// always computed from scratch regardless.
	NoIncremental bool
}

// Strategy computes a forwarding table from a topology snapshot. active
// lists the destination ground stations that will receive traffic (nil
// means all); workers bounds internal parallelism.
//
// Lifetime contract: the snapshot is owned by the engine and is only valid
// for the duration of the call — its arenas are reused for later instants.
// A strategy must not retain s (or s.G, s.Pos) after returning; derived
// snapshots such as s.WithoutNodes are fresh and safe to keep. A strategy
// must be a pure function of (s, active): the pipelined engine calls it
// concurrently for different instants, and determinism of the simulation
// rests on its output depending only on its inputs.
//
//hypatia:pure
type Strategy func(s *routing.Snapshot, active []int, workers int) *routing.ForwardingTable

// ShortestPath is the default routing strategy: per-destination Dijkstra
// over link distances (lowest propagation latency), as in the paper.
func ShortestPath(s *routing.Snapshot, active []int, workers int) *routing.ForwardingTable {
	if active == nil {
		return ForwardingTableParallel(s, workers)
	}
	return PartialForwardingTable(s, active, workers)
}

// AvoidNodes wraps a strategy so the given nodes are excluded from all
// paths — e.g. satellites marked failed or in maintenance. It recomputes
// the inner strategy on a snapshot whose graph omits the nodes' edges.
func AvoidNodes(inner Strategy, nodes ...int) Strategy {
	avoid := map[int]bool{}
	for _, n := range nodes {
		avoid[n] = true
	}
	return func(s *routing.Snapshot, active []int, workers int) *routing.ForwardingTable {
		pruned := s.WithoutNodes(avoid)
		return inner(pruned, active, workers)
	}
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Duration == 0 {
		c.Duration = 200 * sim.Second
	}
	if c.UpdateInterval == 0 {
		c.UpdateInterval = 100 * sim.Millisecond
	}
	c.Net = c.Net.WithDefaults()
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Lookahead == 0 {
		c.Lookahead = 2 * c.Workers
	}
	return c
}

// Run is a fully wired simulation ready for transports to be attached.
type Run struct {
	Cfg   RunConfig
	Topo  *routing.Topology
	Sim   *sim.Simulator
	Net   *sim.Network
	Flows *transport.FlowIDs

	pipe             *pipeline
	installTimes     []sim.Time // sharded runs: update instants after t=0
	updatesInstalled int
}

// NewRun generates the constellation, builds the network, starts the
// forwarding-state pipeline, installs the t=0 state, and schedules periodic
// forwarding updates across the run's duration. Each update event pops the
// precomputed table for its instant from the pipeline — tables for future
// instants are computed concurrently with DES execution — and recycles the
// table it displaces.
func NewRun(cfg RunConfig) (*Run, error) {
	cfg = cfg.withDefaults()
	c, err := constellation.Generate(cfg.Constellation)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	topo, err := routing.NewTopology(c, cfg.GroundStations, cfg.GSLPolicy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := sim.NewSimulator()
	net, err := sim.NewNetwork(s, topo, cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	r := &Run{Cfg: cfg, Topo: topo, Sim: s, Net: net, Flows: &transport.FlowIDs{}}

	times := make([]sim.Time, 0, int(cfg.Duration/cfg.UpdateInterval)+1)
	for at := sim.Time(0); at <= cfg.Duration; at += cfg.UpdateInterval {
		times = append(times, at)
	}
	r.pipe = newPipeline(topo, cfg.Strategy, cfg.ActiveDstGS, cfg.Workers, cfg.Lookahead, times, !cfg.NoIncremental)

	net.InstallForwarding(r.pipe.next())
	r.updatesInstalled++
	if cfg.Shards > 1 {
		// Sharded runs install tables via per-shard evInstall events: the
		// coordinator pops each master here, clones it per shard, and
		// releases it (sim.Network.RunSharded).
		r.installTimes = times[1:]
		net.SetTableSource(r.pipe.next)
		return r, nil
	}
	for _, at := range times[1:] {
		s.ScheduleAt(at, func() {
			// Install the precomputed table for this instant; the displaced
			// table is never consulted again (next hops are resolved at
			// enqueue time), so its arena recycles immediately.
			net.InstallForwarding(r.pipe.next()).Release()
			r.updatesInstalled++
		})
	}
	return r, nil
}

// Close shuts down the run's forwarding-state pipeline. It is only needed
// when a run is abandoned before Execute completes (e.g. after Sim.Stop);
// a run executed to its full duration drains the pipeline on its own.
// Idempotent. The run must not be Executed after Close.
func (r *Run) Close() { r.pipe.close() }

// Execute runs the simulation to completion and returns the virtual
// duration simulated. With Cfg.Shards > 1 the run executes on the sharded
// conservative-parallel loop; it may only be Executed once in that mode
// (the per-shard install schedule is consumed by the run).
func (r *Run) Execute() sim.Time {
	if r.Cfg.Shards > 1 {
		r.updatesInstalled += r.Net.RunSharded(r.Cfg.Duration, r.Cfg.Shards, r.installTimes)
		r.installTimes = nil
		return r.Cfg.Duration
	}
	r.Sim.Run(r.Cfg.Duration)
	return r.Cfg.Duration
}

// UpdatesInstalled reports how many forwarding states have been installed
// so far (including the initial one).
func (r *Run) UpdatesInstalled() int { return r.updatesInstalled }

// GSIndexByName resolves a ground-station name to its index in the run.
func (r *Run) GSIndexByName(name string) (int, error) {
	g, err := groundstation.ByName(r.Topo.GroundStations, name)
	if err != nil {
		return 0, err
	}
	for i, cand := range r.Topo.GroundStations {
		if cand.ID == g.ID {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: station %q not found", name)
}

// ForwardingTableParallel computes the snapshot's full forwarding table
// with per-destination Dijkstra trees computed on `workers` goroutines.
// The result is identical to Snapshot.ForwardingTable.
func ForwardingTableParallel(s *routing.Snapshot, workers int) *routing.ForwardingTable {
	all := make([]int, s.Topo.NumGS())
	for i := range all {
		all[i] = i
	}
	return PartialForwardingTable(s, all, workers)
}

// PartialForwardingTable computes forwarding state only toward the given
// destination ground stations; entries for other destinations report
// unreachable. Traffic in an experiment flows only to destinations that
// were declared active, so the partial table is behaviorally equivalent at
// a fraction of the cost.
func PartialForwardingTable(s *routing.Snapshot, dstGS []int, workers int) *routing.ForwardingTable {
	ft := routing.NewEmptyForwardingTable(s.T, s.Topo.NumNodes(), s.Topo.NumGS())
	if workers < 1 {
		workers = 1
	}
	// The forwarding table is //hypatia:confined, so the workers never touch
	// it: each finished predecessor tree is handed back over results and
	// applied below on the one goroutine that owns ft. The per-tree ack
	// keeps a worker from overwriting its prev buffer while the owner is
	// still copying out of it.
	type destResult struct {
		gs   int
		prev []int32
		ack  chan struct{}
	}
	jobs := make(chan int)
	results := make(chan destResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dist []float64
			var prev []int32
			ack := make(chan struct{})
			for gs := range jobs {
				dist, prev = s.FromGS(gs, dist, prev)
				results <- destResult{gs: gs, prev: prev, ack: ack}
				<-ack
			}
		}()
	}
	go func() {
		for _, gs := range dstGS {
			jobs <- gs
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		ft.SetDestination(r.gs, r.prev)
		r.ack <- struct{}{}
	}
	return ft
}
