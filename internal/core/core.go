// Package core is the Hypatia orchestrator: it wires a constellation,
// ground stations, routing, and the packet simulator into a runnable
// experiment. It owns the paper's two-layer time model — forwarding state
// recomputed at a fixed granularity (default 100 ms) and installed as
// simulator events, while link latencies evolve continuously in between —
// and exposes the hooks experiments use to attach transports and record
// metrics.
package core

import (
	"fmt"
	"sync"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// RunConfig describes one packet-level simulation run.
type RunConfig struct {
	// Constellation to generate (e.g. constellation.Kuiper()).
	Constellation constellation.Config
	// GroundStations to place (e.g. groundstation.Top100Cities()).
	GroundStations []groundstation.GS
	// GSLPolicy is how ground stations attach to satellites.
	GSLPolicy routing.GSLPolicy
	// Duration of the simulation; default 200 s (the paper's horizon).
	Duration sim.Time
	// UpdateInterval is the forwarding-state granularity; default 100 ms.
	UpdateInterval sim.Time
	// Net carries link rates and queue sizes; zero value means
	// sim.DefaultConfig().
	Net sim.Config
	// ActiveDstGS optionally restricts forwarding-state computation to the
	// ground stations that actually receive traffic, which keeps pair
	// studies cheap. Nil computes state for every ground station.
	ActiveDstGS []int
	// Workers bounds the parallelism of forwarding-state computation;
	// 0 uses a sensible default. Parallelism does not affect results:
	// per-destination trees are independent.
	Workers int
	// Strategy optionally replaces shortest-path routing: it is called at
	// every forwarding update with the current snapshot, the active
	// destination set (nil = all), and the worker budget, and returns the
	// forwarding state to install. This is the paper's "any routing
	// strategy implementable with static routes" extension point.
	Strategy Strategy
}

// Strategy computes a forwarding table from a topology snapshot. active
// lists the destination ground stations that will receive traffic (nil
// means all); workers bounds internal parallelism.
type Strategy func(s *routing.Snapshot, active []int, workers int) *routing.ForwardingTable

// ShortestPath is the default routing strategy: per-destination Dijkstra
// over link distances (lowest propagation latency), as in the paper.
func ShortestPath(s *routing.Snapshot, active []int, workers int) *routing.ForwardingTable {
	if active == nil {
		return ForwardingTableParallel(s, workers)
	}
	return PartialForwardingTable(s, active, workers)
}

// AvoidNodes wraps a strategy so the given nodes are excluded from all
// paths — e.g. satellites marked failed or in maintenance. It recomputes
// the inner strategy on a snapshot whose graph omits the nodes' edges.
func AvoidNodes(inner Strategy, nodes ...int) Strategy {
	avoid := map[int]bool{}
	for _, n := range nodes {
		avoid[n] = true
	}
	return func(s *routing.Snapshot, active []int, workers int) *routing.ForwardingTable {
		pruned := s.WithoutNodes(avoid)
		return inner(pruned, active, workers)
	}
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Duration == 0 {
		c.Duration = 200 * sim.Second
	}
	if c.UpdateInterval == 0 {
		c.UpdateInterval = 100 * sim.Millisecond
	}
	c.Net = c.Net.WithDefaults()
	if c.Workers == 0 {
		c.Workers = 8
	}
	return c
}

// Run is a fully wired simulation ready for transports to be attached.
type Run struct {
	Cfg   RunConfig
	Topo  *routing.Topology
	Sim   *sim.Simulator
	Net   *sim.Network
	Flows *transport.FlowIDs

	updatesInstalled int
}

// NewRun generates the constellation, builds the network, installs the t=0
// forwarding state, and schedules periodic forwarding updates across the
// run's duration.
func NewRun(cfg RunConfig) (*Run, error) {
	cfg = cfg.withDefaults()
	c, err := constellation.Generate(cfg.Constellation)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	topo, err := routing.NewTopology(c, cfg.GroundStations, cfg.GSLPolicy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := sim.NewSimulator()
	net, err := sim.NewNetwork(s, topo, cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	r := &Run{Cfg: cfg, Topo: topo, Sim: s, Net: net, Flows: &transport.FlowIDs{}}

	net.InstallForwarding(r.forwardingAt(0))
	r.updatesInstalled++
	// Schedule the remaining updates, each recomputing state for its own
	// instant when the event fires.
	for at := cfg.UpdateInterval; at <= cfg.Duration; at += cfg.UpdateInterval {
		at := at
		s.ScheduleAt(at, func() {
			net.InstallForwarding(r.forwardingAt(at.Seconds()))
			r.updatesInstalled++
		})
	}
	return r, nil
}

// forwardingAt computes the forwarding state for time t via the configured
// strategy (shortest-path by default), restricted to the active
// destinations and parallelized across them.
func (r *Run) forwardingAt(t float64) *routing.ForwardingTable {
	snap := r.Topo.Snapshot(t)
	strategy := r.Cfg.Strategy
	if strategy == nil {
		strategy = ShortestPath
	}
	return strategy(snap, r.Cfg.ActiveDstGS, r.Cfg.Workers)
}

// Execute runs the simulation to completion and returns the virtual
// duration simulated.
func (r *Run) Execute() sim.Time {
	r.Sim.Run(r.Cfg.Duration)
	return r.Cfg.Duration
}

// UpdatesInstalled reports how many forwarding states have been installed
// so far (including the initial one).
func (r *Run) UpdatesInstalled() int { return r.updatesInstalled }

// GSIndexByName resolves a ground-station name to its index in the run.
func (r *Run) GSIndexByName(name string) (int, error) {
	g, err := groundstation.ByName(r.Topo.GroundStations, name)
	if err != nil {
		return 0, err
	}
	for i, cand := range r.Topo.GroundStations {
		if cand.ID == g.ID {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: station %q not found", name)
}

// ForwardingTableParallel computes the snapshot's full forwarding table
// with per-destination Dijkstra trees computed on `workers` goroutines.
// The result is identical to Snapshot.ForwardingTable.
func ForwardingTableParallel(s *routing.Snapshot, workers int) *routing.ForwardingTable {
	all := make([]int, s.Topo.NumGS())
	for i := range all {
		all[i] = i
	}
	return PartialForwardingTable(s, all, workers)
}

// PartialForwardingTable computes forwarding state only toward the given
// destination ground stations; entries for other destinations report
// unreachable. Traffic in an experiment flows only to destinations that
// were declared active, so the partial table is behaviorally equivalent at
// a fraction of the cost.
func PartialForwardingTable(s *routing.Snapshot, dstGS []int, workers int) *routing.ForwardingTable {
	ft := routing.NewEmptyForwardingTable(s.T, s.Topo.NumNodes(), s.Topo.NumGS())
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dist []float64
			var prev []int32
			for gs := range jobs {
				dist, prev = s.FromGS(gs, dist, prev)
				ft.SetDestination(gs, prev)
			}
		}()
	}
	for _, gs := range dstGS {
		jobs <- gs
	}
	close(jobs)
	wg.Wait()
	return ft
}
