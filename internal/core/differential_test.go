package core

import (
	"math/rand"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
)

// differentialTopo builds the topology the differential harness runs over.
func differentialTopo(t *testing.T, policy routing.GSLPolicy) *routing.Topology {
	t.Helper()
	c, err := constellation.Generate(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := routing.NewTopology(c, fourCities(t), policy)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// randomInstants draws n distinct randomized update instants, sorted the
// way a run would schedule them.
func randomInstants(rng *rand.Rand, n int) []sim.Time {
	times := make([]sim.Time, n)
	at := sim.Time(0)
	for i := range times {
		at += sim.Time(1+rng.Intn(400)) * 10 * sim.Millisecond
		times[i] = at
	}
	return times
}

// serialReference computes the forwarding state for one instant the
// pre-pipeline way: a fresh snapshot plus the serial table computation
// (Snapshot.ForwardingTable for the full set, a serial
// PartialForwardingTable for an active subset).
func serialReference(topo *routing.Topology, at sim.Time, active []int) *routing.ForwardingTable {
	snap := topo.Snapshot(at.Seconds())
	if active == nil {
		return snap.ForwardingTable()
	}
	return PartialForwardingTable(snap, active, 1)
}

// TestDifferentialPipelineMatchesSerial is the differential harness for the
// pipelined engine: over randomized update instants, both GSL policies, and
// randomized active-destination subsets (including nil = all), every table
// the pipeline delivers must be byte-identical to the serial computation.
func TestDifferentialPipelineMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, policy := range []routing.GSLPolicy{routing.GSLFree, routing.GSLNearestOnly} {
		topo := differentialTopo(t, policy)
		for trial := 0; trial < 3; trial++ {
			times := randomInstants(rng, 8)
			// Trial 0 computes all destinations; later trials a random
			// nonempty subset.
			var active []int
			if trial > 0 {
				for gs := 0; gs < topo.NumGS(); gs++ {
					if rng.Intn(2) == 0 {
						active = append(active, gs)
					}
				}
				if len(active) == 0 {
					active = []int{rng.Intn(topo.NumGS())}
				}
			}
			workers := 1 + rng.Intn(4)
			lookahead := 1 + rng.Intn(6)
			p := newPipeline(topo, nil, active, workers, lookahead, times)
			for i, at := range times {
				got := p.next()
				want := serialReference(topo, at, active)
				if !got.Equal(want) {
					t.Fatalf("policy %v trial %d instant %d (t=%v, workers=%d, lookahead=%d): pipelined table differs from serial",
						policy, trial, i, at, workers, lookahead)
				}
				got.Release()
			}
			p.close()
		}
	}
}

// TestDifferentialPipelineCustomStrategy runs the same differential check
// through the custom-Strategy path: a pipelined AvoidNodes strategy must
// match calling the strategy directly on a fresh serial snapshot.
func TestDifferentialPipelineCustomStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo := differentialTopo(t, routing.GSLFree)
	avoid := []int{rng.Intn(topo.NumSats()), rng.Intn(topo.NumSats())}
	strategy := AvoidNodes(ShortestPath, avoid...)
	times := randomInstants(rng, 6)
	active := []int{0, 2}
	p := newPipeline(topo, strategy, active, 3, 4, times)
	for i, at := range times {
		got := p.next()
		want := strategy(topo.Snapshot(at.Seconds()), active, 1)
		if !got.Equal(want) {
			t.Fatalf("instant %d (t=%v): pipelined strategy table differs from direct call", i, at)
		}
		got.Release()
	}
	p.close()
}

// TestDifferentialTableReuseAcrossInstants stresses the recycle path the
// way a run uses it — release table i only after popping table i+1 — and
// re-verifies each table against the serial reference right before its
// release, proving the pooled arenas carry no state between instants.
func TestDifferentialTableReuseAcrossInstants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	topo := differentialTopo(t, routing.GSLFree)
	times := randomInstants(rng, 10)
	p := newPipeline(topo, nil, nil, 2, 2, times)
	var held *routing.ForwardingTable
	heldIdx := -1
	for i, at := range times {
		_ = at
		ft := p.next()
		if held != nil {
			if !held.Equal(serialReference(topo, times[heldIdx], nil)) {
				t.Fatalf("table for instant %d mutated while instant %d was being computed", heldIdx, i)
			}
			held.Release()
		}
		held, heldIdx = ft, i
	}
	if !held.Equal(serialReference(topo, times[heldIdx], nil)) {
		t.Fatalf("final table differs from serial reference")
	}
	held.Release()
	p.close()
}
