package core

import (
	"math/rand"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
)

// differentialTopo builds the topology the differential harness runs over.
func differentialTopo(t *testing.T, policy routing.GSLPolicy) *routing.Topology {
	t.Helper()
	c, err := constellation.Generate(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := routing.NewTopology(c, fourCities(t), policy)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// randomInstants draws n distinct randomized update instants, sorted the
// way a run would schedule them.
func randomInstants(rng *rand.Rand, n int) []sim.Time {
	times := make([]sim.Time, n)
	at := sim.Time(0)
	for i := range times {
		at += sim.Time(1+rng.Intn(400)) * 10 * sim.Millisecond
		times[i] = at
	}
	return times
}

// serialReference computes the forwarding state for one instant the
// pre-pipeline way: a fresh snapshot plus the serial table computation
// (Snapshot.ForwardingTable for the full set, a serial
// PartialForwardingTable for an active subset).
func serialReference(topo *routing.Topology, at sim.Time, active []int) *routing.ForwardingTable {
	snap := topo.Snapshot(at.Seconds())
	if active == nil {
		return snap.ForwardingTable()
	}
	return PartialForwardingTable(snap, active, 1)
}

// TestDifferentialPipelineMatchesSerial is the differential harness for the
// pipelined engine, in both its modes: over randomized update instants,
// both GSL policies, and randomized active-destination subsets (including
// nil = all), every table the pipeline delivers — from the from-scratch
// worker pool and from the incremental producer alike — must be
// byte-identical to the serial computation.
func TestDifferentialPipelineMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, incremental := range []bool{false, true} {
		for _, policy := range []routing.GSLPolicy{routing.GSLFree, routing.GSLNearestOnly} {
			topo := differentialTopo(t, policy)
			for trial := 0; trial < 3; trial++ {
				times := randomInstants(rng, 8)
				// Trial 0 computes all destinations; later trials a random
				// nonempty subset.
				var active []int
				if trial > 0 {
					for gs := 0; gs < topo.NumGS(); gs++ {
						if rng.Intn(2) == 0 {
							active = append(active, gs)
						}
					}
					if len(active) == 0 {
						active = []int{rng.Intn(topo.NumGS())}
					}
				}
				workers := 1 + rng.Intn(4)
				lookahead := 1 + rng.Intn(6)
				p := newPipeline(topo, nil, active, workers, lookahead, times, incremental)
				for i, at := range times {
					got := p.next()
					want := serialReference(topo, at, active)
					if !got.Equal(want) {
						t.Fatalf("incremental=%v policy %v trial %d instant %d (t=%v, workers=%d, lookahead=%d): pipeline table differs from serial",
							incremental, policy, trial, i, at, workers, lookahead)
					}
					got.Release()
				}
				p.close()
			}
		}
	}
}

// TestDifferentialPipelineCustomStrategy runs the same differential check
// through the custom-Strategy path: a pipelined AvoidNodes strategy must
// match calling the strategy directly on a fresh serial snapshot.
func TestDifferentialPipelineCustomStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo := differentialTopo(t, routing.GSLFree)
	avoid := []int{rng.Intn(topo.NumSats()), rng.Intn(topo.NumSats())}
	strategy := AvoidNodes(ShortestPath, avoid...)
	times := randomInstants(rng, 6)
	active := []int{0, 2}
	p := newPipeline(topo, strategy, active, 3, 4, times, true)
	for i, at := range times {
		got := p.next()
		want := strategy(topo.Snapshot(at.Seconds()), active, 1)
		if !got.Equal(want) {
			t.Fatalf("instant %d (t=%v): pipelined strategy table differs from direct call", i, at)
		}
		got.Release()
	}
	p.close()
}

// incrementalOracle is the from-scratch reference for one instant under an
// optional avoid set: the AvoidNodes strategy applied to a fresh serial
// snapshot — the exact computation the incremental engine replaces.
func incrementalOracle(topo *routing.Topology, at sim.Time, active, avoid []int) *routing.ForwardingTable {
	if len(avoid) == 0 {
		return ShortestPath(topo.Snapshot(at.Seconds()), active, 1)
	}
	return AvoidNodes(ShortestPath, avoid...)(topo.Snapshot(at.Seconds()), active, 1)
}

// runIncrementalSequence drives one randomized instant sequence through a
// routing.IncrementalEngine — drifting weights, GSL visibility flips,
// per-instant active sets, and mid-sequence strategy switches between plain
// shortest path and changing AvoidNodes sets — and requires every table to
// be byte-identical to the from-scratch oracle. It reports the number of
// instants verified.
func runIncrementalSequence(t *testing.T, topo *routing.Topology, rng *rand.Rand, instants int) int {
	t.Helper()
	eng := routing.NewIncrementalEngine(topo, nil)
	var avoid []int
	at := sim.Time(0)
	for step := 0; step < instants; step++ {
		// Mostly small 100 ms drifts, occasionally a coarse jump that
		// forces real visibility flips between consecutive instants.
		if rng.Intn(4) == 0 {
			at += sim.Time(1+rng.Intn(300)) * sim.Second / 10
		} else {
			at += 100 * sim.Millisecond
		}
		var active []int
		switch rng.Intn(3) {
		case 0: // all destinations
		case 1:
			active = []int{rng.Intn(topo.NumGS())}
		default:
			for gs := 0; gs < topo.NumGS(); gs++ {
				if rng.Intn(2) == 0 {
					active = append(active, gs)
				}
			}
			if len(active) == 0 {
				active = nil
			}
		}
		if rng.Intn(3) == 0 { // strategy switch
			avoid = avoid[:0]
			for i := rng.Intn(4); i > 0; i-- {
				avoid = append(avoid, rng.Intn(topo.NumSats()))
			}
			eng.SetAvoid(avoid...)
		}
		got := eng.Step(at.Seconds(), active)
		if want := incrementalOracle(topo, at, active, avoid); !got.Equal(want) {
			t.Fatalf("step %d (t=%v, active=%v, avoid=%v): incremental table differs from from-scratch oracle",
				step, at, active, avoid)
		}
		got.Release()
	}
	return instants
}

// TestDifferentialIncrementalSequences is the acceptance harness for the
// incremental engine: 100+ independently randomized instant sequences per
// run, spanning both GSL policies, fuzzed weight drifts and visibility
// flips (time steps from 100 ms to 30 s), fuzzed AvoidNodes sets, and
// strategy switches, every instant proven byte-identical to the
// from-scratch computation.
func TestDifferentialIncrementalSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sequences, verified := 0, 0
	for _, policy := range []routing.GSLPolicy{routing.GSLFree, routing.GSLNearestOnly} {
		topo := differentialTopo(t, policy)
		for trial := 0; trial < 52; trial++ {
			verified += runIncrementalSequence(t, topo, rng, 4+rng.Intn(4))
			sequences++
		}
	}
	if sequences < 100 {
		t.Fatalf("only %d sequences run; the acceptance bar is 100", sequences)
	}
	t.Logf("verified %d instants across %d randomized sequences", verified, sequences)
}

// FuzzIncrementalForwarding lets the fuzzer pick the sequence shape. Every
// input replays a full differential comparison, so any counterexample the
// fuzzer finds is a real byte-level divergence between the incremental and
// from-scratch engines.
func FuzzIncrementalForwarding(f *testing.F) {
	f.Add(int64(1), uint8(4), false)
	f.Add(int64(7), uint8(8), true)
	f.Add(int64(42), uint8(12), false)
	f.Add(int64(1234), uint8(6), true)
	f.Fuzz(func(t *testing.T, seed int64, instants uint8, nearest bool) {
		if instants == 0 || instants > 16 {
			t.Skip()
		}
		policy := routing.GSLFree
		if nearest {
			policy = routing.GSLNearestOnly
		}
		topo := differentialTopo(t, policy)
		runIncrementalSequence(t, topo, rand.New(rand.NewSource(seed)), int(instants))
	})
}

// TestDifferentialTableReuseAcrossInstants stresses the recycle path the
// way a run uses it — release table i only after popping table i+1 — and
// re-verifies each table against the serial reference right before its
// release, proving the pooled arenas carry no state between instants.
func TestDifferentialTableReuseAcrossInstants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	topo := differentialTopo(t, routing.GSLFree)
	times := randomInstants(rng, 10)
	p := newPipeline(topo, nil, nil, 2, 2, times, true)
	var held *routing.ForwardingTable
	heldIdx := -1
	for i, at := range times {
		_ = at
		ft := p.next()
		if held != nil {
			if !held.Equal(serialReference(topo, times[heldIdx], nil)) {
				t.Fatalf("table for instant %d mutated while instant %d was being computed", heldIdx, i)
			}
			held.Release()
		}
		held, heldIdx = ft, i
	}
	if !held.Equal(serialReference(topo, times[heldIdx], nil)) {
		t.Fatalf("final table differs from serial reference")
	}
	held.Release()
	p.close()
}
