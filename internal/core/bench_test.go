package core

import (
	"fmt"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// Ablation: forwarding-state granularity cost. Finer time-steps mean more
// expensive shortest-path recomputation per simulated second (paper §5.3
// picks 100 ms as the accuracy/cost compromise).
func BenchmarkAblationForwardingGranularity(b *testing.B) {
	for _, interval := range []sim.Time{50 * sim.Millisecond, 100 * sim.Millisecond, sim.Second} {
		b.Run(fmt.Sprintf("interval=%v", interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := NewRun(RunConfig{
					Constellation:  constellation.Kuiper(),
					GroundStations: groundstation.Top100Cities(),
					Duration:       2 * sim.Second,
					UpdateInterval: interval,
					ActiveDstGS:    []int{0, 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				run.Execute()
			}
		})
	}
}

// Ablation: worker count for parallel forwarding-state computation.
func BenchmarkAblationForwardingWorkers(b *testing.B) {
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		b.Fatal(err)
	}
	topo, err := routing.NewTopology(c, groundstation.Top100Cities(), routing.GSLFree)
	if err != nil {
		b.Fatal(err)
	}
	snap := topo.Snapshot(0)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ForwardingTableParallel(snap, workers)
			}
		})
	}
}

// BenchmarkPacketForwardingRate measures end-to-end packet throughput of
// the simulator for a single saturating TCP flow over Kuiper K1.
func BenchmarkPacketForwardingRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := NewRun(RunConfig{
			Constellation:  constellation.Kuiper(),
			GroundStations: groundstation.Top100Cities(),
			Duration:       2 * sim.Second,
			ActiveDstGS:    []int{0, 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		transport.NewTCPFlow(run.Net, run.Flows, 0, 1, transport.TCPConfig{}).Start()
		run.Execute()
		if i == 0 {
			b.ReportMetric(float64(run.Sim.Processed())/2, "events/vsec")
		}
	}
}

// benchSimRun executes the BenchmarkPacketForwardingRate workload — a
// saturating TCP flow over Kuiper K1 for 2 virtual seconds — on the given
// engine (shards 0 = serial) and returns how many events it processed.
func benchSimRun(b *testing.B, shards int) uint64 {
	b.Helper()
	run, err := NewRun(RunConfig{
		Constellation:  constellation.Kuiper(),
		GroundStations: groundstation.Top100Cities(),
		Duration:       2 * sim.Second,
		ActiveDstGS:    []int{0, 1},
		Shards:         shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	transport.NewTCPFlow(run.Net, run.Flows, 0, 1, transport.TCPConfig{}).Start()
	run.Execute()
	return run.Sim.Processed()
}

// BenchmarkSimSerial is the serial event-loop baseline for the sharded
// engine: identical workload, shard count 0. Its events/s metric is the
// denominator of bench.sh's sharded_over_serial speedup ratio.
func BenchmarkSimSerial(b *testing.B) {
	var total uint64
	for i := 0; i < b.N; i++ {
		total += benchSimRun(b, 0)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimSharded runs the same workload on the sharded
// conservative-parallel loop at several shard counts. Events/s counts what
// each engine actually processed (sharded runs process extra per-shard
// copies of forwarding-install events — ~20 per virtual second here, noise
// against the packet events). On a single-vCPU host the expected ratio to
// BenchmarkSimSerial is ≈1× or below (coordination overhead, no parallel
// hardware); bench.sh records nproc next to the ratio so the number is
// honest.
func BenchmarkSimSharded(b *testing.B) {
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				total += benchSimRun(b, shards)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// benchInstants is the shared schedule for the serial-vs-pipelined
// forwarding-state benchmarks: 8 Kuiper update instants at the paper's
// 100 ms granularity.
func benchInstants() []sim.Time {
	times := make([]sim.Time, 8)
	for i := range times {
		times[i] = sim.Time(i) * 100 * sim.Millisecond
	}
	return times
}

func benchKuiperTopo(b *testing.B) *routing.Topology {
	b.Helper()
	c, err := constellation.Generate(constellation.Kuiper())
	if err != nil {
		b.Fatal(err)
	}
	topo, err := routing.NewTopology(c, groundstation.Top100Cities(), routing.GSLFree)
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// BenchmarkForwardingStateSerial is the pre-pipeline baseline: for each
// update instant, build a fresh snapshot and compute the full forwarding
// table inline, exactly as the event loop used to.
func BenchmarkForwardingStateSerial(b *testing.B) {
	topo := benchKuiperTopo(b)
	times := benchInstants()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, at := range times {
			_ = topo.Snapshot(at.Seconds()).ForwardingTable()
		}
	}
}

// BenchmarkForwardingStatePipelined runs the same 8 instants through the
// pipelined engine with pooled arenas (default worker/lookahead config),
// releasing each table as the run's install events would.
func BenchmarkForwardingStatePipelined(b *testing.B) {
	topo := benchKuiperTopo(b)
	times := benchInstants()
	cfg := RunConfig{}.withDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := newPipeline(topo, nil, nil, cfg.Workers, cfg.Lookahead, times, false)
		for range times {
			p.next().Release()
		}
		p.close()
	}
}

// BenchmarkForwardingStateIncremental measures the incremental engine in
// steady state on the same workload shape: 8 consecutive 100 ms instants
// per op. The engine is primed once outside the timer (the first instant
// pays a full visibility scan and per-destination Dijkstra seeding) and
// time keeps advancing across ops, so every measured Step is the honest
// small-drift repair case the engine exists for. Compare ns/op directly
// against BenchmarkForwardingStateSerial — both compute 8 full tables per
// op; bench.sh emits the ratio as serial_over_incremental.
func BenchmarkForwardingStateIncremental(b *testing.B) {
	topo := benchKuiperTopo(b)
	eng := routing.NewIncrementalEngine(topo, nil)
	at := sim.Time(0)
	// Warm for two full 8-instant cycles, not just the seeding step: pooled
	// tables, delta scratch, and per-destination repair arenas keep growing
	// for several instants after the first as the drift exposes new
	// high-water marks. The timed loop then measures the steady state the
	// //hypatia:noalloc annotation on Step is about, so allocs/op reports
	// the contract's honest per-instant residue.
	for j := 0; j < 17; j++ {
		eng.Step(at.Seconds(), nil).Release()
		at += 100 * sim.Millisecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			at += 100 * sim.Millisecond
			eng.Step(at.Seconds(), nil).Release()
		}
	}
}
