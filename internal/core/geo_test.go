package core

import (
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

// equatorialCities picks two well-separated near-equatorial stations so a
// small GEO ring can see both.
func equatorialCities(t *testing.T) []groundstation.GS {
	t.Helper()
	all := groundstation.Top100Cities()
	var out []groundstation.GS
	for i, name := range []string{"Nairobi", "Singapore"} {
		g := groundstation.MustByName(all, name)
		g.ID = i
		out = append(out, g)
	}
	return out
}

// geoPingRun executes a 3 s ping exchange over the given shells and returns
// the median observed RTT.
func geoPingRun(t *testing.T, shells []constellation.Shell, shards int) sim.Time {
	t.Helper()
	run, err := NewRun(RunConfig{
		Constellation: constellation.Config{
			Name: "GeoLeo", Shells: shells, MinElevDeg: 10,
		},
		GroundStations: equatorialCities(t),
		GSLPolicy:      routing.GSLFree,
		Duration:       3 * sim.Second,
		UpdateInterval: 100 * sim.Millisecond,
		Shards:         shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := transport.NewPinger(run.Net, run.Flows, 0, 1, transport.PingConfig{Interval: 10 * sim.Millisecond})
	p.Start()
	run.Execute()

	var rtts []sim.Time
	for _, r := range p.Results() {
		if r.Replied {
			rtts = append(rtts, r.RTT)
		}
	}
	if len(rtts) < 100 {
		t.Fatalf("only %d of %d pings replied; the path is not usable", len(rtts), len(p.Results()))
	}
	// Median by insertion sort; the slice is small.
	for i := 1; i < len(rtts); i++ {
		for j := i; j > 0 && rtts[j] < rtts[j-1]; j-- {
			rtts[j], rtts[j-1] = rtts[j-1], rtts[j]
		}
	}
	return rtts[len(rtts)/2]
}

// TestGEORingEndToEnd runs the paper's GEO-versus-LEO latency contrast
// (§2.4) end to end through sim.Network: a geostationary ring alone carries
// traffic at hundreds of milliseconds; a LEO shell alone is an order of
// magnitude faster; and a hybrid constellation with both shells delivers at
// LEO latency because shortest-path routing prefers the low orbits.
func TestGEORingEndToEnd(t *testing.T) {
	leo := constellation.Shell{Name: "L1", AltitudeKm: 630, Orbits: 16, SatsPerOrbit: 16, IncDeg: 53}
	geo := constellation.GEORing("G1", 8)

	geoRTT := geoPingRun(t, []constellation.Shell{geo}, 0)
	leoRTT := geoPingRun(t, []constellation.Shell{leo}, 0)
	hybridRTT := geoPingRun(t, []constellation.Shell{geo, leo}, 0)

	// A GEO bounce is ≥ 2×35786 km of propagation: no less than ~240 ms,
	// and with ground-segment detours typically well above 400 ms isn't
	// guaranteed — but 200 ms is a hard physical floor.
	if geoRTT < 200*sim.Millisecond {
		t.Errorf("GEO median RTT %v is below the physical floor for a geostationary bounce", geoRTT)
	}
	// Nairobi–Singapore is ~7400 km great-circle: ~50 ms of RTT at the
	// speed of light, plus the up/down legs and ISL zigzag at 630 km.
	if leoRTT >= 100*sim.Millisecond {
		t.Errorf("LEO median RTT %v; want < 100ms at 630 km over this pair", leoRTT)
	}
	if geoRTT < 5*leoRTT {
		t.Errorf("GEO/LEO RTT gap %v vs %v; want at least 5x", geoRTT, leoRTT)
	}
	if hybridRTT >= 120*sim.Millisecond {
		t.Errorf("hybrid median RTT %v; want LEO-like (< 120ms) since routing should prefer the low shell", hybridRTT)
	}

	// The hybrid constellation must behave identically on the sharded
	// engine (partitioning spans both shells' satellites).
	if sharded := geoPingRun(t, []constellation.Shell{geo, leo}, 4); sharded != hybridRTT {
		t.Errorf("sharded hybrid median RTT %v differs from serial %v", sharded, hybridRTT)
	}
}
