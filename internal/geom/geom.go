// Package geom provides the geodetic and reference-frame foundation used by
// the rest of the simulator: Cartesian vector algebra, the WGS72 Earth model
// (the geodetic system Hypatia's TLEs are expressed in), conversions between
// geodetic coordinates, the Earth-centered Earth-fixed (ECEF) frame and the
// Earth-centered inertial (ECI) frame, sidereal-time computation, and the
// line-of-sight quantities (elevation, azimuth, slant range) that govern
// ground-station-to-satellite connectivity.
//
// Conventions: all lengths are meters, all angles radians unless a function
// name says otherwise, and all times are seconds. Latitudes are positive
// north, longitudes positive east.
package geom

import (
	"fmt"
	"math"
)

// Physical and WGS72 Earth-model constants. Hypatia generates TLEs in the
// WGS72 geodetic standard, so the same constants are used here for orbital
// mechanics and frame conversions.
const (
	// SpeedOfLight is the speed of light in vacuum, m/s. Both laser
	// inter-satellite links and radio ground-satellite links propagate at c.
	SpeedOfLight = 299792458.0

	// EarthRadius is the WGS72 equatorial radius of the Earth, meters.
	EarthRadius = 6378135.0

	// EarthMu is the WGS72 geocentric gravitational constant, m^3/s^2.
	EarthMu = 3.986008e14

	// EarthJ2 is the WGS72 second zonal harmonic of the geopotential,
	// responsible for the dominant secular orbital perturbations.
	EarthJ2 = 1.082616e-3

	// EarthFlattening is the WGS72 ellipsoid flattening (1/298.26).
	EarthFlattening = 1.0 / 298.26

	// EarthRotationRate is the rotation rate of the Earth, rad/s
	// (sidereal day of 86164.0905 s).
	EarthRotationRate = 7.292115146706979e-5

	// SecondsPerDay is the length of a mean solar day in seconds.
	SecondsPerDay = 86400.0
)

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180.0 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180.0 }

// Vec3 is a Cartesian vector, meters.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
//
//hypatia:pure
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
//
//hypatia:pure
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
//
//hypatia:pure
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Distance returns the Euclidean distance between points v and w.
//
//hypatia:pure
func (v Vec3) Distance(w Vec3) float64 { return v.Sub(w).Norm() }

// String formats the vector with meter precision.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.0f, %.0f, %.0f)", v.X, v.Y, v.Z)
}

// LLA is a geodetic position: latitude and longitude in radians, altitude in
// meters above the reference ellipsoid.
type LLA struct {
	Lat, Lon, Alt float64
}

// LLADeg builds an LLA from degrees latitude/longitude and meters altitude.
func LLADeg(latDeg, lonDeg, altM float64) LLA {
	return LLA{Lat: Rad(latDeg), Lon: Rad(lonDeg), Alt: altM}
}

// ToECEF converts a geodetic position to ECEF Cartesian coordinates on the
// WGS72 ellipsoid.
//
//hypatia:pure
func (p LLA) ToECEF() Vec3 {
	e2 := EarthFlattening * (2 - EarthFlattening) // first eccentricity squared
	sinLat := math.Sin(p.Lat)
	cosLat := math.Cos(p.Lat)
	n := EarthRadius / math.Sqrt(1-e2*sinLat*sinLat)
	return Vec3{
		X: (n + p.Alt) * cosLat * math.Cos(p.Lon),
		Y: (n + p.Alt) * cosLat * math.Sin(p.Lon),
		Z: (n*(1-e2) + p.Alt) * sinLat,
	}
}

// ECEFToLLA converts an ECEF position to geodetic coordinates on the WGS72
// ellipsoid using Bowring's iterative method (converges in a few iterations
// to sub-millimeter accuracy for LEO-relevant altitudes).
func ECEFToLLA(v Vec3) LLA {
	e2 := EarthFlattening * (2 - EarthFlattening)
	lon := math.Atan2(v.Y, v.X)
	p := math.Hypot(v.X, v.Y)
	if p == 0 {
		// On the polar axis.
		alt := math.Abs(v.Z) - EarthRadius*(1-EarthFlattening)
		lat := math.Pi / 2
		if v.Z < 0 {
			lat = -lat
		}
		return LLA{Lat: lat, Lon: lon, Alt: alt}
	}
	lat := math.Atan2(v.Z, p*(1-e2))
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n := EarthRadius / math.Sqrt(1-e2*sinLat*sinLat)
		next := math.Atan2(v.Z+e2*n*sinLat, p)
		if math.Abs(next-lat) < 1e-12 {
			lat = next
			break
		}
		lat = next
	}
	sinLat := math.Sin(lat)
	n := EarthRadius / math.Sqrt(1-e2*sinLat*sinLat)
	alt := p/math.Cos(lat) - n
	return LLA{Lat: lat, Lon: lon, Alt: alt}
}

// GMST returns the Greenwich Mean Sidereal Time angle in radians, in
// [0, 2π), for a time expressed in seconds since the simulation epoch.
// gmst0 is the sidereal angle at the epoch itself.
//
// The simulator anchors constellations at an arbitrary epoch; the absolute
// sidereal phase only rotates the entire ECEF frame relative to ECI and has
// no effect on relative constellation geometry, so gmst0 = 0 is a valid
// default and is what Epoch-less call sites use.
//
//hypatia:pure
func GMST(gmst0, secondsSinceEpoch float64) float64 {
	theta := math.Mod(gmst0+EarthRotationRate*secondsSinceEpoch, 2*math.Pi)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return theta
}

// GMSTFromJulian returns the Greenwich Mean Sidereal Time in radians for a
// given Julian date (UT1), using the IAU 1982 expression. It is used when a
// constellation is pinned to an absolute calendar epoch (e.g. when emitting
// TLEs whose epoch field must be meaningful to external tools).
func GMSTFromJulian(jd float64) float64 {
	t := (jd - 2451545.0) / 36525.0
	// Seconds of sidereal time (IAU 1982).
	gmstSec := 67310.54841 + (876600.0*3600.0+8640184.812866)*t + 0.093104*t*t - 6.2e-6*t*t*t
	gmstSec = math.Mod(gmstSec, SecondsPerDay)
	if gmstSec < 0 {
		gmstSec += SecondsPerDay
	}
	return gmstSec * 2 * math.Pi / SecondsPerDay
}

// ECIToECEF rotates an ECI position into the ECEF frame given the current
// sidereal angle theta (radians).
//
//hypatia:pure
func ECIToECEF(eci Vec3, theta float64) Vec3 {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{
		X: c*eci.X + s*eci.Y,
		Y: -s*eci.X + c*eci.Y,
		Z: eci.Z,
	}
}

// ECEFToECI rotates an ECEF position into the ECI frame given the current
// sidereal angle theta (radians).
func ECEFToECI(ecef Vec3, theta float64) Vec3 {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{
		X: c*ecef.X - s*ecef.Y,
		Y: s*ecef.X + c*ecef.Y,
		Z: ecef.Z,
	}
}

// Haversine returns the great-circle distance in meters between two geodetic
// points over a sphere of EarthRadius. It is the basis of the paper's
// "geodesic RTT" (the minimum achievable round-trip at the speed of light).
func Haversine(a, b LLA) float64 {
	dLat := b.Lat - a.Lat
	dLon := b.Lon - a.Lon
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(a.Lat)*math.Cos(b.Lat)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadius * math.Asin(math.Min(1, math.Sqrt(h)))
}

// GeodesicRTT returns the paper's "geodesic RTT" in seconds between two
// geodetic points: the time to travel the great-circle distance and back at
// the speed of light in vacuum.
func GeodesicRTT(a, b LLA) float64 {
	return 2 * Haversine(a, b) / SpeedOfLight
}

// LookAngles describes how a target (satellite) appears in the sky from an
// observer (ground station): elevation above the local horizon, azimuth
// clockwise from true north, and slant range, all in the observer's local
// east-north-up frame.
type LookAngles struct {
	Elevation float64 // radians above the horizon; negative if below
	Azimuth   float64 // radians clockwise from north, in [0, 2π)
	Range     float64 // meters
}

// Look computes the look angles from an observer at geodetic position obs to
// a target at ECEF position target. The local vertical is the geodetic
// normal of the observer.
//
//hypatia:pure
func Look(obs LLA, target Vec3) LookAngles {
	o := obs.ToECEF()
	d := target.Sub(o)
	r := d.Norm()

	sinLat, cosLat := math.Sin(obs.Lat), math.Cos(obs.Lat)
	sinLon, cosLon := math.Sin(obs.Lon), math.Cos(obs.Lon)

	// ENU basis vectors at the observer.
	east := Vec3{-sinLon, cosLon, 0}
	north := Vec3{-sinLat * cosLon, -sinLat * sinLon, cosLat}
	up := Vec3{cosLat * cosLon, cosLat * sinLon, sinLat}

	e := d.Dot(east)
	n := d.Dot(north)
	u := d.Dot(up)

	az := math.Atan2(e, n)
	if az < 0 {
		az += 2 * math.Pi
	}
	el := math.Asin(u / r)
	return LookAngles{Elevation: el, Azimuth: az, Range: r}
}

// Elevation returns just the elevation angle (radians) of target as seen
// from obs. It is the quantity compared against a constellation's minimum
// angle of elevation to decide GS-satellite connectivity.
//
//hypatia:pure
func Elevation(obs LLA, target Vec3) float64 {
	return Look(obs, target).Elevation
}

// Visible reports whether a target at ECEF position target is visible from
// the observer at or above the given minimum elevation angle (radians).
func Visible(obs LLA, target Vec3, minElevation float64) bool {
	return Elevation(obs, target) >= minElevation
}

// MaxSlantRange returns the maximum distance at which a satellite at orbital
// height h (meters above the surface) can be seen from the ground at or
// above minimum elevation minEl (radians), over a spherical Earth. It gives
// a cheap pre-filter radius for visibility searches.
//
//hypatia:pure
func MaxSlantRange(h, minEl float64) float64 {
	re := EarthRadius
	rs := re + h
	// Law of sines in the observer-satellite-geocenter triangle:
	// the angle at the observer is 90° + minEl.
	sinGamma := re / rs * math.Sin(math.Pi/2+minEl)
	gamma := math.Asin(sinGamma)                  // angle at the satellite
	beta := math.Pi - (math.Pi/2 + minEl) - gamma // central angle
	return math.Sqrt(re*re + rs*rs - 2*re*rs*math.Cos(beta))
}
