package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec3Algebra(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := Vec3{0, 0, 1}
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); got != z.Scale(-1) {
		t.Errorf("y cross x = %v, want -z", got)
	}
	if got := x.Cross(x); got != (Vec3{}) {
		t.Errorf("x cross x = %v, want zero", got)
	}
}

func TestVec3NormUnit(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Errorf("Norm = %v", v.Norm())
	}
	u := v.Unit()
	if !almostEqual(u.Norm(), 1, 1e-15) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Errorf("zero vector Unit should be zero")
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 45, 90, 180, -53, 98.98} {
		if got := Deg(Rad(d)); !almostEqual(got, d, 1e-12) {
			t.Errorf("Deg(Rad(%v)) = %v", d, got)
		}
	}
}

func TestLLAToECEFKnownPoints(t *testing.T) {
	// Equator / prime meridian at sea level: X = equatorial radius.
	p := LLADeg(0, 0, 0).ToECEF()
	if !almostEqual(p.X, EarthRadius, 1e-6) || !almostEqual(p.Y, 0, 1e-6) || !almostEqual(p.Z, 0, 1e-6) {
		t.Errorf("equator point = %v", p)
	}
	// North pole: Z = polar radius = a(1-f).
	p = LLADeg(90, 0, 0).ToECEF()
	polar := EarthRadius * (1 - EarthFlattening)
	if !almostEqual(p.Z, polar, 1e-6) || !almostEqual(math.Hypot(p.X, p.Y), 0, 1e-6) {
		t.Errorf("pole point = %v, want Z=%v", p, polar)
	}
	// 90E on equator: Y = equatorial radius.
	p = LLADeg(0, 90, 0).ToECEF()
	if !almostEqual(p.Y, EarthRadius, 1e-6) {
		t.Errorf("90E point = %v", p)
	}
}

func TestECEFToLLARoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		lla := LLA{
			Lat: (r.Float64() - 0.5) * math.Pi * 0.998, // avoid exact poles
			Lon: (r.Float64() - 0.5) * 2 * math.Pi,
			Alt: r.Float64() * 2_000_000, // 0..2000 km (LEO range)
		}
		back := ECEFToLLA(lla.ToECEF())
		if !almostEqual(back.Lat, lla.Lat, 1e-9) {
			t.Fatalf("lat round trip: %v -> %v", lla.Lat, back.Lat)
		}
		if !almostEqual(back.Lon, lla.Lon, 1e-9) {
			t.Fatalf("lon round trip: %v -> %v", lla.Lon, back.Lon)
		}
		if !almostEqual(back.Alt, lla.Alt, 1e-3) {
			t.Fatalf("alt round trip: %v -> %v", lla.Alt, back.Alt)
		}
	}
}

func TestECEFToLLAPolarAxis(t *testing.T) {
	polar := EarthRadius * (1 - EarthFlattening)
	got := ECEFToLLA(Vec3{0, 0, polar + 1000})
	if !almostEqual(got.Lat, math.Pi/2, 1e-12) || !almostEqual(got.Alt, 1000, 1e-6) {
		t.Errorf("north axis: %+v", got)
	}
	got = ECEFToLLA(Vec3{0, 0, -(polar + 500)})
	if !almostEqual(got.Lat, -math.Pi/2, 1e-12) || !almostEqual(got.Alt, 500, 1e-6) {
		t.Errorf("south axis: %+v", got)
	}
}

func TestGMSTWrapsAndAdvances(t *testing.T) {
	if g := GMST(0, 0); g != 0 {
		t.Errorf("GMST(0,0) = %v", g)
	}
	// After one sidereal day the angle returns to (almost) zero.
	sidereal := 2 * math.Pi / EarthRotationRate
	if g := GMST(0, sidereal); !almostEqual(g, 0, 1e-9) && !almostEqual(g, 2*math.Pi, 1e-9) {
		t.Errorf("GMST after sidereal day = %v", g)
	}
	// Negative offsets stay in [0, 2π).
	if g := GMST(0, -100); g < 0 || g >= 2*math.Pi {
		t.Errorf("GMST(-100) out of range: %v", g)
	}
}

func TestGMSTFromJulianJ2000(t *testing.T) {
	// At the J2000.0 epoch GMST is 280.46062°. (Standard reference value.)
	got := Deg(GMSTFromJulian(2451545.0))
	if !almostEqual(got, 280.46062, 0.01) {
		t.Errorf("GMST(J2000) = %v deg, want ~280.46", got)
	}
}

func TestECIECEFRoundTripProperty(t *testing.T) {
	f := func(x, y, z, theta float64) bool {
		// Constrain to physically meaningful magnitudes (well beyond any
		// orbital radius) to avoid catastrophic cancellation at ~1e308.
		v := Vec3{math.Mod(x, 1e9), math.Mod(y, 1e9), math.Mod(z, 1e9)}
		th := math.Mod(theta, 2*math.Pi)
		if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(v.Z) || math.IsNaN(th) {
			return true
		}
		back := ECEFToECI(ECIToECEF(v, th), th)
		return almostEqual(back.X, v.X, 1e-6*(1+math.Abs(v.X))) &&
			almostEqual(back.Y, v.Y, 1e-6*(1+math.Abs(v.Y))) &&
			almostEqual(back.Z, v.Z, 1e-12*(1+math.Abs(v.Z)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECIToECEFPreservesNorm(t *testing.T) {
	f := func(x, y, z, theta float64) bool {
		v := Vec3{math.Mod(x, 1e9), math.Mod(y, 1e9), math.Mod(z, 1e9)}
		if math.IsNaN(v.Norm()) || math.IsInf(v.Norm(), 0) || math.IsNaN(theta) {
			return true
		}
		rot := ECIToECEF(v, theta)
		return almostEqual(rot.Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Antipodal points: half the circumference.
	d := Haversine(LLADeg(0, 0, 0), LLADeg(0, 180, 0))
	if !almostEqual(d, math.Pi*EarthRadius, 1) {
		t.Errorf("antipodal = %v", d)
	}
	// Quarter circumference pole to equator.
	d = Haversine(LLADeg(90, 0, 0), LLADeg(0, 0, 0))
	if !almostEqual(d, math.Pi/2*EarthRadius, 1) {
		t.Errorf("pole-equator = %v", d)
	}
	// Same point.
	if d := Haversine(LLADeg(10, 20, 0), LLADeg(10, 20, 0)); d != 0 {
		t.Errorf("same point = %v", d)
	}
	// Paris - Moscow is roughly 2,480 km.
	d = Haversine(LLADeg(48.8566, 2.3522, 0), LLADeg(55.7558, 37.6173, 0))
	if d < 2.4e6 || d > 2.6e6 {
		t.Errorf("Paris-Moscow = %v km", d/1000)
	}
}

func TestHaversineSymmetryProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		a := LLA{Lat: (r.Float64() - 0.5) * math.Pi, Lon: (r.Float64() - 0.5) * 2 * math.Pi}
		b := LLA{Lat: (r.Float64() - 0.5) * math.Pi, Lon: (r.Float64() - 0.5) * 2 * math.Pi}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		if !almostEqual(d1, d2, 1e-6) {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
		if d1 < 0 || d1 > math.Pi*EarthRadius+1 {
			t.Fatalf("out of range: %v", d1)
		}
	}
}

func TestGeodesicRTT(t *testing.T) {
	// 1 light-second of one-way distance would be an RTT of 2 s; check scaling
	// via a quarter circumference.
	d := math.Pi / 2 * EarthRadius
	want := 2 * d / SpeedOfLight
	got := GeodesicRTT(LLADeg(90, 0, 0), LLADeg(0, 0, 0))
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("GeodesicRTT = %v, want %v", got, want)
	}
}

func TestLookOverhead(t *testing.T) {
	obs := LLADeg(0, 0, 0)
	// Satellite directly overhead at 550 km.
	sat := LLADeg(0, 0, 550e3).ToECEF()
	la := Look(obs, sat)
	if !almostEqual(Deg(la.Elevation), 90, 0.01) {
		t.Errorf("overhead elevation = %v deg", Deg(la.Elevation))
	}
	if !almostEqual(la.Range, 550e3, 100) {
		t.Errorf("overhead range = %v", la.Range)
	}
}

func TestLookAzimuthCardinal(t *testing.T) {
	obs := LLADeg(0, 0, 0)
	cases := []struct {
		name   string
		target LLA
		wantAz float64 // degrees
		azTol  float64
	}{
		{"north", LLADeg(5, 0, 550e3), 0, 1},
		{"east", LLADeg(0, 5, 550e3), 90, 1},
		{"south", LLADeg(-5, 0, 550e3), 180, 1},
		{"west", LLADeg(0, -5, 550e3), 270, 1},
	}
	for _, c := range cases {
		la := Look(obs, c.target.ToECEF())
		if !almostEqual(Deg(la.Azimuth), c.wantAz, c.azTol) {
			t.Errorf("%s: azimuth = %v, want %v", c.name, Deg(la.Azimuth), c.wantAz)
		}
		if la.Elevation <= 0 {
			t.Errorf("%s: elevation should be positive, got %v", c.name, Deg(la.Elevation))
		}
	}
}

func TestElevationDropsWithGroundDistance(t *testing.T) {
	obs := LLADeg(0, 0, 0)
	prev := math.Inf(1)
	for _, lonDeg := range []float64{0, 2, 5, 10, 15, 20} {
		el := Elevation(obs, LLADeg(0, lonDeg, 550e3).ToECEF())
		if el >= prev {
			t.Fatalf("elevation did not decrease at lon %v: %v >= %v", lonDeg, el, prev)
		}
		prev = el
	}
}

func TestVisibleThreshold(t *testing.T) {
	obs := LLADeg(0, 0, 0)
	overhead := LLADeg(0, 0, 630e3).ToECEF()
	if !Visible(obs, overhead, Rad(30)) {
		t.Error("overhead satellite should be visible at 30 deg min elevation")
	}
	// A satellite 25 degrees of longitude away at 630 km is far below a 30
	// degree elevation threshold.
	far := LLADeg(0, 25, 630e3).ToECEF()
	if Visible(obs, far, Rad(30)) {
		t.Error("far satellite should not be visible at 30 deg min elevation")
	}
}

func TestMaxSlantRange(t *testing.T) {
	// At 90° minimum elevation only the sub-satellite point qualifies: the
	// slant range equals the height.
	if r := MaxSlantRange(550e3, Rad(90)); !almostEqual(r, 550e3, 1) {
		t.Errorf("90 deg slant = %v", r)
	}
	// Lower minimum elevation must allow longer slant ranges.
	r30 := MaxSlantRange(630e3, Rad(30))
	r10 := MaxSlantRange(630e3, Rad(10))
	if r10 <= r30 {
		t.Errorf("slant range should grow as min elevation falls: %v <= %v", r10, r30)
	}
	if r30 < 630e3 {
		t.Errorf("slant range below height: %v", r30)
	}
}

func TestMaxSlantRangeConsistentWithLook(t *testing.T) {
	// Any satellite seen above minEl must be within MaxSlantRange.
	obs := LLADeg(12, 34, 0)
	h := 630e3
	minEl := Rad(30)
	maxR := MaxSlantRange(h, minEl)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		sat := LLA{
			Lat: (r.Float64() - 0.5) * math.Pi,
			Lon: (r.Float64() - 0.5) * 2 * math.Pi,
			Alt: h,
		}.ToECEF()
		la := Look(obs, sat)
		if la.Elevation >= minEl && la.Range > maxR*1.001 {
			t.Fatalf("visible satellite beyond max slant range: el=%v r=%v max=%v",
				Deg(la.Elevation), la.Range, maxR)
		}
	}
}
