package sim

import (
	"fmt"
	"strings"
	"testing"

	"hypatia/internal/routing"
)

// shardedResult captures everything a run observably produces: the full
// hook trace plus end-of-run counters and device state.
type shardedResult struct {
	trace     string
	delivered uint64
	drops     [int(numDropReasons)]uint64
	devs      []DeviceStats
	now       Time
}

// runShardedScenario executes a fixed traffic scenario — a periodic echo
// flow GS0<->GS1, a queue-overflowing burst GS2->GS1, deterministic link
// loss, and forwarding updates at 100 ms granularity — serially (shards=0)
// or on the sharded engine, and returns the observable outcome.
func runShardedScenario(t *testing.T, shards int, splitAt Time) shardedResult {
	t.Helper()
	topo := testTopo(t)
	s := NewSimulator()
	n, err := NewNetwork(s, topo, Config{
		ISLRateBps: 4e6, GSLRateBps: 4e6, QueuePackets: 4,
		LossModel: func(from, to int, at Time) bool {
			return (uint64(from)*2654435761+uint64(to)*40503+uint64(at))%97 == 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.InstallForwarding(topo.Snapshot(0).ForwardingTable())

	var tr strings.Builder
	n.SetTransmitHook(func(ti TransmitInfo) {
		fmt.Fprintf(&tr, "TX %v %d->%d pkt=%d hops=%d\n", ti.Start, ti.From, ti.To, ti.Packet.ID, ti.Packet.Hops)
	})
	n.SetDropHook(func(at Time, node int, pkt *Packet, reason DropReason) {
		fmt.Fprintf(&tr, "DROP %v node=%d pkt=%d %s\n", at, node, pkt.ID, reason)
	})
	n.SetDeliverHook(func(at Time, gs int, pkt *Packet) {
		fmt.Fprintf(&tr, "RX %v gs=%d pkt=%d hops=%d\n", at, gs, pkt.ID, pkt.Hops)
	})

	// Flow 1: GS0 pings GS1 every 5 ms; GS1 echoes back.
	clk0 := n.Clock(0)
	n.RegisterFlow(0, 1, func(*Packet) {})
	n.RegisterFlow(1, 1, func(p *Packet) { n.Send(1, 0, 1, 200, nil) })
	var tick func()
	tick = func() {
		n.Send(0, 1, 1, 300, nil)
		clk0.Schedule(5*Millisecond, tick)
	}
	clk0.Schedule(0, tick)

	// Flow 2: GS0 bursts 30 packets at t=50 ms into 4-packet queues,
	// overflowing its GSL device (queue drops).
	n.RegisterFlow(1, 2, func(*Packet) {})
	clk0.Schedule(50*Millisecond, func() {
		for i := 0; i < 30; i++ {
			n.Send(0, 1, 2, 1200, nil)
		}
	})

	// Flow 3: GS2 is the pole station with no satellite in view at
	// MinElev 25 — its sends drop as DropNoRoute at the source.
	clk2 := n.Clock(2)
	n.RegisterFlow(1, 3, func(*Packet) {})
	clk2.Schedule(60*Millisecond, func() {
		for i := 0; i < 3; i++ {
			n.Send(2, 1, 3, 800, nil)
		}
	})

	const duration = 300 * Millisecond
	installs := []Time{100 * Millisecond, 200 * Millisecond, 300 * Millisecond}
	if shards == 0 {
		for _, at := range installs {
			at := at
			s.ScheduleAt(at, func() {
				n.InstallForwarding(topo.Snapshot(at.Seconds()).ForwardingTable())
			})
		}
		s.Run(duration)
	} else {
		next := 0
		n.SetTableSource(func() *routing.ForwardingTable {
			ft := topo.Snapshot(installs[next].Seconds()).ForwardingTable()
			next++
			return ft
		})
		if splitAt > 0 {
			// Exercise resumability: sharded to splitAt, serial to the end.
			var pre []Time
			for _, at := range installs {
				if at <= splitAt {
					pre = append(pre, at)
				}
			}
			n.RunSharded(splitAt, shards, pre)
			for _, at := range installs[len(pre):] {
				at := at
				s.ScheduleAt(at, func() {
					n.InstallForwarding(topo.Snapshot(at.Seconds()).ForwardingTable())
				})
			}
			s.Run(duration)
		} else {
			n.RunSharded(duration, shards, installs)
		}
	}

	res := shardedResult{trace: tr.String(), delivered: n.Delivered(), devs: n.DeviceStats(), now: s.Now()}
	for r := DropReason(0); r < numDropReasons; r++ {
		res.drops[r] = n.Drops(r)
	}
	return res
}

// TestShardedMatchesSerial is the sim-level differential: the sharded engine
// must reproduce the serial run's trace and counters byte for byte, at
// several shard counts.
func TestShardedMatchesSerial(t *testing.T) {
	want := runShardedScenario(t, 0, 0)
	if want.delivered == 0 || want.drops[DropQueue] == 0 ||
		want.drops[DropLink] == 0 || want.drops[DropNoRoute] == 0 {
		t.Fatalf("scenario not exercising the paths under test: %+v", want.drops)
	}
	for _, shards := range []int{1, 2, 3, 5, 8} {
		got := runShardedScenario(t, shards, 0)
		if got.trace != want.trace {
			t.Errorf("shards=%d: trace diverges from serial (%d vs %d bytes): first diff at byte %d",
				shards, len(got.trace), len(want.trace), firstDiff(got.trace, want.trace))
		}
		if got.delivered != want.delivered || got.drops != want.drops {
			t.Errorf("shards=%d: delivered/drops = %d/%v, want %d/%v",
				shards, got.delivered, got.drops, want.delivered, want.drops)
		}
		if len(got.devs) != len(want.devs) {
			t.Fatalf("shards=%d: %d devices, want %d", shards, len(got.devs), len(want.devs))
		}
		for i := range got.devs {
			if got.devs[i] != want.devs[i] {
				t.Errorf("shards=%d: device %d stats %+v, want %+v", shards, i, got.devs[i], want.devs[i])
			}
		}
		if got.now != want.now {
			t.Errorf("shards=%d: clock %v, want %v", shards, got.now, want.now)
		}
	}
}

// TestShardedResume verifies a sharded run leaves the root engine in a
// resumable state: sharded to mid-run, then serial to the end, must equal
// the all-serial run.
func TestShardedResume(t *testing.T) {
	want := runShardedScenario(t, 0, 0)
	got := runShardedScenario(t, 3, 150*Millisecond)
	if got.trace != want.trace {
		t.Errorf("resumed trace diverges from serial: first diff at byte %d", firstDiff(got.trace, want.trace))
	}
	if got.delivered != want.delivered || got.drops != want.drops {
		t.Errorf("resumed delivered/drops = %d/%v, want %d/%v", got.delivered, got.drops, want.delivered, want.drops)
	}
}

// TestShardedNoHooks runs the sharded engine without hooks (no journaling)
// and checks counters only — the fast path used by benchmarks.
func TestShardedNoHooks(t *testing.T) {
	topo := testTopo(t)
	run := func(shards int) (uint64, uint64) {
		s := NewSimulator()
		n, err := NewNetwork(s, topo, Config{QueuePackets: 4})
		if err != nil {
			t.Fatal(err)
		}
		n.InstallForwarding(topo.Snapshot(0).ForwardingTable())
		clk := n.Clock(0)
		n.RegisterFlow(1, 7, func(*Packet) {})
		var tick func()
		tick = func() {
			n.Send(0, 1, 7, 1500, nil)
			clk.Schedule(2*Millisecond, tick)
		}
		clk.Schedule(0, tick)
		if shards == 0 {
			s.Run(100 * Millisecond)
		} else {
			n.RunSharded(100*Millisecond, shards, nil)
		}
		return n.Delivered(), n.TotalDrops()
	}
	wantD, wantX := run(0)
	if wantD == 0 {
		t.Fatal("no deliveries in serial reference")
	}
	for _, shards := range []int{2, 4} {
		if d, x := run(shards); d != wantD || x != wantX {
			t.Errorf("shards=%d: delivered/drops = %d/%d, want %d/%d", shards, d, x, wantD, wantX)
		}
	}
}

// TestClockSerialEquivalence pins that Clock handles behave exactly like the
// root simulator outside sharded runs.
func TestClockSerialEquivalence(t *testing.T) {
	_, n, _ := testNet(t, Config{})
	clk := n.Clock(0)
	if clk.Now() != n.Sim.Now() {
		t.Fatalf("Clock.Now = %v, Sim.Now = %v", clk.Now(), n.Sim.Now())
	}
	var at Time
	clk.Schedule(7*Millisecond, func() { at = clk.Now() })
	n.Sim.Run(Second)
	if at != 7*Millisecond {
		t.Errorf("clock-scheduled event ran at %v, want 7ms", at)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Clock delay did not panic")
		}
	}()
	clk.Schedule(-1, func() {})
}

func firstDiff(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
