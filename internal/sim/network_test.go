package sim

import (
	"math"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
)

// testTopo builds a dense-enough mini constellation with two well-covered
// ground stations.
func testTopo(t *testing.T) *routing.Topology {
	t.Helper()
	cfg := constellation.Config{
		Name: "Mini",
		Shells: []constellation.Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 16, SatsPerOrbit: 16,
			IncDeg: 53,
		}},
		MinElevDeg: 25,
	}
	c, err := constellation.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gss := []groundstation.GS{
		{ID: 0, Name: "Istanbul", Position: geom.LLADeg(41.0082, 28.9784, 0)},
		{ID: 1, Name: "Nairobi", Position: geom.LLADeg(-1.2921, 36.8219, 0)},
		{ID: 2, Name: "NorthPole", Position: geom.LLADeg(89.5, 0, 0)},
	}
	topo, err := routing.NewTopology(c, gss, routing.GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// testNet builds a network plus simulator with forwarding installed at t=0.
func testNet(t *testing.T, cfg Config) (*Simulator, *Network, *routing.Topology) {
	t.Helper()
	topo := testTopo(t)
	s := NewSimulator()
	n, err := NewNetwork(s, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.InstallForwarding(topo.Snapshot(0).ForwardingTable())
	return s, n, topo
}

func TestNewNetworkValidation(t *testing.T) {
	topo := testTopo(t)
	if _, err := NewNetwork(NewSimulator(), topo, Config{ISLRateBps: -1}); err == nil {
		t.Error("negative ISL rate accepted")
	}
	if _, err := NewNetwork(NewSimulator(), topo, Config{QueuePackets: -1}); err == nil {
		t.Error("negative queue accepted")
	}
	// Zero values take the paper defaults.
	n, err := NewNetwork(NewSimulator(), topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Config(); got.ISLRateBps != 10e6 || got.GSLRateBps != 10e6 || got.QueuePackets != 100 {
		t.Errorf("defaults not applied: %+v", got)
	}
}

func TestHeterogeneousLinkRates(t *testing.T) {
	// Future-work extension: per-link capacity overrides. Make the source
	// GS's uplink 10x faster; back-to-back packets then arrive spaced by
	// the slower downstream links, but the first hop serializes 10x
	// quicker, which shows up in one-packet latency.
	cfg := DefaultConfig()
	topo := testTopo(t)
	cfg.RateFor = func(node, peer int) float64 {
		if node == topo.GSNode(0) && peer == -1 {
			return 100e6
		}
		return 0
	}
	s := NewSimulator()
	n, err := NewNetwork(s, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.InstallForwarding(topo.Snapshot(0).ForwardingTable())
	var fastAt Time
	n.RegisterFlow(1, 1, func(*Packet) { fastAt = s.Now() })
	n.Send(0, 1, 1, 1500, nil)
	s.Run(Second)

	// Uniform-rate baseline for comparison.
	s2 := NewSimulator()
	n2, err := NewNetwork(s2, testTopo(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n2.InstallForwarding(n2.Topo.Snapshot(0).ForwardingTable())
	var slowAt Time
	n2.RegisterFlow(1, 1, func(*Packet) { slowAt = s2.Now() })
	n2.Send(0, 1, 1, 1500, nil)
	s2.Run(Second)

	if fastAt == 0 || slowAt == 0 {
		t.Fatal("packets not delivered")
	}
	// The fast uplink saves 1500B*(1/10Mbps - 1/100Mbps) = 1.08 ms.
	saved := slowAt - fastAt
	if saved < Seconds(0.0009) || saved > Seconds(0.0013) {
		t.Errorf("fast uplink saved %v, want about 1.08 ms", saved)
	}
}

func TestLossModelDropsInFlight(t *testing.T) {
	// Future-work extension: weather-style loss. Drop everything leaving
	// the source ground station.
	topo := testTopo(t)
	cfg := DefaultConfig()
	srcNode := topo.GSNode(0)
	cfg.LossModel = func(from, to int, at Time) bool { return from == srcNode }
	s := NewSimulator()
	n, err := NewNetwork(s, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.InstallForwarding(topo.Snapshot(0).ForwardingTable())
	n.RegisterFlow(1, 1, func(*Packet) { t.Error("packet survived total loss") })
	for i := 0; i < 5; i++ {
		n.Send(0, 1, 1, 1500, nil)
	}
	s.Run(Second)
	if got := n.Drops(DropLink); got != 5 {
		t.Errorf("link-loss drops = %d, want 5", got)
	}
}

func TestLossModelPartialLossStillDelivers(t *testing.T) {
	// A 50% coin-flip loss (deterministic alternation) delivers roughly
	// half the packets.
	topo := testTopo(t)
	cfg := DefaultConfig()
	srcNode := topo.GSNode(0)
	toggle := false
	cfg.LossModel = func(from, to int, at Time) bool {
		if from != srcNode {
			return false
		}
		toggle = !toggle
		return toggle
	}
	s := NewSimulator()
	n, err := NewNetwork(s, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.InstallForwarding(topo.Snapshot(0).ForwardingTable())
	got := 0
	n.RegisterFlow(1, 1, func(*Packet) { got++ })
	for i := 0; i < 10; i++ {
		n.Send(0, 1, 1, 1500, nil)
	}
	s.Run(Second)
	if got != 5 {
		t.Errorf("delivered %d of 10 under alternating loss", got)
	}
}

func TestPacketDelivery(t *testing.T) {
	s, n, topo := testNet(t, DefaultConfig())
	var got *Packet
	var at Time
	n.RegisterFlow(1, 7, func(p *Packet) { got, at = p, s.Now() })

	n.Send(0, 1, 7, 1500, "hello")
	s.Run(Second)

	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Payload != "hello" || got.SrcGS != 0 || got.DstGS != 1 {
		t.Errorf("packet corrupted: %+v", got)
	}
	if n.Delivered() != 1 {
		t.Errorf("delivered = %d", n.Delivered())
	}

	// Expected latency: per-hop serialization (1500 B at 10 Mb/s = 1.2 ms)
	// plus propagation along the snapshot shortest path.
	path, dist := topo.Snapshot(0).Path(0, 1)
	if path == nil {
		t.Fatal("no path in snapshot")
	}
	hops := len(path) - 1
	want := Seconds(float64(hops)*1500*8/10e6) + Seconds(dist/geom.SpeedOfLight)
	if diff := (at - want).Seconds(); math.Abs(diff) > 1e-3 {
		t.Errorf("delivery at %v, want about %v (hops=%d)", at, want, hops)
	}
	if got.Hops != hops {
		t.Errorf("hops = %d, want %d", got.Hops, hops)
	}
}

func TestDeliveryToUnreachableDstDropsNoRoute(t *testing.T) {
	_, n, _ := testNet(t, DefaultConfig())
	// GS 2 is at the pole, invisible to a 53-degree-inclination shell at a
	// 25-degree minimum elevation.
	n.Send(0, 2, 1, 1500, nil)
	n.Sim.Run(Second)
	if n.Drops(DropNoRoute) != 1 {
		t.Errorf("no-route drops = %d", n.Drops(DropNoRoute))
	}
	if n.Delivered() != 0 {
		t.Error("packet to pole delivered")
	}
}

func TestMissingHandlerDrops(t *testing.T) {
	s, n, _ := testNet(t, DefaultConfig())
	n.Send(0, 1, 42, 1500, nil) // no handler for flow 42
	s.Run(Second)
	if n.Drops(DropNoHandler) != 1 {
		t.Errorf("no-handler drops = %d", n.Drops(DropNoHandler))
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueuePackets = 5
	s, n, _ := testNet(t, cfg)
	received := 0
	n.RegisterFlow(1, 1, func(*Packet) { received++ })
	// Burst 20 packets at once: 1 transmits immediately, 5 queue, 14 drop.
	for i := 0; i < 20; i++ {
		n.Send(0, 1, 1, 1500, nil)
	}
	s.Run(10 * Second)
	if n.Drops(DropQueue) != 14 {
		t.Errorf("queue drops = %d, want 14", n.Drops(DropQueue))
	}
	if received != 6 {
		t.Errorf("received = %d, want 6", received)
	}
}

func TestHopLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHops = 1
	s, n, topo := testNet(t, cfg)
	n.RegisterFlow(1, 1, func(*Packet) { t.Error("multi-hop packet delivered under MaxHops=1") })
	// The Istanbul->Nairobi path has at least 3 hops (up, >=1 ISL, down).
	if path, _ := topo.Snapshot(0).Path(0, 1); len(path)-1 < 3 {
		t.Skipf("unexpectedly short path %v", path)
	}
	n.Send(0, 1, 1, 1500, nil)
	s.Run(Second)
	if n.Drops(DropTTL) != 1 {
		t.Errorf("ttl drops = %d", n.Drops(DropTTL))
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	s, n, _ := testNet(t, DefaultConfig())
	var got []int
	n.RegisterFlow(1, 1, func(p *Packet) { got = append(got, p.Payload.(int)) })
	for i := 0; i < 10; i++ {
		n.Send(0, 1, 1, 1500, i)
	}
	s.Run(Second)
	if len(got) != 10 {
		t.Fatalf("received %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered on stable path: %v", got)
		}
	}
}

func TestSerializationSpacing(t *testing.T) {
	// Back-to-back packets on the same path must arrive at least one
	// serialization time apart (10 Mb/s, 1500 B => 1.2 ms).
	s, n, _ := testNet(t, DefaultConfig())
	var arrivals []Time
	n.RegisterFlow(1, 1, func(*Packet) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 5; i++ {
		n.Send(0, 1, 1, 1500, nil)
	}
	s.Run(Second)
	if len(arrivals) != 5 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	wantGap := Seconds(1500 * 8 / 10e6)
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap < wantGap-Microsecond {
			t.Errorf("gap %d = %v, want >= %v", i, gap, wantGap)
		}
	}
}

func TestDuplicateFlowRegistrationPanics(t *testing.T) {
	_, n, _ := testNet(t, DefaultConfig())
	n.RegisterFlow(0, 1, func(*Packet) {})
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	n.RegisterFlow(0, 1, func(*Packet) {})
}

func TestUnregisterFlow(t *testing.T) {
	s, n, _ := testNet(t, DefaultConfig())
	n.RegisterFlow(1, 1, func(*Packet) { t.Error("handler called after unregister") })
	n.UnregisterFlow(1, 1)
	n.Send(0, 1, 1, 1500, nil)
	s.Run(Second)
	if n.Drops(DropNoHandler) != 1 {
		t.Error("expected no-handler drop after unregister")
	}
}

func TestInFlightPacketsSurviveForwardingChange(t *testing.T) {
	// Loss-free handoff: packets sent under the old forwarding state are
	// delivered even if the state changes while they are in flight.
	s, n, topo := testNet(t, DefaultConfig())
	delivered := 0
	n.RegisterFlow(1, 1, func(*Packet) { delivered++ })
	if p, _ := topo.Snapshot(1).Path(0, 1); p == nil {
		t.Skip("pair disconnected at t=1 in mini constellation")
	}
	n.Send(0, 1, 1, 1500, nil)
	// Replace forwarding nearly immediately (well before the ~tens of ms
	// delivery completes).
	s.Schedule(Microsecond, func() {
		n.InstallForwarding(topo.Snapshot(1).ForwardingTable())
	})
	s.Run(Second)
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestTransmitHookObservesEveryHop(t *testing.T) {
	s, n, topo := testNet(t, DefaultConfig())
	var infos []TransmitInfo
	n.SetTransmitHook(func(ti TransmitInfo) { infos = append(infos, ti) })
	n.RegisterFlow(1, 1, func(*Packet) {})
	n.Send(0, 1, 1, 1500, nil)
	s.Run(Second)
	path, _ := topo.Snapshot(0).Path(0, 1)
	if len(infos) != len(path)-1 {
		t.Fatalf("observed %d transmissions, want %d", len(infos), len(path)-1)
	}
	for i, ti := range infos {
		if ti.From != path[i] || ti.To != path[i+1] {
			t.Errorf("hop %d: %d->%d, want %d->%d", i, ti.From, ti.To, path[i], path[i+1])
		}
		if ti.Arrive <= ti.Start {
			t.Errorf("hop %d: arrive %v <= start %v", i, ti.Arrive, ti.Start)
		}
	}
}

func TestQueueLen(t *testing.T) {
	s, n, _ := testNet(t, DefaultConfig())
	n.RegisterFlow(1, 1, func(*Packet) {})
	for i := 0; i < 10; i++ {
		n.Send(0, 1, 1, 1500, nil)
	}
	// Before the simulator runs, 1 is in transmission and 9 queued on the
	// source's GSL device.
	srcNode := n.Topo.GSNode(0)
	if got := n.QueueLen(srcNode, 0); got != 9 {
		t.Errorf("queue length = %d, want 9", got)
	}
	s.Run(Second)
	if got := n.QueueLen(srcNode, 0); got != 0 {
		t.Errorf("queue length after drain = %d", got)
	}
}

func TestSendWithoutForwardingPanics(t *testing.T) {
	topo := testTopo(t)
	n, err := NewNetwork(NewSimulator(), topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	n.Send(0, 1, 1, 100, nil)
}

func TestDropReasonString(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropQueue: "queue-full", DropNoRoute: "no-route",
		DropTTL: "ttl-exceeded", DropNoHandler: "no-handler",
		numDropReasons: "unknown",
	} {
		if got := r.String(); got != want {
			t.Errorf("String(%d) = %q", r, got)
		}
	}
}

func TestDeviceStats(t *testing.T) {
	s, n, topo := testNet(t, DefaultConfig())
	n.RegisterFlow(1, 1, func(*Packet) {})
	for i := 0; i < 10; i++ {
		n.Send(0, 1, 1, 1500, nil)
	}
	s.Run(Second)
	stats := n.DeviceStats()
	// One GSL device per node plus two ISL devices per satellite (4 per
	// sat shared pairwise = 4 entries per sat).
	wantDevs := topo.NumNodes() + 4*topo.NumSats()
	if len(stats) != wantDevs {
		t.Fatalf("devices = %d, want %d", len(stats), wantDevs)
	}
	var srcGSL *DeviceStats
	var totalTx uint64
	for i := range stats {
		st := &stats[i]
		if st.MaxQueue < 0 || st.TxBytes < st.TxPkts {
			t.Fatalf("implausible stats %+v", st)
		}
		totalTx += st.TxPkts
		if st.Node == topo.GSNode(0) && st.Peer == -1 {
			srcGSL = st
		}
	}
	if srcGSL == nil {
		t.Fatal("source GSL device missing")
	}
	if srcGSL.TxPkts != 10 {
		t.Errorf("source GSL sent %d packets, want 10", srcGSL.TxPkts)
	}
	if srcGSL.MaxQueue != 9 {
		t.Errorf("source GSL max queue = %d, want 9", srcGSL.MaxQueue)
	}
	if srcGSL.TxBytes != 15000 {
		t.Errorf("source GSL bytes = %d", srcGSL.TxBytes)
	}
	// Every hop shows up somewhere.
	path, _ := topo.Snapshot(0).Path(0, 1)
	if totalTx != uint64(10*(len(path)-1)) {
		t.Errorf("total transmissions = %d, want %d", totalTx, 10*(len(path)-1))
	}
}

// TestInstallForwardingReturnsDisplacedTable verifies the recycle-point
// contract: the first install displaces nothing, and each subsequent
// install hands back exactly the table it replaced.
func TestInstallForwardingReturnsDisplacedTable(t *testing.T) {
	topo := testTopo(t)
	s := NewSimulator()
	n, err := NewNetwork(s, topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := topo.Snapshot(0).ForwardingTable()
	b := topo.Snapshot(1).ForwardingTable()
	if prev := n.InstallForwarding(a); prev != nil {
		t.Errorf("first install displaced %v, want nil", prev)
	}
	if prev := n.InstallForwarding(b); prev != a {
		t.Errorf("second install displaced %p, want %p", prev, a)
	}
	if prev := n.InstallForwarding(a); prev != b {
		t.Errorf("third install displaced %p, want %p", prev, b)
	}
}
