package sim

import (
	"fmt"

	"hypatia/internal/check"
	"hypatia/internal/geom"
	"hypatia/internal/routing"
)

// Packet is a simulated network packet. Size covers everything serialized on
// the wire (payload plus headers); Payload carries the transport-layer
// segment and is opaque to the network.
type Packet struct {
	ID     uint64
	SrcGS  int    // source ground-station index
	DstGS  int    // destination ground-station index
	FlowID uint32 // demultiplexing key at the destination node
	Size   int    // bytes on the wire
	Hops   int    // hops traversed so far
	SentAt Time   // time the packet entered the network at its source

	Payload any
}

// Handler consumes packets delivered to a ground station for a flow.
type Handler func(*Packet)

// DropReason classifies packet drops.
type DropReason int

const (
	// DropQueue: the outgoing device's drop-tail queue was full.
	DropQueue DropReason = iota
	// DropNoRoute: the forwarding table had no next hop for the
	// destination (e.g. the destination GS sees no satellite).
	DropNoRoute
	// DropTTL: the packet exceeded the hop limit (transient loops can form
	// while forwarding state is mid-update across nodes).
	DropTTL
	// DropNoHandler: delivered to the destination GS but no transport
	// handler was registered for the flow.
	DropNoHandler
	// DropLink: the configured LossModel discarded the packet in flight
	// (e.g. weather-induced loss on a ground-satellite link).
	DropLink
	numDropReasons
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropQueue:
		return "queue-full"
	case DropNoRoute:
		return "no-route"
	case DropTTL:
		return "ttl-exceeded"
	case DropNoHandler:
		return "no-handler"
	case DropLink:
		return "link-loss"
	}
	return "unknown"
}

// Config sets the network-wide link and queue parameters. The paper's
// experiments use uniform rates across ISLs and GSLs (10 Mbit/s in the path
// studies, swept in the scalability study) and 100-packet drop-tail queues.
type Config struct {
	ISLRateBps   float64 // inter-satellite link rate, bits/s
	GSLRateBps   float64 // ground-satellite link rate, bits/s
	QueuePackets int     // drop-tail queue capacity per device, packets
	MaxHops      int     // hop limit; 0 means the default of 64
	// PosQuantum is the satellite-position cache granularity for
	// propagation-delay computation. Positions move < 100 m per 10 ms,
	// i.e. well under a microsecond of delay error. 0 means 10 ms.
	PosQuantum Time

	// RateFor optionally overrides the link rate (bits/s) per directed
	// device. It is consulted once per device at construction time with
	// the owning node and, for ISL devices, the fixed peer (-1 for GSL
	// devices). Returning 0 keeps the uniform default. This implements
	// the paper's "heterogeneity in terms of link capacities is easy to
	// accommodate" extension — e.g. newer satellites with faster ISLs.
	RateFor func(node, peer int) float64

	// LossModel optionally drops packets in flight on a link: it is
	// consulted once per transmission with the endpoints and the send
	// time, and returning true discards the packet after serialization
	// (the receiver simply never sees it). It enables the paper's
	// weather/reliability future-work experiments, e.g. rain fade on
	// GSLs in a geographic region.
	LossModel func(from, to int, at Time) bool
}

// DefaultConfig returns the paper's default experiment parameters.
func DefaultConfig() Config {
	return Config{
		ISLRateBps:   10e6,
		GSLRateBps:   10e6,
		QueuePackets: 100,
		MaxHops:      64,
		PosQuantum:   10 * Millisecond,
	}
}

// WithDefaults fills zero-valued fields with the paper's defaults and
// returns the result. NewNetwork applies it automatically; callers that
// need to read effective values before construction may call it directly.
func (c Config) WithDefaults() Config {
	if c.ISLRateBps == 0 {
		c.ISLRateBps = 10e6
	}
	if c.GSLRateBps == 0 {
		c.GSLRateBps = 10e6
	}
	if c.QueuePackets == 0 {
		c.QueuePackets = 100
	}
	if c.MaxHops == 0 {
		c.MaxHops = 64
	}
	if c.PosQuantum == 0 {
		c.PosQuantum = 10 * Millisecond
	}
	return c
}

// TransmitInfo describes one link transmission, for monitoring hooks.
type TransmitInfo struct {
	From, To int // node ids
	Packet   *Packet
	Start    Time // serialization start
	Arrive   Time // arrival at the receiving node
}

// Network is the packet-forwarding fabric over a Topology: one node per
// satellite and ground station, a point-to-point device pair per ISL, and
// one shared GSL device per node (the paper's default of one GSL network
// device per satellite and ground station, able to send to any other GSL
// device the forwarding plan names).
type Network struct {
	Sim  *Simulator
	Topo *routing.Topology

	cfg   Config
	nodes []*node
	ft    *routing.ForwardingTable

	// Position cache for propagation delays.
	pos       []geom.Vec3
	posBucket Time

	onTransmit func(TransmitInfo)
	onDrop     func(node int, pkt *Packet, reason DropReason)
	onDeliver  func(gs int, pkt *Packet)

	nextPktID uint64
	delivered uint64
	drops     [numDropReasons]uint64
}

type node struct {
	id    int
	net   *Network
	isl   map[int32]*device // keyed by neighbor node id
	gsl   *device
	flows map[uint32]Handler // only populated on ground stations
}

// queued is one packet awaiting transmission along with its concrete
// next-hop target (resolved at enqueue time; a later forwarding-state change
// does not reroute already queued packets, matching loss-free handoff).
type queued struct {
	pkt    *Packet
	target int32
}

// device is a transmitting interface with a fixed-capacity drop-tail FIFO.
type device struct {
	node    *node
	rateBps float64
	// fixedPeer is the ISL peer node id, or -1 for the GSL device (the
	// target then travels with each queued packet).
	fixedPeer int32
	ring      []queued
	head, n   int
	busy      bool

	// Statistics.
	txPackets uint64
	txBytes   uint64
	maxQueue  int
}

// DeviceStats is a snapshot of one device's counters.
type DeviceStats struct {
	Node     int
	Peer     int // ISL peer node, or -1 for the GSL device
	RateBps  float64
	TxPkts   uint64
	TxBytes  uint64
	MaxQueue int // peak queue occupancy observed
}

// DeviceStats returns per-device counters for every device in the network,
// satellites first (each node's GSL device, then its ISL devices in
// ascending peer order). Useful for post-run diagnostics: hot devices,
// buffer headroom, and rate utilization.
func (n *Network) DeviceStats() []DeviceStats {
	var out []DeviceStats
	for _, nd := range n.nodes {
		out = append(out, deviceStats(nd.gsl))
		peers := make([]int32, 0, len(nd.isl))
		for p := range nd.isl {
			peers = append(peers, p)
		}
		for i := 1; i < len(peers); i++ { // insertion sort: tiny lists
			for j := i; j > 0 && peers[j-1] > peers[j]; j-- {
				peers[j-1], peers[j] = peers[j], peers[j-1]
			}
		}
		for _, p := range peers {
			out = append(out, deviceStats(nd.isl[p]))
		}
	}
	return out
}

func deviceStats(d *device) DeviceStats {
	return DeviceStats{
		Node: d.node.id, Peer: int(d.fixedPeer), RateBps: d.rateBps,
		TxPkts: d.txPackets, TxBytes: d.txBytes, MaxQueue: d.maxQueue,
	}
}

func newDevice(nd *node, rate float64, peer int32, capacity int) *device {
	return &device{node: nd, rateBps: rate, fixedPeer: peer, ring: make([]queued, capacity)}
}

// NewNetwork builds the node and device fabric for a topology.
func NewNetwork(s *Simulator, topo *routing.Topology, cfg Config) (*Network, error) {
	cfg = cfg.WithDefaults()
	if cfg.ISLRateBps < 0 || cfg.GSLRateBps < 0 {
		return nil, fmt.Errorf("sim: negative link rate")
	}
	if cfg.QueuePackets < 0 {
		return nil, fmt.Errorf("sim: negative queue capacity")
	}
	rateFor := func(node, peer int, fallback float64) float64 {
		if cfg.RateFor != nil {
			if r := cfg.RateFor(node, peer); r > 0 {
				return r
			}
		}
		return fallback
	}
	n := &Network{Sim: s, Topo: topo, cfg: cfg, posBucket: -1}
	n.nodes = make([]*node, topo.NumNodes())
	for i := range n.nodes {
		nd := &node{id: i, net: n, isl: map[int32]*device{}}
		nd.gsl = newDevice(nd, rateFor(i, -1, cfg.GSLRateBps), -1, cfg.QueuePackets)
		if topo.IsGS(i) {
			nd.flows = map[uint32]Handler{}
		}
		n.nodes[i] = nd
	}
	for _, isl := range topo.Constellation.ISLs {
		a, b := n.nodes[isl.A], n.nodes[isl.B]
		a.isl[int32(isl.B)] = newDevice(a, rateFor(isl.A, isl.B, cfg.ISLRateBps), int32(isl.B), cfg.QueuePackets)
		b.isl[int32(isl.A)] = newDevice(b, rateFor(isl.B, isl.A, cfg.ISLRateBps), int32(isl.A), cfg.QueuePackets)
	}
	return n, nil
}

// Config returns the network's configuration (with defaults applied).
func (n *Network) Config() Config { return n.cfg }

// SetTransmitHook registers fn to observe every link transmission. Pass nil
// to disable. Used by the utilization experiments (Figs 10, 14, 15).
func (n *Network) SetTransmitHook(fn func(TransmitInfo)) { n.onTransmit = fn }

// SetDropHook registers fn to observe every packet drop with the node where
// it occurred and the reason. Pass nil to disable.
func (n *Network) SetDropHook(fn func(node int, pkt *Packet, reason DropReason)) { n.onDrop = fn }

// SetDeliverHook registers fn to observe every packet handed to a transport
// handler at its destination ground station. Pass nil to disable.
func (n *Network) SetDeliverHook(fn func(gs int, pkt *Packet)) { n.onDeliver = fn }

// drop counts a drop and notifies the hook.
func (n *Network) drop(node int, pkt *Packet, reason DropReason) {
	n.drops[reason]++
	if n.onDrop != nil {
		n.onDrop(node, pkt, reason)
	}
}

// InstallForwarding replaces the network-wide forwarding state and returns
// the table it displaced (nil on the first install). In-flight and
// already-queued packets continue to their previously resolved next hops
// (the paper's loss-free handoff assumption); only subsequent forwarding
// decisions use the new state. Because next hops are resolved at enqueue
// time and travel with each queued packet, the displaced table is never
// consulted again — the return value is the engine's recycle point for
// pooled table arenas (routing.ForwardingTable.Release).
func (n *Network) InstallForwarding(ft *routing.ForwardingTable) *routing.ForwardingTable {
	prev := n.ft
	n.ft = ft
	return prev
}

// RegisterFlow attaches a transport handler for flowID at ground station
// gs. Registering a duplicate flow id on the same station panics: flow ids
// must be unique per endpoint.
func (n *Network) RegisterFlow(gs int, flowID uint32, h Handler) {
	nd := n.nodes[n.Topo.GSNode(gs)]
	if _, dup := nd.flows[flowID]; dup {
		panic(fmt.Sprintf("sim: duplicate flow %d at GS %d", flowID, gs))
	}
	nd.flows[flowID] = h
}

// UnregisterFlow removes a flow handler.
func (n *Network) UnregisterFlow(gs int, flowID uint32) {
	delete(n.nodes[n.Topo.GSNode(gs)].flows, flowID)
}

// Send injects a packet at its source ground station. The packet is
// forwarded per the current forwarding state; the returned packet ID
// identifies it in traces.
func (n *Network) Send(srcGS, dstGS int, flowID uint32, size int, payload any) uint64 {
	n.nextPktID++
	pkt := &Packet{
		ID:      n.nextPktID,
		SrcGS:   srcGS,
		DstGS:   dstGS,
		FlowID:  flowID,
		Size:    size,
		SentAt:  n.Sim.Now(),
		Payload: payload,
	}
	n.forward(n.nodes[n.Topo.GSNode(srcGS)], pkt)
	return pkt.ID
}

// Delivered returns the count of packets handed to transport handlers.
func (n *Network) Delivered() uint64 { return n.delivered }

// Drops returns the number of packets dropped for the given reason.
func (n *Network) Drops(r DropReason) uint64 { return n.drops[r] }

// TotalDrops returns all drops.
func (n *Network) TotalDrops() uint64 {
	var total uint64
	for _, d := range n.drops {
		total += d
	}
	return total
}

// positionsAt returns cached node positions for the quantized instant
// containing t.
func (n *Network) positionsAt(t Time) []geom.Vec3 {
	bucket := t / n.cfg.PosQuantum
	if bucket != n.posBucket || n.pos == nil {
		n.pos = n.Topo.NodePositions(Time(bucket*n.cfg.PosQuantum).Seconds(), n.pos)
		n.posBucket = bucket
	}
	return n.pos
}

// propagationDelay returns the current one-way propagation delay between
// two nodes at time t.
func (n *Network) propagationDelay(a, b int, t Time) Time {
	pos := n.positionsAt(t)
	return Seconds(pos[a].Distance(pos[b]) / geom.SpeedOfLight)
}

// forward routes a packet held by nd toward its destination GS.
func (n *Network) forward(nd *node, pkt *Packet) {
	if n.ft == nil {
		panic("sim: no forwarding state installed")
	}
	if pkt.Hops >= n.cfg.MaxHops {
		n.drop(nd.id, pkt, DropTTL)
		return
	}
	nh := n.ft.NextHop(nd.id, pkt.DstGS)
	if nh < 0 {
		n.drop(nd.id, pkt, DropNoRoute)
		return
	}
	dev := nd.isl[nh]
	if dev == nil {
		dev = nd.gsl
	}
	n.enqueue(dev, pkt, nh)
}

// enqueue appends the packet to the device's drop-tail queue and kicks the
// transmitter if idle.
func (n *Network) enqueue(dev *device, pkt *Packet, target int32) {
	if dev.n == len(dev.ring) {
		n.drop(dev.node.id, pkt, DropQueue)
		return
	}
	dev.ring[(dev.head+dev.n)%len(dev.ring)] = queued{pkt: pkt, target: target}
	dev.n++
	if check.Enabled {
		check.Assert(dev.n >= 1 && dev.n <= len(dev.ring),
			"device %d queue occupancy %d outside [1, %d] after enqueue", dev.node.id, dev.n, len(dev.ring))
	}
	if dev.n > dev.maxQueue {
		dev.maxQueue = dev.n
	}
	if !dev.busy {
		n.transmitNext(dev)
	}
}

// transmitNext serializes the head-of-line packet, schedules its arrival at
// the target after the propagation delay, and chains the next transmission.
func (n *Network) transmitNext(dev *device) {
	if check.Enabled {
		check.Assert(dev.n > 0, "device %d transmit with empty queue", dev.node.id)
	}
	q := dev.ring[dev.head]
	dev.ring[dev.head] = queued{}
	dev.head = (dev.head + 1) % len(dev.ring)
	dev.n--
	dev.busy = true
	dev.txPackets++
	dev.txBytes += uint64(q.pkt.Size)

	start := n.Sim.Now()
	txTime := Seconds(float64(q.pkt.Size*8) / dev.rateBps)
	n.Sim.Schedule(txTime, func() {
		done := n.Sim.Now()
		prop := n.propagationDelay(dev.node.id, int(q.target), done)
		if n.onTransmit != nil {
			n.onTransmit(TransmitInfo{
				From: dev.node.id, To: int(q.target),
				Packet: q.pkt, Start: start, Arrive: done + prop,
			})
		}
		if n.cfg.LossModel != nil && n.cfg.LossModel(dev.node.id, int(q.target), done) {
			n.drop(dev.node.id, q.pkt, DropLink)
		} else {
			target := n.nodes[q.target]
			pkt := q.pkt
			n.Sim.Schedule(prop, func() { n.receive(target, pkt) })
		}
		if dev.n > 0 {
			n.transmitNext(dev)
		} else {
			dev.busy = false
		}
	})
}

// receive handles packet arrival at a node: local delivery at the
// destination ground station, forwarding everywhere else.
func (n *Network) receive(nd *node, pkt *Packet) {
	pkt.Hops++
	if n.Topo.IsGS(nd.id) && n.Topo.GSIndex(nd.id) == pkt.DstGS {
		h := nd.flows[pkt.FlowID]
		if h == nil {
			n.drop(nd.id, pkt, DropNoHandler)
			return
		}
		n.delivered++
		if n.onDeliver != nil {
			n.onDeliver(pkt.DstGS, pkt)
		}
		h(pkt)
		return
	}
	n.forward(nd, pkt)
}

// QueueLen reports the queue occupancy of the device from node `from`
// toward node `to` (an ISL device if the pair is an ISL, otherwise the GSL
// device of `from`). Useful for tests and instrumentation.
func (n *Network) QueueLen(from, to int) int {
	nd := n.nodes[from]
	if dev, ok := nd.isl[int32(to)]; ok {
		return dev.n
	}
	return nd.gsl.n
}
