package sim

import (
	"fmt"

	"hypatia/internal/check"
	"hypatia/internal/geom"
	"hypatia/internal/routing"
)

// Packet is a simulated network packet. Size covers everything serialized on
// the wire (payload plus headers); Payload carries the transport-layer
// segment and is opaque to the network.
type Packet struct {
	ID     uint64
	SrcGS  int    //hypatia:handle(gs) source ground-station index
	DstGS  int    //hypatia:handle(gs) destination ground-station index
	FlowID uint32 // demultiplexing key at the destination node
	Size   int    // bytes on the wire
	Hops   int    // hops traversed so far
	SentAt Time   // time the packet entered the network at its source

	Payload any
}

// Handler consumes packets delivered to a ground station for a flow.
type Handler func(*Packet)

// DropReason classifies packet drops.
type DropReason int

const (
	// DropQueue: the outgoing device's drop-tail queue was full.
	DropQueue DropReason = iota
	// DropNoRoute: the forwarding table had no next hop for the
	// destination (e.g. the destination GS sees no satellite).
	DropNoRoute
	// DropTTL: the packet exceeded the hop limit (transient loops can form
	// while forwarding state is mid-update across nodes).
	DropTTL
	// DropNoHandler: delivered to the destination GS but no transport
	// handler was registered for the flow.
	DropNoHandler
	// DropLink: the configured LossModel discarded the packet in flight
	// (e.g. weather-induced loss on a ground-satellite link).
	DropLink
	numDropReasons
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropQueue:
		return "queue-full"
	case DropNoRoute:
		return "no-route"
	case DropTTL:
		return "ttl-exceeded"
	case DropNoHandler:
		return "no-handler"
	case DropLink:
		return "link-loss"
	}
	return "unknown"
}

// Config sets the network-wide link and queue parameters. The paper's
// experiments use uniform rates across ISLs and GSLs (10 Mbit/s in the path
// studies, swept in the scalability study) and 100-packet drop-tail queues.
type Config struct {
	ISLRateBps   float64 // inter-satellite link rate, bits/s
	GSLRateBps   float64 // ground-satellite link rate, bits/s
	QueuePackets int     // drop-tail queue capacity per device, packets
	MaxHops      int     // hop limit; 0 means the default of 64
	// PosQuantum is the satellite-position cache granularity for
	// propagation-delay computation. Positions move < 100 m per 10 ms,
	// i.e. well under a microsecond of delay error. 0 means 10 ms.
	// Positions being piecewise-constant per quantum also makes the sharded
	// engine's lookahead bound exact rather than approximate (sharded.go).
	PosQuantum Time

	// RateFor optionally overrides the link rate (bits/s) per directed
	// device. It is consulted once per device at construction time with
	// the owning node and, for ISL devices, the fixed peer (-1 for GSL
	// devices). Returning 0 keeps the uniform default. This implements
	// the paper's "heterogeneity in terms of link capacities is easy to
	// accommodate" extension — e.g. newer satellites with faster ISLs.
	RateFor func(node, peer int) float64

	// LossModel optionally drops packets in flight on a link: it is
	// consulted once per transmission with the endpoints and the send
	// time, and returning true discards the packet after serialization
	// (the receiver simply never sees it). It enables the paper's
	// weather/reliability future-work experiments, e.g. rain fade on
	// GSLs in a geographic region. It must be a pure function of its
	// arguments: sharded runs consult it concurrently from shard
	// goroutines, and determinism rests on its answer depending only on
	// (from, to, at).
	LossModel func(from, to int, at Time) bool
}

// DefaultConfig returns the paper's default experiment parameters.
func DefaultConfig() Config {
	return Config{
		ISLRateBps:   10e6,
		GSLRateBps:   10e6,
		QueuePackets: 100,
		MaxHops:      64,
		PosQuantum:   10 * Millisecond,
	}
}

// WithDefaults fills zero-valued fields with the paper's defaults and
// returns the result. NewNetwork applies it automatically; callers that
// need to read effective values before construction may call it directly.
func (c Config) WithDefaults() Config {
	if c.ISLRateBps == 0 {
		c.ISLRateBps = 10e6
	}
	if c.GSLRateBps == 0 {
		c.GSLRateBps = 10e6
	}
	if c.QueuePackets == 0 {
		c.QueuePackets = 100
	}
	if c.MaxHops == 0 {
		c.MaxHops = 64
	}
	if c.PosQuantum == 0 {
		c.PosQuantum = 10 * Millisecond
	}
	return c
}

// TransmitInfo describes one link transmission, for monitoring hooks.
type TransmitInfo struct {
	From, To int // node ids
	Packet   *Packet
	Start    Time // serialization start
	Arrive   Time // arrival at the receiving node
}

// netState is the per-engine slice of mutable simulation state: forwarding
// state, the position cache, delivery/drop counters, and — in sharded runs —
// the outboxes, hook journal, and table plumbing for one shard. Each
// Simulator embeds one; the serial engine's netState on the root Simulator
// is the whole network state, while a sharded run gives each shard engine
// its own and folds counters back into the root afterwards.
//
//hypatia:confined
type netState struct {
	ft        *routing.ForwardingTable
	pos       []geom.Vec3 //hypatia:handle(node)
	posBucket Time

	delivered uint64
	drops     [numDropReasons]uint64

	// Sharded-run fields (unused on the root engine in serial runs).
	// outbox[k] collects handoffs destined for shard k during a window; the
	// coordinator drains it between windows. journal accumulates deferred
	// hook emissions for the post-run merge. pendingTables are per-shard
	// forwarding-table clones staged by the coordinator for this shard's
	// upcoming install events; freed returns displaced clones for reuse.
	journaling    bool
	installs      int
	outbox        [][]handoff //hypatia:handle(shard)
	journal       []journalRec
	pendingTables []*routing.ForwardingTable
	freed         []*routing.ForwardingTable
}

// queued is one packet awaiting transmission along with its concrete
// next-hop target (resolved at enqueue time; a later forwarding-state change
// does not reroute already queued packets, matching loss-free handoff).
type queued struct {
	pkt    *Packet
	target int32 //hypatia:handle(node)
}

// device is a transmitting interface with a fixed-capacity drop-tail FIFO,
// stored struct-of-arrays in Network.devs and addressed by integer handle;
// its ring lives in the shared Network.rings slab. Each device is owned by
// the engine executing its node's events — the serial loop, or exactly one
// shard in a sharded run.
//
//hypatia:confined
type device struct {
	node    int32 //hypatia:handle(node)
	rateBps float64
	// fixedPeer is the ISL peer node id, or -1 for the GSL device (the
	// target then travels with each queued packet).
	fixedPeer int32 //hypatia:handle(node)
	// head is the ring read position; advancing it retires the slot it
	// addressed, so the write invalidates outstanding ring-slot handles.
	head int32 //hypatia:epoch(ring-slot)
	n    int32
	busy bool

	// The in-flight packet, popped from the ring when serialization starts
	// and resolved when the evTransmitDone event for this device fires.
	inflight       *Packet
	inflightTarget int32 //hypatia:handle(node)
	inflightStart  Time

	// Statistics.
	txPackets uint64
	txBytes   uint64
	maxQueue  int32
}

// Network is the packet-forwarding fabric over a Topology: one node per
// satellite and ground station, a point-to-point device pair per ISL, and
// one shared GSL device per node (the paper's default of one GSL network
// device per satellite and ground station, able to send to any other GSL
// device the forwarding plan names). All per-node structures are flat
// arrays indexed by integer handles: devices live in devs (per node: the
// GSL device, then ISL devices in ascending peer order), with the ISL
// adjacency in CSR form (islIdx/islPeer/islDev) and every device ring in
// one rings slab.
type Network struct {
	Sim  *Simulator
	Topo *routing.Topology

	cfg Config

	devs    []device             //hypatia:handle(device)
	rings   []queued             //hypatia:handle(ring-slot) len(devs) * cfg.QueuePackets, ring i at [i*Q, (i+1)*Q)
	gslDev  []int32              //hypatia:handle(node->device) node -> its GSL device handle
	islIdx  []int32              //hypatia:handle(node->isl-slot) CSR offsets into islPeer/islDev, len NumNodes+1
	islPeer []int32              //hypatia:handle(isl-slot->node) ISL neighbor node ids, ascending per node
	islDev  []int32              //hypatia:handle(isl-slot->device) device handle per ISL neighbor
	flows   []map[uint32]Handler //hypatia:handle(node) per node; non-nil only on ground stations
	pktSeq  []uint32             //hypatia:handle(node) per-node packet ID counters

	// Sharded-run routing: nil outside RunSharded. shardOf maps node ->
	// shard index; sims holds the shard engines (sharded.go).
	shardOf []int32      //hypatia:handle(node->shard)
	sims    []*Simulator //hypatia:handle(shard)

	// Colocation constraints for sharding: a union-find over ground-station
	// indices. Flows that share state across two stations (every transport
	// here) keep their endpoints in one shard so transport callbacks stay
	// single-engine; RegisterFlow unions automatically.
	coloc  []int32 //hypatia:handle(gs->gs)
	flowGS map[uint32]int32

	onTransmit func(TransmitInfo)
	onDrop     func(at Time, node int, pkt *Packet, reason DropReason)
	onDeliver  func(at Time, gs int, pkt *Packet)

	// tableSource feeds forwarding tables to sharded runs' install events,
	// in update-instant order (core wires the pipeline here).
	tableSource func() *routing.ForwardingTable
}

// DeviceStats is a snapshot of one device's counters.
type DeviceStats struct {
	Node     int
	Peer     int // ISL peer node, or -1 for the GSL device
	RateBps  float64
	TxPkts   uint64
	TxBytes  uint64
	MaxQueue int // peak queue occupancy observed
}

// DeviceStats returns per-device counters for every device in the network,
// satellites first (each node's GSL device, then its ISL devices in
// ascending peer order — the construction order of devs). Useful for
// post-run diagnostics: hot devices, buffer headroom, and rate utilization.
func (n *Network) DeviceStats() []DeviceStats {
	out := make([]DeviceStats, len(n.devs))
	for i := range n.devs {
		d := &n.devs[i]
		out[i] = DeviceStats{
			Node: int(d.node), Peer: int(d.fixedPeer), RateBps: d.rateBps,
			TxPkts: d.txPackets, TxBytes: d.txBytes, MaxQueue: int(d.maxQueue),
		}
	}
	return out
}

// NewNetwork builds the node and device fabric for a topology.
func NewNetwork(s *Simulator, topo *routing.Topology, cfg Config) (*Network, error) {
	cfg = cfg.WithDefaults()
	if cfg.ISLRateBps < 0 || cfg.GSLRateBps < 0 {
		return nil, fmt.Errorf("sim: negative link rate")
	}
	if cfg.QueuePackets < 0 {
		return nil, fmt.Errorf("sim: negative queue capacity")
	}
	rateFor := func(node, peer int, fallback float64) float64 {
		if cfg.RateFor != nil {
			if r := cfg.RateFor(node, peer); r > 0 {
				return r
			}
		}
		return fallback
	}
	numNodes := topo.NumNodes()
	n := &Network{Sim: s, Topo: topo, cfg: cfg}
	s.net = n
	s.st.posBucket = -1

	adj := make([][]int32, numNodes)
	for _, isl := range topo.Constellation.ISLs {
		adj[isl.A] = append(adj[isl.A], int32(isl.B))
		adj[isl.B] = append(adj[isl.B], int32(isl.A))
	}
	for _, peers := range adj {
		for i := 1; i < len(peers); i++ { // insertion sort: tiny lists
			for j := i; j > 0 && peers[j-1] > peers[j]; j-- {
				peers[j-1], peers[j] = peers[j], peers[j-1]
			}
		}
	}

	n.gslDev = make([]int32, numNodes)
	n.islIdx = make([]int32, numNodes+1)
	n.flows = make([]map[uint32]Handler, numNodes)
	n.pktSeq = make([]uint32, numNodes)
	for i := 0; i < numNodes; i++ { //hypatia:handle(node) construction walks nodes in id order
		n.gslDev[i] = int32(len(n.devs))
		n.devs = append(n.devs, device{node: int32(i), fixedPeer: -1, rateBps: rateFor(i, -1, cfg.GSLRateBps)})
		for _, p := range adj[i] {
			n.islPeer = append(n.islPeer, p)
			n.islDev = append(n.islDev, int32(len(n.devs)))
			n.devs = append(n.devs, device{node: int32(i), fixedPeer: p, rateBps: rateFor(i, int(p), cfg.ISLRateBps)})
		}
		n.islIdx[i+1] = int32(len(n.islPeer))
		if topo.IsGS(i) {
			n.flows[i] = map[uint32]Handler{}
		}
	}
	n.rings = make([]queued, len(n.devs)*cfg.QueuePackets)
	return n, nil
}

// Config returns the network's configuration (with defaults applied).
func (n *Network) Config() Config { return n.cfg }

// simFor returns the engine that owns a node's events: the root engine, or
// the node's shard engine during a sharded run.
//
//hypatia:noalloc
//hypatia:handle(node: node)
func (n *Network) simFor(node int32) *Simulator {
	if n.shardOf == nil {
		return n.Sim
	}
	return n.sims[n.shardOf[node]]
}

// SetTransmitHook registers fn to observe every link transmission. Pass nil
// to disable. Used by the utilization experiments (Figs 10, 14, 15).
func (n *Network) SetTransmitHook(fn func(TransmitInfo)) { n.onTransmit = fn }

// SetDropHook registers fn to observe every packet drop with the drop time,
// the node where it occurred, and the reason. Pass nil to disable.
func (n *Network) SetDropHook(fn func(at Time, node int, pkt *Packet, reason DropReason)) {
	n.onDrop = fn
}

// SetDeliverHook registers fn to observe every packet handed to a transport
// handler at its destination ground station, with the delivery time. Pass
// nil to disable.
func (n *Network) SetDeliverHook(fn func(at Time, gs int, pkt *Packet)) { n.onDeliver = fn }

// drop counts a drop and notifies the hook (directly, or via the shard
// journal for post-run replay in canonical order).
//
//hypatia:noalloc
//hypatia:handle(node: node)
func (n *Network) drop(s *Simulator, node int32, pkt *Packet, reason DropReason) {
	s.st.drops[reason]++
	if s.st.journaling {
		if n.onDrop != nil {
			s.st.journal = append(s.st.journal, journalRec{
				key: s.emissionKey(), jk: jDrop, at: s.now, a: node, reason: reason, pkt: *pkt,
			})
		}
		return
	}
	if n.onDrop != nil {
		n.onDrop(s.now, int(node), pkt, reason) //hypatia:allocs(amortized) monitoring hooks own their allocation budget
	}
}

// InstallForwarding replaces the network-wide forwarding state and returns
// the table it displaced (nil on the first install). In-flight and
// already-queued packets continue to their previously resolved next hops
// (the paper's loss-free handoff assumption); only subsequent forwarding
// decisions use the new state. Because next hops are resolved at enqueue
// time and travel with each queued packet, the displaced table is never
// consulted again — the return value is the engine's recycle point for
// pooled table arenas (routing.ForwardingTable.Release).
func (n *Network) InstallForwarding(ft *routing.ForwardingTable) *routing.ForwardingTable {
	prev := n.Sim.st.ft
	n.Sim.st.ft = ft
	return prev
}

// SetTableSource registers the producer sharded runs pull forwarding tables
// from, one call per update instant in order (core wires its precomputation
// pipeline here). Serial runs install tables directly via InstallForwarding
// events and ignore it.
func (n *Network) SetTableSource(fn func() *routing.ForwardingTable) { n.tableSource = fn }

// installEvent is the evInstall dispatch: install the next staged table
// clone for this engine, retiring the displaced clone for reuse.
//
//hypatia:noalloc
func (n *Network) installEvent(s *Simulator, idx int) {
	if len(s.st.pendingTables) == 0 {
		panic(fmt.Sprintf("sim: install event %d with no staged forwarding table", idx))
	}
	ft := s.st.pendingTables[0]
	s.st.pendingTables = s.st.pendingTables[1:]
	if prev := s.st.ft; prev != nil {
		s.st.freed = append(s.st.freed, prev)
	}
	s.st.ft = ft
	s.st.installs++
}

// RegisterFlow attaches a transport handler for flowID at ground station
// gs. Registering a duplicate flow id on the same station panics: flow ids
// must be unique per endpoint. Registering the same flow id at two stations
// colocates them for sharded runs (the flow's handlers are assumed to share
// state, so both endpoints must execute on one shard).
func (n *Network) RegisterFlow(gs int, flowID uint32, h Handler) {
	node := n.Topo.GSNode(gs)
	if _, dup := n.flows[node][flowID]; dup {
		panic(fmt.Sprintf("sim: duplicate flow %d at GS %d", flowID, gs))
	}
	n.flows[node][flowID] = h
	if prev, ok := n.flowGS[flowID]; ok {
		n.colocate(prev, int32(gs))
	} else {
		if n.flowGS == nil {
			n.flowGS = map[uint32]int32{}
		}
		n.flowGS[flowID] = int32(gs)
	}
}

// UnregisterFlow removes a flow handler.
func (n *Network) UnregisterFlow(gs int, flowID uint32) {
	delete(n.flows[n.Topo.GSNode(gs)], flowID)
}

// Send injects a packet at its source ground station. The packet is
// forwarded per the current forwarding state; the returned packet ID
// identifies it in traces. IDs encode (source node, per-node sequence) so
// that concurrently executing shards mint identical IDs to a serial run.
func (n *Network) Send(srcGS, dstGS int, flowID uint32, size int, payload any) uint64 {
	node := int32(n.Topo.GSNode(srcGS))
	s := n.simFor(node)
	n.pktSeq[node]++
	pkt := &Packet{
		ID:      uint64(node)<<32 | uint64(n.pktSeq[node]),
		SrcGS:   srcGS,
		DstGS:   dstGS,
		FlowID:  flowID,
		Size:    size,
		SentAt:  s.now,
		Payload: payload,
	}
	n.forward(s, node, pkt)
	return pkt.ID
}

// Delivered returns the count of packets handed to transport handlers.
func (n *Network) Delivered() uint64 { return n.Sim.st.delivered }

// Drops returns the number of packets dropped for the given reason.
func (n *Network) Drops(r DropReason) uint64 { return n.Sim.st.drops[r] }

// TotalDrops returns all drops.
func (n *Network) TotalDrops() uint64 {
	var total uint64
	for _, d := range n.Sim.st.drops {
		total += d
	}
	return total
}

// positionsAt returns the engine's cached node positions for the quantized
// instant containing t.
//
//hypatia:noalloc
//hypatia:handle(return: node)
func (n *Network) positionsAt(s *Simulator, t Time) []geom.Vec3 {
	bucket := t / n.cfg.PosQuantum
	if bucket != s.st.posBucket || s.st.pos == nil {
		s.st.pos = n.Topo.NodePositions(Time(bucket*n.cfg.PosQuantum).Seconds(), s.st.pos)
		s.st.posBucket = bucket
	}
	return s.st.pos
}

// propagationDelay returns the current one-way propagation delay between
// two nodes at time t.
//
//hypatia:noalloc
//hypatia:handle(a: node, b: node)
func (n *Network) propagationDelay(s *Simulator, a, b int32, t Time) Time {
	pos := n.positionsAt(s, t)
	return Seconds(pos[a].Distance(pos[b]) / geom.SpeedOfLight)
}

// forward routes a packet held by node toward its destination GS.
//
//hypatia:noalloc
//hypatia:handle(node: node)
func (n *Network) forward(s *Simulator, node int32, pkt *Packet) {
	if s.st.ft == nil {
		panic("sim: no forwarding state installed")
	}
	if pkt.Hops >= n.cfg.MaxHops {
		n.drop(s, node, pkt, DropTTL)
		return
	}
	nh := s.st.ft.NextHop(int(node), pkt.DstGS)
	if nh < 0 {
		n.drop(s, node, pkt, DropNoRoute)
		return
	}
	dev := n.gslDev[node]
	for i := n.islIdx[node]; i < n.islIdx[node+1]; i++ {
		if n.islPeer[i] == nh {
			dev = n.islDev[i]
			break
		}
	}
	n.enqueue(s, dev, pkt, nh)
}

// enqueue appends the packet to the device's drop-tail queue and kicks the
// transmitter if idle.
//
//hypatia:noalloc
//hypatia:handle(di: device, target: node)
func (n *Network) enqueue(s *Simulator, di int32, pkt *Packet, target int32) {
	d := &n.devs[di]
	q := int32(n.cfg.QueuePackets)
	if d.n == q {
		n.drop(s, d.node, pkt, DropQueue)
		return
	}
	tail := di*q + (d.head+d.n)%q //hypatia:handle(ring-slot) tail of device di's ring
	n.rings[tail] = queued{pkt: pkt, target: target}
	d.n++
	if check.Enabled {
		check.Assert(d.n >= 1 && d.n <= q,
			"device %d queue occupancy %d outside [1, %d] after enqueue", d.node, d.n, q)
	}
	if d.n > d.maxQueue {
		d.maxQueue = d.n
	}
	if !d.busy {
		n.transmitStart(s, di)
	}
}

// transmitStart pops the head-of-line packet at serialization start and
// schedules the device's evTransmitDone for when the last bit is on the
// wire. The head advance retires the slot, so both ring accesses precede it.
//
//hypatia:noalloc
//hypatia:handle(di: device)
func (n *Network) transmitStart(s *Simulator, di int32) {
	d := &n.devs[di]
	if check.Enabled {
		check.Assert(d.n > 0, "device %d transmit with empty queue", d.node)
	}
	q := int32(n.cfg.QueuePackets)
	slot := di*q + d.head //hypatia:handle(ring-slot) head of device di's ring
	qd := n.rings[slot]
	n.rings[slot] = queued{}
	d.head = (d.head + 1) % q
	d.n--
	d.busy = true
	d.txPackets++
	d.txBytes += uint64(qd.pkt.Size)
	d.inflight = qd.pkt
	d.inflightTarget = qd.target
	d.inflightStart = s.now

	txTime := Seconds(float64(qd.pkt.Size*8) / d.rateBps)
	s.events.push(event{
		at: s.now + txTime, owner: d.node, kind: evTransmitDone,
		key: uint64(di), seq: s.nextSeq(),
	})
}

// transmitDone is the evTransmitDone dispatch: emit the transmission, apply
// link loss, hand the packet toward its target (possibly across shards),
// and chain the next serialization.
//
//hypatia:noalloc
//hypatia:handle(di: device)
func (n *Network) transmitDone(s *Simulator, di int32) {
	d := &n.devs[di]
	pkt, target, start := d.inflight, d.inflightTarget, d.inflightStart
	d.inflight = nil
	done := s.now
	prop := n.propagationDelay(s, d.node, target, done)
	if n.onTransmit != nil {
		ti := TransmitInfo{From: int(d.node), To: int(target), Packet: pkt, Start: start, Arrive: done + prop}
		if s.st.journaling {
			s.st.journal = append(s.st.journal, journalRec{
				key: s.emissionKey(), jk: jTransmit, at: start, a: d.node, b: target,
				arrive: done + prop, pkt: *pkt,
			})
		} else {
			n.onTransmit(ti) //hypatia:allocs(amortized) monitoring hooks own their allocation budget
		}
	}
	if n.cfg.LossModel != nil && n.cfg.LossModel(int(d.node), int(target), done) { //hypatia:allocs(amortized) loss models own their allocation budget
		n.drop(s, d.node, pkt, DropLink)
	} else {
		n.deliverTo(s, target, done+prop, pkt)
	}
	if d.n > 0 {
		n.transmitStart(s, di)
	} else {
		d.busy = false
	}
}

// deliverTo schedules a packet's arrival at its target node: locally when
// the target is on this engine, as a cross-shard handoff otherwise.
//
//hypatia:noalloc
//hypatia:handle(target: node)
func (n *Network) deliverTo(s *Simulator, target int32, at Time, pkt *Packet) {
	if n.shardOf != nil {
		if k := n.shardOf[target]; k != s.shard {
			if check.Enabled {
				check.Assert(at >= s.windowEnd,
					"cross-shard handoff at %v inside the lookahead window ending %v", at, s.windowEnd)
			}
			s.st.outbox[k] = append(s.st.outbox[k], handoff{at: at, node: target, pkt: pkt})
			return
		}
	}
	s.events.push(event{at: at, owner: target, kind: evReceive, key: pkt.ID, seq: s.nextSeq(), pkt: pkt})
}

// receive is the evReceive dispatch: packet arrival at a node — local
// delivery at the destination ground station, forwarding everywhere else.
//
//hypatia:noalloc
//hypatia:handle(node: node)
func (n *Network) receive(s *Simulator, node int32, pkt *Packet) {
	pkt.Hops++
	if n.Topo.IsGS(int(node)) && n.Topo.GSIndex(int(node)) == pkt.DstGS {
		h := n.flows[node][pkt.FlowID]
		if h == nil {
			n.drop(s, node, pkt, DropNoHandler)
			return
		}
		s.st.delivered++
		if n.onDeliver != nil {
			if s.st.journaling {
				s.st.journal = append(s.st.journal, journalRec{
					key: s.emissionKey(), jk: jDeliver, at: s.now, a: int32(pkt.DstGS), pkt: *pkt,
				})
			} else {
				n.onDeliver(s.now, pkt.DstGS, pkt) //hypatia:allocs(amortized) monitoring hooks own their allocation budget
			}
		}
		h(pkt) //hypatia:allocs(amortized) transport handlers own their allocation budget
		return
	}
	n.forward(s, node, pkt)
}

// QueueLen reports the queue occupancy of the device from node `from`
// toward node `to` (an ISL device if the pair is an ISL, otherwise the GSL
// device of `from`). Useful for tests and instrumentation.
func (n *Network) QueueLen(from, to int) int {
	for i := n.islIdx[from]; i < n.islIdx[from+1]; i++ {
		if n.islPeer[i] == int32(to) {
			return int(n.devs[n.islDev[i]].n)
		}
	}
	return int(n.devs[n.gslDev[from]].n)
}
