package sim

import "testing"

// BenchmarkEventThroughput measures raw discrete-event processing rate —
// the quantity that bounds simulator scalability (paper §3.4: "the
// simulation is bottlenecked at per-packet event processing").
func BenchmarkEventThroughput(b *testing.B) {
	s := NewSimulator()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.Schedule(Microsecond, tick)
		}
	}
	s.Schedule(0, tick)
	b.ResetTimer()
	s.Run(Time(1) << 60)
}

// BenchmarkEventHeapChurn exercises the heap with many pending events.
func BenchmarkEventHeapChurn(b *testing.B) {
	s := NewSimulator()
	for i := 0; i < 10000; i++ {
		s.Schedule(Time(i)*Millisecond+Second, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(Time(i%1000)*Microsecond, func() {})
	}
	s.Run(Time(1) << 60)
}
