package sim

import (
	"fmt"
	"math"

	"hypatia/internal/check"
	"hypatia/internal/geom"
	"hypatia/internal/routing"
)

// This file implements the sharded conservative-parallel execution mode.
//
// Nodes are partitioned into shards, each owning a Simulator (event heap +
// clock) that a dedicated goroutine advances through lookahead windows. The
// windows are derived from the minimum cross-shard propagation delay: any
// event a shard executes at time t can influence another shard no earlier
// than t + minProp, so all shards may run [t, W) with W = t + minProp
// concurrently without communicating. Positions are piecewise-constant per
// PosQuantum bucket, which makes the bound exact (not a motion-margin
// estimate): the window computation takes the min over every position
// bucket the window overlaps.
//
// Cross-shard packets become timestamped handoffs: the sending shard
// appends to a per-destination outbox, and the coordinator — which owns
// every shard engine between windows (ownership passes over the command/
// done channels, the machine-checked //hypatia:transfer discipline) —
// routes them into the destination heaps before the next window. Handoff
// arrival times always land at or beyond the window boundary (asserted
// under hypatia_checks), so no shard ever receives an event in its past.
//
// Determinism: events are ordered by the canonical content key
// (at, owner, kind, key, seq) on every engine, so each shard pops exactly
// the subsequence of the serial run's event sequence that its nodes own.
// Per-node state (devices, queues, flow handlers) is only touched by its
// owner's events; forwarding state and position caches are engine-local
// copies of values that are pure functions of the update instant; and
// transport endpoints are colocated onto one shard so flow callbacks stay
// single-engine. Monitoring hooks are journaled per shard with their
// canonical emission keys and replayed in merged order after the run,
// which is why a sharded run's delivery/drop/transmit traces are
// byte-identical to the serial loop's.

// handoff is a cross-shard packet arrival: pkt reaches node at time at.
// Ownership of the packet transfers with the handoff — the sending shard
// never touches it again.
type handoff struct {
	at   Time
	node int32 //hypatia:handle(node)
	pkt  *Packet
}

// Journal record kinds.
const (
	jTransmit = iota
	jDrop
	jDeliver
)

// journalRec is one deferred hook emission. pkt is a value snapshot taken
// at emission time (the live packet mutates as it keeps traveling).
type journalRec struct {
	key    journalKey
	jk     uint8
	at     Time
	a, b   int32 // jTransmit: from/to; jDrop: node; jDeliver: gs
	arrive Time
	reason DropReason
	pkt    Packet
}

// emissionKey identifies a hook emission within the executing event:
// the event's canonical key plus a per-event emission counter.
//
//hypatia:noalloc
func (s *Simulator) emissionKey() journalKey {
	k := s.cur
	k.sub = s.curSub
	s.curSub++
	return k
}

//hypatia:noalloc
func recLess(a, b *journalRec) bool {
	x, y := &a.key, &b.key
	if x.at != y.at {
		return x.at < y.at
	}
	if x.owner != y.owner {
		return x.owner < y.owner
	}
	if x.kind != y.kind {
		return x.kind < y.kind
	}
	if x.key != y.key {
		return x.key < y.key
	}
	if x.seq != y.seq {
		return x.seq < y.seq
	}
	return x.sub < y.sub
}

// Clock is a node-bound scheduling handle. Transports hold one per flow and
// use it instead of Network.Sim: in a sharded run it resolves to the engine
// that owns the node, so timers fire on the shard that executes the flow's
// packets; in a serial run it resolves to the root engine and behaves
// exactly like Simulator.Schedule/Now.
type Clock struct {
	net  *Network
	node int32 //hypatia:handle(node)
}

// Clock returns a scheduling handle bound to ground station gs.
func (n *Network) Clock(gs int) Clock {
	return Clock{net: n, node: int32(n.Topo.GSNode(gs))}
}

// Now returns the owning engine's current time.
//
//hypatia:noalloc
func (c Clock) Now() Time { return c.net.simFor(c.node).now }

// Schedule enqueues fn to run delay from now on the node's owning engine.
// Negative delays panic, as on Simulator.Schedule.
//
//hypatia:noalloc
func (c Clock) Schedule(delay Time, fn func()) {
	s := c.net.simFor(c.node)
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", delay, s.now))
	}
	s.scheduleOwnedAt(s.now+delay, c.node, fn)
}

// Colocate constrains two ground stations to the same shard. Transports
// that share state across endpoints register the constraint (RegisterFlow
// applies it automatically for flows registered at both ends); callers with
// out-of-band coupling between stations can add their own.
func (n *Network) Colocate(aGS, bGS int) { n.colocate(int32(aGS), int32(bGS)) }

//hypatia:handle(a: gs, b: gs)
func (n *Network) colocate(a, b int32) {
	if n.coloc == nil {
		n.coloc = make([]int32, n.Topo.NumGS())
		for i := range n.coloc {
			n.coloc[i] = int32(i)
		}
	}
	ra, rb := n.colocRoot(a), n.colocRoot(b)
	if ra != rb {
		if rb < ra {
			ra, rb = rb, ra
		}
		n.coloc[rb] = ra // smaller index wins: deterministic roots
	}
}

//hypatia:handle(g: gs, return: gs)
func (n *Network) colocRoot(g int32) int32 {
	if n.coloc == nil {
		return g
	}
	for n.coloc[g] != g {
		n.coloc[g] = n.coloc[n.coloc[g]] // path halving
		g = n.coloc[g]
	}
	return g
}

// partition assigns nodes to shards: satellites in contiguous id blocks
// (ISL meshes are plane-local, so block cuts keep most ISLs internal), and
// ground-station colocation groups round-robin across shards.
//
//hypatia:handle(return: node->shard)
func (n *Network) partition(shards int) []int32 {
	numSats := n.Topo.NumSats()
	shardOf := make([]int32, n.Topo.NumNodes())
	per := (numSats + shards - 1) / shards
	for s := 0; s < numSats; s++ {
		k := s / per
		if k >= shards {
			k = shards - 1
		}
		shardOf[s] = int32(k)
	}
	next := 0
	groupShard := map[int32]int32{}
	for g := 0; g < n.Topo.NumGS(); g++ {
		r := n.colocRoot(int32(g))
		k, ok := groupShard[r]
		if !ok {
			k = int32(next % shards)
			next++
			groupShard[r] = k
		}
		shardOf[n.Topo.GSNode(g)] = k
	}
	return shardOf
}

// lookahead computes per-window horizons from cross-shard geometry. The
// cross-shard link set is fixed for a partition: the ISL pairs whose
// endpoints landed on different shards, plus — for GSL traffic, where any
// satellite may talk to any ground station the forwarding plan names — every
// satellite with a ground station on another shard, bounded below by
// (satellite geocentric radius − max ground-station geocentric radius).
// Positions are piecewise-constant per PosQuantum bucket, so the per-bucket
// minimum distance is an exact bound for every transmission decided in that
// bucket.
type lookahead struct {
	n       *Network
	crossA  []int32     //hypatia:handle(->node)
	crossB  []int32     //hypatia:handle(->node)
	gslSats []int32     //hypatia:handle(->node)
	gsNodes []int32     //hypatia:handle(->node)
	pos     []geom.Vec3 //hypatia:handle(node)
	bucket  Time
	minProp Time
}

//hypatia:handle(shardOf: node->shard)
func newLookahead(n *Network, shardOf []int32, shards int) *lookahead {
	la := &lookahead{n: n, bucket: -1}
	for _, isl := range n.Topo.Constellation.ISLs {
		if shardOf[isl.A] != shardOf[isl.B] {
			la.crossA = append(la.crossA, int32(isl.A))
			la.crossB = append(la.crossB, int32(isl.B))
		}
	}
	gsShards := make([]bool, shards)
	for g := 0; g < n.Topo.NumGS(); g++ {
		node := int32(n.Topo.GSNode(g))
		la.gsNodes = append(la.gsNodes, node)
		gsShards[shardOf[node]] = true
	}
	for s := 0; s < n.Topo.NumSats(); s++ { //hypatia:handle(node) satellite ids double as node ids
		for k := range gsShards {
			if gsShards[k] && int32(k) != shardOf[s] {
				la.gslSats = append(la.gslSats, int32(s))
				break
			}
		}
	}
	return la
}

// minPropAt returns the minimum cross-shard propagation delay for one
// position bucket (cached: windows revisit the same bucket repeatedly).
//
//hypatia:noalloc
func (la *lookahead) minPropAt(bucket Time) Time {
	if bucket == la.bucket {
		return la.minProp
	}
	n := la.n
	la.pos = n.Topo.NodePositions(Time(bucket*n.cfg.PosQuantum).Seconds(), la.pos)
	minDist := math.Inf(1)
	for i := range la.crossA {
		if d := la.pos[la.crossA[i]].Distance(la.pos[la.crossB[i]]); d < minDist {
			minDist = d
		}
	}
	if len(la.gslSats) > 0 {
		var origin geom.Vec3
		maxGSR := 0.0
		for _, g := range la.gsNodes {
			if r := la.pos[g].Distance(origin); r > maxGSR {
				maxGSR = r
			}
		}
		for _, s := range la.gslSats {
			if d := la.pos[s].Distance(origin) - maxGSR; d < minDist {
				minDist = d
			}
		}
	}
	la.bucket = bucket
	switch {
	case math.IsInf(minDist, 1):
		la.minProp = Time(1) << 62 // no cross-shard links at all
	default:
		mp := Seconds(minDist / geom.SpeedOfLight)
		if mp < 1 {
			mp = 1 // degenerate geometry: keep the horizon positive
		}
		la.minProp = mp
	}
	return la.minProp
}

//hypatia:noalloc
func satAdd(a, b Time) Time {
	c := a + b
	if c < a {
		return Time(1) << 62
	}
	return c
}

// window returns the horizon for a window starting at t: the largest W such
// that every transmission decided in [t, W) arrives cross-shard at or after
// W, taking the exact per-bucket minimum over every position bucket the
// window overlaps. The final window (W reaching until) is inclusive.
//
//hypatia:noalloc
func (la *lookahead) window(t, until Time) (Time, bool) {
	q := la.n.cfg.PosQuantum
	b := t / q
	w := satAdd(t, la.minPropAt(b))
	for nb := (b + 1) * q; nb < w && nb <= until; nb += q {
		if c := satAdd(nb, la.minPropAt(nb/q)); c < w {
			w = c
		}
	}
	if w >= until {
		return until, true
	}
	return w, false
}

// shardWindow is one command to a shard goroutine: adopt an engine (sim
// non-nil, the confinement transfer point) or execute a window.
type shardWindow struct {
	sim       *Simulator
	end       Time
	inclusive bool
}

// shardLoop drives one shard. The goroutine owns nothing at launch: its
// engine arrives over cmds, and every done send parks the goroutine and
// returns engine ownership to the coordinator until the next command.
func shardLoop(cmds <-chan shardWindow, done chan<- struct{}) {
	var s *Simulator
	for w := range cmds {
		if w.sim != nil {
			s = w.sim
			continue
		}
		s.runWindow(w.end, w.inclusive)
		done <- struct{}{}
	}
}

// RunSharded executes the network's pending events to `until` on `shards`
// concurrent engines, producing delivery/drop/transmit traces byte-identical
// to Simulator.Run. installs lists forwarding-update instants; at each one,
// every shard installs a clone of the next table from the registered
// SetTableSource (required when installs is non-empty). It returns the
// number of update instants installed.
//
// Constraints: transports must bind to Network.Clock handles (all transports
// in this repo do), hook emission order is reproduced by post-run replay, a
// Stop takes effect at the current lookahead window's boundary on other
// shards, and the root engine's Schedule panics for the duration of the run.
// On return the root engine owns all unexecuted future events again (with
// the clock at until), so subsequent serial Runs may resume the same
// network; un-run install instants after a Stop are discarded.
func (n *Network) RunSharded(until Time, shards int, installs []Time) int {
	root := n.Sim
	if n.shardOf != nil {
		panic("sim: nested sharded run")
	}
	if len(installs) > 0 && n.tableSource == nil {
		panic("sim: sharded run with install instants but no table source")
	}
	if check.Enabled {
		for _, at := range installs {
			check.Assert(at > root.now && at <= until,
				"install instant %v outside the run window (%v, %v]", at, root.now, until)
		}
	}
	if shards > n.Topo.NumSats() {
		shards = n.Topo.NumSats()
	}
	if shards < 1 {
		shards = 1
	}

	shardOf := n.partition(shards)
	journaling := n.onTransmit != nil || n.onDrop != nil || n.onDeliver != nil

	sims := make([]*Simulator, shards)
	for k := range sims {
		s := NewSimulator()
		s.net = n
		s.shard = int32(k)
		s.st.posBucket = -1
		s.st.journaling = journaling
		s.st.outbox = make([][]handoff, shards)
		s.seq = root.seq
		s.now = root.now
		if root.st.ft != nil {
			s.st.ft = root.st.ft.CloneInto(nil)
		}
		sims[k] = s
	}
	// Migrate pending events to their owners' shards (unowned events run on
	// shard 0), and pre-schedule every install instant on every shard:
	// forwarding state is engine-local, so each shard installs its own
	// clone. Install events use their instant index as both key and seq so
	// all engines agree on their order.
	evs := root.events
	root.events = nil
	for i := range evs {
		e := evs[i]
		k := int32(0)
		if e.owner >= 0 {
			k = shardOf[e.owner]
		}
		sims[k].events.push(e)
	}
	for i, at := range installs {
		for k := range sims {
			sims[k].events.push(event{at: at, owner: -1, kind: evInstall, key: uint64(i), seq: uint64(i)})
		}
	}
	n.shardOf = shardOf
	n.sims = sims
	root.migrated = true

	cmds := make([]chan shardWindow, shards)
	done := make([]chan struct{}, shards)
	for k := range sims {
		cmds[k] = make(chan shardWindow, 1)
		done[k] = make(chan struct{}, 1)
		go shardLoop(cmds[k], done[k])
		cmds[k] <- shardWindow{sim: sims[k]}
	}

	la := newLookahead(n, shardOf, shards)
	var freelist []*routing.ForwardingTable
	nextInstall := 0
	stopped := false
	t := root.now
	for !stopped {
		// Jump over event gaps: handoffs are generated only by executing
		// events, so an interval with no pending events anywhere stays
		// empty.
		earliest := Time(-1)
		for k := range sims {
			if len(sims[k].events) > 0 {
				if at := sims[k].events[0].at; earliest < 0 || at < earliest {
					earliest = at
				}
			}
		}
		if earliest < 0 || earliest > until {
			break
		}
		if earliest > t {
			t = earliest
		}
		end, inclusive := la.window(t, until)
		// Stage table clones for the install instants this window executes.
		for nextInstall < len(installs) {
			at := installs[nextInstall]
			if at > end || (at == end && !inclusive) {
				break
			}
			master := n.tableSource()
			for k := range sims {
				var dst *routing.ForwardingTable
				if len(freelist) > 0 {
					dst = freelist[len(freelist)-1]
					freelist = freelist[:len(freelist)-1]
				}
				sims[k].st.pendingTables = append(sims[k].st.pendingTables, master.CloneInto(dst))
			}
			master.Release()
			nextInstall++
		}
		// Hand each engine to its shard goroutine for the window; the done
		// receives return ownership of every engine to this coordinator.
		for k := range sims {
			sims[k].windowEnd = end
			cmds[k] <- shardWindow{end: end, inclusive: inclusive}
		}
		for k := range done {
			<-done[k]
		}
		// Route handoffs into destination heaps and recycle displaced
		// table clones.
		for k := range sims {
			s := sims[k]
			if s.stopped {
				stopped = true
			}
			for j := range s.st.outbox {
				dst := sims[j]
				for _, h := range s.st.outbox[j] {
					if check.Enabled {
						check.Assert(h.at >= dst.now,
							"handoff at %v behind shard %d clock %v", h.at, j, dst.now)
					}
					dst.events.push(event{at: h.at, owner: h.node, kind: evReceive, key: h.pkt.ID, seq: dst.nextSeq(), pkt: h.pkt})
				}
				s.st.outbox[j] = s.st.outbox[j][:0]
			}
			freelist = append(freelist, s.st.freed...)
			s.st.freed = s.st.freed[:0]
		}
		t = end
	}
	for k := range cmds {
		close(cmds[k])
	}

	// Fold shard state back into the root engine: counters, clocks, and
	// unexecuted future events (so serial Runs may resume). Un-run install
	// events are dropped — their staged clones no longer exist.
	installed := sims[0].st.installs
	behind := 0
	for k := range sims {
		s := sims[k]
		if s.st.installs < installed {
			installed = s.st.installs
			behind = k
		}
		root.processed += s.processed
		root.st.delivered += s.st.delivered
		for r := range s.st.drops {
			root.st.drops[r] += s.st.drops[r]
		}
		if s.seq > root.seq {
			root.seq = s.seq
		}
	}
	n.shardOf = nil
	n.sims = nil
	root.migrated = false
	// Adopt the least-advanced shard's forwarding table (they are all
	// identical clones unless a Stop split a window) so a resumed serial
	// Run continues from the latest installed state, not the pre-run one.
	root.st.ft = sims[behind].st.ft
	for k := range sims {
		s := sims[k]
		for i := range s.events {
			if e := s.events[i]; e.kind != evInstall {
				root.events.push(e)
			}
		}
		s.events = nil
	}
	if stopped {
		root.stopped = true
		for k := range sims {
			if sims[k].now > root.now {
				root.now = sims[k].now
			}
		}
	} else {
		root.stopped = false
		if root.now < until {
			root.now = until
		}
	}
	if journaling {
		n.replayJournals(sims)
	}
	return installed
}

// replayJournals merges the per-shard hook journals (each already in
// canonical order) and fires the hooks in the exact order the serial engine
// would have.
func (n *Network) replayJournals(sims []*Simulator) {
	idx := make([]int, len(sims))
	for {
		best := -1
		for k := range sims {
			if idx[k] >= len(sims[k].st.journal) {
				continue
			}
			if best < 0 || recLess(&sims[k].st.journal[idx[k]], &sims[best].st.journal[idx[best]]) {
				best = k
			}
		}
		if best < 0 {
			return
		}
		rec := &sims[best].st.journal[idx[best]]
		idx[best]++
		switch rec.jk {
		case jTransmit:
			if n.onTransmit != nil {
				n.onTransmit(TransmitInfo{From: int(rec.a), To: int(rec.b), Packet: &rec.pkt, Start: rec.at, Arrive: rec.arrive})
			}
		case jDrop:
			if n.onDrop != nil {
				n.onDrop(rec.at, int(rec.a), &rec.pkt, rec.reason)
			}
		case jDeliver:
			if n.onDeliver != nil {
				n.onDeliver(rec.at, int(rec.a), &rec.pkt)
			}
		}
	}
}
