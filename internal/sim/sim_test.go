package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(3*Second, func() { order = append(order, 3) })
	s.Schedule(1*Second, func() { order = append(order, 1) })
	s.Schedule(2*Second, func() { order = append(order, 2) })
	s.Run(10 * Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 10*Second {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Second, func() { order = append(order, i) })
	}
	s.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var times []Time
	var tick func()
	tick = func() {
		times = append(times, s.Now())
		if len(times) < 5 {
			s.Schedule(100*Millisecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run(Second)
	if len(times) != 5 {
		t.Fatalf("ticks = %d", len(times))
	}
	for i, at := range times {
		if want := Time(i) * 100 * Millisecond; at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.Schedule(2*Second, func() { fired = true })
	s.Run(Second)
	if fired {
		t.Error("future event fired early")
	}
	if s.Now() != Second {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run(3 * Second)
	if !fired {
		t.Error("event did not fire on resumed run")
	}
}

func TestStop(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i)*Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(100 * Second)
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
	if s.Now() != 3*Second {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSimulator().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := NewSimulator()
	s.Schedule(Second, func() { s.ScheduleAt(0, func() {}) })
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.Run(2 * Second)
}

func TestProcessedCount(t *testing.T) {
	s := NewSimulator()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run(Second)
	if s.Processed() != 7 {
		t.Errorf("processed = %d", s.Processed())
	}
}

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Errorf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v", got)
	}
	if s := (1234 * Millisecond).String(); s != "1.234s" {
		t.Errorf("String = %q", s)
	}
}
