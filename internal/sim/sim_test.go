package sim

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(3*Second, func() { order = append(order, 3) })
	s.Schedule(1*Second, func() { order = append(order, 1) })
	s.Schedule(2*Second, func() { order = append(order, 2) })
	s.Run(10 * Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 10*Second {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Second, func() { order = append(order, i) })
	}
	s.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var times []Time
	var tick func()
	tick = func() {
		times = append(times, s.Now())
		if len(times) < 5 {
			s.Schedule(100*Millisecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run(Second)
	if len(times) != 5 {
		t.Fatalf("ticks = %d", len(times))
	}
	for i, at := range times {
		if want := Time(i) * 100 * Millisecond; at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.Schedule(2*Second, func() { fired = true })
	s.Run(Second)
	if fired {
		t.Error("future event fired early")
	}
	if s.Now() != Second {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run(3 * Second)
	if !fired {
		t.Error("event did not fire on resumed run")
	}
}

func TestStop(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i)*Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(100 * Second)
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
	if s.Now() != 3*Second {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSimulator().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := NewSimulator()
	s.Schedule(Second, func() { s.ScheduleAt(0, func() {}) })
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.Run(2 * Second)
}

func TestProcessedCount(t *testing.T) {
	s := NewSimulator()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run(Second)
	if s.Processed() != 7 {
		t.Errorf("processed = %d", s.Processed())
	}
}

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Errorf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v", got)
	}
	if s := (1234 * Millisecond).String(); s != "1.234s" {
		t.Errorf("String = %q", s)
	}
}

// TestSecondsRoundTrip pins the float<->Time bridge: converting a Time to
// seconds and back must reproduce it exactly for representable magnitudes,
// since Seconds() divides by 1e9 and Seconds rounds to the nearest
// nanosecond.
func TestSecondsRoundTrip(t *testing.T) {
	for _, tt := range []Time{
		0, 1, -1, Microsecond, 17 * Millisecond, Second,
		3*Second + 141592653, -2 * Second, 86400 * Second,
	} {
		if got := Seconds(tt.Seconds()); got != tt {
			t.Errorf("Seconds(%v.Seconds()) = %v, want %v", tt, got, tt)
		}
	}
}

// TestSecondsRoundsHalfAwayFromZero pins the rounding rule at the half-
// nanosecond boundary (math.Round rounds half away from zero).
func TestSecondsRoundsHalfAwayFromZero(t *testing.T) {
	cases := []struct {
		s    float64
		want Time
	}{
		{0.5e-9, 1},
		{-0.5e-9, -1},
		{1.5e-9, 2},
		{0.49e-9, 0},
		{-0.49e-9, 0},
		{2.4e-9, 2},
	}
	for _, c := range cases {
		if got := Seconds(c.s); got != c.want {
			t.Errorf("Seconds(%g) = %d ns, want %d ns", c.s, int64(got), int64(c.want))
		}
	}
}

// TestTimeStringNegative pins String formatting for negative durations and
// sub-millisecond rounding behavior.
func TestTimeStringNegative(t *testing.T) {
	if s := (-1500 * Millisecond).String(); s != "-1.500s" {
		t.Errorf("String = %q, want %q", s, "-1.500s")
	}
	if s := (1*Millisecond + 499*Microsecond).String(); s != "0.001s" {
		t.Errorf("String = %q, want %q", s, "0.001s")
	}
}

// TestTimeStringTable exercises String across signs, rounding boundaries,
// and the int64 extremes. Rounding is half away from zero, so negative
// durations format as the exact mirror of their positive counterparts
// (%.3f's round-half-to-even plus float truncation used to render e.g.
// -500µs and 500µs asymmetrically).
func TestTimeStringTable(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0.000s"},
		{Second, "1.000s"},
		{-Second, "-1.000s"},
		{1500 * Millisecond, "1.500s"},
		{-1500 * Millisecond, "-1.500s"},
		{499 * Microsecond, "0.000s"},
		{-499 * Microsecond, "0.000s"}, // rounds to zero: no "-0.000s"
		{500 * Microsecond, "0.001s"},
		{-500 * Microsecond, "-0.001s"},
		{1*Millisecond + 499*Microsecond, "0.001s"},
		{-1*Millisecond - 499*Microsecond, "-0.001s"},
		{1*Millisecond + 500*Microsecond, "0.002s"},
		{-1*Millisecond - 500*Microsecond, "-0.002s"},
		{999_999_999 * Nanosecond, "1.000s"},
		{-999_999_999 * Nanosecond, "-1.000s"},
		{Nanosecond, "0.000s"},
		{-Nanosecond, "0.000s"},
		{200 * Second, "200.000s"},
		{Time(math.MaxInt64), "9223372036.855s"},
		{Time(math.MinInt64), "-9223372036.855s"},
		{Time(math.MinInt64) + 1, "-9223372036.855s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// TestFIFOTieBreakNested verifies the (at, seq) ordering when a handler
// schedules more work at the very instant that is currently executing: the
// nested zero-delay events must run after every event already queued for
// that timestamp, in the order they were scheduled.
func TestFIFOTieBreakNested(t *testing.T) {
	s := NewSimulator()
	var order []string
	s.Schedule(Second, func() {
		order = append(order, "a")
		s.Schedule(0, func() { order = append(order, "a.nested1") })
		s.Schedule(0, func() { order = append(order, "a.nested2") })
	})
	s.Schedule(Second, func() { order = append(order, "b") })
	s.Schedule(Second, func() { order = append(order, "c") })
	s.Run(2 * Second)
	want := []string{"a", "b", "c", "a.nested1", "a.nested2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 2*Second {
		t.Errorf("clock = %v", s.Now())
	}
}
