// Package sim is a discrete-event, packet-level network simulator for LEO
// constellations — the Go substitute for the ns-3 module the Hypatia paper
// builds on. It provides the event engine (this file) and a network model
// (network.go): nodes for satellites and ground stations, point-to-point ISL
// channels, a shared-medium GSL channel, drop-tail queues, per-packet
// propagation delays derived from live satellite positions, and
// forwarding-state updates installed at a configurable time granularity.
//
// Simulated time is an int64 nanosecond count from the start of the run;
// events at the same instant fire in scheduling order, which keeps every
// run bit-for-bit deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"hypatia/internal/check"
)

// Time is a simulation timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a float64 second count to a Time, rounding to the
// nearest nanosecond.
func Seconds(s float64) Time { return Time(math.Round(s * 1e9)) }

// Seconds converts the Time to float64 seconds.
//
//hypatia:pure
//lint:ignore timeunits Seconds is the one sanctioned Time-to-float conversion
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// event is a scheduled callback. seq breaks ties FIFO.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
//
//hypatia:confined
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event engine.
//
//hypatia:confined
type Simulator struct {
	now       Time
	events    eventHeap
	seq       uint64
	processed uint64
	stopped   bool
}

// NewSimulator returns an engine at time zero with no pending events.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far; per-packet event
// counts dominate simulation wall-clock time (paper §3.4), so this is the
// scalability-relevant metric.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule enqueues fn to run delay from now. Negative delays panic: they
// indicate a logic bug that would violate causality.
func (s *Simulator) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", delay, s.now))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt enqueues fn to run at absolute time at (>= Now).
func (s *Simulator) ScheduleAt(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", at, s.now))
	}
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
	s.seq++
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// next event is later than until; the clock then rests exactly at until.
func (s *Simulator) Run(until Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > until {
			break
		}
		e := heap.Pop(&s.events).(event)
		if check.Enabled {
			check.Assert(e.at >= s.now, "event heap popped %v after clock reached %v", e.at, s.now)
		}
		s.now = e.at
		s.processed++
		e.fn()
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
}
