// Package sim is a discrete-event, packet-level network simulator for LEO
// constellations — the Go substitute for the ns-3 module the Hypatia paper
// builds on. It provides the event engine (this file), a network model
// (network.go): nodes for satellites and ground stations, point-to-point ISL
// channels, a shared-medium GSL channel, drop-tail queues, per-packet
// propagation delays derived from live satellite positions, and
// forwarding-state updates installed at a configurable time granularity —
// and a sharded conservative-parallel execution mode (sharded.go) that
// partitions nodes across per-shard engines inside a propagation-delay
// lookahead horizon.
//
// Simulated time is an int64 nanosecond count from the start of the run.
// Events are ordered by a canonical content-based key — (time, owning node,
// event kind, per-kind key, scheduling sequence) — rather than by insertion
// order alone, so the serial and sharded engines pop identical sequences and
// every run is bit-for-bit deterministic. Events scheduled by user code
// (Schedule/ScheduleAt) carry no owner and fall back to FIFO among
// themselves at equal instants.
package sim

import (
	"fmt"
	"math"

	"hypatia/internal/check"
)

// Time is a simulation timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a float64 second count to a Time, rounding to the
// nearest nanosecond.
//
//hypatia:noalloc
func Seconds(s float64) Time { return Time(math.Round(s * 1e9)) }

// Seconds converts the Time to float64 seconds.
//
//hypatia:pure
//hypatia:noalloc
//lint:ignore timeunits Seconds is the one sanctioned Time-to-float conversion
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time with millisecond precision, rounding half away
// from zero in integer arithmetic. (%.3f formatting rounds half to even and
// loses integer precision near the int64 extremes, which rendered negative
// sub-millisecond durations inconsistently with their positive mirrors.)
func (t Time) String() string {
	var mag uint64
	if t < 0 {
		mag = -uint64(t) // two's-complement magnitude; exact for MinInt64
	} else {
		mag = uint64(t)
	}
	ms := (mag + 500_000) / 1_000_000
	sign := ""
	if t < 0 && ms != 0 {
		sign = "-"
	}
	return fmt.Sprintf("%s%d.%03ds", sign, ms/1000, ms%1000)
}

// evKind tags the payload of an event record. The tag participates in the
// canonical event order (install events sort before everything else at the
// same instant), so the values here are load-bearing. Every switch over the
// tag must cover all kinds (or carry a default): a new kind that silently
// fell through dispatch would desynchronize the serial and sharded engines.
//
//hypatia:exhaustive
type evKind uint8

const (
	// evInstall installs the next precomputed forwarding table (key = update
	// instant index). Sorts first so a table change at t is visible to every
	// packet event at t, on every engine.
	evInstall evKind = iota
	// evClosure runs a func() — user code, transport timers. key is 0; FIFO
	// among the same owner via seq.
	evClosure
	// evTransmitDone completes a device's in-flight serialization (key =
	// device handle, unique per instant and device).
	evTransmitDone
	// evReceive delivers a packet to its owner node (key = packet ID,
	// globally unique).
	evReceive
)

// event is one scheduled occurrence. The comparator below orders events by
// content, not by insertion: at, then owner (-1 for unowned/user events),
// then kind, then the per-kind key, then seq. For any two events that can
// ever tie through (at, owner, kind, key), both engines assign seq in the
// same relative order (all scheduling onto one owner happens on the engine
// executing that owner), which is what makes serial and sharded runs pop
// identical sequences.
type event struct {
	at    Time
	seq   uint64
	key   uint64
	owner int32 //hypatia:handle(node)
	kind  evKind
	pkt   *Packet
	fn    func()
}

// eventHeap is a manual binary min-heap of event records (container/heap
// would box every push/pop through interface{}).
//
//hypatia:confined
type eventHeap []event

//hypatia:noalloc
func (h eventHeap) less(i, j int) bool {
	a, b := &h[i], &h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

//hypatia:noalloc
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

//hypatia:noalloc
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // clear pkt/fn references for the GC
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// journalKey is the canonical identity of an event occurrence plus an
// emission sub-index; per-shard hook journals are merged on it post-run so
// deferred hook replay reproduces the serial emission order exactly.
type journalKey struct {
	at    Time
	seq   uint64
	key   uint64
	sub   uint32
	owner int32
	kind  evKind
}

// Simulator is a discrete-event engine: single-threaded on its own, and the
// unit of parallelism in a sharded run (one Simulator per shard, each owned
// by exactly one goroutine at a time — see Network.RunSharded).
//
//hypatia:confined
type Simulator struct {
	now       Time
	events    eventHeap
	seq       uint64
	processed uint64
	stopped   bool

	// Sharded-run plumbing. net backlinks to the Network whose tagged
	// events this engine dispatches (set by NewNetwork); shard is this
	// engine's index in a sharded run; windowEnd bounds the current
	// lookahead window; migrated marks a root engine whose events have been
	// handed to shard engines (scheduling on it would be silently lost, so
	// it panics instead). cur/curSub identify the executing event for
	// journaled hook emission.
	net       *Network
	st        netState
	windowEnd Time
	shard     int32 //hypatia:handle(shard)
	migrated  bool
	cur       journalKey
	curSub    uint32
}

// NewSimulator returns an engine at time zero with no pending events.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far; per-packet event
// counts dominate simulation wall-clock time (paper §3.4), so this is the
// scalability-relevant metric. After a sharded run the root engine reports
// the sum across shards (which exceeds a serial run's count by the
// duplicated per-shard forwarding installs).
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule enqueues fn to run delay from now. Negative delays panic: they
// indicate a logic bug that would violate causality.
//
//hypatia:noalloc
func (s *Simulator) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", delay, s.now))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt enqueues fn to run at absolute time at (>= Now).
//
//hypatia:noalloc
func (s *Simulator) ScheduleAt(at Time, fn func()) {
	if s.migrated {
		panic("sim: scheduling on the root engine during a sharded run; bind to a node with Network.Clock")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", at, s.now))
	}
	s.events.push(event{at: at, owner: -1, kind: evClosure, seq: s.nextSeq(), fn: fn})
}

// scheduleOwnedAt enqueues a closure on behalf of a node (transport timers
// bound through a Clock). The owner keys the event's canonical order and, in
// a sharded run, the shard that executes it.
//
//hypatia:noalloc
func (s *Simulator) scheduleOwnedAt(at Time, owner int32, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", at, s.now))
	}
	s.events.push(event{at: at, owner: owner, kind: evClosure, seq: s.nextSeq(), fn: fn})
}

//hypatia:noalloc
func (s *Simulator) nextSeq() uint64 {
	q := s.seq
	s.seq++
	return q
}

// Stop makes Run return after the currently executing event completes. In a
// sharded run the stop takes effect at the current lookahead window's
// boundary on the other shards.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in canonical order until the queue is empty or the
// next event is later than until; the clock then rests exactly at until.
func (s *Simulator) Run(until Time) {
	s.stopped = false
	s.runWindow(until, true)
}

// runWindow executes events up to end — inclusive of end itself only when
// inclusive is set (the final window of a run), exclusive otherwise (interior
// lookahead windows, whose boundary events belong to the next window so that
// cross-shard handoffs landing exactly on the boundary still precede them).
//
// The engine loop is //hypatia:noalloc: every steady-state event — transmit
// completions, receives, installs — executes without touching the heap. User
// closures (evClosure) and monitoring hooks are the deliberate boundary of
// that contract; their call sites carry //hypatia:allocs(amortized) waivers
// because the code behind them owns its own allocation budget.
//
//hypatia:noalloc
func (s *Simulator) runWindow(end Time, inclusive bool) {
	for len(s.events) > 0 && !s.stopped {
		at := s.events[0].at
		if at > end || (at == end && !inclusive) {
			break
		}
		e := s.events.pop()
		if check.Enabled {
			check.Assert(e.at >= s.now, "event heap popped %v after clock reached %v", e.at, s.now)
		}
		s.now = e.at
		s.processed++
		if s.st.journaling {
			s.cur = journalKey{at: e.at, owner: e.owner, kind: e.kind, key: e.key, seq: e.seq}
			s.curSub = 0
		}
		s.dispatch(&e)
	}
	if inclusive && !s.stopped && s.now < end {
		s.now = end
	}
}

// dispatch executes one event record.
//
//hypatia:noalloc
func (s *Simulator) dispatch(e *event) {
	switch e.kind {
	case evInstall:
		s.net.installEvent(s, int(e.key))
	case evClosure:
		e.fn() //hypatia:allocs(amortized) user closures own their allocation budget
	case evTransmitDone:
		s.net.transmitDone(s, int32(e.key))
	case evReceive:
		s.net.receive(s, e.owner, e.pkt)
	}
}
