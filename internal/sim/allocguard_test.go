package sim

import (
	"testing"

	"hypatia/internal/check/checktest"
)

// The AllocGuard tests are the runtime half of the //hypatia:noalloc
// contract on the event engine; see internal/check/checktest.

// TestAllocGuardEventHeap pins the heap machinery the engine lives on:
// once the backing array has grown to the working-set size, fill/drain
// cycles of pushes and pops allocate nothing.
func TestAllocGuardEventHeap(t *testing.T) {
	var h eventHeap
	checktest.AllocGuard(t, "eventHeap push/pop", 0, 1, func() {
		for i := 0; i < 64; i++ {
			h.push(event{at: Time(i * 7 % 64), owner: int32(i % 5), kind: evClosure, seq: uint64(i)})
		}
		for len(h) > 0 {
			h.pop()
		}
	})
}

// TestAllocGuardPacketPath pins the full per-packet event chain — inject,
// forward, enqueue, serialize, receive, deliver — at one heap allocation
// per packet: the Packet record Send mints by design. Everything after the
// injection (device rings, event records, position cache) reuses
// engine-owned storage.
func TestAllocGuardPacketPath(t *testing.T) {
	s, n, _ := testNet(t, DefaultConfig())
	n.RegisterFlow(1, 1, func(*Packet) {})
	checktest.AllocGuard(t, "packet delivery path", 1, 1, func() {
		n.Send(0, 1, 1, 1500, nil)
		s.Run(s.Now() + Second)
	})
}
