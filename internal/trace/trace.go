// Package trace writes per-packet event traces from the simulator — the
// analog of ns-3's ASCII tracing, and the raw material for post-hoc
// analyses beyond the metrics the transports log themselves (reordering
// studies, per-hop latency breakdowns, drop forensics).
//
// A Tracer attaches to a Network's transmit/drop/deliver hooks and writes
// one line per event:
//
//	TX t=1.234567890 5->17 pkt=42 flow=1 size=1500 hops=2
//	RX t=1.256789012 gs=3 pkt=42 flow=1 size=1500 hops=7
//	DROP t=1.300000000 node=9 pkt=43 flow=1 reason=queue-full
//
// Lines are written in event order, which is deterministic.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"hypatia/internal/sim"
)

// Kind classifies trace events.
type Kind int

const (
	// TX is a link transmission (one per hop).
	TX Kind = iota
	// RX is a delivery to a transport handler at the destination.
	RX
	// DROP is a packet drop.
	DROP
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case TX:
		return "TX"
	case RX:
		return "RX"
	case DROP:
		return "DROP"
	}
	return "?"
}

// Event is one traced packet event.
type Event struct {
	Kind   Kind
	T      sim.Time
	From   int // TX: transmitting node; DROP: node where dropped; RX: -1
	To     int // TX: receiving node; RX: destination GS index; DROP: -1
	Packet *sim.Packet
	Reason sim.DropReason // DROP only
}

// Filter selects which events are written; nil accepts everything.
type Filter func(Event) bool

// FlowFilter keeps only events of the given flow.
func FlowFilter(flowID uint32) Filter {
	return func(e Event) bool { return e.Packet.FlowID == flowID }
}

// KindFilter keeps only events of the given kinds.
func KindFilter(kinds ...Kind) Filter {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	return func(e Event) bool { return want[e.Kind] }
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(e Event) bool {
		for _, f := range fs {
			if f != nil && !f(e) {
				return false
			}
		}
		return true
	}
}

// Tracer writes packet events to an io.Writer.
type Tracer struct {
	w      *bufio.Writer
	net    *sim.Network
	filter Filter
	counts [3]uint64
	err    error
}

// New creates a tracer writing to w with an optional filter.
func New(w io.Writer, filter Filter) *Tracer {
	return &Tracer{w: bufio.NewWriter(w), filter: filter}
}

// Attach hooks the tracer into the network's transmit, drop, and deliver
// paths. Only one tracer (or other hook consumer) can be attached at a
// time; attaching replaces previous hooks.
func (tr *Tracer) Attach(n *sim.Network) {
	tr.net = n
	n.SetTransmitHook(func(ti sim.TransmitInfo) {
		tr.emit(Event{Kind: TX, T: ti.Start, From: ti.From, To: ti.To, Packet: ti.Packet})
	})
	n.SetDropHook(func(at sim.Time, node int, pkt *sim.Packet, reason sim.DropReason) {
		tr.emit(Event{Kind: DROP, T: at, From: node, To: -1, Packet: pkt, Reason: reason})
	})
	n.SetDeliverHook(func(at sim.Time, gs int, pkt *sim.Packet) {
		tr.emit(Event{Kind: RX, T: at, From: -1, To: gs, Packet: pkt})
	})
}

// Detach removes the tracer's hooks and flushes buffered output.
func (tr *Tracer) Detach() error {
	if tr.net != nil {
		tr.net.SetTransmitHook(nil)
		tr.net.SetDropHook(nil)
		tr.net.SetDeliverHook(nil)
		tr.net = nil
	}
	return tr.Flush()
}

// Flush writes buffered lines through to the underlying writer.
func (tr *Tracer) Flush() error {
	if err := tr.w.Flush(); err != nil && tr.err == nil {
		tr.err = err
	}
	return tr.err
}

// Err returns the first write error encountered, if any.
func (tr *Tracer) Err() error { return tr.err }

// Count returns how many events of the kind were written.
func (tr *Tracer) Count(k Kind) uint64 { return tr.counts[k] }

func (tr *Tracer) emit(e Event) {
	if tr.filter != nil && !tr.filter(e) {
		return
	}
	tr.counts[e.Kind]++
	var err error
	switch e.Kind {
	case TX:
		_, err = fmt.Fprintf(tr.w, "TX t=%.9f %d->%d pkt=%d flow=%d size=%d hops=%d\n",
			e.T.Seconds(), e.From, e.To, e.Packet.ID, e.Packet.FlowID, e.Packet.Size, e.Packet.Hops)
	case RX:
		_, err = fmt.Fprintf(tr.w, "RX t=%.9f gs=%d pkt=%d flow=%d size=%d hops=%d\n",
			e.T.Seconds(), e.To, e.Packet.ID, e.Packet.FlowID, e.Packet.Size, e.Packet.Hops)
	case DROP:
		_, err = fmt.Fprintf(tr.w, "DROP t=%.9f node=%d pkt=%d flow=%d reason=%s\n",
			e.T.Seconds(), e.From, e.Packet.ID, e.Packet.FlowID, e.Reason)
	}
	if err != nil && tr.err == nil {
		tr.err = err
	}
}
