package trace

import (
	"strings"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
)

func testNet(t *testing.T) (*sim.Simulator, *sim.Network, *routing.Topology) {
	t.Helper()
	c, err := constellation.Generate(constellation.Config{
		Name: "Mini",
		Shells: []constellation.Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 16, SatsPerOrbit: 16, IncDeg: 53,
		}},
		MinElevDeg: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	gss := []groundstation.GS{
		{ID: 0, Name: "Istanbul", Position: geom.LLADeg(41.0082, 28.9784, 0)},
		{ID: 1, Name: "Nairobi", Position: geom.LLADeg(-1.2921, 36.8219, 0)},
		{ID: 2, Name: "NorthPole", Position: geom.LLADeg(89.5, 0, 0)},
	}
	topo, err := routing.NewTopology(c, gss, routing.GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewSimulator()
	n, err := sim.NewNetwork(s, topo, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.InstallForwarding(topo.Snapshot(0).ForwardingTable())
	return s, n, topo
}

func TestTracerRecordsTxRxDrop(t *testing.T) {
	s, n, topo := testNet(t)
	var buf strings.Builder
	tr := New(&buf, nil)
	tr.Attach(n)

	n.RegisterFlow(1, 7, func(*sim.Packet) {})
	n.Send(0, 1, 7, 1500, nil) // delivered
	n.Send(0, 2, 7, 1500, nil) // no-route drop (pole)
	s.Run(sim.Second)
	if err := tr.Detach(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	path, _ := topo.Snapshot(0).Path(0, 1)
	wantTX := uint64(len(path) - 1)
	if tr.Count(TX) != wantTX {
		t.Errorf("TX count = %d, want %d", tr.Count(TX), wantTX)
	}
	if tr.Count(RX) != 1 || tr.Count(DROP) != 1 {
		t.Errorf("RX=%d DROP=%d", tr.Count(RX), tr.Count(DROP))
	}
	if len(lines) != int(wantTX)+2 {
		t.Errorf("lines = %d", len(lines))
	}
	if !strings.Contains(out, "reason=no-route") {
		t.Error("drop reason missing")
	}
	if !strings.Contains(out, "RX t=") || !strings.Contains(out, "gs=1") {
		t.Error("RX line malformed")
	}
	// Deterministic ordering: the second Send's no-route drop happens
	// synchronously at t=0, before any transmission completes (TX lines
	// are emitted at serialization end).
	if !strings.HasPrefix(lines[0], "DROP t=0.000000000") {
		t.Errorf("first line = %q", lines[0])
	}
}

func TestTracerFilters(t *testing.T) {
	s, n, _ := testNet(t)
	var buf strings.Builder
	tr := New(&buf, And(FlowFilter(2), KindFilter(RX)))
	tr.Attach(n)
	n.RegisterFlow(1, 1, func(*sim.Packet) {})
	n.RegisterFlow(1, 2, func(*sim.Packet) {})
	n.Send(0, 1, 1, 100, nil)
	n.Send(0, 1, 2, 100, nil)
	s.Run(sim.Second)
	tr.Detach()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "RX") || !strings.Contains(lines[0], "flow=2") {
		t.Errorf("filtered line = %q", lines[0])
	}
	if tr.Count(TX) != 0 || tr.Count(RX) != 1 {
		t.Errorf("counts: TX=%d RX=%d", tr.Count(TX), tr.Count(RX))
	}
}

func TestKindString(t *testing.T) {
	if TX.String() != "TX" || RX.String() != "RX" || DROP.String() != "DROP" {
		t.Error("kind names")
	}
	if Kind(99).String() != "?" {
		t.Error("unknown kind")
	}
}

// errWriter fails after a few bytes to exercise error capture.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errFull
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errFull
	}
	return n, nil
}

var errFull = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestTracerSurfacesWriteErrors(t *testing.T) {
	s, n, _ := testNet(t)
	tr := New(&errWriter{left: 10}, nil)
	tr.Attach(n)
	n.RegisterFlow(1, 1, func(*sim.Packet) {})
	for i := 0; i < 100; i++ {
		n.Send(0, 1, 1, 1500, nil)
	}
	s.Run(sim.Second)
	if err := tr.Detach(); err == nil {
		t.Error("write error not surfaced")
	}
}
