package tle

import (
	"strings"
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/orbit"
)

// FuzzParse exercises the TLE parser with arbitrary input: it must never
// panic, and anything it accepts must re-serialize to lines that parse
// again to the same element values.
func FuzzParse(f *testing.F) {
	f.Add(issTLE)
	f.Add("1 25544U\n2 25544")
	f.Add("")
	f.Add("name only")
	l1, l2 := mustGenerated(f)
	f.Add(l1 + "\n" + l2)
	f.Add("X\n" + l1 + "\n" + l2)

	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted TLEs re-serialize into valid lines that parse again to
		// the same core identity (range validation in Parse guarantees the
		// values fit the fixed-width format).
		out1, out2 := parsed.Lines()
		text := out1 + "\n" + out2
		if parsed.Name != "" && !strings.HasPrefix(parsed.Name, "1 ") && !strings.HasPrefix(parsed.Name, "2 ") {
			text = parsed.Name + "\n" + text
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical TLE did not round-trip: %v\n%s\n%s", err, out1, out2)
		}
		if back.SatelliteNum != parsed.SatelliteNum {
			t.Fatalf("satellite number changed: %d -> %d", parsed.SatelliteNum, back.SatelliteNum)
		}
	})
}

// FuzzParseCatalog must never panic on arbitrary catalogs.
func FuzzParseCatalog(f *testing.F) {
	l1, l2 := mustGenerated(f)
	f.Add(l1 + "\n" + l2 + "\n\nA\n" + l1 + "\n" + l2)
	f.Add("garbage\nlines\neverywhere")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ParseCatalog(input)
	})
}

func mustGenerated(f *testing.F) (string, string) {
	f.Helper()
	tt, err := FromElements("SEED", 1, 2024, 1.5, testElements())
	if err != nil {
		f.Fatal(err)
	}
	return tt.Lines()
}

// testElements returns a valid circular LEO element set for fuzz seeds.
func testElements() orbit.Elements {
	return orbit.Circular(630e3, geom.Rad(51.9), geom.Rad(42), geom.Rad(123))
}
