package tle

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/orbit"
)

// issTLE is an ISS element set in the standard format (checksums valid).
const issTLE = `ISS (ZARYA)
1 25544U 98067A   20062.59097222  .00016717  00000-0  10270-3 0  9003
2 25544  51.6442 147.8798 0004893 288.1235 125.3022 15.49249258 15292`

func TestChecksumKnownLines(t *testing.T) {
	lines := strings.Split(issTLE, "\n")
	for _, l := range lines[1:] {
		want := int(l[68] - '0')
		if got := Checksum(l); got != want {
			t.Errorf("checksum(%q) = %d, want %d", l, got, want)
		}
	}
}

func TestParseISS(t *testing.T) {
	tt, err := Parse(issTLE)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Name != "ISS (ZARYA)" {
		t.Errorf("Name = %q", tt.Name)
	}
	if tt.SatelliteNum != 25544 {
		t.Errorf("SatelliteNum = %d", tt.SatelliteNum)
	}
	if tt.EpochYear != 2020 {
		t.Errorf("EpochYear = %d", tt.EpochYear)
	}
	if math.Abs(tt.EpochDay-62.59097222) > 1e-8 {
		t.Errorf("EpochDay = %v", tt.EpochDay)
	}
	if math.Abs(tt.InclinationDeg-51.6442) > 1e-6 {
		t.Errorf("Inclination = %v", tt.InclinationDeg)
	}
	if math.Abs(tt.Eccentricity-0.0004893) > 1e-9 {
		t.Errorf("Eccentricity = %v", tt.Eccentricity)
	}
	if math.Abs(tt.MeanMotion-15.49249258) > 1e-8 {
		t.Errorf("MeanMotion = %v", tt.MeanMotion)
	}
	if math.Abs(tt.BStar-1.0270e-4) > 1e-9 {
		t.Errorf("BStar = %v", tt.BStar)
	}
	if math.Abs(tt.MeanMotionDot-0.00016717) > 1e-10 {
		t.Errorf("MeanMotionDot = %v", tt.MeanMotionDot)
	}
	// The recovered semi-major axis should put the ISS near 420 km altitude
	// (WGS72 recovery from mean motion lands within ~15 km of that).
	alt := tt.Elements().Altitude()
	if alt < 390e3 || alt > 450e3 {
		t.Errorf("ISS altitude from mean motion = %v km", alt/1000)
	}
}

func TestParseRejectsCorruptChecksum(t *testing.T) {
	bad := strings.Replace(issTLE, "9003", "9005", 1)
	if _, err := Parse(bad); err == nil {
		t.Error("corrupt checksum accepted")
	}
}

func TestParseRejectsShortLine(t *testing.T) {
	if _, err := Parse("1 25544U\n2 25544"); err == nil {
		t.Error("short lines accepted")
	}
}

func TestParseRejectsMismatchedSatNums(t *testing.T) {
	lines := strings.Split(issTLE, "\n")
	l2 := strings.Replace(lines[2], "25544", "25545", 1)
	l2 = l2[:68] + string(rune('0'+Checksum(l2[:68])))
	if _, err := Parse(lines[1] + "\n" + l2); err == nil {
		t.Error("mismatched satellite numbers accepted")
	}
}

func TestParseRejectsWrongLineCount(t *testing.T) {
	if _, err := Parse("just one line"); err == nil {
		t.Error("single line accepted")
	}
	if _, err := Parse("a\nb\nc\nd"); err == nil {
		t.Error("four lines accepted")
	}
}

func TestFromElementsRoundTrip(t *testing.T) {
	// The paper validated its Keplerian->TLE utility by checking (with
	// pyephem) that the TLE describes the same constellation as the input
	// elements. The equivalent here: format the TLE, parse it back, and
	// compare the recovered element set.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		e := orbit.Elements{
			SemiMajorAxis: geom.EarthRadius + 500e3 + r.Float64()*1.5e6,
			Eccentricity:  math.Round(r.Float64()*0.01*1e7) / 1e7,
			Inclination:   geom.Rad(math.Round(r.Float64()*179*1e4) / 1e4),
			RAAN:          geom.Rad(math.Round(r.Float64()*359*1e4) / 1e4),
			ArgPerigee:    0,
			MeanAnomaly:   geom.Rad(math.Round(r.Float64()*359*1e4) / 1e4),
		}
		tt, err := FromElements("SAT", i+1, 2024, 1.5, e)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := Parse(tt.String())
		if err != nil {
			t.Fatalf("generated TLE does not parse: %v\n%s", err, tt.String())
		}
		back := parsed.Elements()
		if math.Abs(back.SemiMajorAxis-e.SemiMajorAxis) > 50 {
			t.Fatalf("semi-major axis: %v -> %v", e.SemiMajorAxis, back.SemiMajorAxis)
		}
		if math.Abs(back.Eccentricity-e.Eccentricity) > 1e-7 {
			t.Fatalf("eccentricity: %v -> %v", e.Eccentricity, back.Eccentricity)
		}
		for name, pair := range map[string][2]float64{
			"inclination":  {e.Inclination, back.Inclination},
			"raan":         {e.RAAN, back.RAAN},
			"mean anomaly": {e.MeanAnomaly, back.MeanAnomaly},
		} {
			if math.Abs(pair[0]-pair[1]) > geom.Rad(0.0001) {
				t.Fatalf("%s: %v -> %v", name, pair[0], pair[1])
			}
		}
	}
}

func TestGeneratedTLEPropagatesLikeSource(t *testing.T) {
	// Stronger round-trip: propagate both the source elements and the
	// parsed-back elements and compare positions over an orbit.
	e := orbit.Circular(630e3, geom.Rad(51.9), geom.Rad(42.3537), geom.Rad(123.4567))
	tt, err := FromElements("KUIPER-TEST", 1, 2024, 100.25, e)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(tt.String())
	if err != nil {
		t.Fatal(err)
	}
	src, _ := orbit.NewKeplerPropagator(e, false)
	rt, _ := orbit.NewKeplerPropagator(parsed.Elements(), false)
	for ts := 0.0; ts <= 6000; ts += 500 {
		d := src.PositionECI(ts).Distance(rt.PositionECI(ts))
		// Degrees are quantized to 1e-4 in the file; at LEO radius that is
		// on the order of 15 m of position, allow a comfortable bound.
		if d > 500 {
			t.Fatalf("round-trip propagation diverged %v m at t=%v", d, ts)
		}
	}
}

func TestLinesAreFixedWidth(t *testing.T) {
	e := orbit.Circular(550e3, geom.Rad(53), geom.Rad(10), geom.Rad(20))
	tt, err := FromElements("STARLINK-TEST", 44444, 2024, 32.125, e)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := tt.Lines()
	if len(l1) != LineLength {
		t.Errorf("line 1 length = %d: %q", len(l1), l1)
	}
	if len(l2) != LineLength {
		t.Errorf("line 2 length = %d: %q", len(l2), l2)
	}
	if l1[0] != '1' || l2[0] != '2' {
		t.Errorf("line numbers wrong: %q %q", l1[0], l2[0])
	}
	if Checksum(l1) != int(l1[68]-'0') || Checksum(l2) != int(l2[68]-'0') {
		t.Error("generated checksum invalid")
	}
}

func TestFromElementsRejectsBadInput(t *testing.T) {
	good := orbit.Circular(550e3, 0, 0, 0)
	if _, err := FromElements("X", 0, 2024, 1, good); err == nil {
		t.Error("satellite number 0 accepted")
	}
	if _, err := FromElements("X", 100000, 2024, 1, good); err == nil {
		t.Error("satellite number 100000 accepted")
	}
	if _, err := FromElements("X", 1, 2024, 0.5, good); err == nil {
		t.Error("epoch day 0.5 accepted")
	}
	bad := good
	bad.Eccentricity = 2
	if _, err := FromElements("X", 1, 2024, 1, bad); err == nil {
		t.Error("invalid elements accepted")
	}
}

func TestParseExpField(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{" 00000-0", 0},
		{" 00000+0", 0},
		{" 10270-3", 1.0270e-4},
		{"-11606-4", -1.1606e-5},
		{" 12345-2", 1.2345e-3},
	}
	for _, c := range cases {
		got, err := parseExpField(c.in)
		if err != nil {
			t.Errorf("parseExpField(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > math.Abs(c.want)*1e-9+1e-12 {
			t.Errorf("parseExpField(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := parseExpField("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFmtExpRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.0270e-4, -1.1606e-5, 5e-1, 1.2345e-3} {
		s := fmtExp(v)
		if len(s) != 8 {
			t.Errorf("fmtExp(%v) = %q, want 8 cols", v, s)
		}
		back, err := parseExpField(s)
		if err != nil {
			t.Errorf("fmtExp(%v) = %q does not parse: %v", v, s, err)
			continue
		}
		if math.Abs(back-v) > math.Abs(v)*1e-4 {
			t.Errorf("fmtExp round trip: %v -> %q -> %v", v, s, back)
		}
	}
}

func TestParseCatalog(t *testing.T) {
	e1 := orbit.Circular(550e3, geom.Rad(53), 0, 0)
	e2 := orbit.Circular(630e3, geom.Rad(51.9), geom.Rad(120), geom.Rad(45))
	t1, _ := FromElements("SAT-1", 1, 2024, 1.0, e1)
	t2, _ := FromElements("SAT-2", 2, 2024, 1.0, e2)
	cat := t1.String() + "\n" + t2.String() + "\n"
	got, err := ParseCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(got))
	}
	if got[0].Name != "SAT-1" || got[1].Name != "SAT-2" {
		t.Errorf("names = %q, %q", got[0].Name, got[1].Name)
	}
	if got[1].SatelliteNum != 2 {
		t.Errorf("sat 2 number = %d", got[1].SatelliteNum)
	}
}

func TestParseCatalogWithoutNames(t *testing.T) {
	e := orbit.Circular(550e3, geom.Rad(53), 0, 0)
	t1, _ := FromElements("", 7, 2024, 1.0, e)
	t2, _ := FromElements("", 8, 2024, 1.0, e)
	cat := t1.String() + "\n\n" + t2.String()
	got, err := ParseCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].SatelliteNum != 7 || got[1].SatelliteNum != 8 {
		t.Fatalf("got %+v", got)
	}
}

func TestParseCatalogEmpty(t *testing.T) {
	got, err := ParseCatalog("\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d entries from empty catalog", len(got))
	}
}

func TestParseRejectsOutOfRangeFields(t *testing.T) {
	// Build syntactically valid lines with semantically absurd values and
	// confirm the range validation rejects them.
	good, _ := FromElements("X", 1, 2024, 1.0, orbit.Circular(550e3, geom.Rad(53), 0, 0))
	mutate := func(l2mut func(string) string) string {
		l1, l2 := good.Lines()
		l2 = l2mut(l2[:68])
		l2 += string(rune('0' + Checksum(l2)))
		return l1 + "\n" + l2
	}
	// Mean motion 99.9 would be a sub-surface orbit but passes (0,100);
	// mean motion 00.0 must fail.
	zeroMM := mutate(func(l string) string {
		return l[:52] + " 0.00000000" + l[63:]
	})
	if _, err := Parse(zeroMM); err == nil {
		t.Error("zero mean motion accepted")
	}
	// Inclination above 180.
	bigInc := mutate(func(l string) string {
		return l[:8] + "200.0000" + l[16:]
	})
	if _, err := Parse(bigInc); err == nil {
		t.Error("inclination 200 accepted")
	}
}

func TestValidateRangesDirect(t *testing.T) {
	good, _ := FromElements("X", 1, 2024, 1.0, orbit.Circular(550e3, geom.Rad(53), 0, 0))
	cases := []func(*TLE){
		func(t *TLE) { t.EpochDay = 400 },
		func(t *TLE) { t.MeanMotionDot = 2 },
		func(t *TLE) { t.BStar = 5 },
		func(t *TLE) { t.MeanMotionDDot = -3 },
		func(t *TLE) { t.RAANDeg = 360 },
		func(t *TLE) { t.MeanAnomalyDeg = -1 },
		func(t *TLE) { t.ArgPerigeeDeg = 400 },
		func(t *TLE) { t.Eccentricity = 1.5 },
		func(t *TLE) { t.MeanMotion = 0 },
		func(t *TLE) { t.MeanMotion = 100 },
	}
	for i, mut := range cases {
		bad := good
		mut(&bad)
		if err := bad.validateRanges(); err == nil {
			t.Errorf("case %d: invalid TLE accepted", i)
		}
	}
	if err := good.validateRanges(); err != nil {
		t.Errorf("valid TLE rejected: %v", err)
	}
}

func TestParseCatalogErrors(t *testing.T) {
	good, _ := FromElements("SAT", 1, 2024, 1.0, orbit.Circular(550e3, geom.Rad(53), 0, 0))
	l1, l2 := good.Lines()
	// Two consecutive line-1 entries.
	if _, err := ParseCatalog(l1 + "\n" + l1 + "\n" + l2); err == nil {
		t.Error("double line-1 accepted")
	}
	// A name line with only one element line following.
	if _, err := ParseCatalog("NAME\n" + l1 + "\nNAME2\n" + l1 + "\n" + l2); err == nil {
		t.Error("truncated entry accepted")
	}
	// Corrupt checksum inside a catalog.
	bad := l2[:68] + string(rune('0'+(Checksum(l2)+5)%10))
	if _, err := ParseCatalog(l1 + "\n" + bad); err == nil {
		t.Error("corrupt catalog entry accepted")
	}
}

func TestTLEStringWithAndWithoutName(t *testing.T) {
	tt, _ := FromElements("", 2, 2024, 1.0, orbit.Circular(550e3, geom.Rad(53), 0, 0))
	if strings.Count(tt.String(), "\n") != 1 {
		t.Errorf("nameless TLE should be 2 lines: %q", tt.String())
	}
	tt.Name = "NAMED"
	if !strings.HasPrefix(tt.String(), "NAMED\n") {
		t.Errorf("named TLE missing title line")
	}
}
