// Package tle implements the two-line element (TLE) substrate: generation of
// TLEs from Keplerian orbital elements — the utility the Hypatia paper built
// to describe not-yet-launched constellations in the space-industry standard
// format — and parsing of TLEs back into element sets, with checksum
// validation and epoch arithmetic. Values follow the WGS72 geodetic
// standard, matching the constants in the geom package.
//
// A TLE is two fixed-width 69-column lines, optionally preceded by a name
// line. The fields relevant to constellation simulation are the epoch, the
// six orbital elements, and the mean motion in revolutions per day.
package tle

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hypatia/internal/geom"
	"hypatia/internal/orbit"
)

// LineLength is the mandatory length of each of the two element lines.
const LineLength = 69

// TLE is a parsed or to-be-formatted two-line element set.
type TLE struct {
	Name           string  // optional title line (line 0)
	SatelliteNum   int     // NORAD catalog number, 1..99999
	Classification byte    // 'U' unclassified
	IntlDesignator string  // international designator, e.g. "24001A"
	EpochYear      int     // full four-digit year
	EpochDay       float64 // fractional day of year, 1.0 = Jan 1 00:00 UTC

	// Mean-motion derivatives and drag term; zero for generated
	// constellations (circular orbits, no drag model).
	MeanMotionDot  float64 // rev/day^2 (first derivative / 2 in the file)
	MeanMotionDDot float64 // rev/day^3 (second derivative / 6 in the file)
	BStar          float64 // drag term, 1/earth radii

	ElementSetNum int
	RevAtEpoch    int

	InclinationDeg float64 // degrees
	RAANDeg        float64 // degrees
	Eccentricity   float64 // dimensionless
	ArgPerigeeDeg  float64 // degrees
	MeanAnomalyDeg float64 // degrees
	MeanMotion     float64 // revolutions per day
}

// FromElements builds a TLE from a Keplerian element set. The epoch is given
// as a full year and fractional day-of-year.
func FromElements(name string, satNum int, epochYear int, epochDay float64, e orbit.Elements) (TLE, error) {
	if err := e.Validate(); err != nil {
		return TLE{}, err
	}
	if satNum < 1 || satNum > 99999 {
		return TLE{}, fmt.Errorf("tle: satellite number %d outside 1..99999", satNum)
	}
	if epochDay < 1 || epochDay >= 367 {
		return TLE{}, fmt.Errorf("tle: epoch day %v outside [1, 367)", epochDay)
	}
	revPerDay := e.MeanMotion() * geom.SecondsPerDay / (2 * math.Pi)
	return TLE{
		Name:           name,
		SatelliteNum:   satNum,
		Classification: 'U',
		IntlDesignator: fmt.Sprintf("%02d%03dA", epochYear%100, satNum%1000),
		EpochYear:      epochYear,
		EpochDay:       epochDay,
		ElementSetNum:  1,
		RevAtEpoch:     1,
		InclinationDeg: normDeg(geom.Deg(e.Inclination)),
		RAANDeg:        normDeg(geom.Deg(e.RAAN)),
		Eccentricity:   e.Eccentricity,
		ArgPerigeeDeg:  normDeg(geom.Deg(e.ArgPerigee)),
		MeanAnomalyDeg: normDeg(geom.Deg(e.MeanAnomaly)),
		MeanMotion:     revPerDay,
	}, nil
}

// normDeg maps an angle in degrees to [0, 360).
func normDeg(d float64) float64 {
	d = math.Mod(d, 360)
	if d < 0 {
		d += 360
	}
	return d
}

// Elements converts the TLE back to a Keplerian element set, recovering the
// semi-major axis from the mean motion under WGS72 gravity.
func (t TLE) Elements() orbit.Elements {
	n := t.MeanMotion * 2 * math.Pi / geom.SecondsPerDay // rad/s
	a := math.Cbrt(geom.EarthMu / (n * n))
	return orbit.Elements{
		SemiMajorAxis: a,
		Eccentricity:  t.Eccentricity,
		Inclination:   geom.Rad(t.InclinationDeg),
		RAAN:          geom.Rad(t.RAANDeg),
		ArgPerigee:    geom.Rad(t.ArgPerigeeDeg),
		MeanAnomaly:   geom.Rad(t.MeanAnomalyDeg),
	}
}

// Checksum computes the TLE checksum of a line's first 68 columns: the sum
// of all digits plus one per minus sign, modulo 10.
func Checksum(line string) int {
	sum := 0
	n := len(line)
	if n > 68 {
		n = 68
	}
	for i := 0; i < n; i++ {
		switch c := line[i]; {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return sum % 10
}

// Lines formats the TLE as its two 69-column element lines.
func (t TLE) Lines() (string, string) {
	l1 := fmt.Sprintf("1 %05d%c %-8s %02d%012.8f %s %s %s 0 %4d",
		t.SatelliteNum, t.Classification, t.IntlDesignator,
		t.EpochYear%100, t.EpochDay,
		fmtMeanMotionDot(t.MeanMotionDot),
		fmtExp(t.MeanMotionDDot),
		fmtExp(t.BStar),
		t.ElementSetNum%10000)
	l1 += strconv.Itoa(Checksum(l1))

	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f%5d",
		t.SatelliteNum,
		t.InclinationDeg, t.RAANDeg,
		int(math.Round(t.Eccentricity*1e7)),
		t.ArgPerigeeDeg, t.MeanAnomalyDeg,
		t.MeanMotion, t.RevAtEpoch%100000)
	l2 += strconv.Itoa(Checksum(l2))
	return l1, l2
}

// String renders the TLE including its name line, newline-separated.
func (t TLE) String() string {
	l1, l2 := t.Lines()
	if t.Name == "" {
		return l1 + "\n" + l2
	}
	return t.Name + "\n" + l1 + "\n" + l2
}

// fmtMeanMotionDot renders the first-derivative field (columns 34-43):
// a sign column followed by ".NNNNNNNN".
func fmtMeanMotionDot(v float64) string {
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	s := fmt.Sprintf("%.8f", v)
	// Strip the leading "0" of "0.XXXXXXXX".
	return sign + s[1:]
}

// fmtExp renders the TLE "exponential" fields (second derivative, BSTAR):
// " NNNNN-E" meaning 0.NNNNN * 10^-E, with an assumed leading decimal point.
func fmtExp(v float64) string {
	if v == 0 {
		return " 00000-0"
	}
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := int(math.Floor(math.Log10(v))) + 1
	mant := v / math.Pow(10, float64(exp))
	digits := int(math.Round(mant * 1e5))
	if digits >= 1e5 { // rounding pushed the mantissa to 1.0
		digits /= 10
		exp++
	}
	expSign := "-"
	e := -exp
	if exp > 0 {
		expSign = "+"
		e = exp
	}
	if e > 9 {
		e = 9
	}
	return fmt.Sprintf("%s%05d%s%d", sign, digits, expSign, e)
}

// Parse parses a two- or three-line TLE (an optional name line followed by
// the two element lines), validating line structure and checksums.
func Parse(text string) (TLE, error) {
	var lines []string
	for _, l := range strings.Split(strings.ReplaceAll(text, "\r\n", "\n"), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, strings.TrimRight(l, " "))
		}
	}
	var t TLE
	switch len(lines) {
	case 2:
	case 3:
		t.Name = strings.TrimSpace(lines[0])
		lines = lines[1:]
	default:
		return TLE{}, fmt.Errorf("tle: expected 2 or 3 lines, got %d", len(lines))
	}
	if err := parseLine1(lines[0], &t); err != nil {
		return TLE{}, err
	}
	if err := parseLine2(lines[1], &t); err != nil {
		return TLE{}, err
	}
	if t.SatelliteNum == 0 {
		return TLE{}, fmt.Errorf("tle: missing satellite number")
	}
	if err := t.validateRanges(); err != nil {
		return TLE{}, err
	}
	return t, nil
}

// validateRanges rejects semantically impossible field values. A line of
// digits can pass the checksum by coincidence; these bounds are what make
// an accepted TLE meaningful (and guarantee it re-serializes into the
// fixed-width format).
func (t TLE) validateRanges() error {
	if t.EpochDay < 0 || t.EpochDay >= 367 {
		return fmt.Errorf("tle: epoch day %v out of range", t.EpochDay)
	}
	if math.Abs(t.MeanMotionDot) >= 1 {
		return fmt.Errorf("tle: mean motion derivative %v out of range", t.MeanMotionDot)
	}
	if math.Abs(t.MeanMotionDDot) >= 1 || math.Abs(t.BStar) >= 1 {
		return fmt.Errorf("tle: drag terms out of range")
	}
	for name, v := range map[string]float64{
		"inclination":         t.InclinationDeg,
		"raan":                t.RAANDeg,
		"argument of perigee": t.ArgPerigeeDeg,
		"mean anomaly":        t.MeanAnomalyDeg,
	} {
		if v < 0 || v >= 360 {
			return fmt.Errorf("tle: %s %v out of [0, 360)", name, v)
		}
	}
	if t.InclinationDeg > 180 {
		return fmt.Errorf("tle: inclination %v above 180", t.InclinationDeg)
	}
	if t.Eccentricity < 0 || t.Eccentricity >= 1 {
		return fmt.Errorf("tle: eccentricity %v out of [0, 1)", t.Eccentricity)
	}
	if t.MeanMotion <= 0 || t.MeanMotion >= 100 {
		return fmt.Errorf("tle: mean motion %v out of (0, 100)", t.MeanMotion)
	}
	return nil
}

func checkLine(line string, wantFirst byte) error {
	if len(line) < LineLength {
		return fmt.Errorf("tle: line %q is %d columns, want %d", line, len(line), LineLength)
	}
	if line[0] != wantFirst {
		return fmt.Errorf("tle: line starts with %q, want %q", line[0], wantFirst)
	}
	got := int(line[68] - '0')
	if want := Checksum(line); got != want {
		return fmt.Errorf("tle: checksum mismatch on line %d: got %d, want %d", wantFirst-'0', got, want)
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseInt(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	return strconv.Atoi(s)
}

func parseLine1(line string, t *TLE) error {
	if err := checkLine(line, '1'); err != nil {
		return err
	}
	var err error
	if t.SatelliteNum, err = parseInt(line[2:7]); err != nil {
		return fmt.Errorf("tle: satellite number: %w", err)
	}
	t.Classification = line[7]
	t.IntlDesignator = strings.TrimSpace(line[9:17])
	yy, err := parseInt(line[18:20])
	if err != nil {
		return fmt.Errorf("tle: epoch year: %w", err)
	}
	// Standard TLE convention: 57-99 => 1900s, 00-56 => 2000s.
	if yy >= 57 {
		t.EpochYear = 1900 + yy
	} else {
		t.EpochYear = 2000 + yy
	}
	if t.EpochDay, err = parseFloat(line[20:32]); err != nil {
		return fmt.Errorf("tle: epoch day: %w", err)
	}
	if t.MeanMotionDot, err = parseFloat(strings.Replace(strings.TrimSpace(line[33:43]), ".", "0.", 1)); err != nil {
		// The field is "±.NNNNNNNN"; reconstitute the implied leading zero.
		return fmt.Errorf("tle: mean motion dot: %w", err)
	}
	if t.MeanMotionDDot, err = parseExpField(line[44:52]); err != nil {
		return fmt.Errorf("tle: mean motion ddot: %w", err)
	}
	if t.BStar, err = parseExpField(line[53:61]); err != nil {
		return fmt.Errorf("tle: bstar: %w", err)
	}
	if t.ElementSetNum, err = parseInt(line[64:68]); err != nil {
		return fmt.Errorf("tle: element set number: %w", err)
	}
	return nil
}

// parseExpField parses the " NNNNN-E" implied-decimal exponential format.
func parseExpField(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "00000-0" || s == "00000+0" {
		return 0, nil
	}
	sign := 1.0
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	} else {
		s = strings.TrimPrefix(s, "+")
	}
	// Split mantissa digits from trailing exponent (sign + digit).
	cut := strings.LastIndexAny(s, "+-")
	if cut <= 0 {
		return 0, fmt.Errorf("malformed exponential field %q", s)
	}
	mant, err := strconv.ParseFloat("0."+s[:cut], 64)
	if err != nil {
		return 0, err
	}
	exp, err := strconv.Atoi(s[cut:])
	if err != nil {
		return 0, err
	}
	return sign * mant * math.Pow(10, float64(exp)), nil
}

func parseLine2(line string, t *TLE) error {
	if err := checkLine(line, '2'); err != nil {
		return err
	}
	num, err := parseInt(line[2:7])
	if err != nil {
		return fmt.Errorf("tle: satellite number: %w", err)
	}
	if num != t.SatelliteNum {
		return fmt.Errorf("tle: line 2 satellite %d does not match line 1 satellite %d", num, t.SatelliteNum)
	}
	if t.InclinationDeg, err = parseFloat(line[8:16]); err != nil {
		return fmt.Errorf("tle: inclination: %w", err)
	}
	if t.RAANDeg, err = parseFloat(line[17:25]); err != nil {
		return fmt.Errorf("tle: raan: %w", err)
	}
	eccDigits, err := parseInt(line[26:33])
	if err != nil {
		return fmt.Errorf("tle: eccentricity: %w", err)
	}
	t.Eccentricity = float64(eccDigits) / 1e7
	if t.ArgPerigeeDeg, err = parseFloat(line[34:42]); err != nil {
		return fmt.Errorf("tle: argument of perigee: %w", err)
	}
	if t.MeanAnomalyDeg, err = parseFloat(line[43:51]); err != nil {
		return fmt.Errorf("tle: mean anomaly: %w", err)
	}
	if t.MeanMotion, err = parseFloat(line[52:63]); err != nil {
		return fmt.Errorf("tle: mean motion: %w", err)
	}
	if t.RevAtEpoch, err = parseInt(line[63:68]); err != nil {
		return fmt.Errorf("tle: rev at epoch: %w", err)
	}
	return nil
}

// ParseCatalog parses a concatenation of TLEs (each 2 or 3 lines). Blank
// lines between entries are ignored. Name lines are detected as lines not
// starting with "1 " or "2 ".
func ParseCatalog(text string) ([]TLE, error) {
	var out []TLE
	var pending []string
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		t, err := Parse(strings.Join(pending, "\n"))
		if err != nil {
			return err
		}
		out = append(out, t)
		pending = nil
		return nil
	}
	for _, l := range strings.Split(strings.ReplaceAll(text, "\r\n", "\n"), "\n") {
		if strings.TrimSpace(l) == "" {
			continue
		}
		isL1 := strings.HasPrefix(l, "1 ")
		isL2 := strings.HasPrefix(l, "2 ")
		switch {
		case !isL1 && !isL2: // name line starts a new entry
			if err := flush(); err != nil {
				return nil, err
			}
			pending = append(pending, l)
		case isL1:
			if len(pending) > 0 && strings.HasPrefix(pending[len(pending)-1], "1 ") {
				return nil, fmt.Errorf("tle: two consecutive line-1 entries")
			}
			if len(pending) > 1 || (len(pending) == 1 && strings.HasPrefix(pending[0], "2 ")) {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			pending = append(pending, l)
		case isL2:
			pending = append(pending, l)
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}
