package transport

import (
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/sim"
)

func TestAnalyzeReorderingInOrder(t *testing.T) {
	st := AnalyzeReordering([]int64{0, 1, 2, 3, 4})
	if st.Total != 5 || st.Reordered != 0 || st.Events != 0 || st.MaxDisplacement != 0 {
		t.Errorf("in-order stats: %+v", st)
	}
	if st.ReorderedFraction() != 0 {
		t.Errorf("fraction = %v", st.ReorderedFraction())
	}
}

func TestAnalyzeReorderingSimple(t *testing.T) {
	// 3 overtaken by 4 and 5: arrivals 0 1 2 4 5 3.
	st := AnalyzeReordering([]int64{0, 1, 2, 4, 5, 3})
	if st.Reordered != 1 {
		t.Errorf("reordered = %d", st.Reordered)
	}
	if st.MaxDisplacement != 2 {
		t.Errorf("displacement = %d", st.MaxDisplacement)
	}
	if st.Events != 1 {
		t.Errorf("events = %d", st.Events)
	}
}

func TestAnalyzeReorderingEventGrouping(t *testing.T) {
	// One path change displaces a whole window: 5 6 7 0 1 2 8 9 then a
	// second event 11 10.
	st := AnalyzeReordering([]int64{5, 6, 7, 0, 1, 2, 8, 9, 11, 10})
	if st.Reordered != 4 {
		t.Errorf("reordered = %d", st.Reordered)
	}
	if st.Events != 2 {
		t.Errorf("events = %d", st.Events)
	}
	if st.MaxDisplacement != 7 {
		t.Errorf("displacement = %d", st.MaxDisplacement)
	}
}

func TestAnalyzeReorderingDuplicates(t *testing.T) {
	st := AnalyzeReordering([]int64{0, 1, 1, 2, 0})
	if st.Reordered != 0 {
		t.Errorf("duplicates counted as reordering: %+v", st)
	}
	if st.Total != 5 {
		t.Errorf("total = %d", st.Total)
	}
	if st.ReorderedFraction() != 0 {
		t.Errorf("fraction = %v", st.ReorderedFraction())
	}
}

func TestAnalyzeReorderingEmpty(t *testing.T) {
	st := AnalyzeReordering(nil)
	if st.Total != 0 || st.ReorderedFraction() != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestTCPTracksReorderingOnPathShortening(t *testing.T) {
	// End to end: the SatB drop at t=5 s shortens the path and must show
	// up as a reordering event in the receiver's arrival log.
	after := satAbove(0, 15, 600e3)
	d := newDumbbell(t, sim.DefaultConfig(), after, 5)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{TrackReordering: true})
	f.Start()
	d.sim.Run(10 * sim.Second)
	st := AnalyzeReordering(f.ArrivalLog)
	if st.Total == 0 {
		t.Fatal("no arrivals logged")
	}
	if st.Reordered == 0 {
		t.Error("path shortening produced no observed reordering")
	}
	if st.Events == 0 || st.MaxDisplacement == 0 {
		t.Errorf("stats: %+v", st)
	}
	// Without tracking the log stays empty.
	d2 := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f2 := NewTCPFlow(d2.net, d2.ids, 0, 1, TCPConfig{})
	f2.Start()
	d2.sim.Run(sim.Second)
	if len(f2.ArrivalLog) != 0 {
		t.Error("arrival log populated without TrackReordering")
	}
}
