package transport

import (
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/sim"
)

func TestSACKBlocksSummarizeOOO(t *testing.T) {
	f := &TCPFlow{ooo: map[int64]bool{5: true, 6: true, 7: true, 10: true, 12: true}}
	blocks := f.sackBlocks()
	want := [][2]int64{{5, 8}, {10, 11}, {12, 13}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestSACKBlocksCapAtFour(t *testing.T) {
	f := &TCPFlow{ooo: map[int64]bool{1: true, 3: true, 5: true, 7: true, 9: true, 11: true}}
	blocks := f.sackBlocks()
	if len(blocks) != 4 {
		t.Fatalf("blocks = %v, want 4 entries", blocks)
	}
}

func TestSACKTransferCompletesUnderLoss(t *testing.T) {
	// Burst loss: the tiny queue drops most of any burst; SACK must still
	// deliver everything, exactly once per sequence at the receiver.
	cfg := sim.DefaultConfig()
	cfg.QueuePackets = 4
	d := newDumbbell(t, cfg, geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{MaxSegments: 400, SACK: true})
	f.Start()
	d.sim.Run(60 * sim.Second)
	if !f.Done() {
		t.Fatalf("SACK flow incomplete: %d/400, retx=%d timeouts=%d",
			f.AckedSegments, f.RetxCount, f.TimeoutCount)
	}
	if f.ReceivedSegments() != 400 {
		t.Errorf("receiver delivered %d in order", f.ReceivedSegments())
	}
}

func TestSACKRecoversFasterThanNewRenoUnderBurstLoss(t *testing.T) {
	// Same brutal queue; compare time to move a fixed amount of data.
	run := func(sack bool) (sim.Time, int64) {
		cfg := sim.DefaultConfig()
		cfg.QueuePackets = 6
		d := newDumbbell(t, cfg, geom.Vec3{}, 0)
		f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{MaxSegments: 600, SACK: sack})
		f.Start()
		// Run until done, sampling completion time.
		var doneAt sim.Time
		var tick func()
		tick = func() {
			if f.Done() && doneAt == 0 {
				doneAt = d.sim.Now()
				return
			}
			d.sim.Schedule(10*sim.Millisecond, tick)
		}
		d.sim.Schedule(0, tick)
		d.sim.Run(240 * sim.Second)
		if doneAt == 0 {
			t.Fatalf("flow (sack=%v) incomplete: %d/600", sack, f.AckedSegments)
		}
		return doneAt, f.TimeoutCount
	}
	sackTime, _ := run(true)
	renoTime, _ := run(false)
	if sackTime >= renoTime {
		t.Errorf("SACK (%v) not faster than NewReno (%v) under burst loss", sackTime, renoTime)
	}
}

func TestSACKSurvivesOutageAndPathChange(t *testing.T) {
	// The SatB climb at t=10 s: reordering-free lengthening plus heavy
	// slow-start loss earlier; SACK must sustain goodput comparably to the
	// NewReno runs elsewhere.
	after := satAbove(20, 15, 1790e3)
	d := newDumbbell(t, sim.DefaultConfig(), after, 10)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{SACK: true})
	f.Start()
	d.sim.Run(30 * sim.Second)
	if f.GoodputBps(30*sim.Second) < 4e6 {
		t.Errorf("SACK goodput %v Mbps", f.GoodputBps(30*sim.Second)/1e6)
	}
}

func TestSACKDisabledSendsNoBlocks(t *testing.T) {
	// With SACK off, ACK segments must carry no blocks even under
	// reordering (path shortening at t=5 s).
	afterDrop := satAbove(0, 15, 600e3)
	d := newDumbbell(t, sim.DefaultConfig(), afterDrop, 5)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{})
	sawBlocks := false
	d.net.SetTransmitHook(func(ti sim.TransmitInfo) {
		if seg, ok := ti.Packet.Payload.(tcpSegment); ok && seg.isAck && len(seg.sack) > 0 {
			sawBlocks = true
		}
	})
	f.Start()
	d.sim.Run(8 * sim.Second)
	if sawBlocks {
		t.Error("SACK blocks emitted with SACK disabled")
	}
}
