package transport

import (
	"math"
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/sim"
)

func TestUDPPacedRateBelowLine(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewUDPFlow(d.net, d.ids, 0, 1, UDPConfig{RateBps: 5e6})
	f.Start()
	d.sim.Run(10 * sim.Second)
	// At half the line rate nothing drops; goodput = rate * payload/wire.
	want := 5e6 * 1472 / 1500
	got := f.GoodputBps(10 * sim.Second)
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("goodput = %.3f Mb/s, want %.3f", got/1e6, want/1e6)
	}
	if d.net.Drops(sim.DropQueue) != 0 {
		t.Errorf("unexpected drops: %d", d.net.Drops(sim.DropQueue))
	}
}

func TestUDPAtLineRateSaturates(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewUDPFlow(d.net, d.ids, 0, 1, UDPConfig{RateBps: 10e6})
	f.Start()
	d.sim.Run(10 * sim.Second)
	want := 10e6 * 1472 / 1500
	got := f.GoodputBps(10 * sim.Second)
	if got < 0.95*want || got > 1.01*want {
		t.Errorf("goodput = %.3f Mb/s, want ~%.3f", got/1e6, want/1e6)
	}
}

func TestUDPOverloadCapsAtLineRate(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewUDPFlow(d.net, d.ids, 0, 1, UDPConfig{RateBps: 20e6}) // 2x line
	f.Start()
	d.sim.Run(10 * sim.Second)
	lineGoodput := 10e6 * 1472 / 1500.0
	got := f.GoodputBps(10 * sim.Second)
	if got > lineGoodput*1.01 {
		t.Errorf("goodput %.3f Mb/s exceeds line capacity", got/1e6)
	}
	if got < lineGoodput*0.9 {
		t.Errorf("goodput %.3f Mb/s far below line capacity", got/1e6)
	}
	if d.net.Drops(sim.DropQueue) == 0 {
		t.Error("no queue drops at 2x overload")
	}
}

func TestUDPStop(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewUDPFlow(d.net, d.ids, 0, 1, UDPConfig{RateBps: 1e6})
	f.Start()
	d.sim.Schedule(sim.Second, f.Stop)
	d.sim.Run(10 * sim.Second)
	sentAtStop := f.Sent()
	d.sim.Run(20 * sim.Second)
	if f.Sent() != sentAtStop {
		t.Error("sender kept transmitting after Stop")
	}
	// ~85 packets/s at 1 Mb/s with 1500 B wire packets for 1 s.
	if sentAtStop < 80 || sentAtStop > 90 {
		t.Errorf("sent %d packets in 1 s at 1 Mb/s", sentAtStop)
	}
}

func TestUDPRequiresRate(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero rate")
		}
	}()
	NewUDPFlow(d.net, d.ids, 0, 1, UDPConfig{})
}

func TestUDPStartTwicePanics(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewUDPFlow(d.net, d.ids, 0, 1, UDPConfig{RateBps: 1e6})
	f.Start()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	f.Start()
}

func TestSeriesWindowed(t *testing.T) {
	var s Series
	s.Add(100*sim.Millisecond, 10)
	s.Add(150*sim.Millisecond, 5)
	s.Add(1100*sim.Millisecond, 7)
	w := s.Windowed(sim.Second, 2*sim.Second)
	if len(w) != 2 {
		t.Fatalf("windows = %d", len(w))
	}
	if w[0].V != 15 || w[1].V != 7 {
		t.Errorf("windowed = %+v", w)
	}
	if w[1].T != sim.Second {
		t.Errorf("window time = %v", w[1].T)
	}
}

func TestSeriesWindowedPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	(&Series{}).Windowed(0, sim.Second)
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for i, v := range []float64{5, 1, 9, 3} {
		s.Add(sim.Time(i), v)
	}
	if s.Min() != 1 || s.Max() != 9 || s.Last() != 3 || s.Len() != 4 {
		t.Errorf("stats: min=%v max=%v last=%v len=%d", s.Min(), s.Max(), s.Last(), s.Len())
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(1); got != 9 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	empty := &Series{}
	if empty.Last() != 0 || empty.Percentile(0.5) != 0 {
		t.Error("empty series stats")
	}
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Error("empty series min/max")
	}
}

func TestFlowIDsUnique(t *testing.T) {
	ids := &FlowIDs{}
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		id := ids.Next()
		if id == 0 {
			t.Fatal("flow id 0 issued")
		}
		if seen[id] {
			t.Fatal("duplicate flow id")
		}
		seen[id] = true
	}
}
