package transport

// ReorderingStats quantifies packet reordering observed at a receiver, in
// the spirit of RFC 4737's reordered-packet metrics. Reordering matters on
// LEO paths because a path that suddenly shortens lets later packets
// overtake earlier ones, which TCP misreads as loss (paper §4.2) — these
// metrics let experiments report how much reordering a routing policy
// induces, one of the paper's motivating questions for packet-level
// simulation ("do some routing schemes cause more packet reordering?").
type ReorderingStats struct {
	Total     int64 // packets observed
	Reordered int64 // packets arriving with a sequence below an earlier one
	// MaxDisplacement is the largest (in sequence numbers) distance a
	// reordered packet arrived behind the highest sequence seen before it.
	MaxDisplacement int64
	// Events counts maximal runs of consecutive reordered arrivals; one
	// path change typically produces one event spanning several packets.
	Events int64
}

// ReorderedFraction returns Reordered / Total (0 for empty logs).
func (r ReorderingStats) ReorderedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Reordered) / float64(r.Total)
}

// AnalyzeReordering computes reordering statistics from the arrival order
// of sequence numbers at a receiver (e.g. a TCPFlow's receiver log).
// Duplicates count as observations but not as reordering.
func AnalyzeReordering(arrivals []int64) ReorderingStats {
	var st ReorderingStats
	maxSeen := int64(-1)
	inEvent := false
	seen := map[int64]bool{}
	for _, seq := range arrivals {
		st.Total++
		if seen[seq] {
			continue
		}
		seen[seq] = true
		if seq < maxSeen {
			st.Reordered++
			if d := maxSeen - seq; d > st.MaxDisplacement {
				st.MaxDisplacement = d
			}
			if !inEvent {
				st.Events++
				inEvent = true
			}
			continue
		}
		maxSeen = seq
		inEvent = false
	}
	return st
}
