package transport

import (
	"math"

	"hypatia/internal/sim"
)

// The paper (§4.2) closes its congestion-control discussion with: "once a
// mature implementation of BBR is available, evaluating its behavior on LEO
// networks would be of high interest". This file provides that third
// algorithm: a BBRv1-style model-based controller. Instead of reacting to
// loss (NewReno) or to delay against a stale floor (Vegas), BBR explicitly
// estimates the bottleneck bandwidth (windowed-max delivery rate) and the
// round-trip propagation delay (windowed-min RTT, re-probed every 10 s) and
// paces transmission at their product. The 10-second RTprop window is what
// makes it interesting on LEO paths: a path-change-induced RTT shift ages
// out of the filter instead of poisoning it forever, Vegas's failure mode.
//
// Simplifications relative to BBRv1 (documented, not hidden): segment
// granularity, no header/ACK aggregation compensation, and the four-phase
// state machine below (Startup, Drain, ProbeBW with the standard 8-phase
// gain cycle, ProbeRTT).

// bbrState is the BBR state machine phase.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

const (
	bbrHighGain     = 2.885 // 2/ln(2), BBRv1 startup gain
	bbrCycleLen     = 8
	bbrBtlBwWindow  = 10              // rounds over which max bandwidth is remembered
	bbrRTpropWindow = 10 * sim.Second // min-RTT memory
	bbrProbeRTTTime = 200 * sim.Millisecond
	bbrMinCwnd      = 4
)

// bbrPacingGains is the ProbeBW gain cycle.
var bbrPacingGains = [bbrCycleLen]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// bbr holds the sender-side BBR model.
type bbr struct {
	state      bbrState
	cycleIndex int
	cycleStamp sim.Time

	// Bottleneck bandwidth filter: windowed max of delivery-rate samples
	// (segments/second), per round.
	btlBw      float64
	bwSamples  [bbrBtlBwWindow]float64
	roundCount int64
	roundStart int64 // sndUna that ends the current round

	// Full-pipe detection (exit Startup).
	fullBw      float64
	fullBwCount int

	// inRTORecovery caps the window at one segment from a retransmission
	// timeout until new data is acknowledged (BBRv1's conservation
	// response to an RTO) — on LEO outages this throttles the pacer to
	// one probe per RTO instead of spraying at the modeled rate.
	inRTORecovery bool

	// RTprop filter.
	rtProp      float64 // seconds
	rtPropStamp sim.Time
	probeRTTEnd sim.Time
	probeRTTMin float64 // cleanest RTT seen during the current ProbeRTT

	// Delivery accounting for rate samples.
	delivered   int64              // cumulative segments delivered (acked)
	deliveredAt map[int64]int64    // per-segment: delivered count at send time
	sentStamp   map[int64]sim.Time // per-segment send time (kept separate from sentAt for retransmissions)

	pacingGen uint64 // generation for the pacing timer
}

func newBBR() *bbr {
	return &bbr{
		rtProp:      math.Inf(1),
		deliveredAt: map[int64]int64{},
		sentStamp:   map[int64]sim.Time{},
	}
}

// pacingRate returns the current send rate in segments/second.
func (f *TCPFlow) bbrPacingRate() float64 {
	b := f.bbr
	gain := bbrHighGain
	switch b.state {
	case bbrDrain:
		gain = 1 / bbrHighGain
	case bbrProbeBW:
		gain = bbrPacingGains[b.cycleIndex]
	case bbrProbeRTT:
		gain = 1
	}
	bw := b.btlBw
	if bw == 0 {
		// No estimate yet: derive one from the initial window and either
		// the measured or a nominal 100 ms RTT.
		rtt := b.rtProp
		if math.IsInf(rtt, 1) {
			rtt = 0.1
		}
		bw = f.cfg.InitialCwnd / rtt
	}
	return gain * bw
}

// bbrCwnd returns the inflight cap in segments.
func (f *TCPFlow) bbrCwnd() float64 {
	b := f.bbr
	if b.inRTORecovery {
		return 1
	}
	if b.state == bbrProbeRTT {
		return bbrMinCwnd
	}
	if b.btlBw == 0 || math.IsInf(b.rtProp, 1) {
		return f.cfg.InitialCwnd
	}
	bdp := b.btlBw * b.rtProp
	gain := 2.0 // BBRv1 cwnd_gain in ProbeBW
	if b.state == bbrStartup || b.state == bbrDrain {
		gain = bbrHighGain
	}
	return math.Max(gain*bdp, bbrMinCwnd)
}

// bbrSchedulePacedSend arms the pacing timer for the next transmission.
func (f *TCPFlow) bbrSchedulePacedSend(delay sim.Time) {
	f.bbr.pacingGen++
	gen := f.bbr.pacingGen
	f.clk.Schedule(delay, func() {
		if f.bbr.pacingGen == gen {
			f.bbrPacedSend()
		}
	})
}

// bbrPacedSend transmits one segment if the inflight cap allows, then
// re-arms the timer at the pacing interval.
func (f *TCPFlow) bbrPacedSend() {
	b := f.bbr
	rate := f.bbrPacingRate()
	interval := sim.Seconds(1 / rate)
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	canSend := float64(f.flightSize()) < f.bbrCwnd() &&
		(f.cfg.MaxSegments == 0 || f.sndNxt < f.cfg.MaxSegments)
	if canSend {
		seq := f.sndNxt
		if f.cfg.SACK && f.sacked[seq] {
			f.sndNxt++ // skip already-received data after go-back-N
		} else {
			b.deliveredAt[seq] = b.delivered
			b.sentStamp[seq] = f.clk.Now()
			f.sendSegment(seq, false)
			f.sndNxt++
			f.armRTO()
		}
	}
	f.bbrSchedulePacedSend(interval)
}

// bbrOnAck updates the model from a cumulative ACK covering [old sndUna,
// ack). Called from onNewAck before the window fields are reused.
func (f *TCPFlow) bbrOnAck(prevUna, ack int64) {
	b := f.bbr
	now := f.clk.Now()
	b.inRTORecovery = false
	newly := ack - prevUna
	b.delivered += newly

	// Delivery-rate sample from the newest acked segment with send-time
	// bookkeeping (skip retransmitted segments, whose ACK is ambiguous).
	for seq := ack - 1; seq >= prevUna; seq-- {
		stamp, ok := b.sentStamp[seq]
		if !ok {
			continue
		}
		if f.everRetx[seq] {
			break
		}
		elapsed := (now - stamp).Seconds()
		if elapsed > 0 {
			sample := float64(b.delivered-b.deliveredAt[seq]) / elapsed
			f.bbrUpdateBtlBw(sample)
		}
		// RTprop from the same segment: only ever move the floor down, or
		// re-measure it inside ProbeRTT with the pipe drained. Accepting an
		// arbitrary (queued) sample on expiry would inflate the model's BDP
		// and lock in standing queue.
		rtt := elapsed
		if rtt < b.rtProp {
			b.rtProp = rtt
			b.rtPropStamp = now
		}
		if b.state == bbrProbeRTT && rtt < b.probeRTTMin {
			b.probeRTTMin = rtt
		}
		break
	}
	for seq := prevUna; seq < ack; seq++ {
		delete(b.deliveredAt, seq)
		delete(b.sentStamp, seq)
	}

	// Round accounting: a round ends when data sent after the previous
	// round's end is acknowledged.
	if ack > b.roundStart {
		b.roundStart = f.sndNxt
		b.roundCount++
		b.bwSamples[b.roundCount%bbrBtlBwWindow] = 0
	}

	f.bbrAdvanceState(now)
}

// bbrUpdateBtlBw folds a delivery-rate sample into the windowed-max filter.
func (f *TCPFlow) bbrUpdateBtlBw(sample float64) {
	b := f.bbr
	idx := b.roundCount % bbrBtlBwWindow
	if sample > b.bwSamples[idx] {
		b.bwSamples[idx] = sample
	}
	max := 0.0
	for _, s := range b.bwSamples {
		if s > max {
			max = s
		}
	}
	b.btlBw = max
}

// bbrAdvanceState runs the state machine.
func (f *TCPFlow) bbrAdvanceState(now sim.Time) {
	b := f.bbr
	switch b.state {
	case bbrStartup:
		// Full pipe: bandwidth grew <25% for 3 consecutive rounds.
		if b.btlBw > b.fullBw*1.25 {
			b.fullBw = b.btlBw
			b.fullBwCount = 0
		} else if b.roundCount > 0 {
			b.fullBwCount++
			if b.fullBwCount >= 3 {
				b.state = bbrDrain
			}
		}
	case bbrDrain:
		if !math.IsInf(b.rtProp, 1) && float64(f.flightSize()) <= b.btlBw*b.rtProp {
			b.state = bbrProbeBW
			b.cycleIndex = 0
			b.cycleStamp = now
		}
	case bbrProbeBW:
		// Advance the gain cycle once per RTprop.
		if !math.IsInf(b.rtProp, 1) && now-b.cycleStamp > sim.Seconds(b.rtProp) {
			b.cycleIndex = (b.cycleIndex + 1) % bbrCycleLen
			b.cycleStamp = now
		}
		// Enter ProbeRTT when the RTprop estimate has gone stale.
		if now-b.rtPropStamp > bbrRTpropWindow {
			b.state = bbrProbeRTT
			b.probeRTTEnd = now + bbrProbeRTTTime
			b.probeRTTMin = math.Inf(1)
		}
	case bbrProbeRTT:
		if now >= b.probeRTTEnd {
			if !math.IsInf(b.probeRTTMin, 1) {
				b.rtProp = b.probeRTTMin // fresh floor measured while drained
			}
			b.rtPropStamp = now
			if b.fullBwCount >= 3 {
				b.state = bbrProbeBW
				b.cycleIndex = 0
				b.cycleStamp = now
			} else {
				b.state = bbrStartup
			}
		}
	}
	f.cwnd = f.bbrCwnd() // expose the cap in the cwnd log
}
