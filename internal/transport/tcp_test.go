package transport

import (
	"math"
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/sim"
)

func TestTCPBulkTransferCompletes(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{MaxSegments: 200})
	f.Start()
	d.sim.Run(30 * sim.Second)
	if !f.Done() {
		t.Fatalf("flow not done: acked %d/200", f.AckedSegments)
	}
	if f.ReceivedSegments() != 200 {
		t.Errorf("receiver has %d segments", f.ReceivedSegments())
	}
	if f.GoodputBps(d.sim.Now()) <= 0 {
		t.Error("zero goodput")
	}
}

func TestTCPSlowStartDoublesPerRTT(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{InitialCwnd: 2, NoDelayedAcks: true})
	f.Start()
	// Run long enough for a few RTTs (~25 ms each) but before queue drops.
	d.sim.Run(200 * sim.Millisecond)
	if f.FastRetxCount != 0 || f.TimeoutCount != 0 {
		t.Skip("loss occurred earlier than expected")
	}
	// In pure slow start cwnd grows by 1 per ACK: after k acked segments,
	// cwnd = 2 + k.
	want := 2 + float64(f.AckedSegments)
	if math.Abs(f.Cwnd()-want) > 1e-6 {
		t.Errorf("cwnd = %v, want %v after %d acked", f.Cwnd(), want, f.AckedSegments)
	}
}

func TestTCPSaturatesBottleneck(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{})
	f.Start()
	dur := 30 * sim.Second
	d.sim.Run(dur)
	goodput := f.GoodputBps(dur)
	// Line rate 10 Mb/s; payload efficiency 1460/1500. The whole-run
	// average absorbs the slow-start overshoot transient (hundreds of
	// drops, a timeout, go-back-N), so the bar is looser than steady state.
	wantMax := 10e6 * 1460 / 1500
	if goodput < 0.65*wantMax {
		t.Errorf("goodput = %.2f Mb/s, want >= %.2f", goodput/1e6, 0.65*wantMax/1e6)
	}
	if goodput > wantMax*1.01 {
		t.Errorf("goodput = %.2f Mb/s exceeds line rate", goodput/1e6)
	}
	// Steady state (the last 20 s) must be near line rate.
	var lateBytes float64
	for _, s := range f.AckedLog.Samples {
		if s.T >= 10*sim.Second {
			lateBytes += s.V
		}
	}
	if late := lateBytes * 8 / 20; late < 0.85*wantMax {
		t.Errorf("steady-state goodput = %.2f Mb/s, want >= %.2f", late/1e6, 0.85*wantMax/1e6)
	}
}

func TestTCPFillsQueueAndInflatesRTT(t *testing.T) {
	// The paper: TCP (NewReno) continually fills and drains the buffer,
	// raising the per-packet RTT far above the propagation floor.
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{})
	f.Start()
	d.sim.Run(30 * sim.Second)
	minRTT, maxRTT := f.RTTLog.Min(), f.RTTLog.Max()
	// 100-packet queue at 10 Mb/s drains in 120 ms: near-full buffers must
	// push max RTT at least 60 ms above the minimum.
	if maxRTT-minRTT < 0.06 {
		t.Errorf("RTT inflation only %v s (min %v, max %v)", maxRTT-minRTT, minRTT, maxRTT)
	}
	if f.FastRetxCount == 0 {
		t.Error("NewReno never hit the queue limit in 30 s")
	}
}

func TestTCPCwndOscillatesAroundBDPPlusQueue(t *testing.T) {
	// Expected steady-state: cwnd repeatedly climbs to ~BDP+Q, drops, and
	// recovers (Fig 4). BDP ~= 17 segments at 10 Mb/s and ~20 ms RTT, queue
	// 100 packets.
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{})
	f.Start()
	d.sim.Run(60 * sim.Second)
	peak := f.CwndLog.Max()
	// The sustained ceiling is BDP+Q (~117 segments); transient fast-
	// recovery inflation can briefly overshoot it.
	if peak < 80 || peak > 300 {
		t.Errorf("cwnd peak = %v segments, want around BDP+Q (~117)", peak)
	}
	// After the first loss the window halves: the log must contain a drop
	// of at least 40%.
	sawCut := false
	for i := 1; i < f.CwndLog.Len(); i++ {
		if f.CwndLog.Samples[i].V < 0.6*f.CwndLog.Samples[i-1].V && f.CwndLog.Samples[i-1].V > 20 {
			sawCut = true
			break
		}
	}
	if !sawCut {
		t.Error("no multiplicative decrease observed")
	}
}

func TestTCPRecoversFromHeavyLoss(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.QueuePackets = 3 // brutal: almost no buffering
	d := newDumbbell(t, cfg, geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{MaxSegments: 300})
	f.Start()
	d.sim.Run(120 * sim.Second)
	if !f.Done() {
		t.Fatalf("flow starved: %d/300 acked, retx=%d timeouts=%d",
			f.AckedSegments, f.RetxCount, f.TimeoutCount)
	}
	if f.RetxCount == 0 {
		t.Error("expected retransmissions with a 3-packet queue")
	}
}

func TestTCPDelayedAcksHalveAckCount(t *testing.T) {
	run := func(noDelAck bool) *TCPFlow {
		d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
		f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{MaxSegments: 200, NoDelayedAcks: noDelAck})
		f.Start()
		d.sim.Run(30 * sim.Second)
		if !f.Done() {
			t.Fatalf("flow incomplete (noDelAck=%v)", noDelAck)
		}
		return f
	}
	withDel := run(false)
	without := run(true)
	if withDel.AcksReceived >= without.AcksReceived {
		t.Errorf("delayed ACKs did not reduce ACK count: %d vs %d",
			withDel.AcksReceived, without.AcksReceived)
	}
	if float64(withDel.AcksReceived) > 0.75*float64(without.AcksReceived) {
		t.Errorf("delayed ACKs only reduced ACKs to %d of %d",
			withDel.AcksReceived, without.AcksReceived)
	}
}

func TestTCPReorderingTriggersSpuriousFastRetransmit(t *testing.T) {
	// Fig 4(c) of the paper: when the path shortens mid-flow, packets sent
	// later overtake in-flight ones, the receiver emits duplicate ACKs, and
	// the sender halves its window even though nothing was lost.
	//
	// SatB starts high (1600 km) and drops to 600 km at t=5 s, shortening
	// the one-way path by >1000 km (about 4 ms) instantly.
	after := satAbove(0, 15, 600e3)
	d := newDumbbell(t, sim.DefaultConfig(), after, 5)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{})
	f.Start()
	d.sim.Run(10 * sim.Second)
	if f.FastRetxCount == 0 {
		t.Fatal("no fast retransmit after path shortened")
	}
	if drops := d.net.Drops(sim.DropQueue); drops != 0 {
		// The cwnd cut must be attributable to reordering alone.
		t.Skipf("queue drops (%d) occurred; reordering not isolated", drops)
	}
	if f.RetxCount == 0 {
		t.Error("fast retransmit should have retransmitted a segment")
	}
}

func TestVegasKeepsQueuesNearlyEmpty(t *testing.T) {
	// Fig 5: Vegas operates with a near-empty buffer — its steady-state RTT
	// stays near the propagation floor, unlike NewReno's.
	run := func(alg CCAlgorithm) *TCPFlow {
		d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
		f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: alg})
		f.Start()
		d.sim.Run(30 * sim.Second)
		return f
	}
	vegas := run(Vegas)
	reno := run(NewReno)
	vSpread := vegas.RTTLog.Max() - vegas.RTTLog.Min()
	rSpread := reno.RTTLog.Max() - reno.RTTLog.Min()
	if vSpread > rSpread/3 {
		t.Errorf("Vegas RTT spread %v s not well below NewReno's %v s", vSpread, rSpread)
	}
	if vegas.GoodputBps(30*sim.Second) < 1e6 {
		t.Errorf("Vegas goodput collapsed on a static path: %v bps", vegas.GoodputBps(30*sim.Second))
	}
}

func TestVegasCollapsesWhenPathLengthens(t *testing.T) {
	// Fig 5(b,c): a path-change-induced RTT increase looks like congestion
	// to Vegas; it cuts its window and throughput stays low afterward, even
	// though the network is empty.
	after := satAbove(20, 15, 1790e3) // SatB jumps far north+up at t=10 s
	d := newDumbbell(t, sim.DefaultConfig(), after, 10)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: Vegas})
	f.Start()
	d.sim.Run(40 * sim.Second)

	// Before the step Vegas should have settled at a healthy window; after
	// it the stale baseRTT makes every RTT look congested and the window
	// must decay far below its earlier level.
	preMax := 0.0
	for _, s := range f.CwndLog.Samples {
		if s.T < 10*sim.Second && s.V > preMax {
			preMax = s.V
		}
	}
	if preMax < 5 {
		t.Fatalf("Vegas never ramped up before the path change (max %v)", preMax)
	}
	if final := f.Cwnd(); final > preMax/2 || final > 8 {
		t.Errorf("Vegas cwnd = %v after path lengthened (pre-change max %v), want collapse", final, preMax)
	}
	// Goodput in the last 10 s must be far below the line rate.
	var lateBytes float64
	for _, s := range f.AckedLog.Samples {
		if s.T >= 30*sim.Second {
			lateBytes += s.V
		}
	}
	lateGoodput := lateBytes * 8 / 10
	if lateGoodput > 3e6 {
		t.Errorf("late goodput = %.2f Mb/s, want collapsed (<3)", lateGoodput/1e6)
	}
}

func TestNewRenoSurvivesPathLengthening(t *testing.T) {
	// Contrast to Vegas: loss-based control does not care about the RTT
	// rise and keeps the pipe full.
	after := satAbove(20, 15, 1790e3)
	d := newDumbbell(t, sim.DefaultConfig(), after, 10)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: NewReno})
	f.Start()
	d.sim.Run(40 * sim.Second)
	var lateBytes float64
	for _, s := range f.AckedLog.Samples {
		if s.T >= 30*sim.Second {
			lateBytes += s.V
		}
	}
	lateGoodput := lateBytes * 8 / 10
	if lateGoodput < 5e6 {
		t.Errorf("NewReno late goodput = %.2f Mb/s, want >5", lateGoodput/1e6)
	}
}

func TestTCPUnreachableDestinationTimesOutAndRetries(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 2, TCPConfig{MaxSegments: 10}) // GS2 unreachable
	f.Start()
	d.sim.Run(20 * sim.Second)
	if f.AckedSegments != 0 {
		t.Errorf("acked %d segments to an unreachable GS", f.AckedSegments)
	}
	if f.TimeoutCount == 0 {
		t.Error("no RTO fired for a black-holed flow")
	}
	if d.net.Drops(sim.DropNoRoute) == 0 {
		t.Error("no no-route drops recorded")
	}
}

func TestTCPSurvivesSpuriousRTO(t *testing.T) {
	// Regression: with MinRTO below the path RTT, timeouts fire while ACKs
	// are still in flight. The go-back-N rewind sets sndNxt = sndUna; when
	// the late cumulative ACK then lands above sndNxt, flight accounting
	// must not go negative (which once cancelled the RTO and deadlocked
	// the flow into sending only stale duplicates).
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{
		MaxSegments: 500,
		MinRTO:      20 * sim.Millisecond, // below the ~26 ms path RTT
	})
	f.Start()
	d.sim.Run(60 * sim.Second)
	if !f.Done() {
		t.Fatalf("flow deadlocked: %d/500 acked, timeouts=%d", f.AckedSegments, f.TimeoutCount)
	}
	if f.TimeoutCount == 0 {
		t.Error("expected spurious timeouts with MinRTO < RTT")
	}
}

func TestTCPStartTwicePanics(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{})
	f.Start()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	f.Start()
}

func TestTCPConfigDefaults(t *testing.T) {
	cfg := TCPConfig{}.withDefaults()
	if cfg.MSS != 1460 || cfg.HeaderBytes != 40 || cfg.AckBytes != 40 {
		t.Errorf("size defaults: %+v", cfg)
	}
	if cfg.InitialCwnd != 10 || !math.IsInf(cfg.InitialSSThresh, 1) {
		t.Errorf("window defaults: %+v", cfg)
	}
	if cfg.MinRTO != sim.Second || cfg.MaxRTO != 60*sim.Second {
		t.Errorf("RTO defaults: %+v", cfg)
	}
	if !cfg.DelayedAcks || cfg.DelAckTimeout != 200*sim.Millisecond {
		t.Errorf("delayed-ACK defaults: %+v", cfg)
	}
	if cfg.VegasAlpha != 2 || cfg.VegasBeta != 4 || cfg.VegasGamma != 1 {
		t.Errorf("vegas defaults: %+v", cfg)
	}
	if NewReno.String() != "NewReno" || Vegas.String() != "Vegas" {
		t.Error("algorithm names")
	}
}

func TestTCPRTTMeasurementsMatchPath(t *testing.T) {
	// Early-flow RTT samples (no queueing yet) must sit near the
	// propagation RTT of the pinned path.
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	_, dist := d.topo.Snapshot(0).Path(0, 1)
	propRTT := 2 * dist / geom.SpeedOfLight
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{InitialCwnd: 1, NoDelayedAcks: true})
	f.Start()
	d.sim.Run(100 * sim.Millisecond)
	if f.RTTLog.Len() == 0 {
		t.Fatal("no RTT samples")
	}
	first := f.RTTLog.Samples[0].V
	// Allow for serialization on each of 3 hops (data) + ACK path.
	if first < propRTT || first > propRTT+0.01 {
		t.Errorf("first RTT = %v s, propagation floor %v s", first, propRTT)
	}
}
