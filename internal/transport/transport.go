// Package transport implements the end-to-end protocols Hypatia's
// experiments run over the packet simulator: a TCP with NewReno (loss-based)
// and Vegas (delay-based) congestion control, a paced constant-bit-rate UDP
// source, and a ping application. Each agent logs the time series the
// paper's figures are built from — per-packet RTTs, congestion-window
// evolution, and application-level progress.
package transport

import (
	"math"
	"sort"

	"hypatia/internal/sim"
)

// Sample is one point of a time series.
type Sample struct {
	T sim.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Samples []Sample
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Samples = append(s.Samples, Sample{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Last returns the most recent sample value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].V
}

// Min returns the minimum value, or +Inf when empty.
func (s *Series) Min() float64 {
	min := inf
	for _, smp := range s.Samples {
		if smp.V < min {
			min = smp.V
		}
	}
	return min
}

// Max returns the maximum value, or -Inf when empty.
func (s *Series) Max() float64 {
	max := -inf
	for _, smp := range s.Samples {
		if smp.V > max {
			max = smp.V
		}
	}
	return max
}

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.V
	}
	return out
}

// Windowed aggregates the series into fixed windows of the given width,
// summing values per window, from time 0 through end. It is used to turn
// per-ACK byte counts into throughput curves (value/window width).
func (s *Series) Windowed(width, end sim.Time) []Sample {
	if width <= 0 {
		panic("transport: non-positive window width")
	}
	n := int(end / width)
	if end%width != 0 {
		n++
	}
	out := make([]Sample, n)
	for i := range out {
		out[i].T = sim.Time(i) * width
	}
	for _, smp := range s.Samples {
		i := int(smp.T / width)
		if i >= 0 && i < n {
			out[i].V += smp.V
		}
	}
	return out
}

// Percentile returns the p-quantile (0..1) of the sample values, using
// nearest-rank on a sorted copy. Empty series return 0.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	vals := s.Values()
	sort.Float64s(vals)
	idx := int(p * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

var inf = math.Inf(1)

// FlowIDs hands out unique flow identifiers for one simulation run.
type FlowIDs struct{ next uint32 }

// Next returns a fresh flow id (starting at 1; 0 is reserved as invalid).
func (f *FlowIDs) Next() uint32 {
	f.next++
	return f.next
}
