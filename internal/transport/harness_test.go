package transport

import (
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/groundstation"
	"hypatia/internal/orbit"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
)

// stepProp is a test propagator pinned to a fixed Earth-relative (ECEF)
// position, optionally stepping to a second position at a switch time. It
// lets transport tests control path delay exactly — including mid-flow path
// length changes, the LEO dynamic behind the paper's reordering and Vegas
// findings.
type stepProp struct {
	before, after geom.Vec3 // ECEF positions
	switchAt      float64   // seconds; 0 disables the step when after is zero
}

func (p stepProp) posECEF(t float64) geom.Vec3 {
	if p.switchAt > 0 && t >= p.switchAt {
		return p.after
	}
	return p.before
}

// PositionECI converts the pinned ECEF position into the inertial frame the
// constellation layer expects (it will rotate it right back).
func (p stepProp) PositionECI(t float64) geom.Vec3 {
	return geom.ECEFToECI(p.posECEF(t), geom.GMST(0, t))
}

func (p stepProp) StateECI(t float64) orbit.State {
	return orbit.State{Position: p.PositionECI(t)}
}

// satAbove returns the ECEF position of a satellite directly above the
// given ground point at altitude h.
func satAbove(latDeg, lonDeg, h float64) geom.Vec3 {
	return geom.LLADeg(latDeg, lonDeg, h).ToECEF()
}

// dumbbell is a hand-built two-satellite topology:
//
//	GS0 --gsl-- SatA --isl-- SatB --gsl-- GS1
//
// GS0 only sees SatA and GS1 only sees SatB (min elevation 25 deg), so the
// path is pinned and every queue/delay is analytically known. GS2 is an
// unreachable station for loss scenarios.
type dumbbell struct {
	topo *routing.Topology
	sim  *sim.Simulator
	net  *sim.Network
	ids  *FlowIDs
}

// newDumbbell builds the harness. satBStep optionally moves SatB to a
// different position at switchAt seconds (pass zero vector and 0 to keep it
// static).
func newDumbbell(t *testing.T, cfg sim.Config, satBAfter geom.Vec3, switchAt float64) *dumbbell {
	t.Helper()
	// AltitudeKm is set to the top of the range test satellites use so the
	// visibility pre-filter stays generous.
	shell := constellation.Shell{
		Name: "TEST", AltitudeKm: 1800, Orbits: 1, SatsPerOrbit: 2, IncDeg: 53,
	}
	c := &constellation.Constellation{
		Name:    "dumbbell",
		Shells:  []constellation.Shell{shell},
		MinElev: geom.Rad(25),
		Satellites: []constellation.Satellite{
			{Index: 0, Name: "SatA", Propagator: stepProp{before: satAbove(0, 5, 600e3)}},
			{Index: 1, Name: "SatB", Propagator: stepProp{
				before: satAbove(0, 15, 600e3), after: satBAfter, switchAt: switchAt,
			}},
		},
		ISLs: []constellation.ISL{{A: 0, B: 1}},
	}
	gss := []groundstation.GS{
		{ID: 0, Name: "GS0", Position: geom.LLADeg(0, 0, 0)},
		{ID: 1, Name: "GS1", Position: geom.LLADeg(0, 20, 0)},
		{ID: 2, Name: "GS2-unreachable", Position: geom.LLADeg(80, 0, 0)},
	}
	topo, err := routing.NewTopology(c, gss, routing.GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewSimulator()
	n, err := sim.NewNetwork(s, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.InstallForwarding(topo.Snapshot(0).ForwardingTable())
	return &dumbbell{topo: topo, sim: s, net: n, ids: &FlowIDs{}}
}

// refreshForwardingEvery installs fresh forwarding state at the given
// period, like the core orchestrator does.
func (d *dumbbell) refreshForwardingEvery(period sim.Time, until sim.Time) {
	for at := period; at <= until; at += period {
		at := at
		d.sim.ScheduleAt(at, func() {
			d.net.InstallForwarding(d.topo.Snapshot(at.Seconds()).ForwardingTable())
		})
	}
}

func TestDumbbellPathIsPinned(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	path, dist := d.topo.Snapshot(0).Path(0, 1)
	// GS0 -> SatA -> SatB -> GS1.
	want := []int{d.topo.GSNode(0), 0, 1, d.topo.GSNode(1)}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if dist < 1e6 || dist > 5e6 {
		t.Errorf("path distance = %v km", dist/1000)
	}
	// GS2 is unreachable.
	if p, _ := d.topo.Snapshot(0).Path(0, 2); p != nil {
		t.Errorf("GS2 should be unreachable, got %v", p)
	}
}

func TestDumbbellStaysStableOverMinutes(t *testing.T) {
	// The pinned-ECEF propagators must keep visibility and path identical
	// across the whole test horizon.
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	p0, d0 := d.topo.Snapshot(0).Path(0, 1)
	for _, ts := range []float64{10, 60, 200} {
		p, dist := d.topo.Snapshot(ts).Path(0, 1)
		if len(p) != len(p0) {
			t.Fatalf("path changed at t=%v: %v", ts, p)
		}
		if diff := dist - d0; diff > 1 || diff < -1 {
			t.Fatalf("path length drifted %v m at t=%v", diff, ts)
		}
	}
}
