package transport

import (
	"fmt"
	"math"
	"sort"

	"hypatia/internal/check"
	"hypatia/internal/sim"
)

// CCAlgorithm selects the congestion-control algorithm of a TCP flow.
type CCAlgorithm int

const (
	// NewReno is loss-based congestion control (RFC 5681/6582): slow
	// start, AIMD congestion avoidance, fast retransmit and NewReno
	// partial-ACK fast recovery.
	NewReno CCAlgorithm = iota
	// Vegas is delay-based congestion control: it compares the expected
	// and actual rates using the minimum RTT ever seen (baseRTT) and
	// backs off when measured delay rises — which, on LEO paths whose
	// propagation delay grows after a path change, it misreads as
	// congestion (Fig. 5 of the paper).
	Vegas
	// BBR is model-based congestion control (BBRv1-style): it paces at
	// the estimated bottleneck bandwidth and refreshes its propagation-
	// delay floor every 10 s, so LEO path changes age out of the model
	// instead of being misread as congestion. The paper names evaluating
	// BBR on LEO networks as work of high interest (§4.2); see bbr.go.
	BBR
)

// String names the algorithm.
func (a CCAlgorithm) String() string {
	switch a {
	case NewReno:
		return "NewReno"
	case Vegas:
		return "Vegas"
	case BBR:
		return "BBR"
	}
	return "unknown"
}

// TCPConfig parameterizes a TCP flow. Zero values select the defaults noted
// on each field.
type TCPConfig struct {
	Algorithm CCAlgorithm

	MSS         int // payload bytes per segment; default 1460
	HeaderBytes int // TCP/IP header bytes per data segment; default 40
	AckBytes    int // bytes of a pure ACK on the wire; default 40

	InitialCwnd     float64  // initial congestion window, segments; default 10
	InitialSSThresh float64  // initial slow-start threshold, segments; default +Inf
	MinRTO          sim.Time // RTO lower bound; default 1 s (RFC 6298)
	MaxRTO          sim.Time // RTO upper bound; default 60 s

	// DelayedAcks enables the receiver's delayed-ACK behavior (ACK every
	// second in-order segment or after DelAckTimeout). The paper notes
	// delayed ACKs cause RTT oscillations at low rates but do not change
	// the headline behavior; they are on by default as in ns-3.
	DelayedAcks   bool
	NoDelayedAcks bool     // set to force delayed ACKs off
	DelAckTimeout sim.Time // default 200 ms

	// Vegas parameters, in segments (standard alpha=2, beta=4, gamma=1).
	VegasAlpha float64
	VegasBeta  float64
	VegasGamma float64

	// MaxSegments bounds the amount of data to send; 0 means a
	// long-running flow that never exhausts data.
	MaxSegments int64

	// TrackReordering records the receiver's arrival order of data
	// segments (one int64 per packet) so AnalyzeReordering can quantify
	// path-change-induced reordering. Off by default to keep large
	// many-flow runs lean.
	TrackReordering bool

	// SACK enables selective acknowledgments (RFC 2018 blocks with an
	// RFC 6675-style scoreboard): the receiver reports out-of-order runs
	// and the sender repairs one hole per arriving ACK during recovery
	// instead of NewReno's one hole per round trip. Off by default — the
	// paper's experiments model the classic stack — but available because
	// multi-loss episodes on LEO paths (outages, slow-start overshoot)
	// are exactly where classic NewReno is slowest.
	SACK bool
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.AckBytes == 0 {
		c.AckBytes = 40
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	if c.InitialSSThresh == 0 {
		c.InitialSSThresh = math.Inf(1)
	}
	if c.MinRTO == 0 {
		c.MinRTO = sim.Second
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 200 * sim.Millisecond
	}
	c.DelayedAcks = !c.NoDelayedAcks
	if c.VegasAlpha == 0 {
		c.VegasAlpha = 2
	}
	if c.VegasBeta == 0 {
		c.VegasBeta = 4
	}
	if c.VegasGamma == 0 {
		c.VegasGamma = 1
	}
	return c
}

// tcpSegment is the wire payload of a TCP packet in the simulator. Sequence
// numbers count whole segments (MSS units), which keeps the bookkeeping at
// the same granularity the paper plots (congestion window in packets).
type tcpSegment struct {
	isAck bool
	seq   int64 // data: segment sequence number
	ack   int64 // ack: next expected segment (cumulative)
	retx  bool  // data: this is a retransmission (Karn's rule)
	// sack carries up to 4 selective-acknowledgment blocks [lo, hi)
	// describing out-of-order data the receiver holds (RFC 2018), when the
	// flow has SACK enabled.
	sack [][2]int64
}

// TCPFlow is a unidirectional TCP connection between two ground stations:
// data flows src->dst, ACKs dst->src. It implements sender, receiver, and
// the selected congestion-control algorithm, and records the time series
// the paper's per-connection figures show.
type TCPFlow struct {
	Net    *sim.Network
	clk    sim.Clock
	cfg    TCPConfig
	FlowID uint32
	SrcGS  int
	DstGS  int

	// Sender state.
	started    bool
	cwnd       float64 // congestion window, segments
	ssthresh   float64 // slow-start threshold, segments
	sndUna     int64   // oldest unacknowledged segment
	sndNxt     int64   // next segment to send
	dupAcks    int
	inRecovery bool
	recover    int64 // NewReno: sndNxt at loss detection
	// partialAckSeen marks that the first partial ACK of the current
	// recovery already restarted the RTO (RFC 6582 impatient variant).
	partialAckSeen bool

	sentAt   map[int64]sim.Time // first-transmission time per in-flight segment
	everRetx map[int64]bool     // segments ever retransmitted (no RTT sample)
	rtoGen   uint64             // generation counter for the retransmission timer
	srtt     float64            // smoothed RTT, seconds (0 until first sample)
	rttvar   float64
	rto      sim.Time
	backoff  int

	// Vegas state.
	baseRTT     float64 // minimum RTT ever observed, seconds
	vegasMinRTT float64 // minimum RTT in the current RTT window
	vegasCnt    int
	vegasBeg    int64 // segment marking the end of the current RTT window

	// BBR model (nil unless Algorithm == BBR).
	bbr *bbr

	// SACK scoreboard (sender side): segments above sndUna the receiver
	// has reported holding, and the hole-repair cursor for the current
	// recovery.
	sacked   map[int64]bool
	sackRetx map[int64]bool // holes already repaired this recovery
	highSack int64          // highest sacked segment + 1

	// Receiver state.
	rcvNxt    int64
	ooo       map[int64]bool // out-of-order segments received
	delAckCnt int
	delAckGen uint64
	// ArrivalLog is the receiver-side arrival order of data segment
	// sequence numbers (populated only with TrackReordering).
	ArrivalLog []int64

	// Metrics.
	CwndLog       Series // congestion window, segments
	RTTLog        Series // sender-measured per-packet RTT, seconds
	AckedLog      Series // newly acknowledged payload bytes per ACK (for throughput)
	RetxCount     int64
	TimeoutCount  int64
	FastRetxCount int64

	// AckedSegments is the cumulative count of segments acknowledged.
	AckedSegments int64
	// AcksReceived counts ACK packets that reached the sender.
	AcksReceived int64
}

// NewTCPFlow creates a TCP flow and registers its endpoints on the network.
// Call Start to begin transmission.
func NewTCPFlow(net *sim.Network, ids *FlowIDs, srcGS, dstGS int, cfg TCPConfig) *TCPFlow {
	cfg = cfg.withDefaults()
	f := &TCPFlow{
		Net:         net,
		cfg:         cfg,
		FlowID:      ids.Next(),
		SrcGS:       srcGS,
		DstGS:       dstGS,
		cwnd:        cfg.InitialCwnd,
		ssthresh:    cfg.InitialSSThresh,
		rto:         cfg.MinRTO,
		recover:     -1,
		sentAt:      map[int64]sim.Time{},
		everRetx:    map[int64]bool{},
		ooo:         map[int64]bool{},
		sacked:      map[int64]bool{},
		sackRetx:    map[int64]bool{},
		baseRTT:     math.Inf(1),
		vegasMinRTT: math.Inf(1),
	}
	if cfg.Algorithm == BBR {
		f.bbr = newBBR()
	}
	f.clk = net.Clock(srcGS)
	net.RegisterFlow(srcGS, f.FlowID, f.onSenderPacket)
	net.RegisterFlow(dstGS, f.FlowID, f.onReceiverPacket)
	return f
}

// Config returns the flow's configuration with defaults applied.
func (f *TCPFlow) Config() TCPConfig { return f.cfg }

// Cwnd returns the current congestion window in segments.
func (f *TCPFlow) Cwnd() float64 { return f.cwnd }

// StartAfter schedules Start after a delay on the flow's own engine (the
// sharded-run-safe way to stagger flow starts).
func (f *TCPFlow) StartAfter(delay sim.Time) { f.clk.Schedule(delay, f.Start) }

// Start begins transmission at the simulator's current time (schedule it
// via StartAfter for delayed starts).
func (f *TCPFlow) Start() {
	if f.started {
		panic("transport: TCP flow started twice")
	}
	f.started = true
	f.logCwnd()
	if f.cfg.Algorithm == BBR {
		f.bbrPacedSend()
		return
	}
	f.trySend()
	f.armRTO()
}

// Done reports whether a bounded flow has delivered all its data.
func (f *TCPFlow) Done() bool {
	return f.cfg.MaxSegments > 0 && f.sndUna >= f.cfg.MaxSegments
}

// GoodputBps returns the average goodput (acknowledged payload) in bits/s
// between flow start (t=0 reference) and now.
func (f *TCPFlow) GoodputBps(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(f.AckedSegments*int64(f.cfg.MSS)*8) / elapsed.Seconds()
}

func (f *TCPFlow) logCwnd() {
	if check.Enabled {
		check.Assert(f.cwnd >= 1 && !math.IsNaN(f.cwnd) && !math.IsInf(f.cwnd, 0),
			"flow %d cwnd %v outside [1, +finite)", f.FlowID, f.cwnd)
		check.Assert(f.ssthresh >= 1, "flow %d ssthresh %v below 1 segment", f.FlowID, f.ssthresh)
		check.Assert(f.sndUna <= f.sndNxt, "flow %d sndUna %d ahead of sndNxt %d", f.FlowID, f.sndUna, f.sndNxt)
	}
	f.CwndLog.Add(f.clk.Now(), f.cwnd)
}

// flightSize returns the number of unacknowledged segments.
func (f *TCPFlow) flightSize() int64 { return f.sndNxt - f.sndUna }

// trySend transmits as many new segments as the congestion window allows.
// With SACK, segments the receiver already reported holding are skipped
// (relevant after a timeout's go-back-N rewind).
func (f *TCPFlow) trySend() {
	for f.sndNxt < f.sndUna+int64(f.cwnd) {
		if f.cfg.MaxSegments > 0 && f.sndNxt >= f.cfg.MaxSegments {
			return
		}
		if f.cfg.SACK && f.sacked[f.sndNxt] {
			f.sndNxt++
			continue
		}
		f.sendSegment(f.sndNxt, false)
		f.sndNxt++
	}
}

// sendSegment puts one data segment on the wire. Any send of a sequence
// that already left once counts as a retransmission (Karn's rule), even
// when reached through go-back-N's regular send path.
func (f *TCPFlow) sendSegment(seq int64, retx bool) {
	if _, dup := f.sentAt[seq]; dup || retx {
		f.everRetx[seq] = true
		f.RetxCount++
	} else {
		f.sentAt[seq] = f.clk.Now()
	}
	f.Net.Send(f.SrcGS, f.DstGS, f.FlowID, f.cfg.MSS+f.cfg.HeaderBytes,
		tcpSegment{seq: seq, retx: retx})
}

// ---- Receiver ----

// onReceiverPacket handles data arriving at the destination.
func (f *TCPFlow) onReceiverPacket(pkt *sim.Packet) {
	seg := pkt.Payload.(tcpSegment)
	if seg.isAck {
		return // stray ACK at receiver; cannot happen with distinct GSes
	}
	if f.cfg.TrackReordering {
		f.ArrivalLog = append(f.ArrivalLog, seg.seq)
	}
	hadOOO := len(f.ooo) > 0
	inOrder := false
	switch {
	case seg.seq == f.rcvNxt:
		f.rcvNxt++
		for f.ooo[f.rcvNxt] {
			delete(f.ooo, f.rcvNxt)
			f.rcvNxt++
		}
		inOrder = true
	case seg.seq > f.rcvNxt:
		f.ooo[seg.seq] = true // out of order: reordering or loss
	default:
		// Duplicate of already-received data (spurious retransmission).
	}

	// RFC 5681: ACK immediately while there is (or was) a sequence hole, so
	// the sender learns about filled gaps without delayed-ACK latency.
	if inOrder && f.cfg.DelayedAcks && !hadOOO && len(f.ooo) == 0 {
		f.delAckCnt++
		if f.delAckCnt >= 2 {
			f.sendAck()
			return
		}
		// Arm the delayed-ACK timer for a lone segment.
		gen := f.delAckGen
		f.clk.Schedule(f.cfg.DelAckTimeout, func() {
			if f.delAckGen == gen && f.delAckCnt > 0 {
				f.sendAck()
			}
		})
		return
	}
	// Out-of-order and duplicate segments trigger immediate (dup) ACKs;
	// without delayed ACKs every segment does.
	f.sendAck()
}

// sendAck emits a cumulative ACK for everything received in order, with
// SACK blocks describing out-of-order runs when enabled.
func (f *TCPFlow) sendAck() {
	f.delAckCnt = 0
	f.delAckGen++
	seg := tcpSegment{isAck: true, ack: f.rcvNxt}
	if f.cfg.SACK && len(f.ooo) > 0 {
		seg.sack = f.sackBlocks()
	}
	f.Net.Send(f.DstGS, f.SrcGS, f.FlowID, f.cfg.AckBytes, seg)
}

// sackBlocks summarizes the out-of-order set as up to 4 [lo, hi) runs,
// lowest first.
func (f *TCPFlow) sackBlocks() [][2]int64 {
	seqs := make([]int64, 0, len(f.ooo))
	for s := range f.ooo {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var blocks [][2]int64
	for _, s := range seqs {
		if len(blocks) > 0 && blocks[len(blocks)-1][1] == s {
			blocks[len(blocks)-1][1] = s + 1
			continue
		}
		if len(blocks) == 4 {
			break
		}
		blocks = append(blocks, [2]int64{s, s + 1})
	}
	return blocks
}

// ReceivedSegments returns how many segments the receiver has delivered
// in order.
func (f *TCPFlow) ReceivedSegments() int64 { return f.rcvNxt }

// ---- Sender ----

// onSenderPacket handles ACKs arriving back at the source.
func (f *TCPFlow) onSenderPacket(pkt *sim.Packet) {
	seg := pkt.Payload.(tcpSegment)
	if !seg.isAck {
		return
	}
	f.AcksReceived++
	if f.cfg.SACK && len(seg.sack) > 0 {
		f.processSACK(seg.sack)
	}
	if seg.ack > f.sndUna {
		f.onNewAck(seg.ack)
	} else if f.flightSize() > 0 {
		f.onDupAck()
	}
}

// onNewAck processes an ACK advancing the window.
func (f *TCPFlow) onNewAck(ack int64) {
	prevUna := f.sndUna
	newly := ack - f.sndUna

	// RTT sampling from the most recent newly acknowledged segment that was
	// never retransmitted (Karn's rule). No samples during fast recovery,
	// and none from ACKs that advance by more than a delayed-ACK stride:
	// such jumps acknowledge segments that were stuck behind
	// retransmission holes, so their age measures the recovery, not the
	// path.
	if !f.inRecovery && newly <= 2 {
		for seq := ack - 1; seq >= f.sndUna; seq-- {
			t0, ok := f.sentAt[seq]
			if ok && !f.everRetx[seq] {
				f.sampleRTT(f.clk.Now() - t0)
				break
			}
			if ok {
				break // newest acked segment was retransmitted: no sample
			}
		}
	}
	for seq := f.sndUna; seq < ack; seq++ {
		delete(f.sentAt, seq)
		delete(f.everRetx, seq)
		delete(f.sacked, seq)
		delete(f.sackRetx, seq)
	}
	f.sndUna = ack
	// A cumulative ACK can land above sndNxt after a timeout's go-back-N
	// rewind (the ACK was for data in flight before the rewind). The
	// rewound-but-already-received segments must not be resent: pull
	// sndNxt forward so flight accounting stays consistent.
	if f.sndNxt < f.sndUna {
		f.sndNxt = f.sndUna
	}
	f.AckedSegments = ack
	f.AckedLog.Add(f.clk.Now(), float64(newly*int64(f.cfg.MSS)))
	f.backoff = 0

	if f.inRecovery {
		if ack >= f.recover {
			// Full ACK: leave fast recovery (NewReno).
			f.inRecovery = false
			f.dupAcks = 0
			f.cwnd = f.ssthresh
		} else {
			// Partial ACK: retransmit the next hole, deflate the window by
			// the amount acknowledged, inflate by one. With SACK the next
			// hole may be above sndUna.
			if !f.cfg.SACK || !f.retransmitHole() {
				f.sendSegment(f.sndUna, true)
			}
			f.cwnd = math.Max(f.cwnd-float64(newly)+1, 1)
			// RFC 6582 "impatient" variant: only the first partial ACK
			// restarts the retransmission timer, so a recovery crawling
			// through many holes (one per RTT) is cut short by an RTO
			// and go-back-N instead of stalling for tens of seconds.
			if !f.partialAckSeen {
				f.partialAckSeen = true
			} else {
				f.logCwnd()
				f.trySend()
				return
			}
		}
	} else {
		f.dupAcks = 0
		switch f.cfg.Algorithm {
		case NewReno:
			f.renoIncrease(newly)
		case Vegas:
			f.vegasUpdate(newly)
		case BBR:
			f.bbrOnAck(prevUna, ack)
		}
	}
	f.logCwnd()

	if f.flightSize() > 0 {
		f.armRTO()
	} else {
		f.cancelRTO()
	}
	if f.cfg.Algorithm != BBR {
		f.trySend() // BBR transmissions are pacing-timer driven
	}
}

// renoIncrease applies slow start or congestion avoidance.
func (f *TCPFlow) renoIncrease(newly int64) {
	if f.cwnd < f.ssthresh {
		f.cwnd += float64(newly) // slow start: +1 per acked segment
	} else {
		f.cwnd += float64(newly) / f.cwnd // congestion avoidance
	}
}

// onDupAck processes a duplicate ACK.
func (f *TCPFlow) onDupAck() {
	if f.cfg.Algorithm == BBR {
		// BBR does not treat loss as a congestion signal: retransmit (the
		// SACK hole if known, else the first unacked segment on the third
		// duplicate) and let pacing continue.
		f.dupAcks++
		if f.cfg.SACK && f.retransmitHole() {
			return
		}
		if f.dupAcks == 3 {
			f.FastRetxCount++
			f.sendSegment(f.sndUna, true)
			f.armRTO()
		}
		return
	}
	if f.inRecovery {
		// Window inflation per extra dup ACK, capped at one full at-loss
		// window beyond ssthresh (inflation past that cannot correspond to
		// packets that actually left the network).
		if f.cwnd < 2*f.ssthresh+3 {
			f.cwnd++
			f.logCwnd()
			// With SACK, repair the next reported hole before sending new
			// data: one hole per ACK instead of one per round trip.
			if f.cfg.SACK && f.retransmitHole() {
				return
			}
			f.trySend()
		}
		return
	}
	f.dupAcks++
	if f.dupAcks == 3 && f.sndUna <= f.recover {
		// RFC 6582 "careful" variant: duplicate ACKs for data below the
		// recovery high-water mark (e.g. after a timeout's go-back-N
		// resent already-received segments) must not re-enter fast
		// retransmit.
		return
	}
	if f.dupAcks == 3 {
		// Fast retransmit. Whether the dup ACKs stem from real loss or
		// from reordering after a path shortened, the sender cannot tell —
		// the paper's point about loss being a noisy signal on LEO paths.
		f.FastRetxCount++
		f.ssthresh = math.Max(float64(f.flightSize())/2, 2)
		f.cwnd = f.ssthresh + 3
		f.inRecovery = true
		f.partialAckSeen = false
		f.recover = f.sndNxt
		if f.cfg.SACK {
			f.sackRetx = map[int64]bool{}
			f.sackRetx[f.sndUna] = true
		}
		f.sendSegment(f.sndUna, true)
		f.logCwnd()
		f.armRTO()
	}
}

// sampleRTT feeds one RTT measurement into the estimator, the RTT log, and
// Vegas' delay tracking.
func (f *TCPFlow) sampleRTT(rtt sim.Time) {
	r := rtt.Seconds()
	f.RTTLog.Add(f.clk.Now(), r)
	if f.srtt == 0 {
		f.srtt = r
		f.rttvar = r / 2
	} else {
		const alpha, beta = 0.125, 0.25
		f.rttvar = (1-beta)*f.rttvar + beta*math.Abs(f.srtt-r)
		f.srtt = (1-alpha)*f.srtt + alpha*r
	}
	rto := sim.Seconds(f.srtt + 4*f.rttvar)
	if rto < f.cfg.MinRTO {
		rto = f.cfg.MinRTO
	}
	if rto > f.cfg.MaxRTO {
		rto = f.cfg.MaxRTO
	}
	f.rto = rto

	if r < f.baseRTT {
		f.baseRTT = r
	}
	if r < f.vegasMinRTT {
		f.vegasMinRTT = r
	}
	f.vegasCnt++
}

// vegasUpdate runs the Vegas once-per-RTT window adjustment, falling back to
// slow start before the first RTT estimate.
func (f *TCPFlow) vegasUpdate(newly int64) {
	if f.sndUna < f.vegasBeg {
		// Still inside the current RTT window: Vegas holds cwnd, except in
		// slow start where it grows like Reno until gamma is exceeded.
		if f.cwnd < f.ssthresh {
			f.cwnd += float64(newly)
		}
		return
	}
	// One RTT elapsed: evaluate.
	f.vegasBeg = f.sndNxt
	if f.vegasCnt == 0 || math.IsInf(f.vegasMinRTT, 1) || f.baseRTT == 0 {
		if f.cwnd < f.ssthresh {
			f.cwnd += float64(newly)
		}
		return
	}
	// diff = cwnd * (rtt - baseRTT) / rtt, in segments: the extra segments
	// this flow keeps queued in the network.
	rtt := f.vegasMinRTT
	diff := f.cwnd * (rtt - f.baseRTT) / rtt
	if f.cwnd < f.ssthresh {
		// Slow start: leave it once the queue estimate exceeds gamma.
		if diff > f.cfg.VegasGamma {
			f.cwnd = math.Max(f.cwnd-diff, 2)
			f.ssthresh = math.Max(math.Min(f.ssthresh, f.cwnd-1), 2)
		} else {
			f.cwnd += float64(newly)
		}
	} else {
		switch {
		case diff > f.cfg.VegasBeta:
			f.cwnd--
			// Keep ssthresh below the shrinking window so the flow stays
			// in congestion avoidance rather than bouncing back into slow
			// start (as in ns-3's TcpVegas).
			f.ssthresh = math.Max(math.Min(f.ssthresh, f.cwnd-1), 2)
		case diff < f.cfg.VegasAlpha:
			f.cwnd++
		}
	}
	if f.cwnd < 2 {
		f.cwnd = 2
	}
	f.vegasMinRTT = math.Inf(1)
	f.vegasCnt = 0
}

// ---- Retransmission timer ----

func (f *TCPFlow) armRTO() {
	f.rtoGen++
	gen := f.rtoGen
	d := f.rto << uint(f.backoff)
	if d > f.cfg.MaxRTO {
		d = f.cfg.MaxRTO
	}
	f.clk.Schedule(d, func() {
		if f.rtoGen == gen {
			f.onTimeout()
		}
	})
}

func (f *TCPFlow) cancelRTO() { f.rtoGen++ }

// onTimeout handles an RTO expiry: multiplicative decrease to one segment
// and go-back-N from the first unacknowledged segment.
func (f *TCPFlow) onTimeout() {
	if f.flightSize() == 0 {
		return // nothing outstanding; timer was stale
	}
	f.TimeoutCount++
	if f.cfg.Algorithm == BBR {
		f.bbr.inRTORecovery = true
	} else {
		f.ssthresh = math.Max(float64(f.flightSize())/2, 2)
		f.cwnd = 1
	}
	f.dupAcks = 0
	f.inRecovery = false
	f.partialAckSeen = false
	// Dup ACKs for anything sent before this timeout must not trigger a
	// new fast retransmit (RFC 6582 careful variant).
	f.recover = f.sndNxt
	f.sndNxt = f.sndUna
	f.sackRetx = map[int64]bool{}
	if f.backoff < 16 {
		f.backoff++
	}
	f.logCwnd()
	if f.cfg.Algorithm != BBR {
		f.trySend()
	}
	f.armRTO()
}

// processSACK folds received SACK blocks into the scoreboard.
func (f *TCPFlow) processSACK(blocks [][2]int64) {
	for _, b := range blocks {
		for s := b[0]; s < b[1]; s++ {
			if s >= f.sndUna && !f.sacked[s] {
				f.sacked[s] = true
				if s+1 > f.highSack {
					f.highSack = s + 1
				}
			}
		}
	}
}

// retransmitHole resends the lowest hole below the SACK high-water mark
// that has not already been repaired this recovery. It reports whether a
// retransmission was sent.
func (f *TCPFlow) retransmitHole() bool {
	for s := f.sndUna; s < f.highSack; s++ {
		if f.sacked[s] || f.sackRetx[s] {
			continue
		}
		f.sackRetx[s] = true
		f.sendSegment(s, true)
		return true
	}
	return false
}

// String describes the flow.
func (f *TCPFlow) String() string {
	return fmt.Sprintf("tcp[%s %d->%d flow=%d]", f.cfg.Algorithm, f.SrcGS, f.DstGS, f.FlowID)
}
