package transport

import (
	"math"
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/sim"
)

func TestPingRTTMatchesPath(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	p := NewPinger(d.net, d.ids, 0, 1, PingConfig{Interval: 10 * sim.Millisecond})
	p.Start()
	d.sim.Run(sim.Second)
	res := p.Results()
	if len(res) != 101 { // t = 0, 10 ms, ..., 1000 ms inclusive
		t.Fatalf("sent %d pings", len(res))
	}
	_, dist := d.topo.Snapshot(0).Path(0, 1)
	propRTT := 2 * dist / geom.SpeedOfLight
	for _, r := range res {
		if !r.Replied {
			continue
		}
		rtt := r.RTT.Seconds()
		// Propagation plus six 64-byte serializations (3 hops each way).
		if rtt < propRTT || rtt > propRTT+0.005 {
			t.Fatalf("ping %d RTT %v, want near %v", r.Seq, rtt, propRTT)
		}
	}
	// The last pings may not return before the run ends (the paper notes
	// the same artifact); none before that may be lost.
	if p.LossCount() > 3 {
		t.Errorf("%d pings lost on an idle path", p.LossCount())
	}
	for _, r := range res[:len(res)-3] {
		if !r.Replied {
			t.Fatalf("mid-run ping %d lost", r.Seq)
		}
	}
}

func TestPingIntervalSpacing(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	p := NewPinger(d.net, d.ids, 0, 1, PingConfig{Interval: 5 * sim.Millisecond})
	p.Start()
	d.sim.Run(100 * sim.Millisecond)
	res := p.Results()
	for i := 1; i < len(res); i++ {
		if gap := res[i].SentAt - res[i-1].SentAt; gap != 5*sim.Millisecond {
			t.Fatalf("ping gap = %v", gap)
		}
	}
}

func TestPingToUnreachableAllLost(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	p := NewPinger(d.net, d.ids, 0, 2, PingConfig{Interval: 50 * sim.Millisecond})
	p.Start()
	d.sim.Run(sim.Second)
	if p.LossCount() != len(p.Results()) {
		t.Errorf("lost %d of %d pings to unreachable GS", p.LossCount(), len(p.Results()))
	}
	if s := p.RTTSeries(); s.Len() != 0 {
		t.Errorf("RTT series has %d samples for black-holed pings", s.Len())
	}
}

func TestPingTracksPathChange(t *testing.T) {
	// When SatB climbs at t=2 s the measured RTT must step up accordingly.
	after := satAbove(20, 15, 1790e3)
	d := newDumbbell(t, sim.DefaultConfig(), after, 2)
	p := NewPinger(d.net, d.ids, 0, 1, PingConfig{Interval: 10 * sim.Millisecond})
	p.Start()
	d.sim.Run(4 * sim.Second)
	var early, late []float64
	for _, r := range p.Results() {
		if !r.Replied {
			continue
		}
		if r.SentAt < 1500*sim.Millisecond {
			early = append(early, r.RTT.Seconds())
		} else if r.SentAt > 2500*sim.Millisecond {
			late = append(late, r.RTT.Seconds())
		}
	}
	if len(early) == 0 || len(late) == 0 {
		t.Fatal("missing samples")
	}
	meanE, meanL := mean(early), mean(late)
	if meanL < meanE+0.01 {
		t.Errorf("RTT did not rise after path change: %v -> %v", meanE, meanL)
	}
}

func TestPingDefaults(t *testing.T) {
	cfg := PingConfig{}.withDefaults()
	if cfg.Interval != sim.Millisecond || cfg.Size != 64 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestPingStartTwicePanics(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	p := NewPinger(d.net, d.ids, 0, 1, PingConfig{})
	p.Start()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	p.Start()
}

func TestPingStop(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	p := NewPinger(d.net, d.ids, 0, 1, PingConfig{Interval: 10 * sim.Millisecond})
	p.Start()
	d.sim.Schedule(100*sim.Millisecond, p.Stop)
	d.sim.Run(sim.Second)
	if n := len(p.Results()); n < 10 || n > 12 {
		t.Errorf("pings after stop: %d", n)
	}
}

func mean(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return total / float64(len(xs))
}
