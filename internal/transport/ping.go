package transport

import (
	"hypatia/internal/sim"
)

// PingConfig parameterizes a ping measurement stream.
type PingConfig struct {
	Interval sim.Time // time between echo requests; default 1 ms (paper §4.1)
	Size     int      // bytes on the wire per echo packet; default 64
}

func (c PingConfig) withDefaults() PingConfig {
	if c.Interval == 0 {
		c.Interval = sim.Millisecond
	}
	if c.Size == 0 {
		c.Size = 64
	}
	return c
}

// pingPayload identifies one echo request/response.
type pingPayload struct {
	seq     int64
	isReply bool
	sentAt  sim.Time
}

// PingResult is the outcome of one echo request.
type PingResult struct {
	Seq    int64
	SentAt sim.Time
	RTT    sim.Time // 0 if no reply arrived before the run ended (paper
	// plots these trailing unanswered pings as zero)
	Replied bool
}

// Pinger sends an echo request every Interval from SrcGS to DstGS and logs
// response times — the measurement stream behind the paper's RTT-fluctuation
// figures. Requests that never return (disconnection, loss) remain with
// Replied = false.
type Pinger struct {
	Net    *sim.Network
	clk    sim.Clock
	cfg    PingConfig
	FlowID uint32
	SrcGS  int
	DstGS  int

	running bool
	results []PingResult
	index   map[int64]int // seq -> index in results
	next    int64
}

// NewPinger creates a pinger and registers both endpoints. Call Start.
func NewPinger(net *sim.Network, ids *FlowIDs, srcGS, dstGS int, cfg PingConfig) *Pinger {
	p := &Pinger{
		Net: net, clk: net.Clock(srcGS), cfg: cfg.withDefaults(), FlowID: ids.Next(),
		SrcGS: srcGS, DstGS: dstGS, index: map[int64]int{},
	}
	net.RegisterFlow(srcGS, p.FlowID, p.onReply)
	net.RegisterFlow(dstGS, p.FlowID, p.onRequest)
	return p
}

// Start begins the periodic echo stream; it runs until Stop or the end of
// the simulation.
func (p *Pinger) Start() {
	if p.running {
		panic("transport: pinger started twice")
	}
	p.running = true
	p.sendNext()
}

// StartAfter schedules Start after a delay on the flow's own engine (the
// sharded-run-safe way to stagger flow starts).
func (p *Pinger) StartAfter(delay sim.Time) { p.clk.Schedule(delay, p.Start) }

// Stop halts the request stream.
func (p *Pinger) Stop() { p.running = false }

func (p *Pinger) sendNext() {
	if !p.running {
		return
	}
	now := p.clk.Now()
	p.index[p.next] = len(p.results)
	p.results = append(p.results, PingResult{Seq: p.next, SentAt: now})
	p.Net.Send(p.SrcGS, p.DstGS, p.FlowID, p.cfg.Size,
		pingPayload{seq: p.next, sentAt: now})
	p.next++
	p.clk.Schedule(p.cfg.Interval, p.sendNext)
}

// onRequest echoes a request back to the source.
func (p *Pinger) onRequest(pkt *sim.Packet) {
	pl := pkt.Payload.(pingPayload)
	if pl.isReply {
		return
	}
	pl.isReply = true
	p.Net.Send(p.DstGS, p.SrcGS, p.FlowID, p.cfg.Size, pl)
}

// onReply records the measured RTT.
func (p *Pinger) onReply(pkt *sim.Packet) {
	pl := pkt.Payload.(pingPayload)
	if !pl.isReply {
		return
	}
	i, ok := p.index[pl.seq]
	if !ok {
		return
	}
	p.results[i].RTT = p.clk.Now() - pl.sentAt
	p.results[i].Replied = true
}

// Results returns all ping outcomes in sequence order. The slice is owned
// by the pinger.
func (p *Pinger) Results() []PingResult { return p.results }

// LossCount returns the number of unanswered pings.
func (p *Pinger) LossCount() int {
	lost := 0
	for _, r := range p.results {
		if !r.Replied {
			lost++
		}
	}
	return lost
}

// RTTSeries converts the replied pings to a Series in seconds.
func (p *Pinger) RTTSeries() Series {
	var s Series
	for _, r := range p.results {
		if r.Replied {
			s.Add(r.SentAt, r.RTT.Seconds())
		}
	}
	return s
}
