package transport

import (
	"testing"

	"hypatia/internal/geom"
	"hypatia/internal/sim"
)

func TestBBRSaturatesWithoutBufferbloat(t *testing.T) {
	// The headline BBR property: near-line-rate goodput while keeping the
	// queue — and therefore the RTT — near the propagation floor, unlike
	// NewReno which fills the buffer.
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: BBR})
	f.Start()
	d.sim.Run(30 * sim.Second)

	goodput := f.GoodputBps(30 * sim.Second)
	if goodput < 0.75*10e6*1460/1500 {
		t.Errorf("BBR goodput = %.2f Mbps", goodput/1e6)
	}
	// Steady-state RTT (after startup drains) must sit near the floor:
	// compare the 90th percentile of samples after t=5 s with the minimum.
	var late Series
	for _, s := range f.RTTLog.Samples {
		if s.T > 5*sim.Second {
			late.Add(s.T, s.V)
		}
	}
	if late.Len() == 0 {
		t.Fatal("no late RTT samples")
	}
	min := f.RTTLog.Min()
	if p90 := late.Percentile(0.9); p90 > min+0.04 {
		t.Errorf("BBR p90 RTT %.1f ms vs floor %.1f ms: bufferbloat", p90*1e3, min*1e3)
	}
}

func TestBBRKeepsQueueSmallerThanNewReno(t *testing.T) {
	run := func(alg CCAlgorithm) float64 {
		d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
		f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: alg})
		f.Start()
		d.sim.Run(30 * sim.Second)
		return f.RTTLog.Percentile(0.9)
	}
	bbrP90 := run(BBR)
	renoP90 := run(NewReno)
	if bbrP90 >= renoP90 {
		t.Errorf("BBR p90 RTT %.1f ms not below NewReno's %.1f ms", bbrP90*1e3, renoP90*1e3)
	}
}

func TestBBRSurvivesPathLengthening(t *testing.T) {
	// Vegas's failure mode (Fig 5): a path-change RTT rise. BBR's RTprop
	// window refreshes within 10 s, so throughput must recover.
	after := satAbove(20, 15, 1790e3)
	d := newDumbbell(t, sim.DefaultConfig(), after, 10)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: BBR})
	f.Start()
	d.sim.Run(45 * sim.Second)
	// Goodput over the final 10 s, well after the change and at least one
	// RTprop refresh.
	var lateBytes float64
	for _, s := range f.AckedLog.Samples {
		if s.T >= 35*sim.Second {
			lateBytes += s.V
		}
	}
	lateGoodput := lateBytes * 8 / 10
	if lateGoodput < 5e6 {
		t.Errorf("BBR late goodput = %.2f Mbps after path change, want >5", lateGoodput/1e6)
	}
}

func TestBBRRecoversFromLoss(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.QueuePackets = 8
	d := newDumbbell(t, cfg, geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: BBR, SACK: true, MaxSegments: 500})
	f.Start()
	d.sim.Run(60 * sim.Second)
	if !f.Done() {
		t.Fatalf("BBR flow incomplete: %d/500, retx=%d timeouts=%d",
			f.AckedSegments, f.RetxCount, f.TimeoutCount)
	}
}

func TestBBRUnreachableDestinationDoesNotSpin(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 2, TCPConfig{Algorithm: BBR, MaxSegments: 10})
	f.Start()
	d.sim.Run(20 * sim.Second)
	if f.AckedSegments != 0 {
		t.Errorf("acked %d to unreachable GS", f.AckedSegments)
	}
	if f.TimeoutCount == 0 {
		t.Error("no RTO for black-holed BBR flow")
	}
}

func TestBBRStateMachineReachesProbeBW(t *testing.T) {
	d := newDumbbell(t, sim.DefaultConfig(), geom.Vec3{}, 0)
	f := NewTCPFlow(d.net, d.ids, 0, 1, TCPConfig{Algorithm: BBR})
	f.Start()
	d.sim.Run(10 * sim.Second)
	if f.bbr.state != bbrProbeBW {
		t.Errorf("BBR state after 10 s = %v, want ProbeBW", f.bbr.state)
	}
	// The bandwidth estimate should be near the bottleneck in segments/s:
	// 10 Mb/s over 1500 B wire segments is ~833 seg/s.
	if f.bbr.btlBw < 700 || f.bbr.btlBw > 900 {
		t.Errorf("btlBw estimate = %.0f seg/s, want ~833", f.bbr.btlBw)
	}
	// RTprop near the propagation floor.
	if f.bbr.rtProp > f.RTTLog.Min()+0.002 {
		t.Errorf("rtProp %.1f ms vs observed floor %.1f ms", f.bbr.rtProp*1e3, f.RTTLog.Min()*1e3)
	}
}

func TestBBRString(t *testing.T) {
	if BBR.String() != "BBR" {
		t.Error("BBR name")
	}
}
