package transport

import (
	"hypatia/internal/sim"
)

// UDPConfig parameterizes a constant-bit-rate UDP flow.
type UDPConfig struct {
	RateBps     float64 // application send rate, bits/s of payload+header
	PayloadSize int     // payload bytes per packet; default 1472
	HeaderBytes int     // UDP/IP header bytes; default 28
}

func (c UDPConfig) withDefaults() UDPConfig {
	if c.PayloadSize == 0 {
		c.PayloadSize = 1472
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 28
	}
	return c
}

// UDPFlow is a paced constant-bit-rate sender with a counting sink, the
// workload of the paper's UDP scalability experiments: each GS pair sends
// paced UDP traffic at the line rate, and goodput is the network-wide rate
// of payload arrivals.
type UDPFlow struct {
	Net    *sim.Network
	clk    sim.Clock
	cfg    UDPConfig
	FlowID uint32
	SrcGS  int
	DstGS  int

	running bool
	sent    int64 // packets sent
	// ReceivedPayloadBytes counts payload bytes that reached the sink.
	ReceivedPayloadBytes int64
	// ReceivedLog records payload bytes per arrival for windowed rates.
	ReceivedLog Series
}

// NewUDPFlow creates the flow and registers its sink. Call Start to begin.
func NewUDPFlow(net *sim.Network, ids *FlowIDs, srcGS, dstGS int, cfg UDPConfig) *UDPFlow {
	cfg = cfg.withDefaults()
	if cfg.RateBps <= 0 {
		panic("transport: UDP flow needs a positive rate")
	}
	f := &UDPFlow{Net: net, clk: net.Clock(srcGS), cfg: cfg, FlowID: ids.Next(), SrcGS: srcGS, DstGS: dstGS}
	net.RegisterFlow(dstGS, f.FlowID, f.onReceive)
	// The sender's pacing timer and the sink's counters are one flow object:
	// keep both endpoints on one shard engine.
	net.Colocate(srcGS, dstGS)
	return f
}

// Start begins paced transmission and keeps sending until Stop.
func (f *UDPFlow) Start() {
	if f.running {
		panic("transport: UDP flow started twice")
	}
	f.running = true
	f.sendNext()
}

// StartAfter schedules Start after a delay on the flow's own engine (the
// sharded-run-safe way to stagger flow starts).
func (f *UDPFlow) StartAfter(delay sim.Time) { f.clk.Schedule(delay, f.Start) }

// Stop halts the sender after the next scheduled packet.
func (f *UDPFlow) Stop() { f.running = false }

// Sent returns the number of packets transmitted.
func (f *UDPFlow) Sent() int64 { return f.sent }

func (f *UDPFlow) sendNext() {
	if !f.running {
		return
	}
	wire := f.cfg.PayloadSize + f.cfg.HeaderBytes
	f.Net.Send(f.SrcGS, f.DstGS, f.FlowID, wire, f.cfg.PayloadSize)
	f.sent++
	// Pace at the configured rate counted over wire bytes.
	f.clk.Schedule(sim.Seconds(float64(wire*8)/f.cfg.RateBps), f.sendNext)
}

func (f *UDPFlow) onReceive(pkt *sim.Packet) {
	payload := pkt.Payload.(int)
	f.ReceivedPayloadBytes += int64(payload)
	f.ReceivedLog.Add(f.clk.Now(), float64(payload))
}

// GoodputBps returns average payload goodput over the elapsed time.
func (f *UDPFlow) GoodputBps(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(f.ReceivedPayloadBytes*8) / elapsed.Seconds()
}
