package viz

import (
	"encoding/json"
	"strings"
	"testing"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/groundstation"
	"hypatia/internal/routing"
)

func miniConstellation(t *testing.T) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Generate(constellation.Config{
		Name: "Mini",
		Shells: []constellation.Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 8, SatsPerOrbit: 8,
			IncDeg: 53,
		}},
		MinElevDeg: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func miniTopo(t *testing.T) *routing.Topology {
	t.Helper()
	all := groundstation.Top100Cities()
	var gss []groundstation.GS
	for i, name := range []string{"Istanbul", "Nairobi"} {
		g := groundstation.MustByName(all, name)
		g.ID = i
		gss = append(gss, g)
	}
	topo, err := routing.NewTopology(miniConstellation(t), gss, routing.GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestConstellationCZMLIsValidJSON(t *testing.T) {
	c := miniConstellation(t)
	raw, err := ConstellationCZML(c, CZMLOptions{Duration: 300, Step: 60})
	if err != nil {
		t.Fatal(err)
	}
	var doc []map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("CZML does not parse: %v", err)
	}
	if len(doc) != 1+c.NumSatellites() {
		t.Fatalf("packets = %d, want %d", len(doc), 1+c.NumSatellites())
	}
	if doc[0]["id"] != "document" || doc[0]["version"] != "1.0" {
		t.Errorf("document packet: %v", doc[0])
	}
	// Each satellite packet carries epoch-tagged cartesians: 4 values per
	// sample, 6 samples for 300/60.
	pos := doc[1]["position"].(map[string]any)
	cart := pos["cartesian"].([]any)
	if len(cart) != 6*4 {
		t.Errorf("cartesian samples = %d, want 24", len(cart))
	}
	if pos["epoch"] != "2020-01-01T00:00:00Z" {
		t.Errorf("epoch = %v", pos["epoch"])
	}
}

func TestConstellationCZMLPositionsAreOrbital(t *testing.T) {
	c := miniConstellation(t)
	raw, err := ConstellationCZML(c, CZMLOptions{Duration: 60, Step: 60})
	if err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Position *struct {
			Cartesian []float64 `json:"cartesian"`
		} `json:"position"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	want := geom.EarthRadius + 630e3
	for _, p := range doc[1:] {
		for i := 0; i+3 < len(p.Position.Cartesian); i += 4 {
			v := geom.Vec3{
				X: p.Position.Cartesian[i+1],
				Y: p.Position.Cartesian[i+2],
				Z: p.Position.Cartesian[i+3],
			}
			if r := v.Norm(); r < want-1e4 || r > want+1e4 {
				t.Fatalf("satellite radius %v, want ~%v", r, want)
			}
		}
	}
}

func TestConstellationCZMLRejectsBadOptions(t *testing.T) {
	c := miniConstellation(t)
	if _, err := ConstellationCZML(c, CZMLOptions{Duration: -5, Step: 1}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestPathCZML(t *testing.T) {
	pts := []geom.Vec3{{X: 7e6}, {Y: 7e6}, {Z: 7e6}}
	raw, err := PathCZML("test", pts)
	if err != nil {
		t.Fatal(err)
	}
	var doc []map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc) != 2 {
		t.Fatalf("packets = %d", len(doc))
	}
	if _, err := PathCZML("x", pts[:1]); err == nil {
		t.Error("single-point path accepted")
	}
}

func checkSVG(t *testing.T, svg string) {
	t.Helper()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
}

func TestTrajectoryMapSVG(t *testing.T) {
	c := miniConstellation(t)
	svg := TrajectoryMapSVG(c, TrajectoryMapOptions{Time: 100, OrbitTrack: true})
	checkSVG(t, svg)
	// One faint circle per satellite plus graticule.
	if got := strings.Count(svg, "<circle"); got != c.NumSatellites() {
		t.Errorf("circles = %d, want %d", got, c.NumSatellites())
	}
	if !strings.Contains(svg, "#cc3333") {
		t.Error("no orbit tracks drawn")
	}
}

func TestGroundObserverSVG(t *testing.T) {
	c := miniConstellation(t)
	obs := geom.LLADeg(41, 29, 0)
	svg, connectable := GroundObserverSVG(c, obs, SkyViewOptions{Time: 0})
	checkSVG(t, svg)
	if connectable < 0 {
		t.Error("negative connectable count")
	}
	// The shaded minimum-elevation band must be present.
	if !strings.Contains(svg, "#e8e8e8") {
		t.Error("minimum-elevation band missing")
	}
	// Count satellites above the horizon independently.
	above := 0
	pos := c.PositionsECEF(0, nil)
	for _, p := range pos {
		if geom.Look(obs, p).Elevation >= 0 {
			above++
		}
	}
	if got := strings.Count(svg, "<circle"); got != above {
		t.Errorf("sky dots = %d, want %d", got, above)
	}
}

func TestPathMapSVG(t *testing.T) {
	topo := miniTopo(t)
	path, _ := topo.Snapshot(0).Path(0, 1)
	if path == nil {
		t.Skip("pair disconnected in mini constellation")
	}
	svg := PathMapSVG(topo, path, 0, 0, 0)
	checkSVG(t, svg)
	if !strings.Contains(svg, "#0066cc") {
		t.Error("path links missing")
	}
	if !strings.Contains(svg, "#1a9850") {
		t.Error("ground station markers missing")
	}
}

func TestUtilizationMapSVG(t *testing.T) {
	topo := miniTopo(t)
	loads := []LinkLoad{
		{From: 0, To: 1, Utilization: 0.9},
		{From: 1, To: 2, Utilization: 0.1},
		{From: 2, To: 3, Utilization: 0}, // omitted
	}
	svg := UtilizationMapSVG(topo, loads, 10, 0, 0)
	checkSVG(t, svg)
	// Two loaded links drawn (zero-load omitted): count rgb strokes.
	if got := strings.Count(svg, "rgb("); got != 2 {
		t.Errorf("utilization strokes = %d, want 2", got)
	}
}

func TestAntimeridianSplit(t *testing.T) {
	c := newMapCanvas(360, 180)
	a := geom.LLADeg(0, 179, 0)
	b := geom.LLADeg(0, -179, 0)
	c.segment(a, b, 1, "#000")
	svg := c.finish()
	// Split into two clipped segments instead of one 358-degree line.
	if got := strings.Count(svg, "<line"); got != 2 {
		t.Errorf("antimeridian segment drawn as %d lines, want 2", got)
	}
}

func TestPathMapSVGCustomSize(t *testing.T) {
	topo := miniTopo(t)
	path, _ := topo.Snapshot(0).Path(0, 1)
	if path == nil {
		t.Skip("disconnected")
	}
	svg := PathMapSVG(topo, path, 0, 400, 200)
	checkSVG(t, svg)
	if !strings.Contains(svg, `width="400"`) || !strings.Contains(svg, `height="200"`) {
		t.Error("custom dimensions not applied")
	}
}

func TestUtilizationMapSVGCustomSizeAndClamping(t *testing.T) {
	topo := miniTopo(t)
	// Utilization above 1 is clamped for rendering.
	svg := UtilizationMapSVG(topo, []LinkLoad{{From: 0, To: 1, Utilization: 2.5}}, 0, 500, 250)
	checkSVG(t, svg)
	if !strings.Contains(svg, `width="500"`) {
		t.Error("custom width not applied")
	}
	// Clamped to u=1: stroke width 0.8+3.2 = 4.00.
	if !strings.Contains(svg, `stroke-width="4.00"`) {
		t.Error("over-unity utilization not clamped")
	}
}

func TestGroundObserverConnectableCount(t *testing.T) {
	c := miniConstellation(t)
	// From the north pole a 53-degree shell has nothing connectable.
	svg, connectable := GroundObserverSVG(c, geom.LLADeg(89.9, 0, 0), SkyViewOptions{Time: 0})
	checkSVG(t, svg)
	if connectable != 0 {
		t.Errorf("pole sees %d connectable satellites", connectable)
	}
}

func TestCZMLOptionsDefaults(t *testing.T) {
	opt := CZMLOptions{}.withDefaults()
	if opt.Epoch == "" || opt.Duration != 5700 || opt.Step != 60 || opt.PixelSize != 3 {
		t.Errorf("defaults: %+v", opt)
	}
}

func TestTrajectoryMapWithoutTracks(t *testing.T) {
	c := miniConstellation(t)
	svg := TrajectoryMapSVG(c, TrajectoryMapOptions{})
	checkSVG(t, svg)
	if strings.Contains(svg, "#cc3333") {
		t.Error("orbit tracks drawn without OrbitTrack")
	}
}
