// Package viz generates the visual artifacts Hypatia pairs with its
// simulator: CZML documents (the time-dynamic scene format of Cesium, the
// 3D mapping library the paper uses) for satellite trajectories and
// end-end paths, and self-contained SVG renderings — equirectangular
// trajectory maps (Fig 11), ground-observer sky views (Fig 12), path
// snapshots (Figs 13, 16, 17), and link-utilization maps (Figs 14, 15).
package viz

import (
	"encoding/json"
	"fmt"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
)

// CZMLOptions controls CZML generation.
type CZMLOptions struct {
	Name string
	// Epoch is the ISO-8601 scene start; default "2020-01-01T00:00:00Z".
	Epoch string
	// Duration and Step are the sampled trajectory window, seconds.
	// Defaults: 5700 s (about one orbital period) sampled every 60 s.
	Duration float64
	Step     float64
	// PixelSize of satellite points; default 3 (as in public Starlink
	// visualizations on Cesium).
	PixelSize int
}

func (o CZMLOptions) withDefaults() CZMLOptions {
	if o.Epoch == "" {
		o.Epoch = "2020-01-01T00:00:00Z"
	}
	if o.Duration == 0 {
		o.Duration = 5700
	}
	if o.Step == 0 {
		o.Step = 60
	}
	if o.PixelSize == 0 {
		o.PixelSize = 3
	}
	return o
}

// czmlPacket is one element of a CZML document array.
type czmlPacket struct {
	ID      string        `json:"id"`
	Name    string        `json:"name,omitempty"`
	Version string        `json:"version,omitempty"`
	Clock   *czmlClock    `json:"clock,omitempty"`
	Pos     *czmlPosition `json:"position,omitempty"`
	Point   *czmlPoint    `json:"point,omitempty"`
	Line    *czmlPolyline `json:"polyline,omitempty"`
}

type czmlClock struct {
	Interval    string  `json:"interval"`
	CurrentTime string  `json:"currentTime"`
	Multiplier  float64 `json:"multiplier"`
}

type czmlPosition struct {
	Epoch     string    `json:"epoch,omitempty"`
	Cartesian []float64 `json:"cartesian"`
	// InterpolationDegree smooths motion between samples.
	InterpolationAlgorithm string `json:"interpolationAlgorithm,omitempty"`
	InterpolationDegree    int    `json:"interpolationDegree,omitempty"`
}

type czmlPoint struct {
	PixelSize int       `json:"pixelSize"`
	Color     czmlColor `json:"color"`
}

type czmlColor struct {
	RGBA [4]int `json:"rgba"`
}

type czmlPolyline struct {
	Positions czmlLinePositions `json:"positions"`
	Width     float64           `json:"width"`
	Material  czmlMaterial      `json:"material"`
}

type czmlLinePositions struct {
	Cartesian []float64 `json:"cartesian"`
}

type czmlMaterial struct {
	SolidColor struct {
		Color czmlColor `json:"color"`
	} `json:"solidColor"`
}

// ConstellationCZML renders the satellite trajectories of a constellation
// as a CZML document loadable in any Cesium viewer. Positions are sampled
// in the inertial frame and emitted as time-tagged ECEF cartesians.
func ConstellationCZML(c *constellation.Constellation, opt CZMLOptions) ([]byte, error) {
	opt = opt.withDefaults()
	if opt.Step <= 0 || opt.Duration <= 0 {
		return nil, fmt.Errorf("viz: non-positive CZML duration or step")
	}
	name := opt.Name
	if name == "" {
		name = c.Name
	}
	doc := []czmlPacket{{
		ID:      "document",
		Name:    name,
		Version: "1.0",
		Clock: &czmlClock{
			Interval:    fmt.Sprintf("%s/%s", opt.Epoch, opt.Epoch),
			CurrentTime: opt.Epoch,
			Multiplier:  10,
		},
	}}
	steps := int(opt.Duration/opt.Step) + 1
	for i := range c.Satellites {
		cart := make([]float64, 0, steps*4)
		for k := 0; k < steps; k++ {
			t := float64(k) * opt.Step
			p := c.PositionECEF(i, t)
			cart = append(cart, t, p.X, p.Y, p.Z)
		}
		doc = append(doc, czmlPacket{
			ID: c.Satellites[i].Name,
			Pos: &czmlPosition{
				Epoch:                  opt.Epoch,
				Cartesian:              cart,
				InterpolationAlgorithm: "LAGRANGE",
				InterpolationDegree:    5,
			},
			Point: &czmlPoint{
				PixelSize: opt.PixelSize,
				Color:     czmlColor{RGBA: [4]int{0, 0, 0, 255}},
			},
		})
	}
	return json.MarshalIndent(doc, "", " ")
}

// PathCZML renders a static end-end path (node ECEF positions at one
// instant) as a CZML polyline document.
func PathCZML(name string, positions []geom.Vec3) ([]byte, error) {
	if len(positions) < 2 {
		return nil, fmt.Errorf("viz: path needs at least 2 positions")
	}
	cart := make([]float64, 0, len(positions)*3)
	for _, p := range positions {
		cart = append(cart, p.X, p.Y, p.Z)
	}
	line := &czmlPolyline{Width: 2}
	line.Positions.Cartesian = cart
	line.Material.SolidColor.Color = czmlColor{RGBA: [4]int{0, 128, 255, 255}}
	doc := []czmlPacket{
		{ID: "document", Name: name, Version: "1.0"},
		{ID: name + "-path", Line: line},
	}
	return json.MarshalIndent(doc, "", " ")
}
