package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hypatia/internal/constellation"
	"hypatia/internal/geom"
	"hypatia/internal/routing"
)

// mapCanvas projects geodetic coordinates onto an equirectangular SVG
// canvas: longitude -180..180 maps to x 0..W, latitude 90..-90 to y 0..H.
type mapCanvas struct {
	w, h float64
	b    strings.Builder
}

func newMapCanvas(w, h int) *mapCanvas {
	c := &mapCanvas{w: float64(w), h: float64(h)}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="#f7f9fb"/>`+"\n", w, h)
	return c
}

func (c *mapCanvas) project(lla geom.LLA) (float64, float64) {
	x := (geom.Deg(lla.Lon) + 180) / 360 * c.w
	y := (90 - geom.Deg(lla.Lat)) / 180 * c.h
	return x, y
}

// grid draws graticule lines every 30 degrees.
func (c *mapCanvas) grid() {
	for lon := -180.0; lon <= 180; lon += 30 {
		x := (lon + 180) / 360 * c.w
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="0" x2="%.1f" y2="%.1f" stroke="#d8dee4" stroke-width="0.5"/>`+"\n", x, x, c.h)
	}
	for lat := -90.0; lat <= 90; lat += 30 {
		y := (90 - lat) / 180 * c.h
		fmt.Fprintf(&c.b, `<line x1="0" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d8dee4" stroke-width="0.5"/>`+"\n", y, c.w, y)
	}
}

func (c *mapCanvas) dot(lla geom.LLA, r float64, fill string) {
	x, y := c.project(lla)
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

// segment draws a line between two geodetic points, splitting it at the
// antimeridian to avoid lines shooting across the whole map.
func (c *mapCanvas) segment(a, b geom.LLA, width float64, stroke string) {
	x1, y1 := c.project(a)
	x2, y2 := c.project(b)
	if math.Abs(geom.Deg(a.Lon)-geom.Deg(b.Lon)) > 180 {
		// Crosses the antimeridian: draw two half segments clipped to the
		// edges instead of one wrap-around line.
		if x1 < x2 {
			fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="0" y2="%.1f" stroke="%s" stroke-width="%.2f"/>`+"\n", x1, y1, (y1+y2)/2, stroke, width)
			fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f"/>`+"\n", c.w, (y1+y2)/2, x2, y2, stroke, width)
		} else {
			fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f"/>`+"\n", x1, y1, c.w, (y1+y2)/2, stroke, width)
			fmt.Fprintf(&c.b, `<line x1="0" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f"/>`+"\n", (y1+y2)/2, x2, y2, stroke, width)
		}
		return
	}
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f"/>`+"\n", x1, y1, x2, y2, stroke, width)
}

func (c *mapCanvas) text(x, y float64, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" fill="#333">%s</text>`+"\n", x, y, s)
}

func (c *mapCanvas) finish() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

// satLLA converts a satellite's ECEF position at time t to geodetic.
func satLLA(c *constellation.Constellation, i int, t float64) geom.LLA {
	return geom.ECEFToLLA(c.PositionECEF(i, t))
}

// TrajectoryMapOptions controls TrajectoryMapSVG.
type TrajectoryMapOptions struct {
	Width, Height int     // default 1024 x 512
	Time          float64 // snapshot time, seconds
	// OrbitTrack draws each orbital plane's ground track (the red orbit
	// curves of Fig 11).
	OrbitTrack bool
}

func (o TrajectoryMapOptions) withDefaults() TrajectoryMapOptions {
	if o.Width == 0 {
		o.Width = 1024
	}
	if o.Height == 0 {
		o.Height = 512
	}
	return o
}

// TrajectoryMapSVG renders a constellation snapshot on an equirectangular
// world map: satellites as black dots, optionally with per-orbit ground
// tracks in red — the layout of Fig 11.
func TrajectoryMapSVG(c *constellation.Constellation, opt TrajectoryMapOptions) string {
	opt = opt.withDefaults()
	canvas := newMapCanvas(opt.Width, opt.Height)
	canvas.grid()
	if opt.OrbitTrack {
		// Approximate each orbit's instantaneous track by connecting the
		// current positions of its satellites in slot order.
		for si, sh := range c.Shells {
			for o := 0; o < sh.Orbits; o++ {
				var pts []geom.LLA
				for _, sat := range c.Satellites {
					if sat.ShellIndex == si && sat.Orbit == o {
						pts = append(pts, satLLA(c, sat.Index, opt.Time))
					}
				}
				for i := range pts {
					canvas.segment(pts[i], pts[(i+1)%len(pts)], 0.7, "#cc3333")
				}
			}
		}
	}
	for i := range c.Satellites {
		canvas.dot(satLLA(c, i, opt.Time), 1.6, "#111111")
	}
	canvas.text(8, 16, fmt.Sprintf("%s — %d satellites, t=%.0fs", c.Name, c.NumSatellites(), opt.Time))
	return canvas.finish()
}

// SkyViewOptions controls GroundObserverSVG.
type SkyViewOptions struct {
	Width, Height int     // default 900 x 450
	Time          float64 // snapshot time
}

func (o SkyViewOptions) withDefaults() SkyViewOptions {
	if o.Width == 0 {
		o.Width = 900
	}
	if o.Height == 0 {
		o.Height = 450
	}
	return o
}

// GroundObserverSVG renders the sky as seen from a ground location
// (Fig 12): azimuth 0..360 on the x-axis, elevation 0..90 on the y-axis,
// with the region below the constellation's minimum elevation shaded.
// Satellites above the horizon are drawn; those above the minimum
// elevation are highlighted. It returns the SVG and the number of
// connectable satellites.
func GroundObserverSVG(c *constellation.Constellation, obs geom.LLA, opt SkyViewOptions) (string, int) {
	opt = opt.withDefaults()
	w, h := float64(opt.Width), float64(opt.Height)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", opt.Width, opt.Height, opt.Width, opt.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", opt.Width, opt.Height)
	// Shade below the minimum elevation (bottom band).
	minElDeg := geom.Deg(c.MinElev)
	bandTop := h - minElDeg/90*h
	fmt.Fprintf(&b, `<rect x="0" y="%.1f" width="%.1f" height="%.1f" fill="#e8e8e8"/>`+"\n", bandTop, w, h-bandTop)
	fmt.Fprintf(&b, `<line x1="0" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888" stroke-dasharray="4 3"/>`+"\n", bandTop, w, bandTop)

	connectable := 0
	pos := c.PositionsECEF(opt.Time, nil)
	for i := range pos {
		la := geom.Look(obs, pos[i])
		if la.Elevation < 0 {
			continue
		}
		x := geom.Deg(la.Azimuth) / 360 * w
		y := h - geom.Deg(la.Elevation)/90*h
		color := "#999999"
		r := 3.0
		if la.Elevation >= c.MinElev {
			color = "#0066cc"
			r = 4.5
			connectable++
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
	fmt.Fprintf(&b, `<text x="8" y="16" font-family="sans-serif" font-size="12" fill="#333">%s sky view, t=%.0fs, %d connectable (min el %.0f°)</text>`+"\n",
		c.Name, opt.Time, connectable, minElDeg)
	b.WriteString("</svg>\n")
	return b.String(), connectable
}

// PathMapSVG renders an end-end path snapshot (Figs 13, 16, 17): all
// satellites as faint dots, the path nodes and links highlighted, and the
// endpoint ground stations marked.
func PathMapSVG(topo *routing.Topology, path []int, t float64, width, height int) string {
	if width == 0 {
		width = 1024
	}
	if height == 0 {
		height = 512
	}
	c := topo.Constellation
	canvas := newMapCanvas(width, height)
	canvas.grid()
	for i := range c.Satellites {
		canvas.dot(satLLA(c, i, t), 1.2, "#c9ced4")
	}
	nodeLLA := func(n int) geom.LLA {
		if topo.IsGS(n) {
			return topo.GroundStations[topo.GSIndex(n)].Position
		}
		return satLLA(c, n, t)
	}
	for i := 0; i+1 < len(path); i++ {
		canvas.segment(nodeLLA(path[i]), nodeLLA(path[i+1]), 2, "#0066cc")
	}
	for _, n := range path {
		if topo.IsGS(n) {
			canvas.dot(nodeLLA(n), 5, "#1a9850")
		} else {
			canvas.dot(nodeLLA(n), 3, "#111111")
		}
	}
	canvas.text(8, 16, fmt.Sprintf("path snapshot t=%.1fs, %d hops", t, len(path)-1))
	return canvas.finish()
}

// LinkLoad is a utilization sample for one directed link.
type LinkLoad struct {
	From, To    int
	Utilization float64 // 0..1
}

// UtilizationMapSVG renders link utilization (Figs 14, 15): loaded ISLs are
// drawn with width and color scaled by utilization — thick red for hot
// links, thin green for cold ones. Links with zero load are omitted, as in
// the paper.
func UtilizationMapSVG(topo *routing.Topology, loads []LinkLoad, t float64, width, height int) string {
	if width == 0 {
		width = 1024
	}
	if height == 0 {
		height = 512
	}
	c := topo.Constellation
	canvas := newMapCanvas(width, height)
	canvas.grid()
	for i := range c.Satellites {
		canvas.dot(satLLA(c, i, t), 1.2, "#c9ced4")
	}
	nodeLLA := func(n int) geom.LLA {
		if topo.IsGS(n) {
			return topo.GroundStations[topo.GSIndex(n)].Position
		}
		return satLLA(c, n, t)
	}
	// Draw colder links first so hot ones stay visible.
	sorted := make([]LinkLoad, len(loads))
	copy(sorted, loads)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Utilization < sorted[j].Utilization })
	for _, l := range sorted {
		if l.Utilization <= 0 {
			continue
		}
		u := math.Min(l.Utilization, 1)
		// Green (low) to red (high).
		r := int(255 * u)
		g := int(180 * (1 - u))
		canvas.segment(nodeLLA(l.From), nodeLLA(l.To), 0.8+3.2*u, fmt.Sprintf("rgb(%d,%d,40)", r, g))
	}
	canvas.text(8, 16, fmt.Sprintf("link utilization t=%.1fs (%d loaded links)", t, len(loads)))
	return canvas.finish()
}
