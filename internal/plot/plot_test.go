package plot

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	svg, err := Lines(Options{Title: "RTT", XLabel: "time (s)", YLabel: "ms"},
		Series{Name: "ping", X: []float64{0, 1, 2, 3}, Y: []float64{10, 12, 11, 13}},
		Series{Name: "computed", X: []float64{0, 1, 2, 3}, Y: []float64{9, 11, 10, 12}, Dashed: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polylines = %d", strings.Count(svg, "<polyline"))
	}
	for _, want := range []string{"RTT", "time (s)", "ms", "ping", "computed", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestLinesRejectsBadInput(t *testing.T) {
	if _, err := Lines(Options{}); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Lines(Options{}, Series{X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Lines(Options{}, Series{X: []float64{math.NaN()}, Y: []float64{math.NaN()}}); err == nil {
		t.Error("all-NaN series accepted")
	}
}

func TestLinesBreaksAtNonFinite(t *testing.T) {
	// A NaN in the middle splits the curve into two polylines — used for
	// disconnection windows (the paper's St. Petersburg outage).
	svg, err := Lines(Options{},
		Series{X: []float64{0, 1, 2, 3, 4}, Y: []float64{1, 2, math.NaN(), 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2 (split at NaN)", strings.Count(svg, "<polyline"))
	}
}

func TestLinesClipsAboveYMax(t *testing.T) {
	svg, err := Lines(Options{YMax: 10},
		Series{X: []float64{0, 1, 2, 3, 4}, Y: []float64{5, 6, 1000, 6, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2 (split at clip)", strings.Count(svg, "<polyline"))
	}
}

func TestLinesDeterministic(t *testing.T) {
	s := Series{Name: "x", X: []float64{0, 1, 2}, Y: []float64{3, 1, 2}}
	a, _ := Lines(Options{Title: "t"}, s)
	b, _ := Lines(Options{Title: "t"}, s)
	if a != b {
		t.Error("same input produced different SVG")
	}
}

func TestCDF(t *testing.T) {
	svg, err := CDF(Options{Title: "CDF", XLabel: "ms"},
		Series{Name: "Kuiper", X: []float64{3, 1, 2, 5, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "ECDF") {
		t.Error("default Y label missing")
	}
	if strings.Count(svg, "<polyline") != 1 {
		t.Error("CDF curve missing")
	}
}

func TestCDFRejectsEmpty(t *testing.T) {
	if _, err := CDF(Options{}, Series{Name: "empty"}); err == nil {
		t.Error("empty CDF accepted")
	}
}

func TestSortFloats(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, r.Intn(100))
		for i := range xs {
			xs[i] = r.Float64()
		}
		sortFloats(xs)
		for i := 1; i < len(xs); i++ {
			if xs[i-1] > xs[i] {
				t.Fatalf("unsorted at %d", i)
			}
		}
	}
}

func TestTickFormatting(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		25_000:    "25k",
		250:       "250",
		2.5:       "2.5",
		0:         "0",
		0.0001:    "1.0e-04",
	}
	for v, want := range cases {
		if got := tick(v); got != want {
			t.Errorf("tick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestEscapesLabels(t *testing.T) {
	svg, err := Lines(Options{Title: `a<b&"c"`},
		Series{X: []float64{0, 1}, Y: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b`) {
		t.Error("unescaped < in output")
	}
	if !strings.Contains(svg, "a&lt;b&amp;") {
		t.Error("escaped title missing")
	}
}
