// Package plot renders simple, self-contained SVG charts — the stand-in
// for the gnuplot step of the original Hypatia's pipeline. It supports the
// two chart shapes the paper's figures use: time-series line charts
// (RTT/cwnd/throughput over time, Figs 3-5, 10, 18-19) and empirical CDFs
// (Figs 6-9). Charts are deterministic: the same data produces the same
// bytes.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Color  string // CSS color; defaults applied per series index
	Dashed bool
}

// defaultColors cycles through distinguishable hues.
var defaultColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
}

// Options configures a chart.
type Options struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int // default 720 x 420
	// YMax optionally clips the y-axis (e.g. to keep one RTT spike from
	// flattening the rest of the series). 0 = auto.
	YMax float64
	// XMax optionally extends/clips the x-axis. 0 = auto.
	XMax float64
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 720
	}
	if o.Height == 0 {
		o.Height = 420
	}
	return o
}

// chart carries layout state while rendering.
type chart struct {
	opt                    Options
	x0, y0, plotW, plotH   float64
	xMin, xMax, yMin, yMax float64
	b                      strings.Builder
}

// Lines renders a line chart of the given series.
func Lines(opt Options, series ...Series) (string, error) {
	opt = opt.withDefaults()
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	c := &chart{opt: opt}
	if err := c.computeBounds(series); err != nil {
		return "", err
	}
	c.begin()
	c.axes()
	for i, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColors[i%len(defaultColors)]
		}
		c.polyline(s, color)
	}
	c.legend(series)
	c.end()
	return c.b.String(), nil
}

// CDF renders per-series empirical CDFs of the given samples (each series'
// Y values are ignored; X holds the sample).
func CDF(opt Options, series ...Series) (string, error) {
	converted := make([]Series, len(series))
	for i, s := range series {
		xs := append([]float64(nil), s.X...)
		if len(xs) == 0 {
			return "", fmt.Errorf("plot: empty CDF series %q", s.Name)
		}
		sortFloats(xs)
		ys := make([]float64, len(xs))
		for j := range xs {
			ys[j] = float64(j+1) / float64(len(xs))
		}
		converted[i] = Series{Name: s.Name, X: xs, Y: ys, Color: s.Color, Dashed: s.Dashed}
	}
	if opt.YLabel == "" {
		opt.YLabel = "ECDF"
	}
	opt.YMax = 1
	return Lines(opt, converted...)
}

func sortFloats(xs []float64) {
	// Insertion sort is plenty for chart-sized data and keeps the package
	// dependency-free beyond fmt/math/strings.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func (c *chart) computeBounds(series []Series) error {
	c.xMin, c.xMax = math.Inf(1), math.Inf(-1)
	c.yMin, c.yMax = 0, math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			c.xMin = math.Min(c.xMin, x)
			c.xMax = math.Max(c.xMax, x)
			c.yMin = math.Min(c.yMin, y)
			c.yMax = math.Max(c.yMax, y)
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: no finite points")
	}
	if c.opt.YMax > 0 {
		c.yMax = c.opt.YMax
	}
	if c.opt.XMax > 0 {
		c.xMax = c.opt.XMax
	}
	//lint:ignore timeunits exact equality detects the fully degenerate axis range
	if c.xMax == c.xMin {
		c.xMax = c.xMin + 1
	}
	//lint:ignore timeunits exact equality detects the fully degenerate axis range
	if c.yMax == c.yMin {
		c.yMax = c.yMin + 1
	}
	return nil
}

func (c *chart) begin() {
	w, h := c.opt.Width, c.opt.Height
	c.x0, c.y0 = 62, 28 // plot origin (top-left of plot area)
	c.plotW = float64(w) - c.x0 - 16
	c.plotH = float64(h) - c.y0 - 46
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", w, h)
	if c.opt.Title != "" {
		fmt.Fprintf(&c.b, `<text x="%d" y="18" font-family="sans-serif" font-size="13" fill="#222">%s</text>`+"\n", w/2-len(c.opt.Title)*3, esc(c.opt.Title))
	}
}

// px/py map data coordinates to pixels.
func (c *chart) px(x float64) float64 { return c.x0 + (x-c.xMin)/(c.xMax-c.xMin)*c.plotW }
func (c *chart) py(y float64) float64 { return c.y0 + c.plotH - (y-c.yMin)/(c.yMax-c.yMin)*c.plotH }

func (c *chart) axes() {
	// Frame.
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#444" stroke-width="1"/>`+"\n",
		c.x0, c.y0, c.plotW, c.plotH)
	// 5 ticks per axis.
	for i := 0; i <= 5; i++ {
		fx := c.xMin + (c.xMax-c.xMin)*float64(i)/5
		fy := c.yMin + (c.yMax-c.yMin)*float64(i)/5
		x := c.px(fx)
		y := c.py(fy)
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", x, c.y0, x, c.y0+c.plotH)
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", c.x0, y, c.x0+c.plotW, y)
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="#333" text-anchor="middle">%s</text>`+"\n",
			x, c.y0+c.plotH+14, tick(fx))
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="#333" text-anchor="end">%s</text>`+"\n",
			c.x0-5, y+3, tick(fy))
	}
	if c.opt.XLabel != "" {
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="#222" text-anchor="middle">%s</text>`+"\n",
			c.x0+c.plotW/2, c.y0+c.plotH+32, esc(c.opt.XLabel))
	}
	if c.opt.YLabel != "" {
		fmt.Fprintf(&c.b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" fill="#222" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			c.y0+c.plotH/2, c.y0+c.plotH/2, esc(c.opt.YLabel))
	}
}

// tick formats an axis value compactly.
func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	case av >= 0.01 || av == 0:
		return fmt.Sprintf("%.2g", v)
	default:
		return fmt.Sprintf("%.1e", v)
	}
}

// polyline draws one series, breaking the line at non-finite points and
// clipping to the plot area.
func (c *chart) polyline(s Series, color string) {
	dash := ""
	if s.Dashed {
		dash = ` stroke-dasharray="6 4"`
	}
	var pts []string
	flush := func() {
		if len(pts) > 1 {
			fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.4"%s/>`+"\n",
				strings.Join(pts, " "), color, dash)
		} else if len(pts) == 1 {
			fmt.Fprintf(&c.b, `<circle cx="%s" r="1.5" fill="%s"/>`+"\n",
				strings.Replace(pts[0], ",", `" cy="`, 1), color)
		}
		pts = pts[:0]
	}
	for i := range s.X {
		x, y := s.X[i], s.Y[i]
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			flush()
			continue
		}
		if y > c.yMax || x > c.xMax || x < c.xMin {
			flush()
			continue
		}
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", c.px(x), c.py(y)))
	}
	flush()
}

func (c *chart) legend(series []Series) {
	y := c.y0 + 14
	for i, s := range series {
		if s.Name == "" {
			continue
		}
		color := s.Color
		if color == "" {
			color = defaultColors[i%len(defaultColors)]
		}
		x := c.x0 + 10
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			x, y-4, x+18, y-4, color)
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="#222">%s</text>`+"\n",
			x+24, y, esc(s.Name))
		y += 14
	}
}

func (c *chart) end() { c.b.WriteString("</svg>\n") }

// esc escapes XML-special characters in labels.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
