// Package hypatia is a framework for simulating and visualizing the network
// behavior of low-Earth-orbit (LEO) satellite mega-constellations, a Go
// reimplementation of the system described in "Exploring the 'Internet from
// space' with Hypatia" (Kassing, Bhattacherjee, et al., ACM IMC 2020).
//
// The framework generates constellations from the orbital parameters in
// operator regulatory filings (Starlink, Kuiper, and Telesat ship as
// presets), connects them with "+Grid" laser inter-satellite links, attaches
// ground stations (the world's 100 most populous cities are built in),
// computes time-varying forwarding state at a configurable granularity, and
// runs packet-level simulations with TCP (NewReno and Vegas), UDP, and ping
// traffic whose per-packet propagation delays follow the satellites' orbital
// motion. A snapshot-analysis mode reproduces the paper's constellation-wide
// RTT and path-churn studies without packets, and a visualization module
// emits Cesium CZML and SVG renderings.
//
// Quick start:
//
//	run, err := hypatia.NewRun(hypatia.RunConfig{
//		Constellation:  hypatia.Kuiper(),
//		GroundStations: hypatia.Top100Cities(),
//		Duration:       hypatia.Seconds(200),
//	})
//	if err != nil { ... }
//	src, _ := run.GSIndexByName("Rio de Janeiro")
//	dst, _ := run.GSIndexByName("Saint Petersburg")
//	ping := hypatia.NewPinger(run.Net, run.Flows, src, dst, hypatia.PingConfig{})
//	ping.Start()
//	run.Execute()
//	// ping.Results() now holds 200k RTT measurements over the moving
//	// constellation.
//
// This root package is a facade: it re-exports the supported API surface of
// the internal packages. See DESIGN.md for the architecture and
// EXPERIMENTS.md for the paper-reproduction index.
package hypatia

import (
	"io"

	"hypatia/internal/analysis"
	"hypatia/internal/constellation"
	"hypatia/internal/core"
	"hypatia/internal/geom"
	"hypatia/internal/groundstation"
	"hypatia/internal/orbit"
	"hypatia/internal/routing"
	"hypatia/internal/sim"
	"hypatia/internal/tle"
	"hypatia/internal/trace"
	"hypatia/internal/transport"
	"hypatia/internal/viz"
)

// Geometry and orbital mechanics.
type (
	// Vec3 is a Cartesian vector in meters.
	Vec3 = geom.Vec3
	// LLA is a geodetic position (latitude/longitude in radians, altitude
	// in meters).
	LLA = geom.LLA
	// OrbitalElements is a classical Keplerian element set.
	OrbitalElements = orbit.Elements
	// TLE is a two-line element set.
	TLE = tle.TLE
)

// Constellation construction.
type (
	// Shell is one orbital shell (altitude, planes, phasing).
	Shell = constellation.Shell
	// ConstellationConfig describes a constellation to generate.
	ConstellationConfig = constellation.Config
	// Constellation is a generated satellite fleet with its ISL topology.
	Constellation = constellation.Constellation
	// GS is a ground station.
	GS = groundstation.GS
)

// The paper's Table 1 shells.
var (
	StarlinkS1 = constellation.StarlinkS1
	StarlinkS2 = constellation.StarlinkS2
	StarlinkS3 = constellation.StarlinkS3
	StarlinkS4 = constellation.StarlinkS4
	StarlinkS5 = constellation.StarlinkS5
	KuiperK1   = constellation.KuiperK1
	KuiperK2   = constellation.KuiperK2
	KuiperK3   = constellation.KuiperK3
	TelesatT1  = constellation.TelesatT1
	TelesatT2  = constellation.TelesatT2
)

// ISL interconnect modes.
const (
	ISLPlusGrid = constellation.ISLPlusGrid
	ISLNone     = constellation.ISLNone
)

// GEORing returns a ring of equally spaced geostationary satellites (the
// legacy-constellation regime the paper contrasts with LEO).
func GEORing(name string, n int) Shell { return constellation.GEORing(name, n) }

// Starlink returns the Starlink configuration (shell S1 by default).
func Starlink(shells ...Shell) ConstellationConfig { return constellation.Starlink(shells...) }

// Kuiper returns the Kuiper configuration (shell K1 by default).
func Kuiper(shells ...Shell) ConstellationConfig { return constellation.Kuiper(shells...) }

// Telesat returns the Telesat configuration (shell T1 by default).
func Telesat(shells ...Shell) ConstellationConfig { return constellation.Telesat(shells...) }

// GenerateConstellation builds the satellite fleet for a configuration.
func GenerateConstellation(cfg ConstellationConfig) (*Constellation, error) {
	return constellation.Generate(cfg)
}

// FromTLEConfig configures constellation construction from a TLE catalog.
type FromTLEConfig = constellation.FromTLEConfig

// ConstellationFromTLEs builds a constellation from parsed two-line element
// sets (e.g. a downloaded NORAD catalog of real satellites).
func ConstellationFromTLEs(tles []TLE, cfg FromTLEConfig) (*Constellation, error) {
	return constellation.FromTLEs(tles, cfg)
}

// Top100Cities returns the built-in ground-station dataset used throughout
// the paper's experiments.
func Top100Cities() []GS { return groundstation.Top100Cities() }

// GSByName finds a ground station by name in a dataset.
func GSByName(gss []GS, name string) (GS, error) { return groundstation.ByName(gss, name) }

// RelayGrid generates a grid of candidate bent-pipe ground relays covering
// the bounding box of two endpoints (Appendix A of the paper).
func RelayGrid(a, b LLA, rows, cols int, marginDeg float64, firstID int) ([]GS, error) {
	return groundstation.RelayGrid(a, b, rows, cols, marginDeg, firstID)
}

// LLADeg builds a geodetic position from degrees and meters.
func LLADeg(latDeg, lonDeg, altM float64) LLA { return geom.LLADeg(latDeg, lonDeg, altM) }

// Routing and topology.
type (
	// Topology binds a constellation to ground stations.
	Topology = routing.Topology
	// TopologySnapshot is the network graph at one instant.
	TopologySnapshot = routing.Snapshot
	// ForwardingTable is the network-wide routing state at one instant.
	ForwardingTable = routing.ForwardingTable
	// GSLPolicy selects ground-station attachment behavior.
	GSLPolicy = routing.GSLPolicy
)

// GSL attachment policies.
const (
	GSLFree        = routing.GSLFree
	GSLNearestOnly = routing.GSLNearestOnly
)

// NewTopology binds a constellation to ground stations.
func NewTopology(c *Constellation, gss []GS, policy GSLPolicy) (*Topology, error) {
	return routing.NewTopology(c, gss, policy)
}

// Simulation time and network configuration.
type (
	// Time is simulation time in nanoseconds.
	Time = sim.Time
	// NetworkConfig sets link rates and queue sizes.
	NetworkConfig = sim.Config
	// Network is the packet-forwarding fabric.
	Network = sim.Network
	// Packet is a simulated packet.
	Packet = sim.Packet
)

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Seconds converts float64 seconds to simulation Time.
func Seconds(s float64) Time { return sim.Seconds(s) }

// DefaultNetworkConfig returns the paper's default link and queue settings
// (10 Mbit/s uniform rates, 100-packet queues).
func DefaultNetworkConfig() NetworkConfig { return sim.DefaultConfig() }

// Orchestration.
type (
	// RunConfig describes a packet-level simulation run.
	RunConfig = core.RunConfig
	// Run is a wired simulation ready for transports.
	Run = core.Run
)

// NewRun builds a simulation run: constellation, topology, network, and
// scheduled forwarding-state updates.
func NewRun(cfg RunConfig) (*Run, error) { return core.NewRun(cfg) }

// RoutingStrategy computes forwarding state from a snapshot; plug one into
// RunConfig.Strategy to replace shortest-path routing.
type RoutingStrategy = core.Strategy

// ShortestPath is the default routing strategy.
func ShortestPath(s *TopologySnapshot, active []int, workers int) *ForwardingTable {
	return core.ShortestPath(s, active, workers)
}

// AvoidNodes wraps a strategy to exclude the given nodes from all paths
// (failed satellites, maintenance windows).
func AvoidNodes(inner RoutingStrategy, nodes ...int) RoutingStrategy {
	return core.AvoidNodes(inner, nodes...)
}

// Transports.
type (
	// TCPConfig parameterizes a TCP flow.
	TCPConfig = transport.TCPConfig
	// TCPFlow is a TCP connection between two ground stations.
	TCPFlow = transport.TCPFlow
	// UDPConfig parameterizes a constant-bit-rate UDP flow.
	UDPConfig = transport.UDPConfig
	// UDPFlow is a paced UDP sender with a counting sink.
	UDPFlow = transport.UDPFlow
	// PingConfig parameterizes a ping stream.
	PingConfig = transport.PingConfig
	// Pinger is a periodic echo measurement stream.
	Pinger = transport.Pinger
	// FlowIDs hands out unique flow identifiers.
	FlowIDs = transport.FlowIDs
	// CCAlgorithm selects TCP congestion control.
	CCAlgorithm = transport.CCAlgorithm
)

// Congestion-control algorithms.
const (
	NewReno = transport.NewReno
	Vegas   = transport.Vegas
	BBR     = transport.BBR
)

// NewTCPFlow creates a TCP flow between two ground stations.
func NewTCPFlow(n *Network, ids *FlowIDs, srcGS, dstGS int, cfg TCPConfig) *TCPFlow {
	return transport.NewTCPFlow(n, ids, srcGS, dstGS, cfg)
}

// NewUDPFlow creates a paced UDP flow between two ground stations.
func NewUDPFlow(n *Network, ids *FlowIDs, srcGS, dstGS int, cfg UDPConfig) *UDPFlow {
	return transport.NewUDPFlow(n, ids, srcGS, dstGS, cfg)
}

// NewPinger creates a ping measurement stream between two ground stations.
func NewPinger(n *Network, ids *FlowIDs, srcGS, dstGS int, cfg PingConfig) *Pinger {
	return transport.NewPinger(n, ids, srcGS, dstGS, cfg)
}

// Analysis.
type (
	// AnalysisConfig controls snapshot-based pair analysis.
	AnalysisConfig = analysis.Config
	// PairStats aggregates a pair's RTT and path behavior over time.
	PairStats = analysis.PairStats
	// ECDF is an empirical distribution over a sample.
	ECDF = analysis.ECDF
)

// AnalyzePairs steps a topology through time and aggregates per-pair RTT
// and path-churn statistics (the paper's Figs 6-8 pipeline).
func AnalyzePairs(topo *Topology, cfg AnalysisConfig) ([]PairStats, error) {
	return analysis.AnalyzePairs(topo, cfg)
}

// CoverageStats summarizes a location's connectivity over a scan window.
type CoverageStats = analysis.CoverageStats

// Coverage scans how many satellites each ground station can connect to
// over time, reporting covered fractions and outage windows (the
// quantitative form of the paper's Fig 12 ground-observer view).
func Coverage(c *Constellation, gss []GS, duration, step float64) ([]CoverageStats, error) {
	return analysis.Coverage(c, gss, duration, step)
}

// ISLDynamics describes one inter-satellite link's instantaneous length,
// range rate, and Doppler factor.
type ISLDynamics = analysis.ISLDynamics

// ISLDynamicsAt computes the kinematics of every ISL at time t (inputs for
// the Doppler modeling the paper lists as future work).
func ISLDynamicsAt(c *Constellation, t float64) []ISLDynamics {
	return analysis.ISLDynamicsAt(c, t)
}

// ReorderingStats quantifies receiver-observed packet reordering.
type ReorderingStats = transport.ReorderingStats

// AnalyzeReordering computes reordering statistics from an arrival-order
// log (e.g. TCPFlow.ArrivalLog with TCPConfig.TrackReordering set).
func AnalyzeReordering(arrivals []int64) ReorderingStats {
	return transport.AnalyzeReordering(arrivals)
}

// NewECDF builds an empirical CDF from a sample.
func NewECDF(vals []float64) *ECDF { return analysis.NewECDF(vals) }

// Visualization.
type (
	// CZMLOptions controls Cesium CZML generation.
	CZMLOptions = viz.CZMLOptions
	// TrajectoryMapOptions controls the trajectory SVG rendering.
	TrajectoryMapOptions = viz.TrajectoryMapOptions
	// SkyViewOptions controls the ground-observer SVG rendering.
	SkyViewOptions = viz.SkyViewOptions
	// LinkLoad is a per-link utilization sample for rendering.
	LinkLoad = viz.LinkLoad
)

// ConstellationCZML renders satellite trajectories as a Cesium CZML
// document.
func ConstellationCZML(c *Constellation, opt CZMLOptions) ([]byte, error) {
	return viz.ConstellationCZML(c, opt)
}

// TrajectoryMapSVG renders a constellation snapshot on a world map.
func TrajectoryMapSVG(c *Constellation, opt TrajectoryMapOptions) string {
	return viz.TrajectoryMapSVG(c, opt)
}

// GroundObserverSVG renders the sky as seen from a ground location,
// returning the SVG and the number of connectable satellites.
func GroundObserverSVG(c *Constellation, obs LLA, opt SkyViewOptions) (string, int) {
	return viz.GroundObserverSVG(c, obs, opt)
}

// PathMapSVG renders an end-end path snapshot on a world map.
func PathMapSVG(topo *Topology, path []int, t float64, width, height int) string {
	return viz.PathMapSVG(topo, path, t, width, height)
}

// TLEs and tracing.

// ParseTLE parses a two- or three-line element set.
func ParseTLE(text string) (TLE, error) { return tle.Parse(text) }

// ParseTLECatalog parses a concatenation of TLE entries.
func ParseTLECatalog(text string) ([]TLE, error) { return tle.ParseCatalog(text) }

// TLEFromElements generates a WGS72 TLE from Keplerian elements — the
// paper's utility for describing not-yet-launched satellites.
func TLEFromElements(name string, satNum, epochYear int, epochDay float64, e OrbitalElements) (TLE, error) {
	return tle.FromElements(name, satNum, epochYear, epochDay, e)
}

// Tracer writes per-packet TX/RX/DROP event traces (see internal/trace for
// filters).
type Tracer = trace.Tracer

// NewTracer creates a packet tracer writing to w; attach it to a run's
// network with Tracer.Attach.
func NewTracer(w io.Writer) *Tracer { return trace.New(w, nil) }
