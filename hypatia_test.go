package hypatia

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the documented quick-start path end to end
// through the public facade only.
func TestFacadeQuickstart(t *testing.T) {
	// Resolve the pair's ground-station indices up front: the run captures
	// ActiveDstGS at construction time (the forwarding-state pipeline
	// precomputes tables for future instants from it).
	cities := Top100Cities()
	var src, dst int
	for i, g := range cities {
		switch g.Name {
		case "Rio de Janeiro":
			src = i
		case "Saint Petersburg":
			dst = i
		}
	}
	run, err := NewRun(RunConfig{
		Constellation:  Kuiper(),
		GroundStations: cities,
		Duration:       Seconds(2),
		ActiveDstGS:    []int{src, dst},
	})
	if err != nil {
		t.Fatal(err)
	}
	ping := NewPinger(run.Net, run.Flows, src, dst, PingConfig{Interval: 10 * Millisecond})
	ping.Start()
	run.Execute()
	replied := 0
	for _, r := range ping.Results() {
		if r.Replied {
			replied++
		}
	}
	if replied == 0 {
		t.Error("no ping replies through the facade quickstart")
	}
}

func TestFacadeConstellationAndViz(t *testing.T) {
	c, err := GenerateConstellation(Telesat())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSatellites() != TelesatT1.Sats() {
		t.Errorf("satellites = %d", c.NumSatellites())
	}
	svg := TrajectoryMapSVG(c, TrajectoryMapOptions{})
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("trajectory SVG malformed")
	}
	czml, err := ConstellationCZML(c, CZMLOptions{Duration: 120, Step: 60})
	if err != nil || len(czml) == 0 {
		t.Errorf("CZML: %v, %d bytes", err, len(czml))
	}
	obs := LLADeg(59.93, 30.36, 0)
	if svg, _ := GroundObserverSVG(c, obs, SkyViewOptions{}); !strings.HasPrefix(svg, "<svg") {
		t.Error("sky view SVG malformed")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	c, err := GenerateConstellation(Kuiper())
	if err != nil {
		t.Fatal(err)
	}
	gss := Top100Cities()[:10]
	topo, err := NewTopology(c, gss, GSLFree)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := AnalyzePairs(topo, AnalysisConfig{Duration: 4, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 45 {
		t.Errorf("pairs = %d", len(stats))
	}
	var ratios []float64
	for _, s := range stats {
		if s.Connected() {
			ratios = append(ratios, s.MaxOverGeodesic())
		}
	}
	if e := NewECDF(ratios); e.N() == 0 || e.Median() < 1 {
		t.Errorf("ECDF median = %v over %d pairs", e.Median(), e.N())
	}
}

func TestFacadeBentPipeRelays(t *testing.T) {
	paris := LLADeg(48.86, 2.35, 0)
	moscow := LLADeg(55.76, 37.62, 0)
	relays, err := RelayGrid(paris, moscow, 3, 4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(relays) != 12 {
		t.Errorf("relays = %d", len(relays))
	}
	if _, err := GSByName(Top100Cities(), "Paris"); err != nil {
		t.Error(err)
	}
}

func TestFacadeTransportsAndTools(t *testing.T) {
	run, err := NewRun(RunConfig{
		Constellation:  Kuiper(),
		GroundStations: Top100Cities(),
		Duration:       Seconds(3),
		ActiveDstGS:    []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tcp := NewTCPFlow(run.Net, run.Flows, 0, 1, TCPConfig{TrackReordering: true})
	tcp.Start()
	udp := NewUDPFlow(run.Net, run.Flows, 1, 0, UDPConfig{RateBps: 1e6})
	udp.Start()
	run.Execute()
	if tcp.AckedSegments == 0 {
		t.Error("facade TCP moved nothing")
	}
	if udp.ReceivedPayloadBytes == 0 {
		t.Error("facade UDP moved nothing")
	}
	st := AnalyzeReordering(tcp.ArrivalLog)
	if st.Total == 0 {
		t.Error("no arrivals tracked")
	}
}

func TestFacadeCoverageAndDynamics(t *testing.T) {
	c, err := GenerateConstellation(Telesat())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Coverage(c, Top100Cities()[:3], 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("coverage stats = %d", len(stats))
	}
	dyn := ISLDynamicsAt(c, 0)
	if len(dyn) != len(c.ISLs) {
		t.Fatalf("dynamics = %d", len(dyn))
	}
}

func TestFacadeGEOAndNetworkConfig(t *testing.T) {
	sh := GEORing("G", 4)
	if sh.Sats() != 4 {
		t.Errorf("GEO ring sats = %d", sh.Sats())
	}
	cfg := DefaultNetworkConfig()
	if cfg.GSLRateBps != 10e6 || cfg.QueuePackets != 100 {
		t.Errorf("network defaults: %+v", cfg)
	}
}

func TestFacadeTLEAndTracer(t *testing.T) {
	c, err := GenerateConstellation(ConstellationConfig{
		Name: "Mini",
		Shells: []Shell{{
			Name: "M1", AltitudeKm: 630, Orbits: 4, SatsPerOrbit: 4, IncDeg: 53,
		}},
		MinElevDeg: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	tleText, err := TLEFromElements("SAT-1", 1, 2024, 1.5, c.Satellites[0].Elements)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTLE(tleText.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.SatelliteNum != 1 {
		t.Errorf("sat num = %d", parsed.SatelliteNum)
	}
	cat, err := c.TLECatalog(2024, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := ParseTLECatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Errorf("catalog entries = %d", len(entries))
	}

	// Tracer through the facade.
	run, err := NewRun(RunConfig{
		Constellation:  Kuiper(),
		GroundStations: Top100Cities(),
		Duration:       Seconds(1),
		ActiveDstGS:    []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr := NewTracer(&buf)
	tr.Attach(run.Net)
	ping := NewPinger(run.Net, run.Flows, 0, 1, PingConfig{Interval: 100 * Millisecond})
	ping.Start()
	run.Execute()
	if err := tr.Detach(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TX t=") {
		t.Error("trace empty")
	}
}

func TestFacadeFromTLEs(t *testing.T) {
	c, err := GenerateConstellation(Telesat())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := c.TLECatalog(2024, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTLECatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ConstellationFromTLEs(parsed, FromTLEConfig{
		Name: "Telesat-from-TLEs", MinElevDeg: 10,
		ISLMode: ISLPlusGrid, PlaneSize: 13, J2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumSatellites() != 351 {
		t.Errorf("satellites = %d", rebuilt.NumSatellites())
	}
}
