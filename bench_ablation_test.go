// Ablation benchmarks for the design choices DESIGN.md calls out: the
// routing-computation strategy, GSL attachment policy, forwarding
// granularity, and multi-path diversity. Package-level micro-ablations
// (Floyd-Warshall vs Dijkstra, two-body vs J2, worker counts) live next to
// their packages under internal/.
package hypatia

import (
	"testing"

	"hypatia/internal/experiments"
)

func BenchmarkAblationMultipathDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, rep, err := experiments.AblationMultipath(4, benchScale().Pairs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			for _, st := range stats {
				if len(st.KthStretch) > 1 {
					b.ReportMetric(st.KthStretch[1], st.Name+"_2nd_path_stretch")
				}
			}
		}
	}
}

func BenchmarkAblationGSLPolicy(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		stats, rep, err := experiments.AblationGSLPolicy(scale.Pairs, scale.Duration, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			for _, st := range stats {
				b.ReportMetric(st.MedianRTT*1e3, st.Policy+"_median_rtt_ms")
			}
		}
	}
}
