package hypatia

import (
	"fmt"
	"strings"
	"testing"
)

// tcpScenario builds and executes a fixed end-to-end scenario — Kuiper shell,
// top-100 cities, one TCP flow with a packet tracer attached — and returns a
// digest of everything observable: the event count, the flow's transfer and
// loss-recovery statistics, and the raw trace bytes.
func tcpScenario(t *testing.T) (processed uint64, flowStats string, traceBytes string) {
	t.Helper()
	run, err := NewRun(RunConfig{
		Constellation:  Kuiper(),
		GroundStations: Top100Cities(),
		Duration:       Seconds(2),
		ActiveDstGS:    []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr := NewTracer(&buf)
	tr.Attach(run.Net)
	flow := NewTCPFlow(run.Net, run.Flows, 0, 1, TCPConfig{})
	flow.Start()
	run.Execute()
	if err := tr.Detach(); err != nil {
		t.Fatal(err)
	}
	stats := fmt.Sprintf("acked=%d acks=%d retx=%d timeouts=%d fastretx=%d cwndlog=%d",
		flow.AckedSegments, flow.AcksReceived, flow.RetxCount,
		flow.TimeoutCount, flow.FastRetxCount, len(flow.CwndLog.Samples))
	return run.Sim.Processed(), stats, buf.String()
}

// TestDeterministicReplay is the determinism regression test: the same
// scenario executed twice within one process must be bit-for-bit identical —
// same event count, same flow statistics, and a byte-identical packet trace.
// Any nondeterminism (map-order iteration feeding the scheduler, wall-clock
// reads, unseeded randomness) shows up here as a diff.
func TestDeterministicReplay(t *testing.T) {
	p1, s1, tr1 := tcpScenario(t)
	p2, s2, tr2 := tcpScenario(t)
	if p1 != p2 {
		t.Errorf("processed events differ across replays: %d vs %d", p1, p2)
	}
	if s1 != s2 {
		t.Errorf("flow stats differ across replays:\n  run 1: %s\n  run 2: %s", s1, s2)
	}
	if p1 == 0 || len(tr1) == 0 {
		t.Fatalf("scenario produced no activity (processed=%d, trace=%d bytes)", p1, len(tr1))
	}
	if tr1 != tr2 {
		i := 0
		for i < len(tr1) && i < len(tr2) && tr1[i] == tr2[i] {
			i++
		}
		lo := max(0, i-80)
		t.Errorf("packet traces diverge at byte %d:\n  run 1: ...%q\n  run 2: ...%q",
			i, tr1[lo:min(len(tr1), i+80)], tr2[lo:min(len(tr2), i+80)])
	}
}
