package hypatia_test

import (
	"fmt"

	"hypatia"
)

// Example_generate builds the Kuiper K1 constellation and inspects its
// structure.
func Example_generate() {
	c, err := hypatia.GenerateConstellation(hypatia.Kuiper())
	if err != nil {
		panic(err)
	}
	fmt.Println("satellites:", c.NumSatellites())
	fmt.Println("ISLs:", len(c.ISLs))
	// Output:
	// satellites: 1156
	// ISLs: 2312
}

// Example_snapshotRouting computes an instantaneous shortest path between
// two cities without running any packets.
func Example_snapshotRouting() {
	c, err := hypatia.GenerateConstellation(hypatia.Kuiper())
	if err != nil {
		panic(err)
	}
	gss := hypatia.Top100Cities()
	topo, err := hypatia.NewTopology(c, gss, hypatia.GSLFree)
	if err != nil {
		panic(err)
	}
	paris, _ := hypatia.GSByName(gss, "Paris")
	moscow, _ := hypatia.GSByName(gss, "Moscow")
	rtt := topo.Snapshot(0).RTT(paris.ID, moscow.ID)
	fmt.Printf("Paris-Moscow RTT at t=0: %.0f ms\n", rtt*1e3)
	// Output:
	// Paris-Moscow RTT at t=0: 23 ms
}

// Example_table1 checks the paper's Table 1 totals.
func Example_table1() {
	total := 0
	for _, sh := range []hypatia.Shell{
		hypatia.StarlinkS1, hypatia.StarlinkS2, hypatia.StarlinkS3,
		hypatia.StarlinkS4, hypatia.StarlinkS5,
	} {
		total += sh.Sats()
	}
	fmt.Println("Starlink phase 1:", total)
	fmt.Println("Kuiper:", hypatia.KuiperK1.Sats()+hypatia.KuiperK2.Sats()+hypatia.KuiperK3.Sats())
	fmt.Println("Telesat:", hypatia.TelesatT1.Sats()+hypatia.TelesatT2.Sats())
	// Output:
	// Starlink phase 1: 4409
	// Kuiper: 3236
	// Telesat: 1671
}
