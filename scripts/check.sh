#!/usr/bin/env bash
# Tier-1.5 verification gate: formatting, vet, project lints, and the race-
# enabled test suite with runtime invariant checks compiled in. Run from the
# repository root:
#
#   ./scripts/check.sh
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -s -l . | grep -v '^cmd/hypatialint/testdata/' || true)
if [[ -n "$unformatted" ]]; then
    echo "files need gofmt -s -w:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== build (both variants) =="
go build ./...
go build -tags hypatia_checks ./...

echo "== build hypatialint =="
go build -o bin/hypatialint ./cmd/hypatialint

echo "== hypatialint =="
./bin/hypatialint ./...

echo "== hypatialint -json (machine-readable output stays well-formed) =="
./bin/hypatialint -json ./... > /dev/null

echo "== hypatialint self-check (fixtures must fail) =="
if ./bin/hypatialint ./cmd/hypatialint/testdata/src/... >/dev/null; then
    echo "hypatialint reported the fixture tree clean; the analyzer is broken" >&2
    exit 1
fi

echo "== hypatialint self-check (confinement escape paths) =="
# The seeded escape bugs in the confine fixture must fail the lint with the
# full allocation-to-escape path rendered, in text and -json output alike.
# (The lint exits 1 on the findings, so capture before grepping.)
conftext=$(./bin/hypatialint ./cmd/hypatialint/testdata/src/confine 2>/dev/null || true)
if ! grep -q 'confinement.*escape path:' <<<"$conftext"; then
    echo "no confinement finding with an escape path in text output" >&2
    exit 1
fi
confjson=$(./bin/hypatialint -json ./cmd/hypatialint/testdata/src/confine 2>/dev/null || true)
if ! grep -q 'escape path:' <<<"$confjson"; then
    echo "no confinement finding with an escape path in -json output" >&2
    exit 1
fi

echo "== hypatialint self-check (handlesafety invalidation paths) =="
# The seeded handle bugs in the handles fixture must fail the lint with the
# full acquire → invalidate → use path rendered, in text and -json alike.
handtext=$(./bin/hypatialint ./cmd/hypatialint/testdata/src/internal/sim/handles 2>/dev/null || true)
if ! grep -q 'handlesafety.*→ invalidated by.*→ used here' <<<"$handtext"; then
    echo "no handlesafety finding with an acquire → invalidate → use path in text output" >&2
    exit 1
fi
handjson=$(./bin/hypatialint -json ./cmd/hypatialint/testdata/src/internal/sim/handles 2>/dev/null || true)
if ! grep -q '→ invalidated by' <<<"$handjson"; then
    echo "no handlesafety finding with its invalidation path in -json output" >&2
    exit 1
fi

echo "== hypatialint self-check (allocsafety origin chains) =="
# The seeded allocation bugs in the allocsafety fixture must fail the lint
# with the originating site and the full call chain rendered — including a
# multi-hop chain through summarized callees — in text and -json alike.
alloctext=$(./bin/hypatialint ./cmd/hypatialint/testdata/src/allocsafety 2>/dev/null || true)
if ! grep -q 'allocsafety.*//hypatia:noalloc.*allocates at.*call chain:' <<<"$alloctext"; then
    echo "no allocsafety finding with an allocation site and call chain in text output" >&2
    exit 1
fi
if ! grep -q 'call chain: allocsafety.entry → allocsafety.helper → allocsafety.mid' <<<"$alloctext"; then
    echo "no allocsafety finding with a multi-hop origin chain in text output" >&2
    exit 1
fi
allocjson=$(./bin/hypatialint -json ./cmd/hypatialint/testdata/src/allocsafety 2>/dev/null || true)
if ! grep -q 'call chain:' <<<"$allocjson"; then
    echo "no allocsafety finding with its origin chain in -json output" >&2
    exit 1
fi

echo "== alloc guards (default build, GOMAXPROCS=1) =="
# The runtime half of //hypatia:noalloc: testing.AllocsPerRun pins the
# steady-state hot paths to their budgets. Run in the default build — the
# hypatia_checks build boxes assertion arguments and runs from-scratch
# oracles, so the guards skip there — at GOMAXPROCS=1 so background
# scheduling cannot smear allocations across the measured runs.
GOMAXPROCS=1 go test -count=1 -run 'TestAllocGuard' \
    ./internal/graph/ ./internal/routing/ ./internal/sim/ ./internal/core/

echo "== incremental oracle exercised (comparison count must be nonzero) =="
# The differential layer is only as good as the oracle actually running:
# these tests fail unless the hypatia_checks oracle re-derived and compared
# a nonzero number of forwarding columns against the incremental engine.
go test -tags hypatia_checks -count=1 \
    -run 'TestIncrementalOracleExercised|TestDifferentialIncrementalSequences' \
    ./internal/routing/ ./internal/core/

echo "== go test -race -tags hypatia_checks (shuffled) =="
go test -race -tags hypatia_checks -shuffle=on ./...

echo "ALL CHECKS PASSED"
