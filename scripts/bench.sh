#!/usr/bin/env bash
# Forwarding-state benchmark harness: runs the routing and core benchmarks
# with -benchmem at both GOMAXPROCS=1 and a wide setting (nproc, floored at
# 4) — the single-core run isolates per-op cost, the wide run measures the
# pipeline under real concurrency — and emits machine-readable results to
# BENCH_routing.json in the repository root, enforcing the checked-in
# allocation budgets (alloc_budgets below) on the way, then times
# hypatialint cold (empty fact cache) vs warm (all-hit fact cache) into
# BENCH_lint.json.
# Run from anywhere:
#
#   ./scripts/bench.sh [benchtime]
#
# benchtime defaults to 5x (per-benchmark iterations); pass e.g. 2s for
# time-based runs on faster machines.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-5x}"
out="BENCH_routing.json"
nproc_val="$(nproc)"
# The wide run is GOMAXPROCS=nproc, floored at 4 so the capture always
# exercises GOMAXPROCS>1; on hosts with fewer hardware threads than that
# it measures scheduler interleaving rather than a parallel speedup — the
# JSON records nproc alongside, so the two cases stay distinguishable.
wide=$(( nproc_val > 4 ? nproc_val : 4 ))
raw1="$(mktemp)"
rawN="$(mktemp)"
trap 'rm -f "$raw1" "$rawN"' EXIT

# alloc_budgets pins steady-state allocs/op for the benchmarks whose hot
# paths carry the machine-checked //hypatia:noalloc contract (the static
# side is hypatialint's allocsafety check; the per-function runtime side is
# the AllocGuard tests). Budgets leave headroom over the measured steady
# state — SnapshotInto and the pooled sweep measure 0–1, the incremental
# engine ~10–20 per 8-step op of amortized arena residue — so only a real
# regression (losing a reuse path, a new per-op allocation) trips them.
# Every budgeted benchmark gets "alloc_budget"/"alloc_budget_status" fields
# in the JSON, and any "over" status fails the run.
alloc_budgets="BenchmarkSnapshotInto=8 BenchmarkForwardingTableFull=16 BenchmarkForwardingTablePooled=8 BenchmarkForwardingStateIncremental=100"

# budget_check fails when any benchmark came out over its pinned budget —
# the bench harness' counterpart of a failing allocsafety finding.
budget_check() { # $1 = json file
    if grep -q '"alloc_budget_status": "over"' "$1"; then
        echo "bench.sh: allocation budget exceeded (allocs_per_op over alloc_budget):" >&2
        grep '"alloc_budget_status": "over"' "$1" >&2
        return 1
    fi
}

# bench_once runs the full bench suite at one GOMAXPROCS setting.
bench_once() { # $1 = gomaxprocs, $2 = raw output file
    GOMAXPROCS="$1" go test -run '^$' \
        -bench 'Snapshot$|SnapshotInto|ForwardingTableFull|ForwardingTablePooled' \
        -benchtime "$benchtime" -benchmem -count=1 ./internal/routing/ | tee -a "$2"
    GOMAXPROCS="$1" go test -run '^$' \
        -bench 'ForwardingStateSerial|ForwardingStatePipelined|ForwardingStateIncremental' \
        -benchtime "$benchtime" -benchmem -count=1 ./internal/core/ | tee -a "$2"
    GOMAXPROCS="$1" go test -run '^$' \
        -bench 'SimSerial$|SimSharded' \
        -benchtime "$benchtime" -benchmem -count=1 ./internal/core/ | tee -a "$2"
}

# run_json renders one raw bench log as a JSON run object. Metrics are
# parsed by scanning each line for value/unit field pairs (ns/op, B/op,
# allocs/op, events/s) rather than by column position, so benchmarks that
# b.ReportMetric extra columns (events/s) do not shift the layout. Every
# speedup ratio that comes out below 1.0 gets a sibling "<name>_note"
# recording the captured nproc — a sharded engine on a single-vCPU host is
# expected to be at or below 1x, and the JSON must say so rather than look
# like a regression.
run_json() { # $1 = raw file, $2 = gomaxprocs used
    awk -v gmp="$2" -v nproc="$nproc_val" -v budgets="$alloc_budgets" '
BEGIN {
    nb = split(budgets, bl, " ")
    for (i = 1; i <= nb; i++) {
        split(bl[i], kv, "=")
        budget[kv[1]] = kv[2] + 0
    }
}
function emit_ratio(key, num, den,    r) {
    if (num > 0 && den > 0) {
        r = num / den
        ratios[nr++] = sprintf("      \"%s\": %.3f", key, r)
        if (r < 1.0)
            ratios[nr++] = sprintf("      \"%s_note\": \"ratio below 1.0 measured with nproc=%d; see README for expected scaling on narrow hosts\"", key, nproc)
    } else {
        ratios[nr++] = sprintf("      \"%s\": null", key)
    }
}
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    order[n++] = name
    for (i = 3; i < NF; i++) {
        if      ($(i+1) == "ns/op")     ns[name]     = $i
        else if ($(i+1) == "B/op")      bytes[name]  = $i
        else if ($(i+1) == "allocs/op") allocs[name] = $i
        else if ($(i+1) == "events/s")  eps[name]    = $i
    }
}
END {
    printf "    {\n"
    printf "      \"gomaxprocs\": %d,\n", gmp
    printf "      \"cpu\": \"%s\",\n", cpu
    printf "      \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "        \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (name in eps)    printf ", \"events_per_second\": %s", eps[name]
        if (name in bytes)  printf ", \"bytes_per_op\": %s", bytes[name]
        if (name in allocs) printf ", \"allocs_per_op\": %s", allocs[name]
        if (name in budget && name in allocs) {
            printf ", \"alloc_budget\": %d", budget[name]
            printf ", \"alloc_budget_status\": \"%s\"", (allocs[name] + 0 > budget[name]) ? "over" : "ok"
        }
        printf "}%s\n", (i < n - 1) ? "," : ""
    }
    printf "      },\n"
    nr = 0
    emit_ratio("serial_over_incremental", ns["BenchmarkForwardingStateSerial"], ns["BenchmarkForwardingStateIncremental"])
    emit_ratio("serial_over_pipelined",   ns["BenchmarkForwardingStateSerial"], ns["BenchmarkForwardingStatePipelined"])
    emit_ratio("sharded_over_serial",     ns["BenchmarkSimSerial"],             ns["BenchmarkSimSharded/shards=4"])
    for (i = 0; i < nr; i++)
        printf "%s%s\n", ratios[i], (i < nr - 1) ? "," : ""
    printf "    }"
}' "$1"
}

# --selftest: render a canned bench log through run_json and assert the
# JSON schema (benchmark entries, ratio fields, alloc budget statuses)
# comes out right — including that budget_check rejects an over-budget
# run — then exit without running any benchmarks. Wired into go test so
# schema regressions in the awk above fail the suite, not the next bench
# run.
if [[ "${1:-}" == "--selftest" ]]; then
    self="$(mktemp)"
    # The canned log mixes plain -benchmem lines with ReportMetric lines
    # (events/s inserted before B/op), makes sharded_over_serial come out
    # below 1.0 so the nproc annotation path is exercised, keeps the
    # incremental engine inside its allocation budget ("ok"), and regresses
    # SnapshotInto to its pre-arena-warmup 854 allocs/op so the "over"
    # status and the budget_check failure path are exercised too.
    cat > "$self" <<'EOF'
cpu: Selftest CPU @ 2.10GHz
BenchmarkSnapshotInto-4                 5    1500000 ns/op  56000 B/op  854 allocs/op
BenchmarkForwardingStateSerial-4        5  160000000 ns/op  1000 B/op  10 allocs/op
BenchmarkForwardingStatePipelined-4     5   80000000 ns/op  2000 B/op  20 allocs/op
BenchmarkForwardingStateIncremental-4   5   20000000 ns/op   500 B/op   5 allocs/op
BenchmarkSimSerial-4                    5   80000000 ns/op  170000 events/s  3000 B/op  30 allocs/op
BenchmarkSimSharded/shards=2-4          5  160000000 ns/op   85000 events/s  4000 B/op  40 allocs/op
BenchmarkSimSharded/shards=4-4          5  100000000 ns/op  136000 events/s  4000 B/op  40 allocs/op
EOF
    json="$(run_json "$self" 4)"
    rm -f "$self"
    for want in \
        '"gomaxprocs": 4' \
        '"cpu": "Selftest CPU @ 2.10GHz"' \
        '"BenchmarkSnapshotInto": {"ns_per_op": 1500000, "bytes_per_op": 56000, "allocs_per_op": 854, "alloc_budget": 8, "alloc_budget_status": "over"}' \
        '"BenchmarkForwardingStateSerial": {"ns_per_op": 160000000, "bytes_per_op": 1000, "allocs_per_op": 10}' \
        '"BenchmarkForwardingStateIncremental": {"ns_per_op": 20000000, "bytes_per_op": 500, "allocs_per_op": 5, "alloc_budget": 100, "alloc_budget_status": "ok"}' \
        '"BenchmarkSimSerial": {"ns_per_op": 80000000, "events_per_second": 170000, "bytes_per_op": 3000, "allocs_per_op": 30}' \
        '"BenchmarkSimSharded/shards=4": {"ns_per_op": 100000000, "events_per_second": 136000, "bytes_per_op": 4000, "allocs_per_op": 40}' \
        '"serial_over_incremental": 8.000,' \
        '"serial_over_pipelined": 2.000,' \
        '"sharded_over_serial": 0.800,' \
        '"sharded_over_serial_note"'; do
        if ! grep -qF "$want" <<<"$json"; then
            echo "bench.sh --selftest: missing $want in run JSON:" >&2
            printf '%s\n' "$json" >&2
            exit 1
        fi
    done
    # The canned SnapshotInto regression must fail budget_check, and a
    # budget-clean JSON must pass it.
    selfjson="$(mktemp)"
    printf '%s\n' "$json" > "$selfjson"
    if budget_check "$selfjson" 2>/dev/null; then
        echo "bench.sh --selftest: budget_check passed an over-budget benchmark" >&2
        rm -f "$selfjson"
        exit 1
    fi
    grep -v '"alloc_budget_status": "over"' "$selfjson" > "$selfjson.ok"
    if ! budget_check "$selfjson.ok"; then
        echo "bench.sh --selftest: budget_check failed a budget-clean JSON" >&2
        rm -f "$selfjson" "$selfjson.ok"
        exit 1
    fi
    rm -f "$selfjson" "$selfjson.ok"
    echo "bench.sh --selftest: ok"
    exit 0
fi

echo "== go test -bench (GOMAXPROCS=1; benchtime=$benchtime) =="
bench_once 1 "$raw1"
echo "== go test -bench (GOMAXPROCS=$wide; benchtime=$benchtime) =="
bench_once "$wide" "$rawN"

{
    printf '{\n'
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "nproc": %d,\n' "$nproc_val"
    printf '  "runs": [\n'
    run_json "$raw1" 1
    printf ',\n'
    run_json "$rawN" "$wide"
    printf '\n  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
budget_check "$out"

echo "== hypatialint cold vs warm (fact cache) =="
lintout="BENCH_lint.json"
lintcache="$(mktemp -d)"
trap 'rm -f "$raw1" "$rawN"; rm -rf "$lintcache"' EXIT
go build -o bin/hypatialint ./cmd/hypatialint

# now_ms prints a millisecond wall-clock timestamp.
now_ms() { date +%s%3N; }

t0=$(now_ms)
./bin/hypatialint -cache "$lintcache" ./...
t1=$(now_ms)
cold_ms=$((t1 - t0))

# Best of three warm runs, so one scheduling hiccup does not skew the ratio.
warm_ms=""
for _ in 1 2 3; do
    t0=$(now_ms)
    ./bin/hypatialint -cache "$lintcache" ./...
    t1=$(now_ms)
    d=$((t1 - t0))
    if [[ -z "$warm_ms" || "$d" -lt "$warm_ms" ]]; then warm_ms=$d; fi
done

awk -v goversion="$(go version | awk '{print $3}')" -v nproc="$nproc_val" \
    -v cold="$cold_ms" -v warm="$warm_ms" 'BEGIN {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"gomaxprocs\": %d,\n", nproc
    printf "  \"lint_cold_ms\": %d,\n", cold
    printf "  \"lint_warm_ms\": %d,\n", warm
    if (warm > 0)
        printf "  \"cold_over_warm\": %.3f\n", cold / warm
    else
        printf "  \"cold_over_warm\": null\n"
    printf "}\n"
}' > "$lintout"

echo "wrote $lintout"
cat "$lintout"
