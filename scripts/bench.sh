#!/usr/bin/env bash
# Forwarding-state benchmark harness: runs the routing and core benchmarks
# with -benchmem and emits machine-readable results to BENCH_routing.json in
# the repository root, then times hypatialint cold (empty fact cache) vs
# warm (all-hit fact cache) into BENCH_lint.json. Run from anywhere:
#
#   ./scripts/bench.sh [benchtime]
#
# benchtime defaults to 5x (per-benchmark iterations); pass e.g. 2s for
# time-based runs on faster machines.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-5x}"
out="BENCH_routing.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (routing + core forwarding state; benchtime=$benchtime) =="
go test -run '^$' \
    -bench 'Snapshot$|SnapshotInto|ForwardingTableFull|ForwardingTablePooled' \
    -benchtime "$benchtime" -benchmem -count=1 ./internal/routing/ | tee -a "$raw"
go test -run '^$' \
    -bench 'ForwardingStateSerial|ForwardingStatePipelined' \
    -benchtime "$benchtime" -benchmem -count=1 ./internal/core/ | tee -a "$raw"

awk -v goversion="$(go version | awk '{print $3}')" -v nproc="$(nproc)" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    if ($6 == "B/op")      bytes[name]  = $5
    if ($8 == "allocs/op") allocs[name] = $7
    order[n++] = name
}
END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"gomaxprocs\": %d,\n", nproc
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (name in bytes)  printf ", \"bytes_per_op\": %s", bytes[name]
        if (name in allocs) printf ", \"allocs_per_op\": %s", allocs[name]
        printf "}%s\n", (i < n - 1) ? "," : ""
    }
    printf "  },\n"
    serial = ns["BenchmarkForwardingStateSerial"]
    piped  = ns["BenchmarkForwardingStatePipelined"]
    if (serial > 0 && piped > 0)
        printf "  \"serial_over_pipelined\": %.3f\n", serial / piped
    else
        printf "  \"serial_over_pipelined\": null\n"
    printf "}\n"
}' "$raw" > "$out"

echo "wrote $out"

echo "== hypatialint cold vs warm (fact cache) =="
lintout="BENCH_lint.json"
lintcache="$(mktemp -d)"
trap 'rm -f "$raw"; rm -rf "$lintcache"' EXIT
go build -o bin/hypatialint ./cmd/hypatialint

# now_ms prints a millisecond wall-clock timestamp.
now_ms() { date +%s%3N; }

t0=$(now_ms)
./bin/hypatialint -cache "$lintcache" ./...
t1=$(now_ms)
cold_ms=$((t1 - t0))

# Best of three warm runs, so one scheduling hiccup does not skew the ratio.
warm_ms=""
for _ in 1 2 3; do
    t0=$(now_ms)
    ./bin/hypatialint -cache "$lintcache" ./...
    t1=$(now_ms)
    d=$((t1 - t0))
    if [[ -z "$warm_ms" || "$d" -lt "$warm_ms" ]]; then warm_ms=$d; fi
done

awk -v goversion="$(go version | awk '{print $3}')" -v nproc="$(nproc)" \
    -v cold="$cold_ms" -v warm="$warm_ms" 'BEGIN {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"gomaxprocs\": %d,\n", nproc
    printf "  \"lint_cold_ms\": %d,\n", cold
    printf "  \"lint_warm_ms\": %d,\n", warm
    if (warm > 0)
        printf "  \"cold_over_warm\": %.3f\n", cold / warm
    else
        printf "  \"cold_over_warm\": null\n"
    printf "}\n"
}' > "$lintout"

echo "wrote $lintout"
cat "$lintout"
