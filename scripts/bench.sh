#!/usr/bin/env bash
# Forwarding-state benchmark harness: runs the routing and core benchmarks
# with -benchmem at both GOMAXPROCS=1 and a wide setting (nproc, floored at
# 4) — the single-core run isolates per-op cost, the wide run measures the
# pipeline under real concurrency — and emits machine-readable results to
# BENCH_routing.json in the repository root, then times hypatialint cold
# (empty fact cache) vs warm (all-hit fact cache) into BENCH_lint.json.
# Run from anywhere:
#
#   ./scripts/bench.sh [benchtime]
#
# benchtime defaults to 5x (per-benchmark iterations); pass e.g. 2s for
# time-based runs on faster machines.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-5x}"
out="BENCH_routing.json"
nproc_val="$(nproc)"
# The wide run is GOMAXPROCS=nproc, floored at 4 so the capture always
# exercises GOMAXPROCS>1; on hosts with fewer hardware threads than that
# it measures scheduler interleaving rather than a parallel speedup — the
# JSON records nproc alongside, so the two cases stay distinguishable.
wide=$(( nproc_val > 4 ? nproc_val : 4 ))
raw1="$(mktemp)"
rawN="$(mktemp)"
trap 'rm -f "$raw1" "$rawN"' EXIT

# bench_once runs the full bench suite at one GOMAXPROCS setting.
bench_once() { # $1 = gomaxprocs, $2 = raw output file
    GOMAXPROCS="$1" go test -run '^$' \
        -bench 'Snapshot$|SnapshotInto|ForwardingTableFull|ForwardingTablePooled' \
        -benchtime "$benchtime" -benchmem -count=1 ./internal/routing/ | tee -a "$2"
    GOMAXPROCS="$1" go test -run '^$' \
        -bench 'ForwardingStateSerial|ForwardingStatePipelined|ForwardingStateIncremental' \
        -benchtime "$benchtime" -benchmem -count=1 ./internal/core/ | tee -a "$2"
}

# run_json renders one raw bench log as a JSON run object.
run_json() { # $1 = raw file, $2 = gomaxprocs used
    awk -v gmp="$2" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    if ($6 == "B/op")      bytes[name]  = $5
    if ($8 == "allocs/op") allocs[name] = $7
    order[n++] = name
}
END {
    printf "    {\n"
    printf "      \"gomaxprocs\": %d,\n", gmp
    printf "      \"cpu\": \"%s\",\n", cpu
    printf "      \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "        \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (name in bytes)  printf ", \"bytes_per_op\": %s", bytes[name]
        if (name in allocs) printf ", \"allocs_per_op\": %s", allocs[name]
        printf "}%s\n", (i < n - 1) ? "," : ""
    }
    printf "      },\n"
    serial = ns["BenchmarkForwardingStateSerial"]
    piped  = ns["BenchmarkForwardingStatePipelined"]
    inc    = ns["BenchmarkForwardingStateIncremental"]
    if (serial > 0 && inc > 0)
        printf "      \"serial_over_incremental\": %.3f,\n", serial / inc
    else
        printf "      \"serial_over_incremental\": null,\n"
    if (serial > 0 && piped > 0)
        printf "      \"serial_over_pipelined\": %.3f\n", serial / piped
    else
        printf "      \"serial_over_pipelined\": null\n"
    printf "    }"
}' "$1"
}

# --selftest: render a canned bench log through run_json and assert the
# JSON schema (benchmark entries, both ratio fields) comes out right, then
# exit without running any benchmarks. Wired into go test so schema
# regressions in the awk above fail the suite, not the next bench run.
if [[ "${1:-}" == "--selftest" ]]; then
    self="$(mktemp)"
    cat > "$self" <<'EOF'
cpu: Selftest CPU @ 2.10GHz
BenchmarkForwardingStateSerial-4        5  160000000 ns/op  1000 B/op  10 allocs/op
BenchmarkForwardingStatePipelined-4     5   80000000 ns/op  2000 B/op  20 allocs/op
BenchmarkForwardingStateIncremental-4   5   20000000 ns/op   500 B/op   5 allocs/op
EOF
    json="$(run_json "$self" 4)"
    rm -f "$self"
    for want in \
        '"gomaxprocs": 4' \
        '"cpu": "Selftest CPU @ 2.10GHz"' \
        '"BenchmarkForwardingStateSerial": {"ns_per_op": 160000000, "bytes_per_op": 1000, "allocs_per_op": 10}' \
        '"BenchmarkForwardingStateIncremental": {"ns_per_op": 20000000, "bytes_per_op": 500, "allocs_per_op": 5}' \
        '"serial_over_incremental": 8.000,' \
        '"serial_over_pipelined": 2.000'; do
        if ! grep -qF "$want" <<<"$json"; then
            echo "bench.sh --selftest: missing $want in run JSON:" >&2
            printf '%s\n' "$json" >&2
            exit 1
        fi
    done
    echo "bench.sh --selftest: ok"
    exit 0
fi

echo "== go test -bench (GOMAXPROCS=1; benchtime=$benchtime) =="
bench_once 1 "$raw1"
echo "== go test -bench (GOMAXPROCS=$wide; benchtime=$benchtime) =="
bench_once "$wide" "$rawN"

{
    printf '{\n'
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "nproc": %d,\n' "$nproc_val"
    printf '  "runs": [\n'
    run_json "$raw1" 1
    printf ',\n'
    run_json "$rawN" "$wide"
    printf '\n  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out"

echo "== hypatialint cold vs warm (fact cache) =="
lintout="BENCH_lint.json"
lintcache="$(mktemp -d)"
trap 'rm -f "$raw1" "$rawN"; rm -rf "$lintcache"' EXIT
go build -o bin/hypatialint ./cmd/hypatialint

# now_ms prints a millisecond wall-clock timestamp.
now_ms() { date +%s%3N; }

t0=$(now_ms)
./bin/hypatialint -cache "$lintcache" ./...
t1=$(now_ms)
cold_ms=$((t1 - t0))

# Best of three warm runs, so one scheduling hiccup does not skew the ratio.
warm_ms=""
for _ in 1 2 3; do
    t0=$(now_ms)
    ./bin/hypatialint -cache "$lintcache" ./...
    t1=$(now_ms)
    d=$((t1 - t0))
    if [[ -z "$warm_ms" || "$d" -lt "$warm_ms" ]]; then warm_ms=$d; fi
done

awk -v goversion="$(go version | awk '{print $3}')" -v nproc="$nproc_val" \
    -v cold="$cold_ms" -v warm="$warm_ms" 'BEGIN {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"gomaxprocs\": %d,\n", nproc
    printf "  \"lint_cold_ms\": %d,\n", cold
    printf "  \"lint_warm_ms\": %d,\n", warm
    if (warm > 0)
        printf "  \"cold_over_warm\": %.3f\n", cold / warm
    else
        printf "  \"cold_over_warm\": null\n"
    printf "}\n"
}' > "$lintout"

echo "wrote $lintout"
cat "$lintout"
