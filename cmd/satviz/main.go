// Command satviz renders constellation visualizations: equirectangular
// trajectory maps (SVG), Cesium CZML trajectory documents, and
// ground-observer sky views.
//
// Usage:
//
//	satviz -constellation starlink|kuiper|telesat [-t 100] \
//	       [-observer "Saint Petersburg"] [-out out]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hypatia/internal/constellation"
	"hypatia/internal/groundstation"
	"hypatia/internal/viz"
)

func main() {
	var (
		name     = flag.String("constellation", "kuiper", "starlink, kuiper, or telesat")
		t        = flag.Float64("t", 0, "snapshot time, seconds since epoch")
		observer = flag.String("observer", "", "city name for a ground-observer sky view")
		outDir   = flag.String("out", "out", "output directory")
	)
	flag.Parse()

	cfgs := map[string]constellation.Config{
		"starlink": constellation.Starlink(),
		"kuiper":   constellation.Kuiper(),
		"telesat":  constellation.Telesat(),
	}
	cfg, ok := cfgs[*name]
	if !ok {
		fatal(fmt.Errorf("unknown constellation %q", *name))
	}
	c, err := constellation.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	svg := viz.TrajectoryMapSVG(c, viz.TrajectoryMapOptions{Time: *t, OrbitTrack: true})
	p := filepath.Join(*outDir, *name+"-trajectories.svg")
	if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", p)

	czml, err := viz.ConstellationCZML(c, viz.CZMLOptions{})
	if err != nil {
		fatal(err)
	}
	p = filepath.Join(*outDir, *name+".czml")
	if err := os.WriteFile(p, czml, 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", p)

	if *observer != "" {
		gs, err := groundstation.ByName(groundstation.Top100Cities(), *observer)
		if err != nil {
			fatal(err)
		}
		sky, n := viz.GroundObserverSVG(c, gs.Position, viz.SkyViewOptions{Time: *t})
		p = filepath.Join(*outDir, *name+"-skyview.svg")
		if err := os.WriteFile(p, []byte(sky), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d connectable satellites from %s at t=%.0fs)\n", p, n, gs.Name, *t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satviz:", err)
	os.Exit(1)
}
