package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypatia/internal/experiments"
	"hypatia/internal/sim"
	"hypatia/internal/transport"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Rio de Janeiro to Saint Petersburg": "rio-de-janeiro-to-saint-petersburg",
		"ABC-123":                            "abc-123",
		"":                                   "",
		"x y/z":                              "x-y-z",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePathStudyTSV(t *testing.T) {
	dir := t.TempDir()
	study := &experiments.PathStudy{
		Name: "test", Step: 0.1,
		ComputedRTT: []float64{0.020, 0.021, 0.022},
		Pings: []transport.PingResult{
			{Seq: 0, SentAt: 0, RTT: 20 * sim.Millisecond, Replied: true},
			{Seq: 1, SentAt: 150 * sim.Millisecond, Replied: false},
			{Seq: 2, SentAt: 10 * sim.Second, RTT: 22 * sim.Millisecond, Replied: true},
		},
	}
	path := filepath.Join(dir, "out.tsv")
	if err := writePathStudyTSV(path, study); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 { // header + 3 pings
		t.Fatalf("lines = %d: %q", len(lines), raw)
	}
	if !strings.HasPrefix(lines[0], "#") {
		t.Error("missing header")
	}
	// Unreplied ping logs RTT 0 (the paper's convention).
	if !strings.Contains(lines[2], "\t0.000000") {
		t.Errorf("unreplied ping line = %q", lines[2])
	}
	// Out-of-range send times clamp to the last computed sample.
	if !strings.Contains(lines[3], "0.022") {
		t.Errorf("clamped line = %q", lines[3])
	}
}

func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	if err := writeArtifact(dir, "a.svg", "<svg/>"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "a.svg"))
	if err != nil || string(raw) != "<svg/>" {
		t.Errorf("artifact contents: %q, %v", raw, err)
	}
	if err := writeArtifact(filepath.Join(dir, "missing-subdir"), "b.svg", "x"); err == nil {
		t.Error("write into missing directory succeeded")
	}
}
