// Command hypatia runs the paper-reproduction experiments and writes their
// reports and visual artifacts.
//
// Usage:
//
//	hypatia -experiment table1|fig2|fig3|fig5|fig6|fig9|fig10|fig11|fig12|fig13|bentpipe|all \
//	        [-scale quick|paper] [-out DIR]
//
// Reports print to stdout; SVG and CZML artifacts are written under -out
// (default "out").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hypatia/internal/experiments"
	"hypatia/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (table1, fig2, fig3, fig5, fig6, fig9, fig10, fig11, fig12, fig13, bentpipe, all)")
		scaleName  = flag.String("scale", "quick", "experiment horizon: quick or paper (200 s)")
		outDir     = flag.String("out", "out", "directory for SVG/CZML artifacts")
	)
	flag.Parse()

	scale := experiments.QuickScale()
	pingInterval := 20 * sim.Millisecond
	if *scaleName == "paper" {
		scale = experiments.PaperScale()
		pingInterval = sim.Millisecond
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	run("table1", func() error {
		rep, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	})

	run("fig2", func() error {
		cfg := experiments.ScalabilityConfig{VirtualSeconds: 1, Pairs: scale.Pairs}
		if *scaleName == "paper" {
			cfg.VirtualSeconds = 2
			cfg.Pairs = 0
		}
		_, rep, err := experiments.Fig2Scalability(cfg)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	})

	run("fig3", func() error {
		studies, rep, err := experiments.Fig3and4PathStudies(scale, pingInterval)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		for _, s := range studies {
			path := filepath.Join(*outDir, "fig3-"+slug(s.Name)+".tsv")
			if err := writePathStudyTSV(path, s); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
			chart, err := experiments.Fig3Chart(s)
			if err != nil {
				return err
			}
			if err := writeArtifact(*outDir, "fig3-"+slug(s.Name)+".svg", chart); err != nil {
				return err
			}
			chart, err = experiments.Fig4Chart(s)
			if err != nil {
				return err
			}
			if err := writeArtifact(*outDir, "fig4-"+slug(s.Name)+".svg", chart); err != nil {
				return err
			}
		}
		return nil
	})

	run("fig5", func() error {
		out, rep, err := experiments.Fig5LossVsDelayCC(scale)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		charts, err := experiments.Fig5Charts(out)
		if err != nil {
			return err
		}
		for name, svg := range charts {
			if err := writeArtifact(*outDir, name+".svg", svg); err != nil {
				return err
			}
		}
		return nil
	})

	run("fig6", func() error {
		step := 1.0
		if *scaleName == "paper" {
			step = 0.1
		}
		all, rep, err := experiments.Fig6to8Analysis(scale, step)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		charts, err := experiments.Fig6to8Charts(all)
		if err != nil {
			return err
		}
		for name, svg := range charts {
			if err := writeArtifact(*outDir, name+".svg", svg); err != nil {
				return err
			}
		}
		return nil
	})

	run("fig9", func() error {
		_, rep, err := experiments.Fig9TimeStepGranularity(scale)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	})

	run("fig10", func() error {
		res, rep, err := experiments.Fig10to15CrossTraffic(experiments.CrossTrafficConfig{Scale: scale})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		chart, err := experiments.Fig10Chart(res)
		if err != nil {
			return err
		}
		if err := writeArtifact(*outDir, "fig10-unused-bandwidth.svg", chart); err != nil {
			return err
		}
		for name, svg := range map[string]string{
			"fig14-early.svg": res.Fig14SVGEarly,
			"fig14-late.svg":  res.Fig14SVGLate,
			"fig15.svg":       res.Fig15SVG,
		} {
			if svg == "" {
				continue
			}
			p := filepath.Join(*outDir, name)
			if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", p)
		}
		return nil
	})

	run("fig11", func() error {
		svgs, czmls, rep, err := experiments.Fig11Trajectories()
		if err != nil {
			return err
		}
		fmt.Println(rep)
		for name, svg := range svgs {
			p := filepath.Join(*outDir, "fig11-"+slug(name)+".svg")
			if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", p)
		}
		for name, czml := range czmls {
			p := filepath.Join(*outDir, "fig11-"+slug(name)+".czml")
			if err := os.WriteFile(p, czml, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", p)
		}
		return nil
	})

	run("fig12", func() error {
		res, rep, err := experiments.Fig12GroundObserver(scale.Duration * 10)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		for name, svg := range map[string]string{
			"fig12-connected.svg":    res.ConnectedSVG,
			"fig12-disconnected.svg": res.DisconnectedSVG,
		} {
			if svg == "" {
				continue
			}
			p := filepath.Join(*outDir, name)
			if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", p)
		}
		return nil
	})

	run("fig13", func() error {
		res, rep, err := experiments.Fig13PathEvolution(scale, 1)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		for name, svg := range map[string]string{
			"fig13-max-rtt.svg": res.MaxSVG,
			"fig13-min-rtt.svg": res.MinSVG,
		} {
			p := filepath.Join(*outDir, name)
			if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", p)
		}
		return nil
	})

	run("ablation", func() error {
		_, rep, err := experiments.AblationMultipath(4, scale.Pairs, 0)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		_, rep, err = experiments.AblationGSLPolicy(scale.Pairs, scale.Duration, 5)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	})

	run("coverage", func() error {
		rep, err := experiments.CoverageReport(scale.Duration * 10)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	})

	run("bentpipe", func() error {
		res, rep, err := experiments.AppendixBentPipe(experiments.BentPipeConfig{Scale: scale})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		chart, err := experiments.Fig18Chart(res)
		if err != nil {
			return err
		}
		if err := writeArtifact(*outDir, "fig18-rtt.svg", chart); err != nil {
			return err
		}
		chart, err = experiments.Fig19Chart(res)
		if err != nil {
			return err
		}
		if err := writeArtifact(*outDir, "fig19-cwnd.svg", chart); err != nil {
			return err
		}
		for name, svg := range map[string]string{
			"fig16-isl-path.svg":  res.ISLPathSVG,
			"fig16-bent-path.svg": res.BentPathSVG,
		} {
			if svg == "" {
				continue
			}
			p := filepath.Join(*outDir, name)
			if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", p)
		}
		return nil
	})
}

// writePathStudyTSV writes a Fig 3 study's series as TSV: time, computed
// RTT, ping RTT.
func writePathStudyTSV(path string, s *experiments.PathStudy) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// The close error matters on a written file: buffered data is flushed
	// here, and a full disk would otherwise pass silently.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, err := fmt.Fprintln(f, "# t_s\tcomputed_rtt_s\tping_rtt_s"); err != nil {
		return err
	}
	for _, p := range s.Pings {
		idx := int(p.SentAt.Seconds() / s.Step)
		if idx >= len(s.ComputedRTT) {
			idx = len(s.ComputedRTT) - 1
		}
		rtt := 0.0
		if p.Replied {
			rtt = p.RTT.Seconds()
		}
		if _, err := fmt.Fprintf(f, "%.3f\t%.6f\t%.6f\n",
			p.SentAt.Seconds(), s.ComputedRTT[idx], rtt); err != nil {
			return err
		}
	}
	return nil
}

// writeArtifact writes an SVG/text artifact under dir and logs it.
func writeArtifact(dir, name, content string) error {
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", p)
	return nil
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hypatia:", err)
	os.Exit(1)
}
