// Command satgen generates a TLE catalog for a constellation from the
// Keplerian parameters in operator filings — the standalone utility the
// paper describes for describing not-yet-launched satellites in the
// space-industry standard format (WGS72).
//
// Usage:
//
//	satgen -constellation starlink|kuiper|telesat [-shells S1,S2] \
//	       [-epoch-year 2024] [-epoch-day 1.0] [-o catalog.tle]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hypatia/internal/constellation"
)

func main() {
	var (
		name      = flag.String("constellation", "kuiper", "starlink, kuiper, or telesat")
		shellsArg = flag.String("shells", "", "comma-separated shell names (default: the first shell)")
		epochYear = flag.Int("epoch-year", 2024, "TLE epoch year")
		epochDay  = flag.Float64("epoch-day", 1.0, "TLE epoch fractional day of year")
		outPath   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	available := map[string][]constellation.Shell{
		"starlink": {constellation.StarlinkS1, constellation.StarlinkS2, constellation.StarlinkS3, constellation.StarlinkS4, constellation.StarlinkS5},
		"kuiper":   {constellation.KuiperK1, constellation.KuiperK2, constellation.KuiperK3},
		"telesat":  {constellation.TelesatT1, constellation.TelesatT2},
	}
	shells, ok := available[strings.ToLower(*name)]
	if !ok {
		fatal(fmt.Errorf("unknown constellation %q", *name))
	}

	var selected []constellation.Shell
	if *shellsArg == "" {
		selected = shells[:1]
	} else {
		want := map[string]bool{}
		for _, s := range strings.Split(*shellsArg, ",") {
			want[strings.ToUpper(strings.TrimSpace(s))] = true
		}
		for _, sh := range shells {
			if want[sh.Name] {
				selected = append(selected, sh)
				delete(want, sh.Name)
			}
		}
		if len(want) > 0 || len(selected) == 0 {
			fatal(fmt.Errorf("unknown shells %v for %s", keys(want), *name))
		}
	}

	cfgs := map[string]func(...constellation.Shell) constellation.Config{
		"starlink": constellation.Starlink,
		"kuiper":   constellation.Kuiper,
		"telesat":  constellation.Telesat,
	}
	c, err := constellation.Generate(cfgs[strings.ToLower(*name)](selected...))
	if err != nil {
		fatal(err)
	}
	catalog, err := c.TLECatalog(*epochYear, *epochDay)
	if err != nil {
		fatal(err)
	}

	if *outPath == "" {
		fmt.Print(catalog)
		return
	}
	if err := os.WriteFile(*outPath, []byte(catalog), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d satellites to %s\n", c.NumSatellites(), *outPath)
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satgen:", err)
	os.Exit(1)
}
