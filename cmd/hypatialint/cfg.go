package main

// Per-function control-flow graph construction. The flow-sensitive check
// families (lifecycle, unitsafety, locksafety) run a forward dataflow
// (dataflow.go) over this CFG instead of inspecting statements in isolation.
//
// Shape: blocks hold only "simple" nodes — plain statements and the
// sub-expressions of compound statements (an if condition, a switch tag, a
// range header) — in execution order; compound bodies are expanded into
// their own blocks. A transfer function therefore walks a block's nodes with
// shallowInspect, which never descends into a nested body or a function
// literal (both are analyzed as their own CFGs).
//
// Approximations, chosen to keep the engine small and the findings
// suppressible rather than exhaustive:
//
//   - Deferred calls are modeled as running once, in LIFO order, in the
//     single exit block that every return reaches. A conditionally executed
//     defer is treated as always running.
//   - panic(...), os.Exit(...), and check.Failf(...) terminate their block
//     with no successor: paths that die do not reach the exit block, so the
//     lifecycle leak check does not charge them with leaking.
//   - goto marks the CFG unstructured; flow-sensitive checks skip such
//     functions (the repo has none).

import (
	"go/ast"
	"go/types"
)

// cfgBlock is one basic block: nodes executed in order, then a jump to one
// of succs (empty succs on a dead end such as panic).
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // virtual exit; deferred calls are replayed here
	blocks []*cfgBlock
	// unstructured is set when the body contains goto; block structure is
	// then unreliable and flow-sensitive checks skip the function.
	unstructured bool
}

// cfgLoop is one enclosing breakable/continuable construct during build.
type cfgLoop struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock // nil for switch/select (continue skips them)
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock // nil after a terminator (unreachable code follows)
	loops  []cfgLoop
	defers []*ast.CallExpr
	info   *types.Info
}

// buildCFG constructs the CFG of a function body. info may be nil; it is
// used only to recognize terminating calls (panic, os.Exit, check.Failf).
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, info: info}
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.g.exit = b.newBlock()
	b.stmtList(body.List, "")
	if b.cur != nil {
		b.edge(b.cur, b.g.exit)
	}
	// Deferred calls run on the way out, last-registered first.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.g.exit.nodes = append(b.g.exit.nodes, b.defers[i])
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// add appends a node to the current block, opening a fresh (unreachable)
// block when the previous statement was a terminator.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	// The label parameter exists so LabeledStmt can hand its label to the
	// loop/switch it wraps; plain lists pass "".
	for _, s := range list {
		b.stmt(s, label)
		label = ""
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		merge := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.edge(b.cur, merge)
		}
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.edge(b.cur, merge)
			}
		} else {
			b.edge(condBlk, merge)
		}
		b.cur = merge
	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		after := b.newBlock()
		post := b.newBlock()
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, cfgLoop{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = post
		b.add(s.Post)
		b.edge(post, head)
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		after := b.newBlock()
		b.cur = head
		// The RangeStmt node stands for the header (key/value binding from
		// X); shallowInspect visits Key, Value, and X only.
		b.add(s)
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, cfgLoop{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchBody(s.Body, label, false)
	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)
	case *ast.SelectStmt:
		b.switchBody(s.Body, label, true)
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.g.exit)
		}
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		// The defer's receiver and arguments are evaluated here; the call
		// itself is replayed in the exit block.
		b.add(s)
		b.defers = append(b.defers, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if callTerminates(s.X, b.info) {
			b.cur = nil
		}
	case nil:
		// absent init/post clause
	default:
		// GoStmt, AssignStmt, IncDecStmt, SendStmt, DeclStmt, EmptyStmt, ...
		b.add(s)
	}
}

// switchBody lowers the case clauses of a switch/type-switch/select: the
// head branches to every clause; each clause falls out to the merge block.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, isSelect bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	merge := b.newBlock()
	b.loops = append(b.loops, cfgLoop{label: label, brk: merge})
	hasDefault := false
	var clauseBlks []*cfgBlock
	var clauseBodies [][]ast.Stmt
	for _, cs := range body.List {
		blk := b.newBlock()
		b.edge(head, blk)
		clauseBlks = append(clauseBlks, blk)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			b.cur = blk
			for _, e := range cs.List {
				b.add(e)
			}
			clauseBodies = append(clauseBodies, cs.Body)
		case *ast.CommClause:
			hasDefault = hasDefault || cs.Comm == nil
			b.cur = blk
			b.add(cs.Comm)
			clauseBodies = append(clauseBodies, cs.Body)
		}
	}
	for i, blk := range clauseBlks {
		b.cur = blk // clause exprs already recorded; body appends after them
		b.stmtListFallthrough(clauseBodies[i], clauseBlks, i, merge)
	}
	// Without a default clause a switch may match nothing and fall through;
	// a select without default blocks until some clause fires.
	if !hasDefault && !isSelect {
		b.edge(head, merge)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = merge
}

// stmtListFallthrough lowers one case body, wiring fallthrough to the next
// clause block and plain completion to the merge block.
func (b *cfgBuilder) stmtListFallthrough(list []ast.Stmt, clauses []*cfgBlock, i int, merge *cfgBlock) {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			if b.cur != nil && i+1 < len(clauses) {
				b.edge(b.cur, clauses[i+1])
			}
			b.cur = nil
			return
		}
		b.stmt(s, "")
	}
	if b.cur != nil {
		b.edge(b.cur, merge)
	}
}

// branch lowers break/continue/goto.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.loops) - 1; i >= 0; i-- {
			if label == "" || b.loops[i].label == label {
				if b.cur != nil {
					b.edge(b.cur, b.loops[i].brk)
				}
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case "continue":
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].cont != nil && (label == "" || b.loops[i].label == label) {
				if b.cur != nil {
					b.edge(b.cur, b.loops[i].cont)
				}
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case "goto":
		b.g.unstructured = true
		b.cur = nil
	}
}

// callTerminates reports whether the expression statement never returns:
// panic, os.Exit, runtime.Goexit, log.Fatal*, or the project's check.Failf.
func callTerminates(e ast.Expr, info *types.Info) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if info == nil {
			return false
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		}
		if fn.Name() == "Failf" && fn.Pkg().Name() == "check" {
			return true
		}
	}
	return false
}

// preds computes the predecessor lists of every block.
func (g *funcCFG) preds() map[*cfgBlock][]*cfgBlock {
	p := make(map[*cfgBlock][]*cfgBlock, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			p[s] = append(p[s], blk)
		}
	}
	return p
}

// reachable returns the set of blocks reachable from entry.
func (g *funcCFG) reachable() map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{}
	stack := []*cfgBlock{g.entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.succs...)
	}
	return seen
}

// shallowInspect visits n and its sub-expressions in the spirit of
// ast.Inspect, but does not descend into bodies the CFG expands into other
// blocks, nor into function literals (which are analyzed as their own
// functions — the literal node itself is still visited, so a check can react
// to captures). A RangeStmt node stands for the loop header: only Key,
// Value, and X are visited.
func shallowInspect(n ast.Node, visit func(ast.Node) bool) {
	var walk func(ast.Node)
	walk = func(m ast.Node) {
		if m == nil {
			return
		}
		if r, ok := m.(*ast.RangeStmt); ok {
			if visit(r) {
				walk(r.Key)
				walk(r.Value)
				walk(r.X)
			}
			return
		}
		ast.Inspect(m, func(k ast.Node) bool {
			if k == nil {
				return true
			}
			switch k.(type) {
			case *ast.FuncLit:
				visit(k)
				return false
			case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if k != m {
					return false
				}
			}
			return visit(k)
		})
	}
	walk(n)
}
