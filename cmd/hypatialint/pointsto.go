package main

// Andersen-style, flow-insensitive, field-sensitive points-to analysis over
// the hypatialint call graph. The solver half of this file is AST-free — a
// constraint graph of nodes (variables and temporaries) and objects
// (allocation sites and storage cells) with the four classic inclusion
// constraints (address-of, copy, load, store) plus a struct-copy constraint
// for assignments through pointers to struct values — so the test suite can
// drive it with hand-built graphs. The generation half walks function
// bodies, in the deterministic package/file order the call graph already
// maintains, and translates Go statements into constraints.
//
// The model is tuned for the confinement check (escape.go), which only has
// to answer "which goroutines can reach this object":
//
//   - Struct values alias by copy: a struct-typed variable points at a
//     storage object, and `v = w` unions the storage sets instead of
//     copying field-by-field. This over-approximates sharing, which is the
//     safe direction for an escape analysis.
//   - Channel operations are ownership-transfer points. A send adds no
//     constraint (the value leaves the sender's world) and a receive mints
//     a fresh "epoch" object of the channel's element type.
//   - Calls to //hypatia:transfer functions are likewise cut: arguments and
//     receiver are consumed, and results are fresh per-call-site epoch
//     objects. TablePool.Empty / ForwardingTable.Release are the canonical
//     pair.
//   - Dynamic calls through a //hypatia:pure named function type or pure
//     interface mint epoch results and retain nothing — the documented
//     no-retention contract of core.Strategy extends to ownership.
//   - Unresolved or out-of-module calls retain their arguments in an opaque
//     object and pass them through to results, so aliasing survives
//     helpers the solver cannot see into.
//
// The analysis is context-insensitive: a function's results are shared
// nodes, and parameters accumulate the arguments of every static call
// site. Solving is monotone, so the fixpoint is independent of constraint
// order; everything that feeds reported output is additionally kept in
// deterministic order so the fact cache stays byte-identical across runs.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---- solver core (AST-free) ----

// ptNode identifies a points-to node: a variable, temporary, or slot.
type ptNode int32

// ptObj identifies an abstract object: an allocation site or storage cell.
type ptObj int32

const ptNone ptNode = -1

type ptObjKind uint8

const (
	// objAlloc is a composite literal, new, make, or function literal.
	objAlloc ptObjKind = iota
	// objVar is the addressable storage of a struct- or array-typed local.
	objVar
	// objField is the storage of a struct-valued field or element,
	// materialized lazily when the field is first touched.
	objField
	// objEpoch is a fresh value minted at an ownership-transfer point: a
	// channel receive or a blessed (//hypatia:transfer, pure-type) call.
	objEpoch
	// objOpaque is the retention bucket of a call the solver cannot see
	// into; arguments live in its "[]" slot.
	objOpaque
	// objGlobal is the storage of a package-level variable.
	objGlobal
	// objCell is the address cell created by &v or &x.f for a non-struct
	// target; its "*" slot mirrors the target's contents.
	objCell
	// objFunc is a function or bound-method value.
	objFunc
)

// ptFieldCons is a pending load (dst ⊇ o.field for o ∈ pts(base)) or store
// (o.field ⊇ src) constraint attached to a base node.
type ptFieldCons struct {
	field string
	node  ptNode // dst for loads, src for stores
	fvar  *types.Var
}

// ptFieldRef names one trackable field of a struct type.
type ptFieldRef struct {
	name string
	fvar *types.Var
}

// ptStructCons is the `*p = y` constraint for struct pointees: for every
// object p points at, each field slot absorbs the corresponding field of y.
type ptStructCons struct {
	src    ptNode
	fields []ptFieldRef
}

type ptNodeState struct {
	label   string
	pts     map[ptObj]struct{}
	ptsList []ptObj // insertion order; complete once solve() returns
	copies  []ptNode
	loads   []ptFieldCons
	stores  []ptFieldCons
	scopies []ptStructCons
}

type ptObjState struct {
	kind      ptObjKind
	typ       types.Type
	pos       token.Pos
	label     string
	slots     map[string]ptNode
	slotNames []string // insertion order; sort before deterministic walks
	slotVar   map[string]*types.Var
	// bodyKnown marks function values whose body the generator walked.
	bodyKnown bool
}

type ptWork struct {
	n ptNode
	o ptObj
}

// ptSolver is the inclusion-constraint graph and its worklist.
type ptSolver struct {
	nodes []ptNodeState
	objs  []ptObjState
	work  []ptWork
}

func newPtsSolver() *ptSolver { return &ptSolver{} }

func (s *ptSolver) newNode(label string) ptNode {
	s.nodes = append(s.nodes, ptNodeState{label: label})
	return ptNode(len(s.nodes) - 1)
}

func (s *ptSolver) newObject(kind ptObjKind, typ types.Type, pos token.Pos, label string) ptObj {
	s.objs = append(s.objs, ptObjState{kind: kind, typ: typ, pos: pos, label: label})
	return ptObj(len(s.objs) - 1)
}

// addObj seeds o into the points-to set of n — the address-of constraint.
func (s *ptSolver) addObj(n ptNode, o ptObj) {
	ns := &s.nodes[n]
	if ns.pts == nil {
		ns.pts = map[ptObj]struct{}{}
	}
	if _, ok := ns.pts[o]; ok {
		return
	}
	ns.pts[o] = struct{}{}
	ns.ptsList = append(ns.ptsList, o)
	s.work = append(s.work, ptWork{n, o})
}

// addCopy adds dst ⊇ src and replays src's current points-to set.
func (s *ptSolver) addCopy(src, dst ptNode) {
	if src == dst || src == ptNone || dst == ptNone {
		return
	}
	s.nodes[src].copies = append(s.nodes[src].copies, dst)
	for _, o := range s.nodes[src].ptsList {
		s.addObj(dst, o)
	}
}

// addLoad adds dst ⊇ o.field for every o ∈ pts(base), now and later.
func (s *ptSolver) addLoad(base ptNode, field string, dst ptNode, fvar *types.Var) {
	if base == ptNone || dst == ptNone {
		return
	}
	s.nodes[base].loads = append(s.nodes[base].loads, ptFieldCons{field, dst, fvar})
	list := s.nodes[base].ptsList
	for _, o := range list {
		s.addCopy(s.slotNode(o, field, fvar), dst)
	}
}

// addStore adds o.field ⊇ src for every o ∈ pts(base), now and later.
func (s *ptSolver) addStore(base ptNode, field string, src ptNode, fvar *types.Var) {
	if base == ptNone || src == ptNone {
		return
	}
	s.nodes[base].stores = append(s.nodes[base].stores, ptFieldCons{field, src, fvar})
	list := s.nodes[base].ptsList
	for _, o := range list {
		s.addCopy(src, s.slotNode(o, field, fvar))
	}
}

// addStructCopy models `*p = y` for a struct pointee: every field slot of
// every object base points at absorbs the matching field of src.
func (s *ptSolver) addStructCopy(base, src ptNode, fields []ptFieldRef) {
	if base == ptNone || src == ptNone || len(fields) == 0 {
		return
	}
	s.nodes[base].scopies = append(s.nodes[base].scopies, ptStructCons{src: src, fields: fields})
	list := s.nodes[base].ptsList
	for _, o := range list {
		s.fireStructCopy(o, src, fields)
	}
}

func (s *ptSolver) fireStructCopy(o ptObj, src ptNode, fields []ptFieldRef) {
	for _, f := range fields {
		sn := s.slotNode(o, f.name, f.fvar)
		s.addLoad(src, f.name, sn, f.fvar)
	}
}

// slotNode returns (creating lazily) the node holding the contents of one
// named slot of o. Struct-valued fields and elements materialize a child
// storage object on first touch, so value-struct nesting stays addressable.
func (s *ptSolver) slotNode(o ptObj, field string, fvar *types.Var) ptNode {
	if s.objs[o].slots == nil {
		s.objs[o].slots = map[string]ptNode{}
		s.objs[o].slotVar = map[string]*types.Var{}
	}
	if n, ok := s.objs[o].slots[field]; ok {
		if fvar != nil && s.objs[o].slotVar[field] == nil {
			s.objs[o].slotVar[field] = fvar
		}
		return n
	}
	n := s.newNode(s.objs[o].label + "." + field)
	s.objs[o].slots[field] = n
	s.objs[o].slotNames = append(s.objs[o].slotNames, field)
	if fvar != nil {
		s.objs[o].slotVar[field] = fvar
	}
	if et := slotValueType(s.objs[o].typ, field); et != nil && structish(et) {
		label := "field " + field + " of " + s.objs[o].label
		if field == "[]" {
			label = "element of " + s.objs[o].label
		}
		child := s.newObject(objField, et, s.objs[o].pos, label)
		s.addObj(n, child)
	}
	return n
}

// solve runs the worklist to fixpoint. The result is order-independent;
// only discovery order (ptsList) varies with constraint order, and the
// generator emits constraints deterministically.
func (s *ptSolver) solve() {
	for len(s.work) > 0 {
		w := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		copies := s.nodes[w.n].copies
		for _, d := range copies {
			s.addObj(d, w.o)
		}
		loads := s.nodes[w.n].loads
		for _, c := range loads {
			s.addCopy(s.slotNode(w.o, c.field, c.fvar), c.node)
		}
		stores := s.nodes[w.n].stores
		for _, c := range stores {
			s.addCopy(c.node, s.slotNode(w.o, c.field, c.fvar))
		}
		scopies := s.nodes[w.n].scopies
		for _, c := range scopies {
			s.fireStructCopy(w.o, c.src, c.fields)
		}
	}
}

// pts returns the points-to set of n in ascending object order.
func (s *ptSolver) pts(n ptNode) []ptObj {
	if n == ptNone || s.nodes[n].ptsList == nil {
		return nil
	}
	out := append([]ptObj(nil), s.nodes[n].ptsList...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedSlots returns o's slot names in lexical order.
func (s *ptSolver) sortedSlots(o ptObj) []string {
	names := append([]string(nil), s.objs[o].slotNames...)
	sort.Strings(names)
	return names
}

// ---- type helpers ----

// derefAll strips pointer layers (and aliases) off t.
func derefAll(t types.Type) types.Type {
	for t != nil {
		u, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = u.Elem()
	}
	return t
}

// structish reports whether values of t are addressable aggregates that
// need a storage object (structs and arrays).
func structish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

// trackable reports whether the analysis models values of t at all.
func trackable(t types.Type) bool {
	return t != nil && (pointerish(t) || structish(t))
}

// slotValueType resolves the value type stored in one slot of an object of
// type t: a struct field by name, or "[]" for slice/array/map elements.
func slotValueType(t types.Type, field string) types.Type {
	t = derefAll(t)
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if u.Field(i).Name() == field {
				return u.Field(i).Type()
			}
		}
	case *types.Slice:
		if field == "[]" {
			return u.Elem()
		}
	case *types.Array:
		if field == "[]" {
			return u.Elem()
		}
	case *types.Map:
		if field == "[]" {
			return u.Elem()
		}
	}
	return nil
}

// structFieldRefs lists the trackable fields of a struct pointee.
func structFieldRefs(t types.Type) []ptFieldRef {
	t = derefAll(t)
	if t == nil {
		return nil
	}
	u, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []ptFieldRef
	for i := 0; i < u.NumFields(); i++ {
		f := u.Field(i)
		if trackable(f.Type()) {
			out = append(out, ptFieldRef{name: f.Name(), fvar: f})
		}
	}
	return out
}

// ptTypeLabel renders a type for escape messages: pkg.Name for named types,
// a structural kind otherwise.
func ptTypeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	if pkgPath, name, ok := namedType(t); ok {
		short := pkgPath
		if i := strings.LastIndex(short, "/"); i >= 0 {
			short = short[i+1:]
		}
		if short != "" {
			return short + "." + name
		}
		return name
	}
	switch derefAll(t).Underlying().(type) {
	case *types.Struct:
		return "struct"
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	case *types.Signature:
		return "func"
	}
	return "value"
}

// ---- constraint generation ----

// ptSeed is one goroutine launch: the set of nodes whose contents become
// reachable from the new goroutine.
type ptSeed struct {
	pos    token.Pos
	p      *pkg
	inLoop bool
	nodes  []ptNode
}

// ptGlobalStore is one assignment whose destination is rooted in a
// package-level variable.
type ptGlobalStore struct {
	pos   token.Pos
	p     *pkg
	node  ptNode
	vname string
}

// ptDynCall is a call the solver could not resolve to a body: confined
// values flowing into it lose their ownership proof.
type ptDynCall struct {
	pos   token.Pos
	p     *pkg
	fun   ptNode
	args  []ptNode
	label string
}

type posRange struct{ lo, hi token.Pos }

// ptGen translates the cone's ASTs into solver constraints.
type ptGen struct {
	s      *ptSolver
	cg     *callGraph
	an     *effectAnalysis
	conf   *confIndex
	module string
	fset   *token.FileSet

	varNode map[*types.Var]ptNode
	funcObj map[*types.Func]ptObj
	cellOf  map[*types.Var]ptObj
	litObj  map[*ast.FuncLit]ptObj
	results map[cgKey][]ptNode
	globals []*types.Var

	seeds        []ptSeed
	globalStores []ptGlobalStore
	dynCalls     []ptDynCall

	// current function context
	p     *pkg
	info  *types.Info
	fn    cgKey
	loops []posRange
}

// genConstraints builds the constraint graph for one dependency cone. The
// cone must be sorted by package path; functions are visited in the call
// graph's file order, so generation is deterministic.
func genConstraints(cone []*pkg, cg *callGraph, an *effectAnalysis, conf *confIndex, module string) *ptGen {
	g := &ptGen{
		s:       newPtsSolver(),
		cg:      cg,
		an:      an,
		conf:    conf,
		module:  module,
		fset:    cone[0].fset,
		varNode: map[*types.Var]ptNode{},
		funcObj: map[*types.Func]ptObj{},
		cellOf:  map[*types.Var]ptObj{},
		litObj:  map[*ast.FuncLit]ptObj{},
		results: map[cgKey][]ptNode{},
	}
	for _, p := range cone {
		g.p, g.info = p, p.info
		g.fn = nil
		g.loops = nil
		for _, f := range p.files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						g.genValueSpec(vs)
					}
				}
			}
		}
	}
	for _, p := range cone {
		for _, k := range cg.funcsIn[p] {
			g.genFunc(p, k)
		}
	}
	return g
}

// posOf renders a token.Pos as file:line for labels and messages.
func (g *ptGen) posOf(pos token.Pos) string {
	p := g.fset.Position(pos)
	return shortFile(p.Filename) + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ensureVar returns the node of a variable, creating storage for struct-
// and array-typed variables and registering package-level ones.
func (g *ptGen) ensureVar(v *types.Var) ptNode {
	if n, ok := g.varNode[v]; ok {
		return n
	}
	if !trackable(v.Type()) {
		g.varNode[v] = ptNone
		return ptNone
	}
	n := g.s.newNode(v.Name())
	g.varNode[v] = n
	kind := objVar
	if isPkgLevelVar(v) {
		kind = objGlobal
		g.globals = append(g.globals, v)
	}
	if structish(v.Type()) {
		o := g.s.newObject(kind, v.Type(), v.Pos(), ptTypeLabel(v.Type())+" variable "+v.Name())
		g.s.addObj(n, o)
	} else if kind == objGlobal {
		// Non-aggregate globals still need an identity so objects stored
		// into them are discoverable from the package-level sweep.
		g.globals = g.globals[:len(g.globals)-1]
		g.globals = append(g.globals, v)
	}
	return n
}

// varOf resolves an identifier to its variable via Uses or Defs.
func (g *ptGen) varOf(id *ast.Ident) *types.Var {
	if v, ok := g.info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := g.info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// ensureResults returns the shared result nodes of a callee, tying named
// result variables to them.
func (g *ptGen) ensureResults(k cgKey, sig *types.Signature) []ptNode {
	if rs, ok := g.results[k]; ok {
		return rs
	}
	n := sig.Results().Len()
	rs := make([]ptNode, n)
	for i := 0; i < n; i++ {
		rv := sig.Results().At(i)
		if !trackable(rv.Type()) {
			rs[i] = ptNone
			continue
		}
		rs[i] = g.s.newNode("result")
		if rv.Name() != "" {
			g.s.addCopy(g.ensureVar(rv), rs[i])
		}
	}
	g.results[k] = rs
	return rs
}

// sigOf returns the signature of a call-graph node.
func (g *ptGen) sigOf(k cgKey) *types.Signature {
	switch k := k.(type) {
	case *types.Func:
		if sig, ok := k.Type().(*types.Signature); ok {
			return sig
		}
	case *ast.FuncLit:
		if sig, ok := g.cg.pkgOf[k].info.TypeOf(k).(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// genValueSpec handles a package-level var declaration.
func (g *ptGen) genValueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		for _, name := range vs.Names {
			if v := g.varOf(name); v != nil {
				g.ensureVar(v)
			}
		}
		return
	}
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		rs := g.evalMulti(vs.Values[0], len(vs.Names))
		for i, name := range vs.Names {
			g.assignIdent(name, rs[i], name.Pos())
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			g.assignIdent(name, g.eval(vs.Values[i]), name.Pos())
		}
	}
}

// genFunc generates constraints for one call-graph node's body.
func (g *ptGen) genFunc(p *pkg, k cgKey) {
	body := g.cg.body[k]
	if body == nil {
		return
	}
	g.p, g.info, g.fn = p, p.info, k
	g.loops = g.loops[:0]
	ptBodyScan(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			g.loops = append(g.loops, posRange{n.Pos(), n.End()})
		case *ast.RangeStmt:
			g.loops = append(g.loops, posRange{n.Pos(), n.End()})
		}
		return true
	})
	if sig := g.sigOf(k); sig != nil && sig.Results().Len() > 0 {
		g.ensureResults(k, sig)
	}
	for _, st := range body.List {
		g.genStmt(st)
	}
}

// ptBodyScan walks a body without descending into nested function
// literals, which are separate call-graph nodes.
func ptBodyScan(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return false
		}
		return f(n)
	})
}

func (g *ptGen) inLoop(pos token.Pos) bool {
	for _, r := range g.loops {
		if r.lo <= pos && pos <= r.hi {
			return true
		}
	}
	return false
}

// ---- statements ----

func (g *ptGen) genStmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.AssignStmt:
		g.genAssign(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					g.genLocalValueSpec(vs)
				}
			}
		}
	case *ast.ExprStmt:
		g.eval(st.X)
	case *ast.GoStmt:
		g.genGo(st)
	case *ast.DeferStmt:
		g.evalCall(st.Call)
	case *ast.ReturnStmt:
		g.genReturn(st)
	case *ast.SendStmt:
		// Ownership transfer: the value leaves this goroutine's world.
		g.eval(st.Chan)
		g.eval(st.Value)
	case *ast.IncDecStmt:
		g.eval(st.X)
	case *ast.BlockStmt:
		for _, s := range st.List {
			g.genStmt(s)
		}
	case *ast.IfStmt:
		g.genStmt(st.Init)
		g.eval(st.Cond)
		g.genStmt(st.Body)
		g.genStmt(st.Else)
	case *ast.ForStmt:
		g.genStmt(st.Init)
		g.eval(st.Cond)
		g.genStmt(st.Post)
		g.genStmt(st.Body)
	case *ast.RangeStmt:
		g.genRange(st)
	case *ast.SwitchStmt:
		g.genStmt(st.Init)
		g.eval(st.Tag)
		g.genStmt(st.Body)
	case *ast.TypeSwitchStmt:
		g.genStmt(st.Init)
		g.genStmt(st.Assign)
		g.genStmt(st.Body)
	case *ast.SelectStmt:
		g.genStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			g.eval(e)
		}
		for _, s := range st.Body {
			g.genStmt(s)
		}
	case *ast.CommClause:
		g.genStmt(st.Comm)
		for _, s := range st.Body {
			g.genStmt(s)
		}
	case *ast.LabeledStmt:
		g.genStmt(st.Stmt)
	}
}

func (g *ptGen) genLocalValueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		for _, name := range vs.Names {
			if v := g.varOf(name); v != nil {
				g.ensureVar(v)
			}
		}
		return
	}
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		rs := g.evalMulti(vs.Values[0], len(vs.Names))
		for i, name := range vs.Names {
			g.assignIdent(name, rs[i], name.Pos())
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			g.assignIdent(name, g.eval(vs.Values[i]), name.Pos())
		}
	}
}

func (g *ptGen) genAssign(st *ast.AssignStmt) {
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		rs := g.evalMulti(st.Rhs[0], len(st.Lhs))
		for i, lhs := range st.Lhs {
			g.assign(lhs, rs[i], st.TokPos)
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) {
			g.assign(lhs, g.eval(st.Rhs[i]), st.TokPos)
		}
	}
}

func (g *ptGen) genReturn(st *ast.ReturnStmt) {
	rs := g.results[g.fn]
	if len(st.Results) == 0 {
		return // named results already tied by ensureResults
	}
	if len(st.Results) == 1 && len(rs) > 1 {
		vals := g.evalMulti(st.Results[0], len(rs))
		for i, r := range rs {
			if i < len(vals) {
				g.s.addCopy(vals[i], r)
			}
		}
		return
	}
	for i, e := range st.Results {
		v := g.eval(e)
		if i < len(rs) {
			g.s.addCopy(v, rs[i])
		}
	}
}

func (g *ptGen) genRange(st *ast.RangeStmt) {
	base := g.eval(st.X)
	t := g.info.TypeOf(st.X)
	var keyN, valN ptNode = ptNone, ptNone
	if t != nil {
		switch derefAll(t).Underlying().(type) {
		case *types.Slice, *types.Array, *types.Map:
			if base != ptNone {
				valN = g.s.newNode("range")
				g.s.addLoad(base, "[]", valN, nil)
			}
		case *types.Chan:
			// Receive: ownership transfer mints a fresh epoch value.
			if et := g.info.TypeOf(st.Key); trackable(et) {
				keyN = g.epochNode(et, st.Pos(), "received from channel")
			}
		}
	}
	if st.Key != nil && keyN != ptNone {
		g.assign(st.Key, keyN, st.Pos())
	}
	if st.Value != nil && valN != ptNone {
		g.assign(st.Value, valN, st.Pos())
	}
	g.genStmt(st.Body)
}

// epochNode mints a fresh transfer-point object of type t.
func (g *ptGen) epochNode(t types.Type, pos token.Pos, what string) ptNode {
	n := g.s.newNode("epoch")
	o := g.s.newObject(objEpoch, t, pos, ptTypeLabel(t)+" "+what)
	g.s.addObj(n, o)
	return n
}

// ---- assignment targets ----

func (g *ptGen) assignIdent(id *ast.Ident, val ptNode, pos token.Pos) {
	if id.Name == "_" {
		return
	}
	v := g.varOf(id)
	if v == nil || !trackable(v.Type()) {
		return
	}
	n := g.ensureVar(v)
	g.s.addCopy(val, n)
	if isPkgLevelVar(v) && val != ptNone {
		g.globalStores = append(g.globalStores, ptGlobalStore{pos: pos, p: g.p, node: val, vname: v.Name()})
	}
}

func (g *ptGen) assign(lhs ast.Expr, val ptNode, pos token.Pos) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		g.assignIdent(lhs, val, pos)
	case *ast.SelectorExpr:
		if v, ok := g.info.Uses[lhs.Sel].(*types.Var); ok && isPkgLevelVar(v) {
			// Qualified write to another package's variable.
			if trackable(v.Type()) {
				g.s.addCopy(val, g.ensureVar(v))
				if val != ptNone {
					g.globalStores = append(g.globalStores, ptGlobalStore{pos: pos, p: g.p, node: val, vname: v.Name()})
				}
			}
			return
		}
		base := g.eval(lhs.X)
		fvar, _ := g.info.Uses[lhs.Sel].(*types.Var)
		g.s.addStore(base, lhs.Sel.Name, val, fvar)
		g.recordGlobalRoot(lhs, val, pos)
	case *ast.IndexExpr:
		base := g.eval(lhs.X)
		g.eval(lhs.Index)
		g.s.addStore(base, "[]", val, nil)
		g.recordGlobalRoot(lhs, val, pos)
	case *ast.StarExpr:
		base := g.eval(lhs.X)
		pt := g.info.TypeOf(lhs.X)
		if pt != nil {
			if elem := derefAll(pt); structish(elem) {
				g.s.addStructCopy(base, val, structFieldRefs(elem))
			} else {
				g.s.addStore(base, "*", val, nil)
			}
		}
		g.recordGlobalRoot(lhs, val, pos)
	}
}

// recordGlobalRoot records a store whose destination is rooted in a
// package-level variable, so escape.go can treat it as a publication site.
func (g *ptGen) recordGlobalRoot(lhs ast.Expr, val ptNode, pos token.Pos) {
	if val == ptNone {
		return
	}
	root, _ := writeRoot(g.info, lhs)
	id, ok := root.(*ast.Ident)
	if !ok {
		if sel, isSel := root.(*ast.SelectorExpr); isSel {
			id = sel.Sel
		} else {
			return
		}
	}
	if v, ok := g.info.Uses[id].(*types.Var); ok && isPkgLevelVar(v) {
		g.globalStores = append(g.globalStores, ptGlobalStore{pos: pos, p: g.p, node: val, vname: v.Name()})
	}
}

// ---- expressions ----

// eval returns the node holding an expression's value, or ptNone when the
// value cannot carry references.
func (g *ptGen) eval(e ast.Expr) ptNode {
	if e == nil {
		return ptNone
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := g.varOf(e); v != nil {
			return g.ensureVar(v)
		}
		if fn, ok := g.info.Uses[e].(*types.Func); ok {
			return g.funcValue(fn, e.Pos())
		}
		return ptNone
	case *ast.SelectorExpr:
		return g.evalSelector(e)
	case *ast.StarExpr:
		base := g.eval(e.X)
		pt := g.info.TypeOf(e.X)
		if pt == nil {
			return ptNone
		}
		if elem := derefAll(pt); structish(elem) {
			return base // struct values are their storage objects
		}
		n := g.s.newNode("deref")
		g.s.addLoad(base, "*", n, nil)
		return n
	case *ast.UnaryExpr:
		return g.evalUnary(e)
	case *ast.CompositeLit:
		return g.evalComposite(e)
	case *ast.CallExpr:
		rs := g.evalCall(e)
		if len(rs) > 0 {
			return rs[0]
		}
		return ptNone
	case *ast.FuncLit:
		return g.evalFuncLit(e)
	case *ast.IndexExpr:
		return g.evalIndex(e)
	case *ast.IndexListExpr:
		return g.eval(e.X)
	case *ast.SliceExpr:
		return g.eval(e.X)
	case *ast.TypeAssertExpr:
		return g.eval(e.X)
	case *ast.BinaryExpr:
		g.eval(e.X)
		g.eval(e.Y)
		return ptNone
	case *ast.KeyValueExpr:
		return g.eval(e.Value)
	}
	return ptNone
}

// evalMulti evaluates a single expression producing n values (call, map
// index with ok, receive with ok, type assert with ok).
func (g *ptGen) evalMulti(e ast.Expr, n int) []ptNode {
	out := make([]ptNode, n)
	for i := range out {
		out[i] = ptNone
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		rs := g.evalCall(e)
		copy(out, rs)
	default:
		out[0] = g.eval(e)
	}
	return out
}

func (g *ptGen) evalSelector(e *ast.SelectorExpr) ptNode {
	switch obj := g.info.Uses[e.Sel].(type) {
	case *types.Var:
		if isPkgLevelVar(obj) {
			return g.ensureVar(obj)
		}
		if obj.IsField() {
			base := g.eval(e.X)
			if base == ptNone {
				return ptNone
			}
			if !trackable(obj.Type()) {
				return ptNone
			}
			n := g.s.newNode(e.Sel.Name)
			g.s.addLoad(base, e.Sel.Name, n, obj)
			return n
		}
		return g.ensureVar(obj)
	case *types.Func:
		// Method value or qualified function reference.
		if sel, ok := g.info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			recv := g.eval(e.X)
			n := g.s.newNode("method value")
			o := g.s.newObject(objFunc, g.info.TypeOf(e), e.Pos(), "method value "+e.Sel.Name)
			g.s.addObj(n, o)
			g.s.addStore(n, "recv", recv, nil)
			return n
		}
		return g.funcValue(obj, e.Pos())
	}
	return ptNone
}

func (g *ptGen) funcValue(fn *types.Func, pos token.Pos) ptNode {
	o, ok := g.funcObj[fn]
	if !ok {
		o = g.s.newObject(objFunc, fn.Type(), fn.Pos(), "func "+fn.Name())
		g.s.objs[o].bodyKnown = g.cg.body[fn] != nil
		g.funcObj[fn] = o
	}
	n := g.s.newNode("func value")
	g.s.addObj(n, o)
	return n
}

func (g *ptGen) evalUnary(e *ast.UnaryExpr) ptNode {
	switch e.Op {
	case token.AND:
		return g.evalAddr(e.X, e.Pos())
	case token.ARROW:
		g.eval(e.X)
		t := g.info.TypeOf(e)
		if !trackable(t) {
			return ptNone
		}
		return g.epochNode(t, e.Pos(), "received from channel")
	default:
		g.eval(e.X)
		return ptNone
	}
}

func (g *ptGen) evalAddr(x ast.Expr, pos token.Pos) ptNode {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		v := g.varOf(x)
		if v == nil {
			return ptNone
		}
		if structish(v.Type()) {
			return g.ensureVar(v) // storage objects double as the address
		}
		if !trackable(v.Type()) && !isPkgLevelVar(v) {
			// Address of an untracked scalar: nothing to model.
			if !trackable(v.Type()) {
				return ptNone
			}
		}
		if !trackable(v.Type()) {
			return ptNone
		}
		o, ok := g.cellOf[v]
		if !ok {
			o = g.s.newObject(objCell, types.NewPointer(v.Type()), v.Pos(), "address of "+v.Name())
			g.cellOf[v] = o
			vn := g.ensureVar(v)
			sn := g.s.slotNode(o, "*", nil)
			g.s.addCopy(vn, sn)
			g.s.addCopy(sn, vn)
		}
		n := g.s.newNode("addr")
		g.s.addObj(n, o)
		return n
	case *ast.SelectorExpr:
		if v, ok := g.info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			ft := v.Type()
			base := g.eval(x.X)
			if base == ptNone {
				return ptNone
			}
			if structish(ft) {
				n := g.s.newNode("addr")
				g.s.addLoad(base, x.Sel.Name, n, v)
				return n
			}
			if !trackable(ft) {
				return ptNone
			}
			o := g.s.newObject(objCell, types.NewPointer(ft), pos, "address of field "+x.Sel.Name)
			sn := g.s.slotNode(o, "*", nil)
			g.s.addLoad(base, x.Sel.Name, sn, v)
			g.s.addStore(base, x.Sel.Name, sn, v)
			n := g.s.newNode("addr")
			g.s.addObj(n, o)
			return n
		}
		return g.eval(x) // &pkg.Global etc.
	case *ast.IndexExpr:
		base := g.eval(x.X)
		g.eval(x.Index)
		if base == ptNone {
			return ptNone
		}
		et := g.info.TypeOf(x)
		if pt, ok := et.(*types.Pointer); ok && structish(pt.Elem()) {
			n := g.s.newNode("addr")
			g.s.addLoad(base, "[]", n, nil)
			return n
		}
		o := g.s.newObject(objCell, et, pos, "address of element")
		sn := g.s.slotNode(o, "*", nil)
		g.s.addLoad(base, "[]", sn, nil)
		g.s.addStore(base, "[]", sn, nil)
		n := g.s.newNode("addr")
		g.s.addObj(n, o)
		return n
	case *ast.CompositeLit:
		return g.evalComposite(x)
	case *ast.StarExpr:
		return g.eval(x.X) // &*p == p
	}
	g.eval(x)
	return ptNone
}

func (g *ptGen) evalComposite(e *ast.CompositeLit) ptNode {
	t := g.info.TypeOf(e)
	o := g.s.newObject(objAlloc, t, e.Pos(), ptTypeLabel(t)+" value")
	n := g.s.newNode("lit")
	g.s.addObj(n, o)
	fields := structFieldRefs(t)
	for i, elt := range e.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val := g.eval(kv.Value)
			if id, ok := kv.Key.(*ast.Ident); ok {
				if fv, isField := g.info.Uses[id].(*types.Var); isField && fv.IsField() {
					g.s.addStore(n, id.Name, val, fv)
					continue
				}
			}
			g.eval(kv.Key)
			g.s.addStore(n, "[]", val, nil)
			continue
		}
		val := g.eval(elt)
		if i < len(fields) && structishOrStructLit(t) {
			// Positional struct literal: fields in declaration order. The
			// fields list skips untrackable ones, so match by index over
			// the full field list instead.
			if fv := structFieldAt(t, i); fv != nil {
				g.s.addStore(n, fv.Name(), val, fv)
				continue
			}
		}
		g.s.addStore(n, "[]", val, nil)
	}
	return n
}

func structishOrStructLit(t types.Type) bool {
	t = derefAll(t)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Struct)
	return ok
}

func structFieldAt(t types.Type, i int) *types.Var {
	t = derefAll(t)
	if t == nil {
		return nil
	}
	u, ok := t.Underlying().(*types.Struct)
	if !ok || i >= u.NumFields() {
		return nil
	}
	f := u.Field(i)
	if !trackable(f.Type()) {
		return nil
	}
	return f
}

func (g *ptGen) evalFuncLit(e *ast.FuncLit) ptNode {
	o, ok := g.litObj[e]
	if !ok {
		o = g.s.newObject(objAlloc, g.info.TypeOf(e), e.Pos(),
			"func literal")
		g.s.objs[o].bodyKnown = true
		g.litObj[e] = o
		for _, fv := range g.freeVars(e) {
			sn := g.s.slotNode(o, "capture "+fv.Name(), nil)
			g.s.addCopy(g.ensureVar(fv), sn)
		}
	}
	n := g.s.newNode("closure")
	g.s.addObj(n, o)
	return n
}

// freeVars lists the trackable variables a literal captures from enclosing
// scopes, in source order.
func (g *ptGen) freeVars(lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := g.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPkgLevelVar(v) || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if !trackable(v.Type()) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

func (g *ptGen) evalIndex(e *ast.IndexExpr) ptNode {
	// Generic instantiation: evaluate the function operand.
	if tv, ok := g.info.Types[e.X]; ok {
		if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
			return g.eval(e.X)
		}
	}
	base := g.eval(e.X)
	g.eval(e.Index)
	if base == ptNone || !trackable(g.info.TypeOf(e)) {
		return ptNone
	}
	n := g.s.newNode("elem")
	g.s.addLoad(base, "[]", n, nil)
	return n
}

// ---- calls ----

// callInfo captures what a goroutine launch needs to know about a call.
type callInfo struct {
	args []ptNode // evaluated argument values (incl. receiver)
	fun  ptNode   // callee value for dynamic calls, ptNone otherwise
}

func (g *ptGen) evalCall(call *ast.CallExpr) []ptNode {
	rs, _ := g.evalCallInfo(call)
	return rs
}

func (g *ptGen) evalCallInfo(call *ast.CallExpr) ([]ptNode, callInfo) {
	// Type conversion: the value passes through unchanged.
	if tv, ok := g.info.Types[call.Fun]; ok && tv.IsType() {
		var v ptNode = ptNone
		if len(call.Args) == 1 {
			v = g.eval(call.Args[0])
		}
		return []ptNode{v}, callInfo{fun: ptNone}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := g.info.Uses[id].(*types.Builtin); isB {
			return g.evalBuiltin(id.Name, call), callInfo{fun: ptNone}
		}
	}
	// Immediately invoked function literal: bind like a static call.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		litNode := g.evalFuncLit(lit)
		sig := g.sigOf(lit)
		args := g.bindArgs(call, sig, 0)
		return g.ensureResultsFor(lit, sig), callInfo{args: args, fun: litNode}
	}

	fn := resolveCallee(g.info, call)
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return nil, callInfo{fun: ptNone}
		}
		// Ownership-transfer whitelist: arguments and receiver are
		// consumed; results are fresh epoch values.
		if g.conf != nil && g.conf.transfer[fn] {
			args := g.evalArgsOnly(call, sig)
			return g.epochResults(sig, call.Pos(), "obtained from "+fn.Name()), callInfo{args: args, fun: ptNone}
		}
		if isModuleFn(fn, g.module) && g.cg.body[fn] != nil {
			args := g.bindCall(call, fn, sig)
			return g.ensureResultsFor(fn, sig), callInfo{args: args, fun: ptNone}
		}
		if isModuleFn(fn, g.module) || fn.Pkg() == nil {
			// Module-local interface method or bodyless declaration:
			// retention plus a dynamic-call record for escape.go —
			// unless the interface carries the //hypatia:pure contract,
			// whose no-retention guarantee extends to ownership.
			args := g.evalArgsOnly(call, sig)
			if g.pureIfaceMethod(fn) {
				return g.epochResults(sig, call.Pos(), "returned by "+fn.Name()), callInfo{args: args, fun: ptNone}
			}
			rs := g.opaqueResults(call, sig, args, "call to "+fn.Name())
			g.dynCalls = append(g.dynCalls, ptDynCall{
				pos: call.Pos(), p: g.p, fun: ptNone, args: args,
				label: "dynamic call to " + fn.Name(),
			})
			return rs, callInfo{args: args, fun: ptNone}
		}
		// Out-of-module (stdlib) call: retain arguments, pass them through.
		args := g.evalArgsOnly(call, sig)
		return g.opaqueResults(call, sig, args, "call to "+fn.Name()), callInfo{args: args, fun: ptNone}
	}

	// Dynamic call through a function value.
	funNode := g.eval(call.Fun)
	sig, _ := g.info.TypeOf(call.Fun).Underlying().(*types.Signature)
	var args []ptNode
	if sig != nil {
		args = g.evalArgsOnly(call, sig)
	} else {
		for _, a := range call.Args {
			args = append(args, g.eval(a))
		}
	}
	// Blessed dynamic dispatch: //hypatia:pure named function types
	// guarantee no retention, so results are fresh epochs.
	if named, ok := types.Unalias(g.info.TypeOf(call.Fun)).(*types.Named); ok && g.an.pureTypes[named.Obj()] {
		if sig != nil {
			return g.epochResults(sig, call.Pos(), "returned by "+named.Obj().Name()+" call"), callInfo{args: args, fun: funNode}
		}
		return nil, callInfo{args: args, fun: funNode}
	}
	var rs []ptNode
	if sig != nil {
		rs = g.opaqueResults(call, sig, args, "dynamic call")
	}
	g.dynCalls = append(g.dynCalls, ptDynCall{
		pos: call.Pos(), p: g.p, fun: funNode, args: args, label: "dynamic call",
	})
	return rs, callInfo{args: args, fun: funNode}
}

// pureIfaceMethod reports whether fn is a method of a //hypatia:pure
// interface.
func (g *ptGen) pureIfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if named, ok := types.Unalias(sig.Recv().Type()).(*types.Named); ok {
		return g.an.pureIfaces[named.Obj()]
	}
	return false
}

// bindCall evaluates a static call's receiver and arguments and binds them
// to the callee's parameters.
func (g *ptGen) bindCall(call *ast.CallExpr, fn *types.Func, sig *types.Signature) []ptNode {
	var args []ptNode
	argOffset := 0
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := g.info.Selections[sel]; ok && s.Kind() == types.MethodExpr {
				// T.M(recv, args...): the first argument is the receiver.
				if len(call.Args) > 0 {
					recv := g.eval(call.Args[0])
					args = append(args, recv)
					if trackable(sig.Recv().Type()) {
						g.s.addCopy(recv, g.ensureVar(sig.Recv()))
					}
					argOffset = 1
				}
			} else {
				recv := g.eval(sel.X)
				args = append(args, recv)
				if trackable(sig.Recv().Type()) {
					g.s.addCopy(recv, g.ensureVar(sig.Recv()))
				}
			}
		}
	}
	args = append(args, g.bindParams(call, sig, argOffset)...)
	return args
}

// bindParams evaluates call arguments (from argOffset on) and binds them to
// sig's parameters, handling variadic packing.
func (g *ptGen) bindParams(call *ast.CallExpr, sig *types.Signature, argOffset int) []ptNode {
	var args []ptNode
	np := sig.Params().Len()
	for i := argOffset; i < len(call.Args); i++ {
		v := g.eval(call.Args[i])
		args = append(args, v)
		pi := i - argOffset
		if sig.Variadic() && pi >= np-1 {
			pv := sig.Params().At(np - 1)
			if !trackable(pv.Type()) {
				continue
			}
			pn := g.ensureVar(pv)
			if call.Ellipsis.IsValid() {
				g.s.addCopy(v, pn)
			} else {
				// Pack extra arguments into a fresh slice object.
				g.s.addStore(pn, "[]", v, nil)
				if g.s.nodes[pn].ptsList == nil {
					o := g.s.newObject(objAlloc, pv.Type(), call.Pos(), "variadic slice")
					g.s.addObj(pn, o)
				}
			}
			continue
		}
		if pi < np {
			pv := sig.Params().At(pi)
			if trackable(pv.Type()) {
				g.s.addCopy(v, g.ensureVar(pv))
			}
		}
	}
	return args
}

// bindArgs is bindParams for immediately invoked literals (no receiver).
func (g *ptGen) bindArgs(call *ast.CallExpr, sig *types.Signature, argOffset int) []ptNode {
	if sig == nil {
		var args []ptNode
		for _, a := range call.Args {
			args = append(args, g.eval(a))
		}
		return args
	}
	return g.bindParams(call, sig, argOffset)
}

// evalArgsOnly evaluates receiver and arguments without binding them.
func (g *ptGen) evalArgsOnly(call *ast.CallExpr, sig *types.Signature) []ptNode {
	var args []ptNode
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, selOK := g.info.Selections[sel]; !selOK || s.Kind() != types.MethodExpr {
				args = append(args, g.eval(sel.X))
			}
		}
	}
	for _, a := range call.Args {
		args = append(args, g.eval(a))
	}
	return args
}

// ensureResultsFor wraps ensureResults with a nil-signature guard.
func (g *ptGen) ensureResultsFor(k cgKey, sig *types.Signature) []ptNode {
	if sig == nil || sig.Results().Len() == 0 {
		return nil
	}
	return g.ensureResults(k, sig)
}

// epochResults mints fresh per-site objects for each trackable result.
func (g *ptGen) epochResults(sig *types.Signature, pos token.Pos, what string) []ptNode {
	n := sig.Results().Len()
	rs := make([]ptNode, n)
	for i := 0; i < n; i++ {
		rt := sig.Results().At(i).Type()
		if !trackable(rt) {
			rs[i] = ptNone
			continue
		}
		rs[i] = g.epochNode(rt, pos, what)
	}
	return rs
}

// opaqueResults models a call the solver cannot see into: an opaque object
// retains every argument, and each trackable result aliases the arguments
// and the opaque object itself.
func (g *ptGen) opaqueResults(call *ast.CallExpr, sig *types.Signature, args []ptNode, label string) []ptNode {
	o := g.s.newObject(objOpaque, nil, call.Pos(), label)
	on := g.s.newNode("opaque")
	g.s.addObj(on, o)
	for _, a := range args {
		g.s.addStore(on, "[]", a, nil)
	}
	n := sig.Results().Len()
	rs := make([]ptNode, n)
	for i := 0; i < n; i++ {
		if !trackable(sig.Results().At(i).Type()) {
			rs[i] = ptNone
			continue
		}
		r := g.s.newNode("result")
		g.s.addObj(r, o)
		g.s.addLoad(on, "[]", r, nil)
		for _, a := range args {
			g.s.addCopy(a, r)
		}
		rs[i] = r
	}
	return rs
}

func (g *ptGen) evalBuiltin(name string, call *ast.CallExpr) []ptNode {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return []ptNode{ptNone}
		}
		dst := g.eval(call.Args[0])
		t := g.info.TypeOf(call)
		res := g.s.newNode("append")
		o := g.s.newObject(objAlloc, t, call.Pos(), ptTypeLabel(t)+" value")
		g.s.addObj(res, o)
		g.s.addCopy(dst, res)
		for _, a := range call.Args[1:] {
			v := g.eval(a)
			if call.Ellipsis.IsValid() {
				// append(dst, src...): elements flow between slices.
				el := g.s.newNode("spread")
				g.s.addLoad(v, "[]", el, nil)
				g.s.addStore(res, "[]", el, nil)
			} else {
				g.s.addStore(res, "[]", v, nil)
			}
		}
		return []ptNode{res}
	case "copy":
		if len(call.Args) == 2 {
			dst, src := g.eval(call.Args[0]), g.eval(call.Args[1])
			el := g.s.newNode("copy")
			g.s.addLoad(src, "[]", el, nil)
			g.s.addStore(dst, "[]", el, nil)
		}
		return []ptNode{ptNone}
	case "new", "make":
		t := g.info.TypeOf(call)
		if !trackable(t) {
			return []ptNode{ptNone}
		}
		o := g.s.newObject(objAlloc, t, call.Pos(), ptTypeLabel(t)+" value")
		n := g.s.newNode(name)
		g.s.addObj(n, o)
		return []ptNode{n}
	default:
		for _, a := range call.Args {
			g.eval(a)
		}
		return []ptNode{ptNone}
	}
}

// ---- goroutine launches ----

func (g *ptGen) genGo(st *ast.GoStmt) {
	_, info := g.evalCallInfo(st.Call)
	nodes := append([]ptNode(nil), info.args...)
	if info.fun != ptNone {
		nodes = append(nodes, info.fun)
	}
	var kept []ptNode
	for _, n := range nodes {
		if n != ptNone {
			kept = append(kept, n)
		}
	}
	g.seeds = append(g.seeds, ptSeed{
		pos:    st.Pos(),
		p:      g.p,
		inLoop: g.inLoop(st.Pos()),
		nodes:  kept,
	})
}

// isModuleFn reports whether fn is declared inside the analyzed module.
func isModuleFn(fn *types.Func, module string) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == module || strings.HasPrefix(path, module+"/")
}
