// Command hypatialint is the project-specific static-analysis suite for the
// Hypatia codebase. It enforces, as machine-checked rules, the invariants
// the simulator's bit-for-bit determinism rests on — invariants a compiler
// cannot see and a reviewer eventually misses:
//
//	nondeterminism  no wall-clock reads, global math/rand draws, or
//	                map-range-ordered event scheduling inside the
//	                simulator-core packages
//	timeunits       sim.Time <-> float conversions must go through
//	                sim.Seconds()/Time.Seconds(); no float ==/!= outside
//	                tests (zero-sentinel comparisons allowed)
//	droppederror    error results must be handled or discarded with _ =
//	copylock        no by-value copies of sync primitives, sim.Simulator,
//	                or the event heap
//
// Usage:
//
//	go run ./cmd/hypatialint ./...
//	go run ./cmd/hypatialint -list
//	go run ./cmd/hypatialint -simscope internal/sim,internal/engine ./...
//
// A finding can be suppressed for one line with a directive comment on the
// same line or the line above, naming the check and giving a reason:
//
//	//lint:ignore timeunits Seconds is the one sanctioned conversion
//
// The tool is built only on go/parser, go/ast, and go/types: module-local
// imports resolve against the module tree, the standard library through the
// GOROOT source importer. Exit status: 0 clean, 1 findings, 2 usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hypatialint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	simScope := fs.String("simscope", "internal/sim,internal/transport,internal/routing",
		"comma-separated import-path substrings identifying simulator-core packages (scope of the nondeterminism check)")
	list := fs.Bool("list", false, "list the checks and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hypatialint [flags] [packages]")
		fmt.Fprintln(os.Stderr, "packages are directories or ./... patterns; default ./...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, d := range checkDocs {
			fmt.Printf("%-16s %s\n", d[0], d[1])
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint(".", patterns, config{simScope: splitList(*simScope)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypatialint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hypatialint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// lint loads every package matched by patterns (resolved relative to dir)
// and returns the sorted findings.
func lint(dir string, patterns []string, cfg config) ([]Finding, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(l, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	rep := newReporter(l.fset)
	for _, d := range dirs {
		path, err := l.importPath(d)
		if err != nil {
			return nil, err
		}
		p, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		lintPackage(p, cfg, rep)
	}
	return rep.sorted(), nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
