// Command hypatialint is the project-specific static-analysis suite for the
// Hypatia codebase. It enforces, as machine-checked rules, the invariants
// the simulator's bit-for-bit determinism rests on — invariants a compiler
// cannot see and a reviewer eventually misses:
//
//	nondeterminism  no wall-clock reads, global math/rand draws, or
//	                map-range-ordered event scheduling inside the
//	                simulator-core packages
//	timeunits       sim.Time <-> float conversions must go through
//	                sim.Seconds()/Time.Seconds(); no float ==/!= outside
//	                tests (zero-sentinel comparisons allowed)
//	droppederror    error results must be handled or discarded with _ =
//	copylock        no by-value copies of sync primitives, sim.Simulator,
//	                or the event heap
//
// On top of these per-statement rules sit three flow-sensitive families,
// built on a per-function control-flow graph, a forward dataflow engine,
// and a module-local call graph:
//
//	lifecycle       pooled routing.ForwardingTable values must not be used
//	                after Release, released twice, or leaked on an
//	                early-return path
//	unitsafety      degrees/radians/meters/kilometers/seconds are tracked
//	                through assignments and calls; mixing units or passing
//	                one where another is expected is a finding
//	locksafety      a struct field accessed on both sides of a go statement
//	                must be written under a held lock, handed off on a
//	                channel, or written only before the launch
//	staleignore     a //lint:ignore directive that no longer matches any
//	                finding is itself reported, so suppressions cannot
//	                outlive the code they excused
//
// An interprocedural effect analysis — a bottom-up fixpoint over the
// strongly-connected components of the module-local call graph — backs the
// final pair:
//
//	purity          //hypatia:pure is a checked contract: an annotated
//	                function must be free of global writes, wall-clock and
//	                rand reads, I/O, and map-order leaks, and may call only
//	                annotated functions; on a named function type or an
//	                interface the annotation blesses calls through it and
//	                obligates module-local implementers; goroutine bodies in
//	                -purescope packages are held to the worker contract
//	                (channels and arena writes allowed)
//	confinement     //hypatia:confined on a type or struct field is a
//	                machine-proven ownership contract: an Andersen-style
//	                points-to analysis over the call graph proves each such
//	                value reachable from at most one goroutine at a time,
//	                with channel send/receive and //hypatia:transfer calls
//	                as the only ownership-transfer points; violations report
//	                the full allocation→escape path
//	handlesafety    //hypatia:handle(<domain>) types the raw integer handles
//	                of the struct-of-arrays simulator core: a flow-sensitive
//	                taint lattice proves every index into an annotated array
//	                carries the matching domain; //hypatia:epoch operations
//	                (ring advance, graph.Reset, CloneInto) invalidate
//	                outstanding handles, and a handle used after an
//	                invalidation on any path is reported with the full
//	                acquire → invalidate → use chain; switches over a
//	                //hypatia:exhaustive tag type must cover every constant
//	                or carry a default
//	allocsafety     //hypatia:noalloc is a checked contract: a bottom-up
//	                fixpoint over the call graph assigns every function an
//	                allocation class — NoAlloc, AmortizedGrow (append into
//	                caller-owned arenas, capacity-guarded make, sync.Pool
//	                misses), or Allocates — and an annotated function whose
//	                steady-state path allocates is a finding with the full
//	                allocation-origin call chain; //hypatia:allocs(amortized)
//	                downgrades a justified growth site, and a named function
//	                type annotated //hypatia:noalloc blesses dynamic calls
//	                through its values
//	directive       //lint: and //hypatia: comments that are malformed,
//	                name an unknown directive, or sit where they take no
//	                effect
//
// The command line runs through a cached, parallel driver: packages are
// type-checked concurrently along the import DAG, and per-package findings
// are persisted under .hypatialint-cache/ (override with -cache, disable
// with -nocache) keyed by analyzer schema, toolchain, configuration, and
// the transitive content hash — warm runs over an unchanged tree reproduce
// the cold output byte for byte without type-checking anything.
//
// Usage:
//
//	go run ./cmd/hypatialint ./...
//	go run ./cmd/hypatialint -list
//	go run ./cmd/hypatialint -json ./... | jq .
//	go run ./cmd/hypatialint -simscope internal/sim,internal/engine ./...
//	go run ./cmd/hypatialint -nocache ./...
//
// A finding can be suppressed for one line with a directive comment on the
// same line or the line above, naming the check and giving a reason:
//
//	//lint:ignore timeunits Seconds is the one sanctioned conversion
//
// With -json the tool prints every finding — suppressed ones included, with
// their suppression state — as a JSON array of objects with fields check,
// file, line, col, message, suppressed. The exit status in both modes
// reflects unsuppressed findings only.
//
// The tool is built only on go/parser, go/ast, and go/types: module-local
// imports resolve against the module tree, the standard library through the
// GOROOT source importer. Exit status: 0 clean, 1 findings, 2 usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hypatialint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	simScope := fs.String("simscope", "internal/sim,internal/transport,internal/routing,internal/core,cmd/hypatialint",
		"comma-separated import-path substrings identifying simulator-core packages (scope of the nondeterminism check); the analyzer lints itself — warm-cache output must be byte-identical, so it is held to the same determinism bar")
	unitScope := fs.String("unitscope", "internal/orbit,internal/geom,internal/tle",
		"comma-separated import-path substrings identifying orbit-math packages (scope of the unitsafety check)")
	lockScope := fs.String("lockscope", "internal/core,cmd/hypatialint",
		"comma-separated import-path substrings identifying event-loop/worker packages (scope of the locksafety check); includes the analyzer's own parallel driver")
	pureScope := fs.String("purescope", "internal/core",
		"comma-separated import-path substrings identifying pipeline packages whose goroutine bodies are held to the purity contract")
	handleScope := fs.String("handlescope", "internal/sim,internal/graph,internal/routing",
		"comma-separated import-path substrings identifying struct-of-arrays packages (scope of the handlesafety check)")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array (includes suppressed findings with their state)")
	cacheDir := fs.String("cache", "", "fact-cache directory (default <module root>/.hypatialint-cache)")
	noCache := fs.Bool("nocache", false, "disable the on-disk fact cache (packages are still loaded in parallel)")
	list := fs.Bool("list", false, "list the checks and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hypatialint [flags] [packages]")
		fmt.Fprintln(os.Stderr, "packages are directories or ./... patterns; default ./...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, d := range checkDocs {
			fmt.Printf("%-16s %s\n", d[0], d[1])
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := config{
		simScope:    splitList(*simScope),
		unitScope:   splitList(*unitScope),
		lockScope:   splitList(*lockScope),
		pureScope:   splitList(*pureScope),
		handleScope: splitList(*handleScope),
	}
	findings, err := lintDriver(".", patterns, cfg, *cacheDir, !*noCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypatialint:", err)
		return 2
	}
	unsuppressed := 0
	for _, f := range findings {
		if !f.Suppressed {
			unsuppressed++
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "hypatialint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if !f.Suppressed {
				fmt.Println(f)
			}
		}
	}
	if unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "hypatialint: %d finding(s)\n", unsuppressed)
		return 1
	}
	return 0
}

// jsonFinding is the stable -json schema for one finding.
type jsonFinding struct {
	Check      string `json:"check"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func writeJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Check:      f.Check,
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Message:    f.Msg,
			Suppressed: f.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// lint loads every package matched by patterns (resolved relative to dir),
// builds the module-local call graph over everything the loader pulled in,
// and returns the sorted findings (suppressed ones included). It is the
// serial, uncached path the tests exercise; the command line goes through
// lintDriver.
func lint(dir string, patterns []string, cfg config) ([]Finding, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(l, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	var targets []*pkg
	for _, d := range dirs {
		path, err := l.importPath(d)
		if err != nil {
			return nil, err
		}
		p, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		targets = append(targets, p)
	}
	findings, _ := analyzeTargets(l, targets, cfg)
	return findings, nil
}

// analyzeTargets runs every check family over the given targets. The call
// graph and unit summaries cover every loaded module-local package —
// targets plus dependencies — so interprocedural facts do not stop at the
// lint-target boundary.
func analyzeTargets(l *loader, targets []*pkg, cfg config) ([]Finding, *effectAnalysis) {
	var all []*pkg
	for _, p := range l.cache {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].path < all[j].path })
	cg := buildCallGraph(all)
	rep := newReporter(l.fset)
	cfg.module = l.module
	an := lintPackages(targets, all, cg, cfg, rep)
	return rep.sorted(), an
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
