package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are the package-level time functions that read or depend
// on the wall clock. Any of them inside simulator code breaks determinism:
// simulated time must come from sim.Simulator.Now and sim scheduling.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandCtors are the math/rand package-level functions that are safe
// in simulator code because they only construct explicitly seeded
// generators rather than drawing from the global, time-seeded source.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// checkNondeterminismPkg enforces "no wall clock / nondeterminism in sim
// code": inside simulator-core packages it flags wall-clock time functions,
// draws from the global math/rand source, and events scheduled from inside
// a map-range loop (map iteration order is randomized per run, so the event
// sequence — and therefore the whole simulation — diverges across runs).
func checkNondeterminismPkg(p *pkg, cfg config, rep *reporter) {
	if !inSimScope(p.path, cfg.simScope) {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := p.info.Uses[n.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods (e.g. on an explicitly seeded *rand.Rand) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClockFuncs[fn.Name()] {
						rep.add(n.Pos(), checkNondeterminism,
							fmt.Sprintf("time.%s reads the wall clock: simulator code must derive all times from sim.Simulator", fn.Name()))
					}
				case "math/rand", "math/rand/v2":
					if !seededRandCtors[fn.Name()] {
						rep.add(n.Pos(), checkNondeterminism,
							fmt.Sprintf("rand.%s draws from the global, nondeterministically seeded source: use rand.New(rand.NewSource(seed))", fn.Name()))
					}
				}
			case *ast.RangeStmt:
				t := p.info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name, ok := schedulingCall(p.info, call); ok {
						rep.add(call.Pos(), checkNondeterminism,
							fmt.Sprintf("%s inside a map-range loop: map iteration order is randomized per process, so the event order diverges across runs; iterate sorted keys instead", name))
					}
					return true
				})
			}
			return true
		})
	}
}

// schedulingCall reports whether call schedules simulator events: a method
// named Schedule/ScheduleAt on sim.Simulator, or Send on sim.Network (which
// enqueues a transmission event chain).
func schedulingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection := info.Selections[sel]
	if selection == nil {
		return "", false
	}
	path, recv, ok := namedType(selection.Recv())
	if !ok || !strings.HasSuffix(path, "internal/sim") {
		return "", false
	}
	name := sel.Sel.Name
	if (recv == "Simulator" && (name == "Schedule" || name == "ScheduleAt")) ||
		(recv == "Network" && name == "Send") {
		return recv + "." + name, true
	}
	return "", false
}
