package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkCopyLockPkg enforces mutex/copy safety: values whose type contains a
// sync primitive (anything with a Lock method, matching go vet's rule), the
// simulator engine, or its event heap must never be copied by value — a
// copy forks the lock or the event queue and the two halves silently
// diverge. Flagged sites:
//
//   - function parameters and value receivers declared with such a type,
//   - assignments whose right-hand side is an existing value (not a fresh
//     composite literal or call result),
//   - range clauses that copy such values out of a slice/map/array,
//   - composite-literal elements copying an existing value.
func checkCopyLockPkg(p *pkg, rep *reporter) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldList(p, n.Recv, "receiver", rep)
				}
				if n.Type.Params != nil {
					checkFieldList(p, n.Type.Params, "parameter", rep)
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkFieldList(p, n.Type.Params, "parameter", rep)
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// _ = x discards rather than copies.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkValueCopy(p, rhs, "assignment copies", rep)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkValueCopy(p, v, "variable initialization copies", rep)
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					checkValueCopy(p, elt, "composite literal copies", rep)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := p.info.TypeOf(n.Value); t != nil {
						if why, bad := noCopyType(t); bad {
							rep.add(n.Value.Pos(), checkCopyLock,
								fmt.Sprintf("range clause copies %s by value each iteration; range over indices and take pointers", why))
						}
					}
				}
			}
			return true
		})
	}
}

// checkFieldList flags by-value no-copy types in a receiver/parameter list.
func checkFieldList(p *pkg, fields *ast.FieldList, kind string, rep *reporter) {
	for _, field := range fields.List {
		t := p.info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if why, bad := noCopyType(t); bad {
			rep.add(field.Type.Pos(), checkCopyLock,
				fmt.Sprintf("%s passes %s by value; use a pointer", kind, why))
		}
	}
}

// checkValueCopy flags expressions that copy an existing no-copy value.
// Fresh values — composite literals, call results, conversions — are fine:
// nothing else aliases them yet.
func checkValueCopy(p *pkg, e ast.Expr, how string, rep *reporter) {
	if !isExistingValue(e) {
		return
	}
	t := p.info.TypeOf(e)
	if t == nil {
		return
	}
	if why, bad := noCopyType(t); bad {
		rep.add(e.Pos(), checkCopyLock, fmt.Sprintf("%s %s by value; copy a pointer instead", how, why))
	}
}

// isExistingValue reports whether e denotes a value that already exists
// elsewhere (so copying it forks shared state), as opposed to a freshly
// constructed one.
func isExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// noCopyType reports whether t must not be copied by value, and names the
// offending component. It matches go vet's copylocks rule — any type whose
// value or pointer method set contains Lock — extended with the simulator
// engine types, whose copies fork the event queue.
func noCopyType(t types.Type) (string, bool) {
	return noCopy(t, map[types.Type]bool{})
}

func noCopy(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	if _, isPtr := t.(*types.Pointer); isPtr {
		return "", false // copying a pointer shares, not forks
	}
	if path, name, ok := namedType(t); ok {
		if types.IsInterface(t.Underlying()) {
			return "", false // interfaces hold references; copying one is fine
		}
		if hasLockMethod(t) {
			return typeLabel(path, name), true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			// A struct holding the engine's event heap (sim.Simulator) must
			// never be copied: the copy forks the event queue and the two
			// engines silently diverge. The heap type itself may use value
			// receivers (the standard container/heap slice idiom).
			if path, name, ok := namedType(ft); ok &&
				strings.HasSuffix(path, "internal/sim") && (name == "eventHeap" || name == "Simulator") {
				return "a struct containing sim." + name + " (the event engine)", true
			}
			if why, bad := noCopy(ft, seen); bad {
				return why, true
			}
		}
	case *types.Array:
		return noCopy(u.Elem(), seen)
	}
	return "", false
}

// hasLockMethod reports whether *T has a Lock method (vet's copylocks
// heuristic for "this is a lock").
func hasLockMethod(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); !isPtr {
		t = types.NewPointer(t)
	}
	m, _, _ := types.LookupFieldOrMethod(t, false, nil, "Lock")
	fn, ok := m.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func typeLabel(path, name string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	if path == "" {
		return name
	}
	return path + "." + name
}
