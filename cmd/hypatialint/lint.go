package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The check families. Each finding carries one of these names, and each can
// be suppressed per line with `//lint:ignore <check> <reason>`.
const (
	checkNondeterminism = "nondeterminism" // wall clock, unseeded rand, map-order event scheduling
	checkTimeUnits      = "timeunits"      // raw float<->sim.Time conversions, float equality
	checkDroppedError   = "droppederror"   // discarded error results
	checkCopyLock       = "copylock"       // by-value copies of sync primitives / the engine
	checkDirective      = "directive"      // malformed //lint: comments
)

// checkDocs is the one-line documentation per check, for -list.
var checkDocs = [][2]string{
	{checkNondeterminism, "no wall-clock time, unseeded math/rand, or map-range-ordered event scheduling in simulator-core packages"},
	{checkTimeUnits, "sim.Time/float conversions must go through sim.Seconds()/Time.Seconds(); no float ==/!= outside tests (zero-sentinel compares allowed)"},
	{checkDroppedError, "error results must be handled or explicitly discarded with _ ="},
	{checkCopyLock, "no by-value copies of types containing sync primitives, sim.Simulator, or the event heap"},
	{checkDirective, "//lint:ignore directives must name a check and give a reason"},
}

// Finding is one reported lint violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// reporter accumulates findings and applies per-line suppressions.
type reporter struct {
	fset     *token.FileSet
	findings []Finding
	// suppressed maps filename -> line -> set of check names ignored on
	// that line (an ignore comment covers its own line and the next).
	suppressed map[string]map[int]map[string]bool
}

func newReporter(fset *token.FileSet) *reporter {
	return &reporter{fset: fset, suppressed: map[string]map[int]map[string]bool{}}
}

// add records a finding at pos unless a matching //lint:ignore covers it.
func (r *reporter) add(pos token.Pos, check, msg string) {
	p := r.fset.Position(pos)
	if lines, ok := r.suppressed[p.Filename]; ok {
		if checks, ok := lines[p.Line]; ok && (checks[check] || checks["*"]) {
			return
		}
	}
	r.findings = append(r.findings, Finding{Pos: p, Check: check, Msg: msg})
}

// sorted returns the findings in file/line/column order.
func (r *reporter) sorted() []Finding {
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i].Pos, r.findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return r.findings
}

// collectSuppressions scans a file's comments for //lint:ignore directives
// and registers them with the reporter. A directive written on its own line
// suppresses the next line; a trailing directive suppresses its own line.
// Malformed directives (missing check name or reason) are themselves
// reported under the "directive" check.
func (r *reporter) collectSuppressions(file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			pos := r.fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) == 0 || fields[0] != "ignore" {
				r.findings = append(r.findings, Finding{Pos: pos, Check: checkDirective,
					Msg: fmt.Sprintf("unknown lint directive %q (only //lint:ignore <check> <reason> is supported)", "lint:"+text)})
				continue
			}
			if len(fields) < 3 {
				r.findings = append(r.findings, Finding{Pos: pos, Check: checkDirective,
					Msg: "malformed //lint:ignore: want //lint:ignore <check> <reason>"})
				continue
			}
			check := fields[1]
			if !knownCheck(check) {
				r.findings = append(r.findings, Finding{Pos: pos, Check: checkDirective,
					Msg: fmt.Sprintf("//lint:ignore names unknown check %q", check)})
				continue
			}
			lines := r.suppressed[pos.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				r.suppressed[pos.Filename] = lines
			}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				if lines[line] == nil {
					lines[line] = map[string]bool{}
				}
				lines[line][check] = true
			}
		}
	}
}

func knownCheck(name string) bool {
	if name == "*" {
		return true
	}
	for _, d := range checkDocs {
		if d[0] == name {
			return true
		}
	}
	return false
}

// config carries the linter settings.
type config struct {
	// simScope lists import-path substrings identifying simulator-core
	// packages, where the nondeterminism check applies.
	simScope []string
}

// lintPackage runs every check family over one loaded package.
func lintPackage(p *pkg, cfg config, rep *reporter) {
	for _, f := range p.files {
		rep.collectSuppressions(f)
	}
	checkNondeterminismPkg(p, cfg, rep)
	checkTimeUnitsPkg(p, rep)
	checkDroppedErrorPkg(p, rep)
	checkCopyLockPkg(p, rep)
}

// inSimScope reports whether the package's import path falls inside the
// simulator core for the purposes of the nondeterminism check.
func inSimScope(path string, scope []string) bool {
	for _, s := range scope {
		if s != "" && strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// ---- shared type helpers ----

// namedType returns the named type and its qualified (pkgpath, name) if t
// is (a pointer to) a defined type.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj == nil {
		return "", "", false
	}
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return path, obj.Name(), true
}

// isSimTime reports whether t is the simulator's Time type.
func isSimTime(t types.Type) bool {
	if t == nil {
		return false
	}
	path, name, ok := namedType(t)
	return ok && name == "Time" && strings.HasSuffix(path, "internal/sim")
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
