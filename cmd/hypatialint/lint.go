package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The check families. Each finding carries one of these names, and each can
// be suppressed per line with `//lint:ignore <check> <reason>`.
const (
	checkNondeterminism = "nondeterminism" // wall clock, unseeded rand, map-order event scheduling
	checkTimeUnits      = "timeunits"      // raw float<->sim.Time conversions, float equality
	checkDroppedError   = "droppederror"   // discarded error results
	checkCopyLock       = "copylock"       // by-value copies of sync primitives / the engine
	checkLifecycle      = "lifecycle"      // use-after-Release / double-Release / leaked forwarding tables
	checkUnitSafety     = "unitsafety"     // degrees/radians/meters/seconds taint reaching a mismatched sink
	checkLockSafety     = "locksafety"     // unguarded writes to state shared across a go statement
	checkStaleIgnore    = "staleignore"    // //lint:ignore directives that no longer match any finding
	checkPurity         = "purity"         // //hypatia:pure contract violations and unannotated pipeline callees
	checkConfinement    = "confinement"    // //hypatia:confined values reachable from more than one goroutine
	checkHandleSafety   = "handlesafety"   // wrong-domain or stale handles indexing annotated arrays; non-exhaustive tag switches
	checkAllocSafety    = "allocsafety"    // //hypatia:noalloc functions allocating on the steady-state path
	checkDirective      = "directive"      // malformed //lint: or //hypatia: comments
)

// checkDocs is the one-line documentation per check, for -list.
var checkDocs = [][2]string{
	{checkNondeterminism, "no wall-clock time, unseeded math/rand, or map-range-ordered event scheduling in simulator-core packages"},
	{checkTimeUnits, "sim.Time/float conversions must go through sim.Seconds()/Time.Seconds(); no float ==/!= outside tests (zero-sentinel compares allowed)"},
	{checkDroppedError, "error results must be handled or explicitly discarded with _ ="},
	{checkCopyLock, "no by-value copies of types containing sync primitives, sim.Simulator, or the event heap"},
	{checkLifecycle, "pooled forwarding tables must not be used after Release, released twice, or leaked on early-return paths"},
	{checkUnitSafety, "degrees/radians/meters/kilometers/seconds must not mix or reach a sink expecting another unit"},
	{checkLockSafety, "fields accessed from both sides of a go statement must be written under a lock, over a channel, or before launch"},
	{checkStaleIgnore, "//lint:ignore directives must still match a finding; delete them when the code is fixed"},
	{checkPurity, "//hypatia:pure functions must be effect-free and call only annotated functions; pipeline goroutine bodies are held to the worker contract"},
	{checkConfinement, "//hypatia:confined values must stay reachable from at most one goroutine; ownership transfers only over channels or //hypatia:transfer calls"},
	{checkHandleSafety, "indexes into //hypatia:handle arrays must carry the matching domain and predate no //hypatia:epoch invalidation; switches over //hypatia:exhaustive tags must cover every constant or have a default"},
	{checkAllocSafety, "//hypatia:noalloc functions must not allocate on the steady-state path; caller-owned arena growth and //hypatia:allocs(amortized) sites are the only allowances"},
	{checkDirective, "//lint:ignore directives must name a check and give a reason; //hypatia: comments must be valid and take effect"},
}

// Finding is one reported lint violation. Suppressed findings (matched by a
// //lint:ignore directive) are retained so -json can show them, but they do
// not affect the exit status.
type Finding struct {
	Pos        token.Position
	Check      string
	Msg        string
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// directive is one parsed //lint:ignore comment. used flips when a finding
// matches it; directives still unused after every check has run are
// themselves findings (staleignore).
type directive struct {
	pos   token.Pos
	check string
	used  bool
}

// reporter accumulates findings and applies per-line suppressions.
type reporter struct {
	fset     *token.FileSet
	findings []Finding
	// byLine maps filename -> line -> directives covering that line (an
	// ignore comment covers its own line and the next).
	byLine     map[string]map[int][]*directive
	directives []*directive
}

func newReporter(fset *token.FileSet) *reporter {
	return &reporter{fset: fset, byLine: map[string]map[int][]*directive{}}
}

// add records a finding at pos; a matching //lint:ignore marks it suppressed
// (and the directive used) instead of dropping it.
func (r *reporter) add(pos token.Pos, check, msg string) {
	p := r.fset.Position(pos)
	suppressed := false
	for _, d := range r.byLine[p.Filename][p.Line] {
		if d.check == check || d.check == "*" {
			d.used = true
			suppressed = true
		}
	}
	r.findings = append(r.findings, Finding{Pos: p, Check: check, Msg: msg, Suppressed: suppressed})
}

// reportStale turns every directive that matched no finding into a
// staleignore finding. Call after all checks have run.
func (r *reporter) reportStale() {
	for _, d := range r.directives {
		if !d.used {
			r.add(d.pos, checkStaleIgnore,
				fmt.Sprintf("//lint:ignore %s matches no finding; the code is clean, delete the directive", d.check))
		}
	}
}

// sorted returns the findings in file/line/column order.
func (r *reporter) sorted() []Finding {
	sortFindings(r.findings)
	return r.findings
}

// sortFindings orders findings by file/line/column/check/message, stably.
// The driver relies on the stability: cached entries hold each package's
// findings in their cold-run order, so re-sorting the assembled mix of
// cached and fresh findings reproduces the cold output byte for byte. The
// check-name tiebreak keeps co-located findings from different families in
// a fixed order regardless of which family ran first, and the message
// tiebreak makes the order a pure function of the findings' content even
// when one check reports twice at the same position.
func sortFindings(findings []Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if findings[i].Check != findings[j].Check {
			return findings[i].Check < findings[j].Check
		}
		return findings[i].Msg < findings[j].Msg
	})
}

// collectSuppressions scans a file's comments for //lint:ignore directives
// and registers them with the reporter. A directive written on its own line
// suppresses the next line; a trailing directive suppresses its own line.
// Malformed directives (missing check name or reason) are themselves
// reported under the "directive" check.
func (r *reporter) collectSuppressions(file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			pos := r.fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) == 0 || fields[0] != "ignore" {
				r.findings = append(r.findings, Finding{Pos: pos, Check: checkDirective,
					Msg: fmt.Sprintf("unknown lint directive %q (only //lint:ignore <check> <reason> is supported)", "lint:"+text)})
				continue
			}
			if len(fields) < 3 {
				r.findings = append(r.findings, Finding{Pos: pos, Check: checkDirective,
					Msg: "malformed //lint:ignore: want //lint:ignore <check> <reason>"})
				continue
			}
			check := fields[1]
			if !knownCheck(check) {
				r.findings = append(r.findings, Finding{Pos: pos, Check: checkDirective,
					Msg: fmt.Sprintf("//lint:ignore names unknown check %q", check)})
				continue
			}
			d := &directive{pos: c.Pos(), check: check}
			r.directives = append(r.directives, d)
			lines := r.byLine[pos.Filename]
			if lines == nil {
				lines = map[int][]*directive{}
				r.byLine[pos.Filename] = lines
			}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				lines[line] = append(lines[line], d)
			}
		}
	}
}

func knownCheck(name string) bool {
	if name == "*" {
		return true
	}
	for _, d := range checkDocs {
		if d[0] == name {
			return true
		}
	}
	return false
}

// config carries the linter settings.
type config struct {
	// simScope lists import-path substrings identifying simulator-core
	// packages, where the nondeterminism check applies.
	simScope []string
	// unitScope identifies the orbit-math packages, where the unitsafety
	// dataflow applies.
	unitScope []string
	// lockScope identifies the packages built around the event-loop/worker
	// split, where the locksafety check applies.
	lockScope []string
	// pureScope identifies the packages whose goroutine bodies are pipeline
	// workers, held to the purity root contract.
	pureScope []string
	// handleScope identifies the struct-of-arrays packages, where the
	// handlesafety domain/epoch dataflow applies.
	handleScope []string
	// module is the module path of the tree under analysis, filled in by
	// lint() from go.mod; the effect analysis uses it to tell module-local
	// bodyless callees (interface methods) from standard-library calls.
	module string
}

// lintPackages runs every check family: per-package checks over the lint
// targets, then the interprocedural families over the call graph built from
// all loaded packages, then the stale-suppression sweep. It returns the
// effect analysis so the cached driver can persist per-package summaries.
func lintPackages(targets, all []*pkg, cg *callGraph, cfg config, rep *reporter) *effectAnalysis {
	for _, p := range targets {
		for _, f := range p.files {
			rep.collectSuppressions(f)
		}
	}
	for _, p := range targets {
		checkNondeterminismPkg(p, cfg, rep)
		checkTimeUnitsPkg(p, rep)
		checkDroppedErrorPkg(p, rep)
		checkCopyLockPkg(p, rep)
		checkLifecyclePkg(p, rep)
	}
	checkUnitSafetyPkgs(targets, all, cfg, rep)
	hx := collectHandleDirectives(all)
	// handlesafety runs before the purity pass so coercion directives are
	// already marked honored when checkDirectiveComments validates them.
	checkHandleSafetyPkgs(targets, all, cfg, hx, rep)
	conf := collectConfinementDirectives(all)
	checkLockSafetyPkgs(targets, cg, cfg, conf, rep)
	// The allocation analysis runs before the purity pass so its directive
	// index is complete when checkDirectiveComments validates //hypatia:
	// comments.
	ax := analyzeAllocs(all, cg, cfg.module)
	an := checkPurityPkgs(targets, all, cg, cfg, conf, hx, ax, rep)
	an.conf = conf
	an.handles = hx
	an.allocs = ax
	checkAllocSafetyPkgs(targets, ax, rep)
	checkConfinementPkgs(targets, all, cg, an, conf, cfg, rep)
	rep.reportStale()
	return an
}

// inSimScope reports whether the package's import path falls inside the
// given scope list (substring match, as for all scope flags).
func inSimScope(path string, scope []string) bool {
	for _, s := range scope {
		if s != "" && strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// ---- shared type helpers ----

// namedType returns the named type and its qualified (pkgpath, name) if t
// is (a pointer to) a defined type.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj == nil {
		return "", "", false
	}
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return path, obj.Name(), true
}

// isSimTime reports whether t is the simulator's Time type.
func isSimTime(t types.Type) bool {
	if t == nil {
		return false
	}
	path, name, ok := namedType(t)
	return ok && name == "Time" && strings.HasSuffix(path, "internal/sim")
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
