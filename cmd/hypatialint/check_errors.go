package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkDroppedErrorPkg enforces error discipline: a call whose error result
// is silently discarded — as an expression statement, in a go statement, or
// in a defer — is flagged. Deliberate discards must be written as `_ = f()`
// so the intent is visible in the code and in review.
//
// A small, documented set of callees is excluded because they cannot fail
// in practice:
//   - fmt.Print/Printf/Println (process stdout),
//   - fmt.Fprint* when the writer is os.Stdout, os.Stderr, a
//     *bytes.Buffer, or a *strings.Builder,
//   - any method on bytes.Buffer or strings.Builder (documented to never
//     return a non-nil error).
func checkDroppedErrorPkg(p *pkg, rep *reporter) {
	flag := func(call *ast.CallExpr, how string) {
		t := p.info.TypeOf(call)
		if t == nil || !returnsError(t) || excludedCallee(p.info, call) {
			return
		}
		rep.add(call.Pos(), checkDroppedError,
			how+" discards its error result; handle it or discard explicitly with _ =")
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					flag(call, "call")
				}
			case *ast.GoStmt:
				flag(n.Call, "go statement")
			case *ast.DeferStmt:
				flag(n.Call, "deferred call")
			}
			return true
		})
	}
}

// returnsError reports whether a call result type is or contains error.
func returnsError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var universeError = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, universeError)
}

// excludedCallee reports whether the called function is on the documented
// cannot-fail exclusion list.
func excludedCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() != nil {
		// Methods on the never-failing in-memory writers.
		path, name, ok := namedType(sig.Recv().Type())
		return ok && ((path == "bytes" && name == "Buffer") ||
			(path == "strings" && name == "Builder"))
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	if name == "Print" || name == "Printf" || name == "Println" {
		return true
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		return infallibleWriter(info, call.Args[0])
	}
	return false
}

// infallibleWriter reports whether the expression is a writer that cannot
// return a write error in practice: os.Stdout, os.Stderr, *bytes.Buffer, or
// *strings.Builder.
func infallibleWriter(info *types.Info, w ast.Expr) bool {
	w = ast.Unparen(w)
	if u, ok := w.(*ast.UnaryExpr); ok { // &buf
		w = u.X
	}
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
			if n := obj.Name(); n == "Stdout" || n == "Stderr" {
				return true
			}
		}
	}
	path, name, ok := namedType(info.TypeOf(w))
	return ok && ((path == "bytes" && name == "Buffer") ||
		(path == "strings" && name == "Builder"))
}
