package main

// The locksafety check: struct fields accessed from both the event-loop
// side and the goroutine side of the pipeline packages must be guarded.
//
// The call graph's go-statement edges split the program in two. The
// goroutine side is everything reachable from a go-launched function or
// literal (following further launches and plain calls); the event-loop side
// is everything reachable from the scope's ordinary functions WITHOUT
// crossing a go edge. A struct field accessed on both sides is shared
// state, and every write to it must be protected, or the write races with
// the other side.
//
// A write to a shared field is exempt when:
//   - the field's type is a channel (the handoff IS the synchronization),
//   - the field's type is declared in sync or sync/atomic, or transitively
//     contains a lock (noCopyType) — such fields synchronize themselves,
//   - a mutex is provably held at the write (a must-dataflow over the CFG:
//     X.Lock()/X.RLock() adds X to the held set, Unlock removes it, paths
//     join by intersection),
//   - the write happens before any goroutine is launched: in a function
//     whose body contains the go statements, writes not reachable from any
//     launch site are constructor-time initialization.
//
// The analysis is field-level (instance-insensitive) and only statically
// resolved calls produce call-graph edges, so a write through an interface
// method can be missed; the scope default keeps the check on the packages
// built around the event-loop/worker split, where the convention is strict.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// lockAccess is one field access site inside a call-graph node.
type lockAccess struct {
	sel   *ast.SelectorExpr
	fn    cgKey
	write bool
}

func checkLockSafetyPkgs(targets []*pkg, cg *callGraph, cfg config, conf *confIndex, rep *reporter) {
	var scope []*pkg
	inScope := map[*pkg]bool{}
	for _, p := range targets {
		if inSimScope(p.path, cfg.lockScope) {
			scope = append(scope, p)
			inScope[p] = true
		}
	}
	if len(scope) == 0 {
		return
	}

	// Split the scope's call graph into goroutine side and event-loop side.
	var goRoots []cgKey
	for _, p := range scope {
		for _, node := range cg.funcsIn[p] {
			for _, e := range cg.edges[node] {
				if e.viaGo {
					goRoots = append(goRoots, e.callee)
				}
			}
		}
	}
	if len(goRoots) == 0 {
		return // no concurrency in scope: nothing can race
	}
	goSide := cg.reach(goRoots, true)
	// Event-loop entry points are the scope functions the goroutine side
	// cannot reach: launched bodies and their private helpers are excluded,
	// while a function genuinely called from BOTH sides still lands in
	// loopSide through its loop-side callers during the traversal.
	var loopRoots []cgKey
	for _, p := range scope {
		for _, node := range cg.funcsIn[p] {
			if !goSide[node] {
				loopRoots = append(loopRoots, node)
			}
		}
	}
	loopSide := cg.reach(loopRoots, false)

	// Collect every field access in scope-package bodies on either side.
	perField := map[*types.Var][]lockAccess{}
	fieldOrder := []*types.Var{}
	for _, p := range scope {
		for _, node := range cg.funcsIn[p] {
			if !goSide[node] && !loopSide[node] {
				continue
			}
			for _, acc := range collectFieldAccesses(p, cg.body[node], node) {
				if _, seen := perField[acc.field]; !seen {
					fieldOrder = append(fieldOrder, acc.field)
				}
				perField[acc.field] = append(perField[acc.field], acc.lockAccess)
			}
		}
	}

	// A field is shared when both sides touch it and someone writes it.
	for _, field := range fieldOrder {
		accs := perField[field]
		var onGo, onLoop, anyWrite bool
		for _, a := range accs {
			if goSide[a.fn] {
				onGo = true
			}
			if loopSide[a.fn] {
				onLoop = true
			}
			anyWrite = anyWrite || a.write
		}
		if !onGo || !onLoop || !anyWrite || exemptLockField(field, conf) {
			continue
		}
		// Group this field's candidate writes by function and run the
		// held-locks dataflow once per function.
		byFn := map[cgKey][]*ast.SelectorExpr{}
		var fnOrder []cgKey
		for _, a := range accs {
			if !a.write {
				continue
			}
			if len(byFn[a.fn]) == 0 {
				fnOrder = append(fnOrder, a.fn)
			}
			byFn[a.fn] = append(byFn[a.fn], a.sel)
		}
		for _, fn := range fnOrder {
			reportUnguardedWrites(cg, fn, field, byFn[fn], goSide, loopSide, rep)
		}
	}
}

type fieldAccess struct {
	lockAccess
	field *types.Var
}

// collectFieldAccesses walks one call-graph node's body (not descending
// into nested function literals — those are their own nodes) and records
// struct-field reads and writes.
func collectFieldAccesses(p *pkg, body *ast.BlockStmt, node cgKey) []fieldAccess {
	if body == nil {
		return nil
	}
	// First pass: mark the selector expressions that are assignment targets.
	written := map[ast.Expr]bool{}
	markWrite := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		// p.f = x writes f; p.f[i] = x and *p.f = x mutate what f holds.
		for {
			switch e := lhs.(type) {
			case *ast.IndexExpr:
				lhs = ast.Unparen(e.X)
				continue
			case *ast.StarExpr:
				lhs = ast.Unparen(e.X)
				continue
			}
			break
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			written[sel] = true
		}
	}
	skipLits := func(fn func(ast.Node) bool) func(ast.Node) bool {
		return func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != nil {
				return false
			}
			return fn(n)
		}
	}
	ast.Inspect(body, skipLits(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		}
		return true
	}))
	var out []fieldAccess
	ast.Inspect(body, skipLits(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if field, ok := p.info.Uses[sel.Sel].(*types.Var); ok && field.IsField() {
			out = append(out, fieldAccess{
				lockAccess: lockAccess{sel: sel, fn: node, write: written[sel]},
				field:      field,
			})
		}
		return true
	}))
	return out
}

// exemptLockField reports whether a field synchronizes itself, or is exempt
// because the confinement analysis owns it: a //hypatia:confined field (or
// a field of a //hypatia:confined type) is proven reachable from at most
// one goroutine at a time by the confinement check — and any violation of
// that proof is its own finding — so demanding a lock on top would be the
// false positive this check was known for on pre-launch-initialized worker
// state.
func exemptLockField(field *types.Var, conf *confIndex) bool {
	t := field.Type()
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if path, _, ok := namedType(t); ok && (path == "sync" || path == "sync/atomic") {
		return true
	}
	if _, locky := noCopyType(t); locky {
		return true // contains a lock: guarded by its own methods
	}
	if conf != nil {
		if conf.fields[field] {
			return true
		}
		if confinedTypeName(t, conf) != nil {
			return true
		}
	}
	return false
}

// ---- held-locks dataflow ----

type lockFact map[string]bool

var lockLattice = flowLattice[lockFact]{
	bottom: func() lockFact { return lockFact{} },
	clone: func(f lockFact) lockFact {
		c := make(lockFact, len(f))
		for k := range f {
			c[k] = true
		}
		return c
	},
	join: func(dst, src lockFact) lockFact {
		// Must-analysis: a lock is held after a join only if held on every
		// incoming path.
		for k := range dst {
			if !src[k] {
				delete(dst, k)
			}
		}
		return dst
	},
	equal: func(a, b lockFact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	},
}

// reportUnguardedWrites flags each candidate write in fn at which no lock is
// provably held, minus constructor-time writes that precede every goroutine
// launch in the function.
func reportUnguardedWrites(cg *callGraph, fn cgKey, field *types.Var, sels []*ast.SelectorExpr, goSide, loopSide map[cgKey]bool, rep *reporter) {
	p := cg.pkgOf[fn]
	body := cg.body[fn]
	if p == nil || body == nil {
		return
	}
	g := buildCFG(body, p.info)
	if g.unstructured {
		return
	}
	candidate := map[*ast.SelectorExpr]bool{}
	for _, s := range sels {
		candidate[s] = true
	}
	preGo := map[*ast.SelectorExpr]bool{}
	if !goSide[fn] {
		markPreGoWrites(g, candidate, preGo)
	}
	side := "the event-loop side"
	switch {
	case goSide[fn] && loopSide[fn]:
		side = "both sides"
	case goSide[fn]:
		side = "the goroutine side"
	}
	xfer := func(f lockFact, n ast.Node, emit func(ast.Node, string, string)) lockFact {
		shallowInspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				applyLockCall(p, f, call)
			}
			if sel, ok := m.(*ast.SelectorExpr); ok && candidate[sel] && !preGo[sel] && len(f) == 0 && emit != nil {
				emit(sel, checkLockSafety, fmt.Sprintf(
					"write to %s on %s without a held lock; the field is also accessed from the other side of a go statement (guard it or hand it off on a channel)",
					fieldLabel(field), side))
			}
			return true
		})
		return f
	}
	in := forwardDataflow(g, lockLattice, lockFact{}, xfer)
	replayDataflow(g, lockLattice, in, xfer, func(n ast.Node, check, msg string) {
		rep.add(n.Pos(), check, msg)
	})
}

// applyLockCall updates the held-lock set for X.Lock()/X.Unlock() calls.
func applyLockCall(p *pkg, f lockFact, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	mfn, ok := p.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := p.info.TypeOf(sel.X)
	if recv == nil || !hasLockMethod(recv) {
		return
	}
	key := types.ExprString(sel.X)
	switch mfn.Name() {
	case "Lock", "RLock":
		f[key] = true
	case "Unlock", "RUnlock":
		delete(f, key)
	}
}

// markPreGoWrites fills preGo with the candidate writes that execute before
// any go statement in g: writes in blocks not reachable from a launch, and
// writes preceding the launch inside its own block.
func markPreGoWrites(g *funcCFG, candidate map[*ast.SelectorExpr]bool, preGo map[*ast.SelectorExpr]bool) {
	// Find launch sites and the blocks poisoned by them.
	postBlocks := map[*cfgBlock]bool{}
	var queue []*cfgBlock
	launchIdx := map[*cfgBlock]int{} // first go-stmt index within the block
	hasGo := false
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			if _, ok := n.(*ast.GoStmt); ok {
				hasGo = true
				if _, seen := launchIdx[blk]; !seen {
					launchIdx[blk] = i
				}
				queue = append(queue, blk.succs...)
				break
			}
		}
	}
	if !hasGo {
		return // nothing launches here: no write is constructor-time
	}
	for len(queue) > 0 {
		blk := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if postBlocks[blk] {
			continue
		}
		postBlocks[blk] = true
		queue = append(queue, blk.succs...)
	}
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			first, blkLaunches := launchIdx[blk]
			post := postBlocks[blk] || (blkLaunches && i >= first)
			if post {
				continue
			}
			shallowInspect(n, func(m ast.Node) bool {
				if sel, ok := m.(*ast.SelectorExpr); ok && candidate[sel] {
					preGo[sel] = true
				}
				return true
			})
		}
	}
}

func fieldLabel(field *types.Var) string {
	path := ""
	if field.Pkg() != nil {
		path = field.Pkg().Path()
		if i := strings.LastIndex(path, "/"); i >= 0 {
			path = path[i+1:]
		}
	}
	if path == "" {
		return "field " + field.Name()
	}
	return "field " + path + "." + field.Name()
}
