package main

// A small forward dataflow framework over funcCFG. Each check family
// supplies a lattice (join/equal/clone) and a transfer function over the
// CFG's node granularity; the framework iterates a worklist to fixpoint and
// hands back the fact flowing INTO every block. A check then replays each
// reachable block once with its in-fact, reporting findings at precise
// positions — the replay uses the same transfer function, so the reported
// state is exactly the fixpoint state.

import "go/ast"

// flowLattice describes one analysis domain F.
type flowLattice[F any] struct {
	// bottom is the fact for an edge never executed (identity of join).
	bottom func() F
	// clone deep-copies a fact so transfer may mutate in place.
	clone func(F) F
	// join merges two facts (set union for may-analyses, intersection for
	// must-analyses).
	join func(dst, src F) F
	// equal reports lattice equality, used to detect the fixpoint.
	equal func(a, b F) bool
}

// transferFn advances fact across one CFG node, mutating and returning it.
// emit is non-nil only during the reporting replay.
type transferFn[F any] func(fact F, n ast.Node, emit func(n ast.Node, check, msg string)) F

// forwardDataflow computes the fixpoint in-fact of every reachable block.
// entryFact seeds the entry block. The iteration is bounded; all our
// lattices are finite per function, so the bound only guards against a
// non-monotone transfer bug.
func forwardDataflow[F any](g *funcCFG, lat flowLattice[F], entryFact F, xfer transferFn[F]) map[*cfgBlock]F {
	reach := g.reachable()
	in := map[*cfgBlock]F{g.entry: entryFact}
	work := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for steps := 0; len(work) > 0 && steps < 64*len(g.blocks)*(len(g.blocks)+2); steps++ {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := lat.clone(in[blk])
		for _, n := range blk.nodes {
			out = xfer(out, n, nil)
		}
		for _, s := range blk.succs {
			if !reach[s] {
				continue
			}
			cur, ok := in[s]
			var merged F
			if !ok {
				merged = lat.clone(out)
			} else {
				merged = lat.join(lat.clone(cur), out)
			}
			if !ok || !lat.equal(merged, cur) {
				in[s] = merged
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// replayDataflow walks every reachable block once with its fixpoint in-fact,
// invoking the transfer function with a live emit callback so findings are
// reported against converged state. It returns the fact at the end of the
// exit block (useful for at-exit checks such as leak detection).
func replayDataflow[F any](g *funcCFG, lat flowLattice[F], in map[*cfgBlock]F, xfer transferFn[F], emit func(n ast.Node, check, msg string)) F {
	reach := g.reachable()
	var exitOut F
	exitSeen := false
	for _, blk := range g.blocks {
		if !reach[blk] {
			continue
		}
		fact, ok := in[blk]
		if !ok {
			fact = lat.bottom()
		}
		out := lat.clone(fact)
		for _, n := range blk.nodes {
			out = xfer(out, n, emit)
		}
		if blk == g.exit {
			exitOut = out
			exitSeen = true
		}
	}
	if !exitSeen {
		exitOut = lat.bottom()
	}
	return exitOut
}
