package main

// The handle-annotation index behind the handlesafety check. PR 8 turned the
// simulator's hot state into struct-of-arrays addressed by raw integer
// handles; these directives restore the type distinctions the pointer graph
// used to enforce, as machine-checked contracts:
//
//	//hypatia:handle(SPEC)            on a struct field: the field is a
//	                                  handle (scalar spec) or a handle array
//	                                  (index/element spec)
//	//hypatia:handle(name: SPEC, ...) in a function's doc comment: binds the
//	                                  named parameters, and `return:` the
//	                                  result tuple, to handle specs
//	//hypatia:handle(D) <rationale>   trailing a statement that stores a
//	                                  computed value: coerces the stored
//	                                  value into domain D (flat-index
//	                                  arithmetic, counting loops)
//	//hypatia:epoch(operand: D, ...)  in a function's doc comment: calling
//	                                  the function invalidates every
//	                                  outstanding D handle (arena reset,
//	                                  CSR rebuild, clone-into-reused-buffer)
//	//hypatia:epoch(D)                trailing a struct field: writes to the
//	                                  field invalidate D handles (ring-buffer
//	                                  head advance)
//	//hypatia:exhaustive              on a defined integer type: every switch
//	                                  over the type must cover all of its
//	                                  package-level constants or carry a
//	                                  default
//
// A SPEC is one of three shapes over lowercase domain names (node, device,
// ring-slot, ...): `D` — a scalar D handle, or an array indexed by D when
// the declaration is a slice/array; `A->B` — an array indexed by A whose
// elements are B handles; `->B` — element domain B with an unchecked index
// (heap-position arithmetic the lattice deliberately cannot follow).
//
// Explicit annotations are trusted axioms at declaration boundaries, exactly
// like unitsafety's identifier suffixes; everything between boundaries is
// proven by the dataflow in check_handles.go.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	handleDirective     = "//hypatia:handle("
	epochDirective      = "//hypatia:epoch("
	exhaustiveDirective = "//hypatia:exhaustive"
)

// handleSpec is one parsed SPEC: a scalar domain, or an index/element domain
// pair for array-typed declarations.
type handleSpec struct {
	dom  string // scalar handle domain
	idx  string // index domain of a slice/array ("" = unchecked)
	elem string // element domain of a slice/array ("" = untyped elements)
}

func (s handleSpec) zero() bool { return s.dom == "" && s.idx == "" && s.elem == "" }

// String renders the spec back in directive syntax.
func (s handleSpec) String() string {
	if s.dom != "" {
		return s.dom
	}
	return s.idx + "->" + s.elem
}

// validDomain restricts domain names to lowercase kebab-case identifiers.
func validDomain(d string) bool {
	if d == "" || d[0] < 'a' || d[0] > 'z' {
		return false
	}
	for i := 1; i < len(d); i++ {
		c := d[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// parseHandleSpec parses one SPEC. isArray selects how a bare domain binds:
// index domain for slice/array declarations, scalar domain otherwise.
func parseHandleSpec(s string, isArray bool) (handleSpec, error) {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, "->"); i >= 0 {
		spec := handleSpec{idx: strings.TrimSpace(s[:i]), elem: strings.TrimSpace(s[i+2:])}
		if spec.idx != "" && !validDomain(spec.idx) {
			return handleSpec{}, fmt.Errorf("bad index domain %q", spec.idx)
		}
		if !validDomain(spec.elem) {
			return handleSpec{}, fmt.Errorf("bad element domain %q", spec.elem)
		}
		return spec, nil
	}
	if !validDomain(s) {
		return handleSpec{}, fmt.Errorf("bad domain %q", s)
	}
	if isArray {
		return handleSpec{idx: s}, nil
	}
	return handleSpec{dom: s}, nil
}

// directiveArg extracts the parenthesized argument of a directive comment:
// "//hypatia:handle(node->device) rationale" yields "node->device".
func directiveArg(text, prefix string) (string, bool) {
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok {
		return "", false
	}
	i := strings.IndexByte(rest, ')')
	if i < 0 {
		return "", false
	}
	return rest[:i], true
}

// lineKey addresses a coercion comment by its source line; go/ast does not
// attach trailing statement comments, so application is by line match.
type lineKey struct {
	file string
	line int
}

// coercion is one trailing //hypatia:handle(D) comment: the next store on
// its line adopts domain D at the current epoch.
type coercion struct {
	dom string
	pos token.Pos
}

// handleIndex is the module-wide set of handle, epoch, and exhaustive
// annotations.
type handleIndex struct {
	// fields maps annotated struct fields to their specs.
	fields map[types.Object]handleSpec
	// epochFields maps struct fields whose writes bump a domain's epoch.
	epochFields map[types.Object]string
	// params holds per-function parameter specs, aligned to the signature
	// (zero spec = unannotated slot).
	params map[*types.Func][]handleSpec
	// results holds per-function result-tuple specs.
	results map[*types.Func][]handleSpec
	// epochFns maps functions whose call bumps the listed domains.
	epochFns map[*types.Func][]string
	// exhaustive marks defined types whose switches must cover every
	// package-level constant.
	exhaustive map[*types.TypeName]bool
	// coerce maps source lines carrying a trailing coercion comment.
	coerce map[lineKey]*coercion
	// bumped is the set of domains named by any epoch directive; only these
	// need staleness tracking.
	bumped map[string]bool
	// honored records directive comment positions that took effect, for the
	// misplaced-directive check. Coercions are honored when the dataflow
	// applies them.
	honored map[token.Pos]bool
	// pkgs marks packages declaring at least one annotation.
	pkgs  map[*types.Package]bool
	count int
}

func newHandleIndex() *handleIndex {
	return &handleIndex{
		fields:      map[types.Object]handleSpec{},
		epochFields: map[types.Object]string{},
		params:      map[*types.Func][]handleSpec{},
		results:     map[*types.Func][]handleSpec{},
		epochFns:    map[*types.Func][]string{},
		exhaustive:  map[*types.TypeName]bool{},
		coerce:      map[lineKey]*coercion{},
		bumped:      map[string]bool{},
		honored:     map[token.Pos]bool{},
		pkgs:        map[*types.Package]bool{},
	}
}

// isArrayType reports whether t indexes like an array: slice, array, or
// pointer to array.
func isArrayType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// collectHandleDirectives indexes every handle/epoch/exhaustive annotation
// across the loaded packages, then registers the leftover trailing
// //hypatia:handle comments as statement coercions.
func collectHandleDirectives(all []*pkg) *handleIndex {
	hx := newHandleIndex()
	for _, p := range all {
		for _, f := range p.files {
			consumed := map[token.Pos]bool{}
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					hx.collectFuncDirectives(p, d, consumed)
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						c := directiveIn(ts.Doc, exhaustiveDirective)
						if c == nil && len(d.Specs) == 1 {
							c = directiveIn(d.Doc, exhaustiveDirective)
						}
						if c != nil {
							if tn, ok := p.info.Defs[ts.Name].(*types.TypeName); ok {
								hx.exhaustive[tn] = true
								hx.mark(c.Pos(), p)
							}
						}
						hx.collectFieldSpecs(p, ts, consumed)
					}
				}
			}
			hx.collectCoercions(p, f, consumed)
		}
	}
	return hx
}

func (hx *handleIndex) mark(pos token.Pos, p *pkg) {
	hx.honored[pos] = true
	hx.pkgs[p.types] = true
	hx.count++
}

// collectFuncDirectives parses //hypatia:handle parameter/result bindings
// and //hypatia:epoch invalidation declarations from a function's doc
// comment.
func (hx *handleIndex) collectFuncDirectives(p *pkg, d *ast.FuncDecl, consumed map[token.Pos]bool) {
	if d.Doc == nil {
		return
	}
	fn, _ := p.info.Defs[d.Name].(*types.Func)
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	for _, c := range d.Doc.List {
		if arg, ok := directiveArg(c.Text, handleDirective); ok {
			consumed[c.Pos()] = true
			if fn != nil && sig != nil && hx.bindFunc(fn, sig, arg) {
				hx.mark(c.Pos(), p)
			}
		}
		if arg, ok := directiveArg(c.Text, epochDirective); ok {
			consumed[c.Pos()] = true
			if fn != nil && sig != nil && hx.bindEpoch(fn, sig, arg) {
				hx.mark(c.Pos(), p)
			}
		}
	}
}

// bindFunc parses `name: SPEC, ...` bindings. Items without a `name:` head
// extend the previous binding's result list (multi-result returns).
func (hx *handleIndex) bindFunc(fn *types.Func, sig *types.Signature, arg string) bool {
	paramIdx := map[string]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i).Name()] = i
	}
	var params, results []handleSpec
	cur := "" // the binding open to bare continuation items ("return" only)
	for _, item := range strings.Split(arg, ",") {
		item = strings.TrimSpace(item)
		name, specText := "", item
		if i := strings.IndexByte(item, ':'); i >= 0 {
			name, specText = strings.TrimSpace(item[:i]), strings.TrimSpace(item[i+1:])
			cur = name
		} else if cur != "return" {
			return false
		}
		switch {
		case name == "return" || (name == "" && cur == "return"):
			pos := len(results)
			if pos >= sig.Results().Len() {
				return false
			}
			spec, err := parseHandleSpec(specText, isArrayType(sig.Results().At(pos).Type()))
			if err != nil {
				return false
			}
			results = append(results, spec)
		default:
			i, ok := paramIdx[name]
			if !ok {
				return false
			}
			spec, err := parseHandleSpec(specText, isArrayType(sig.Params().At(i).Type()))
			if err != nil {
				return false
			}
			if params == nil {
				params = make([]handleSpec, sig.Params().Len())
			}
			params[i] = spec
		}
	}
	if params == nil && results == nil {
		return false
	}
	if params != nil {
		hx.params[fn] = params
	}
	if results != nil {
		for len(results) < sig.Results().Len() {
			results = append(results, handleSpec{})
		}
		hx.results[fn] = results
	}
	return true
}

// bindEpoch parses `operand: D, D2` where operand names the receiver or a
// parameter (documentation of what is invalidated; the bump is global to the
// domains).
func (hx *handleIndex) bindEpoch(fn *types.Func, sig *types.Signature, arg string) bool {
	i := strings.IndexByte(arg, ':')
	if i < 0 {
		return false
	}
	operand := strings.TrimSpace(arg[:i])
	okOperand := operand == "recv" && sig.Recv() != nil
	for j := 0; j < sig.Params().Len(); j++ {
		if sig.Params().At(j).Name() == operand {
			okOperand = true
		}
	}
	if !okOperand {
		return false
	}
	var doms []string
	for _, d := range strings.Split(arg[i+1:], ",") {
		d = strings.TrimSpace(d)
		if !validDomain(d) {
			return false
		}
		doms = append(doms, d)
	}
	if len(doms) == 0 {
		return false
	}
	hx.epochFns[fn] = doms
	for _, d := range doms {
		hx.bumped[d] = true
	}
	return true
}

// collectFieldSpecs picks up //hypatia:handle and //hypatia:epoch on struct
// fields (doc comment or trailing comment), including nested struct types.
func (hx *handleIndex) collectFieldSpecs(p *pkg, ts *ast.TypeSpec, consumed map[token.Pos]bool) {
	ast.Inspect(ts.Type, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					if arg, ok := directiveArg(c.Text, handleDirective); ok {
						consumed[c.Pos()] = true
						hx.bindField(p, fld, arg, c.Pos())
					}
					if arg, ok := directiveArg(c.Text, epochDirective); ok {
						consumed[c.Pos()] = true
						if validDomain(strings.TrimSpace(arg)) {
							dom := strings.TrimSpace(arg)
							bound := false
							for _, name := range fld.Names {
								if fv, ok := p.info.Defs[name].(*types.Var); ok {
									hx.epochFields[fv] = dom
									hx.bumped[dom] = true
									bound = true
								}
							}
							if bound {
								hx.mark(c.Pos(), p)
							}
						}
					}
				}
			}
		}
		return true
	})
}

func (hx *handleIndex) bindField(p *pkg, fld *ast.Field, arg string, pos token.Pos) {
	bound := false
	for _, name := range fld.Names {
		fv, ok := p.info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		spec, err := parseHandleSpec(arg, isArrayType(fv.Type()))
		if err != nil {
			continue
		}
		hx.fields[fv] = spec
		bound = true
	}
	if bound {
		hx.mark(pos, p)
	}
}

// collectCoercions registers every //hypatia:handle comment not consumed by
// a declaration binding as a statement coercion for its line. Only scalar
// specs make sense there (a store adopts one domain).
func (hx *handleIndex) collectCoercions(p *pkg, f *ast.File, consumed map[token.Pos]bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if consumed[c.Pos()] {
				continue
			}
			arg, ok := directiveArg(c.Text, handleDirective)
			if !ok {
				continue
			}
			dom := strings.TrimSpace(arg)
			if !validDomain(dom) {
				continue
			}
			pos := p.fset.Position(c.Pos())
			hx.coerce[lineKey{pos.Filename, pos.Line}] = &coercion{dom: dom, pos: c.Pos()}
			hx.pkgs[p.types] = true
			hx.count++
			// honored is marked by the dataflow when a store applies it.
		}
	}
}

// coercionAt returns the coercion registered for the line containing pos.
func (hx *handleIndex) coercionAt(fset *token.FileSet, pos token.Pos) *coercion {
	p := fset.Position(pos)
	return hx.coerce[lineKey{p.Filename, p.Line}]
}

// staleDom returns the epoch-tracked domain governing a value's staleness:
// the first of its domains that any epoch directive can bump.
func (hx *handleIndex) staleDom(dom, idx, elem string) string {
	for _, d := range []string{dom, idx, elem} {
		if d != "" && hx.bumped[d] {
			return d
		}
	}
	return ""
}

// serializable renders the annotations declared in p for the fact cache.
func (hx *handleIndex) serializable(p *pkg) map[string]string {
	out := map[string]string{}
	describeFn := func(fn *types.Func) string {
		name := fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, rn, ok := namedType(sig.Recv().Type()); ok {
				name = rn + "." + name
			}
		}
		return name
	}
	for fv, spec := range hx.fields {
		if fv.Pkg() == p.types {
			pos := p.fset.Position(fv.Pos())
			out[fmt.Sprintf("field %s at %s:%d", fv.Name(), shortFile(pos.Filename), pos.Line)] = "handle " + spec.String()
		}
	}
	for fv, dom := range hx.epochFields {
		if fv.Pkg() == p.types {
			pos := p.fset.Position(fv.Pos())
			out[fmt.Sprintf("epoch field %s at %s:%d", fv.Name(), shortFile(pos.Filename), pos.Line)] = "epoch " + dom
		}
	}
	for fn, specs := range hx.params {
		if fn.Pkg() == p.types {
			var parts []string
			for i, s := range specs {
				if !s.zero() {
					parts = append(parts, fmt.Sprintf("%d:%s", i, s))
				}
			}
			out["func "+describeFn(fn)+" params"] = strings.Join(parts, " ")
		}
	}
	for fn, specs := range hx.results {
		if fn.Pkg() == p.types {
			var parts []string
			for _, s := range specs {
				parts = append(parts, s.String())
			}
			out["func "+describeFn(fn)+" return"] = strings.Join(parts, " ")
		}
	}
	for fn, doms := range hx.epochFns {
		if fn.Pkg() == p.types {
			out["func "+describeFn(fn)+" epoch"] = strings.Join(doms, " ")
		}
	}
	for tn := range hx.exhaustive {
		if tn.Pkg() == p.types {
			out["type "+tn.Name()] = "exhaustive"
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
