package main

// Tagged-union exhaustiveness, the third handlesafety clause: a switch over
// a //hypatia:exhaustive tag type (the event-kind enum) must either carry a
// default case or cover every package-scope constant of that type, so a new
// event kind cannot silently fall through the serial or sharded dispatch
// loops. A non-constant case expression makes coverage undecidable, so such
// switches are skipped rather than guessed at.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// tagConst is one package-scope constant of an exhaustive tag type.
type tagConst struct {
	name string
	val  string // exact constant value, the coverage key
}

// tagConsts returns the package-scope constants of the exhaustive type, in
// scope (sorted-name) order.
func tagConsts(tn *types.TypeName) []tagConst {
	var consts []tagConst
	scope := tn.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		consts = append(consts, tagConst{name: name, val: c.Val().ExactString()})
	}
	return consts
}

// checkExhaustivePkg reports every switch over an annotated tag type that
// has no default and provably misses a constant.
func checkExhaustivePkg(p *pkg, hx *handleIndex, rep *reporter) {
	if len(hx.exhaustive) == 0 {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := p.info.TypeOf(sw.Tag)
			if tagType == nil {
				return true
			}
			named, ok := types.Unalias(tagType).(*types.Named)
			if !ok || !hx.exhaustive[named.Obj()] {
				return true
			}
			consts := tagConsts(named.Obj())
			covered := map[string]bool{}
			decidable := true
			hasDefault := false
			for _, cc := range sw.Body.List {
				cl, ok := cc.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cl.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cl.List {
					tv, ok := p.info.Types[e]
					if !ok || tv.Value == nil {
						decidable = false
						continue
					}
					covered[tv.Value.ExactString()] = true
				}
			}
			if hasDefault || !decidable {
				return true
			}
			var missing []string
			for _, c := range consts {
				if !covered[c.val] {
					missing = append(missing, c.name)
				}
			}
			if len(missing) > 0 {
				rep.add(sw.Pos(), checkHandleSafety, fmt.Sprintf(
					"switch over %s does not cover %s and has no default; new %s values would fall through silently",
					named.Obj().Name(), strings.Join(missing, ", "), named.Obj().Name()))
			}
			return true
		})
	}
}
