package main

// The cached, parallel lint driver behind the command line. A run has
// three phases:
//
//  1. Discovery: an imports-only parse of the lint targets and their
//     transitive module-local imports (no type-checking) yields the import
//     DAG, per-package content hashes, and from those the cache keys.
//
//  2. Cache probe: every target whose entry under -cache matches its key
//     contributes its findings verbatim. If all targets hit, the run ends
//     here — no package is parsed beyond its import clause.
//
//  3. Load and analyze: on any miss the full package set is type-checked —
//     in parallel along the import DAG, a package starting as soon as its
//     dependencies are done — and only the missed targets are re-analyzed;
//     their refreshed entries are written back.
//
// The test-facing lint() entry point stays serial and uncached so test
// behavior is independent of cache state.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// lintDriver resolves patterns, consults the fact cache, and runs the
// parallel load/analyze pipeline for whatever missed.
func lintDriver(dir string, patterns []string, cfg config, cacheDir string, useCache bool) ([]Finding, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	if cacheDir == "" {
		cacheDir = filepath.Join(l.root, ".hypatialint-cache")
	}
	dirs, err := expandPatterns(l, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	var targetPaths []string
	seen := map[string]bool{}
	for _, d := range dirs {
		path, err := l.importPath(d)
		if err != nil {
			return nil, err
		}
		if !seen[path] {
			seen[path] = true
			targetPaths = append(targetPaths, path)
		}
	}
	cfg.module = l.module

	metas, err := discoverMetas(l, targetPaths)
	if err != nil {
		return nil, err
	}
	keys := computeKeys(metas, configHash(cfg))

	var findings []Finding
	missPaths := targetPaths
	if useCache {
		missPaths = nil
		for _, tp := range targetPaths {
			if cached, ok := readCacheEntry(cacheDir, tp, keys[tp], l.root); ok {
				findings = append(findings, cached...)
			} else {
				missPaths = append(missPaths, tp)
			}
		}
	}
	if len(missPaths) > 0 {
		if err := l.loadAll(metas); err != nil {
			return nil, err
		}
		var targets []*pkg
		for _, tp := range missPaths {
			targets = append(targets, l.cache[tp])
		}
		fresh, an := analyzeTargets(l, targets, cfg)
		if useCache {
			for _, p := range targets {
				var own []Finding
				for _, f := range fresh {
					if filepath.Dir(f.Pos.Filename) == p.dir {
						own = append(own, f)
					}
				}
				if err := writeCacheEntry(cacheDir, p.path, keys[p.path], l.root, own, an.serializableEffects(p), an.conf.serializable(p), an.handles.serializable(p), an.allocs.serializableAllocs(p)); err != nil {
					fmt.Fprintf(os.Stderr, "hypatialint: cache write for %s: %v\n", p.path, err)
				}
			}
		}
		findings = append(findings, fresh...)
	}
	sortFindings(findings)
	return findings, nil
}

// loadAll type-checks every discovered package, in parallel along the
// import DAG: each package waits for its module-local dependencies, then
// runs under a GOMAXPROCS-wide semaphore. The one shared mutable resource
// — the GOROOT source importer — is serialized behind its own mutex (it
// memoizes, so each standard-library package is still checked once).
func (l *loader) loadAll(metas map[string]*pkgMeta) error {
	paths := make([]string, 0, len(metas))
	for p := range metas {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	// Import cycles would deadlock the dependency waits below; Go forbids
	// them, so reject broken input up front.
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var check func(p string) error
	check = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		for _, d := range metas[p].deps {
			if err := check(d); err != nil {
				return err
			}
		}
		state[p] = 2
		return nil
	}
	for _, p := range paths {
		if err := check(p); err != nil {
			return err
		}
	}

	l.parallel = true
	defer func() { l.parallel = false }()
	done := make(map[string]chan struct{}, len(paths))
	errOf := make(map[string]*error, len(paths))
	for _, p := range paths {
		done[p] = make(chan struct{})
		errOf[p] = new(error)
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, p := range paths {
		go func(path string) {
			defer close(done[path])
			m := metas[path]
			for _, d := range m.deps {
				<-done[d]
				if *errOf[d] != nil {
					*errOf[path] = fmt.Errorf("%s: %w", path, *errOf[d])
					return
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			l.mu.Lock()
			_, loaded := l.cache[path]
			l.mu.Unlock()
			if loaded {
				return
			}
			pk, err := l.loadDir(path, m.dir)
			if err != nil {
				*errOf[path] = fmt.Errorf("loading %s: %w", path, err)
				return
			}
			l.mu.Lock()
			l.cache[path] = pk
			l.mu.Unlock()
		}(p)
	}
	for _, p := range paths {
		<-done[p]
	}
	for _, p := range paths {
		if *errOf[p] != nil {
			return *errOf[p]
		}
	}
	return nil
}
