package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// checkTimeUnitsPkg enforces time-unit hygiene around sim.Time, the int64
// nanosecond timestamp every result in this codebase depends on:
//
//   - sim.Time(x) where x is a float truncates sub-nanosecond remainders
//     toward zero instead of rounding; the sanctioned conversion is
//     sim.Seconds(x) (or an explicit math.Round at the call site).
//   - float64(t) / float32(t) on a sim.Time yields raw nanoseconds-as-float,
//     which every caller so far has meant to be seconds; the sanctioned
//     conversion is t.Seconds().
//   - ==/!= between floating-point operands is flagged outside _test.go
//     files; comparisons against an exact constant zero are allowed (the Go
//     zero-value sentinel idiom, e.g. `if cfg.RateBps == 0`).
func checkTimeUnitsPkg(p *pkg, rep *reporter) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(p, n, rep)
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(p.info.TypeOf(n.X)) || !isFloat(p.info.TypeOf(n.Y)) {
					return true
				}
				if isZeroConst(p.info, n.X) || isZeroConst(p.info, n.Y) {
					return true
				}
				rep.add(n.OpPos, checkTimeUnits,
					"floating-point equality is exact-bit comparison; compare against a tolerance, use math.IsInf/IsNaN, or suppress if an exact tie-break is intended")
			}
			return true
		})
	}
}

// checkConversion flags raw conversions between sim.Time and floats.
func checkConversion(p *pkg, call *ast.CallExpr, rep *reporter) {
	tv, ok := p.info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	target := tv.Type
	argType := p.info.TypeOf(call.Args[0])
	switch {
	case isSimTime(target) && isFloat(argType):
		// Allow the sanctioned explicit-rounding form Time(math.Round(...)),
		// which is how sim.Seconds itself is implemented.
		if isMathRoundCall(p.info, call.Args[0]) {
			return
		}
		rep.add(call.Pos(), checkTimeUnits,
			"sim.Time(float) truncates toward zero; convert seconds with sim.Seconds(x), which rounds to the nearest nanosecond")
	case isFloat(target) && isSimTime(argType):
		rep.add(call.Pos(), checkTimeUnits,
			"float(sim.Time) yields raw nanoseconds as a float; use Time.Seconds() to convert with explicit units")
	}
}

// isMathRoundCall reports whether e is a call to math.Round.
func isMathRoundCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Round"
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	k := tv.Value.Kind()
	if k != constant.Int && k != constant.Float {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
