package main

// The purity check turns //hypatia:pure into a verified contract. Three
// rule groups, all reporting inside the package under analysis so findings
// stay a function of that package plus its dependencies (the property the
// fact cache keys on):
//
//  1. Contract verification: an annotated function whose effect summary
//     contains any impure bit is a finding at its declaration, naming the
//     first offending effect and the full call chain down to it.
//
//  2. Contract closure: an annotated function may only make static
//     module-local calls to other annotated functions. Function literals
//     are exempt (their effects fold into the definer and are caught by
//     rule 1); dynamic calls must go through a //hypatia:pure-annotated
//     named function type or they surface as unknown-call effects under
//     rule 1. Together with rule 3 this gives induction: everything
//     reachable from the pipeline's worker bodies carries — and passes —
//     the contract.
//
//  3. Roots: inside -purescope packages (default internal/core), every
//     goroutine body is treated as a pipeline worker. Its own body may use
//     channels, spawn further goroutines, and fill caller-owned arenas —
//     that is how the pipeline communicates — but may not touch globals,
//     the wall clock, randomness, IO, or map iteration order, and every
//     module-local function it calls must be annotated.
//
// Misplaced or unknown //hypatia: comments are reported under the
// directive check, like malformed //lint: comments.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkPurityPkgs runs the purity check over the lint targets, using effect
// summaries computed over every loaded package. It returns the analysis so
// the driver can persist per-package effect facts.
func checkPurityPkgs(targets, all []*pkg, cg *callGraph, cfg config, conf *confIndex, hx *handleIndex, ax *allocAnalysis, rep *reporter) *effectAnalysis {
	an := analyzeEffects(all, cg, cfg.module)
	for _, p := range targets {
		pc := &purityChecker{an: an, p: p, conf: conf, handles: hx, allocs: ax, rep: rep}
		pc.checkDirectiveComments()
		pc.checkAnnotated()
		pc.checkImplementers()
		if inSimScope(p.path, cfg.pureScope) {
			pc.checkRoots()
		}
	}
	return an
}

type purityChecker struct {
	an      *effectAnalysis
	p       *pkg
	conf    *confIndex
	handles *handleIndex
	allocs  *allocAnalysis
	rep     *reporter
}

// checkDirectiveComments flags //hypatia: comments that are malformed or
// placed where the analysis ignores them.
func (pc *purityChecker) checkDirectiveComments() {
	for _, f := range pc.p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//hypatia:")
				if !ok {
					continue
				}
				verb := rest
				if i := strings.IndexAny(verb, " ("); i >= 0 {
					verb = verb[:i]
				}
				switch verb {
				case "pure":
					if !pc.an.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:pure has no effect here; it belongs in the doc comment of a function or a named function type")
					}
				case "confined":
					if !pc.conf.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:confined has no effect here; it belongs in the doc comment of a type declaration or a struct field")
					}
				case "transfer":
					if !pc.conf.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:transfer has no effect here; it belongs in the doc comment of a function or method")
					}
				case "handle":
					if !pc.handles.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:handle has no effect here; it belongs on a handle-carrying field, a func doc comment, or trailing an assignment as a coercion")
					}
				case "epoch":
					if !pc.handles.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:epoch has no effect here; it belongs on an epoch-counter field or in the doc comment of an invalidating function")
					}
				case "exhaustive":
					if !pc.handles.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:exhaustive has no effect here; it belongs in the doc comment of a defined tag type")
					}
				case "noalloc":
					if !pc.allocs.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:noalloc has no effect here; it belongs in the doc comment of a function, a named function type, or an interface")
					}
				case "allocs":
					if !pc.allocs.honored[c.Pos()] {
						pc.rep.add(c.Pos(), checkDirective,
							"//hypatia:allocs(amortized) downgrades no allocation site here; it must trail (or sit immediately above) an allocation inside a function body, and amortized is the only supported class")
					}
				default:
					pc.rep.add(c.Pos(), checkDirective,
						fmt.Sprintf("unknown //hypatia: directive %q (supported: //hypatia:pure, //hypatia:confined, //hypatia:transfer, //hypatia:handle, //hypatia:epoch, //hypatia:exhaustive, //hypatia:noalloc, //hypatia:allocs)", "hypatia:"+verb))
				}
			}
		}
	}
}

// checkAnnotated applies rules 1 and 2 to the annotated functions declared
// in this package.
func (pc *purityChecker) checkAnnotated() {
	for _, k := range pc.an.cg.funcsIn[pc.p] {
		fn, ok := k.(*types.Func)
		if !ok || !pc.an.pureFns[fn] {
			continue
		}
		decl := pc.an.cg.declOf[fn]
		if decl == nil {
			continue
		}
		name := pc.an.nodeName(fn)
		if sum := pc.an.summaries[k]; sum != nil {
			if o, impure := sum.witness(); impure {
				pc.rep.add(decl.Name.Pos(), checkPurity,
					fmt.Sprintf("%s is marked //hypatia:pure but %s", name, o.describe(name)))
			}
		}
		pc.checkCalleesAnnotated(k, decl.Body, name)
	}
}

// checkCalleesAnnotated enforces rule 2 over one node's body and its
// plainly defined literals: every static module-local callee must itself
// carry the directive.
func (pc *purityChecker) checkCalleesAnnotated(k cgKey, body *ast.BlockStmt, owner string) {
	bodyInspect(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := resolveCallee(pc.p.info, call)
		if callee == nil || pc.an.pureFns[callee] {
			return
		}
		if _, hasBody := pc.an.cg.body[callee]; !hasBody {
			return // interface/stdlib: rule 1 handles it via the summary
		}
		pc.rep.add(call.Pos(), checkPurity,
			fmt.Sprintf("%s calls %s, which is not marked //hypatia:pure; annotate it (and fix what the analysis finds) or drop the contract", owner, pc.an.nodeName(callee)))
	})
	for _, e := range pc.an.cg.edges[k] {
		lit, isLit := e.callee.(*ast.FuncLit)
		if isLit && !e.viaGo {
			pc.checkCalleesAnnotated(lit, lit.Body, owner)
		}
	}
}

// checkImplementers enforces the honesty side of //hypatia:pure interfaces:
// calls through such an interface are trusted, so every module-local type
// that satisfies one must carry the annotation on the methods it declares
// here. (A type satisfying a pure interface declared downstream of its own
// package is invisible from here — the documented structural-typing gap.)
func (pc *purityChecker) checkImplementers() {
	scope := pc.p.types.Scope()
	reported := map[*types.Func]bool{}
	for _, tname := range scope.Names() {
		tn, ok := scope.Lookup(tname).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		for _, itn := range pc.an.pureIfaceList {
			iface, ok := itn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			ptr := types.NewPointer(tn.Type())
			if !types.Implements(tn.Type(), iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
				impl, ok := obj.(*types.Func)
				if !ok || pc.an.pureFns[impl] || reported[impl] {
					continue
				}
				decl := pc.an.cg.declOf[impl]
				if decl == nil || pc.an.cg.pkgOf[impl] != pc.p {
					continue // promoted from elsewhere; checked in its own package
				}
				reported[impl] = true
				pc.rep.add(decl.Name.Pos(), checkPurity,
					fmt.Sprintf("%s satisfies //hypatia:pure interface %s.%s; mark %s //hypatia:pure (calls through the interface are trusted)",
						tn.Name(), itn.Pkg().Name(), itn.Name(), m.Name()))
			}
		}
	}
}

// rootAllowed are the effects a pipeline goroutine body may have beyond
// what an annotated function may: it communicates over channels, spawns
// sub-workers, and fills arenas handed to it.
const rootAllowed = effChan | effSpawn | effMutatesPointee

// checkRoots applies rule 3: discover every goroutine launch in this
// package and hold the launched body to the worker contract.
func (pc *purityChecker) checkRoots() {
	seen := map[cgKey]bool{}
	for _, k := range pc.an.cg.funcsIn[pc.p] {
		body := pc.an.cg.body[k]
		if body == nil {
			continue
		}
		bodyInspect(body, func(n ast.Node) {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return
			}
			pc.checkRoot(g, seen)
		})
	}
}

func (pc *purityChecker) checkRoot(g *ast.GoStmt, seen map[cgKey]bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		pc.scanRootBody(lit, seen)
		return
	}
	callee := resolveCallee(pc.p.info, g.Call)
	if callee == nil {
		pc.rep.add(g.Pos(), checkPurity,
			"goroutine launched through a dynamic call; its body cannot be held to the worker purity contract")
		return
	}
	if body := pc.an.cg.body[callee]; body != nil && pc.an.cg.pkgOf[callee] == pc.p {
		pc.scanRootBody(callee, seen)
		return
	}
	// Launched function lives outside this package (or has no body): the
	// contract must travel with it as an annotation checked over there.
	if !pc.an.pureFns[callee] {
		pc.rep.add(g.Pos(), checkPurity,
			fmt.Sprintf("launches %s, which is defined outside this package and not marked //hypatia:pure", pc.an.nodeName(callee)))
	}
}

// scanRootBody re-scans one goroutine body (and the literals it defines)
// with annotated callees trusted, then reports every effect outside the
// worker allowance, plus unannotated module-local callees.
func (pc *purityChecker) scanRootBody(k cgKey, seen map[cgKey]bool) {
	if seen[k] {
		return
	}
	seen[k] = true
	body := pc.an.cg.body[k]
	if body == nil {
		return
	}
	name := pc.an.nodeName(k)
	fs := &funcScan{an: pc.an, p: pc.p, body: body, sum: &funcSummary{}, trustPure: true}
	fs.initParams(k)
	fs.solveTaint()
	fs.walk()
	for _, en := range effectNames {
		if en.bit&effImpure == 0 || en.bit&rootAllowed != 0 || fs.sum.mask&en.bit == 0 {
			continue
		}
		o := fs.sum.origins[en.bit]
		pos := o.pos
		if !pos.IsValid() {
			pos = body.Pos()
		}
		pc.rep.add(pos, checkPurity,
			fmt.Sprintf("pipeline goroutine %s must stay pure but %s", name, o.describe(name)))
	}
	bodyInspect(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := resolveCallee(pc.p.info, call)
		if callee == nil || pc.an.pureFns[callee] {
			return
		}
		if _, hasBody := pc.an.cg.body[callee]; !hasBody {
			return
		}
		pc.rep.add(call.Pos(), checkPurity,
			fmt.Sprintf("pipeline goroutine %s calls %s, which is not marked //hypatia:pure", name, pc.an.nodeName(callee)))
	})
	for _, e := range pc.an.cg.edges[k] {
		if lit, isLit := e.callee.(*ast.FuncLit); isLit {
			// Plainly defined literals run on this frame; go-launched ones
			// are workers in their own right. Either way the contract
			// applies.
			pc.scanRootBody(lit, seen)
		}
	}
}
