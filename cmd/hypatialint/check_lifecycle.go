package main

// The lifecycle check: intraprocedural, flow-sensitive tracking of pooled
// forwarding tables — the arena-backed buffers the PR-2 pipeline recycles.
// A value acquired from routing.TablePool.Empty/Get, Snapshot.
// ForwardingTable, or routing.NewEmptyForwardingTable is LIVE; calling
// Release moves it to RELEASED; letting it reach another owner (returned,
// stored into a field/slice/map/channel, passed to a call, captured by a
// closure, address-taken, or aliased) moves it to ESCAPED, after which this
// function is no longer accountable for it. Findings:
//
//	use-after-release  any use of a table that may be released (some path
//	                   released it and none escaped it)
//	double-release     Release on a table that may already be released
//	leak               a pool-acquired table that reaches function exit (or
//	                   is overwritten) still live on some path — the classic
//	                   early-return/error-path bug
//
// The state is a may-bitset joined by union, so a table released on one
// branch and used after the merge is reported even though another branch
// kept it live. Aliasing transfers the state to the new name and marks the
// old one escaped; flows through containers are not tracked (the store
// itself escapes the table).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lifecycle state bits (may-analysis: a bit is set if some path put the
// table in that state).
const (
	lsLive uint8 = 1 << iota
	lsReleased
	lsEscaped
)

type lifecycleFact map[*types.Var]uint8

var lifecycleLattice = flowLattice[lifecycleFact]{
	bottom: func() lifecycleFact { return lifecycleFact{} },
	clone: func(f lifecycleFact) lifecycleFact {
		c := make(lifecycleFact, len(f))
		for k, v := range f {
			c[k] = v
		}
		return c
	},
	join: func(dst, src lifecycleFact) lifecycleFact {
		for k, v := range src {
			dst[k] |= v
		}
		return dst
	},
	equal: func(a, b lifecycleFact) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	},
}

// checkLifecyclePkg runs the lifecycle analysis over every function of the
// package. It is unscoped: tables may be acquired anywhere routing is
// imported.
func checkLifecyclePkg(p *pkg, rep *reporter) {
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		g := buildCFG(body, p.info)
		if g.unstructured {
			return // goto: block structure unreliable, skip the function
		}
		lc := &lifecycleCheck{p: p, acqPos: map[*types.Var]token.Pos{}}
		in := forwardDataflow(g, lifecycleLattice, lifecycleFact{}, lc.transfer)
		emit := func(n ast.Node, check, msg string) { rep.add(n.Pos(), check, msg) }
		exit := replayDataflow(g, lifecycleLattice, in, lc.transfer, emit)
		for v, st := range exit {
			if st&lsLive != 0 && st&lsEscaped == 0 {
				pos := v.Pos()
				if a, ok := lc.acqPos[v]; ok {
					pos = a
				}
				rep.add(pos, checkLifecycle, fmt.Sprintf(
					"pooled forwarding table %q may reach function exit without Release (leaked arena on some path)", v.Name()))
			}
		}
	})
}

// lifecycleCheck carries per-function side state for the transfer function.
type lifecycleCheck struct {
	p      *pkg
	acqPos map[*types.Var]token.Pos // first acquisition site per variable
}

// transfer advances the lifecycle fact across one CFG node.
func (lc *lifecycleCheck) transfer(f lifecycleFact, n ast.Node, emit func(ast.Node, string, string)) lifecycleFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Right-hand sides first (uses happen before the store).
		for _, rhs := range n.Rhs {
			lc.scanUses(f, rhs, emit)
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				lc.assign(f, lhs, n.Rhs[i], emit)
			}
		} else {
			for _, lhs := range n.Lhs {
				lc.assign(f, lhs, nil, emit)
			}
		}
		// Left-hand sides that are not plain identifiers (x.f = t, m[k] = t)
		// still evaluate their sub-expressions.
		for _, lhs := range n.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				lc.scanUses(f, lhs, emit)
			}
		}
	case *ast.DeferStmt:
		// Receiver and arguments are evaluated at the defer statement; the
		// deferred call itself is replayed in the CFG's exit block.
		lc.scanUses(f, n.Call.Fun, emit)
		for _, a := range n.Call.Args {
			lc.scanUses(f, a, emit)
			lc.escapeAfterUse(f, a, emit)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			lc.scanUses(f, r, emit)
			lc.escapeAfterUse(f, r, emit)
		}
	case ast.Stmt:
		lc.scanUses(f, n, emit)
	case ast.Expr:
		lc.scanUses(f, n, emit)
	}
	return f
}

// assign handles `lhs = rhs` for one assignment position.
func (lc *lifecycleCheck) assign(f lifecycleFact, lhs ast.Expr, rhs ast.Expr, emit func(ast.Node, string, string)) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		// Store into a field/slice/map: the stored table escapes.
		if rhs != nil {
			lc.escapeAfterUse(f, rhs, emit)
		}
		return
	}
	v, _ := lc.objectOf(id)
	if v == nil {
		return // `_ = t` discards without using; non-table lhs is untracked
	}
	// Overwriting a table that is still live on every account loses the
	// last reference without Release: report it as a leak at the overwrite.
	if st, tracked := f[v]; tracked && st == lsLive && emit != nil {
		emit(lhs, checkLifecycle, fmt.Sprintf(
			"pooled forwarding table %q overwritten while live; Release it first", v.Name()))
	}
	switch {
	case rhs == nil:
		delete(f, v)
	case lc.acqSite(rhs) != nil:
		f[v] = lsLive
		if _, ok := lc.acqPos[v]; !ok {
			lc.acqPos[v] = rhs.Pos()
		}
	default:
		if src := lc.trackedIdent(f, rhs); src != nil && src != v {
			// Alias: the new name takes over the state; the old name is no
			// longer this function's responsibility.
			f[v] = f[src]
			f[src] |= lsEscaped
		} else if src == nil {
			delete(f, v) // now holds an untracked value
		}
	}
}

// scanUses walks an expression/statement shallowly, reporting uses of
// maybe-released tables and applying Release/escape semantics to the calls
// and stores it contains.
func (lc *lifecycleCheck) scanUses(f lifecycleFact, n ast.Node, emit func(ast.Node, string, string)) {
	shallowInspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if v := lc.releaseReceiver(f, m); v != nil {
				if st := f[v]; st&lsReleased != 0 && st&lsEscaped == 0 && emit != nil {
					emit(m, checkLifecycle, fmt.Sprintf(
						"double Release of forwarding table %q (already released on some path)", v.Name()))
				}
				f[v] = lsReleased
				return false // receiver handled; not a plain use
			}
			// Tracked tables passed as arguments escape into the callee.
			for _, a := range m.Args {
				lc.escapeAfterUse(f, a, emit)
			}
		case *ast.SendStmt:
			lc.escapeAfterUse(f, m.Value, emit)
		case *ast.CompositeLit:
			for _, e := range m.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				lc.escapeAfterUse(f, e, emit)
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				lc.escapeAfterUse(f, m.X, emit) // address taken
			}
		case *ast.FuncLit:
			// Closure capture: every tracked variable referenced inside the
			// literal escapes this function's accounting.
			ast.Inspect(m.Body, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					if v, _ := lc.objectOf(id); v != nil {
						if _, tracked := f[v]; tracked {
							f[v] |= lsEscaped
						}
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if v, _ := lc.objectOf(m); v != nil {
				if st, tracked := f[v]; tracked && st&lsReleased != 0 && st&lsEscaped == 0 && emit != nil {
					emit(m, checkLifecycle, fmt.Sprintf(
						"forwarding table %q used after Release (its arena may already be reissued)", v.Name()))
				}
			}
		}
		return true
	})
}

// escapeAfterUse reports a maybe-released use of a tracked identifier, then
// marks it escaped (passed to another owner).
func (lc *lifecycleCheck) escapeAfterUse(f lifecycleFact, e ast.Expr, emit func(ast.Node, string, string)) {
	v := lc.trackedIdent(f, e)
	if v == nil {
		return
	}
	if st := f[v]; st&lsReleased != 0 && st&lsEscaped == 0 && emit != nil {
		emit(e, checkLifecycle, fmt.Sprintf(
			"forwarding table %q used after Release (its arena may already be reissued)", v.Name()))
	}
	f[v] |= lsEscaped
}

// trackedIdent returns the tracked variable e denotes, if any.
func (lc *lifecycleCheck) trackedIdent(f lifecycleFact, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := lc.objectOf(id)
	if v == nil {
		return nil
	}
	if _, tracked := f[v]; !tracked {
		return nil
	}
	return v
}

// objectOf resolves an identifier to a local *types.Var of type
// *routing.ForwardingTable.
func (lc *lifecycleCheck) objectOf(id *ast.Ident) (*types.Var, bool) {
	obj := lc.p.info.Uses[id]
	if obj == nil {
		obj = lc.p.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil, false
	}
	if !isForwardingTablePtr(v.Type()) {
		return nil, false
	}
	return v, true
}

// releaseReceiver recognizes `x.Release()` on a tracked table and returns x.
func (lc *lifecycleCheck) releaseReceiver(f lifecycleFact, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil
	}
	return lc.trackedIdent(f, sel.X)
}

// acqSite reports whether e is an acquisition call: TablePool.Empty/Get,
// Snapshot.ForwardingTable, or routing.NewEmptyForwardingTable.
func (lc *lifecycleCheck) acqSite(e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = lc.p.info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = lc.p.info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() == nil {
		if fn.Name() == "NewEmptyForwardingTable" && isRoutingPkg(fn.Pkg()) {
			return call
		}
		return nil
	}
	path, recv, okN := namedType(sig.Recv().Type())
	if !okN || !strings.HasSuffix(path, "internal/routing") {
		return nil
	}
	if (recv == "TablePool" && (fn.Name() == "Empty" || fn.Name() == "Get")) ||
		(recv == "Snapshot" && fn.Name() == "ForwardingTable") {
		return call
	}
	return nil
}

// isForwardingTablePtr reports whether t is *routing.ForwardingTable.
func isForwardingTablePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	path, name, ok := namedType(ptr.Elem())
	return ok && name == "ForwardingTable" && strings.HasSuffix(path, "internal/routing")
}

func isRoutingPkg(p *types.Package) bool {
	return p != nil && strings.HasSuffix(p.Path(), "internal/routing")
}

// forEachFuncBody invokes fn for every function declaration and function
// literal body in the package, each exactly once (an enclosing function's
// CFG stops at a literal; the literal's body is analyzed on its own visit).
func forEachFuncBody(p *pkg, fn func(body *ast.BlockStmt)) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}
