package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var fixtureScope = []string{"internal/sim", "internal/transport", "internal/routing"}

// loadExpectations scans the fixture tree for `// want <check>...` comments
// and returns the expected findings keyed by "file:line".
func loadExpectations(t *testing.T, root string) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", abs, line)
			want[key] = append(want[key], strings.Fields(after)...)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return want
}

// TestFixtures runs the analyzer over the fixture tree and requires the
// findings to match the `// want` annotations exactly: every annotated line
// must be flagged with the named check, and no unannotated line may be
// flagged. This covers at least one positive and one negative case per
// check family, plus the //lint:ignore suppression path.
func TestFixtures(t *testing.T) {
	findings, err := lint(".", []string{"./testdata/src/..."}, config{simScope: fixtureScope})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("no findings on fixtures; the fixture tree must exercise every check")
	}

	got := map[string][]string{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got[key] = append(got[key], f.Check)
	}
	want := loadExpectations(t, "testdata/src")

	for key, checks := range want {
		sort.Strings(checks)
		g := append([]string(nil), got[key]...)
		sort.Strings(g)
		if strings.Join(checks, ",") != strings.Join(g, ",") {
			t.Errorf("%s: want findings %v, got %v", key, checks, g)
		}
	}
	for key, checks := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected findings %v", key, checks)
		}
	}

	// Every check family must appear at least once (positive coverage).
	families := map[string]bool{}
	for _, f := range findings {
		families[f.Check] = true
	}
	for _, name := range []string{checkNondeterminism, checkTimeUnits, checkDroppedError, checkCopyLock} {
		if !families[name] {
			t.Errorf("check family %q produced no findings on its fixtures", name)
		}
	}
}

// TestRunExitCodes pins the command-line contract: findings exit 1, clean
// runs exit 0, usage errors exit 2.
func TestRunExitCodes(t *testing.T) {
	if code := run([]string{"./testdata/src/..."}); code != 1 {
		t.Errorf("run on fixtures = %d, want 1", code)
	}
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("run -list = %d, want 0", code)
	}
	if code := run([]string{"-badflag"}); code != 2 {
		t.Errorf("run with bad flag = %d, want 2", code)
	}
	if code := run([]string{"./does/not/exist"}); code != 2 {
		t.Errorf("run on missing dir = %d, want 2", code)
	}
}

// TestMalformedDirective verifies that broken //lint: comments are
// themselves findings rather than silent no-ops.
func TestMalformedDirective(t *testing.T) {
	// The loader resolves packages relative to the enclosing module, so the
	// scratch fixture must live inside the repo tree rather than t.TempDir.
	scratch := filepath.Join("testdata", "scratch")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	src := `package scratch

//lint:ignore droppederror
func missingReason() {}

//lint:ignore notacheck because reasons
func unknownCheck() {}

//lint:frobnicate x y
func unknownDirective() {}
`
	if err := os.WriteFile(filepath.Join(scratch, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lint(".", []string{"./" + scratch}, config{simScope: fixtureScope})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %v, want 3 directive findings", findings)
	}
	for _, f := range findings {
		if f.Check != checkDirective {
			t.Errorf("finding %v: want check %q", f, checkDirective)
		}
	}
}
