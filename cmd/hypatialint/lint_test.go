package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureCfg mirrors the default scopes, rebased onto the fixture tree: the
// fixture directories are named so their paths contain the same substrings
// as the real packages each scoped check targets.
var fixtureCfg = config{
	simScope:  []string{"internal/sim", "internal/transport", "internal/routing"},
	unitScope: []string{"internal/orbit", "internal/geom", "internal/tle"},
	lockScope: []string{"internal/core"},
	// The purity-root fixture lives under purity/core rather than
	// internal/core so the locksafety fixture's goroutines stay out of the
	// pure scope and vice versa.
	pureScope:   []string{"purity/core"},
	handleScope: []string{"internal/sim", "internal/graph", "internal/routing"},
}

// loadExpectations scans the fixture tree for `// want <check>...` comments
// and returns the expected findings keyed by "file:line".
func loadExpectations(t *testing.T, root string) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", abs, line)
			want[key] = append(want[key], strings.Fields(after)...)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return want
}

// TestFixtures runs the analyzer over the fixture tree and requires the
// unsuppressed findings to match the `// want` annotations exactly: every
// annotated line must be flagged with the named check, and no unannotated
// line may be flagged. Suppressed findings are excluded — the suppression
// path is covered separately by TestSuppressionState. This covers at least
// one positive and one negative case per check family.
func TestFixtures(t *testing.T) {
	findings, err := lint(".", []string{"./testdata/src/..."}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("no findings on fixtures; the fixture tree must exercise every check")
	}

	got := map[string][]string{}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got[key] = append(got[key], f.Check)
	}
	want := loadExpectations(t, "testdata/src")

	for key, checks := range want {
		sort.Strings(checks)
		g := append([]string(nil), got[key]...)
		sort.Strings(g)
		if strings.Join(checks, ",") != strings.Join(g, ",") {
			t.Errorf("%s: want findings %v, got %v", key, checks, g)
		}
	}
	for key, checks := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected findings %v", key, checks)
		}
	}

	// Every check family must appear at least once (positive coverage).
	families := map[string]bool{}
	for _, f := range findings {
		families[f.Check] = true
	}
	for _, name := range []string{
		checkNondeterminism, checkTimeUnits, checkDroppedError, checkCopyLock,
		checkLifecycle, checkUnitSafety, checkLockSafety, checkStaleIgnore,
		checkPurity, checkConfinement, checkHandleSafety, checkAllocSafety,
		checkDirective,
	} {
		if !families[name] {
			t.Errorf("check family %q produced no findings on its fixtures", name)
		}
	}
}

// TestLifecycleFixtureFailsAlone pins the acceptance criterion that the
// seeded use-after-Release fixture is caught when linted by itself, with the
// real command-line entry point and default scopes.
func TestLifecycleFixtureFailsAlone(t *testing.T) {
	if code := run([]string{"./testdata/src/lifecycle"}); code != 1 {
		t.Fatalf("run on lifecycle fixture = %d, want 1", code)
	}
	findings, err := lint(".", []string{"./testdata/src/lifecycle"}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	counts := map[string]int{}
	for _, f := range findings {
		if !f.Suppressed {
			counts[f.Check]++
		}
	}
	if counts[checkLifecycle] < 4 {
		t.Errorf("lifecycle findings = %d, want at least use-after-release, double-release, leak, and overwrite", counts[checkLifecycle])
	}
	if counts[checkStaleIgnore] != 1 {
		t.Errorf("staleignore findings = %d, want exactly the planted stale directive", counts[checkStaleIgnore])
	}
}

// TestConfinementFixtureFailsAlone pins the acceptance criterion that the
// seeded escape bugs in the confinement fixture fail the lint when run by
// themselves, with the full allocation-to-escape path present in both the
// text rendering and the -json output.
func TestConfinementFixtureFailsAlone(t *testing.T) {
	if code := run([]string{"./testdata/src/confine"}); code != 1 {
		t.Fatalf("run on confine fixture = %d, want 1", code)
	}
	findings, err := lint(".", []string{"./testdata/src/confine"}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var confinement int
	var pathed bool
	for _, f := range findings {
		if f.Check != checkConfinement {
			continue
		}
		confinement++
		if strings.Contains(f.String(), "escape path:") &&
			strings.Contains(f.Msg, "confine.arena value at fixture.go:") &&
			strings.Contains(f.Msg, "captured variable a") {
			pathed = true
		}
	}
	if confinement < 10 {
		t.Errorf("confinement findings = %d, want the fixture's ten seeded escapes", confinement)
	}
	if !pathed {
		t.Errorf("no finding renders the allocation-to-escape path; findings:\n%v", findings)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, findings); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var decoded []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decode -json output: %v", err)
	}
	var jsonPathed bool
	for _, d := range decoded {
		if d.Check == checkConfinement && strings.Contains(d.Message, "escape path:") {
			jsonPathed = true
		}
	}
	if !jsonPathed {
		t.Error("-json output carries no confinement finding with its escape path")
	}
}

// TestHandlesFixtureFailsAlone pins the acceptance criterion that each of
// the three seeded handlesafety bug classes — cross-domain index, stale
// handle after an epoch bump, and non-exhaustive tag switch — fails the
// lint when the fixture is run by itself, with the full acquire →
// invalidate → use path present in both the text rendering and the -json
// output.
func TestHandlesFixtureFailsAlone(t *testing.T) {
	if code := run([]string{"./testdata/src/internal/sim/handles"}); code != 1 {
		t.Fatalf("run on handles fixture = %d, want 1", code)
	}
	findings, err := lint(".", []string{"./testdata/src/internal/sim/handles"}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var crossDomain, stalePath, exhaustive bool
	for _, f := range findings {
		if f.Check != checkHandleSafety {
			continue
		}
		switch {
		case strings.Contains(f.Msg, "uses a node handle"):
			crossDomain = true
		case strings.Contains(f.Msg, "stale ring-slot handle: acquired at fixture.go:") &&
			strings.Contains(f.Msg, "→ invalidated by call to table.reset at fixture.go:") &&
			strings.Contains(f.Msg, "→ used here"):
			stalePath = true
		case strings.Contains(f.Msg, "does not cover kDrop"):
			exhaustive = true
		}
	}
	if !crossDomain {
		t.Error("no cross-domain index finding")
	}
	if !stalePath {
		t.Errorf("no stale-handle finding with the full acquire → invalidate → use path; findings:\n%v", findings)
	}
	if !exhaustive {
		t.Error("no tagged-union exhaustiveness finding")
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, findings); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var decoded []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decode -json output: %v", err)
	}
	var jsonPathed bool
	for _, d := range decoded {
		if d.Check == checkHandleSafety && strings.Contains(d.Message, "→ invalidated by") {
			jsonPathed = true
		}
	}
	if !jsonPathed {
		t.Error("-json output carries no handlesafety finding with its invalidation path")
	}
}

// TestAllocFixtureFailsAlone pins the acceptance criterion that each
// seeded allocsafety violation — escaping literal, fresh append, escaping
// closure, fmt boxing, a make buried two calls deep, and an allocating
// implementer of a //hypatia:noalloc interface — fails the lint when the
// fixture runs by itself, with the full allocation-origin call chain
// present in both the text rendering and the -json output, while the
// amortized arena, annotated warm-up, pool-reuse, panic-path,
// waived-setup-call, and blessed-interface negatives stay clean.
func TestAllocFixtureFailsAlone(t *testing.T) {
	if code := run([]string{"./testdata/src/allocsafety"}); code != 1 {
		t.Fatalf("run on allocsafety fixture = %d, want 1", code)
	}
	findings, err := lint(".", []string{"./testdata/src/allocsafety"}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var alloc int
	var chained bool
	for _, f := range findings {
		if f.Check != checkAllocSafety {
			continue
		}
		alloc++
		if strings.Contains(f.Msg, "make allocates at fixture.go:") &&
			strings.Contains(f.Msg, "call chain: allocsafety.entry → allocsafety.helper → allocsafety.mid") {
			chained = true
		}
		for _, clean := range []string{"push", "warmup", "get", "put", "checked", "setup", "total", "constSource.Sample"} {
			if strings.Contains(f.Msg, "allocsafety."+clean+" ") {
				t.Errorf("negative case %s flagged: %v", clean, f)
			}
		}
	}
	if alloc != 6 {
		t.Errorf("allocsafety findings = %d, want the fixture's six seeded violations; findings:\n%v", alloc, findings)
	}
	if !chained {
		t.Errorf("no finding renders the full allocation-origin call chain; findings:\n%v", findings)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, findings); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var decoded []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decode -json output: %v", err)
	}
	var jsonChained bool
	for _, d := range decoded {
		if d.Check == checkAllocSafety && strings.Contains(d.Message, "call chain: allocsafety.entry →") {
			jsonChained = true
		}
	}
	if !jsonChained {
		t.Error("-json output carries no allocsafety finding with its origin call chain")
	}
}

// TestFindingsSortedByPosition pins the output ordering contract: findings
// are sorted by file, then line, then column, then check name, in both the
// serial path and (via TestDriverMatchesSerialLint) the cached driver.
func TestFindingsSortedByPosition(t *testing.T) {
	findings, err := lint(".", []string{"./testdata/src/..."}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) < 2 {
		t.Fatalf("need at least two findings to check ordering, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		ka := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Check)
		kb := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Check)
		if ka > kb {
			t.Errorf("findings %d and %d out of (file, line, col, check) order:\n  %v\n  %v", i-1, i, a, b)
		}
	}
	// The ordering must also survive a shuffle through sortFindings itself
	// so the contract does not silently depend on discovery order.
	shuffled := append([]Finding(nil), findings...)
	for i := range shuffled {
		j := (i*7 + 3) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	sortFindings(shuffled)
	for i := range shuffled {
		if shuffled[i].String() != findings[i].String() {
			t.Fatalf("sortFindings not canonical at %d: %v vs %v", i, shuffled[i], findings[i])
		}
	}
}

// TestSuppressionState verifies that a matched //lint:ignore keeps the
// finding (marked suppressed, excluded from the exit status) and counts the
// directive as used, while an unmatched directive becomes a staleignore
// finding.
func TestSuppressionState(t *testing.T) {
	findings, err := lint(".", []string{"./testdata/src/lifecycle"}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var suppressed, stale int
	for _, f := range findings {
		if f.Suppressed {
			if f.Check != checkLifecycle {
				t.Errorf("suppressed finding of unexpected family %q", f.Check)
			}
			suppressed++
		}
		if f.Check == checkStaleIgnore {
			stale++
			if f.Suppressed {
				t.Error("the stale-directive finding must not itself be suppressed")
			}
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings = %d, want exactly the fixture's suppressed use-after-release", suppressed)
	}
	if stale != 1 {
		t.Errorf("staleignore findings = %d, want exactly the planted stale directive", stale)
	}
}

// TestJSONOutput round-trips the -json schema: an array of objects with
// stable field names, including suppressed findings with their state.
func TestJSONOutput(t *testing.T) {
	findings, err := lint(".", []string{"./testdata/src/lifecycle"}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, findings); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var decoded []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not a JSON array of findings: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(findings) {
		t.Fatalf("decoded %d findings, want %d", len(decoded), len(findings))
	}
	var sawSuppressed bool
	for i, d := range decoded {
		if d.Check == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("finding %d has empty fields: %+v", i, d)
		}
		sawSuppressed = sawSuppressed || d.Suppressed
	}
	if !sawSuppressed {
		t.Error("JSON output must include suppressed findings with suppressed=true")
	}
	// An empty run must still print a JSON array for jq round-tripping.
	buf.Reset()
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatalf("writeJSON(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings encode as %q, want []", got)
	}
}

// TestRunExitCodes pins the command-line contract: findings exit 1, clean
// runs exit 0, usage errors exit 2 — in both text and JSON modes.
func TestRunExitCodes(t *testing.T) {
	if code := run([]string{"./testdata/src/..."}); code != 1 {
		t.Errorf("run on fixtures = %d, want 1", code)
	}
	if code := run([]string{"-json", "./testdata/src/..."}); code != 1 {
		t.Errorf("run -json on fixtures = %d, want 1", code)
	}
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("run -list = %d, want 0", code)
	}
	if code := run([]string{"-badflag"}); code != 2 {
		t.Errorf("run with bad flag = %d, want 2", code)
	}
	if code := run([]string{"./does/not/exist"}); code != 2 {
		t.Errorf("run on missing dir = %d, want 2", code)
	}
}

// TestPurityCallChain pins the acceptance criterion that an injected
// global write deep inside the fixture copy of the table computation is
// caught at the worker's call site with the full call chain named.
func TestPurityCallChain(t *testing.T) {
	findings, err := lint(".", []string{"./testdata/src/purity/core"}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var chained bool
	for _, f := range findings {
		if f.Check != checkPurity {
			continue
		}
		if strings.Contains(f.Msg, "writes package-level variable sharedTotal") &&
			strings.Contains(f.Msg, "core.computeTable → core.fillColumn") {
			chained = true
		}
	}
	if !chained {
		t.Errorf("no purity finding names the injected write with its full call chain; findings:\n%v", findings)
	}
}

// TestSuppressionEdgeCases pins two corners of the directive machinery:
// a line producing findings from two checks with an ignore naming only one
// of them (only the named finding is suppressed, the directive is used),
// and two directives — one above, one trailing — matching the same
// suppressed finding (both are used, neither is stale).
func TestSuppressionEdgeCases(t *testing.T) {
	scratch := filepath.Join("testdata", "scratch-suppress")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	src := `package scratch

func mightFail(bool) error { return nil }

// The next statement drops an error and compares floats on one line; the
// directive names only droppederror, so the timeunits finding survives.
func twoChecksOneIgnore(a, b float64) {
	//lint:ignore droppederror exercises one-of-two suppression
	mightFail(a == b)
}

// Both directives match the single droppederror finding between them:
// the finding is suppressed once and neither directive is stale.
func doubledDirective() {
	//lint:ignore droppederror covered from the line above
	mightFail(false) //lint:ignore droppederror covered from the same line
}
`
	if err := os.WriteFile(filepath.Join(scratch, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lint(".", []string{"./" + scratch}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	type key struct {
		check      string
		suppressed bool
	}
	counts := map[key]int{}
	for _, f := range findings {
		counts[key{f.Check, f.Suppressed}]++
	}
	want := map[key]int{
		{checkDroppedError, true}: 2,
		{checkTimeUnits, false}:   1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("findings with check=%s suppressed=%v: got %d, want %d", k.check, k.suppressed, counts[k], n)
		}
	}
	for k := range counts {
		if _, ok := want[k]; !ok {
			t.Errorf("unexpected findings: check=%s suppressed=%v ×%d", k.check, k.suppressed, counts[k])
		}
	}
}

// TestFactCache drives lintDriver through a cold run, a warm run, and an
// invalidating edit. The warm run is proven to come from the cache by
// tampering with the stored entry: the tampered message surfacing in the
// results means no re-analysis happened. The edit then changes the
// package's content hash, so the tampered entry is ignored and the fresh
// findings reflect the new source.
func TestFactCache(t *testing.T) {
	scratch := filepath.Join("testdata", "scratch-cache")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	srcFile := filepath.Join(scratch, "scratch.go")
	src := `package scratch

func mightFail(int) error { return nil }

func drop() {
	mightFail(1)
}

// scratchArena exists so the entry must carry confinement facts.
//
//hypatia:confined
type scratchArena struct{ n int }

//hypatia:transfer
func handoff(a *scratchArena) *scratchArena { return a }

// scratchRing exists so the entry must carry handle facts.
type scratchRing struct {
	owner int //hypatia:handle(node)
}

// reuse is proven allocation-free, so it must be absent from the
// persisted allocation facts; leaky must be recorded as allocating.
//
//hypatia:noalloc
func reuse(buf []int) []int { return buf[:0] }

func leaky() []byte { return make([]byte, 8) }
`
	if err := os.WriteFile(srcFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()

	cold, err := lintDriver(".", []string{"./" + scratch}, fixtureCfg, cacheDir, true)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(cold) != 1 || cold[0].Check != checkDroppedError {
		t.Fatalf("cold run: got %v, want one %s finding", cold, checkDroppedError)
	}

	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries after cold run: %v (err %v), want exactly one", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		t.Fatalf("decoding cache entry: %v", err)
	}
	if entry.Confinement["type scratchArena"] != "confined" || entry.Confinement["func handoff"] != "transfer" {
		t.Errorf("cache entry confinement facts = %v, want the scratch annotations persisted", entry.Confinement)
	}
	var handlePersisted bool
	for k, v := range entry.Handles {
		if strings.HasPrefix(k, "field owner at scratch.go:") && v == "handle node" {
			handlePersisted = true
		}
	}
	if !handlePersisted {
		t.Errorf("cache entry handle facts = %v, want the owner field annotation persisted", entry.Handles)
	}
	if entry.Allocs["scratch-cache.leaky"] != "allocates" {
		t.Errorf("cache entry allocation facts = %v, want leaky recorded as allocates", entry.Allocs)
	}
	if _, recorded := entry.Allocs["scratch-cache.reuse"]; recorded {
		t.Errorf("cache entry allocation facts = %v, want the proven-noalloc reuse omitted", entry.Allocs)
	}

	const marker = "TAMPERED-BY-TEST"
	tampered := bytes.Replace(data, []byte(cold[0].Msg), []byte(marker), 1)
	if bytes.Equal(tampered, data) {
		t.Fatalf("cached entry does not contain the finding message %q", cold[0].Msg)
	}
	if err := os.WriteFile(entries[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := lintDriver(".", []string{"./" + scratch}, fixtureCfg, cacheDir, true)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if len(warm) != 1 || warm[0].Msg != marker {
		t.Fatalf("warm run: got %v, want the tampered cached finding (proof the cache was used)", warm)
	}

	// Fix the dropped error and introduce a float equality instead: the
	// content hash changes, the tampered entry no longer matches its key,
	// and the fresh analysis must report the new finding.
	edited := `package scratch

func mightFail(int) error { return nil }

func drop(a, b float64) bool {
	_ = mightFail(1)
	return a == b
}
`
	if err := os.WriteFile(srcFile, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := lintDriver(".", []string{"./" + scratch}, fixtureCfg, cacheDir, true)
	if err != nil {
		t.Fatalf("post-edit run: %v", err)
	}
	if len(fresh) != 1 || fresh[0].Check != checkTimeUnits || fresh[0].Msg == marker {
		t.Fatalf("post-edit run: got %v, want one fresh %s finding", fresh, checkTimeUnits)
	}
}

// TestCacheStaleSchemaRecomputes pins the schema-eviction contract: an
// entry written by an older analyzer (lower schema number) must be treated
// as a miss and recomputed, never replayed — even when its key would still
// match.
func TestCacheStaleSchemaRecomputes(t *testing.T) {
	scratch := filepath.Join("testdata", "scratch-schema")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	src := `package scratch

func mightFail(int) error { return nil }

func drop() {
	mightFail(1)
}
`
	if err := os.WriteFile(filepath.Join(scratch, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	cold, err := lintDriver(".", []string{"./" + scratch}, fixtureCfg, cacheDir, true)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(cold) != 1 || cold[0].Check != checkDroppedError {
		t.Fatalf("cold run: got %v, want one %s finding", cold, checkDroppedError)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries: %v (err %v), want exactly one", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Schema != cacheSchema {
		t.Fatalf("cold entry schema = %d, want %d", entry.Schema, cacheSchema)
	}
	// Regress the entry to the previous schema and plant a marker: if the
	// warm run replays it, the marker surfaces; if it correctly evicts, the
	// recomputed finding matches the cold one and the entry is rewritten at
	// the current schema.
	const marker = "STALE-SCHEMA-REPLAYED"
	entry.Schema = cacheSchema - 1
	entry.Findings[0].Message = marker
	stale, err := json.Marshal(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], stale, 0o644); err != nil {
		t.Fatal(err)
	}
	warm, err := lintDriver(".", []string{"./" + scratch}, fixtureCfg, cacheDir, true)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if len(warm) != 1 || warm[0].Msg != cold[0].Msg {
		t.Fatalf("warm run after schema regression: got %v, want the recomputed finding %q", warm, cold[0].Msg)
	}
	data, err = os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Schema != cacheSchema || entry.Findings[0].Message != cold[0].Msg {
		t.Errorf("stale entry not rewritten at schema %d: %+v", cacheSchema, entry)
	}
}

// TestCacheColdRunsByteIdentical pins the determinism the warm-equals-cold
// contract rests on: two cold runs over the same tree — allocation facts
// included — must serialize byte-identical cache entries.
func TestCacheColdRunsByteIdentical(t *testing.T) {
	read := func(dir string) map[string][]byte {
		t.Helper()
		entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil || len(entries) == 0 {
			t.Fatalf("cache entries: %v (err %v)", entries, err)
		}
		out := map[string][]byte{}
		for _, e := range entries {
			data, err := os.ReadFile(e)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(e)] = data
		}
		return out
	}
	pattern := "./testdata/src/allocsafety"
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := lintDriver(".", []string{pattern}, fixtureCfg, dirA, true); err != nil {
		t.Fatalf("first cold run: %v", err)
	}
	if _, err := lintDriver(".", []string{pattern}, fixtureCfg, dirB, true); err != nil {
		t.Fatalf("second cold run: %v", err)
	}
	a, b := read(dirA), read(dirB)
	if len(a) != len(b) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Errorf("entry %s differs between cold runs:\n%s\nvs\n%s", name, data, b[name])
		}
		var entry cacheEntry
		if err := json.Unmarshal(data, &entry); err != nil {
			t.Fatal(err)
		}
		if entry.Allocs["allocsafety.sliceLit"] != "allocates" {
			t.Errorf("entry %s allocation facts = %v, want sliceLit recorded as allocates", name, entry.Allocs)
		}
		if entry.Allocs["allocsafety.arena.push"] != "amortized-grow" {
			t.Errorf("entry %s allocation facts = %v, want arena.push recorded as amortized-grow", name, entry.Allocs)
		}
	}
}

// TestDriverMatchesSerialLint verifies the cached parallel driver and the
// serial uncached path agree over the full fixture tree — findings,
// suppression state, order, everything.
func TestDriverMatchesSerialLint(t *testing.T) {
	pattern := "./testdata/src/..."
	serial, err := lint(".", []string{pattern}, fixtureCfg)
	if err != nil {
		t.Fatalf("serial lint: %v", err)
	}
	cacheDir := t.TempDir()
	for _, mode := range []string{"cold", "warm"} {
		got, err := lintDriver(".", []string{pattern}, fixtureCfg, cacheDir, true)
		if err != nil {
			t.Fatalf("%s driver run: %v", mode, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("%s driver run: %d findings, serial %d", mode, len(got), len(serial))
		}
		// Cache entries do not store byte offsets, so compare the rendered
		// form (file:line:col, check, message) plus the suppression state.
		for i := range got {
			if got[i].String() != serial[i].String() || got[i].Suppressed != serial[i].Suppressed {
				t.Errorf("%s driver run, finding %d:\n  driver: %v\n  serial: %v", mode, i, got[i], serial[i])
			}
		}
	}
}

// TestMalformedDirective verifies that broken //lint: comments are
// themselves findings rather than silent no-ops.
func TestMalformedDirective(t *testing.T) {
	// The loader resolves packages relative to the enclosing module, so the
	// scratch fixture must live inside the repo tree rather than t.TempDir.
	scratch := filepath.Join("testdata", "scratch")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	src := `package scratch

//lint:ignore droppederror
func missingReason() {}

//lint:ignore notacheck because reasons
func unknownCheck() {}

//lint:frobnicate x y
func unknownDirective() {}
`
	if err := os.WriteFile(filepath.Join(scratch, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lint(".", []string{"./" + scratch}, fixtureCfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %v, want 3 directive findings", findings)
	}
	for _, f := range findings {
		if f.Check != checkDirective {
			t.Errorf("finding %v: want check %q", f, checkDirective)
		}
	}
}
