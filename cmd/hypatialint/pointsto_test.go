package main

import (
	"go/token"
	"testing"
)

// wantPts asserts the solved points-to set of n.
func wantPts(t *testing.T, s *ptSolver, n ptNode, want ...ptObj) {
	t.Helper()
	got := s.pts(n)
	if len(got) != len(want) {
		t.Fatalf("pts(%s) = %v, want %v", s.nodes[n].label, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pts(%s) = %v, want %v", s.nodes[n].label, got, want)
		}
	}
}

// TestPtsSolverCopyChain checks basic address-of and copy propagation,
// including a copy edge registered after its source already has a
// points-to set (the replay path) and one registered before (the worklist
// path).
func TestPtsSolverCopyChain(t *testing.T) {
	s := newPtsSolver()
	objA := s.newObject(objAlloc, nil, token.NoPos, "A")
	objB := s.newObject(objAlloc, nil, token.NoPos, "B")

	x := s.newNode("x")
	y := s.newNode("y")
	z := s.newNode("z")
	s.addObj(x, objA)
	s.addCopy(x, y) // x already holds A: replay must seed y
	s.addCopy(y, z) // y holds A only via replay: chain must extend
	s.addObj(x, objB)
	s.solve()

	wantPts(t, s, x, objA, objB)
	wantPts(t, s, y, objA, objB)
	wantPts(t, s, z, objA, objB)
}

// TestPtsSolverFieldFlow checks store/load through a field slot in both
// registration orders: constraint-before-base (fires from the worklist
// when the base's set grows) and base-before-constraint (fires on
// registration).
func TestPtsSolverFieldFlow(t *testing.T) {
	s := newPtsSolver()
	objP := s.newObject(objAlloc, nil, token.NoPos, "P")
	objQ := s.newObject(objAlloc, nil, token.NoPos, "Q")
	objA := s.newObject(objAlloc, nil, token.NoPos, "A")

	p := s.newNode("p")
	src := s.newNode("src")
	early := s.newNode("early")
	late := s.newNode("late")

	s.addObj(src, objA)
	s.addLoad(p, "f", early, nil) // registered before p points anywhere
	s.addStore(p, "f", src, nil)  // likewise
	s.addObj(p, objP)             // worklist must fire both constraints
	s.addObj(p, objQ)
	s.solve()
	s.addLoad(p, "f", late, nil) // registered after the fixpoint: replay

	wantPts(t, s, early, objA)
	wantPts(t, s, late, objA)

	// The store must have reached the slot of every object p may point at.
	for _, o := range []ptObj{objP, objQ} {
		if got := s.pts(s.slotNode(o, "f", nil)); len(got) != 1 || got[0] != objA {
			t.Fatalf("slot f of %s = %v, want [A]", s.objs[o].label, got)
		}
	}
	if names := s.sortedSlots(objP); len(names) != 1 || names[0] != "f" {
		t.Fatalf("slots of P = %v, want [f]", names)
	}
}

// TestPtsSolverCycle checks that mutually recursive copy edges converge
// instead of looping: a ⊇ b, b ⊇ a, with objects seeded on both sides.
func TestPtsSolverCycle(t *testing.T) {
	s := newPtsSolver()
	objA := s.newObject(objAlloc, nil, token.NoPos, "A")
	objB := s.newObject(objAlloc, nil, token.NoPos, "B")

	a := s.newNode("a")
	b := s.newNode("b")
	s.addCopy(a, b)
	s.addCopy(b, a)
	s.addObj(a, objA)
	s.addObj(b, objB)
	s.solve()

	wantPts(t, s, a, objA, objB)
	wantPts(t, s, b, objA, objB)
}

// TestPtsSolverStructCopy checks the `*p = y` struct-pointee constraint:
// every field slot of every object p points at absorbs the matching field
// of y's pointees — including objects that join pts(p) after registration.
func TestPtsSolverStructCopy(t *testing.T) {
	s := newPtsSolver()
	objDst := s.newObject(objAlloc, nil, token.NoPos, "Dst")
	objLate := s.newObject(objAlloc, nil, token.NoPos, "Late")
	objSrc := s.newObject(objAlloc, nil, token.NoPos, "Src")
	objA := s.newObject(objAlloc, nil, token.NoPos, "A")

	// Src.f holds A.
	srcVal := s.newNode("srcVal")
	s.addObj(srcVal, objSrc)
	held := s.newNode("held")
	s.addObj(held, objA)
	s.addStore(srcVal, "f", held, nil)

	p := s.newNode("p")
	s.addObj(p, objDst)
	s.addStructCopy(p, srcVal, []ptFieldRef{{name: "f"}})
	s.addObj(p, objLate) // joins after the struct-copy is registered
	s.solve()

	for _, o := range []ptObj{objDst, objLate} {
		if got := s.pts(s.slotNode(o, "f", nil)); len(got) != 1 || got[0] != objA {
			t.Fatalf("slot f of %s = %v, want [A]", s.objs[o].label, got)
		}
	}
}
