package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseCFG builds the CFG of the first function declaration in src.
func parseCFG(t *testing.T, src string) *funcCFG {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body, nil)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// findBlock returns the first block containing a node matched by pred.
func findBlock(g *funcCFG, pred func(ast.Node) bool) *cfgBlock {
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			found := false
			shallowInspect(n, func(m ast.Node) bool {
				found = found || pred(m)
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

func assignsLit(val string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		lit, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && lit.Value == val
	}
}

func hasSucc(from, to *cfgBlock) bool {
	for _, s := range from.succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	g := parseCFG(t, `func f() { a := 1; b := a; _ = b }`)
	if len(g.entry.nodes) != 3 {
		t.Errorf("entry holds %d nodes, want all 3 statements", len(g.entry.nodes))
	}
	if !hasSucc(g.entry, g.exit) {
		t.Error("straight-line body must flow entry -> exit")
	}
	if g.unstructured {
		t.Error("straight-line body marked unstructured")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := parseCFG(t, `func f(a bool) int {
		x := 1
		if a {
			return x
		}
		x = 2
		return x
	}`)
	preds := g.preds()
	if n := len(preds[g.exit]); n != 2 {
		t.Errorf("exit has %d predecessors, want 2 (early return and fallthrough return)", n)
	}
	reach := g.reachable()
	if !reach[g.exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := parseCFG(t, `func f(n int) {
		s := 0
		for i := 0; i < n; i++ {
			if i == 3 {
				continue
			}
			if i == 7 {
				break
			}
			s = 9
		}
		s = 2
		_ = s
	}`)
	// The loop must produce a cycle reachable from entry.
	reach := g.reachable()
	cycle := false
	for blk := range reach {
		var stack []*cfgBlock
		seen := map[*cfgBlock]bool{}
		stack = append(stack, blk.succs...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if b == blk {
				cycle = true
				break
			}
			if !seen[b] {
				seen[b] = true
				stack = append(stack, b.succs...)
			}
		}
		if cycle {
			break
		}
	}
	if !cycle {
		t.Error("for loop produced no cycle in the CFG")
	}
	// break must route to the code after the loop: the block assigning 9
	// (loop body tail) and the block assigning 2 (after the loop) are both
	// reachable.
	if blk := findBlock(g, assignsLit("9")); blk == nil || !reach[blk] {
		t.Error("loop body tail unreachable")
	}
	if blk := findBlock(g, assignsLit("2")); blk == nil || !reach[blk] {
		t.Error("code after the loop unreachable")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := parseCFG(t, `func f(xs []int) {
		s := 0
		for _, x := range xs {
			s = 9
			_ = x
		}
		s = 2
		_ = s
	}`)
	reach := g.reachable()
	body := findBlock(g, assignsLit("9"))
	after := findBlock(g, assignsLit("2"))
	if body == nil || after == nil || !reach[body] || !reach[after] {
		t.Fatal("range body or continuation missing from the CFG")
	}
	// The body loops back to the header, never straight to the continuation.
	if hasSucc(body, after) {
		t.Error("range body must flow back through the header, not fall through")
	}
}

func TestCFGDeferReplayedAtExit(t *testing.T) {
	g := parseCFG(t, `func f(a bool) {
		defer cleanup()
		if a {
			return
		}
		work()
	}`)
	if len(g.exit.nodes) == 0 {
		t.Fatal("exit block empty; deferred call not replayed")
	}
	last := g.exit.nodes[len(g.exit.nodes)-1]
	call, ok := last.(*ast.CallExpr)
	if !ok {
		t.Fatalf("exit block ends with %T, want the deferred *ast.CallExpr", last)
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "cleanup" {
		t.Errorf("replayed call is %v, want cleanup()", call.Fun)
	}
	if n := len(g.preds()[g.exit]); n != 2 {
		t.Errorf("exit has %d predecessors, want 2 (early return and normal completion)", n)
	}
}

func TestCFGDeferLIFO(t *testing.T) {
	g := parseCFG(t, `func f() {
		defer first()
		defer second()
	}`)
	var names []string
	for _, n := range g.exit.nodes {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				names = append(names, id.Name)
			}
		}
	}
	if strings.Join(names, ",") != "second,first" {
		t.Errorf("deferred calls replay as %v, want LIFO [second first]", names)
	}
}

func TestCFGPanicTerminatesBlock(t *testing.T) {
	g := parseCFG(t, `func f(a bool) {
		if a {
			panic("dead end")
		}
		_ = a
	}`)
	blk := findBlock(g, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	})
	if blk == nil {
		t.Fatal("panic block not found")
	}
	if len(blk.succs) != 0 {
		t.Errorf("panic block has %d successors, want 0 (the path dies)", len(blk.succs))
	}
}

func TestCFGGotoUnstructured(t *testing.T) {
	g := parseCFG(t, `func f() {
	loop:
		goto loop
	}`)
	if !g.unstructured {
		t.Error("goto must mark the CFG unstructured")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := parseCFG(t, `func f(x, y int) {
		switch x {
		case 1:
			y = 1
			fallthrough
		case 2:
			y = 2
		default:
			y = 3
		}
		_ = y
	}`)
	one := findBlock(g, assignsLit("1"))
	two := findBlock(g, assignsLit("2"))
	three := findBlock(g, assignsLit("3"))
	if one == nil || two == nil || three == nil {
		t.Fatal("case bodies missing from the CFG")
	}
	if !hasSucc(one, two) {
		t.Error("fallthrough must wire case 1 directly into case 2")
	}
	if hasSucc(two, three) {
		t.Error("case 2 must not fall into default")
	}
	reach := g.reachable()
	for _, blk := range []*cfgBlock{one, two, three} {
		if !reach[blk] {
			t.Error("a case body is unreachable")
		}
	}
}

func TestShallowInspectSkipsNestedBodies(t *testing.T) {
	f, err := parser.ParseFile(token.NewFileSet(), "test.go", `package p
func f(xs []int) {
	for k, v := range xs {
		inner()
		_ = k
		_ = v
	}
}`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var rng *ast.RangeStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			rng = r
		}
		return true
	})
	var idents []string
	shallowInspect(rng, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			idents = append(idents, id.Name)
		}
		return true
	})
	joined := strings.Join(idents, ",")
	if !strings.Contains(joined, "k") || !strings.Contains(joined, "xs") {
		t.Errorf("range header idents not visited: %v", idents)
	}
	if strings.Contains(joined, "inner") {
		t.Errorf("shallowInspect descended into the range body: %v", idents)
	}
}
