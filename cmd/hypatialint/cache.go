package main

// The on-disk fact cache. One JSON entry per lint-target package, keyed by
// a hash that pins everything a package's findings are a function of: the
// analyzer schema, the Go toolchain, the linter configuration, the
// package's own file contents, and — transitively, through the dependency
// keys — the contents of every module-local package it imports. That the
// findings really are such a function is the cache-coherence invariant the
// checks maintain: every finding is reported at a position inside the
// package under analysis, mutable-global classification is
// defining-package-only, and implementer obligations land in the
// implementer's package.
//
// Entries store findings with module-root-relative paths (re-absolutized
// on read) in the globally sorted order the cold run produced, so a warm
// assembly of cached entries is byte-identical to the cold output.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// hashf writes formatted data into a hash; hash writes cannot fail.
func hashf(h io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(h, format, args...)
}

// cacheSchema versions the entry format and the analyzer itself: bump it
// whenever a check's behavior changes, so stale entries self-invalidate.
// Schema 2: confinement check + per-package confinement facts.
// Schema 3: handlesafety check (handle domains, epochs, exhaustiveness),
// per-package handle facts, and the check-name tiebreak in finding order.
// Schema 4: allocsafety check (//hypatia:noalloc contract, allocation
// lattice) and per-package allocation classes.
const cacheSchema = 4

// pkgMeta is the cheap, imports-only view of one package directory used
// for cache keying and load scheduling — no type-checking involved.
type pkgMeta struct {
	path        string   // import path
	dir         string   // absolute directory
	contentHash string   // hash of the build-selected source files
	deps        []string // module-local imports, sorted
}

// scanMeta parses a package directory in imports-only mode, applying the
// same file selection as the full loader (non-test files passing the
// default build configuration).
func scanMeta(l *loader, path, dir string) (*pkgMeta, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	h := sha256.New()
	deps := map[string]bool{}
	fset := token.NewFileSet()
	any := false
	for _, n := range names {
		src, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, n, src, parser.ImportsOnly|parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildTagsMatch(f) {
			continue
		}
		any = true
		hashf(h, "file %s %d\n", n, len(src))
		_, _ = h.Write(src)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == l.module || strings.HasPrefix(p, l.module+"/") {
				deps[p] = true
			}
		}
	}
	if !any {
		return nil, fmt.Errorf("%s: no Go files match the build configuration", dir)
	}
	m := &pkgMeta{path: path, dir: dir, contentHash: hex.EncodeToString(h.Sum(nil))}
	for d := range deps {
		if d != path {
			//lint:ignore locksafety metadata discovery completes before loadAll launches the goroutines that read deps
			m.deps = append(m.deps, d)
		}
	}
	sort.Strings(m.deps)
	return m, nil
}

// discoverMetas scans the lint targets and their transitive module-local
// imports, returning the metadata closure the keyer and the parallel
// loader both run on.
func discoverMetas(l *loader, targetPaths []string) (map[string]*pkgMeta, error) {
	metas := map[string]*pkgMeta{}
	var visit func(path string) error
	visit = func(path string) error {
		if _, ok := metas[path]; ok {
			return nil
		}
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")))
		m, err := scanMeta(l, path, dir)
		if err != nil {
			return err
		}
		metas[path] = m
		for _, d := range m.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		return nil
	}
	for _, tp := range targetPaths {
		if err := visit(tp); err != nil {
			return nil, err
		}
	}
	return metas, nil
}

// configHash folds everything about the invocation (other than the source
// tree) that findings depend on into one string.
func configHash(cfg config) string {
	h := sha256.New()
	hashf(h, "schema %d\ngo %s\nmodule %s\n", cacheSchema, runtime.Version(), cfg.module)
	for _, scope := range [][]string{cfg.simScope, cfg.unitScope, cfg.lockScope, cfg.pureScope, cfg.handleScope} {
		hashf(h, "scope %s\n", strings.Join(scope, ","))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// computeKeys derives every package's cache key bottom-up over the import
// DAG: a package's key covers its own content and its dependencies' keys,
// so editing a package invalidates every dependent.
func computeKeys(metas map[string]*pkgMeta, cfgHash string) map[string]string {
	keys := map[string]string{}
	var keyOf func(path string) string
	keyOf = func(path string) string {
		if k, ok := keys[path]; ok {
			return k
		}
		m := metas[path]
		h := sha256.New()
		hashf(h, "cfg %s\npkg %s\ncontent %s\n", cfgHash, path, m.contentHash)
		for _, d := range m.deps {
			hashf(h, "dep %s %s\n", d, keyOf(d))
		}
		k := hex.EncodeToString(h.Sum(nil))
		keys[path] = k
		return k
	}
	for path := range metas {
		keyOf(path)
	}
	return keys
}

// cachedFinding is one finding with its file path relative to the module
// root, so entries survive a checkout moving on disk.
type cachedFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// cacheEntry is the on-disk record for one package.
type cacheEntry struct {
	Schema   int                 `json:"schema"`
	Key      string              `json:"key"`
	Package  string              `json:"package"`
	Findings []cachedFinding     `json:"findings"`
	Effects  map[string][]string `json:"effects,omitempty"`
	// Confinement records the //hypatia:confined and //hypatia:transfer
	// annotations the package declares (JSON object keys marshal sorted, so
	// warm entries stay byte-identical to cold ones).
	Confinement map[string]string `json:"confinement,omitempty"`
	// Handles records the //hypatia:handle, //hypatia:epoch, and
	// //hypatia:exhaustive annotations the package declares.
	Handles map[string]string `json:"handles,omitempty"`
	// Allocs records the computed allocation class of each declared
	// function that is not proven allocation-free (absence means NoAlloc).
	Allocs map[string]string `json:"allocs,omitempty"`
}

// entryFile maps an import path to its entry file name.
func entryFile(cacheDir, path string) string {
	return filepath.Join(cacheDir, strings.ReplaceAll(path, "/", "__")+".json")
}

// readCacheEntry returns the cached findings for path if a valid entry
// with the expected key exists; any mismatch or decode failure is a miss.
func readCacheEntry(cacheDir, path, key, root string) ([]Finding, bool) {
	data, err := os.ReadFile(entryFile(cacheDir, path))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchema || e.Key != key || e.Package != path {
		return nil, false
	}
	findings := make([]Finding, 0, len(e.Findings))
	for _, f := range e.Findings {
		findings = append(findings, Finding{
			Pos: token.Position{
				Filename: filepath.Join(root, filepath.FromSlash(f.File)),
				Line:     f.Line,
				Column:   f.Col,
			},
			Check:      f.Check,
			Msg:        f.Message,
			Suppressed: f.Suppressed,
		})
	}
	return findings, true
}

// writeCacheEntry persists one package's findings (already in their final
// sorted order) and effect summaries, atomically via temp file + rename.
func writeCacheEntry(cacheDir, path, key, root string, findings []Finding, effects map[string][]string, confinement, handles, allocs map[string]string) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	e := cacheEntry{Schema: cacheSchema, Key: key, Package: path, Effects: effects, Confinement: confinement, Handles: handles, Allocs: allocs}
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			return err
		}
		e.Findings = append(e.Findings, cachedFinding{
			File:       filepath.ToSlash(rel),
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Check:      f.Check,
			Message:    f.Msg,
			Suppressed: f.Suppressed,
		})
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(cacheDir, ".entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), entryFile(cacheDir, path))
}
