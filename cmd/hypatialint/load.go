package main

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// pkg is one loaded, type-checked package ready for linting.
type pkg struct {
	path  string // import path, e.g. hypatia/internal/sim
	dir   string // absolute directory
	fset  *token.FileSet
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader discovers, parses, and type-checks packages of the current module
// using only the standard library: module-local imports are resolved by
// mapping the import path onto the module directory tree, and everything
// else (the standard library) goes through the source importer rooted at
// GOROOT. No `go list` subprocess, no external dependencies.
type loader struct {
	fset   *token.FileSet
	std    types.Importer
	root   string // module root directory (absolute)
	module string // module path from go.mod
	cache  map[string]*pkg
	// loading guards against import cycles, which would otherwise recurse
	// forever; Go forbids them, so hitting one is a hard error.
	loading map[string]bool
	// mu guards cache during the parallel load phase; stdMu serializes the
	// GOROOT source importer, which memoizes internally but is not safe for
	// concurrent use. parallel marks that phase: module-local imports must
	// then already be loaded (the driver schedules dependencies first), so
	// a miss is an internal error rather than a recursive load.
	mu       sync.Mutex
	stdMu    sync.Mutex
	parallel bool
}

// newLoader locates the enclosing module of dir and returns a loader for it.
func newLoader(dir string) (*loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		root:    root,
		module:  mod,
		cache:   map[string]*pkg{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", file)
}

// importPath maps an absolute package directory to its import path.
func (l *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-local packages come from source
// under the module root, everything else from the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		l.mu.Lock()
		p := l.cache[path]
		parallel := l.parallel
		l.mu.Unlock()
		if p != nil {
			return p.types, nil
		}
		if parallel {
			return nil, fmt.Errorf("internal: %s imported before it was scheduled", path)
		}
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// load parses and type-checks the package at the given module-local import
// path, memoized.
func (l *loader) load(path string) (*pkg, error) {
	l.mu.Lock()
	if p, ok := l.cache[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.mu.Unlock()
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")))
	p, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cache[path] = p
	l.mu.Unlock()
	return p, nil
}

// loadDir parses the non-test Go files of one directory and type-checks
// them as a single package. Type errors are collected on the package rather
// than aborting, so the linter can still run over partially broken code,
// but a package that fails to parse at all is an error.
func (l *loader) loadDir(path, dir string) (*pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildTagsMatch(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files match the build configuration", dir)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(typeErrs) > 0 {
		fmt.Fprintf(os.Stderr, "hypatialint: %s: %d type error(s); results may be incomplete (first: %v)\n",
			path, len(typeErrs), typeErrs[0])
	}
	return &pkg{path: path, dir: dir, fset: l.fset, files: files, types: tpkg, info: info}, nil
}

// buildTagsMatch evaluates a file's //go:build constraint (if any) against
// the default build configuration: the host GOOS/GOARCH, the gc compiler,
// all go1.N version tags, and no custom tags. Files excluded by default —
// such as the hypatia_checks assertion variant — are skipped so paired
// tag-gated files do not look like redeclarations.
func buildTagsMatch(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break // build constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed: let the type checker complain
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}

// expandPatterns turns command-line package patterns (`./...`, `./cmd/foo`,
// or import-path-style `hypatia/internal/sim`) into the set of package
// directories to lint, relative to the working directory. Directories named
// testdata, vendor, or starting with "." or "_" are skipped during `...`
// expansion unless the pattern root itself points into them (so the tool's
// own fixtures can be linted explicitly).
func expandPatterns(l *loader, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if strings.HasPrefix(pat, l.module) {
			// Import-path form: rebase onto the module root.
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.module), "/")
			pat = "./" + filepath.ToSlash(filepath.FromSlash(rel))
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		inTestdata := strings.Contains(abs, string(filepath.Separator)+"testdata")
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				n := d.Name()
				if path != abs && (n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") ||
					(n == "testdata" && !inTestdata)) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
