package main

// The allocsafety check turns //hypatia:noalloc into a verified contract.
// Unlike purity's annotation-closure rule, the contract is transitive
// through summaries, not annotations: an annotated function may call
// unannotated helpers freely, because the helpers' allocation classes are
// computed bottom-up and any steady-state allocation anywhere beneath the
// annotated entry point surfaces here with its full origin call chain.
// (Amortized growth — appending into caller-owned arenas, capacity-guarded
// make, sync.Pool misses — is allowed: that is exactly the contract the
// snapshot and forwarding-table arenas are built on.)
//
// Misplaced //hypatia:noalloc and //hypatia:allocs comments are reported
// under the directive check via checkDirectiveComments, like the other
// hypatia directives.

import (
	"fmt"
	"go/types"
)

// checkAllocSafetyPkgs verifies every annotated function declared in the
// lint targets against its computed allocation summary, then holds the
// module-local implementers of //hypatia:noalloc interfaces to the same
// bar: calls through such an interface are trusted by the analysis, so an
// implementation that allocates would silently break every annotated
// caller. Implementers need no annotation of their own — the contract is
// summary-transitive — their computed class just must not be Allocates.
func checkAllocSafetyPkgs(targets []*pkg, ax *allocAnalysis, rep *reporter) {
	for _, p := range targets {
		for _, k := range ax.ean.cg.funcsIn[p] {
			fn, ok := k.(*types.Func)
			if !ok || !ax.noallocFns[fn] {
				continue
			}
			decl := ax.ean.cg.declOf[fn]
			if decl == nil {
				continue
			}
			name := ax.ean.nodeName(fn)
			sum := ax.summaries[k]
			if sum == nil {
				continue
			}
			if o, allocates := sum.witness(); allocates {
				rep.add(decl.Name.Pos(), checkAllocSafety,
					fmt.Sprintf("%s is marked //hypatia:noalloc but %s", name, o.describe(name)))
			}
		}
		checkAllocImplementers(p, ax, rep)
	}
}

// checkAllocImplementers reports module-local methods that satisfy a
// //hypatia:noalloc interface with a summary that allocates. (A type
// satisfying an annotated interface declared downstream of its own package
// is invisible from here — the same documented structural-typing gap the
// purity check has.)
func checkAllocImplementers(p *pkg, ax *allocAnalysis, rep *reporter) {
	scope := p.types.Scope()
	reported := map[*types.Func]bool{}
	for _, tname := range scope.Names() {
		tn, ok := scope.Lookup(tname).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		for _, itn := range ax.noallocIfaceList {
			iface, ok := itn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			ptr := types.NewPointer(tn.Type())
			if !types.Implements(tn.Type(), iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
				impl, ok := obj.(*types.Func)
				if !ok || reported[impl] {
					continue
				}
				decl := ax.ean.cg.declOf[impl]
				if decl == nil || ax.ean.cg.pkgOf[impl] != p {
					continue // promoted from elsewhere; checked in its own package
				}
				sum := ax.summaries[impl]
				if sum == nil {
					continue
				}
				o, allocates := sum.witness()
				if !allocates {
					continue
				}
				reported[impl] = true
				name := ax.ean.nodeName(impl)
				rep.add(decl.Name.Pos(), checkAllocSafety,
					fmt.Sprintf("%s satisfies //hypatia:noalloc interface %s.%s, but %s", name, itn.Pkg().Name(), itn.Name(), o.describe(name)))
			}
		}
	}
}
